package repro_test

// Differential harness for the parallel per-core engine (vm.Config
// Parallel). The engine's contract is determinism, not equivalence to the
// sequential engine: each quantum runs every thread against the
// quantum-start shared cache state, and cross-core effects land at the
// barrier in fixed core order — a lax-coherence semantics whose results
// are byte-identical at ANY worker count and GOMAXPROCS, because nothing
// depends on goroutine scheduling. This suite gates that identity (run
// it under -race in CI: the engine must also be data-race-free), plus the
// engagement and fallback bookkeeping.

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cache"
	"repro/internal/pebs"
	"repro/internal/prog"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

// parallelWorkloads are the multithreaded fixtures whose worker phases
// are parallel-eligible (no allocation reachable, one thread per core).
var parallelWorkloads = []string{"clomp", "falseshare"}

func profiledRun(t *testing.T, name string, workers int) (*structslim.RunResult, string) {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opt := structslim.Options{SamplePeriod: 3000, Seed: 7}
	opt.VM = vm.Config{Parallel: true, Workers: workers}
	res, rep, err := structslim.ProfileAndAnalyze(p, phases, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.RenderText(&buf)
	return res, buf.String()
}

// TestParallelIdenticalAcrossWorkers is the hard gate: profiles, stats,
// and rendered reports must be byte-identical at any worker bound.
func TestParallelIdenticalAcrossWorkers(t *testing.T) {
	for _, name := range parallelWorkloads {
		t.Run(name, func(t *testing.T) {
			base, baseRep := profiledRun(t, name, 1)
			if base.Profile.NumSamples == 0 {
				t.Fatal("no samples; test has no power")
			}
			for _, workers := range []int{2, 4, 0} {
				res, rep := profiledRun(t, name, workers)
				if !reflect.DeepEqual(base.Stats, res.Stats) {
					t.Errorf("workers=%d: stats diverge\n1: %+v\n%d: %+v", workers, base.Stats, workers, res.Stats)
				}
				if !reflect.DeepEqual(base.Profile, res.Profile) {
					t.Errorf("workers=%d: merged profile diverges", workers)
				}
				if !reflect.DeepEqual(base.ThreadProfiles, res.ThreadProfiles) {
					t.Errorf("workers=%d: thread profiles diverge", workers)
				}
				if rep != baseRep {
					t.Errorf("workers=%d: rendered report diverges", workers)
				}
			}
		})
	}
}

// TestParallelIdenticalAcrossGOMAXPROCS pins scheduling independence the
// other way: same worker bound, different host parallelism.
func TestParallelIdenticalAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, name := range parallelWorkloads {
		t.Run(name, func(t *testing.T) {
			runtime.GOMAXPROCS(1)
			serial, serialRep := profiledRun(t, name, 0)
			runtime.GOMAXPROCS(runtime.NumCPU())
			wide, wideRep := profiledRun(t, name, 0)
			if !reflect.DeepEqual(serial.Stats, wide.Stats) {
				t.Error("stats diverge across GOMAXPROCS")
			}
			if !reflect.DeepEqual(serial.Profile, wide.Profile) {
				t.Error("profiles diverge across GOMAXPROCS")
			}
			if serialRep != wideRep {
				t.Error("rendered reports diverge across GOMAXPROCS")
			}
		})
	}
}

// TestParallelComposesWithStatistical runs both accelerators together:
// the combination must keep the worker-count identity.
func TestParallelComposesWithStatistical(t *testing.T) {
	for _, name := range parallelWorkloads {
		t.Run(name, func(t *testing.T) {
			run := func(workers int) *structslim.RunResult {
				w, err := workloads.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				p, phases, err := w.Build(nil, workloads.ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				opt := structslim.Options{SamplePeriod: 3000, Seed: 7}
				opt.VM = vm.Config{Parallel: true, Workers: workers}
				opt.Analysis.Statistical = true
				res, err := structslim.ProfileRun(p, phases, opt)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			one, four := run(1), run(4)
			if !reflect.DeepEqual(one.Stats, four.Stats) {
				t.Error("statistical+parallel stats diverge across workers")
			}
			if !reflect.DeepEqual(one.Profile, four.Profile) {
				t.Error("statistical+parallel profiles diverge across workers")
			}
			if one.Stat == nil || one.Stat.Windows == 0 {
				t.Error("statistical mode did not engage under the parallel engine")
			}
		})
	}
}

// --- Engagement and fallback bookkeeping ---------------------------------

// machineFor builds a machine for one workload with a PEBS sampler
// attached, runs all phases, and returns it for ParallelInfo inspection.
func machineFor(t *testing.T, name string, cfg vm.Config) *vm.Machine {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	cores := 0
	maxT := 1
	for _, ph := range phases {
		for _, ts := range ph {
			if ts.Core > cores {
				cores = ts.Core
			}
		}
		if len(ph) > maxT {
			maxT = len(ph)
		}
	}
	m, err := vm.NewMachine(p, cache.DefaultConfig(), cores+1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Observer = pebs.NewSampler(pebs.DefaultConfig(), m.Space, maxT)
	for _, ph := range phases {
		if _, err := m.Run(ph); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestParallelEngages(t *testing.T) {
	for _, name := range parallelWorkloads {
		t.Run(name, func(t *testing.T) {
			m := machineFor(t, name, vm.Config{Parallel: true})
			info := m.ParallelInfo()
			if !info.Engaged {
				t.Fatalf("parallel engine did not engage: fallbacks=%v", info.Fallbacks)
			}
			if info.Rounds == 0 {
				t.Error("engine engaged but ran no rounds")
			}
			if len(info.Fallbacks) > 0 {
				t.Errorf("unexpected fallbacks: %v", info.Fallbacks)
			}
		})
	}
}

// nonParallelObserver is an AccessObserver without the ParallelSafe marker.
type nonParallelObserver struct{ n int }

func (o *nonParallelObserver) OnAccess(ev *vm.MemEvent) uint64 { o.n++; return 0 }

func TestParallelFallsBackForUnsafeObserver(t *testing.T) {
	w, err := workloads.Get("falseshare")
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewMachine(p, cache.DefaultConfig(), 4, vm.Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Observer = &nonParallelObserver{}
	for _, ph := range phases {
		if _, err := m.Run(ph); err != nil {
			t.Fatal(err)
		}
	}
	info := m.ParallelInfo()
	if info.Engaged {
		t.Fatal("engine engaged with a non-parallel-safe observer")
	}
	found := false
	for _, f := range info.Fallbacks {
		if f == "observer is not parallel-safe" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing fallback reason, got %v", info.Fallbacks)
	}
}

// TestParallelFallsBackForAllocReachable builds a two-thread program whose
// workers allocate: eligibility analysis must refuse it.
func TestParallelFallsBackForAllocReachable(t *testing.T) {
	rec := prog.MustRecord("node", prog.Field{Name: "v", Size: 8})
	b := prog.NewBuilder("allocpar")
	tids := b.RegisterLayout(prog.AoS(rec))
	worker := b.Func("worker", "w.c")
	dst, sz := b.R(), b.R()
	b.MovI(sz, 8)
	b.Alloc(dst, sz, tids[0])
	b.Ret()
	b.Func("main", "w.c")
	b.Halt()
	p := b.MustProgram()

	m, err := vm.NewMachine(p, cache.DefaultConfig(), 2, vm.Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	specs := []vm.ThreadSpec{{Fn: worker, Core: 0}, {Fn: worker, Core: 1}}
	if _, err := m.Run(specs); err != nil {
		t.Fatal(err)
	}
	info := m.ParallelInfo()
	if info.Engaged {
		t.Fatal("engine engaged with allocating workers")
	}
	found := false
	for _, f := range info.Fallbacks {
		if f == "heap allocation reachable from thread root" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing fallback reason, got %v", info.Fallbacks)
	}
}

func TestParallelFallsBackForSharedCore(t *testing.T) {
	w, err := workloads.Get("falseshare")
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	// Squash every worker onto core 0.
	for pi := range phases {
		for ti := range phases[pi] {
			phases[pi][ti].Core = 0
		}
	}
	m, err := vm.NewMachine(p, cache.DefaultConfig(), 1, vm.Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range phases {
		if _, err := m.Run(ph); err != nil {
			t.Fatal(err)
		}
	}
	info := m.ParallelInfo()
	if info.Engaged {
		t.Fatal("engine engaged with threads sharing a core")
	}
	found := false
	for _, f := range info.Fallbacks {
		if f == "threads share a core" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing fallback reason, got %v", info.Fallbacks)
	}
}

// TestParallelScalesWallClock is a sanity check (not a perf gate; those
// live in the benchmarks): the engine must at least not slow a
// parallel-eligible workload down absurdly. Skipped in -short mode.
func TestParallelScalesWallClock(t *testing.T) {
	if testing.Short() || runtime.NumCPU() < 2 {
		t.Skip("needs time and cores")
	}
	name := "falseshare"
	for _, workers := range []int{1, runtime.NumCPU()} {
		res, _ := profiledRun(t, name, workers)
		if res.Stats.MemOps == 0 {
			t.Fatal("no work executed")
		}
	}
}
