package repro_test

// Benchmark of the streaming ingest path: the same replayed sample
// stream pushed straight into the analyzer ("direct") and through the
// full HTTP ingest server ("http", gob framing, one request per batch),
// reporting samples/sec so the wire overhead is visible next to the
// analyzer's raw throughput.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/workloads"
	"repro/structslim"
)

// streamBenchBatches profiles the workload once and splits the run into
// push-protocol batches.
func streamBenchBatches(b *testing.B, name string, batchSize int) (batches []stream.Batch, samples int) {
	b.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	p, phases, err := w.Build(nil, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 3000, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, tp := range res.ThreadProfiles {
		n := len(tp.Samples)
		var seq uint64
		for start := 0; start < n || start == 0; start += batchSize {
			end := start + batchSize
			if end > n {
				end = n
			}
			batch := stream.Batch{
				Session: fmt.Sprintf("bench-t%03d", tp.TID),
				Process: "bench",
				TID:     int32(tp.TID),
				Period:  tp.Period,
				Seq:     seq,
				Samples: tp.Samples[start:end],
			}
			if start == 0 {
				batch.Objects = tp.Objects
			}
			batches = append(batches, batch)
			samples += end - start
			seq++
			if end == n {
				break
			}
		}
	}
	return batches, samples
}

func BenchmarkStreamIngest(b *testing.B) {
	batches, samples := streamBenchBatches(b, "quickstart", 256)

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			an, err := stream.New(nil, stream.Config{DropSamples: true})
			if err != nil {
				b.Fatal(err)
			}
			for _, batch := range batches {
				if err := an.Ingest(batch); err != nil {
					b.Fatal(err)
				}
			}
		}
		elapsed := time.Since(start).Seconds()
		if elapsed > 0 {
			b.ReportMetric(float64(samples*b.N)/elapsed, "samples/sec")
		}
	})

	b.Run("http", func(b *testing.B) {
		// Pre-frame each batch so the loop measures transport + decode +
		// ingest, not client-side encoding.
		payloads := make([][]byte, len(batches))
		for i := range batches {
			var buf bytes.Buffer
			if err := server.EncodeBatches(&buf, server.ContentTypeGob, batches[i:i+1]); err != nil {
				b.Fatal(err)
			}
			payloads[i] = buf.Bytes()
		}
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			an, err := stream.New(nil, stream.Config{DropSamples: true})
			if err != nil {
				b.Fatal(err)
			}
			srv := server.New(an, server.Config{QueueDepth: len(batches) + 1})
			ts := httptest.NewServer(srv.Handler())
			for _, payload := range payloads {
				resp, err := http.Post(ts.URL+"/v1/samples", server.ContentTypeGob, bytes.NewReader(payload))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					b.Fatalf("POST: %d", resp.StatusCode)
				}
			}
			srv.Drain()
			ts.Close()
		}
		elapsed := time.Since(start).Seconds()
		if elapsed > 0 {
			b.ReportMetric(float64(samples*b.N)/elapsed, "samples/sec")
		}
	})
}
