package repro_test

// Benchmark of the streaming ingest path: the same replayed sample
// stream pushed straight into the analyzer ("direct"), through the HTTP
// ingest server with the PR-5 protocol ("http": gob framing, one request
// per batch), and through the high-throughput path ("binary": length-
// prefixed binary frames, windows of batches per request, concurrent
// per-session pushers, sharded analyzer). Each sub-benchmark reports
// samples/sec plus allocs/sample and bytes/sample, so both the transport
// gap and the zero-copy decode claim are visible and gateable.
//
// The server and analyzer live outside the timed loop: the benchmark
// measures steady-state ingest throughput, not per-run setup. The stream
// replays at a dense sampling period (~10k samples/session) replicated
// across several sessions so per-request costs amortize the way a real
// multi-client load does.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/workloads"
	"repro/structslim"
)

// streamBenchBatches profiles the workload once at a dense period and
// replays it as `replicas` identical sessions, each split into
// push-protocol batches. Returns the batches grouped per session.
func streamBenchBatches(b *testing.B, name string, batchSize, replicas int) (sessions [][]stream.Batch, samples int) {
	b.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	p, phases, err := w.Build(nil, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 53, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < replicas; r++ {
		for _, tp := range res.ThreadProfiles {
			var batches []stream.Batch
			n := len(tp.Samples)
			var seq uint64
			for start := 0; start < n || start == 0; start += batchSize {
				end := start + batchSize
				if end > n {
					end = n
				}
				batch := stream.Batch{
					Session: fmt.Sprintf("bench-r%02d-t%03d", r, tp.TID),
					Process: "bench",
					TID:     int32(tp.TID),
					Period:  tp.Period,
					Seq:     seq,
					Samples: tp.Samples[start:end],
				}
				if start == 0 {
					batch.Objects = tp.Objects
				}
				batches = append(batches, batch)
				samples += end - start
				seq++
				if end == n {
					break
				}
			}
			sessions = append(sessions, batches)
		}
	}
	return sessions, samples
}

// reportPerSample converts a before/after MemStats pair into the
// per-sample custom metrics next to the standard throughput number.
func reportPerSample(b *testing.B, m0, m1 *runtime.MemStats, samples int, elapsed time.Duration) {
	total := float64(samples) * float64(b.N)
	if sec := elapsed.Seconds(); sec > 0 {
		b.ReportMetric(total/sec, "samples/sec")
	}
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/total, "allocs/sample")
	b.ReportMetric(float64(m1.TotalAlloc-m0.TotalAlloc)/total, "bytes/sample")
}

func BenchmarkStreamIngest(b *testing.B) {
	const batchSize = 512
	sessions, samples := streamBenchBatches(b, "quickstart", batchSize, 4)

	b.Run("direct", func(b *testing.B) {
		an, err := stream.New(nil, stream.Config{DropSamples: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, batches := range sessions {
				for _, batch := range batches {
					if err := an.Ingest(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		reportPerSample(b, &m0, &m1, samples, elapsed)
	})

	b.Run("http", func(b *testing.B) {
		// PR-5 protocol: gob framing, one request per batch, sequential
		// client. Pre-framed payloads so the loop measures transport +
		// decode + ingest, not client-side encoding.
		var payloads [][]byte
		for _, batches := range sessions {
			for i := range batches {
				var buf bytes.Buffer
				if err := server.EncodeBatches(&buf, server.ContentTypeGob, batches[i:i+1]); err != nil {
					b.Fatal(err)
				}
				payloads = append(payloads, buf.Bytes())
			}
		}
		an, err := stream.New(nil, stream.Config{DropSamples: true})
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(an, server.Config{QueueDepth: 4096})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Drain()
		b.ReportAllocs()
		b.ResetTimer()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, payload := range payloads {
				resp, err := http.Post(ts.URL+"/v1/samples", server.ContentTypeGob, bytes.NewReader(payload))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					b.Fatalf("POST: %d", resp.StatusCode)
				}
			}
			srv.Flush()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		reportPerSample(b, &m0, &m1, samples, elapsed)
	})

	b.Run("binary", func(b *testing.B) {
		// The high-throughput path: binary frames, a window of batches per
		// request, one concurrent pusher per session, sharded analyzer.
		const window = 8
		var perSession [][][]byte // session → request payloads, in order
		for _, batches := range sessions {
			var payloads [][]byte
			for start := 0; start < len(batches); start += window {
				end := start + window
				if end > len(batches) {
					end = len(batches)
				}
				var frame []byte
				for i := start; i < end; i++ {
					frame = server.AppendBatchBinary(frame, &batches[i])
				}
				payloads = append(payloads, frame)
			}
			perSession = append(perSession, payloads)
		}
		an, err := stream.New(nil, stream.Config{DropSamples: true, Shards: 8})
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(an, server.Config{QueueDepth: 4096})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Drain()
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        len(perSession) + 2,
			MaxIdleConnsPerHost: len(perSession) + 2,
		}}
		b.ReportAllocs()
		b.ResetTimer()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errc := make(chan error, len(perSession))
			for _, payloads := range perSession {
				wg.Add(1)
				go func(payloads [][]byte) {
					defer wg.Done()
					for _, payload := range payloads {
						resp, err := client.Post(ts.URL+"/v1/samples", server.ContentTypeBinary, bytes.NewReader(payload))
						if err != nil {
							errc <- err
							return
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusAccepted {
							errc <- fmt.Errorf("POST: %d", resp.StatusCode)
							return
						}
					}
				}(payloads)
			}
			wg.Wait()
			close(errc)
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
			srv.Flush()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		reportPerSample(b, &m0, &m1, samples, elapsed)
	})
}
