package repro_test

// End-to-end differential tests of the fast execution paths: the same
// workload profiled with the block-compiled engine + L1 hot-line shadow
// + batched sampling must produce a profile deep-equal to the reference
// engines' — and the rendered evaluation tables must be byte-identical.
// This is the acceptance gate for the whole optimization: not a single
// observable event may change.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/tables"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

// referenceOptions mirrors opt with the reference engines forced.
func referenceOptions(opt structslim.Options) structslim.Options {
	cfg := cache.DefaultConfig()
	cfg.DisableHotLine = true
	opt.Cache = &cfg
	opt.VM = vm.Config{Reference: true}
	return opt
}

// TestFastPathProfilesIdentical profiles a sequential and a parallel
// workload under both sampling modes with each engine and requires
// deep-equal run results: merged profile, per-thread profiles, and every
// machine statistic including the cache hierarchy counters.
func TestFastPathProfilesIdentical(t *testing.T) {
	for _, name := range []string{"art", "clomp"} {
		for _, ibs := range []bool{false, true} {
			mode := "pebs"
			if ibs {
				mode = "ibs"
			}
			t.Run(name+"-"+mode, func(t *testing.T) {
				w, err := workloads.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				opt := structslim.Options{SamplePeriod: 3000, Seed: 7, IBS: ibs}

				p, phases, err := w.Build(nil, workloads.ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := structslim.ProfileRun(p, phases, opt)
				if err != nil {
					t.Fatal(err)
				}
				p2, phases2, err := w.Build(nil, workloads.ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := structslim.ProfileRun(p2, phases2, referenceOptions(opt))
				if err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(fast.Stats, ref.Stats) {
					t.Errorf("run stats differ\nfast: %+v\nref:  %+v", fast.Stats, ref.Stats)
				}
				if !reflect.DeepEqual(fast.Profile, ref.Profile) {
					t.Errorf("merged profiles differ: %d vs %d samples",
						fast.Profile.NumSamples, ref.Profile.NumSamples)
				}
				if !reflect.DeepEqual(fast.ThreadProfiles, ref.ThreadProfiles) {
					t.Error("per-thread profiles differ")
				}
				if fast.Profile.NumSamples == 0 {
					t.Error("no samples; test has no power")
				}
			})
		}
	}
}

// TestFastPathTablesByteIdentical renders the Table 3/4 pipeline for one
// workload with the fast paths on and off and compares the bytes.
func TestFastPathTablesByteIdentical(t *testing.T) {
	w, err := workloads.Get("art")
	if err != nil {
		t.Fatal(err)
	}
	render := func(reference bool) string {
		opt := tables.Options{Scale: workloads.ScaleTest, SamplePeriod: 3000, Seed: 7, Reference: reference}
		r, err := tables.RunBenchmark(w, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tables.WriteTable3(&buf, []*tables.BenchResult{r})
		tables.WriteTable4(&buf, []*tables.BenchResult{r})
		return buf.String()
	}
	fast, ref := render(false), render(true)
	if fast != ref {
		t.Errorf("rendered tables differ with fast paths on vs off:\n--- fast ---\n%s\n--- reference ---\n%s", fast, ref)
	}
	if fast == "" {
		t.Error("empty table output")
	}
}
