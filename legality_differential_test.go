package repro_test

// End-to-end acceptance gate for the transform-legality pass: on every
// paper workload the pass's verdicts must survive a full dynamic replay
// (zero cross-check violations) AND must not block the splits the paper
// applies by hand — the profiler's advice, gated through the legality
// summary, must still produce a split layout. The planted-illegal
// fixture (workload "escape") must go the other way: its profile looks
// like a textbook splitting candidate, yet Optimize must refuse because
// a field address escapes into an opaque register flow.

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/legality"
	"repro/internal/prog"
	"repro/internal/split"
	"repro/internal/workloads"
	"repro/structslim"
)

func legalityOptions() structslim.Options {
	return structslim.Options{SamplePeriod: 2_000, Seed: 1}
}

// TestLegalityGatePaperWorkloads is the hard gate from the issue: for
// all seven paper benchmarks, the static verdicts are dynamically
// cross-checked violation-free, the hot record is not frozen, and the
// profiler's splitting advice passes the legality-gated Optimize path.
func TestLegalityGatePaperWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full profile+replay sweep")
	}
	for _, w := range workloads.Paper() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, rep, err := structslim.ProfileAndAnalyze(p, phases, legalityOptions())
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			_ = res
			la, err := structslim.AttachLegality(rep, p)
			if err != nil {
				t.Fatalf("AttachLegality: %v", err)
			}

			// Dynamic soundness: replay under the checking observer.
			crep, err := legality.CrossCheck(la, cache.DefaultConfig(), phases)
			if err != nil {
				t.Fatalf("CrossCheck: %v", err)
			}
			if crep.Failed() {
				var buf bytes.Buffer
				crep.RenderText(&buf)
				t.Fatalf("cross-check violations:\n%s", buf.String())
			}

			// Usefulness: the advice must still be applicable.
			sr := structslim.FindStruct(rep, w.Record().Name)
			if sr == nil {
				t.Fatalf("profiler did not analyze %s", w.Record().Name)
			}
			if sr.Legality == nil {
				t.Fatalf("no legality summary attached to %s", sr.Name)
			}
			if sr.Legality.Frozen() {
				t.Fatalf("hot record %s frozen: %s", sr.Name, sr.Legality.Reason)
			}
			layout, err := structslim.Optimize(w.Record(), sr)
			if err != nil {
				t.Fatalf("legality-gated Optimize refused the paper's split: %v", err)
			}
			if layout == nil {
				t.Fatal("nil layout")
			}
		})
	}
}

// TestLegalityGateRejectsEscapeFixture plants the illegal-split fixture
// into the same pipeline: the profile recommends splitting packet, but
// the legality pass must freeze it and Optimize must refuse, while the
// chk_pair spanning access downgrades to a keep-together merge rather
// than a refusal.
func TestLegalityGateRejectsEscapeFixture(t *testing.T) {
	w, err := workloads.Get("escape")
	if err != nil {
		t.Fatalf("escape fixture not registered: %v", err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, rep, err := structslim.ProfileAndAnalyze(p, phases, legalityOptions())
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	_ = res
	la, err := structslim.AttachLegality(rep, p)
	if err != nil {
		t.Fatalf("AttachLegality: %v", err)
	}

	sr := structslim.FindStruct(rep, w.Record().Name)
	if sr == nil {
		t.Fatal("profiler did not analyze packet")
	}
	if sr.Advice == nil || len(sr.Advice.Groups) < 2 {
		t.Fatalf("fixture profile did not produce splitting advice (advice=%v); the trap is not armed", sr.Advice)
	}
	if !sr.Legality.Frozen() {
		t.Fatalf("packet not frozen (legality=%+v)", sr.Legality)
	}
	if _, err := structslim.Optimize(w.Record(), sr); err == nil {
		t.Fatal("Optimize applied a split the legality pass proved unsafe")
	}

	// The unchecked path would have happily split it — that asymmetry is
	// the whole point of the gate.
	if _, err := split.LayoutFromAdvice(w.Record(), sr.Advice); err != nil {
		t.Fatalf("unchecked path also fails (%v): the fixture proves nothing", err)
	}

	// chk_pair: keep-together, not frozen — the merge path.
	chk := legality.SummaryFor(la, "chk", "chk_pair")
	if chk == nil {
		t.Fatal("no verdict for chk_pair")
	}
	if chk.Verdict != "keep-together" {
		t.Fatalf("chk_pair verdict = %s, want keep-together", chk.Verdict)
	}
	pairRec := prog.MustRecord("chk_pair",
		prog.Field{Name: "lo", Size: 4},
		prog.Field{Name: "hi", Size: 4},
	)
	pair, err := split.LayoutFromGroupsChecked(pairRec, [][]string{{"lo"}, {"hi"}}, chk)
	if err != nil {
		t.Fatalf("keep-together must merge, not refuse: %v", err)
	}
	if pair.IsSplit() {
		t.Fatalf("keep-together pair still split: %v", pair)
	}

	// Regrouping must skip the frozen array.
	rr, err := structslim.AnalyzeRegrouping(res, p, legalityOptions(), la)
	if err != nil {
		t.Fatalf("AnalyzeRegrouping: %v", err)
	}
	for _, g := range rr.Groups {
		for _, c := range g {
			if c.Name == "packets.packet" {
				t.Fatalf("frozen array advised for regrouping: %+v", g)
			}
		}
	}
	for _, c := range rr.Candidates {
		if c.Name == "packets.packet" {
			t.Fatalf("frozen array still a candidate: %+v", c)
		}
	}
}

// BenchmarkLegalitySweep times the whole-program analysis plus dynamic
// cross-check over all seven paper workloads — the number recorded into
// BENCH_8.json by `make bench-legality`.
func BenchmarkLegalitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.Paper() {
			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				b.Fatal(err)
			}
			a, err := legality.AnalyzeProgram(p, nil)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := legality.CrossCheck(a, cache.DefaultConfig(), phases)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Failed() {
				b.Fatalf("%s: cross-check violations", w.Name())
			}
		}
	}
}
