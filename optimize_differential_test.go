package repro_test

// Differential and acceptance gates for the layout optimizer
// (internal/optimize): the ranked table must be byte-identical at any
// worker count; the exact-confirmed decision must be identical between
// the statistical and exact measurement modes; on every paper workload
// the selected layout must measure no worse than the unsplit baseline
// and no worse than the paper's one-shot advice on the exact machine,
// with zero legality violations among the measured candidates; and the
// planted-illegal fixture must come back frozen with the baseline
// selected.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/optimize"
	"repro/internal/workloads"
	"repro/structslim"
)

func optimizeOptions() optimize.Options {
	return optimize.Options{
		Scale:        workloads.ScaleTest,
		SamplePeriod: 2_000,
		Seed:         1,
		Parallel:     4,
	}
}

// TestOptimizeWorkerCountDeterminism renders the full ranked table at
// several worker counts; every byte must match.
func TestOptimizeWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run A/B sweep")
	}
	for _, name := range []string{"art", "mislaid"} {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			var want []byte
			for _, workers := range []int{1, 3, 8} {
				opt := optimizeOptions()
				opt.Parallel = workers
				res, err := optimize.Run(w, opt)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				res.RenderText(&buf)
				if want == nil {
					want = buf.Bytes()
					continue
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("ranked table differs at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						workers, want, workers, buf.Bytes())
				}
			}
		})
	}
}

// TestOptimizePaperWorkloads is the acceptance gate: on each of the
// seven paper benchmarks the statistical and exact modes must agree on
// the decision (same selected layout, byte-identical decision lines and
// candidate sets), the selection must measure no worse than the unsplit
// baseline and the one-shot advice on the exact machine, and every
// measured candidate must respect the legality keep-together pairs.
func TestOptimizePaperWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full A/B sweep over the paper benchmarks")
	}
	for _, w := range workloads.Paper() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			stat, err := optimize.Run(w, optimizeOptions())
			if err != nil {
				t.Fatalf("statistical run: %v", err)
			}
			exOpt := optimizeOptions()
			exOpt.Exact = true
			exact, err := optimize.Run(w, exOpt)
			if err != nil {
				t.Fatalf("exact run: %v", err)
			}

			// Cross-mode: same candidates enumerated, same decision.
			if got, want := candidateKeys(stat), candidateKeys(exact); got != want {
				t.Errorf("candidate sets differ across modes:\nstatistical: %s\nexact:       %s", got, want)
			}
			var sd, ed bytes.Buffer
			stat.RenderDecision(&sd)
			exact.RenderDecision(&ed)
			if sd.String() != ed.String() {
				t.Errorf("decision differs across measurement modes:\nstatistical: %sexact:       %s",
					sd.String(), ed.String())
			}

			// Acceptance: never worse than the baseline or the advice.
			for mode, r := range map[string]*optimize.Result{"statistical": stat, "exact": exact} {
				if r.ExactSelected == 0 || r.ExactBaseline == 0 {
					t.Fatalf("%s: missing exact confirmation (selected=%d baseline=%d)",
						mode, r.ExactSelected, r.ExactBaseline)
				}
				if r.ExactSelected > r.ExactBaseline {
					t.Errorf("%s: selected layout %s is slower than the baseline: %d > %d cycles",
						mode, r.Selected.Layout, r.ExactSelected, r.ExactBaseline)
				}
				if r.ExactAdvice > 0 && r.ExactSelected > r.ExactAdvice {
					t.Errorf("%s: selected layout %s is slower than the advice: %d > %d cycles",
						mode, r.Selected.Layout, r.ExactSelected, r.ExactAdvice)
				}
			}

			// Zero legality violations: every measured candidate keeps the
			// keep-together pairs co-located.
			pairs, err := optimizePairs(w)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range stat.Ranked {
				for _, pair := range pairs {
					if m.Layout.Place(pair[0]).Arr != m.Layout.Place(pair[1]).Arr {
						t.Errorf("candidate %s separates keep-together pair %s/%s: %s",
							m.Label, pair[0], pair[1], m.Layout)
					}
				}
			}
		})
	}
}

// optimizePairs reruns the profiling pass to recover the hot record's
// legality keep-together pairs for the co-location check.
func optimizePairs(w workloads.Workload) ([][2]string, error) {
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		return nil, err
	}
	_, rep, err := structslim.ProfileAndAnalyze(p, phases, legalityOptions())
	if err != nil {
		return nil, err
	}
	if _, err := structslim.AttachLegality(rep, p); err != nil {
		return nil, err
	}
	sr := structslim.FindStruct(rep, w.Record().Name)
	if sr == nil || sr.Legality == nil {
		return nil, nil
	}
	return sr.Legality.Pairs, nil
}

func candidateKeys(r *optimize.Result) string {
	keys := make([]string, len(r.Ranked))
	for i, m := range r.Ranked {
		keys[i] = m.Key
	}
	// The per-mode ranking may order near-ties differently; compare as a
	// set by sorting.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, " ; ")
}

// TestOptimizeFrozenFixture feeds the optimizer the escape fixture —
// a textbook splitting candidate whose field address escapes — and
// requires it to refuse: frozen reason reported, only the baseline
// measured, the original layout selected.
func TestOptimizeFrozenFixture(t *testing.T) {
	w, err := workloads.Get("escape")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimize.Run(w, optimizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.FrozenReason == "" {
		t.Error("escape fixture was not frozen")
	}
	if len(res.Ranked) != 1 {
		t.Errorf("frozen record still enumerated %d candidates", len(res.Ranked)-1)
	}
	if res.Selected.Label != "baseline" || res.Selected.Layout.IsSplit() {
		t.Errorf("frozen record selected a split layout: %s (%s)", res.Selected.Layout, res.Selected.Label)
	}
	if res.ConfirmedSpeedup != 1.0 {
		t.Errorf("frozen record reports speedup %.3f, want 1.0", res.ConfirmedSpeedup)
	}
}

// TestOptimizeBeatsAdviceOnMislaid pins the reason the A/B loop exists:
// on the mislaid fixture the paper's first-choice advice is legal but
// suboptimal, and the measured selection must strictly beat it.
func TestOptimizeBeatsAdviceOnMislaid(t *testing.T) {
	w, err := workloads.Get("mislaid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimize.Run(w, optimizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactAdvice == 0 {
		t.Fatal("no advice candidate was enumerated")
	}
	if res.ExactSelected >= res.ExactAdvice {
		t.Errorf("selection %s (%d cycles) does not beat the advice (%d cycles)",
			res.Selected.Layout, res.ExactSelected, res.ExactAdvice)
	}
	if res.Selected.Label == "advice" {
		t.Errorf("fixture is miscalibrated: the advice itself was selected")
	}
}
