package repro_test

// BenchmarkOptimizeSweep times the full candidate-enumeration + A/B
// selection loop over the seven paper workloads and reports the
// geometric-mean exact-confirmed speedup of the selected layouts — the
// optimizer's headline number, gated by `make optimize-gate`. The
// simulation is deterministic, so geomean-speedup is machine-neutral
// and run-to-run stable; only the wall time varies.

import (
	"math"
	"testing"

	"repro/internal/optimize"
	"repro/internal/workloads"
)

func BenchmarkOptimizeSweep(b *testing.B) {
	paper := workloads.Paper()
	var speedups []float64
	for i := 0; i < b.N; i++ {
		speedups = speedups[:0]
		for _, w := range paper {
			res, err := optimize.Run(w, optimizeOptions())
			if err != nil {
				b.Fatalf("%s: %v", w.Name(), err)
			}
			if res.ConfirmedSpeedup <= 0 {
				b.Fatalf("%s: no confirmed speedup", w.Name())
			}
			speedups = append(speedups, res.ConfirmedSpeedup)
		}
	}
	logSum := 0.0
	for _, s := range speedups {
		logSum += math.Log(s)
	}
	b.ReportMetric(math.Exp(logSum/float64(len(speedups))), "geomean-speedup")
	b.ReportMetric(float64(len(speedups)), "workloads")
}
