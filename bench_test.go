package repro_test

// The benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus ablations of the design choices called out in
// DESIGN.md. Speedups, overheads, and affinities are attached to each
// benchmark as custom metrics, so `go test -bench=. -benchmem` regenerates
// the whole evaluation in one run.
//
// Benchmarks run at test scale by default so the full sweep stays
// tractable; set STRUCTSLIM_BENCH_SCALE=bench for the paper-sized runs.

import (
	"bytes"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/stride"
	"repro/internal/tables"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

func benchScale() workloads.Scale {
	if os.Getenv("STRUCTSLIM_BENCH_SCALE") == "bench" {
		return workloads.ScaleBench
	}
	return workloads.ScaleTest
}

func benchOpt() tables.Options {
	return tables.Options{Scale: benchScale(), SamplePeriod: 3000, Seed: 7}
}

// --- Tables -----------------------------------------------------------------

func BenchmarkTable2Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables.WriteTable2(io.Discard)
	}
}

// benchmarkTable3 runs the full Table 3/4 pipeline for one workload and
// reports its speedup, overhead, and L1/L2 miss reductions as metrics.
func benchmarkTable3(b *testing.B, name string) {
	w, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	var r *tables.BenchResult
	for i := 0; i < b.N; i++ {
		r, err = tables.RunBenchmark(w, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Speedup, "speedup")
	b.ReportMetric(r.OverheadPct, "overhead%")
	b.ReportMetric(r.MissReduction("L1"), "L1redux%")
	b.ReportMetric(r.MissReduction("L2"), "L2redux%")
	b.ReportMetric(r.MissReduction("L3"), "L3redux%")
}

func BenchmarkTable3ART(b *testing.B)        { benchmarkTable3(b, "art") }
func BenchmarkTable3Libquantum(b *testing.B) { benchmarkTable3(b, "libquantum") }
func BenchmarkTable3TSP(b *testing.B)        { benchmarkTable3(b, "tsp") }
func BenchmarkTable3MSER(b *testing.B)       { benchmarkTable3(b, "mser") }
func BenchmarkTable3CLOMP(b *testing.B)      { benchmarkTable3(b, "clomp") }
func BenchmarkTable3Health(b *testing.B)     { benchmarkTable3(b, "health") }
func BenchmarkTable3NN(b *testing.B)         { benchmarkTable3(b, "nn") }

// Table 4 shares Table 3's runs; its dedicated target reports the miss
// reductions of the full set in one pass.
func BenchmarkTable4CacheMissReductions(b *testing.B) {
	var results []*tables.BenchResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = tables.RunPaperBenchmarks(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	var l1, l2 float64
	for _, r := range results {
		l1 += r.MissReduction("L1")
		l2 += r.MissReduction("L2")
	}
	b.ReportMetric(l1/float64(len(results)), "avgL1redux%")
	b.ReportMetric(l2/float64(len(results)), "avgL2redux%")
}

func BenchmarkTable5ARTFields(b *testing.B) {
	var pShare float64
	for i := 0; i < b.N; i++ {
		sr, err := tables.AnalyzeART(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range sr.Fields {
			if f.Name == "P" {
				pShare = 100 * f.Share
			}
		}
	}
	b.ReportMetric(pShare, "P-share%")
}

func BenchmarkTable6ARTLoops(b *testing.B) {
	var hotShare float64
	for i := 0; i < b.N; i++ {
		sr, err := tables.AnalyzeART(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range sr.Loops {
			if lr.Loop != nil {
				hotShare = 100 * lr.Share
				break
			}
		}
	}
	b.ReportMetric(hotShare, "hottest-loop%")
}

// --- Figures ----------------------------------------------------------------

func benchmarkSuiteOverhead(b *testing.B, suite string) {
	var points []tables.OverheadPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = tables.SuiteOverheads(suite, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, pt := range points {
		sum += pt.OverheadPct
	}
	b.ReportMetric(sum/float64(len(points)), "avg-overhead%")
}

func BenchmarkFigure4RodiniaOverhead(b *testing.B) {
	benchmarkSuiteOverhead(b, workloads.RodiniaSuite)
}

func BenchmarkFigure5SpecOverhead(b *testing.B) {
	benchmarkSuiteOverhead(b, workloads.SpecSuite)
}

func BenchmarkFigure6ARTAffinityGraph(b *testing.B) {
	var aIU float64
	for i := 0; i < b.N; i++ {
		sr, err := tables.AnalyzeART(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		sr.WriteDot(io.Discard)
		offOf := map[string]uint64{}
		for _, f := range sr.Fields {
			offOf[f.Name] = f.Offset
		}
		aIU = sr.Affinity.Affinity(offOf["I"], offOf["U"])
	}
	b.ReportMetric(aIU, "A(I,U)")
}

func benchmarkSplitFigure(b *testing.B, fig int) {
	for i := 0; i < b.N; i++ {
		if err := tables.SplitFigure(io.Discard, tables.FigureNumberFor[fig], benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7ARTSplit(b *testing.B)        { benchmarkSplitFigure(b, 7) }
func BenchmarkFigure8LibquantumSplit(b *testing.B) { benchmarkSplitFigure(b, 8) }
func BenchmarkFigure9TSPSplit(b *testing.B)        { benchmarkSplitFigure(b, 9) }
func BenchmarkFigure10MSERSplit(b *testing.B)      { benchmarkSplitFigure(b, 10) }
func BenchmarkFigure11CLOMPSplit(b *testing.B)     { benchmarkSplitFigure(b, 11) }
func BenchmarkFigure12HealthSplit(b *testing.B)    { benchmarkSplitFigure(b, 12) }
func BenchmarkFigure13NNSplit(b *testing.B)        { benchmarkSplitFigure(b, 13) }

func BenchmarkEquation4Accuracy(b *testing.B) {
	var rows []tables.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = tables.AccuracyExperiment(10000, 1000, 3)
	}
	for _, r := range rows {
		if r.K == 10 {
			b.ReportMetric(r.Simulated, "accuracy@k=10")
		}
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------

// BenchmarkAblationGCDAdjacentVsPairwise compares the paper's
// adjacent-difference GCD against an all-pairs variant: same answer on
// constant-stride streams, quadratically more work.
func BenchmarkAblationGCDAdjacentVsPairwise(b *testing.B) {
	addrs := make([]uint64, 256)
	for i := range addrs {
		addrs[i] = uint64(i*3) * 56
	}
	pairwise := func(a []uint64) uint64 {
		var g uint64
		for i := 0; i < len(a); i++ {
			for j := i + 1; j < len(a); j++ {
				d := a[j] - a[i]
				if a[i] > a[j] {
					d = a[i] - a[j]
				}
				g = profile.GCD64(g, d)
			}
		}
		return g
	}
	b.Run("adjacent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if stride.OfAddresses(addrs) != 56*3 {
				b.Fatal("wrong stride")
			}
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pairwise(addrs) != 56*3 {
				b.Fatal("wrong stride")
			}
		}
	})
}

// BenchmarkAblationAffinityWeight contrasts latency-weighted affinity
// (the paper's Equation 7) with count-weighted affinity (Chilimbi-style,
// core.Options.WeightByCount) on ART's profile: the metric of interest is
// A(P,U), which the paper argues must stay low even though P and U
// co-occur in two loops.
func BenchmarkAblationAffinityWeight(b *testing.B) {
	w, err := workloads.Get("art")
	if err != nil {
		b.Fatal(err)
	}
	p, phases, err := w.Build(nil, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	var latencyPU, countPU float64
	for i := 0; i < b.N; i++ {
		res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 3000, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		measure := func(byCount bool) float64 {
			rep, err := core.Analyze(res.Profile, p, core.Options{WeightByCount: byCount})
			if err != nil {
				b.Fatal(err)
			}
			sr := structslim.FindStruct(rep, "f1_neuron")
			if sr == nil {
				b.Fatal("f1_neuron not analyzed")
			}
			offOf := map[string]uint64{}
			for _, f := range sr.Fields {
				offOf[f.Name] = f.Offset
			}
			return sr.Affinity.Affinity(offOf["P"], offOf["U"])
		}
		latencyPU = measure(false)
		countPU = measure(true)
	}
	b.ReportMetric(latencyPU, "A(P,U)-latency")
	b.ReportMetric(countPU, "A(P,U)-count")
}

// BenchmarkAblationPeriod sweeps the sampling period on ART and reports
// the overhead at each setting, the paper's key overhead/visibility
// trade-off.
func BenchmarkAblationPeriod(b *testing.B) {
	w, _ := workloads.Get("art")
	for _, period := range []uint64{1000, 10_000, 100_000} {
		period := period
		b.Run(formatPeriod(period), func(b *testing.B) {
			var overhead float64
			var samples uint64
			for i := 0; i < b.N; i++ {
				p, phases, err := w.Build(nil, benchScale())
				if err != nil {
					b.Fatal(err)
				}
				res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: period, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				overhead = res.Stats.OverheadPct()
				samples = res.Profile.NumSamples
			}
			b.ReportMetric(overhead, "overhead%")
			b.ReportMetric(float64(samples), "samples")
		})
	}
}

func formatPeriod(p uint64) string {
	if p >= 1000 && p%1000 == 0 {
		return "period-" + itoa(int(p/1000)) + "k"
	}
	return "period-" + itoa(int(p))
}

// BenchmarkAblationPrefetcher measures how much of the split's win the
// hardware prefetcher already covers, by running NN's original and split
// layouts with the prefetcher on and off.
func BenchmarkAblationPrefetcher(b *testing.B) {
	w, _ := workloads.Get("nn")
	run := func(b *testing.B, prefetch bool) float64 {
		cfg := cache.DefaultConfig()
		cfg.Prefetch = prefetch
		opt := structslim.Options{SamplePeriod: 3000, Seed: 7, Cache: &cfg}
		// Advice from a quick profiled run.
		p, phases, err := w.Build(nil, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		_, rep, err := structslim.ProfileAndAnalyze(p, phases, opt)
		if err != nil {
			b.Fatal(err)
		}
		sr := structslim.FindStruct(rep, "neighbor")
		layout, err := structslim.Optimize(w.Record(), sr)
		if err != nil {
			b.Fatal(err)
		}
		measure := func(l interface{}) uint64 {
			var st uint64
			pp, ph, err := w.Build(nil, benchScale())
			if l != nil {
				pp, ph, err = w.Build(layout, benchScale())
			}
			if err != nil {
				b.Fatal(err)
			}
			s, err := structslim.Run(pp, ph, opt)
			if err != nil {
				b.Fatal(err)
			}
			st = s.AppWallCycles
			return st
		}
		return float64(measure(nil)) / float64(measure(layout))
	}
	b.Run("prefetch-on", func(b *testing.B) {
		var speedup float64
		for i := 0; i < b.N; i++ {
			speedup = run(b, true)
		}
		b.ReportMetric(speedup, "speedup")
	})
	b.Run("prefetch-off", func(b *testing.B) {
		var speedup float64
		for i := 0; i < b.N; i++ {
			speedup = run(b, false)
		}
		b.ReportMetric(speedup, "speedup")
	})
}

// BenchmarkAblationTLB measures how much a data-TLB model adds to the
// split's win on ART: the AoS layout walks ~8× the pages per useful
// field, so enabling the TLB widens the gap.
func BenchmarkAblationTLB(b *testing.B) {
	w, _ := workloads.Get("art")
	speedupWith := func(b *testing.B, tlb bool) float64 {
		cfg := cache.DefaultConfig()
		if tlb {
			cfg.TLB = cache.DefaultTLBConfig()
		}
		opt := structslim.Options{SamplePeriod: 3000, Seed: 7, Cache: &cfg}
		p, phases, err := w.Build(nil, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		_, rep, err := structslim.ProfileAndAnalyze(p, phases, opt)
		if err != nil {
			b.Fatal(err)
		}
		sr := structslim.FindStruct(rep, "f1_neuron")
		layout, err := structslim.Optimize(w.Record(), sr)
		if err != nil {
			b.Fatal(err)
		}
		run := func(split bool) uint64 {
			var l *prog.PhysLayout
			if split {
				l = layout
			}
			pp, ph, err := w.Build(l, benchScale())
			if err != nil {
				b.Fatal(err)
			}
			st, err := structslim.Run(pp, ph, opt)
			if err != nil {
				b.Fatal(err)
			}
			return st.AppWallCycles
		}
		return float64(run(false)) / float64(run(true))
	}
	b.Run("tlb-off", func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			s = speedupWith(b, false)
		}
		b.ReportMetric(s, "speedup")
	})
	b.Run("tlb-on", func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			s = speedupWith(b, true)
		}
		b.ReportMetric(s, "speedup")
	})
}

// BenchmarkIBSvsPEBS contrasts the two modeled sampling facilities on the
// same workload: sample yield per period and resulting overhead.
func BenchmarkIBSvsPEBS(b *testing.B) {
	w, _ := workloads.Get("art")
	run := func(b *testing.B, ibs bool) (samples uint64, overhead float64) {
		p, phases, err := w.Build(nil, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		res, err := structslim.ProfileRun(p, phases, structslim.Options{
			SamplePeriod: 10_000, Seed: 7, IBS: ibs,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Profile.NumSamples, res.Stats.OverheadPct()
	}
	b.Run("pebs-ll", func(b *testing.B) {
		var s uint64
		var o float64
		for i := 0; i < b.N; i++ {
			s, o = run(b, false)
		}
		b.ReportMetric(float64(s), "samples")
		b.ReportMetric(o, "overhead%")
	})
	b.Run("ibs", func(b *testing.B) {
		var s uint64
		var o float64
		for i := 0; i < b.N; i++ {
			s, o = run(b, true)
		}
		b.ReportMetric(float64(s), "samples")
		b.ReportMetric(o, "overhead%")
	})
}

// BenchmarkAblationReorderVsSplit quantifies splitting against the
// cheaper classic alternative, field reordering, on a 128-byte record
// whose hot loop reads fields at opposite ends (see
// structslim/reorder_test.go for the kernel).
func BenchmarkAblationReorderVsSplit(b *testing.B) {
	fields := make([]prog.Field, 16)
	names := make([]string, 16)
	for i := range fields {
		names[i] = string(rune('a' + i))
		fields[i] = prog.Field{Name: names[i], Size: 8}
	}
	rec := prog.MustRecord("wide", fields...)
	build := func(l *prog.PhysLayout) *prog.Program {
		bb := prog.NewBuilder("wide")
		tids := bb.RegisterLayout(l)
		arrG := make([]int, l.NumArrays())
		for ai := range arrG {
			arrG[ai] = bb.Global("arr."+l.Structs[ai].Name, 16384*int64(l.Structs[ai].Size), tids[ai])
		}
		bb.Func("main", "w.c")
		regs := make([]isa.Reg, l.NumArrays())
		for ai := range regs {
			regs[ai] = bb.R()
			bb.GAddr(regs[ai], arrG[ai])
		}
		i, x, y, rep := bb.R(), bb.R(), bb.R(), bb.R()
		bb.ForRange(i, 0, 16384, 1, func() {
			for f := 0; f < 16; f++ {
				bb.StoreField(i, l, regs, i, names[f])
			}
		})
		bb.ForRange(rep, 0, 8, 1, func() {
			bb.ForRange(i, 0, 16384, 1, func() {
				bb.LoadField(x, l, regs, i, names[0])
				bb.LoadField(y, l, regs, i, names[15])
				bb.Add(x, x, y)
			})
		})
		bb.Halt()
		return bb.MustProgram()
	}
	cycles := func(l *prog.PhysLayout) uint64 {
		st, err := structslim.Run(build(l), nil, structslim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return st.AppWallCycles
	}
	var reorderX, splitX float64
	for i := 0; i < b.N; i++ {
		base := cycles(prog.AoS(rec))
		order := append([]string{names[0], names[15]}, names[1:15]...)
		reordered, err := prog.Reordered(rec, order)
		if err != nil {
			b.Fatal(err)
		}
		split, err := prog.Split(rec, [][]string{{names[0], names[15]}, order[2:]})
		if err != nil {
			b.Fatal(err)
		}
		reorderX = float64(base) / float64(cycles(reordered))
		splitX = float64(base) / float64(cycles(split))
	}
	b.ReportMetric(reorderX, "reorder-x")
	b.ReportMetric(splitX, "split-x")
}

// BenchmarkBaselines regenerates the paper's motivating overhead
// contrast: sampling vs frequency-counting vs reuse-distance
// instrumentation, plus the sampled analysis's accuracy against exact
// ground truth.
func BenchmarkBaselines(b *testing.B) {
	var rows []tables.BaselineRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = tables.BaselineComparison("art", benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Slowdown, "sampling-x")
	b.ReportMetric(rows[1].Slowdown, "counting-x")
	b.ReportMetric(rows[2].Slowdown, "reuse-x")
	b.ReportMetric(rows[0].MaxShareError, "share-err")
}

// BenchmarkRobustness sweeps the sampling period on ART and reports the
// densest and sparsest settings' overheads.
func BenchmarkRobustness(b *testing.B) {
	var rows []tables.RobustnessRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = tables.PeriodRobustness("art",
			[]uint64{1000, 10_000, 100_000}, "P", "P", benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	ok := 0
	for _, r := range rows {
		if r.AdviceOK {
			ok++
		}
	}
	b.ReportMetric(float64(ok), "periods-with-correct-advice")
	b.ReportMetric(rows[0].OverheadPct, "overhead%@1k")
	b.ReportMetric(rows[len(rows)-1].OverheadPct, "overhead%@100k")
}

// BenchmarkMergeReduction compares the reduction-tree profile merge with
// a sequential merge at increasing thread counts.
func BenchmarkMergeReduction(b *testing.B) {
	mkProfiles := func(n int) []*profile.ThreadProfile {
		tps := make([]*profile.ThreadProfile, n)
		for t := 0; t < n; t++ {
			tp := profile.NewThreadProfile(t, 10000)
			for k := 0; k < 3000; k++ {
				tp.Add(profile.Sample{
					TID: int32(t), IP: uint64(0x400000 + (k%64)*4),
					EA:      uint64(0x10000000 + t*1<<20 + k*24),
					Latency: uint32(10 + k%40), Cycle: uint64(k * 100),
				}, uint64(1+k%8))
			}
			tps[t] = tp
		}
		return tps
	}
	for _, n := range []int{4, 16, 64} {
		tps := mkProfiles(n)
		b.Run("sequential-"+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := profile.MergeThreadProfiles(tps); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("tree-"+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := profile.ReduceThreadProfiles(tps, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Experiment engine --------------------------------------------------------

// BenchmarkRunnerParallel contrasts the legacy sequential path — every
// artifact a one-shot engine, so Figures 7–13 re-run the seven Table 3
// pipelines from scratch — with one shared 4-worker engine regenerating
// the same artifact set through its keyed result cache. The rendered
// output must be byte-identical; the speedup comes from deduplication
// plus overlap.
func BenchmarkRunnerParallel(b *testing.B) {
	artifacts := func(w io.Writer, bench func() ([]*tables.BenchResult, error),
		splitFig func(io.Writer, string) error) error {
		results, err := bench()
		if err != nil {
			return err
		}
		tables.WriteTable3(w, results)
		tables.WriteTable4(w, results)
		for fig := 7; fig <= 13; fig++ {
			if err := splitFig(w, tables.FigureNumberFor[fig]); err != nil {
				return err
			}
		}
		return nil
	}

	var seqOut, parOut string
	var seqDur, parDur time.Duration
	b.Run("sequential", func(b *testing.B) {
		opt := benchOpt() // Parallel 0: every call its own sequential engine
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			start := time.Now()
			err := artifacts(&buf,
				func() ([]*tables.BenchResult, error) { return tables.RunPaperBenchmarks(opt) },
				func(w io.Writer, name string) error { return tables.SplitFigure(w, name, opt) })
			if err != nil {
				b.Fatal(err)
			}
			seqDur = time.Since(start)
			seqOut = buf.String()
		}
	})
	b.Run("engine-4", func(b *testing.B) {
		opt := benchOpt()
		opt.Parallel = 4
		for i := 0; i < b.N; i++ {
			eng := tables.NewEngine(opt)
			var buf bytes.Buffer
			start := time.Now()
			err := artifacts(&buf, eng.RunPaperBenchmarks, eng.SplitFigure)
			if err != nil {
				b.Fatal(err)
			}
			parDur = time.Since(start)
			parOut = buf.String()
			started, deduped := eng.Stats()
			b.ReportMetric(float64(started), "sims-run")
			b.ReportMetric(float64(deduped), "sims-deduped")
		}
		if seqDur > 0 {
			b.ReportMetric(seqDur.Seconds()/parDur.Seconds(), "speedup-vs-sequential")
		}
	})
	if seqOut != "" && parOut != "" && seqOut != parOut {
		b.Fatal("engine output differs from the sequential path")
	}
}

// TestHotPathAllocationBudget locks in the hot-path allocation wins: the
// steady-state cache access path is allocation-free, stream updates
// amortize far below one allocation per sample, and a whole profiled run
// allocates a constant amount independent of how many memory accesses it
// executes (~1.4M at test scale).
func TestHotPathAllocationBudget(t *testing.T) {
	h, err := cache.NewHierarchy(cache.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 1, 0x1000, 8, false)
	if a := testing.AllocsPerRun(200, func() { h.Access(0, 1, 0x1000, 8, false) }); a != 0 {
		t.Errorf("single-core cache hit path: %.2f allocs/access, want 0", a)
	}

	h2, err := cache.NewHierarchy(cache.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	h2.Access(0, 1, 0x2000, 8, false)
	h2.Access(1, 1, 0x2000, 8, false)
	if a := testing.AllocsPerRun(200, func() {
		h2.Access(0, 1, 0x2000, 8, false)
		h2.Access(1, 1, 0x2000, 8, false)
	}); a != 0 {
		t.Errorf("coherent shared-line hit path: %.2f allocs/access-pair, want 0", a)
	}

	tp := profile.NewThreadProfile(0, 1000)
	var k int
	if a := testing.AllocsPerRun(5000, func() {
		tp.Add(profile.Sample{IP: 0x400, EA: uint64(0x10000 + k*24)}, 1)
		k++
	}); a >= 1 {
		t.Errorf("ThreadProfile.Add: %.2f allocs/sample, want amortized < 1", a)
	}

	w, err := workloads.Get("art")
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	runAllocs := testing.AllocsPerRun(1, func() {
		if _, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 3000, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	})
	// Pre-optimization this was ~1.4 million (one escape per access);
	// now it is a few hundred, all setup and profile finalization.
	if runAllocs > 10_000 {
		t.Errorf("profiled ART run: %.0f allocs, want constant setup cost (<10000)", runAllocs)
	}
}

// --- Microbenchmarks of the substrate ----------------------------------------

// BenchmarkMachineHotPath times the per-access hot path end to end: the
// interpreter dispatch, the cache hierarchy walk, and the sampler's
// observer hook, on a profiled run of ART. allocs/op is the headline
// metric — the per-access path must not allocate.
func BenchmarkMachineHotPath(b *testing.B) {
	w, err := workloads.Get("art")
	if err != nil {
		b.Fatal(err)
	}
	p, phases, err := w.Build(nil, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	var memops uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 3000, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		memops = res.Stats.MemOps
	}
	b.ReportMetric(float64(memops), "memops/run")
}

// BenchmarkARTProfile times the profiled ART run under both execution
// engines: "reference" forces the switch-dispatch interpreter and
// disables the L1 hot-line shadow, "fastpath" is the default
// block-compiled engine with the hot-line shadow and batched sampling.
// Both produce bit-identical profiles (fastpath_differential_test.go);
// the "x-vs-reference" metric on the fastpath sub-benchmark is the
// engine speedup measured within a single process, which makes it
// machine-neutral — CI gates on it via `make bench-gate`.
func BenchmarkARTProfile(b *testing.B) {
	w, err := workloads.Get("art")
	if err != nil {
		b.Fatal(err)
	}
	p, phases, err := w.Build(nil, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opt structslim.Options) time.Duration {
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := structslim.ProfileRun(p, phases, opt); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start) / time.Duration(b.N)
	}
	var refDur, fastDur time.Duration
	b.Run("reference", func(b *testing.B) {
		cfg := cache.DefaultConfig()
		cfg.DisableHotLine = true
		refDur = run(b, structslim.Options{
			SamplePeriod: 3000, Seed: 7,
			Cache: &cfg, VM: vm.Config{Reference: true},
		})
	})
	b.Run("fastpath", func(b *testing.B) {
		fastDur = run(b, structslim.Options{SamplePeriod: 3000, Seed: 7})
		if refDur > 0 && fastDur > 0 {
			b.ReportMetric(refDur.Seconds()/fastDur.Seconds(), "x-vs-reference")
		}
	})
}

// BenchmarkWorkloadSweep runs the same reference-vs-fastpath comparison
// as BenchmarkARTProfile across every paper workload, reporting the
// per-workload engine speedup. Not part of `make bench-smoke` (it is the
// slowest benchmark in the file); run it manually to regenerate the
// sweep table in README.md:
//
//	go test -run '^$' -benchtime 3x -bench WorkloadSweep .
func BenchmarkWorkloadSweep(b *testing.B) {
	for _, name := range workloads.PaperOrder {
		w, err := workloads.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		p, phases, err := w.Build(nil, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, opt structslim.Options) time.Duration {
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := structslim.ProfileRun(p, phases, opt); err != nil {
					b.Fatal(err)
				}
			}
			return time.Since(start) / time.Duration(b.N)
		}
		var refDur time.Duration
		b.Run(name+"/reference", func(b *testing.B) {
			cfg := cache.DefaultConfig()
			cfg.DisableHotLine = true
			refDur = run(b, structslim.Options{
				SamplePeriod: 3000, Seed: 7,
				Cache: &cfg, VM: vm.Config{Reference: true},
			})
		})
		b.Run(name+"/fastpath", func(b *testing.B) {
			fastDur := run(b, structslim.Options{SamplePeriod: 3000, Seed: 7})
			if refDur > 0 && fastDur > 0 {
				b.ReportMetric(refDur.Seconds()/fastDur.Seconds(), "x-vs-reference")
			}
		})
		b.Run(name+"/statistical", func(b *testing.B) {
			opt := structslim.Options{SamplePeriod: 3000, Seed: 7}
			opt.Analysis.Statistical = true
			statDur := run(b, opt)
			if refDur > 0 && statDur > 0 {
				b.ReportMetric(refDur.Seconds()/statDur.Seconds(), "x-vs-reference")
			}
		})
	}
}

// BenchmarkParallelScaling times the parallel per-core engine on the
// multithreaded workloads at 1 worker and at the host width, reporting
// "x-vs-serial" on the wide sub-benchmark. The profiles are byte-
// identical at any worker count (parallel_differential_test.go), so the
// metric is pure engine scaling; on a single-core host it hovers near 1.
func BenchmarkParallelScaling(b *testing.B) {
	for _, name := range []string{"clomp", "falseshare"} {
		w, err := workloads.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		p, phases, err := w.Build(nil, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, workers int) time.Duration {
			opt := structslim.Options{SamplePeriod: 3000, Seed: 7}
			opt.VM = vm.Config{Parallel: true, Workers: workers}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := structslim.ProfileRun(p, phases, opt); err != nil {
					b.Fatal(err)
				}
			}
			return time.Since(start) / time.Duration(b.N)
		}
		var serialDur time.Duration
		b.Run(name+"/workers1", func(b *testing.B) {
			serialDur = run(b, 1)
		})
		b.Run(name+"/workersN", func(b *testing.B) {
			wideDur := run(b, 0) // 0 = one goroutine per simulated core
			if serialDur > 0 && wideDur > 0 {
				b.ReportMetric(serialDur.Seconds()/wideDur.Seconds(), "x-vs-serial")
			}
		})
	}
}

func BenchmarkCacheAccessHit(b *testing.B) {
	h, err := cache.NewHierarchy(cache.DefaultConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	h.Access(0, 1, 0x1000, 8, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, 1, 0x1000, 8, false)
	}
}

func BenchmarkCacheAccessStream(b *testing.B) {
	h, err := cache.NewHierarchy(cache.DefaultConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, 1, uint64(i*64), 8, false)
	}
}

func BenchmarkInterpreter(b *testing.B) {
	w, _ := workloads.Get("hotspot")
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := structslim.Run(p, phases, structslim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		instrs = st.Instrs
	}
	b.ReportMetric(float64(instrs), "instrs/run")
}

func BenchmarkGCDStride(b *testing.B) {
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = uint64(i*7) * 24
	}
	for i := 0; i < b.N; i++ {
		if stride.OfAddresses(addrs) == 0 {
			b.Fatal("no stride")
		}
	}
}
