// Measured layout selection: when the paper's one-shot advice is legal
// but not optimal, only an A/B loop over the candidate layouts finds the
// best one.
//
// The mislaid fixture is built for exactly this: a record
//
//	struct mrec { long a; char blob[48]; long b; long c; };
//
// whose co-accessed pair (a,b) scores high affinity, so the advice
// groups {a,b}. That grouping fixes the co-access loop but doubles the
// stride of the dominant loop that streams a alone — the full split is
// strictly better, and only measuring reveals it. internal/optimize
// enumerates the candidates (advice seed, hot/cold bisection, affinity
// ladder, reorder, padding), measures each on the statistical engine,
// and exact-confirms the leaders before selecting.
//
//	go run ./examples/optimize
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/optimize"
	"repro/internal/workloads"
)

func main() {
	w, err := workloads.Get("mislaid")
	if err != nil {
		log.Fatal(err)
	}
	res, err := optimize.Run(w, optimize.Options{
		Scale:        workloads.ScaleTest,
		SamplePeriod: 2_000,
		Seed:         1,
		Parallel:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	res.RenderText(os.Stdout)

	advice, selected := res.ExactAdvice, res.ExactSelected
	fmt.Println()
	switch {
	case advice == 0:
		fmt.Println("no advice candidate was enumerated")
	case selected < advice:
		fmt.Printf("measured selection beats the one-shot advice: %d vs %d cycles (%.2fx vs %.2fx over baseline)\n",
			selected, advice,
			float64(res.ExactBaseline)/float64(selected),
			float64(res.ExactBaseline)/float64(advice))
	default:
		fmt.Println("measured selection matches the one-shot advice")
	}
}
