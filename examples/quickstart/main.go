// Quickstart: the paper's Figure 1 end to end.
//
// We build the motivating program — an array of struct {a, b, c, d} where
// one loop reads a+c and another reads b+d — profile it with PEBS-style
// address sampling, print StructSlim's analysis, apply the advised split,
// and measure the improvement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/structslim"
)

const (
	numElems = 32768
	numReps  = 10
)

// build lowers the Figure 1 kernel against a layout: the same source-level
// loops, laid out either as one array of structs or as the advised split.
func build(l *prog.PhysLayout) *prog.Program {
	b := prog.NewBuilder("figure1")
	tids := b.RegisterLayout(l)
	arrG := make([]int, l.NumArrays())
	for ai := range arrG {
		arrG[ai] = b.Global("Arr."+l.Structs[ai].Name, numElems*int64(l.Structs[ai].Size), tids[ai])
	}
	outB := b.Global("B", numElems*4, -1)
	outC := b.Global("C", numElems*4, -1)

	b.Func("main", "figure1.c")
	bases := make([]isa.Reg, l.NumArrays())
	for ai := range bases {
		bases[ai] = b.R()
		b.GAddr(bases[ai], arrG[ai])
	}
	bBase, cBase := b.R(), b.R()
	b.GAddr(bBase, outB)
	b.GAddr(cBase, outC)

	rep, i, x, y := b.R(), b.R(), b.R(), b.R()
	b.ForRange(rep, 0, numReps, 1, func() {
		b.AtLine(4) // for (i...) B[i] = Arr[i].a + Arr[i].c;
		b.ForRange(i, 0, numElems, 1, func() {
			b.AtLine(5)
			b.LoadField(x, l, bases, i, "a")
			b.LoadField(y, l, bases, i, "c")
			b.Add(x, x, y)
			b.Store(x, bBase, i, 4, 0, 4)
		})
		b.AtLine(8) // for (i...) C[i] = Arr[i].b + Arr[i].d;
		b.ForRange(i, 0, numElems, 1, func() {
			b.AtLine(9)
			b.LoadField(x, l, bases, i, "b")
			b.LoadField(y, l, bases, i, "d")
			b.Add(x, x, y)
			b.Store(x, cBase, i, 4, 0, 4)
		})
	})
	b.Halt()
	return b.MustProgram()
}

func main() {
	record := prog.MustRecord("type",
		prog.Field{Name: "a", Size: 4},
		prog.Field{Name: "b", Size: 4},
		prog.Field{Name: "c", Size: 4},
		prog.Field{Name: "d", Size: 4},
	)
	opts := structslim.Options{SamplePeriod: 2_000, Seed: 1}

	// 1. Profile the original array-of-structs program.
	original := build(prog.AoS(record))
	res, report, err := structslim.ProfileAndAnalyze(original, nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	report.RenderText(os.Stdout)

	// 2. Apply the advice.
	hot := structslim.FindStruct(report, "type")
	if hot == nil {
		log.Fatal("the array was not identified as hot")
	}
	layout, err := structslim.Optimize(record, hot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Advised layout: %v\n", layout)

	// 3. Measure original vs split, unprofiled.
	base, err := structslim.Run(build(prog.AoS(record)), nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	improved, err := structslim.Run(build(layout), nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOriginal : %12d cycles (%d L1 misses)\n",
		base.AppWallCycles, base.Cache.Level("L1").Misses)
	fmt.Printf("Split    : %12d cycles (%d L1 misses)\n",
		improved.AppWallCycles, improved.Cache.Level("L1").Misses)
	fmt.Printf("Speedup  : %.2fx   (profiling overhead was %.2f%%)\n",
		float64(base.AppWallCycles)/float64(improved.AppWallCycles),
		res.Stats.OverheadPct())
}
