// ART walk-through: Section 6.1 of the paper, reproduced end to end.
//
// Profiles the ART reconstruction, prints the per-field latency table
// (Table 5), the per-loop table (Table 6), the affinity graph (Figure 6,
// dot format), the advised split (Figure 7), and the measured speedup.
//
//	go run ./examples/art
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/tables"
	"repro/internal/workloads"
)

func main() {
	opt := tables.Options{Scale: workloads.ScaleTest, SamplePeriod: 3_000, Seed: 1}

	sr, err := tables.AnalyzeART(opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("f1_neuron: l_d = %.1f%% of total latency, inferred struct size %d bytes (true: %d)\n\n",
		100*sr.Ld, sr.InferredSize, sr.TrueSize)
	tables.WriteTable5(os.Stdout, sr)
	fmt.Println()
	tables.WriteTable6(os.Stdout, sr)
	fmt.Println()

	fmt.Println("Figure 6 (affinity graph, dot):")
	tables.WriteFigure6(os.Stdout, sr)
	fmt.Println()

	fmt.Println("Figure 7 (advised split):")
	fmt.Print(sr.RenderAdvice())
	fmt.Println()

	// Full pipeline with the optimization applied.
	w, err := workloads.Get("art")
	if err != nil {
		log.Fatal(err)
	}
	r, err := tables.RunBenchmark(w, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Speedup after splitting: %.2fx (paper: 1.37x)\n", r.Speedup)
	fmt.Printf("L1/L2/L3 miss reductions: %.1f%% / %.1f%% / %.1f%% (paper: 46.5 / 51.1 / 5.5)\n",
		r.MissReduction("L1"), r.MissReduction("L2"), r.MissReduction("L3"))
}
