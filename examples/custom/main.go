// Custom workload: profiling your own kernel with the builder DSL.
//
// This example shows the library as a downstream user would adopt it for
// a program the paper never saw: a particle simulation over an array of
// struct {x, y, z, vx, vy, vz, mass, charge}. The integration loop reads
// positions and velocities; a rare diagnostics loop reads mass and
// charge. StructSlim should advise keeping {x,y,z,vx,vy,vz} hot and
// moving {mass, charge} out of the way.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/structslim"
)

const (
	numParticles = 24000
	numSteps     = 8
)

func buildSim(l *prog.PhysLayout) *prog.Program {
	b := prog.NewBuilder("particles")
	tids := b.RegisterLayout(l)
	arrG := make([]int, l.NumArrays())
	for ai := range arrG {
		arrG[ai] = b.Global("particles."+l.Structs[ai].Name, numParticles*int64(l.Structs[ai].Size), tids[ai])
	}

	b.Func("main", "sim.c")
	bases := make([]isa.Reg, l.NumArrays())
	for ai := range bases {
		bases[ai] = b.R()
		b.GAddr(bases[ai], arrG[ai])
	}

	// Initialization: write every field once.
	i, v := b.R(), b.R()
	b.AtLine(10)
	b.ForRange(i, 0, numParticles, 1, func() {
		b.CvtIF(v, i)
		for _, f := range l.Record.Fields {
			b.StoreField(v, l, bases, i, f.Name)
		}
	})

	// Integration: positions += velocities, every step (the hot loop).
	step, p, vel := b.R(), b.R(), b.R()
	b.AtLine(40)
	b.ForRange(step, 0, numSteps, 1, func() {
		b.AtLine(40)
		b.ForRange(i, 0, numParticles, 1, func() {
			b.AtLine(42)
			for _, axis := range []string{"x", "y", "z"} {
				b.LoadField(p, l, bases, i, axis)
				b.LoadField(vel, l, bases, i, "v"+axis)
				b.FAdd(p, p, vel)
				b.StoreField(p, l, bases, i, axis)
			}
		})
	})

	// Diagnostics: total charge-to-mass ratio, once.
	sum := b.R()
	b.MovI(sum, 0)
	b.AtLine(70)
	b.ForRange(i, 0, numParticles, 1, func() {
		b.AtLine(71)
		b.LoadField(p, l, bases, i, "mass")
		b.LoadField(vel, l, bases, i, "charge")
		b.FDiv(p, vel, p)
		b.FAdd(sum, sum, p)
	})
	b.Halt()
	return b.MustProgram()
}

func main() {
	record := prog.MustRecord("particle",
		prog.Field{Name: "x", Size: 8, Float: true},
		prog.Field{Name: "y", Size: 8, Float: true},
		prog.Field{Name: "z", Size: 8, Float: true},
		prog.Field{Name: "vx", Size: 8, Float: true},
		prog.Field{Name: "vy", Size: 8, Float: true},
		prog.Field{Name: "vz", Size: 8, Float: true},
		prog.Field{Name: "mass", Size: 8, Float: true},
		prog.Field{Name: "charge", Size: 8, Float: true},
	)
	opts := structslim.Options{SamplePeriod: 2_000, Seed: 3}

	_, rep, err := structslim.ProfileAndAnalyze(buildSim(prog.AoS(record)), nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	rep.RenderText(os.Stdout)

	hot := structslim.FindStruct(rep, "particle")
	if hot == nil {
		log.Fatal("particle array not identified")
	}
	layout, err := structslim.Optimize(record, hot)
	if err != nil {
		log.Fatal(err)
	}
	base, err := structslim.Run(buildSim(prog.AoS(record)), nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	improved, err := structslim.Run(buildSim(layout), nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Advised layout: %v\n", layout)
	fmt.Printf("Speedup: %.2fx (%d → %d cycles)\n",
		float64(base.AppWallCycles)/float64(improved.AppWallCycles),
		base.AppWallCycles, improved.AppWallCycles)
}
