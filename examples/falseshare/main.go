// False-sharing detection: the static sharing analyzer plus the
// coherence-backed verifier on a planted fixture.
//
// The falseshare workload packs four threads' {hits, ticks} counters
// into one 64-byte cache line. A per-thread locality profile sees
// nothing wrong — every access is thread-private — but the line
// ping-pongs between the cores on every increment. This example:
//
//  1. runs the static sharing pass, which classifies both fields as
//     thread-private with a 16-byte per-thread write stride and predicts
//     the false sharing with keep-apart advice;
//
//  2. verifies the prediction against the cache directory's
//     write-invalidation traffic;
//
//  3. applies the advice (pad each slot to its own line) and measures
//     the speedup and the collapse of the invalidation storm.
//
//     go run ./examples/falseshare
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/prog"
	"repro/internal/sharing"
	"repro/internal/staticlint"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

func main() {
	w, err := workloads.Get("falseshare")
	if err != nil {
		log.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}

	// Static pass: thread roles from the phase list, per-field sharing
	// classes from the dataflow, false-sharing findings from the claims
	// plus the layout.
	la, err := staticlint.AnalyzeProgram(p)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cache.DefaultConfig()
	a, err := sharing.Analyze(p, phases, int64(cfg.LineSize), la)
	if err != nil {
		log.Fatal(err)
	}
	a.RenderText(os.Stdout)

	// Dynamic pass: rerun with the access and coherence observers and
	// score every claim and prediction against what the machine did.
	obs, err := sharing.VerifyRun(p, phases, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep := sharing.CrossCheck(a, obs)
	rep.RenderText(os.Stdout)

	// Apply the advice: pad each per-thread slot to its own line, and
	// measure both layouts without any instrumentation attached.
	dense := run(p, phases)
	pw := workloads.PaddedFalseShare(cfg.LineSize)
	pp, pphases, err := pw.Build(nil, workloads.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	padded := run(pp, pphases)

	fmt.Printf("Advice applied (slots padded to the %d-byte line):\n", cfg.LineSize)
	fmt.Printf("  dense:  %9d cycles  %6d write-invalidations\n",
		dense.AppWallCycles, dense.Cache.WriteInvalidations)
	fmt.Printf("  padded: %9d cycles  %6d write-invalidations\n",
		padded.AppWallCycles, padded.Cache.WriteInvalidations)
	fmt.Printf("  speedup %.2fx, invalidations cut %dx\n",
		float64(dense.AppWallCycles)/float64(padded.AppWallCycles),
		dense.Cache.WriteInvalidations/max1(padded.Cache.WriteInvalidations))
}

func run(p *prog.Program, phases []workloads.Phase) vm.Stats {
	st, err := structslim.Run(p, phases, structslim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func max1(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}
