// Array regrouping: the paper's future-work direction, working.
//
// The inverse of structure splitting: three separate arrays x, y, z,
// where x and y are always read together in the hot loop and z is read
// alone. The regrouping analysis (internal/regroup, built on the same
// Equation 7 affinity machinery) advises interleaving x and y into one
// array of structs, and we verify the advice by measuring the interleaved
// layout.
//
//	go run ./examples/regroup
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/structslim"
)

const (
	numElems = 65536
	numReps  = 12
)

// build lowers the kernel against a layout of the logical record
// {x, y, z}: AoS of singletons = three separate arrays (the "before"),
// {x,y}|{z} = the advised regrouping (the "after").
func build(l *prog.PhysLayout) *prog.Program {
	b := prog.NewBuilder("xyz")
	tids := b.RegisterLayout(l)
	arrG := make([]int, l.NumArrays())
	for ai := range arrG {
		arrG[ai] = b.Global(l.Structs[ai].Name, numElems*int64(l.Structs[ai].Size), tids[ai])
	}
	b.Func("main", "xyz.c")
	regs := make([]isa.Reg, l.NumArrays())
	for ai := range regs {
		regs[ai] = b.R()
		b.GAddr(regs[ai], arrG[ai])
	}
	i, a, c, rep := b.R(), b.R(), b.R(), b.R()
	b.AtLine(5)
	b.ForRange(i, 0, numElems, 1, func() {
		b.StoreField(i, l, regs, i, "x")
		b.StoreField(i, l, regs, i, "y")
		b.StoreField(i, l, regs, i, "z")
	})
	// Hot loop: x[j] + y[j] at a *scrambled* index j — the access
	// pattern where regrouping pays: with separate arrays every
	// iteration touches two random cache lines; interleaved, x[j] and
	// y[j] share one.
	j, nReg := b.R(), b.R()
	b.MovI(nReg, numElems)
	b.AtLine(10)
	b.ForRange(rep, 0, numReps, 1, func() {
		b.ForRange(i, 0, numElems, 1, func() {
			b.AtLine(11)
			b.MulI(j, i, 40503)
			b.Rem(j, j, nReg)
			b.LoadField(a, l, regs, j, "x")
			b.LoadField(c, l, regs, j, "y")
			b.Add(a, a, c)
		})
	})
	b.AtLine(20)
	b.ForRange(rep, 0, numReps, 1, func() {
		b.ForRange(i, 0, numElems, 1, func() {
			b.AtLine(21)
			b.LoadField(a, l, regs, i, "z")
		})
	})
	b.Halt()
	return b.MustProgram()
}

func main() {
	record := prog.MustRecord("elem",
		prog.Field{Name: "x", Size: 8},
		prog.Field{Name: "y", Size: 8},
		prog.Field{Name: "z", Size: 8},
	)
	// "Before": three separate arrays — the all-singletons split.
	separate, err := prog.Split(record, [][]string{{"x"}, {"y"}, {"z"}})
	if err != nil {
		log.Fatal(err)
	}
	opts := structslim.Options{SamplePeriod: 1_000, Seed: 4}

	res, err := structslim.ProfileRun(build(separate), nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := structslim.AnalyzeRegrouping(res, build(separate), opts, nil)
	if err != nil {
		log.Fatal(err)
	}
	rr.RenderText(os.Stdout)

	// Apply the advice: interleave x and y.
	regrouped, err := prog.Split(record, [][]string{{"x", "y"}, {"z"}})
	if err != nil {
		log.Fatal(err)
	}
	base, err := structslim.Run(build(separate), nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	improved, err := structslim.Run(build(regrouped), nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSeparate arrays : %12d cycles\n", base.AppWallCycles)
	fmt.Printf("x,y interleaved : %12d cycles\n", improved.AppWallCycles)
	fmt.Printf("Speedup         : %.2fx\n",
		float64(base.AppWallCycles)/float64(improved.AppWallCycles))
}
