// Parallel profiling: CLOMP at four threads (Section 6.5).
//
// Shows the scalable side of StructSlim: each thread samples and analyzes
// its own accesses without synchronization, profiles are written one file
// per thread (as the real profiler does), loaded back, merged with the
// parallel reduction tree, and analyzed as one program — recovering the
// paper's {value, nextZone} | {zoneId, partId} split of the Zone struct.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/workloads"
	"repro/structslim"
)

func main() {
	w, err := workloads.Get("clomp")
	if err != nil {
		log.Fatal(err)
	}
	opts := structslim.Options{SamplePeriod: 3_000, Seed: 1}

	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	res, err := structslim.ProfileRun(p, phases, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Per-thread profiles, one file each — then read back and merged via
	// the reduction tree, exactly like the offline analyzer.
	dir, err := os.MkdirTemp("", "structslim-profiles-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := profile.WriteDir(dir, res.ThreadProfiles); err != nil {
		log.Fatal(err)
	}
	loaded, err := profile.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wrote and re-read %d per-thread profiles:\n", len(loaded))
	for _, tp := range loaded {
		fmt.Printf("  thread %d: %6d samples, %10d memory accesses, overhead %.2f%%\n",
			tp.TID, tp.NumSamples, tp.MemOps,
			100*float64(tp.OverheadCycles)/float64(tp.AppCycles))
	}
	merged, err := profile.ReduceThreadProfiles(loaded, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Merged: %d samples across %d threads\n\n", merged.NumSamples, merged.Threads)

	rep, err := structslim.Analyze(&structslim.RunResult{Stats: res.Stats, Profile: merged}, p, opts)
	if err != nil {
		log.Fatal(err)
	}
	rep.RenderText(os.Stdout)

	// And the payoff.
	sr := structslim.FindStruct(rep, "_Zone")
	if sr == nil {
		log.Fatal("_Zone not identified")
	}
	layout, err := structslim.Optimize(w.Record(), sr)
	if err != nil {
		log.Fatal(err)
	}
	base := mustRun(w, nil, opts)
	improved := mustRun(w, layout, opts)
	fmt.Printf("4-thread speedup after splitting: %.2fx (paper: 1.25x)\n",
		float64(base)/float64(improved))
}

func mustRun(w workloads.Workload, l *prog.PhysLayout, opts structslim.Options) uint64 {
	p, phases, err := w.Build(l, workloads.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	st, err := structslim.Run(p, phases, opts)
	if err != nil {
		log.Fatal(err)
	}
	return st.AppWallCycles
}
