package repro_test

// Static-vs-dynamic reuse differential over the paper's seven workloads:
// every loop nest the static predictor claims (exact tier) is verified
// against an actual simulated execution — histogram bucket-by-bucket,
// FromTrace replay of the first execution, and per-level miss ratios
// within the stated tolerance. Prefetching is disabled for these runs:
// the stack model predicts demand behaviour.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/staticlint"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func runWithChecker(t *testing.T, name string) (*staticlint.ReusePrediction, *staticlint.ReuseReport) {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	a, err := staticlint.AnalyzeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.DefaultConfig()
	cfg.Prefetch = false
	rp := staticlint.PredictReuse(a, cfg)

	cores := 1
	for _, ph := range phases {
		for _, ts := range ph {
			if ts.Core+1 > cores {
				cores = ts.Core + 1
			}
		}
	}
	m, err := vm.NewMachine(p, cfg, cores, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tc := staticlint.NewTraceChecker(rp)
	m.Observer = tc
	var last vm.Stats
	for _, ph := range phases {
		st, err := m.Run(ph)
		if err != nil {
			t.Fatal(err)
		}
		last = st // machine cache counters are cumulative
	}
	return rp, tc.Finish(last)
}

func TestReuseDifferentialWorkloads(t *testing.T) {
	predicted := 0
	for _, name := range workloads.PaperOrder {
		t.Run(name, func(t *testing.T) {
			rp, rr := runWithChecker(t, name)
			t.Logf("%s: %d nests predicted, %d skipped, %d executed, stray=%d",
				name, len(rp.Nests), len(rp.Skipped), len(rr.Nests), rr.Stray)
			for _, nc := range rr.Nests {
				predicted++
				if !nc.HistMatch {
					t.Errorf("nest %#x (%d execs): histogram diverged: %s",
						nc.Key, nc.Execs, nc.HistDetail)
				}
				if !nc.TraceMatch {
					t.Errorf("nest %#x: %s", nc.Key, nc.TraceDetail)
				}
				for _, lc := range nc.Levels {
					if !lc.OK {
						t.Errorf("nest %#x %s: predicted miss ratio %.4f, measured %.4f (tolerance %.2f)",
							nc.Key, lc.Name, lc.Predicted, lc.Measured, staticlint.LevelTolerance)
					}
				}
			}
			if rr.WholeRun != nil && !rr.WholeRun.OK {
				t.Errorf("whole-run L1: measured %.4f outside predicted [%.4f, %.4f]",
					rr.WholeRun.Measured, rr.WholeRun.PredictedLow, rr.WholeRun.PredictedHigh)
			}
			if !rr.OK() {
				t.Errorf("reuse report failed: %d failures", rr.Failures)
			}
		})
	}
	if predicted == 0 {
		t.Errorf("no nest of any workload was verified — the predictor claimed nothing")
	}
}
