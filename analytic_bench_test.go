package repro_test

// BenchmarkAnalyticSweep quantifies what the analytic phase synthesis
// buys: the same profiled runs (the exact-tier paper workloads) once
// through the full VM + cache simulation and once synthesized from the
// static plan. The reported "speedup" metric is the acceptance gate for
// the feature (>= 2x); advice equality is proven separately by
// TestAnalyticTwinAdvice.

import (
	"testing"
	"time"

	"repro/internal/workloads"
	"repro/structslim"
)

func BenchmarkAnalyticSweep(b *testing.B) {
	names := []string{"art", "libquantum"}
	opt := structslim.Options{SamplePeriod: 3000, Seed: 7}
	anaOpt := opt
	anaOpt.Analysis.AnalyticPhases = true

	var simNs, anaNs time.Duration
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			w, err := workloads.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			p, phases, err := w.Build(nil, benchScale())
			if err != nil {
				b.Fatal(err)
			}
			t0 := time.Now()
			if _, err := structslim.ProfileRun(p, phases, opt); err != nil {
				b.Fatal(err)
			}
			simNs += time.Since(t0)

			p2, phases2, err := w.Build(nil, benchScale())
			if err != nil {
				b.Fatal(err)
			}
			t1 := time.Now()
			res, err := structslim.ProfileRun(p2, phases2, anaOpt)
			if err != nil {
				b.Fatal(err)
			}
			anaNs += time.Since(t1)
			if res.Stats.Cache.PrefetchIssued != 0 {
				b.Fatalf("%s did not take the analytic path", name)
			}
		}
	}
	if anaNs > 0 {
		b.ReportMetric(float64(simNs)/float64(anaNs), "speedup")
	}
	b.ReportMetric(float64(simNs.Nanoseconds())/float64(b.N), "sim-ns/sweep")
	b.ReportMetric(float64(anaNs.Nanoseconds())/float64(b.N), "analytic-ns/sweep")
}
