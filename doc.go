// Package repro is a from-scratch Go reproduction of "StructSlim: A
// Lightweight Profiler to Guide Structure Splitting" (Probir Roy and Xu
// Liu, CGO 2016).
//
// The public API lives in package repro/structslim; the simulated
// machine, the profiler, the analyzer, and the paper's benchmarks live
// under internal/. The root package exists to carry module documentation
// and the benchmark harness (bench_test.go), which regenerates every
// table and figure of the paper's evaluation. See README.md, DESIGN.md,
// and EXPERIMENTS.md.
package repro
