package structslim

// White-box tests of the facade's option plumbing and phase handling.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/pebs"
	"repro/internal/prog"
	"repro/internal/vm"
)

func TestSamplerConfigPlumbing(t *testing.T) {
	c := Options{}.samplerConfig()
	if c.Period != pebs.DefaultConfig().Period || c.Mode != pebs.ModePEBSLL || !c.Randomize {
		t.Errorf("defaults wrong: %+v", c)
	}
	c = Options{
		SamplePeriod:     123,
		IBS:              true,
		NoRandomize:      true,
		Seed:             9,
		InterruptCost:    42,
		SharedAttribCost: 7,
		MinLatency:       5,
	}.samplerConfig()
	if c.Period != 123 || c.Mode != pebs.ModeIBS || c.Randomize || c.Seed != 9 ||
		c.InterruptCost != 42 || c.SharedAttribCost != 7 || c.MinLatency != 5 {
		t.Errorf("plumbing wrong: %+v", c)
	}
}

func TestCacheConfigPlumbing(t *testing.T) {
	if got := (Options{}).cacheConfig(); got.LineSize != cache.DefaultConfig().LineSize {
		t.Error("default cache config not used")
	}
	custom := cache.DefaultConfig()
	custom.MemLatency = 999
	if got := (Options{Cache: &custom}).cacheConfig(); got.MemLatency != 999 {
		t.Error("custom cache config ignored")
	}
}

func TestCoresFor(t *testing.T) {
	phases := []Phase{
		{vm.ThreadSpec{Core: 0}, vm.ThreadSpec{Core: 3}},
		{vm.ThreadSpec{Core: 1}},
	}
	if got := coresFor(phases, 0); got != 4 {
		t.Errorf("coresFor = %d, want 4", got)
	}
	if got := coresFor(phases, 8); got != 8 {
		t.Errorf("override ignored: %d", got)
	}
	if got := coresFor(nil, 0); got != 1 {
		t.Errorf("empty phases = %d, want 1", got)
	}
}

func TestMaxThreads(t *testing.T) {
	phases := []Phase{
		{vm.ThreadSpec{}},
		{vm.ThreadSpec{}, vm.ThreadSpec{}, vm.ThreadSpec{}},
	}
	if got := maxThreads(phases); got != 3 {
		t.Errorf("maxThreads = %d, want 3", got)
	}
	if got := maxThreads(nil); got != 1 {
		t.Errorf("maxThreads(nil) = %d, want 1", got)
	}
}

// tinyProgram is a minimal two-phase program for phase accounting tests.
func tinyProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("tiny")
	g := b.Global("a", 4096, -1)
	b.Func("phase1", "t.c")
	base, i := b.R(), b.R()
	b.GAddr(base, g)
	b.ForRange(i, 0, 100, 1, func() {
		b.Store(i, base, i, 8, 0, 8)
	})
	b.Halt()
	b.Func("phase2", "t.c")
	base2, j, w := b.R(), b.R(), b.R()
	b.GAddr(base2, g)
	b.ForRange(j, 0, 100, 1, func() {
		b.Load(w, base2, j, 8, 0, 8)
	})
	b.Halt()
	return b.MustProgram()
}

func TestRunPhasesAccumulates(t *testing.T) {
	p := tinyProgram(t)
	one, err := Run(p, []Phase{{vm.ThreadSpec{Fn: 0}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Run(p, []Phase{{vm.ThreadSpec{Fn: 0}}, {vm.ThreadSpec{Fn: 1}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if both.Instrs <= one.Instrs || both.WallCycles <= one.WallCycles {
		t.Errorf("phase accumulation lost work: one=%+v both=%+v", one.Instrs, both.Instrs)
	}
	if both.MemOps != 200 {
		t.Errorf("memops = %d, want 200", both.MemOps)
	}
	if len(both.PerThread) == 0 {
		t.Error("per-thread stats missing")
	}
}

func TestProfileRunDeterministic(t *testing.T) {
	run := func() uint64 {
		p := tinyProgram(t)
		res, err := ProfileRun(p, []Phase{{vm.ThreadSpec{Fn: 0}}, {vm.ThreadSpec{Fn: 1}}},
			Options{SamplePeriod: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile.NumSamples*1_000_000 + res.Stats.WallCycles
	}
	if run() != run() {
		t.Error("profiled runs are not deterministic")
	}
}

func TestIBSOptionChangesSampling(t *testing.T) {
	// In expectation IBS and PEBS-LL yield the *same* address-sample
	// count at equal periods — instrs/period × memop-density equals
	// memops/period — the semantic difference is which accesses are
	// picked and that IBS tags landing on non-memory ops are lost. So
	// assert both modes sample, with counts in the same ballpark.
	collect := func(ibs bool) uint64 {
		p := tinyProgram(t)
		res, err := ProfileRun(p, nil, Options{SamplePeriod: 16, Seed: 3, IBS: ibs})
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile.NumSamples
	}
	pebsN := collect(false)
	ibsN := collect(true)
	if pebsN == 0 || ibsN == 0 {
		t.Fatalf("a mode produced no samples: pebs=%d ibs=%d", pebsN, ibsN)
	}
	if ibsN > pebsN*4 || pebsN > ibsN*4 {
		t.Errorf("sample counts wildly different: pebs=%d ibs=%d", pebsN, ibsN)
	}
}

func TestOptimizeNilReport(t *testing.T) {
	rec := prog.MustRecord("r", prog.Field{Name: "a", Size: 8})
	if _, err := Optimize(rec, nil); err == nil {
		t.Error("nil struct report accepted")
	}
}

func TestRunRejectsBadPhases(t *testing.T) {
	p := tinyProgram(t)
	if _, err := Run(p, []Phase{{vm.ThreadSpec{Fn: 99}}}, Options{}); err == nil {
		t.Error("bad function accepted")
	}
}
