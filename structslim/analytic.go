package structslim

// analytic.go — analytic phase synthesis: when every loop of a phase is
// exact tier (the static planner recovers the full access schedule with
// closed-form addresses and trip counts), the phase's profile
// contribution is synthesized by replaying the schedule against an O(1)
// LRU stack model, skipping both the VM interpreter and the cache
// simulator. The *real* PEBS sampler is driven with fabricated MemEvents
// whose IPs, addresses, cycle counts, and instruction counts are exactly
// those the interpreter would produce — sampling is access-count driven,
// so the sampled stream is identical and the advice is unchanged. Only
// the per-access serving level (and hence the sampled latency) comes
// from the fully-associative stack model instead of the set-associative
// simulated hierarchy.
//
// Gated behind core.Options.AnalyticPhases. The routing is
// all-or-nothing: any phase outside the exact tier (multithreaded, an
// ineligible function, IBS mode, a latency filter) falls back to full
// simulation for the entire run, which is trivially identical.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pebs"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/reuse"
	"repro/internal/staticlint"
	"repro/internal/vm"
)

// planAnalytic decides whether the whole run is analytically synthesizable
// and returns the per-function plans; the string is the fallback reason
// when it is not.
func planAnalytic(p *prog.Program, phases []Phase, opt Options) (map[int]*staticlint.FnPlan, string) {
	if opt.IBS {
		return nil, "IBS mode periods off retired instructions"
	}
	if opt.MinLatency != 0 {
		return nil, "PEBS latency filter depends on simulated serving levels"
	}
	for pi, ph := range phases {
		if len(ph) != 1 {
			return nil, fmt.Sprintf("phase %d runs %d threads", pi, len(ph))
		}
	}
	a, err := staticlint.AnalyzeProgram(p)
	if err != nil {
		return nil, err.Error()
	}
	plans := make(map[int]*staticlint.FnPlan)
	for _, ph := range phases {
		fn := ph[0].Fn
		if _, ok := plans[fn]; ok {
			continue
		}
		plan := staticlint.PlanFunction(a, fn)
		if !plan.Eligible {
			return nil, fmt.Sprintf("%s: %s", plan.FnName, plan.Reason)
		}
		plans[fn] = plan
	}
	return plans, ""
}

// analyticReplay holds the run-wide synthesis state: the stack model and
// the fabricated cache counters persist across phases, exactly as the
// machine's hierarchy does.
type analyticReplay struct {
	bases     []uint64
	lineShift uint
	sm        *reuse.StackModel
	latencies []uint32 // per band; last entry is memory
	sampler   *pebs.Sampler
	tid       int

	// Per-phase thread counters (reset each phase, like vm.Run's fresh
	// threads).
	instrs, cycles, overhead, memops uint64

	// Cumulative fabricated hierarchy counters.
	levels         []cache.LevelStats
	demandAccesses uint64
}

func (ar *analyticReplay) runItems(items []staticlint.PlanItem, k []int64) {
	for i := range items {
		it := &items[i]
		switch {
		case it.Access != nil:
			ar.access(it.Access, k)
		case it.Loop != nil:
			lp := it.Loop
			for ki := int64(0); ki < lp.Trips; ki++ {
				ar.instrs += lp.HeadInstrs
				ar.cycles += lp.HeadCycles
				k[lp.Depth] = ki
				ar.runItems(lp.Body, k)
			}
			// The final failing bound check.
			ar.instrs += lp.HeadInstrs
			ar.cycles += lp.HeadCycles
		default:
			ar.instrs += it.Instrs
			ar.cycles += it.Cycles
		}
	}
}

func (ar *analyticReplay) access(tpl *staticlint.AccessTpl, k []int64) {
	ea := int64(ar.bases[tpl.GlobalIx]) + tpl.Disp
	for d, c := range tpl.Coeff {
		ea += c * k[d]
	}
	band := ar.sm.Touch(uint64(ea) >> ar.lineShift)
	lat := ar.latencies[band]

	// Mirror the interpreter's accounting order: opcode cost, then the
	// hierarchy latency; the event carries the thread clock and retired
	// count including the current instruction.
	ar.instrs++
	ar.memops++
	ar.cycles += vm.CostOf(isa.Load) + uint64(lat)

	ar.demandAccesses++
	for l := range ar.levels {
		if band < l {
			break
		}
		ar.levels[l].Accesses++
		if band == l {
			ar.levels[l].Hits++
		} else {
			ar.levels[l].Misses++
		}
	}

	ev := vm.MemEvent{
		TID:     ar.tid,
		IP:      tpl.IP,
		EA:      uint64(ea),
		Size:    tpl.Size,
		Write:   tpl.Write,
		Latency: lat,
		Level:   uint8(band + 1),
		Cycle:   ar.cycles + ar.overhead,
		Instrs:  ar.instrs,
		Ctx:     0, // exact-tier functions are call-free
	}
	ar.overhead += ar.sampler.OnAccess(&ev)
}

// analyticProfileRun synthesizes the whole profiled run. The bool reports
// whether synthesis applied; (nil, false, nil) means the caller must fall
// back to full simulation.
func analyticProfileRun(p *prog.Program, phases []Phase, opt Options) (*RunResult, bool, error) {
	plans, _ := planAnalytic(p, phases, opt)
	if plans == nil {
		return nil, false, nil
	}
	cfg := opt.cacheConfig()
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}

	// Replicate the loader's address space so the sampler's data-centric
	// attribution sees the same objects at the same addresses.
	space := mem.NewSpace()
	bases := make([]uint64, len(p.Globals))
	var lastEnd uint64
	for gi, g := range p.Globals {
		o := space.AllocStatic(g.Name, uint64(g.Size), g.TypeID, gi)
		bases[gi] = o.Base
		lastEnd = o.Base + o.Size
	}

	caps := make([]uint64, len(cfg.Levels))
	lats := make([]uint32, len(cfg.Levels)+1)
	for i, lv := range cfg.Levels {
		caps[i] = uint64(lv.Size) / uint64(cfg.LineSize)
		lats[i] = uint32(lv.Latency)
	}
	lats[len(cfg.Levels)] = uint32(cfg.MemLatency)

	ar := &analyticReplay{
		bases:     bases,
		sm:        reuse.NewStackModel(caps),
		latencies: lats,
		sampler:   pebs.NewSampler(opt.samplerConfig(), space, maxThreads(phases)),
		levels:    make([]cache.LevelStats, len(cfg.Levels)),
	}
	for i, lv := range cfg.Levels {
		ar.levels[i].Name = lv.Name
	}
	for sz := cfg.LineSize; sz > 1; sz >>= 1 {
		ar.lineShift++
	}
	if len(p.Globals) > 0 {
		lo := bases[0] >> ar.lineShift
		ar.sm.Prime(lo, (lastEnd>>ar.lineShift)-lo+1)
	}

	var total vm.Stats
	var thread vm.ThreadStats
	for _, ph := range phases {
		plan := plans[ph[0].Fn]
		ar.tid = 0
		ar.instrs, ar.cycles, ar.overhead, ar.memops = 0, 0, 0, 0
		k := make([]int64, planDepth(plan.Items))
		ar.runItems(plan.Items, k)

		total.Instrs += ar.instrs
		total.MemOps += ar.memops
		total.WallCycles += ar.cycles + ar.overhead
		total.AppWallCycles += ar.cycles
		thread.Cycles += ar.cycles
		thread.OverheadCycles += ar.overhead
		thread.Instrs += ar.instrs
		thread.MemOps += ar.memops
	}
	total.PerThread = []vm.ThreadStats{thread}
	total.Cache = cache.Stats{
		Levels:         append([]cache.LevelStats(nil), ar.levels...),
		DemandAccesses: ar.demandAccesses,
	}

	tps := ar.sampler.Finish(total)
	merged, err := profile.ReduceThreadProfiles(tps, opt.MergeWorkers)
	if err != nil {
		return nil, false, err
	}
	return &RunResult{Stats: total, Profile: merged, ThreadProfiles: tps}, true, nil
}

// planDepth returns the iteration-vector length a plan needs (loop Depths
// are absolute).
func planDepth(items []staticlint.PlanItem) int {
	d := 0
	for i := range items {
		if lp := items[i].Loop; lp != nil {
			if lp.Depth+1 > d {
				d = lp.Depth + 1
			}
			if n := planDepth(lp.Body); n > d {
				d = n
			}
		}
	}
	return d
}
