package structslim_test

// End-to-end test on the paper's Figure 1 program: an array of
// struct {int a, b, c, d}; one loop reads a and c, another reads b and d.
// StructSlim must (1) find the array among the hot data, (2) infer the
// 16-byte structure size from sparse samples, (3) attribute the two loops
// to the right field pairs, (4) compute affinities A(a,c)=A(b,d)=1 and
// A(a,b)=0, and (5) advise the {a,c} | {b,d} split — and the split
// program must actually run faster on the simulated machine.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/vm"
	"repro/structslim"
)

// figure1Record is the paper's struct type.
func figure1Record() *prog.RecordSpec {
	return prog.MustRecord("type",
		prog.Field{Name: "a", Size: 4},
		prog.Field{Name: "b", Size: 4},
		prog.Field{Name: "c", Size: 4},
		prog.Field{Name: "d", Size: 4},
	)
}

// buildFigure1 lowers the Figure 1 program against a layout. N array
// elements, `reps` repetitions of the two-loop sequence so the sampler
// sees enough of each stream.
func buildFigure1(l *prog.PhysLayout, n, reps int64) *prog.Program {
	b := prog.NewBuilder("figure1")
	tids := b.RegisterLayout(l)

	// One global array per physical struct, plus output arrays B and C.
	arrG := make([]int, l.NumArrays())
	for ai := 0; ai < l.NumArrays(); ai++ {
		arrG[ai] = b.Global("Arr."+l.Structs[ai].Name, n*int64(l.Structs[ai].Size), tids[ai])
	}
	bG := b.Global("B", n*4, -1)
	cG := b.Global("C", n*4, -1)

	b.Func("main", "figure1.c")
	bases := make([]isa.Reg, l.NumArrays())
	for ai := range bases {
		bases[ai] = b.R()
		b.GAddr(bases[ai], arrG[ai])
	}
	bBase, cBase := b.R(), b.R()
	b.GAddr(bBase, bG)
	b.GAddr(cBase, cG)

	rep, i, x, y := b.R(), b.R(), b.R(), b.R()
	b.ForRange(rep, 0, reps, 1, func() {
		// for (i = 0; i < N; i++) B[i] = Arr[i].a + Arr[i].c;
		b.AtLine(4)
		b.ForRange(i, 0, n, 1, func() {
			b.AtLine(5)
			b.LoadField(x, l, bases, i, "a")
			b.LoadField(y, l, bases, i, "c")
			b.Add(x, x, y)
			b.Store(x, bBase, i, 4, 0, 4)
		})
		// for (i = 0; i < N; i++) C[i] = Arr[i].b + Arr[i].d;
		b.AtLine(8)
		b.ForRange(i, 0, n, 1, func() {
			b.AtLine(9)
			b.LoadField(x, l, bases, i, "b")
			b.LoadField(y, l, bases, i, "d")
			b.Add(x, x, y)
			b.Store(x, cBase, i, 4, 0, 4)
		})
	})
	b.Halt()
	return b.MustProgram()
}

func figure1Options() structslim.Options {
	return structslim.Options{
		SamplePeriod: 2000,
		Seed:         7,
		Analysis:     core.Options{TopK: 3},
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	rec := figure1Record()
	aos := prog.AoS(rec)
	if aos.Structs[0].Size != 16 {
		t.Fatalf("AoS size = %d, want 16", aos.Structs[0].Size)
	}
	p := buildFigure1(aos, 32768, 10)

	res, rep, err := structslim.ProfileAndAnalyze(p, nil, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.NumSamples < 100 {
		t.Fatalf("too few samples: %d", res.Profile.NumSamples)
	}

	sr := structslim.FindStruct(rep, "type")
	if sr == nil {
		var names []string
		for _, s := range rep.Structures {
			names = append(names, s.Name)
		}
		t.Fatalf("struct 'type' not among analyzed structures %v", names)
	}

	// (2) Structure size recovered from samples.
	if sr.InferredSize != 16 {
		t.Errorf("inferred size = %d, want 16", sr.InferredSize)
	}
	if sr.TrueSize != 16 {
		t.Errorf("true size = %d, want 16", sr.TrueSize)
	}

	// (3) All four fields seen, at the right offsets.
	wantFields := map[uint64]string{0: "a", 4: "b", 8: "c", 12: "d"}
	if len(sr.Fields) != 4 {
		t.Fatalf("fields = %+v, want 4", sr.Fields)
	}
	for _, f := range sr.Fields {
		if wantFields[f.Offset] != f.Name {
			t.Errorf("field at %d = %s, want %s", f.Offset, f.Name, wantFields[f.Offset])
		}
	}

	// (3b) Two loops, each touching its pair.
	var pairs []string
	for _, lr := range sr.Loops {
		if lr.Loop == nil {
			continue
		}
		pairs = append(pairs, strings.Join(lr.FieldNames, ","))
	}
	joined := strings.Join(pairs, " ")
	if !strings.Contains(joined, "a,c") || !strings.Contains(joined, "b,d") {
		t.Errorf("loop field sets = %v, want a,c and b,d", pairs)
	}

	// (4) Affinities.
	if got := sr.Affinity.Affinity(0, 8); got < 0.99 {
		t.Errorf("A(a,c) = %v, want 1", got)
	}
	if got := sr.Affinity.Affinity(4, 12); got < 0.99 {
		t.Errorf("A(b,d) = %v, want 1", got)
	}
	if got := sr.Affinity.Affinity(0, 4); got > 0.01 {
		t.Errorf("A(a,b) = %v, want 0", got)
	}

	// (5) Advice: exactly {a,c} and {b,d}.
	if sr.Advice == nil || !sr.Advice.Complete {
		t.Fatalf("advice missing or incomplete: %+v", sr.Advice)
	}
	groups := sr.Advice.FieldGroups()
	if len(groups) != 2 {
		t.Fatalf("advice groups = %v, want 2", groups)
	}
	got := []string{strings.Join(groups[0], ","), strings.Join(groups[1], ",")}
	if got[0] != "a,c" || got[1] != "b,d" {
		t.Errorf("advice = %v, want [a,c b,d]", got)
	}
}

func TestFigure1SplitRunsFaster(t *testing.T) {
	rec := figure1Record()
	opt := figure1Options()

	// Profile the original, derive the split layout from the advice.
	orig := buildFigure1(prog.AoS(rec), 32768, 10)
	_, rep, err := structslim.ProfileAndAnalyze(orig, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	sr := structslim.FindStruct(rep, "type")
	if sr == nil {
		t.Fatal("struct not found")
	}
	splitLayout, err := structslim.Optimize(rec, sr)
	if err != nil {
		t.Fatal(err)
	}
	if !splitLayout.IsSplit() || splitLayout.NumArrays() != 2 {
		t.Fatalf("split layout = %v", splitLayout)
	}

	// Measure both versions unprofiled.
	base, err := structslim.Run(buildFigure1(prog.AoS(rec), 32768, 10), nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	improved, err := structslim.Run(buildFigure1(splitLayout, 32768, 10), nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base.AppWallCycles) / float64(improved.AppWallCycles)
	if speedup < 1.05 {
		t.Errorf("split speedup = %.3f×, want > 1.05× (orig %d vs split %d cycles)",
			speedup, base.AppWallCycles, improved.AppWallCycles)
	}
	// Each loop touches half the bytes per element after the split, so
	// L1 misses on the array drop substantially.
	if improved.Cache.Level("L1").Misses >= base.Cache.Level("L1").Misses {
		t.Errorf("L1 misses did not drop: %d → %d",
			base.Cache.Level("L1").Misses, improved.Cache.Level("L1").Misses)
	}
}

func TestFigure1Rendering(t *testing.T) {
	rec := figure1Record()
	p := buildFigure1(prog.AoS(rec), 2048, 20)
	_, rep, err := structslim.ProfileAndAnalyze(p, nil, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	rep.RenderText(&txt)
	out := txt.String()
	for _, want := range []string{"Hot data structures", "type", "Splitting advice", "struct"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q\n%s", want, out)
		}
	}
	sr := structslim.FindStruct(rep, "type")
	var dot bytes.Buffer
	sr.WriteDot(&dot)
	d := dot.String()
	for _, want := range []string{"graph affinity", "subgraph cluster_0", "--", "label"} {
		if !strings.Contains(d, want) {
			t.Errorf("dot output missing %q\n%s", want, d)
		}
	}
}

func TestOverheadIsSmall(t *testing.T) {
	// With the paper's 10k period the measured overhead must land in the
	// single digits; with a 100× denser period it must be much larger.
	rec := figure1Record()
	p := buildFigure1(prog.AoS(rec), 32768, 10)
	res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 10_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	light := res.Stats.OverheadPct()
	if light <= 0 || light > 15 {
		t.Errorf("overhead at period 10k = %.2f%%, want low single digits", light)
	}
	p2 := buildFigure1(prog.AoS(rec), 32768, 10)
	res2, err := structslim.ProfileRun(p2, nil, structslim.Options{SamplePeriod: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if heavy := res2.Stats.OverheadPct(); heavy < light*10 {
		t.Errorf("dense sampling overhead %.2f%% should dwarf sparse %.2f%%", heavy, light)
	}
}

func TestRunDefaultsToEntry(t *testing.T) {
	rec := figure1Record()
	p := buildFigure1(prog.AoS(rec), 128, 1)
	st, err := structslim.Run(p, nil, structslim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instrs == 0 {
		t.Error("no instructions executed")
	}
}

func TestAnalyzeNilResult(t *testing.T) {
	if _, err := structslim.Analyze(nil, nil, structslim.Options{}); err == nil {
		t.Error("nil result accepted")
	}
}

func TestExplicitPhases(t *testing.T) {
	rec := figure1Record()
	p := buildFigure1(prog.AoS(rec), 512, 2)
	st, err := structslim.Run(p, []structslim.Phase{{vm.ThreadSpec{Fn: p.EntryFn}}}, structslim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instrs == 0 {
		t.Error("no instructions executed")
	}
}
