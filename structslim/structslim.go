// Package structslim is the public API of the StructSlim reproduction: a
// lightweight profiler that pinpoints arrays-of-structures worth
// splitting, after Roy & Liu, "StructSlim: A Lightweight Profiler to
// Guide Structure Splitting" (CGO 2016).
//
// The workflow mirrors the paper's tool:
//
//	program  := ...                          // a synthetic binary (internal/prog)
//	res, _   := structslim.ProfileRun(program, phases, opts)   // online profiler
//	report, _ := structslim.Analyze(res, program, opts)        // offline analyzer
//	report.RenderText(os.Stdout)                               // advice + tables
//
// ProfileRun executes the program on the simulated machine with PEBS-LL
// style address sampling attached; Analyze recovers loops from the
// binary, ranks data structures by latency share, runs the GCD stride
// analysis, computes field affinities, and emits splitting advice. Run
// executes without the profiler for baseline timing, and Optimize applies
// the advice to a record layout so the improved program can be rebuilt
// and measured.
package structslim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/legality"
	"repro/internal/pebs"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/regroup"
	"repro/internal/split"
	"repro/internal/vm"
)

// Phase is one stage of a program's execution: the threads launched
// together and run to completion before the next phase starts (e.g. a
// sequential initialization phase followed by a parallel compute phase).
// It is an alias so workload packages can return phases without importing
// this package.
type Phase = []vm.ThreadSpec

// Options configures profiling and analysis. The zero value gives the
// paper's defaults.
type Options struct {
	// SamplePeriod is the number of memory accesses per address sample
	// (paper: 10,000). 0 uses the default.
	SamplePeriod uint64
	// IBS switches the sampler to AMD-IBS semantics: the period counts
	// retired instructions and tags landing on non-memory instructions
	// are lost. Default is Intel PEBS-LL semantics.
	IBS bool
	// Seed drives period randomization deterministically.
	Seed uint64
	// NoRandomize disables sampling-period jitter.
	NoRandomize bool
	// InterruptCost / SharedAttribCost override the sampler's overhead
	// model when nonzero.
	InterruptCost    uint64
	SharedAttribCost uint64
	// MinLatency is the PEBS-LL latency threshold filter.
	MinLatency uint32

	// Cache overrides the simulated hierarchy (nil = the paper's Xeon
	// E5-4650L model).
	Cache *cache.Config
	// Cores sets the simulated core count (0 = max core used + 1).
	Cores int
	// VM tunes the interpreter.
	VM vm.Config
	// MergeWorkers bounds the parallel reduction-tree profile merge.
	MergeWorkers int

	// Analysis tunes the offline analyzer.
	Analysis core.Options
}

func (o Options) samplerConfig() pebs.Config {
	c := pebs.DefaultConfig()
	if o.SamplePeriod != 0 {
		c.Period = o.SamplePeriod
	}
	if o.IBS {
		c.Mode = pebs.ModeIBS
	}
	c.Seed = o.Seed
	c.Randomize = !o.NoRandomize
	if o.InterruptCost != 0 {
		c.InterruptCost = o.InterruptCost
	}
	if o.SharedAttribCost != 0 {
		c.SharedAttribCost = o.SharedAttribCost
	}
	c.MinLatency = o.MinLatency
	return c
}

func (o Options) cacheConfig() cache.Config {
	if o.Cache != nil {
		return *o.Cache
	}
	return cache.DefaultConfig()
}

// vmConfig derives the interpreter config, mapping the analysis-level
// Statistical switch onto the engine's window setting. The window is
// inert without a window-capable sampler attached, so baseline (Run) and
// IBS runs stay exact either way.
func (o Options) vmConfig() vm.Config {
	c := o.VM
	if o.Analysis.Statistical && c.StatWindow == 0 {
		c.StatWindow = o.Analysis.StatWindow
		if c.StatWindow == 0 {
			c.StatWindow = core.DefaultStatWindow
		}
	}
	return c
}

func coresFor(phases []Phase, override int) int {
	if override > 0 {
		return override
	}
	maxCore := 0
	for _, ph := range phases {
		for _, t := range ph {
			if t.Core > maxCore {
				maxCore = t.Core
			}
		}
	}
	return maxCore + 1
}

func maxThreads(phases []Phase) int {
	n := 1
	for _, ph := range phases {
		if len(ph) > n {
			n = len(ph)
		}
	}
	return n
}

// RunResult is the outcome of a profiled run.
type RunResult struct {
	// Stats aggregates the machine's cycle, instruction, and cache
	// counters across all phases.
	Stats vm.Stats
	// Profile is the merged whole-program profile.
	Profile *profile.Profile
	// ThreadProfiles are the per-thread profiles before merging (what
	// the online profiler writes to disk, one file per thread).
	ThreadProfiles []*profile.ThreadProfile
	// Stat is the statistical-mode error report (nil on exact runs).
	Stat *StatReport
	// Parallel is the parallel engine's diagnostic record (zero value
	// unless Options.VM.Parallel was set and a machine run happened).
	Parallel vm.ParallelInfo
}

// normalizePhases defaults to a single thread running the entry function.
func normalizePhases(p *prog.Program, phases []Phase) []Phase {
	if len(phases) == 0 {
		return []Phase{{vm.ThreadSpec{Fn: p.EntryFn}}}
	}
	return phases
}

// runPhases executes all phases on one machine, accumulating stats.
func runPhases(m *vm.Machine, phases []Phase) (vm.Stats, error) {
	var total vm.Stats
	perThread := make(map[int]*vm.ThreadStats)
	for _, ph := range phases {
		st, err := m.Run(ph)
		if err != nil {
			return vm.Stats{}, err
		}
		total.Instrs += st.Instrs
		total.MemOps += st.MemOps
		total.WallCycles += st.WallCycles
		total.AppWallCycles += st.AppWallCycles
		total.Cache = st.Cache // machine counters are cumulative
		total.Stat.Windows += st.Stat.Windows
		total.Stat.Skipped += st.Stat.Skipped
		total.Stat.Simulated += st.Stat.Simulated
		total.Stat.EstimatedCycles += st.Stat.EstimatedCycles
		for _, ts := range st.PerThread {
			agg := perThread[ts.ID]
			if agg == nil {
				agg = &vm.ThreadStats{ID: ts.ID}
				perThread[ts.ID] = agg
			}
			agg.Cycles += ts.Cycles
			agg.OverheadCycles += ts.OverheadCycles
			agg.Instrs += ts.Instrs
			agg.MemOps += ts.MemOps
		}
	}
	for id := 0; ; id++ {
		ts, ok := perThread[id]
		if !ok {
			break
		}
		total.PerThread = append(total.PerThread, *ts)
	}
	return total, nil
}

// Run executes the program without profiling and returns baseline timing
// and cache statistics.
func Run(p *prog.Program, phases []Phase, opt Options) (vm.Stats, error) {
	phases = normalizePhases(p, phases)
	m, err := vm.NewMachine(p, opt.cacheConfig(), coresFor(phases, opt.Cores), opt.vmConfig())
	if err != nil {
		return vm.Stats{}, err
	}
	return runPhases(m, phases)
}

// ProfileRun executes the program with the PEBS-style sampler attached
// and returns the run statistics plus the merged profile. With
// Options.Analysis.AnalyticPhases set, runs whose every phase is exact
// tier are synthesized analytically (see analytic.go) instead of
// simulated; anything else falls back to the machine.
func ProfileRun(p *prog.Program, phases []Phase, opt Options) (*RunResult, error) {
	phases = normalizePhases(p, phases)
	if opt.Analysis.AnalyticPhases {
		if res, ok, err := analyticProfileRun(p, phases, opt); err != nil {
			return nil, err
		} else if ok {
			return res, nil
		}
	}
	vmCfg := opt.vmConfig()
	m, err := vm.NewMachine(p, opt.cacheConfig(), coresFor(phases, opt.Cores), vmCfg)
	if err != nil {
		return nil, err
	}
	sampler := pebs.NewSampler(opt.samplerConfig(), m.Space, maxThreads(phases))
	m.Observer = sampler
	stats, err := runPhases(m, phases)
	if err != nil {
		return nil, err
	}
	tps := sampler.Finish(stats)
	merged, err := profile.ReduceThreadProfiles(tps, opt.MergeWorkers)
	if err != nil {
		return nil, err
	}
	res := &RunResult{Stats: stats, Profile: merged, ThreadProfiles: tps, Parallel: m.ParallelInfo()}
	if vmCfg.StatWindow > 0 {
		res.Stat = buildStatReport(vmCfg.StatWindow, stats, merged, opt)
	}
	return res, nil
}

// Analyze runs the offline analyzer over a profiled run.
func Analyze(res *RunResult, p *prog.Program, opt Options) (*core.Report, error) {
	if res == nil || res.Profile == nil {
		return nil, fmt.Errorf("nil run result")
	}
	return core.Analyze(res.Profile, p, opt.Analysis)
}

// ProfileAndAnalyze is the one-call workflow.
func ProfileAndAnalyze(p *prog.Program, phases []Phase, opt Options) (*RunResult, *core.Report, error) {
	res, err := ProfileRun(p, phases, opt)
	if err != nil {
		return nil, nil, err
	}
	rep, err := Analyze(res, p, opt)
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}

// AnalyzeRegrouping runs the array-regrouping analysis (the paper's
// stated future work; see internal/regroup) over a profiled run. When a
// legality analysis is supplied (may be nil), frozen arrays are excluded
// from the clustering and reported as skipped.
func AnalyzeRegrouping(res *RunResult, p *prog.Program, opt Options, la *legality.Analysis) (*regroup.Report, error) {
	if res == nil || res.Profile == nil {
		return nil, fmt.Errorf("nil run result")
	}
	ropt := regroup.Options{}
	if opt.Analysis.AffinityThreshold != 0 {
		ropt.AffinityThreshold = opt.Analysis.AffinityThreshold
	}
	if opt.Analysis.MinLd != 0 {
		ropt.MinLd = opt.Analysis.MinLd
	}
	if la != nil {
		ropt.Frozen = legality.FrozenIdentities(la, res.Profile)
	}
	return regroup.Analyze(res.Profile, p, ropt)
}

// AttachLegality runs the transform-legality pass over the program and
// attaches a verdict summary to every analyzed structure in the report,
// so Optimize can refuse unsound splits and renderers can show the
// verdict. Returns the full analysis for callers that want the
// per-object detail or a dynamic cross-check.
func AttachLegality(rep *core.Report, p *prog.Program) (*legality.Analysis, error) {
	a, err := legality.AnalyzeProgram(p, nil)
	if err != nil {
		return nil, err
	}
	for _, sr := range rep.Structures {
		sr.Legality = legality.SummaryFor(a, sr.Name, sr.TypeName)
	}
	return a, nil
}

// Optimize converts a structure's splitting advice into a physical layout
// for the given record, completing the partition with any cold fields.
// If a legality verdict is attached to the report (AttachLegality), the
// layout is gated on it: frozen structures are refused and keep-together
// constraints merge the advice's groups.
func Optimize(rec *prog.RecordSpec, sr *core.StructReport) (*prog.PhysLayout, error) {
	if sr == nil {
		return nil, fmt.Errorf("nil structure report")
	}
	return split.LayoutFromAdviceChecked(rec, sr.Advice, sr.Legality)
}

// FindStruct locates the analyzed structure whose debug type or display
// name matches, or nil.
func FindStruct(rep *core.Report, name string) *core.StructReport {
	for _, sr := range rep.Structures {
		if sr.TypeName == name || sr.Name == name {
			return sr
		}
	}
	return nil
}
