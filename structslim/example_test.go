package structslim_test

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/structslim"
)

// Example reproduces the paper's Figure 1 in a dozen lines: build the
// motivating program, profile it with address sampling, and print the
// structure-splitting advice.
func Example() {
	record := prog.MustRecord("type",
		prog.Field{Name: "a", Size: 4},
		prog.Field{Name: "b", Size: 4},
		prog.Field{Name: "c", Size: 4},
		prog.Field{Name: "d", Size: 4},
	)
	program := buildExample(prog.AoS(record))

	_, report, err := structslim.ProfileAndAnalyze(program, nil, structslim.Options{
		SamplePeriod: 500,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	hot := structslim.FindStruct(report, "type")
	for _, group := range hot.Advice.FieldGroups() {
		fmt.Println(strings.Join(group, ","))
	}
	// Output:
	// a,c
	// b,d
}

// buildExample lowers Figure 1's two loops against a layout.
func buildExample(l *prog.PhysLayout) *prog.Program {
	const n = 4096
	b := prog.NewBuilder("figure1")
	tids := b.RegisterLayout(l)
	arrG := make([]int, l.NumArrays())
	for ai := range arrG {
		arrG[ai] = b.Global("Arr."+l.Structs[ai].Name, n*int64(l.Structs[ai].Size), tids[ai])
	}
	b.Func("main", "figure1.c")
	bases := make([]isa.Reg, l.NumArrays())
	for ai := range bases {
		bases[ai] = b.R()
		b.GAddr(bases[ai], arrG[ai])
	}
	i, x, y, rep := b.R(), b.R(), b.R(), b.R()
	b.ForRange(i, 0, n, 1, func() {
		for _, f := range []string{"a", "b", "c", "d"} {
			b.StoreField(i, l, bases, i, f)
		}
	})
	b.ForRange(rep, 0, 20, 1, func() {
		b.AtLine(4)
		b.ForRange(i, 0, n, 1, func() {
			b.LoadField(x, l, bases, i, "a")
			b.LoadField(y, l, bases, i, "c")
			b.Add(x, x, y)
		})
		b.AtLine(8)
		b.ForRange(i, 0, n, 1, func() {
			b.LoadField(x, l, bases, i, "b")
			b.LoadField(y, l, bases, i, "d")
			b.Add(x, x, y)
		})
	})
	b.Halt()
	return b.MustProgram()
}
