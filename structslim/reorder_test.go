package structslim_test

// Ablation: field reordering versus structure splitting. A 128-byte
// record whose hot loop reads two fields at opposite ends (f0 and f15)
// touches two cache lines per element. Reordering the two hot fields
// adjacent halves the line traffic; splitting them into their own
// 16-byte struct cuts it 8×. This is the quantified version of the
// paper's implicit argument for splitting over cheaper layout fixes.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/structslim"
)

func wideRecord() *prog.RecordSpec {
	fields := make([]prog.Field, 16)
	for i := range fields {
		fields[i] = prog.Field{Name: fieldName(i), Size: 8}
	}
	return prog.MustRecord("wide", fields...)
}

func fieldName(i int) string { return string(rune('a' + i)) }

func buildWide(l *prog.PhysLayout, n, reps int64) *prog.Program {
	b := prog.NewBuilder("wide")
	tids := b.RegisterLayout(l)
	arrG := make([]int, l.NumArrays())
	for ai := range arrG {
		arrG[ai] = b.Global("arr."+l.Structs[ai].Name, n*int64(l.Structs[ai].Size), tids[ai])
	}
	b.Func("main", "w.c")
	bases := make([]isa.Reg, l.NumArrays())
	for ai := range bases {
		bases[ai] = b.R()
		b.GAddr(bases[ai], arrG[ai])
	}
	i, x, y, rep := b.R(), b.R(), b.R(), b.R()
	// init all fields
	b.AtLine(5)
	b.ForRange(i, 0, n, 1, func() {
		for f := 0; f < 16; f++ {
			b.StoreField(i, l, bases, i, fieldName(f))
		}
	})
	// hot loop: first and last declared fields together
	b.AtLine(10)
	b.ForRange(rep, 0, reps, 1, func() {
		b.ForRange(i, 0, n, 1, func() {
			b.AtLine(11)
			b.LoadField(x, l, bases, i, fieldName(0))
			b.LoadField(y, l, bases, i, fieldName(15))
			b.Add(x, x, y)
		})
	})
	b.Halt()
	return b.MustProgram()
}

func TestReorderVersusSplit(t *testing.T) {
	rec := wideRecord()
	const n, reps = 16384, 8
	opt := structslim.Options{}

	cycles := func(l *prog.PhysLayout) uint64 {
		st, err := structslim.Run(buildWide(l, n, reps), nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		return st.AppWallCycles
	}

	base := cycles(prog.AoS(rec))

	// Reorder: hot fields first, everything else after.
	order := []string{fieldName(0), fieldName(15)}
	for f := 1; f < 15; f++ {
		order = append(order, fieldName(f))
	}
	reordered, err := prog.Reordered(rec, order)
	if err != nil {
		t.Fatal(err)
	}
	if reordered.Place(fieldName(15)).Offset != 8 {
		t.Fatalf("reorder did not move the hot field: %+v", reordered.Place(fieldName(15)))
	}
	reo := cycles(reordered)

	// Split: hot pair into its own struct.
	split, err := prog.Split(rec, [][]string{
		{fieldName(0), fieldName(15)},
		order[2:],
	})
	if err != nil {
		t.Fatal(err)
	}
	spl := cycles(split)

	reorderSpeedup := float64(base) / float64(reo)
	splitSpeedup := float64(base) / float64(spl)
	t.Logf("reorder %.3f×, split %.3f×", reorderSpeedup, splitSpeedup)

	if reorderSpeedup < 1.2 {
		t.Errorf("reordering opposite-end hot fields should pay: %.3f×", reorderSpeedup)
	}
	if splitSpeedup < reorderSpeedup*1.2 {
		t.Errorf("splitting (%.3f×) should clearly beat reordering (%.3f×)",
			splitSpeedup, reorderSpeedup)
	}
}

func TestReorderedValidation(t *testing.T) {
	rec := prog.MustRecord("r",
		prog.Field{Name: "a", Size: 8}, prog.Field{Name: "b", Size: 8})
	if _, err := prog.Reordered(rec, []string{"a"}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := prog.Reordered(rec, []string{"a", "zz"}); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := prog.Reordered(rec, []string{"a", "a"}); err == nil {
		t.Error("repeated field accepted")
	}
	l, err := prog.Reordered(rec, []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Place("b").Offset != 0 || l.Place("a").Offset != 8 {
		t.Errorf("order not applied: %+v %+v", l.Place("b"), l.Place("a"))
	}
	if l.IsSplit() {
		t.Error("reordered layout claims to be split")
	}
}
