package structslim_test

// Multi-process profiling end to end (paper Section 4.4: "multiple
// threads or/and processes"): two independent runs of the same binary
// produce two merged profiles with incompatible object tables; the
// process-level merge aggregates them by data-centric identity and the
// analysis still lands the same advice, now backed by both runs'
// samples.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/workloads"
	"repro/structslim"
)

func TestMultiProcessMergeEndToEnd(t *testing.T) {
	w, err := workloads.Get("clomp")
	if err != nil {
		t.Fatal(err)
	}
	opt := structslim.Options{SamplePeriod: 3000, Analysis: core.Options{TopK: 3}}

	runProcess := func(seed uint64) (*profile.Profile, int64) {
		p, phases, err := w.Build(nil, workloads.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		o := opt
		o.Seed = seed
		res, err := structslim.ProfileRun(p, phases, o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile, int64(res.Profile.NumSamples)
	}

	prof1, n1 := runProcess(1)
	prof2, n2 := runProcess(2)
	merged, err := profile.MergeProcessProfiles([]*profile.Profile{prof1, prof2})
	if err != nil {
		t.Fatal(err)
	}
	if int64(merged.NumSamples) != n1+n2 {
		t.Fatalf("merged samples = %d, want %d", merged.NumSamples, n1+n2)
	}

	// Analyze against a fresh build of the binary (same program text).
	p, _, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(merged, p, opt.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	sr := structslim.FindStruct(rep, "_Zone")
	if sr == nil {
		t.Fatal("_Zone lost in process merge")
	}
	if sr.InferredSize != 24 {
		t.Errorf("inferred size = %d, want 24", sr.InferredSize)
	}
	if sr.NumObjects < 2 {
		t.Errorf("aggregated objects = %d, want both processes' pools", sr.NumObjects)
	}
	var hot string
	for _, g := range sr.Advice.Groups {
		for _, f := range g {
			if f == "value" {
				hot = strings.Join(g, ",")
			}
		}
	}
	if hot != "value,nextZone" {
		t.Errorf("merged advice hot group = {%s}, want {value,nextZone}", hot)
	}
}
