package structslim_test

// Determinism of the rendered analysis: one profile, analyzed twice, must
// produce byte-identical text and JSON reports. Loop identifiers are the
// main hazard — LoopInfo output is canonically ordered by (FnID, LoopID) —
// but the test guards every map-ordering dependency in the report path.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/tables"
	"repro/internal/workloads"
	"repro/structslim"
)

func TestReportRenderingDeterministic(t *testing.T) {
	w, err := workloads.Get("art")
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 500, Seed: 7})
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}

	render := func() (string, string) {
		rep, err := core.Analyze(res.Profile, p, core.DefaultOptions())
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		var text, js bytes.Buffer
		rep.RenderText(&text)
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return text.String(), js.String()
	}

	t1, j1 := render()
	for run := 0; run < 3; run++ {
		t2, j2 := render()
		if t1 != t2 {
			t.Fatalf("RenderText differs between analyses of the same profile (run %d)", run+1)
		}
		if j1 != j2 {
			t.Fatalf("WriteJSON differs between analyses of the same profile (run %d)", run+1)
		}
	}
}

// TestParallelEngineDeterministic: the experiment engine must render
// Table 3 and the Figure 6 affinity dot byte-identically whether its
// simulations run sequentially or on four workers — worker scheduling
// and result-cache hits must never leak into the output.
func TestParallelEngineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full table pipelines")
	}
	regen := func(parallel int) string {
		opt := tables.Options{
			Scale:        workloads.ScaleTest,
			SamplePeriod: 3000,
			Seed:         7,
			Parallel:     parallel,
		}
		eng := tables.NewEngine(opt)
		results, err := eng.RunPaperBenchmarks()
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var buf bytes.Buffer
		tables.WriteTable3(&buf, results)
		sr, err := eng.AnalyzeART()
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		tables.WriteFigure6(&buf, sr)
		return buf.String()
	}

	seq := regen(1)
	par := regen(4)
	if seq != par {
		t.Fatalf("engine output differs between sequential and 4-worker runs:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
