package structslim_test

// Determinism of the rendered analysis: one profile, analyzed twice, must
// produce byte-identical text and JSON reports. Loop identifiers are the
// main hazard — LoopInfo output is canonically ordered by (FnID, LoopID) —
// but the test guards every map-ordering dependency in the report path.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
	"repro/structslim"
)

func TestReportRenderingDeterministic(t *testing.T) {
	w, err := workloads.Get("art")
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 500, Seed: 7})
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}

	render := func() (string, string) {
		rep, err := core.Analyze(res.Profile, p, core.DefaultOptions())
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		var text, js bytes.Buffer
		rep.RenderText(&text)
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return text.String(), js.String()
	}

	t1, j1 := render()
	for run := 0; run < 3; run++ {
		t2, j2 := render()
		if t1 != t2 {
			t.Fatalf("RenderText differs between analyses of the same profile (run %d)", run+1)
		}
		if j1 != j2 {
			t.Fatalf("WriteJSON differs between analyses of the same profile (run %d)", run+1)
		}
	}
}
