package structslim_test

// Calling-context sensitivity of streams (Section 4.2 of the paper: "an
// instruction *in a specific calling context* only accesses one field").
// A shared accessor function whose single load instruction is used for
// field x from one call site and field y from another would poison the
// per-IP stride/offset analysis; keyed by (IP, context) the two uses are
// separate streams with clean strides.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/structslim"
)

// buildSharedAccessor: record {x, y} (16 bytes). A helper `get` loads
// 8 bytes at its pointer argument. Loop A calls get(&arr[i].x); loop B
// calls get(&arr[i].y).
func buildSharedAccessor(n int64) *prog.Program {
	rec := prog.MustRecord("pair",
		prog.Field{Name: "x", Size: 8},
		prog.Field{Name: "y", Size: 8},
	)
	l := prog.AoS(rec)
	b := prog.NewBuilder("sharedacc")
	tid := b.Type(l.Structs[0])
	g := b.Global("arr", n*16, tid)

	get := b.Func("get", "acc.c")
	b.AtLine(5)
	b.Load(isa.RetReg, isa.ArgReg0, isa.RZ, 1, 0, 8)
	b.Ret()

	main := b.Func("main", "acc.c")
	base, i, addr, rep := b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, g)
	// init both fields
	b.AtLine(8)
	b.ForRange(i, 0, n, 1, func() {
		b.Store(i, base, i, 16, 0, 8)
		b.Store(i, base, i, 16, 8, 8)
	})
	b.ForRange(rep, 0, 6, 1, func() {
		// loop A: get(&arr[i].x)
		b.AtLine(10)
		b.ForRange(i, 0, n, 1, func() {
			b.AtLine(11)
			b.MulI(addr, i, 16)
			b.Add(addr, addr, base)
			b.Mov(isa.ArgReg0, addr)
			b.Call(get)
		})
		// loop B: get(&arr[i].y)
		b.AtLine(20)
		b.ForRange(i, 0, n, 1, func() {
			b.AtLine(21)
			b.MulI(addr, i, 16)
			b.Add(addr, addr, base)
			b.AddI(addr, addr, 8)
			b.Mov(isa.ArgReg0, addr)
			b.Call(get)
		})
	})
	b.Halt()
	b.SetEntry(main)
	return b.MustProgram()
}

func TestContextSensitiveStreams(t *testing.T) {
	p := buildSharedAccessor(8192)
	res, rep, err := structslim.ProfileAndAnalyze(p, nil, structslim.Options{
		SamplePeriod: 500,
		Seed:         6,
		Analysis:     core.Options{TopK: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sr := structslim.FindStruct(rep, "pair")
	if sr == nil {
		t.Fatal("pair not identified")
	}

	// The structure size must come out as 16 — possible only because the
	// helper's load forms two context-separated streams of stride 16
	// each, rather than one merged stream whose interleaved deltas
	// collapse the GCD to 8.
	if sr.InferredSize != 16 {
		t.Errorf("inferred size = %d, want 16 (context-sensitive streams)", sr.InferredSize)
	}

	// Both fields are resolved at their offsets.
	offsets := map[uint64]bool{}
	for _, f := range sr.Fields {
		offsets[f.Offset] = true
	}
	if !offsets[0] || !offsets[8] {
		t.Errorf("fields = %+v, want offsets 0 and 8", sr.Fields)
	}

	// The raw profile really does contain two distinct streams for the
	// helper's single load instruction.
	streamsPerIP := map[uint64]int{}
	for key := range res.Profile.Streams {
		if key.Identity == sr.Identity {
			streamsPerIP[key.IP]++
		}
	}
	maxStreams := 0
	for _, n := range streamsPerIP {
		if n > maxStreams {
			maxStreams = n
		}
	}
	if maxStreams < 2 {
		t.Errorf("no IP with multiple context streams; ctx separation inert (per-IP: %v)", streamsPerIP)
	}
}

// TestContextStreamsHaveCleanStrides pins the stride of each context
// stream individually.
func TestContextStreamsHaveCleanStrides(t *testing.T) {
	p := buildSharedAccessor(8192)
	res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	clean := 0
	for _, st := range res.Profile.Streams {
		if st.Count < 4 || st.GCD == 0 {
			continue
		}
		if st.GCD%16 == 0 {
			clean++
		}
	}
	if clean < 2 {
		t.Errorf("expected at least two clean stride-16 context streams, got %d", clean)
	}
}
