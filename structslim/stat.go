package structslim

// stat.go is the statistical-mode error report, the run-level analogue of
// the paper's Equation 4 confidence argument: statistical simulation
// changes no sampled address (sampling is access-count driven and program
// semantics stay exact), so stride recovery keeps its Eq. 4 bound
// untouched; what it approximates is the latency distribution, quantified
// here by the simulated fraction and a binomial confidence interval on
// the L1 miss ratio measured over the simulated accesses.

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/stride"
	"repro/internal/vm"
)

// StatReport quantifies what a statistical profiling run simulated,
// skipped, and how confident its estimates are.
type StatReport struct {
	// Window is the configured warmup window W (accesses per sample).
	Window int
	// Windows is how many fast-forward windows were armed (≈ samples with
	// a gap wider than W).
	Windows uint64
	// SimulatedAccesses ran the full cache model; SkippedAccesses ran
	// exact program semantics but charged EstimatedCycles in total from
	// the per-thread running-mean latency. Their sum is TotalAccesses
	// (every access the run retired).
	SimulatedAccesses uint64
	SkippedAccesses   uint64
	TotalAccesses     uint64
	EstimatedCycles   uint64
	// SimulatedPct = 100 × SimulatedAccesses / TotalAccesses.
	SimulatedPct float64
	// Samples is the number of address samples recorded.
	Samples uint64
	// L1MissRatio is the miss ratio over the simulated accesses, and
	// MissRatioCI95 its 95% binomial confidence half-width — the
	// uncertainty induced by measuring the ratio on a subset.
	L1MissRatio   float64
	MissRatioCI95 float64
	// StrideConfidence is Equation 4's accuracy lower bound for the
	// weakest analyzable stream (the fewest-sample stream that still
	// qualifies for size voting); statistical mode leaves it untouched
	// because the sampled addresses are exact.
	StrideConfidence float64
}

// buildStatReport assembles the error report for one profiled run.
func buildStatReport(window int, st vm.Stats, p *profile.Profile, opt Options) *StatReport {
	r := &StatReport{
		Window:            window,
		Windows:           st.Stat.Windows,
		SimulatedAccesses: st.Stat.Simulated,
		SkippedAccesses:   st.Stat.Skipped,
		TotalAccesses:     st.MemOps,
		EstimatedCycles:   st.Stat.EstimatedCycles,
	}
	if r.TotalAccesses > 0 {
		r.SimulatedPct = 100 * float64(r.SimulatedAccesses) / float64(r.TotalAccesses)
	}
	if p != nil {
		r.Samples = p.NumSamples
	}
	if len(st.Cache.Levels) > 0 {
		l1 := st.Cache.Levels[0]
		if l1.Accesses > 0 {
			pr := float64(l1.Misses) / float64(l1.Accesses)
			r.L1MissRatio = pr
			r.MissRatioCI95 = 1.96 * math.Sqrt(pr*(1-pr)/float64(l1.Accesses))
		}
	}
	minSamples := opt.Analysis.MinStreamSamples
	if minSamples == 0 {
		minSamples = core.DefaultOptions().MinStreamSamples
	}
	if p != nil {
		weakest := 0
		for _, s := range p.Streams {
			if s.Count < minSamples {
				continue
			}
			if weakest == 0 || int(s.Count) < weakest {
				weakest = int(s.Count)
			}
		}
		if weakest > 0 {
			r.StrideConfidence = stride.AccuracyLowerBound(weakest)
		}
	}
	return r
}

// RenderText writes the report in the tool's table style.
func (r *StatReport) RenderText(w io.Writer) {
	fmt.Fprintf(w, "statistical simulation (window W=%d)\n", r.Window)
	fmt.Fprintf(w, "  windows armed        %12d\n", r.Windows)
	fmt.Fprintf(w, "  accesses simulated   %12d (%.2f%% of %d)\n",
		r.SimulatedAccesses, r.SimulatedPct, r.TotalAccesses)
	fmt.Fprintf(w, "  accesses skipped     %12d (%d cycles estimated)\n",
		r.SkippedAccesses, r.EstimatedCycles)
	fmt.Fprintf(w, "  samples recorded     %12d (sampled addresses exact)\n", r.Samples)
	fmt.Fprintf(w, "  L1 miss ratio        %12.4f ± %.4f (95%% CI over simulated accesses)\n",
		r.L1MissRatio, r.MissRatioCI95)
	fmt.Fprintf(w, "  stride confidence    %12.4f (Eq. 4 lower bound, weakest analyzed stream)\n",
		r.StrideConfidence)
}
