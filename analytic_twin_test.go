package repro_test

// Reference-twin differential for the analytic phase synthesis: profiling
// with core.Options.AnalyticPhases must yield byte-identical splitting
// advice on every paper workload. Eligible runs (every phase exact tier)
// are synthesized without VM or cache simulation; ineligible ones fall
// back to full simulation, which is trivially identical — both cases are
// asserted here so a silent routing regression fails the suite.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
	"repro/structslim"
)

// adviceOf flattens a report to its actionable output.
func adviceOf(rep *core.Report) map[string]*core.SplitAdvice {
	out := make(map[string]*core.SplitAdvice)
	for _, sr := range rep.Structures {
		out[sr.Name] = sr.Advice
	}
	return out
}

// analyticEligibleWorkloads are the paper workloads whose every phase is
// exact tier at test scale: single-threaded ForRange nests over globals.
var analyticEligibleWorkloads = map[string]bool{"art": true, "libquantum": true}

func TestAnalyticTwinAdvice(t *testing.T) {
	for _, name := range workloads.PaperOrder {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := structslim.Options{SamplePeriod: 3000, Seed: 7}

			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			simRes, simRep, err := structslim.ProfileAndAnalyze(p, phases, opt)
			if err != nil {
				t.Fatal(err)
			}

			p2, phases2, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			opt.Analysis.AnalyticPhases = true
			anaRes, anaRep, err := structslim.ProfileAndAnalyze(p2, phases2, opt)
			if err != nil {
				t.Fatal(err)
			}

			simAdv, anaAdv := adviceOf(simRep), adviceOf(anaRep)
			if !reflect.DeepEqual(simAdv, anaAdv) {
				t.Errorf("advice diverged:\nsimulated: %+v\nanalytic:  %+v", simAdv, anaAdv)
			}
			if len(simAdv) == 0 {
				t.Errorf("no structure analyzed — the twin comparison is vacuous")
			}

			// The eligible workloads must actually take the analytic path:
			// the synthesized run fabricates the hierarchy counters, which
			// never count prefetches; the simulated run with the default
			// config does.
			tookAnalytic := anaRes.Stats.Cache.PrefetchIssued == 0 &&
				simRes.Stats.Cache.PrefetchIssued > 0
			if analyticEligibleWorkloads[name] && !tookAnalytic {
				t.Errorf("expected the analytic path, but the run was simulated")
			}
			if !analyticEligibleWorkloads[name] && tookAnalytic {
				t.Errorf("ineligible workload took the analytic path")
			}

			// On the fallback path the twin runs must be fully identical,
			// not merely advice-identical.
			if !analyticEligibleWorkloads[name] {
				if !reflect.DeepEqual(simRes.Profile, anaRes.Profile) {
					t.Errorf("fallback path altered the profile")
				}
				if !reflect.DeepEqual(simRes.Stats, anaRes.Stats) {
					t.Errorf("fallback path altered the run stats")
				}
			} else {
				// The synthesized sampled stream must be identical in IPs
				// and addresses (sampling is access-count driven); only
				// serving levels may differ.
				if simRes.Profile.NumSamples != anaRes.Profile.NumSamples {
					t.Errorf("sample count diverged: simulated %d, analytic %d",
						simRes.Profile.NumSamples, anaRes.Profile.NumSamples)
				}
			}
		})
	}
}
