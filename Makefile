# Standard targets; CI runs the same three steps (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race lint fmt fuzz bench

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint: go vet must be clean and every file gofmt-formatted.
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

# fuzz: a short smoke run of the symbolic-resolver fuzzer.
fuzz:
	$(GO) test ./internal/staticlint/ -fuzz FuzzResolver -fuzztime 30s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
