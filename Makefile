# Standard targets; CI runs the same three steps (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race lint fmt fuzz bench bench-smoke bench-gate vet-sharing stream-smoke reuse-check bench-analytic analytic-gate

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint: go vet must be clean and every file gofmt-formatted.
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

# fuzz: a short smoke run of the symbolic-resolver fuzzer.
fuzz:
	$(GO) test ./internal/staticlint/ -fuzz FuzzResolver -fuzztime 30s

# reuse-check: the static reuse-prediction acceptance suite — the
# 7-workload static-vs-dynamic differential (per-nest histograms,
# FromTrace replay, capacity-miss ratios, whole-run bracket) under the
# race detector, the analytic reference-twin advice check, and a short
# run of the reuse-predictor fuzzer (no-panic + mass conservation).
reuse-check:
	$(GO) test -race -run 'TestReuseDifferentialWorkloads|TestAnalyticTwinAdvice' .
	$(GO) test ./internal/staticlint/ -run '^$$' -fuzz FuzzReusePredictor -fuzztime 30s

# bench-analytic: measure the analytic phase synthesis against full
# simulation on the exact-tier workloads and record BENCH_6.json.
ANALYTIC_METRICS ?= analytic-metrics.txt
ANALYTIC_JSON ?= BENCH_6.json
bench-analytic:
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkAnalyticSweep' \
		. | tee $(ANALYTIC_METRICS)
	$(GO) run ./cmd/benchjson -in $(ANALYTIC_METRICS) -out $(ANALYTIC_JSON)

# analytic-gate: the analytic sweep must stay at least 2x faster than
# full simulation. The baseline records the measured speedup; the gate
# tolerates a drift back toward (but not past) the 2x floor.
analytic-gate:
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkAnalyticSweep' . \
		| tee /tmp/analytic-gate.txt
	$(GO) run ./cmd/benchjson -gate -in /tmp/analytic-gate.txt -baseline $(ANALYTIC_JSON) \
		-bench BenchmarkAnalyticSweep -metric speedup \
		-higher-is-better -max-regress 20

# stream-smoke: the streaming-service acceptance smoke — start the
# ingest server, push the quickstart workload's sample stream over HTTP,
# and require (-selftest) the server's online report and its
# snapshot-derived report to be byte-identical to the local batch
# analysis.
STREAM_ADDR ?= 127.0.0.1:7080
stream-smoke:
	$(GO) build -o /tmp/structslim-smoke ./cmd/structslim
	/tmp/structslim-smoke serve -workload quickstart -addr $(STREAM_ADDR) \
		-final-report=false & echo $$! > /tmp/structslim-smoke.pid
	/tmp/structslim-smoke push -workload quickstart -addr $(STREAM_ADDR) \
		-period 3000 -seed 7 -selftest; \
		rc=$$?; kill $$(cat /tmp/structslim-smoke.pid) 2>/dev/null; exit $$rc

# vet-sharing: the false-sharing acceptance smoke — the planted fixture
# must be flagged statically and confirmed by the coherence cross-check.
vet-sharing:
	$(GO) run ./cmd/structslim vet -sharing -workload falseshare | tee /tmp/vet-sharing.out
	@grep -q "FALSE-SHARING stats._Stat" /tmp/vet-sharing.out
	@grep -q "CONFIRMED" /tmp/vet-sharing.out

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke: one iteration of the perf-critical benchmarks — the
# hot-path microbenchmarks, the parallel-engine speedup/identity check,
# and the streaming-ingest throughput (direct vs HTTP-framed) — plus the
# ART end-to-end reference-vs-fastpath benchmark, with metrics captured
# as text and as JSON (BENCH_5.json) for CI upload.
BENCH_METRICS ?= bench-metrics.txt
BENCH_JSON ?= BENCH_5.json
bench-smoke:
	$(GO) test -run '^$$' -benchtime 1x \
		-bench 'BenchmarkRunnerParallel|BenchmarkMachineHotPath|BenchmarkCacheAccess|BenchmarkInterpreter|BenchmarkStreamIngest' \
		-benchmem . | tee $(BENCH_METRICS)
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkARTProfile' \
		-benchmem . | tee -a $(BENCH_METRICS)
	$(GO) run ./cmd/benchjson -in $(BENCH_METRICS) -out $(BENCH_JSON)

# bench-gate: re-measure the ART end-to-end benchmark and fail when the
# fast-path speedup over the reference engines regressed more than 15%
# against the committed BENCH_5.json baseline. The gated metric is the
# in-run speedup ratio, so it is machine-neutral. A missing baseline
# skips the gate (benchjson prints "no baseline ...").
bench-gate:
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkARTProfile' . \
		| tee /tmp/bench-gate.txt
	$(GO) run ./cmd/benchjson -gate -in /tmp/bench-gate.txt -baseline $(BENCH_JSON) \
		-bench BenchmarkARTProfile/fastpath -metric x-vs-reference \
		-higher-is-better -max-regress 15
