# Standard targets; CI runs the same three steps (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race lint fmt fuzz bench bench-smoke bench-gate vet-sharing stream-smoke bench-stream stream-gate reuse-check bench-analytic analytic-gate bench-stat stat-gate stat-check vet-legality legality-check bench-legality bench-optimize optimize-gate optimize-check

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint: go vet must be clean and every file gofmt-formatted.
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

# fuzz: a short smoke run of the symbolic-resolver fuzzer.
fuzz:
	$(GO) test ./internal/staticlint/ -fuzz FuzzResolver -fuzztime 30s

# reuse-check: the static reuse-prediction acceptance suite — the
# 7-workload static-vs-dynamic differential (per-nest histograms,
# FromTrace replay, capacity-miss ratios, whole-run bracket) under the
# race detector, the analytic reference-twin advice check, and a short
# run of the reuse-predictor fuzzer (no-panic + mass conservation).
reuse-check:
	$(GO) test -race -run 'TestReuseDifferentialWorkloads|TestAnalyticTwinAdvice' .
	$(GO) test ./internal/staticlint/ -run '^$$' -fuzz FuzzReusePredictor -fuzztime 30s

# bench-analytic: measure the analytic phase synthesis against full
# simulation on the exact-tier workloads and record BENCH_6.json.
ANALYTIC_METRICS ?= analytic-metrics.txt
ANALYTIC_JSON ?= BENCH_6.json
bench-analytic:
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkAnalyticSweep' \
		. | tee $(ANALYTIC_METRICS)
	$(GO) run ./cmd/benchjson -in $(ANALYTIC_METRICS) -out $(ANALYTIC_JSON)

# analytic-gate: the analytic sweep must stay at least 2x faster than
# full simulation. The baseline records the measured speedup; the gate
# tolerates a drift back toward (but not past) the 2x floor.
analytic-gate:
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkAnalyticSweep' . \
		| tee /tmp/analytic-gate.txt
	$(GO) run ./cmd/benchjson -gate -in /tmp/analytic-gate.txt -baseline $(ANALYTIC_JSON) \
		-bench BenchmarkAnalyticSweep -metric speedup \
		-higher-is-better -max-regress 20

# stream-smoke: the streaming-service acceptance smoke — start the
# ingest server, push the quickstart workload's sample stream over HTTP,
# and require (-selftest) the server's online report and its
# snapshot-derived report to be byte-identical to the local batch
# analysis.
STREAM_ADDR ?= 127.0.0.1:7080
stream-smoke:
	$(GO) build -o /tmp/structslim-smoke ./cmd/structslim
	/tmp/structslim-smoke serve -workload quickstart -addr $(STREAM_ADDR) \
		-final-report=false & echo $$! > /tmp/structslim-smoke.pid
	/tmp/structslim-smoke push -workload quickstart -addr $(STREAM_ADDR) \
		-period 3000 -seed 7 -selftest; \
		rc=$$?; kill $$(cat /tmp/structslim-smoke.pid) 2>/dev/null; exit $$rc

# vet-sharing: the false-sharing acceptance smoke — the planted fixture
# must be flagged statically and confirmed by the coherence cross-check.
vet-sharing:
	$(GO) run ./cmd/structslim vet -sharing -workload falseshare | tee /tmp/vet-sharing.out
	@grep -q "FALSE-SHARING stats._Stat" /tmp/vet-sharing.out
	@grep -q "CONFIRMED" /tmp/vet-sharing.out

# vet-legality: the transform-legality acceptance smoke — the planted
# illegal-split fixture must freeze (escaping field address) while ART,
# the paper's flagship split, stays provably safe and replay-clean.
vet-legality:
	$(GO) run ./cmd/structslim vet -legality -workload escape | tee /tmp/vet-legality.out
	@grep -q "packets.packet (struct packet.*FROZEN" /tmp/vet-legality.out
	@grep -q "LEGALITY-OK" /tmp/vet-legality.out
	$(GO) run ./cmd/structslim vet -legality -workload art | tee /tmp/vet-legality-art.out
	@grep -q "SPLIT-SAFE" /tmp/vet-legality-art.out
	@grep -q "LEGALITY-OK" /tmp/vet-legality-art.out

# legality-check: the legality acceptance suite — per-object verdict
# unit tests and the 7-workload verdict+cross-check sweep under the race
# detector, the end-to-end gate (paper splits pass, planted fixture
# refused), and a short run of the legality fuzzer (no-panic,
# deterministic render, replay never contradicts a claim).
legality-check:
	$(GO) test -race ./internal/legality/
	$(GO) test -race -run 'TestLegalityGate' .
	$(GO) test ./internal/legality/ -run '^$$' -fuzz FuzzLegality -fuzztime 30s

# bench-legality: time the whole-program legality analysis plus dynamic
# cross-check over all seven paper workloads and record BENCH_8.json.
LEGALITY_METRICS ?= legality-metrics.txt
LEGALITY_JSON ?= BENCH_8.json
bench-legality:
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkLegalitySweep' \
		. | tee $(LEGALITY_METRICS)
	$(GO) run ./cmd/benchjson -in $(LEGALITY_METRICS) -out $(LEGALITY_JSON)

# bench-stream: measure the streaming-ingest transports — in-process
# direct, the PR-5 gob one-request-per-batch HTTP path, and the pipelined
# binary framing — and record BENCH_9.json (samples/sec, allocs/sample,
# bytes/sample per transport). -count 2 lets benchjson keep the best run.
STREAM_METRICS ?= stream-metrics.txt
STREAM_JSON ?= BENCH_9.json
bench-stream:
	$(GO) test -run '^$$' -benchtime 5x -count 2 \
		-bench 'BenchmarkStreamIngest' . | tee $(STREAM_METRICS)
	$(GO) run ./cmd/benchjson -in $(STREAM_METRICS) -out $(STREAM_JSON)

# stream-gate: the streaming acceptance gate. First the sharded
# differential suite under the race detector — any byte-level mismatch
# between online, snapshot-derived, and batch reports at any shard count
# or batch size fails the build. Then re-measure ingest and fail when the
# binary transport's samples/sec regressed more than 15% against the
# committed BENCH_9.json, or its allocs/sample doubled (the ≤1
# alloc/sample acceptance bound sits far above the ~0.15 baseline).
stream-gate:
	$(GO) test -race -run 'TestStreamingMatchesBatch|TestStreamingShardedConcurrent' \
		./internal/stream/
	$(GO) test -run '^$$' -benchtime 5x -count 2 \
		-bench 'BenchmarkStreamIngest' . | tee /tmp/stream-gate.txt
	$(GO) run ./cmd/benchjson -gate -in /tmp/stream-gate.txt -baseline $(STREAM_JSON) \
		-bench BenchmarkStreamIngest/binary -metric samples/sec \
		-higher-is-better -max-regress 15
	$(GO) run ./cmd/benchjson -gate -in /tmp/stream-gate.txt -baseline $(STREAM_JSON) \
		-bench BenchmarkStreamIngest/binary -metric allocs/sample \
		-max-regress 100

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke: one iteration of the perf-critical benchmarks — the
# hot-path microbenchmarks, the parallel-engine speedup/identity check,
# and the streaming-ingest throughput (direct vs HTTP-framed) — plus the
# ART end-to-end reference-vs-fastpath benchmark, with metrics captured
# as text and as JSON (BENCH_5.json) for CI upload.
BENCH_METRICS ?= bench-metrics.txt
BENCH_JSON ?= BENCH_5.json
bench-smoke:
	$(GO) test -run '^$$' -benchtime 1x \
		-bench 'BenchmarkRunnerParallel|BenchmarkMachineHotPath|BenchmarkCacheAccess|BenchmarkInterpreter|BenchmarkStreamIngest' \
		-benchmem . | tee $(BENCH_METRICS)
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkARTProfile' \
		-benchmem . | tee -a $(BENCH_METRICS)
	$(GO) run ./cmd/benchjson -in $(BENCH_METRICS) -out $(BENCH_JSON)

# bench-gate: re-measure the ART end-to-end benchmark and fail when the
# fast-path speedup over the reference engines regressed more than 15%
# against the committed BENCH_5.json baseline. The gated metric is the
# in-run speedup ratio, so it is machine-neutral; -count 3 lets benchjson
# keep the best of three runs, so run-to-run variance (observed swings up
# to ~13%) does not trip the threshold. A missing baseline skips the gate
# (benchjson prints "no baseline ..."). Also gates the statistical-mode
# geomean via stat-gate and the layout optimizer via optimize-gate.
bench-gate: stat-gate optimize-gate
	$(GO) test -run '^$$' -benchtime 3x -count 3 -bench 'BenchmarkARTProfile' . \
		| tee /tmp/bench-gate.txt
	$(GO) run ./cmd/benchjson -gate -in /tmp/bench-gate.txt -baseline $(BENCH_JSON) \
		-bench BenchmarkARTProfile/fastpath -metric x-vs-reference \
		-higher-is-better -max-regress 15

# bench-stat: measure the statistical-window engine across the full
# 7-workload sweep (reference vs fastpath vs statistical) plus the
# parallel-engine scaling benchmark, and record BENCH_7.json. benchjson
# merges the -count 2 repeats best-of-N (spread recorded per metric) and
# synthesizes BenchmarkWorkloadSweep/statistical/geomean — the suite-wide
# statistical speedup over the reference engine that stat-gate holds.
STAT_METRICS ?= stat-metrics.txt
STAT_JSON ?= BENCH_7.json
GEOMEAN_SPEC = BenchmarkWorkloadSweep/*/statistical:x-vs-reference
bench-stat:
	$(GO) test -run '^$$' -benchtime 2x -count 2 \
		-bench 'BenchmarkWorkloadSweep|BenchmarkParallelScaling' \
		. | tee $(STAT_METRICS)
	$(GO) run ./cmd/benchjson -in $(STAT_METRICS) \
		-geomean '$(GEOMEAN_SPEC)' -out $(STAT_JSON)

# stat-gate: re-measure the workload sweep and fail when the statistical
# engine's geomean speedup over the reference engine regressed more than
# 15% against the committed BENCH_7.json baseline (recorded well above
# the 4x acceptance floor, so the tolerance cannot erode below it).
stat-gate:
	$(GO) test -run '^$$' -benchtime 2x -count 2 \
		-bench 'BenchmarkWorkloadSweep' . | tee /tmp/stat-gate.txt
	$(GO) run ./cmd/benchjson -gate -in /tmp/stat-gate.txt -baseline $(STAT_JSON) \
		-geomean '$(GEOMEAN_SPEC)' \
		-bench BenchmarkWorkloadSweep/statistical/geomean -metric x-vs-reference \
		-higher-is-better -max-regress 15

# stat-check: the statistical + parallel acceptance suite — advice
# fidelity against exact mode on all 7 paper workloads, and worker-count
# / GOMAXPROCS byte-identity of the parallel engine, under the race
# detector (the parallel engine must be data-race-free, not just
# deterministic).
stat-check:
	$(GO) test -race -run 'TestStatistical|TestParallel' .

# bench-optimize: time the candidate-enumeration + measured A/B
# selection loop over all seven paper workloads and record BENCH_10.json
# (wall time plus the geometric-mean exact-confirmed speedup of the
# selected layouts).
OPTIMIZE_METRICS ?= optimize-metrics.txt
OPTIMIZE_JSON ?= BENCH_10.json
bench-optimize:
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkOptimizeSweep' \
		. | tee $(OPTIMIZE_METRICS)
	$(GO) run ./cmd/benchjson -in $(OPTIMIZE_METRICS) -out $(OPTIMIZE_JSON)

# optimize-gate: re-measure the sweep and fail when the selected
# layouts' geomean speedup dropped more than 5% against the committed
# BENCH_10.json. The metric is deterministic simulation output (not wall
# time), so the tolerance only absorbs legitimate enumerator retuning,
# not machine noise.
optimize-gate:
	$(GO) test -run '^$$' -benchtime 1x -bench 'BenchmarkOptimizeSweep' . \
		| tee /tmp/optimize-gate.txt
	$(GO) run ./cmd/benchjson -gate -in /tmp/optimize-gate.txt -baseline $(OPTIMIZE_JSON) \
		-bench BenchmarkOptimizeSweep -metric geomean-speedup \
		-higher-is-better -max-regress 5

# optimize-check: the layout-optimizer acceptance suite — worker-count
# byte-identity and the stat-vs-exact decision differential over the
# paper workloads under the race detector, the frozen-fixture refusal,
# the advice-suboptimal fixture, the enumerator unit tests, the
# /v1/optimize endpoint tests, and a short run of the enumerator fuzzer
# (no panic, legality respected, stable dedup).
optimize-check:
	$(GO) test -race -run 'TestOptimize' .
	$(GO) test -race ./internal/optimize/
	$(GO) test -race -run 'TestOptimizeEndpoint' ./internal/server/
	$(GO) test ./internal/optimize/ -run '^$$' -fuzz FuzzOptimizeEnumerator -fuzztime 30s
