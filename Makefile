# Standard targets; CI runs the same three steps (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race lint fmt fuzz bench bench-smoke vet-sharing

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint: go vet must be clean and every file gofmt-formatted.
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

# fuzz: a short smoke run of the symbolic-resolver fuzzer.
fuzz:
	$(GO) test ./internal/staticlint/ -fuzz FuzzResolver -fuzztime 30s

# vet-sharing: the false-sharing acceptance smoke — the planted fixture
# must be flagged statically and confirmed by the coherence cross-check.
vet-sharing:
	$(GO) run ./cmd/structslim vet -sharing -workload falseshare | tee /tmp/vet-sharing.out
	@grep -q "FALSE-SHARING stats._Stat" /tmp/vet-sharing.out
	@grep -q "CONFIRMED" /tmp/vet-sharing.out

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke: one iteration of the perf-critical benchmarks — the
# hot-path microbenchmarks and the parallel-engine speedup/identity
# check — with metrics captured for CI artifact upload.
BENCH_METRICS ?= bench-metrics.txt
bench-smoke:
	$(GO) test -run '^$$' -benchtime 1x \
		-bench 'BenchmarkRunnerParallel|BenchmarkMachineHotPath|BenchmarkCacheAccess|BenchmarkInterpreter' \
		-benchmem . | tee $(BENCH_METRICS)
