# Standard targets; CI runs the same three steps (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race lint fmt fuzz bench bench-smoke bench-gate vet-sharing

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint: go vet must be clean and every file gofmt-formatted.
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

# fuzz: a short smoke run of the symbolic-resolver fuzzer.
fuzz:
	$(GO) test ./internal/staticlint/ -fuzz FuzzResolver -fuzztime 30s

# vet-sharing: the false-sharing acceptance smoke — the planted fixture
# must be flagged statically and confirmed by the coherence cross-check.
vet-sharing:
	$(GO) run ./cmd/structslim vet -sharing -workload falseshare | tee /tmp/vet-sharing.out
	@grep -q "FALSE-SHARING stats._Stat" /tmp/vet-sharing.out
	@grep -q "CONFIRMED" /tmp/vet-sharing.out

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke: one iteration of the perf-critical benchmarks — the
# hot-path microbenchmarks and the parallel-engine speedup/identity
# check — plus the ART end-to-end reference-vs-fastpath benchmark, with
# metrics captured as text and as JSON (BENCH_4.json) for CI upload.
BENCH_METRICS ?= bench-metrics.txt
BENCH_JSON ?= BENCH_4.json
bench-smoke:
	$(GO) test -run '^$$' -benchtime 1x \
		-bench 'BenchmarkRunnerParallel|BenchmarkMachineHotPath|BenchmarkCacheAccess|BenchmarkInterpreter' \
		-benchmem . | tee $(BENCH_METRICS)
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkARTProfile' \
		-benchmem . | tee -a $(BENCH_METRICS)
	$(GO) run ./cmd/benchjson -in $(BENCH_METRICS) -out $(BENCH_JSON)

# bench-gate: re-measure the ART end-to-end benchmark and fail when the
# fast-path speedup over the reference engines regressed more than 15%
# against the committed BENCH_4.json baseline. The gated metric is the
# in-run speedup ratio, so it is machine-neutral.
bench-gate:
	$(GO) test -run '^$$' -benchtime 3x -bench 'BenchmarkARTProfile' . \
		| tee /tmp/bench-gate.txt
	$(GO) run ./cmd/benchjson -gate -in /tmp/bench-gate.txt -baseline BENCH_4.json \
		-bench BenchmarkARTProfile/fastpath -metric x-vs-reference \
		-higher-is-better -max-regress 15
