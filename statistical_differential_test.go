package repro_test

// Differential harness for sampled-window statistical simulation
// (core.Options.Statistical). Statistical mode is an approximation, not
// an exact twin: skipped accesses charge an estimated latency, so sample
// latencies, levels, and timestamps drift from exact mode. What must NOT
// drift — and what this suite hard-gates on all seven paper workloads —
// is the advice: the set of analyzed structures in ranked order and each
// structure's SplitAdvice partition. The quantified divergence of the
// underlying measurements (latency totals, miss ratios, sample counts)
// is logged per workload for EXPERIMENTS.md.

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

// adviceFingerprint canonicalizes what the gate protects: analyzed
// structures in rank order, each with its advice partition (groups of
// offsets, order-independent within and across groups).
func adviceFingerprint(rep *core.Report) string {
	var sb strings.Builder
	for _, sr := range rep.Structures {
		fmt.Fprintf(&sb, "%s:", sr.Name)
		if sr.Advice != nil {
			groups := make([]string, 0, len(sr.Advice.Offsets))
			for _, offs := range sr.Advice.Offsets {
				o := append([]uint64(nil), offs...)
				sort.Slice(o, func(i, j int) bool { return o[i] < o[j] })
				parts := make([]string, len(o))
				for i, v := range o {
					parts[i] = fmt.Sprint(v)
				}
				groups = append(groups, strings.Join(parts, ","))
			}
			sort.Strings(groups)
			fmt.Fprintf(&sb, "{%s}", strings.Join(groups, "|"))
		}
		sb.WriteString(";")
	}
	return sb.String()
}

func l1MissRatio(st vm.Stats) float64 {
	if len(st.Cache.Levels) == 0 || st.Cache.Levels[0].Accesses == 0 {
		return 0
	}
	return float64(st.Cache.Levels[0].Misses) / float64(st.Cache.Levels[0].Accesses)
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// TestStatisticalAdviceMatchesExact is the hard gate: on every paper
// workload, statistical mode must produce the same analyzed-structure
// ranking and the same SplitAdvice partitions as exact mode, with a
// populated error report that accounts for every access.
func TestStatisticalAdviceMatchesExact(t *testing.T) {
	for _, name := range workloads.PaperOrder {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := structslim.Options{SamplePeriod: 3000, Seed: 7}

			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			exactRes, exactRep, err := structslim.ProfileAndAnalyze(p, phases, opt)
			if err != nil {
				t.Fatal(err)
			}

			statOpt := opt
			statOpt.Analysis.Statistical = true
			p2, phases2, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			statRes, statRep, err := structslim.ProfileAndAnalyze(p2, phases2, statOpt)
			if err != nil {
				t.Fatal(err)
			}

			// Hard gate: identical advice ranking and partitions.
			exactFP, statFP := adviceFingerprint(exactRep), adviceFingerprint(statRep)
			if exactFP != statFP {
				t.Errorf("split advice diverged\nexact: %s\nstat:  %s", exactFP, statFP)
			}
			if len(exactRep.Structures) == 0 {
				t.Error("exact analysis found no structures; test has no power")
			}

			// Error report: populated and self-consistent.
			r := statRes.Stat
			if r == nil {
				t.Fatal("statistical run produced no error report")
			}
			if r.Windows == 0 || r.SkippedAccesses == 0 {
				t.Errorf("no fast-forward windows armed (windows=%d skipped=%d)", r.Windows, r.SkippedAccesses)
			}
			if r.SimulatedAccesses+r.SkippedAccesses != r.TotalAccesses {
				t.Errorf("access accounting broken: %d simulated + %d skipped != %d total",
					r.SimulatedAccesses, r.SkippedAccesses, r.TotalAccesses)
			}
			if r.SimulatedPct <= 0 || r.SimulatedPct >= 100 {
				t.Errorf("simulated fraction %.2f%% out of range", r.SimulatedPct)
			}
			if r.Samples == 0 {
				t.Error("no samples recorded")
			}
			if exactRes.Stat != nil {
				t.Error("exact run unexpectedly produced a statistical report")
			}

			// Program semantics must be exact: same instruction and
			// access counts retired either way.
			if statRes.Stats.Instrs != exactRes.Stats.Instrs || statRes.Stats.MemOps != exactRes.Stats.MemOps {
				t.Errorf("program semantics drifted: instrs %d vs %d, memops %d vs %d",
					statRes.Stats.Instrs, exactRes.Stats.Instrs,
					statRes.Stats.MemOps, exactRes.Stats.MemOps)
			}

			// Quantified divergence of the approximate measurements.
			t.Logf("%s: simulated %.2f%% of %d accesses (%d windows, W=%d)",
				name, r.SimulatedPct, r.TotalAccesses, r.Windows, r.Window)
			t.Logf("%s: samples exact=%d stat=%d; latency-share rel.err=%.4f; L1 miss ratio exact=%.4f stat=%.4f; stride confidence=%.4f",
				name, exactRes.Profile.NumSamples, statRes.Profile.NumSamples,
				relErr(float64(statRes.Profile.TotalLatency), float64(exactRes.Profile.TotalLatency)),
				l1MissRatio(exactRes.Stats), l1MissRatio(statRes.Stats), r.StrideConfidence)
		})
	}
}

// TestStatisticalSampledAddressesExact checks the mechanism behind the
// gate: sampling is access-count driven, so the statistical run records
// samples at the same accesses with the same addresses, IPs, and
// contexts — only latency, level, and timestamp may differ.
func TestStatisticalSampledAddressesExact(t *testing.T) {
	w, err := workloads.Get("art")
	if err != nil {
		t.Fatal(err)
	}
	opt := structslim.Options{SamplePeriod: 3000, Seed: 7}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := structslim.ProfileRun(p, phases, opt)
	if err != nil {
		t.Fatal(err)
	}
	statOpt := opt
	statOpt.Analysis.Statistical = true
	p2, phases2, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := structslim.ProfileRun(p2, phases2, statOpt)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Profile.NumSamples != stat.Profile.NumSamples {
		t.Fatalf("sample counts differ: exact=%d stat=%d", exact.Profile.NumSamples, stat.Profile.NumSamples)
	}
	if exact.Profile.NumSamples == 0 {
		t.Fatal("no samples; test has no power")
	}
	for i := range exact.Profile.Samples {
		e, s := exact.Profile.Samples[i], stat.Profile.Samples[i]
		if e.TID != s.TID || e.IP != s.IP || e.EA != s.EA || e.Write != s.Write ||
			e.ObjID != s.ObjID || e.Ctx != s.Ctx {
			t.Fatalf("sample %d identity differs:\nexact: %+v\nstat:  %+v", i, e, s)
		}
	}
}

// TestStatisticalFallsBackExact pins the modes that must ignore the
// statistical window: IBS (instruction-gated gaps have no access budget
// to split) and the reference engine. Both must be byte-identical to
// their exact runs.
func TestStatisticalFallsBackExact(t *testing.T) {
	w, err := workloads.Get("art")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*structslim.Options)
	}{
		{"ibs", func(o *structslim.Options) { o.IBS = true }},
		{"reference", func(o *structslim.Options) {
			cfg := cache.DefaultConfig()
			cfg.DisableHotLine = true
			o.Cache = &cfg
			o.VM = vm.Config{Reference: true}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := structslim.Options{SamplePeriod: 3000, Seed: 7}
			tc.mut(&opt)
			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := structslim.ProfileRun(p, phases, opt)
			if err != nil {
				t.Fatal(err)
			}
			statOpt := opt
			statOpt.Analysis.Statistical = true
			p2, phases2, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			stat, err := structslim.ProfileRun(p2, phases2, statOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exact.Stats, stat.Stats) {
				t.Errorf("stats differ\nexact: %+v\nstat:  %+v", exact.Stats, stat.Stats)
			}
			if !reflect.DeepEqual(exact.Profile, stat.Profile) {
				t.Error("profiles differ")
			}
			if stat.Stat == nil {
				t.Error("error report missing (should report zero windows)")
			} else if stat.Stat.Windows != 0 {
				t.Errorf("windows armed in a mode that must stay exact: %d", stat.Stat.Windows)
			}
		})
	}
}
