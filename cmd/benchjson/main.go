// Command benchjson converts `go test -bench` text output into a stable
// machine-readable JSON document, and gates changes against a committed
// baseline — a minimal benchstat for CI.
//
// Convert (writes JSON to -out or stdout):
//
//	go test -bench . -benchmem . | benchjson -out BENCH_4.json
//
// Gate (exit 1 when a metric regressed more than -max-regress percent
// against the baseline):
//
//	go test -bench ARTProfile . | benchjson \
//	    -gate -baseline BENCH_4.json \
//	    -bench BenchmarkARTProfile/fastpath -metric x-vs-reference \
//	    -higher-is-better -max-regress 15
//
// Repeated runs of the same benchmark (go test -count=N) merge into one
// entry holding the best value per metric, with the observed run-to-run
// spread recorded alongside — gating on a single noisy run trips the
// regression threshold on variance, not on regressions.
//
// -geomean prefix:metric synthesizes a `<prefix>/geomean` entry from all
// sub-benchmarks carrying that metric, so a suite-wide speedup can be
// gated as one number instead of per-workload.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the JSON document format. Version 2 adds the
// best-of-N fields (runs, spread) and geomean entries; version-1
// baselines still decode — the new fields just read as absent.
const Schema = "structslim-bench/2"

// Doc is the top-level JSON document.
type Doc struct {
	Schema     string      `json:"schema"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark result, possibly merged from several runs.
// Metrics maps unit → value (ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units); with Runs > 1 each value is the best observed
// and Spread records the run-to-run variation per unit, (max−min)/min in
// percent.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Runs       int                `json:"runs,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
	Spread     map[string]float64 `json:"spread,omitempty"`
}

func main() {
	var (
		in        = flag.String("in", "", "bench output file (default stdin)")
		out       = flag.String("out", "", "JSON output file (default stdout)")
		gate      = flag.Bool("gate", false, "compare against -baseline instead of emitting JSON")
		baseline  = flag.String("baseline", "", "baseline JSON file for -gate")
		benchName = flag.String("bench", "", "benchmark name to gate on (exact, without -GOMAXPROCS suffix)")
		metric    = flag.String("metric", "ns/op", "metric unit to gate on")
		higher    = flag.Bool("higher-is-better", false, "metric improves upward (speedups) rather than downward (times)")
		maxReg    = flag.Float64("max-regress", 15, "max tolerated regression, percent")
		geo       = flag.String("geomean", "", "prefix:metric — synthesize a <prefix>/geomean entry over matching sub-benchmarks")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		fail(err)
		defer f.Close()
		r = f
	}
	benches, err := parseBench(r)
	fail(err)
	if len(benches) == 0 {
		fail(fmt.Errorf("no benchmark lines found in input"))
	}
	benches = mergeRuns(benches)
	if *geo != "" {
		gm, err := synthGeomean(benches, *geo)
		fail(err)
		benches = append(benches, gm)
	}
	doc := Doc{Schema: Schema, Benchmarks: benches}

	if *gate {
		fail(runGate(doc, *baseline, *benchName, *metric, *higher, *maxReg))
		return
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	fail(os.WriteFile(*out, enc, 0o644))
}

// parseBench extracts benchmark result lines from `go test -bench`
// output: Benchmark<Name>[-procs] <iterations> {<value> <unit>}...
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: stripProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad metric value %q", b.Name, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// stripProcs drops the trailing -GOMAXPROCS suffix go test appends.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// lowerIsBetter classifies a metric unit by its direction of goodness:
// times and per-op/per-sample costs (ns/op, B/op, allocs/op, and the
// streaming bench's allocs/sample and bytes/sample — anything ns/…,
// …/op, or …/sample) improve downward; everything else — the custom
// ratios this repo reports (x-vs-reference, x-vs-serial, samples/sec) —
// improves upward. Best-of-N merging and gating both use this, so a
// per-sample cost regression gates as a regression, not an improvement.
func lowerIsBetter(unit string) bool {
	return strings.Contains(unit, "ns/") ||
		strings.HasSuffix(unit, "/op") ||
		strings.HasSuffix(unit, "/sample")
}

// mergeRuns collapses repeated result lines for the same benchmark
// (go test -count=N) into one best-of-N entry, preserving first-seen
// order. Per metric it keeps the best value by the unit's direction and
// records the run-to-run spread, (max−min)/min in percent — a single
// noisy run showing up as a 13% swing in the record rather than a
// mystery gate failure later.
func mergeRuns(benches []Benchmark) []Benchmark {
	byName := make(map[string]int)
	var out []Benchmark
	for _, b := range benches {
		i, seen := byName[b.Name]
		if !seen {
			byName[b.Name] = len(out)
			b.Runs = 1
			out = append(out, b)
			continue
		}
		m := &out[i]
		m.Runs++
		if b.Iterations > m.Iterations {
			m.Iterations = b.Iterations
		}
		if m.Spread == nil {
			m.Spread = map[string]float64{}
			for unit := range m.Metrics {
				m.Spread[unit] = 0
			}
		}
		for unit, v := range b.Metrics {
			best, ok := m.Metrics[unit]
			if !ok {
				m.Metrics[unit] = v
				m.Spread[unit] = 0
				continue
			}
			// Spread tracks over the raw observations: recover the
			// current worst from best and spread, then fold v in.
			lo, hi := best, best
			if s := m.Spread[unit]; s > 0 && best != 0 {
				if lowerIsBetter(unit) {
					hi = best * (1 + s/100)
				} else {
					lo = best / (1 + s/100)
				}
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			if lowerIsBetter(unit) {
				m.Metrics[unit] = lo
			} else {
				m.Metrics[unit] = hi
			}
			if lo != 0 {
				m.Spread[unit] = (hi - lo) / lo * 100
			}
		}
	}
	return out
}

// synthGeomean builds a geomean entry from spec "pattern:metric". A plain
// prefix matches every benchmark named `prefix/...` and the entry is
// named `prefix/geomean`; a pattern with `*` path components (e.g.
// `BenchmarkWorkloadSweep/*/statistical`) matches component-wise, which
// selects one engine variant out of a sweep whose sub-benchmarks all
// report the same unit, and the entry drops the wildcard components:
// `BenchmarkWorkloadSweep/statistical/geomean`. The geometric mean is the
// right aggregate for ratios: one workload's outlier speedup cannot mask
// a suite-wide regression.
func synthGeomean(benches []Benchmark, spec string) (Benchmark, error) {
	i := strings.LastIndexByte(spec, ':')
	if i <= 0 || i == len(spec)-1 {
		return Benchmark{}, fmt.Errorf("-geomean wants pattern:metric, got %q", spec)
	}
	pattern, metric := spec[:i], spec[i+1:]
	match := func(name string) bool { return strings.HasPrefix(name, pattern+"/") }
	entryName := pattern + "/geomean"
	if strings.Contains(pattern, "*") {
		comps := strings.Split(pattern, "/")
		match = func(name string) bool {
			parts := strings.Split(name, "/")
			if len(parts) != len(comps) {
				return false
			}
			for j, c := range comps {
				if c != "*" && c != parts[j] {
					return false
				}
			}
			return true
		}
		var kept []string
		for _, c := range comps {
			if c != "*" {
				kept = append(kept, c)
			}
		}
		entryName = strings.Join(append(kept, "geomean"), "/")
	}
	logSum, n := 0.0, 0
	for _, b := range benches {
		if !match(b.Name) {
			continue
		}
		v, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		if v <= 0 {
			return Benchmark{}, fmt.Errorf("%s %s = %g: geomean needs positive values", b.Name, metric, v)
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return Benchmark{}, fmt.Errorf("no benchmark matching %s carries metric %q", pattern, metric)
	}
	return Benchmark{
		Name:    entryName,
		Runs:    n,
		Metrics: map[string]float64{metric: math.Exp(logSum / float64(n))},
	}, nil
}

func find(doc Doc, name, metric string) (float64, error) {
	for _, b := range doc.Benchmarks {
		if b.Name != name {
			continue
		}
		v, ok := b.Metrics[metric]
		if !ok {
			return 0, fmt.Errorf("benchmark %s has no metric %q (have %v)", name, metric, keys(b.Metrics))
		}
		return v, nil
	}
	return 0, fmt.Errorf("benchmark %s not found", name)
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// runGate compares the current value of one metric against the baseline
// document and fails on a regression beyond the tolerance.
func runGate(cur Doc, baselinePath, bench, metric string, higherIsBetter bool, maxRegressPct float64) error {
	if baselinePath == "" || bench == "" {
		return fmt.Errorf("-gate requires -baseline and -bench")
	}
	raw, err := os.ReadFile(baselinePath)
	if os.IsNotExist(err) {
		// First run on a branch without a recorded baseline: nothing to
		// compare against, so pass (the convert step still records one).
		fmt.Printf("no baseline %s: skipping gate\n", baselinePath)
		return nil
	}
	if err != nil {
		return err
	}
	var base Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %v", baselinePath, err)
	}
	for _, miss := range missingMetrics(base, cur) {
		fmt.Printf("WARNING: %s present in baseline but missing from candidate\n", miss)
	}
	baseV, err := find(base, bench, metric)
	if err != nil {
		return fmt.Errorf("baseline: %v", err)
	}
	curV, err := find(cur, bench, metric)
	if err != nil {
		return fmt.Errorf("current: %v", err)
	}
	if baseV == 0 {
		return fmt.Errorf("baseline %s %s is zero", bench, metric)
	}
	// Regression percent: positive when the current value is worse.
	reg := (curV - baseV) / baseV * 100
	if higherIsBetter {
		reg = -reg
	}
	status := "ok"
	if reg > maxRegressPct {
		status = "REGRESSION"
	}
	fmt.Printf("%s %s: baseline %.4g, current %.4g, regression %.1f%% (tolerance %.1f%%): %s\n",
		bench, metric, baseV, curV, reg, maxRegressPct, status)
	if status != "ok" {
		return fmt.Errorf("%s %s regressed %.1f%% (> %.1f%%)", bench, metric, reg, maxRegressPct)
	}
	return nil
}

// missingMetrics lists every "bench metric" pair recorded in the baseline
// document but absent from the candidate — a renamed benchmark or a
// dropped b.ReportMetric call silently un-gates a metric, so the gate
// surfaces the gap as a warning. The list is sorted for stable output.
func missingMetrics(base, cur Doc) []string {
	have := make(map[string]bool)
	for _, b := range cur.Benchmarks {
		for unit := range b.Metrics {
			have[b.Name+" "+unit] = true
		}
	}
	var out []string
	for _, b := range base.Benchmarks {
		for unit := range b.Metrics {
			if key := b.Name + " " + unit; !have[key] {
				out = append(out, key)
			}
		}
	}
	sort.Strings(out)
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
