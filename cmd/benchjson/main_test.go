package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
BenchmarkARTProfile/fastpath-8   	      12	  90000000 ns/op	 2.500 x-vs-reference
BenchmarkAnalyticSweep-8         	       3	 400000000 ns/op	 2.541 speedup
PASS
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(benches), benches)
	}
	want := Benchmark{
		Name:       "BenchmarkAnalyticSweep",
		Iterations: 3,
		Metrics:    map[string]float64{"ns/op": 4e8, "speedup": 2.541},
	}
	if !reflect.DeepEqual(benches[1], want) {
		t.Errorf("got %+v, want %+v", benches[1], want)
	}
}

func TestLowerIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": true, "B/op": true, "allocs/op": true, "ns/sample": true,
		"allocs/sample": true, "bytes/sample": true,
		"x-vs-reference": false, "x-vs-serial": false, "speedup": false,
		"samples/sec": false,
	} {
		if got := lowerIsBetter(unit); got != want {
			t.Errorf("lowerIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

// TestMergeRunsBestOfN replays a -count=3 stream: the merged entry must
// keep the best value per metric by direction (min ns/op, max speedup)
// and record the full observed spread — including the 1.80→1.59 style
// swing that motivated best-of-N gating.
func TestMergeRunsBestOfN(t *testing.T) {
	runs := []Benchmark{
		{Name: "BenchmarkARTProfile/fastpath", Iterations: 10, Metrics: map[string]float64{"ns/op": 100e6, "x-vs-reference": 1.80}},
		{Name: "BenchmarkOther", Iterations: 5, Metrics: map[string]float64{"ns/op": 50e6}},
		{Name: "BenchmarkARTProfile/fastpath", Iterations: 12, Metrics: map[string]float64{"ns/op": 113e6, "x-vs-reference": 1.59}},
		{Name: "BenchmarkARTProfile/fastpath", Iterations: 11, Metrics: map[string]float64{"ns/op": 104e6, "x-vs-reference": 1.71}},
	}
	out := mergeRuns(runs)
	if len(out) != 2 {
		t.Fatalf("merged into %d entries, want 2: %+v", len(out), out)
	}
	m := out[0]
	if m.Name != "BenchmarkARTProfile/fastpath" || m.Runs != 3 || m.Iterations != 12 {
		t.Fatalf("merged header wrong: %+v", m)
	}
	if m.Metrics["ns/op"] != 100e6 {
		t.Errorf("best ns/op = %g, want min 100e6", m.Metrics["ns/op"])
	}
	if m.Metrics["x-vs-reference"] != 1.80 {
		t.Errorf("best x-vs-reference = %g, want max 1.80", m.Metrics["x-vs-reference"])
	}
	if got, want := m.Spread["ns/op"], 13.0; got < want-0.01 || got > want+0.01 {
		t.Errorf("ns/op spread = %.2f%%, want ~%.0f%%", got, want)
	}
	if got, want := m.Spread["x-vs-reference"], (1.80-1.59)/1.59*100; got < want-0.01 || got > want+0.01 {
		t.Errorf("x-vs-reference spread = %.2f%%, want ~%.2f%%", got, want)
	}
	if out[1].Runs != 1 || out[1].Spread != nil {
		t.Errorf("single-run entry grew spread bookkeeping: %+v", out[1])
	}
}

func TestSynthGeomean(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkWorkloadSweep/art/statistical", Metrics: map[string]float64{"x-vs-reference": 2.0}},
		{Name: "BenchmarkWorkloadSweep/health/statistical", Metrics: map[string]float64{"x-vs-reference": 8.0}},
		{Name: "BenchmarkWorkloadSweep/art/fastpath", Metrics: map[string]float64{"ns/op": 1e6}},
		{Name: "BenchmarkUnrelated", Metrics: map[string]float64{"x-vs-reference": 100}},
	}
	gm, err := synthGeomean(benches, "BenchmarkWorkloadSweep:x-vs-reference")
	if err != nil {
		t.Fatal(err)
	}
	if gm.Name != "BenchmarkWorkloadSweep/geomean" || gm.Runs != 2 {
		t.Fatalf("geomean entry wrong: %+v", gm)
	}
	if v := gm.Metrics["x-vs-reference"]; v < 3.999 || v > 4.001 {
		t.Errorf("geomean(2, 8) = %g, want 4", v)
	}
	if _, err := synthGeomean(benches, "BenchmarkNothing:x-vs-reference"); err == nil {
		t.Error("empty match set did not error")
	}
	if _, err := synthGeomean(benches, "no-colon"); err == nil {
		t.Error("malformed spec did not error")
	}
}

// TestSynthGeomeanGlob selects one engine variant out of a sweep whose
// sub-benchmarks all report the same unit.
func TestSynthGeomeanGlob(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkWorkloadSweep/art/statistical", Metrics: map[string]float64{"x-vs-reference": 3.0}},
		{Name: "BenchmarkWorkloadSweep/health/statistical", Metrics: map[string]float64{"x-vs-reference": 12.0}},
		{Name: "BenchmarkWorkloadSweep/art/fastpath", Metrics: map[string]float64{"x-vs-reference": 1.7}},
		{Name: "BenchmarkWorkloadSweep/health/fastpath", Metrics: map[string]float64{"x-vs-reference": 1.6}},
	}
	gm, err := synthGeomean(benches, "BenchmarkWorkloadSweep/*/statistical:x-vs-reference")
	if err != nil {
		t.Fatal(err)
	}
	if gm.Name != "BenchmarkWorkloadSweep/statistical/geomean" || gm.Runs != 2 {
		t.Fatalf("glob geomean entry wrong: %+v", gm)
	}
	if v := gm.Metrics["x-vs-reference"]; v < 5.999 || v > 6.001 {
		t.Errorf("geomean(3, 12) = %g, want 6 (fastpath entries must not dilute)", v)
	}
}

// TestGateReadsV1Baseline pins schema compatibility: a version-1 baseline
// (no runs/spread fields) must still gate against a v2 candidate.
func TestGateReadsV1Baseline(t *testing.T) {
	raw := []byte(`{"schema":"structslim-bench/1","benchmarks":[{"name":"BenchmarkX","iterations":1,"metrics":{"speedup":2.0}}]}`)
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cur := Doc{Schema: Schema, Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Runs: 3, Metrics: map[string]float64{"speedup": 2.1}, Spread: map[string]float64{"speedup": 4}},
	}}
	if err := runGate(cur, path, "BenchmarkX", "speedup", true, 15); err != nil {
		t.Errorf("v1 baseline failed to gate: %v", err)
	}
}

func TestMissingMetrics(t *testing.T) {
	base := Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1, "speedup": 2}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 3}},
	}}
	cur := Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1}},
	}}
	got := missingMetrics(base, cur)
	want := []string{"BenchmarkA speedup", "BenchmarkB ns/op"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("missingMetrics = %v, want %v", got, want)
	}
	if m := missingMetrics(base, base); m != nil {
		t.Errorf("identical docs reported missing metrics: %v", m)
	}
}

func TestGateRegression(t *testing.T) {
	base := Doc{Schema: Schema, Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Iterations: 1, Metrics: map[string]float64{"speedup": 2.5}},
	}}
	write := func(t *testing.T, doc Doc) string {
		t.Helper()
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cur := Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"speedup": 2.6}},
	}}
	if err := runGate(cur, write(t, base), "BenchmarkX", "speedup", true, 15); err != nil {
		t.Errorf("improvement flagged as regression: %v", err)
	}

	cur.Benchmarks[0].Metrics["speedup"] = 1.0
	if err := runGate(cur, write(t, base), "BenchmarkX", "speedup", true, 15); err == nil {
		t.Error("60%% slowdown passed the gate")
	}
}
