package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
BenchmarkARTProfile/fastpath-8   	      12	  90000000 ns/op	 2.500 x-vs-reference
BenchmarkAnalyticSweep-8         	       3	 400000000 ns/op	 2.541 speedup
PASS
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(benches), benches)
	}
	want := Benchmark{
		Name:       "BenchmarkAnalyticSweep",
		Iterations: 3,
		Metrics:    map[string]float64{"ns/op": 4e8, "speedup": 2.541},
	}
	if !reflect.DeepEqual(benches[1], want) {
		t.Errorf("got %+v, want %+v", benches[1], want)
	}
}

func TestMissingMetrics(t *testing.T) {
	base := Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1, "speedup": 2}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 3}},
	}}
	cur := Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1}},
	}}
	got := missingMetrics(base, cur)
	want := []string{"BenchmarkA speedup", "BenchmarkB ns/op"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("missingMetrics = %v, want %v", got, want)
	}
	if m := missingMetrics(base, base); m != nil {
		t.Errorf("identical docs reported missing metrics: %v", m)
	}
}

func TestGateRegression(t *testing.T) {
	base := Doc{Schema: Schema, Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Iterations: 1, Metrics: map[string]float64{"speedup": 2.5}},
	}}
	write := func(t *testing.T, doc Doc) string {
		t.Helper()
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cur := Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"speedup": 2.6}},
	}}
	if err := runGate(cur, write(t, base), "BenchmarkX", "speedup", true, 15); err != nil {
		t.Errorf("improvement flagged as regression: %v", err)
	}

	cur.Benchmarks[0].Metrics["speedup"] = 1.0
	if err := runGate(cur, write(t, base), "BenchmarkX", "speedup", true, 15); err == nil {
		t.Error("60%% slowdown passed the gate")
	}
}
