// Command experiments regenerates the paper's evaluation artifacts
// (Tables 2–6, Figures 4–13, and the Equation 4 accuracy study) against
// the simulated machine, printing measured values next to the published
// ones.
//
// Usage:
//
//	experiments -all [-scale bench]
//	experiments -table 3
//	experiments -figure 6
//	experiments -accuracy
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/tables"
	"repro/internal/workloads"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		table    = flag.Int("table", 0, "regenerate one table (1-6)")
		figure   = flag.Int("figure", 0, "regenerate one figure (4-13)")
		accuracy = flag.Bool("accuracy", false, "run the Equation 4 accuracy study")
		robust   = flag.Bool("robustness", false, "run the sampling-period robustness sweep on ART")
		statErr  = flag.Bool("staterror", false, "run the statistical-mode fidelity sweep (advice error vs window W)")
		baseline = flag.Bool("baselines", false, "compare sampling against instrumentation baselines on ART")
		cases    = flag.Bool("casestudies", false, "run the beyond-paper case studies (mcf, streamcluster)")
		optim    = flag.Bool("optimize", false, "run the measured A/B layout selection on art, tsp, and health")
		scale    = flag.String("scale", "test", "problem scale: test or bench")
		period   = flag.Uint64("period", 10_000, "address-sampling period")
		seed     = flag.Uint64("seed", 1, "sampling randomization seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent simulations (output is byte-identical at any value)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		fail(err)
		fail(pprof.StartCPUProfile(f))
	}
	memProfile = *memProf

	sc := workloads.ScaleTest
	if *scale == "bench" {
		sc = workloads.ScaleBench
	}
	opt := tables.Options{Scale: sc, SamplePeriod: *period, Seed: *seed, Parallel: *parallel}
	out := os.Stdout

	// One engine for the whole invocation: artifacts that re-run the same
	// simulation (Tables 3/4 vs Figures 7–13, ART's tables vs Figure 6)
	// share results through its keyed cache.
	eng := tables.NewEngine(opt)

	// The Table 3/4 runs are shared.
	var results []*tables.BenchResult
	needBench := *all || *table == 3 || *table == 4
	if needBench {
		var err error
		results, err = eng.RunPaperBenchmarks()
		fail(err)
	}
	needART := *all || *table == 5 || *table == 6 || *figure == 6

	if *all || *table == 1 {
		tables.WriteTable1(out)
		fmt.Fprintln(out)
	}
	if *all || *table == 2 {
		tables.WriteTable2(out)
		fmt.Fprintln(out)
	}
	if *all || *table == 3 {
		tables.WriteTable3(out, results)
		fmt.Fprintln(out)
	}
	if *all || *table == 4 {
		tables.WriteTable4(out, results)
		fmt.Fprintln(out)
	}
	if needART {
		sr, err := eng.AnalyzeART()
		fail(err)
		if *all || *table == 5 {
			tables.WriteTable5(out, sr)
			fmt.Fprintln(out)
		}
		if *all || *table == 6 {
			tables.WriteTable6(out, sr)
			fmt.Fprintln(out)
		}
		if *all || *figure == 6 {
			fmt.Fprintln(out, "Figure 6: f1_neuron affinity graph (dot)")
			tables.WriteFigure6(out, sr)
			fmt.Fprintln(out)
		}
	}
	if *all || *figure == 4 {
		points, err := eng.SuiteOverheads(workloads.RodiniaSuite)
		fail(err)
		tables.WriteOverheadFigure(out, "Figure 4: Rodinia", points, tables.PaperRodiniaAvgOverheadPct)
		fmt.Fprintln(out)
	}
	if *all || *figure == 5 {
		points, err := eng.SuiteOverheads(workloads.SpecSuite)
		fail(err)
		tables.WriteOverheadFigure(out, "Figure 5: SPEC CPU 2006", points, tables.PaperSpecAvgOverheadPct)
		fmt.Fprintln(out)
	}
	for fig := 7; fig <= 13; fig++ {
		if *all || *figure == fig {
			fmt.Fprintf(out, "Figure %d: ", fig)
			fail(eng.SplitFigure(out, tables.FigureNumberFor[fig]))
			fmt.Fprintln(out)
		}
	}
	if *all || *accuracy {
		rows := tables.AccuracyExperiment(10000, 2000, *seed)
		tables.WriteAccuracy(out, rows)
		fmt.Fprintln(out)
	}
	if *all || *robust {
		rows, err := eng.PeriodRobustness("art",
			[]uint64{1000, 3000, 10_000, 30_000, 100_000}, "P", "P")
		fail(err)
		tables.WriteRobustness(out, "art", rows)
		fmt.Fprintln(out)
	}
	if *all || *statErr {
		rows, err := eng.StatErrorSweep([]int{32, 64, 128, 256})
		fail(err)
		tables.WriteStatError(out, rows)
		fmt.Fprintln(out)
	}
	if *all || *baseline {
		rows, err := eng.BaselineComparison("art")
		fail(err)
		tables.WriteBaselines(out, "art", rows)
		fmt.Fprintln(out)
	}
	if *all || *cases {
		fail(eng.CaseStudies(out))
	}
	if *all || *optim {
		results, err := tables.RankedGroupings(opt, []string{"art", "tsp", "health"})
		fail(err)
		tables.WriteRankedGroupings(out, results)
		fmt.Fprintln(out)
	}

	if !*all && *table == 0 && *figure == 0 && !*accuracy && !*robust && !*statErr && !*baseline && !*cases && !*optim {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "nothing to do: pass -all, -table N, -figure N, or -accuracy")
		os.Exit(2)
	}
	stopProfiles()
}

// memProfile is the -memprofile path; stopProfiles writes it (and stops
// the CPU profile) on every exit path, including fail().
var memProfile string

func stopProfiles() {
	pprof.StopCPUProfile()
	if memProfile == "" {
		return
	}
	f, err := os.Create(memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date heap statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
}

func fail(err error) {
	if err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
