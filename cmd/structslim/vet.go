package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/legality"
	"repro/internal/prog"
	"repro/internal/sharing"
	"repro/internal/staticlint"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

// runVet implements `structslim vet`: run the static stride & layout
// analyzer over a workload, lint its registered struct layouts, and —
// unless -static-only — profile the workload and cross-check every exact
// static prediction against the dynamic GCD recovery (Eqs. 2–6). With
// -sharing it additionally classifies per-field thread sharing, predicts
// false sharing, and validates the claims against the cache directory's
// coherence traffic. It returns an error when predictions contradict the
// dynamic side.
func runVet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	var (
		name         = fs.String("workload", "", "workload to vet (see structslim -list)")
		all          = fs.Bool("all", false, "vet every registered workload")
		scale        = fs.String("scale", "test", "problem scale: test or bench")
		period       = fs.Uint64("period", 2_000, "address-sampling period for the cross-check")
		seed         = fs.Uint64("seed", 1, "sampling randomization seed")
		staticOnly   = fs.Bool("static-only", false, "skip profiling; report static predictions and lint only")
		withSharing  = fs.Bool("sharing", false, "also run the sharing & false-sharing analyzer with its coherence cross-check")
		withReuse    = fs.Bool("reuse", false, "also predict per-nest reuse-distance histograms & miss ratios statically and verify them against an instrumented run")
		withLegality = fs.Bool("legality", false, "also run the transform-legality (alias/escape) pass and replay the workload to cross-check its verdicts")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := workloads.ScaleTest
	if *scale == "bench" {
		sc = workloads.ScaleBench
	}

	var targets []workloads.Workload
	switch {
	case *all:
		targets = workloads.All()
	case *name != "":
		w, err := workloads.Get(*name)
		if err != nil {
			return err
		}
		targets = []workloads.Workload{w}
	default:
		return fmt.Errorf("vet: need -workload or -all")
	}

	failed := 0
	for _, w := range targets {
		if len(targets) > 1 {
			fmt.Fprintf(out, "=== %s ===\n", w.Name())
		}
		ok, err := vetOne(w, sc, *period, *seed, *staticOnly, *withSharing, *withReuse, *withLegality, out)
		if err != nil {
			return fmt.Errorf("vet %s: %w", w.Name(), err)
		}
		if !ok {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("vet: static predictions contradict the profiler in %d workload(s)", failed)
	}
	return nil
}

func vetOne(w workloads.Workload, sc workloads.Scale, period, seed uint64, staticOnly, withSharing, withReuse, withLegality bool, out io.Writer) (bool, error) {
	p, phases, err := w.Build(nil, sc)
	if err != nil {
		return false, err
	}
	a, err := staticlint.AnalyzeProgram(p)
	if err != nil {
		return false, err
	}
	a.RenderText(out)

	// The reuse predictor models demand behaviour, so its verification
	// run disables the prefetcher.
	reuseCfg := cache.DefaultConfig()
	reuseCfg.Prefetch = false
	var rp *staticlint.ReusePrediction
	if withReuse {
		rp = staticlint.PredictReuse(a, reuseCfg)
		rp.RenderText(out)
	}

	var rep *core.Report
	ok := true
	if !staticOnly {
		res, dynRep, err := structslim.ProfileAndAnalyze(p, phases, structslim.Options{
			SamplePeriod: period,
			Seed:         seed,
		})
		if err != nil {
			return false, err
		}
		rep = dynRep
		r := staticlint.CrossCheck(a, res.Profile, 0)
		if rp != nil {
			rr, err := verifyReuse(p, phases, rp, reuseCfg)
			if err != nil {
				return false, err
			}
			r.FoldReuse(rr)
			rr.RenderText(out)
		}
		r.RenderText(out)
		ok = !r.Failed()
	}
	if withSharing {
		cacheCfg := cache.DefaultConfig()
		sa, err := sharing.Analyze(p, phases, int64(cacheCfg.LineSize), a)
		if err != nil {
			return false, err
		}
		sa.RenderText(out)
		if !staticOnly {
			obs, err := sharing.VerifyRun(p, phases, cacheCfg)
			if err != nil {
				return false, err
			}
			sr := sharing.CrossCheck(sa, obs)
			sr.RenderText(out)
			if sr.Failed() {
				ok = false
			}
		}
	}
	if withLegality {
		la, err := legality.AnalyzeProgram(p, a)
		if err != nil {
			return false, err
		}
		la.RenderText(out)
		if rep != nil {
			for _, sr := range rep.Structures {
				sr.Legality = legality.SummaryFor(la, sr.Name, sr.TypeName)
			}
		}
		if !staticOnly {
			lrep, err := legality.CrossCheck(la, cache.DefaultConfig(), phases)
			if err != nil {
				return false, err
			}
			lrep.RenderText(out)
			if lrep.Failed() {
				ok = false
			}
		}
	}
	staticlint.WriteFindings(out, staticlint.Lint(a, rep))
	return ok, nil
}

// verifyReuse runs the workload once more with the trace checker attached
// (no sampler, prefetch off) and returns the static-vs-dynamic report.
func verifyReuse(p *prog.Program, phases []structslim.Phase, rp *staticlint.ReusePrediction, cfg cache.Config) (*staticlint.ReuseReport, error) {
	cores := 1
	for _, ph := range phases {
		for _, ts := range ph {
			if ts.Core+1 > cores {
				cores = ts.Core + 1
			}
		}
	}
	m, err := vm.NewMachine(p, cfg, cores, vm.Config{})
	if err != nil {
		return nil, err
	}
	tc := staticlint.NewTraceChecker(rp)
	m.Observer = tc
	if len(phases) == 0 {
		phases = []structslim.Phase{{vm.ThreadSpec{Fn: p.EntryFn}}}
	}
	var last vm.Stats
	for _, ph := range phases {
		st, err := m.Run(ph)
		if err != nil {
			return nil, err
		}
		last = st
	}
	return tc.Finish(last), nil
}
