package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/workloads"
	"repro/structslim"
)

// runPush profiles a workload locally and replays its per-thread sample
// streams to a `structslim serve` instance over HTTP — the zero-to-demo
// client of the streaming service, and the reference implementation of
// the wire protocol (one session per thread, object table on the first
// batch, cycle accounts on the last, 429 backpressure honored).
//
//	structslim push -workload art [-addr 127.0.0.1:7080] [-batch 256] [-selftest]
func runPush(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("push", flag.ContinueOnError)
	var (
		name      = fs.String("workload", "", "workload to profile and push")
		scale     = fs.String("scale", "test", "problem scale: test or bench")
		addr      = fs.String("addr", "127.0.0.1:7080", "server address")
		period    = fs.Uint64("period", 10_000, "address-sampling period in memory accesses")
		seed      = fs.Uint64("seed", 1, "sampling randomization seed")
		batchSize = fs.Int("batch", 256, "samples per pushed batch")
		ndjson    = fs.Bool("ndjson", false, "push NDJSON instead of gob")
		wait      = fs.Duration("wait", 10*time.Second, "how long to retry connecting to the server")
		selftest  = fs.Bool("selftest", false, "fetch the server's reports and diff them against the local batch analysis")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("push: need -workload")
	}
	if *batchSize <= 0 {
		return fmt.Errorf("push: -batch must be positive")
	}

	w, err := workloads.Get(*name)
	if err != nil {
		return err
	}
	sc := workloads.ScaleTest
	if *scale == "bench" {
		sc = workloads.ScaleBench
	}
	p, phases, err := w.Build(nil, sc)
	if err != nil {
		return err
	}
	opt := structslim.Options{SamplePeriod: *period, Seed: *seed}
	res, err := structslim.ProfileRun(p, phases, opt)
	if err != nil {
		return err
	}

	ct := server.ContentTypeGob
	if *ndjson {
		ct = server.ContentTypeNDJSON
	}
	base := "http://" + *addr
	if err := waitForServer(base, *wait); err != nil {
		return err
	}

	pushed, batches := 0, 0
	for _, tp := range res.ThreadProfiles {
		session := fmt.Sprintf("push-t%03d", tp.TID)
		n := len(tp.Samples)
		var seq uint64
		for start := 0; start < n || start == 0; start += *batchSize {
			end := start + *batchSize
			if end > n {
				end = n
			}
			b := stream.Batch{
				Session: session,
				Process: "push",
				TID:     int32(tp.TID),
				Period:  tp.Period,
				Seq:     seq,
				Samples: tp.Samples[start:end],
			}
			if start == 0 {
				b.Objects = tp.Objects
			}
			if end == n {
				b.AppCycles = tp.AppCycles
				b.OverheadCycles = tp.OverheadCycles
				b.MemOps = tp.MemOps
			}
			if err := postBatch(base, ct, b); err != nil {
				return fmt.Errorf("push: session %s batch %d: %w", session, seq, err)
			}
			pushed += end - start
			batches++
			seq++
			if end == n {
				break
			}
		}
	}
	fmt.Fprintf(out, "structslim push: %d samples in %d batches (%d sessions) to %s\n",
		pushed, batches, len(res.ThreadProfiles), base)

	if !*selftest {
		return nil
	}

	// Self-test: the server's online report and its snapshot-derived
	// report must both be byte-identical to the local batch analysis.
	local, err := core.Analyze(res.Profile, p, opt.Analysis)
	if err != nil {
		return err
	}
	var want bytes.Buffer
	local.RenderText(&want)
	for _, path := range []string{"/v1/report", "/v1/report?source=snapshot"} {
		body, err := httpGet(base + path)
		if err != nil {
			return fmt.Errorf("selftest: %s: %w", path, err)
		}
		if !bytes.Equal(body, want.Bytes()) {
			return fmt.Errorf("selftest: GET %s differs from local batch report (%d vs %d bytes)",
				path, len(body), want.Len())
		}
	}
	fmt.Fprintln(out, "structslim push: selftest ok — server reports byte-identical to local analysis")
	return nil
}

// postBatch sends one batch, honoring 429 + Retry-After backpressure.
func postBatch(base, ct string, b stream.Batch) error {
	var body bytes.Buffer
	if err := server.EncodeBatches(&body, ct, []stream.Batch{b}); err != nil {
		return err
	}
	payload := body.Bytes()
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(base+"/v1/samples", ct, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return nil
		case http.StatusTooManyRequests:
			if attempt > 100 {
				return fmt.Errorf("giving up after %d backpressure retries", attempt)
			}
			delay := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second
			}
			// The server queues whole requests; with one batch per request
			// a rejected POST took nothing, so resending is exact.
			time.Sleep(delay)
		default:
			return fmt.Errorf("server returned %s", resp.Status)
		}
	}
}

// waitForServer polls /metrics until the server answers.
func waitForServer(base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not reachable: %w", base, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, body)
	}
	return body, nil
}
