package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/profile"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/workloads"
	"repro/structslim"
)

// runPush profiles a workload locally and replays its per-thread sample
// streams to a `structslim serve` instance over HTTP — the zero-to-demo
// client of the streaming service, and the reference implementation of
// the wire protocol: one session per thread, object table on the first
// batch, cycle accounts on the last, 429 backpressure honored with
// capped exponential backoff.
//
// The client is pipelined: sessions push concurrently over persistent
// connections, and each request carries a window of -window consecutive
// batches (one request per batch was the PR-5 protocol; windowing keeps
// a session's batches ordered while cutting the round trips by the
// window size). Encode buffers are pooled across requests.
//
//	structslim push -workload art [-addr 127.0.0.1:7080] [-batch 256] [-window 8] [-selftest]
func runPush(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("push", flag.ContinueOnError)
	var (
		name       = fs.String("workload", "", "workload to profile and push")
		scale      = fs.String("scale", "test", "problem scale: test or bench")
		addr       = fs.String("addr", "127.0.0.1:7080", "server address")
		period     = fs.Uint64("period", 10_000, "address-sampling period in memory accesses")
		seed       = fs.Uint64("seed", 1, "sampling randomization seed")
		batchSize  = fs.Int("batch", 256, "samples per pushed batch")
		window     = fs.Int("window", 8, "batches sent per request (in-flight batch window)")
		codec      = fs.String("codec", "binary", "wire format: binary, gob, or ndjson")
		ndjson     = fs.Bool("ndjson", false, "push NDJSON instead of binary (alias for -codec ndjson)")
		maxRetries = fs.Int("max-retries", 10, "consecutive 429 retries per request before giving up")
		wait       = fs.Duration("wait", 10*time.Second, "how long to retry connecting to the server")
		selftest   = fs.Bool("selftest", false, "fetch the server's reports and diff them against the local batch analysis")
		doOpt      = fs.Bool("optimize", false, "after the push, ask the server to run the layout optimizer (POST /v1/optimize) and print the ranked table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("push: need -workload")
	}
	if *batchSize <= 0 {
		return fmt.Errorf("push: -batch must be positive")
	}
	if *window <= 0 {
		return fmt.Errorf("push: -window must be positive")
	}
	ct, err := contentTypeFor(*codec, *ndjson)
	if err != nil {
		return err
	}

	w, err := workloads.Get(*name)
	if err != nil {
		return err
	}
	sc := workloads.ScaleTest
	if *scale == "bench" {
		sc = workloads.ScaleBench
	}
	p, phases, err := w.Build(nil, sc)
	if err != nil {
		return err
	}
	opt := structslim.Options{SamplePeriod: *period, Seed: *seed}
	res, err := structslim.ProfileRun(p, phases, opt)
	if err != nil {
		return err
	}

	base := "http://" + *addr
	if err := waitForServer(base, *wait); err != nil {
		return err
	}

	// Persistent connections: one shared transport with enough idle slots
	// that every session keeps its connection alive between requests.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        len(res.ThreadProfiles) + 2,
		MaxIdleConnsPerHost: len(res.ThreadProfiles) + 2,
	}}
	pusher := &pusher{client: client, base: base, ct: ct, maxRetries: *maxRetries}

	// Sessions are independent ordered streams, so they push in parallel;
	// within a session, requests go out serially to preserve batch order.
	var wg sync.WaitGroup
	errs := make(chan error, len(res.ThreadProfiles))
	for _, tp := range res.ThreadProfiles {
		wg.Add(1)
		go func(tp *profile.ThreadProfile) {
			defer wg.Done()
			session := fmt.Sprintf("push-t%03d", tp.TID)
			if err := pusher.pushSession(session, "push", tp, *batchSize, *window); err != nil {
				errs <- fmt.Errorf("push: session %s: %w", session, err)
			}
		}(tp)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	fmt.Fprintf(out, "structslim push: %d samples in %d batches (%d sessions, %d/request) to %s\n",
		pusher.samples.Load(), pusher.batches.Load(), len(res.ThreadProfiles), *window, base)

	if *doOpt {
		// The server reruns the A/B selection loop over everything it has
		// ingested and returns the ranked groupings; rendering the wire
		// form here reproduces the server-side table exactly.
		body, err := httpPost(base + "/v1/optimize")
		if err != nil {
			return fmt.Errorf("optimize: %w", err)
		}
		var oj optimize.ResultJSON
		if err := json.Unmarshal(body, &oj); err != nil {
			return fmt.Errorf("optimize: decoding response: %w", err)
		}
		fmt.Fprintln(out)
		oj.RenderText(out)
	}

	if !*selftest {
		return nil
	}

	// Self-test: the server's online report and its snapshot-derived
	// report must both be byte-identical to the local batch analysis.
	local, err := core.Analyze(res.Profile, p, opt.Analysis)
	if err != nil {
		return err
	}
	var want bytes.Buffer
	local.RenderText(&want)
	for _, path := range []string{"/v1/report", "/v1/report?source=snapshot"} {
		body, err := httpGet(base + path)
		if err != nil {
			return fmt.Errorf("selftest: %s: %w", path, err)
		}
		if !bytes.Equal(body, want.Bytes()) {
			return fmt.Errorf("selftest: GET %s differs from local batch report (%d vs %d bytes)",
				path, len(body), want.Len())
		}
	}
	fmt.Fprintln(out, "structslim push: selftest ok — server reports byte-identical to local analysis")
	return nil
}

func contentTypeFor(codec string, ndjson bool) (string, error) {
	if ndjson {
		codec = "ndjson"
	}
	switch codec {
	case "binary":
		return server.ContentTypeBinary, nil
	case "gob":
		return server.ContentTypeGob, nil
	case "ndjson":
		return server.ContentTypeNDJSON, nil
	default:
		return "", fmt.Errorf("push: unknown codec %q (want binary, gob, or ndjson)", codec)
	}
}

// pusher holds the shared client state of one push run.
type pusher struct {
	client     *http.Client
	base       string
	ct         string
	maxRetries int

	bufs    sync.Pool // *bytes.Buffer, reused across requests
	samples atomic.Int64
	batches atomic.Int64
}

// pushSession replays one thread profile as an ordered batch stream:
// object table on the first batch, cycle accounts on the last, windows of
// up to `window` batches per request.
func (p *pusher) pushSession(session, process string, tp *profile.ThreadProfile, batchSize, window int) error {
	var pending []stream.Batch
	n := len(tp.Samples)
	var seq uint64
	for start := 0; start < n || start == 0; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		b := stream.Batch{
			Session: session,
			Process: process,
			TID:     int32(tp.TID),
			Period:  tp.Period,
			Seq:     seq,
			Samples: tp.Samples[start:end],
		}
		if start == 0 {
			b.Objects = tp.Objects
		}
		if end == n {
			b.AppCycles = tp.AppCycles
			b.OverheadCycles = tp.OverheadCycles
			b.MemOps = tp.MemOps
		}
		pending = append(pending, b)
		p.samples.Add(int64(end - start))
		seq++
		if len(pending) == window {
			if err := p.postWindow(pending); err != nil {
				return err
			}
			pending = pending[:0]
		}
		if end == n {
			break
		}
	}
	if len(pending) > 0 {
		return p.postWindow(pending)
	}
	return nil
}

// postWindow sends one window of batches, honoring 429 + Retry-After
// backpressure: the server reports how many batches of the request it
// accepted (X-Accepted-Batches), the client drops that prefix, sleeps
// max(Retry-After, capped exponential backoff), and resends the rest.
// The retry counter resets whenever the server makes progress; after
// maxRetries consecutive no-progress rejections the push fails.
func (p *pusher) postWindow(batches []stream.Batch) error {
	buf, _ := p.bufs.Get().(*bytes.Buffer)
	if buf == nil {
		buf = new(bytes.Buffer)
	}
	defer p.bufs.Put(buf)

	const (
		baseBackoff = 100 * time.Millisecond
		maxBackoff  = 10 * time.Second
	)
	retries := 0
	backoff := baseBackoff
	for {
		buf.Reset()
		if err := server.EncodeBatches(buf, p.ct, batches); err != nil {
			return err
		}
		resp, err := p.client.Post(p.base+"/v1/samples", p.ct, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			p.batches.Add(int64(len(batches)))
			return nil
		case http.StatusTooManyRequests:
			// The server enqueues a request's batches in order, so the
			// accepted count is a resumable prefix.
			accepted := 0
			if v, err := strconv.Atoi(resp.Header.Get("X-Accepted-Batches")); err == nil && v > 0 {
				if v > len(batches) {
					v = len(batches)
				}
				accepted = v
			}
			p.batches.Add(int64(accepted))
			batches = batches[accepted:]
			if accepted > 0 {
				retries, backoff = 0, baseBackoff
			} else {
				retries++
				if retries > p.maxRetries {
					return fmt.Errorf("giving up after %d consecutive backpressure rejections", retries-1)
				}
			}
			delay := backoff
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				if d := time.Duration(ra) * time.Second; d > delay {
					delay = d
				}
			}
			time.Sleep(delay)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		default:
			return fmt.Errorf("server returned %s", resp.Status)
		}
	}
}

// waitForServer polls /metrics until the server answers.
func waitForServer(base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not reachable: %w", base, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func httpPost(url string) ([]byte, error) {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, body)
	}
	return body, nil
}
