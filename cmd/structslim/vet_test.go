package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestVetQuickstart is the acceptance check for the vet subcommand: the
// quickstart fixture's deliberately padded record must produce layout-lint
// findings, and the static predictions must survive the cross-check.
func TestVetQuickstart(t *testing.T) {
	var out bytes.Buffer
	if err := runVet([]string{"-workload", "quickstart", "-period", "500", "-seed", "7"}, &out); err != nil {
		t.Fatalf("vet failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"padding-hole",
		"never-co-accessed",
		"RESULT: ok",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("vet output missing %q:\n%s", want, s)
		}
	}
}

func TestVetStaticOnly(t *testing.T) {
	var out bytes.Buffer
	if err := runVet([]string{"-workload", "quickstart", "-static-only"}, &out); err != nil {
		t.Fatalf("vet -static-only failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if strings.Contains(s, "Cross-check") {
		t.Error("-static-only still ran the profiler")
	}
	if !strings.Contains(s, "Layout lint") || !strings.Contains(s, "padding-hole") {
		t.Errorf("static-only vet missing lint findings:\n%s", s)
	}
}

func TestVetNeedsTarget(t *testing.T) {
	var out bytes.Buffer
	if err := runVet(nil, &out); err == nil {
		t.Error("vet without -workload/-all should fail")
	}
}
