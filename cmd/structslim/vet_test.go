package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestVetQuickstart is the acceptance check for the vet subcommand: the
// quickstart fixture's deliberately padded record must produce layout-lint
// findings, and the static predictions must survive the cross-check.
func TestVetQuickstart(t *testing.T) {
	var out bytes.Buffer
	if err := runVet([]string{"-workload", "quickstart", "-period", "500", "-seed", "7"}, &out); err != nil {
		t.Fatalf("vet failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"padding-hole",
		"never-co-accessed",
		"RESULT: ok",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("vet output missing %q:\n%s", want, s)
		}
	}
}

func TestVetStaticOnly(t *testing.T) {
	var out bytes.Buffer
	if err := runVet([]string{"-workload", "quickstart", "-static-only"}, &out); err != nil {
		t.Fatalf("vet -static-only failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if strings.Contains(s, "Cross-check") {
		t.Error("-static-only still ran the profiler")
	}
	if !strings.Contains(s, "Layout lint") || !strings.Contains(s, "padding-hole") {
		t.Errorf("static-only vet missing lint findings:\n%s", s)
	}
}

func TestVetNeedsTarget(t *testing.T) {
	var out bytes.Buffer
	if err := runVet(nil, &out); err == nil {
		t.Error("vet without -workload/-all should fail")
	}
}

// TestVetSharing is the command-level acceptance check for the sharing
// analyzer: on the planted fixture, vet -sharing must report the
// false-sharing prediction with keep-apart advice, and the coherence
// cross-check must confirm it.
func TestVetSharing(t *testing.T) {
	var out bytes.Buffer
	if err := runVet([]string{"-workload", "falseshare", "-sharing"}, &out); err != nil {
		t.Fatalf("vet -sharing failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"Sharing analysis for falseshare",
		"FALSE-SHARING stats._Stat",
		"keep-apart: hits@0 -- ticks@8",
		"pad struct _Stat",
		"CONFIRMED",
		"RESULT: ok — every exact sharing claim is consistent with observed coherence traffic",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("vet -sharing output missing %q:\n%s", want, s)
		}
	}
}

func TestVetSharingStaticOnly(t *testing.T) {
	var out bytes.Buffer
	if err := runVet([]string{"-workload", "falseshare", "-sharing", "-static-only"}, &out); err != nil {
		t.Fatalf("vet -sharing -static-only failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "FALSE-SHARING stats._Stat") {
		t.Errorf("static-only sharing vet lost the prediction:\n%s", s)
	}
	if strings.Contains(s, "coherence traffic") {
		t.Errorf("-static-only still ran the coherence verifier:\n%s", s)
	}
}

// TestVetSharingAll runs the sharing analyzer over every registered
// workload statically: sequential workloads must degrade to "no thread
// roles" rather than fabricate claims, and nothing may error.
func TestVetSharingAll(t *testing.T) {
	var out bytes.Buffer
	if err := runVet([]string{"-all", "-sharing", "-static-only"}, &out); err != nil {
		t.Fatalf("vet -all -sharing -static-only failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "no thread roles") {
		t.Errorf("no sequential workload degraded to \"no thread roles\":\n%s", s)
	}
	if !strings.Contains(s, "FALSE-SHARING") {
		t.Errorf("-all lost the fixture's finding:\n%s", s)
	}
}

// TestVetSharingClomp: a paper workload end to end — clomp's per-thread
// partial sums are predicted to false-share and the prediction must not
// be contradicted.
func TestVetSharingClomp(t *testing.T) {
	var out bytes.Buffer
	if err := runVet([]string{"-workload", "clomp", "-sharing"}, &out); err != nil {
		t.Fatalf("vet clomp -sharing failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"FALSE-SHARING part_sums",
		"RESULT: ok — every exact sharing claim is consistent with observed coherence traffic",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("vet clomp -sharing output missing %q:\n%s", want, s)
		}
	}
}
