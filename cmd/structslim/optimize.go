package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/workloads"
)

// runOptimize closes the loop: profile the workload at its original
// layout, enumerate legal candidate layouts from the analysis (advice
// seed, hot/cold bisection, affinity ladder, reorder, padding), measure
// every candidate on the experiment engine, and print the ranked table
// plus the exact-machine-confirmed selection.
//
//	structslim optimize -workload art [-scale bench] [-parallel 8] [-exact] [-json -]
func runOptimize(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	var (
		name     = fs.String("workload", "", "workload to optimize (must declare a record)")
		scale    = fs.String("scale", "test", "problem scale: test or bench")
		period   = fs.Uint64("period", 10_000, "address-sampling period for the profiling run")
		seed     = fs.Uint64("seed", 1, "sampling randomization seed")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent candidate measurements (output is byte-identical at any value)")
		exact    = fs.Bool("exact", false, "measure every candidate on the exact machine (default: statistical engine + exact confirmation of the leaders)")
		statWin  = fs.Int("stat-window", 0, "statistical warmup window W in accesses (0 = default)")
		topK     = fs.Int("topk", 3, "data structures to analyze in depth")
		thresh   = fs.Float64("affinity", 0.5, "affinity clustering threshold for the advice seed")
		maxCand  = fs.Int("max-candidates", 0, "cap on enumerated candidates (0 = default)")
		jsonPath = fs.String("json", "", "also write the ranked result as JSON to this file (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("optimize: need -workload")
	}
	w, err := workloads.Get(*name)
	if err != nil {
		return err
	}
	sc := workloads.ScaleTest
	if *scale == "bench" {
		sc = workloads.ScaleBench
	}
	opt := optimize.Options{
		Scale:        sc,
		SamplePeriod: *period,
		Seed:         *seed,
		Parallel:     *parallel,
		Exact:        *exact,
		StatWindow:   *statWin,
		Analysis:     core.Options{TopK: *topK, AffinityThreshold: *thresh},
		Enum:         optimize.EnumOptions{MaxCandidates: *maxCand},
	}
	res, err := optimize.Run(w, opt)
	if err != nil {
		return err
	}
	res.RenderText(out)

	if *jsonPath != "" {
		jout := out
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			jout = f
		}
		enc := json.NewEncoder(jout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.JSON()); err != nil {
			return err
		}
	}
	return nil
}
