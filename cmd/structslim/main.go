// Command structslim profiles one workload on the simulated machine and
// prints StructSlim's analysis: the hot-data ranking, per-field and
// per-loop latency tables, field affinities, and structure-splitting
// advice. With -optimize it also applies the advice and reports the
// resulting speedup and cache-miss changes.
//
// Usage:
//
//	structslim -workload art [-scale bench] [-period 10000] [-dot out.dot]
//	structslim -list
//
// The vet subcommand runs the static stride & layout analyzer instead:
// it predicts each loop's access streams from the IR alone, lints the
// registered struct layouts, and cross-checks the predictions against
// the dynamic profiler:
//
//	structslim vet -workload quickstart
//	structslim vet -all [-static-only]
//
// The serve and push subcommands run the streaming profile service: serve
// hosts the online analyzer behind an HTTP ingest API, push profiles a
// workload locally and replays its sample stream to a server:
//
//	structslim serve -workload art -addr 127.0.0.1:7080
//	structslim push -workload art -addr 127.0.0.1:7080 -selftest
//
// The optimize subcommand closes the loop: it enumerates legal candidate
// layouts from the analysis, measures every variant on the experiment
// engine, and prints the ranked table plus the exact-confirmed winner:
//
//	structslim optimize -workload art [-exact] [-parallel 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/tables"
	"repro/internal/workloads"
	"repro/structslim"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "vet":
			fail(runVet(os.Args[2:], os.Stdout))
			return
		case "serve":
			fail(runServe(os.Args[2:], os.Stdout))
			return
		case "push":
			fail(runPush(os.Args[2:], os.Stdout))
			return
		case "optimize":
			fail(runOptimize(os.Args[2:], os.Stdout))
			return
		}
	}
	var (
		name     = flag.String("workload", "", "workload to profile (see -list)")
		list     = flag.Bool("list", false, "list available workloads")
		scale    = flag.String("scale", "test", "problem scale: test or bench")
		period   = flag.Uint64("period", 10_000, "address-sampling period in memory accesses")
		ibs      = flag.Bool("ibs", false, "sample with AMD-IBS semantics (period counts instructions)")
		seed     = flag.Uint64("seed", 1, "sampling randomization seed")
		topK     = flag.Int("topk", 3, "data structures to analyze in depth")
		thresh   = flag.Float64("affinity", 0.5, "affinity clustering threshold")
		dotPath  = flag.String("dot", "", "write the hot structure's affinity graph (Figure 6 style) to this file")
		jsonPath = flag.String("json", "", "write the analysis as JSON to this file (- for stdout)")
		optimize = flag.Bool("optimize", false, "apply the advice and measure the split program")
		doRegr   = flag.Bool("regroup", false, "also run the array-regrouping analysis (future-work extension)")
		profDir  = flag.String("profiles", "", "also write per-thread profiles (gob) into this directory")
		analyze  = flag.String("analyze", "", "skip profiling: load per-thread profiles from this directory and analyze them offline")
		dump     = flag.Bool("dump", false, "print the workload's disassembly and recovered loop structure, then exit")
		cfgDot   = flag.String("cfg-dot", "", "write the named function's CFG as dot to this file (with -dump)")
		cfgFn    = flag.String("cfg-fn", "main", "function for -cfg-dot")
		stat     = flag.Bool("statistical", false, "statistical mode: fully simulate only sampled windows, fast-forward between them (prints an error report)")
		statWin  = flag.Int("stat-window", 0, "per-sample warmup window W in accesses for -statistical (0 = default)")
		par      = flag.Bool("parallel", false, "run eligible multithreaded phases on per-core interpreter goroutines (results identical to serial)")
		workers  = flag.Int("workers", 0, "goroutine bound for -parallel (0 = one per simulated core)")
	)
	flag.Parse()

	if *list {
		inPaper := make(map[string]bool)
		fmt.Println("Paper benchmarks (Table 2):")
		for _, w := range workloads.Paper() {
			inPaper[w.Name()] = true
			fmt.Printf("  %-12s %-45s %s\n", w.Name(), w.Suite(), w.Description())
		}
		fmt.Println("Suite stand-ins (Figures 4/5):")
		for _, w := range workloads.All() {
			if w.Record() == nil {
				fmt.Printf("  %-12s %-45s %s\n", w.Name(), w.Suite(), w.Description())
			}
		}
		fmt.Println("Other (case studies, fixtures):")
		for _, w := range workloads.All() {
			if w.Record() != nil && !inPaper[w.Name()] {
				fmt.Printf("  %-12s %-45s %s\n", w.Name(), w.Suite(), w.Description())
			}
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "need -workload (or -list)")
		os.Exit(2)
	}

	w, err := workloads.Get(*name)
	fail(err)
	sc := workloads.ScaleTest
	if *scale == "bench" {
		sc = workloads.ScaleBench
	}
	opt := structslim.Options{
		SamplePeriod: *period,
		IBS:          *ibs,
		Seed:         *seed,
		Analysis:     core.Options{TopK: *topK, AffinityThreshold: *thresh},
	}
	opt.Analysis.Statistical = *stat
	opt.Analysis.StatWindow = *statWin
	opt.VM.Parallel = *par
	opt.VM.Workers = *workers

	p, phases, err := w.Build(nil, sc)
	fail(err)

	if *dump {
		fmt.Print(p.Disasm())
		loops, err := cfg.AnalyzeLoops(p)
		fail(err)
		cfg.WriteLoopReport(os.Stdout, p, loops)
		if *cfgDot != "" {
			fn := p.FuncByName(*cfgFn)
			if fn == nil {
				fail(fmt.Errorf("no function %q", *cfgFn))
			}
			f, err := os.Create(*cfgDot)
			fail(err)
			cfg.WriteDot(f, fn, loops.Forests[fn.ID])
			fail(f.Close())
			fmt.Printf("Wrote CFG of %s to %s\n", *cfgFn, *cfgDot)
		}
		return
	}

	var res *structslim.RunResult
	var rep *core.Report
	if *analyze != "" {
		// Offline path: the profiles were collected earlier (one gob
		// file per thread); merge them with the reduction tree and
		// analyze against the rebuilt binary.
		tps, err := profile.ReadDir(*analyze)
		fail(err)
		merged, err := profile.ReduceThreadProfiles(tps, 0)
		fail(err)
		res = &structslim.RunResult{Profile: merged, ThreadProfiles: tps}
		rep, err = core.Analyze(merged, p, opt.Analysis)
		fail(err)
		fmt.Printf("Analyzed %d thread profiles from %s (offline)\n\n", len(tps), *analyze)
	} else {
		res, rep, err = structslim.ProfileAndAnalyze(p, phases, opt)
		fail(err)
	}

	rep.RenderText(os.Stdout)
	fmt.Printf("Run: %d instructions, %d memory accesses, %d app cycles, overhead %.2f%%\n",
		res.Stats.Instrs, res.Stats.MemOps, res.Stats.AppWallCycles, res.Stats.OverheadPct())
	if res.Stat != nil {
		fmt.Println()
		res.Stat.RenderText(os.Stdout)
	}
	if *par {
		if res.Parallel.Engaged {
			fmt.Printf("parallel engine: engaged, %d quantum rounds\n", res.Parallel.Rounds)
		} else {
			fmt.Printf("parallel engine: not engaged (fallbacks: %v)\n", res.Parallel.Fallbacks)
		}
	}

	if *profDir != "" {
		fail(profile.WriteDir(*profDir, res.ThreadProfiles))
		fmt.Printf("Wrote %d thread profiles to %s\n", len(res.ThreadProfiles), *profDir)
	}

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			fail(err)
			defer f.Close()
			out = f
		}
		fail(rep.WriteJSON(out))
	}

	if *dotPath != "" && len(rep.Structures) > 0 {
		f, err := os.Create(*dotPath)
		fail(err)
		rep.Structures[0].WriteDot(f)
		fail(f.Close())
		fmt.Printf("Wrote affinity graph to %s\n", *dotPath)
	}

	if *doRegr {
		la, err := structslim.AttachLegality(rep, p)
		fail(err)
		rr, err := structslim.AnalyzeRegrouping(res, p, opt, la)
		fail(err)
		fmt.Println()
		rr.RenderText(os.Stdout)
	}

	if *optimize {
		if w.Record() == nil {
			fail(fmt.Errorf("workload %s has no record to optimize", w.Name()))
		}
		r, err := tables.RunBenchmark(w, tables.Options{Scale: sc, SamplePeriod: *period, Seed: *seed})
		fail(err)
		fmt.Printf("\nOptimization (advice applied automatically):\n")
		fmt.Printf("  layout: %v\n", r.SplitLayout)
		fmt.Printf("  cycles: %d → %d  (speedup %.2fx)\n", r.OrigCycles, r.SplitCycles, r.Speedup)
		for _, lvl := range []string{"L1", "L2", "L3"} {
			fmt.Printf("  %s miss reduction: %.1f%%\n", lvl, r.MissReduction(lvl))
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "structslim:", err)
		os.Exit(1)
	}
}
