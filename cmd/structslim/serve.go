package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/workloads"
)

// runServe starts the streaming profile service: an HTTP server that
// ingests sample batches (from `structslim push` or any client speaking
// the gob/NDJSON wire format) and serves online analysis.
//
//	structslim serve -workload art [-addr :7080] [-queue 64]
//
// The workload names the binary the analysis reports against: clients
// push samples of that program. On SIGINT/SIGTERM the server stops
// accepting, drains its queues, and prints the final report.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		name       = fs.String("workload", "", "workload whose binary the analysis reports against (empty: snapshot/live only)")
		scale      = fs.String("scale", "test", "problem scale the pushed program was built at: test or bench")
		addr       = fs.String("addr", "127.0.0.1:7080", "listen address")
		queue      = fs.Int("queue", 64, "per-session ingest queue depth (batches)")
		shards     = fs.Int("shards", 8, "session-partitioned analyzer shards (1 = unsharded; results are identical at any count)")
		maxStreams = fs.Int("max-streams", 0, "bound live streams per session, LRU-evicting cold ones (0 = unbounded)")
		maxIdents  = fs.Int("max-identities", 0, "bound tracked identities per session (0 = unbounded)")
		dropSamp   = fs.Bool("drop-samples", false, "do not retain raw samples (disables /v1/snapshot; reports stay exact)")
		topK       = fs.Int("topk", 3, "data structures to analyze in depth")
		thresh     = fs.Float64("affinity", 0.5, "affinity clustering threshold")
		optPar     = fs.Int("optimize-parallel", runtime.GOMAXPROCS(0),
			"worker pool for POST /v1/optimize candidate measurements (results identical at any value)")
		finalRep = fs.Bool("final-report", true, "print the report after draining on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc := workloads.ScaleTest
	if *scale == "bench" {
		sc = workloads.ScaleBench
	}
	conf := stream.Config{
		MaxStreams:    *maxStreams,
		MaxIdentities: *maxIdents,
		DropSamples:   *dropSamp,
		Shards:        *shards,
		Analysis:      core.Options{TopK: *topK, AffinityThreshold: *thresh},
	}
	w, an, err := newAnalyzer(*name, sc, conf)
	if err != nil {
		return err
	}
	sconf := server.Config{QueueDepth: *queue}
	if w != nil && w.Record() != nil {
		// The workload declares a record, so the server can also run the
		// layout optimizer against the pushed profile.
		sconf.Optimize = w
		sconf.OptimizeScale = sc
		sconf.OptimizeParallel = *optPar
	}
	srv := server.New(an, sconf)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(out, "structslim serve: listening on http://%s (workload %q)\n", ln.Addr(), *name)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(out, "structslim serve: %v, draining\n", sig)
	case err := <-errc:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	srv.Drain()
	if *finalRep && *name != "" {
		rep, err := an.Report()
		if err != nil {
			return fmt.Errorf("final report: %w", err)
		}
		fmt.Fprintln(out)
		rep.RenderText(out)
	}
	return nil
}

// newAnalyzer builds the streaming analyzer, rebuilding the named
// workload's binary so reports resolve loops and field names. An empty
// name runs without the binary (ingest, live view, and snapshot only).
func newAnalyzer(name string, sc workloads.Scale, conf stream.Config) (workloads.Workload, *stream.Analyzer, error) {
	if name == "" {
		an, err := stream.New(nil, conf)
		return nil, an, err
	}
	w, err := workloads.Get(name)
	if err != nil {
		return nil, nil, err
	}
	p, _, err := w.Build(nil, sc)
	if err != nil {
		return nil, nil, err
	}
	an, err := stream.New(p, conf)
	return w, an, err
}
