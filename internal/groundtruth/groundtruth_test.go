package groundtruth_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/prog"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

// runART executes ART once with the given observer attached and returns
// the run stats.
func runWithRecorder(t *testing.T, kind groundtruth.Kind) (*groundtruth.Exact, vm.Stats, *prog.Program) {
	t.Helper()
	w, err := workloads.Get("art")
	if err != nil {
		t.Fatal(err)
	}
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewMachine(p, cache.DefaultConfig(), 1, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := groundtruth.NewRecorder(groundtruth.Config{Kind: kind}, m.Space, p)
	if err != nil {
		t.Fatal(err)
	}
	m.Observer = rec
	var total vm.Stats
	for _, ph := range phases {
		st, err := m.Run(ph)
		if err != nil {
			t.Fatal(err)
		}
		total.WallCycles += st.WallCycles
		total.AppWallCycles += st.AppWallCycles
		total.MemOps += st.MemOps
	}
	return rec.Report(), total, p
}

func TestExactAnalysisMatchesSampledShape(t *testing.T) {
	exact, _, p := runWithRecorder(t, groundtruth.KindCounting)

	// Find f1_neuron's identity: the hottest structure.
	var hot uint64
	var best float64
	for ident, share := range exact.StructShare {
		if share > best {
			best, hot = share, ident
		}
	}
	if best < 0.9 {
		t.Fatalf("hottest structure share = %v, want f1_neuron near 1", best)
	}
	shares := exact.FieldShare[hot]
	if len(shares) != 8 {
		t.Fatalf("fields = %d, want 8", len(shares))
	}
	// Exact P share (offset 40) dominates.
	if shares[40] < 0.45 {
		t.Errorf("exact P share = %v, want dominant", shares[40])
	}

	// Now the headline: StructSlim's sampled shares track the exact ones
	// closely on the hot fields.
	w, _ := workloads.Get("art")
	ap, aphases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := structslim.ProfileAndAnalyze(ap, aphases, structslim.Options{
		SamplePeriod: 2000, Seed: 2, Analysis: core.Options{TopK: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sr := structslim.FindStruct(rep, "f1_neuron")
	if sr == nil {
		t.Fatal("sampled analysis lost f1_neuron")
	}
	for _, f := range sr.Fields {
		got := f.Share
		want := shares[f.Offset]
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		// Sparse sampling: allow a few points of absolute error.
		if diff > 0.08 {
			t.Errorf("field %s: sampled share %.3f vs exact %.3f", f.Name, got, want)
		}
	}

	// Exact affinity agrees with the clustering decision: A(I,U) high,
	// A(P,U) low (offsets: I=0, U=32, P=40).
	am := exact.Affinity[hot]
	if am == nil {
		t.Fatal("no exact affinity")
	}
	if a := am.Affinity(0, 32); a < 0.6 {
		t.Errorf("exact A(I,U) = %v, want high", a)
	}
	if a := am.Affinity(40, 32); a > 0.2 {
		t.Errorf("exact A(P,U) = %v, want low", a)
	}
	_ = p
}

func TestInstrumentationOverheadContrast(t *testing.T) {
	// The paper's motivating numbers: counting instrumentation ≈ 4×,
	// reuse-distance collection up to 153×, sampling ~7%.
	_, countStats, _ := runWithRecorder(t, groundtruth.KindCounting)
	countFactor := groundtruth.OverheadFactor(countStats)
	if countFactor < 2 || countFactor > 12 {
		t.Errorf("counting slowdown = %.1f×, want the ASLOP-ish few-× band", countFactor)
	}

	_, reuseStats, _ := runWithRecorder(t, groundtruth.KindReuse)
	reuseFactor := groundtruth.OverheadFactor(reuseStats)
	if reuseFactor < 30 {
		t.Errorf("reuse-distance slowdown = %.1f×, want dramatic (paper: up to 153×)", reuseFactor)
	}

	// Sampling, for contrast.
	w, _ := workloads.Get("art")
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 10_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sampling := res.Stats.OverheadPct()
	if sampling > 10 {
		t.Errorf("sampling overhead = %.2f%%, want single digits", sampling)
	}
	t.Logf("overheads: sampling %.2f%%, counting %.1f×, reuse-distance %.1f×",
		sampling, countFactor, reuseFactor)
}

func TestReuseRecorderPopulatesHistogram(t *testing.T) {
	exact, _, _ := runWithRecorder(t, groundtruth.KindReuse)
	if exact.Kind != groundtruth.KindReuse {
		t.Error("kind lost")
	}
	// ART's repeated scans produce a fat tail of large reuse distances.
	// The recorder's analyzer is exposed on the Recorder, not Exact;
	// assert via the kind-specific cost instead, and re-run to reach it.
	if exact.PerAccessCost < 1000 {
		t.Errorf("reuse cost = %d, want the expensive default", exact.PerAccessCost)
	}
}

func TestKindStrings(t *testing.T) {
	if groundtruth.KindCounting.String() != "counting" || groundtruth.KindReuse.String() != "reuse-distance" {
		t.Error("kind strings wrong")
	}
}
