// Package groundtruth implements the instrumentation-based profiling
// baselines that motivate the paper. Where StructSlim samples one access
// in ten thousand, these observers see *every* access — like Pin- or
// compiler-instrumented profilers — which buys exact answers at the
// overheads the paper quotes: field-access frequency counting à la
// Chilimbi et al. [8] and ASLOP [35] at ~4×, and whole-trace reuse-
// distance collection à la Zhong et al. [38] at up to 153×.
//
// The package serves two purposes in the reproduction:
//
//   - Baseline overheads: each instrumentation kind charges a per-access
//     cost, so the harness can regenerate the paper's sampling-vs-
//     instrumentation overhead contrast as a measured experiment.
//   - Ground truth: the exact per-field latency shares and affinities let
//     the harness *quantify* how accurate StructSlim's sparse-sample
//     analysis is, instead of taking Equation 4's word for it.
package groundtruth

import (
	"fmt"

	"repro/internal/affinity"
	"repro/internal/cfg"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/reuse"
	"repro/internal/vm"
)

// Kind selects the modeled instrumentation flavour.
type Kind uint8

// Instrumentation kinds with their default per-access costs (cycles).
// The costs are calibrated to land the slowdowns the paper quotes for
// each family on memory-bound code.
const (
	// KindCounting models field-access frequency counting (Chilimbi et
	// al.; ASLOP's cheaper sibling): a table increment per access.
	KindCounting Kind = iota
	// KindReuse models full reuse-distance collection (Zhong et al.):
	// an ordered-structure update per access — the paper's 153× example.
	KindReuse
)

func (k Kind) String() string {
	if k == KindReuse {
		return "reuse-distance"
	}
	return "counting"
}

func (k Kind) defaultCost() uint64 {
	if k == KindReuse {
		return 1800
	}
	return 40
}

// Config tunes the recorder.
type Config struct {
	Kind Kind
	// PerAccessCost overrides the kind's default instrumentation cost.
	PerAccessCost uint64
	// LineShift is the cache-line granularity of reuse analysis
	// (default 6 → 64-byte lines).
	LineShift uint
}

// Recorder observes every memory access, performing exact data-centric
// attribution; it implements vm.AccessObserver.
type Recorder struct {
	cfg     Config
	space   *mem.Space
	program *prog.Program
	loops   *cfg.ProgramLoops

	totalLatency uint64
	accesses     uint64

	latency map[uint64]uint64            // identity → latency
	size    map[uint64]uint64            // identity → debug size (0 unknown)
	name    map[uint64]string            // identity → display name
	fields  map[uint64]map[uint64]uint64 // identity → offset → latency
	ab      map[uint64]*affinity.Builder // identity → loop/offset accumulator

	// Reuse is populated for KindReuse: whole-trace line reuse
	// distances.
	Reuse *reuse.Analyzer
}

// NewRecorder builds a recorder for a loaded machine's space and its
// program.
func NewRecorder(cfg Config, space *mem.Space, program *prog.Program) (*Recorder, error) {
	if cfg.PerAccessCost == 0 {
		cfg.PerAccessCost = cfg.Kind.defaultCost()
	}
	if cfg.LineShift == 0 {
		cfg.LineShift = 6
	}
	loops, err := cfgAnalyze(program)
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		cfg:     cfg,
		space:   space,
		program: program,
		loops:   loops,
		latency: make(map[uint64]uint64),
		size:    make(map[uint64]uint64),
		name:    make(map[uint64]string),
		fields:  make(map[uint64]map[uint64]uint64),
		ab:      make(map[uint64]*affinity.Builder),
	}
	if cfg.Kind == KindReuse {
		r.Reuse = reuse.NewAnalyzer(1 << 16)
	}
	return r, nil
}

func cfgAnalyze(p *prog.Program) (*cfg.ProgramLoops, error) {
	if p == nil {
		return nil, fmt.Errorf("nil program")
	}
	return cfg.AnalyzeLoops(p)
}

// OnAccess performs the exact attribution and charges the
// instrumentation cost.
func (r *Recorder) OnAccess(ev *vm.MemEvent) uint64 {
	r.accesses++
	r.totalLatency += uint64(ev.Latency)

	if r.Reuse != nil {
		r.Reuse.Observe(ev.EA >> r.cfg.LineShift)
	}

	if obj := r.space.FindObject(ev.EA); obj != nil {
		ident := obj.Identity
		r.latency[ident] += uint64(ev.Latency)
		if _, ok := r.size[ident]; !ok {
			var sz uint64
			if st := typeOf(r.program, obj); st != nil {
				sz = uint64(st.Size)
			}
			r.size[ident] = sz
			r.name[ident] = obj.Name
		}
		if sz := r.size[ident]; sz > 0 {
			off := (ev.EA - obj.Base) % sz
			fm := r.fields[ident]
			if fm == nil {
				fm = make(map[uint64]uint64)
				r.fields[ident] = fm
			}
			fm[off] += uint64(ev.Latency)

			ab := r.ab[ident]
			if ab == nil {
				ab = affinity.NewBuilder()
				r.ab[ident] = ab
			}
			affKey := ev.IP | 1<<63
			if li := r.loops.LoopOfIP(ev.IP); li != nil {
				affKey = li.Key
			}
			ab.Add(affKey, off, uint64(ev.Latency))
		}
	}
	return r.cfg.PerAccessCost
}

func typeOf(p *prog.Program, obj *mem.Object) *prog.StructType {
	if obj.TypeID >= 0 && obj.TypeID < len(p.Types) {
		return p.Types[obj.TypeID]
	}
	return nil
}

// Exact is the recorder's final, exact analysis.
type Exact struct {
	Kind          Kind
	Accesses      uint64
	TotalLatency  uint64
	PerAccessCost uint64

	// FieldShare[identity][offset] is the exact share (0..1) of the
	// identity's latency attributable to the field at offset.
	FieldShare map[uint64]map[uint64]float64
	// StructShare[identity] is the exact l_d.
	StructShare map[uint64]float64
	// Affinity[identity] is the exact Equation 7 matrix.
	Affinity map[uint64]*affinity.Matrix
	// Name[identity] is a display name.
	Name map[uint64]string
}

// Report finalizes the exact analysis.
func (r *Recorder) Report() *Exact {
	ex := &Exact{
		Kind:          r.cfg.Kind,
		Accesses:      r.accesses,
		TotalLatency:  r.totalLatency,
		PerAccessCost: r.cfg.PerAccessCost,
		FieldShare:    make(map[uint64]map[uint64]float64),
		StructShare:   make(map[uint64]float64),
		Affinity:      make(map[uint64]*affinity.Matrix),
		Name:          r.name,
	}
	for ident, lat := range r.latency {
		if r.totalLatency > 0 {
			ex.StructShare[ident] = float64(lat) / float64(r.totalLatency)
		}
		if fm := r.fields[ident]; fm != nil {
			shares := make(map[uint64]float64, len(fm))
			for off, l := range fm {
				shares[off] = float64(l) / float64(lat)
			}
			ex.FieldShare[ident] = shares
		}
		if ab := r.ab[ident]; ab != nil {
			ex.Affinity[ident] = ab.Compute()
		}
	}
	return ex
}

// OverheadFactor returns the modeled slowdown of the instrumented run:
// (app + instrumentation cycles) / app cycles, given the run's stats.
func OverheadFactor(st vm.Stats) float64 {
	if st.AppWallCycles == 0 {
		return 1
	}
	return float64(st.WallCycles) / float64(st.AppWallCycles)
}
