package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/optimize"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/workloads"
	"repro/structslim"
)

// optimizeServer spins up an ingest server with the optimizer enabled
// for the named workload.
func optimizeServer(t *testing.T, name string) (workloads.Workload, *server.Server, *httptest.Server) {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	an, err := stream.New(p, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(an, server.Config{
		Optimize:         w,
		OptimizeScale:    workloads.ScaleTest,
		OptimizeParallel: 4,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Drain)
	return w, srv, ts
}

func post(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestOptimizeEndpoint pushes a profile and asks the server for the
// ranked layout selection; the response must decode and carry a
// selection that the exact confirmation says is no slower than the
// baseline.
func TestOptimizeEndpoint(t *testing.T) {
	w, _, ts := optimizeServer(t, "mislaid")
	p, phases, err := w.Build(nil, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := structslim.ProfileRun(p, phases, testOpt)
	if err != nil {
		t.Fatal(err)
	}
	resp := postBatches(t, ts, server.ContentTypeGob, batchesOf(res, 64))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("push: %s", resp.Status)
	}

	code, body := post(t, ts, "/v1/optimize")
	if code != http.StatusOK {
		t.Fatalf("POST /v1/optimize: %d: %s", code, body)
	}
	var oj optimize.ResultJSON
	if err := json.Unmarshal(body, &oj); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	if oj.Workload != "mislaid" || len(oj.Candidates) == 0 {
		t.Fatalf("unexpected result: workload=%q candidates=%d", oj.Workload, len(oj.Candidates))
	}
	if oj.ExactSelectedCycles == 0 || oj.ExactSelectedCycles > oj.ExactBaselineCycles {
		t.Errorf("selected %d cycles vs baseline %d: selection must not lose",
			oj.ExactSelectedCycles, oj.ExactBaselineCycles)
	}
	if oj.Selected.Layout == "" {
		t.Error("no selected layout in response")
	}

	// ?mode=exact must agree on the decision.
	code, body = post(t, ts, "/v1/optimize?mode=exact")
	if code != http.StatusOK {
		t.Fatalf("POST /v1/optimize?mode=exact: %d: %s", code, body)
	}
	var ej optimize.ResultJSON
	if err := json.Unmarshal(body, &ej); err != nil {
		t.Fatal(err)
	}
	if ej.Mode != "exact" {
		t.Errorf("mode=exact reported mode %q", ej.Mode)
	}
	if ej.Selected.Layout != oj.Selected.Layout || ej.ExactSelectedCycles != oj.ExactSelectedCycles {
		t.Errorf("modes disagree: statistical selected %s (%d), exact selected %s (%d)",
			oj.Selected.Layout, oj.ExactSelectedCycles, ej.Selected.Layout, ej.ExactSelectedCycles)
	}
}

// TestOptimizeEndpointNoSamples: a configured server with nothing
// ingested must answer 409 with a clear message.
func TestOptimizeEndpointNoSamples(t *testing.T) {
	_, _, ts := optimizeServer(t, "mislaid")
	code, body := post(t, ts, "/v1/optimize")
	if code != http.StatusConflict {
		t.Fatalf("POST /v1/optimize on empty server: %d (want 409): %s", code, body)
	}
	if want := "no hot structs"; !strings.Contains(string(body), want) {
		t.Errorf("409 body %q does not mention %q", body, want)
	}
}

// TestOptimizeEndpointUnconfigured: without an optimizable workload the
// endpoint is 501, not a crash.
func TestOptimizeEndpointUnconfigured(t *testing.T) {
	an, err := stream.New(nil, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(an, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()
	code, body := post(t, ts, "/v1/optimize")
	if code != http.StatusNotImplemented {
		t.Fatalf("POST /v1/optimize without workload: %d (want 501): %s", code, body)
	}
}
