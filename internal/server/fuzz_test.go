package server_test

import (
	"bytes"
	"testing"

	"repro/internal/profile"
	"repro/internal/server"
	"repro/internal/stream"
)

// FuzzIngestDecode drives all three wire codecs with arbitrary bytes:
// the decoder must never panic, and any input it accepts must round-trip
// — decode → encode → decode → encode yields byte-identical encodings,
// so a relayed (proxied, spooled) batch stream is bit-stable. Accepted
// binary input is additionally relayed through the gob codec and back:
// the binary framing may not lose or alter anything gob carries.
func FuzzIngestDecode(f *testing.F) {
	seedBatches := []stream.Batch{
		{
			Session: "s0", Process: "p0", TID: 1, Period: 10000, Seq: 3,
			Objects: []profile.ObjInfo{
				{ID: 0, Heap: true, Name: "heap#0", Base: 0x1000, Size: 4096, Identity: 42, AllocIP: 0x400, TypeID: 2},
			},
			Samples: []profile.Sample{
				{TID: 1, IP: 0x404, EA: 0x1010, Latency: 33, Level: 2, Write: true, Cycle: 99, ObjID: 0, Ctx: 7},
				{TID: 1, IP: 0x404, EA: 0x1028, Latency: 12, Cycle: 120, ObjID: -1},
			},
			AppCycles: 1000, OverheadCycles: 10, MemOps: 500,
		},
		{Session: "s1", Period: 1},
	}
	for _, ct := range []string{server.ContentTypeGob, server.ContentTypeNDJSON, server.ContentTypeBinary} {
		var buf bytes.Buffer
		if err := server.EncodeBatches(&buf, ct, seedBatches); err != nil {
			f.Fatal(err)
		}
		f.Add(ct, buf.Bytes())
	}
	f.Add(server.ContentTypeNDJSON, []byte("not json\n"))
	f.Add(server.ContentTypeGob, []byte{0xff, 0x00, 0x01})
	f.Add(server.ContentTypeBinary, []byte("SSB1truncated"))
	f.Add("text/unknown", []byte{})

	f.Fuzz(func(t *testing.T, ct string, data []byte) {
		bs, err := server.DecodeBatches(bytes.NewReader(data), ct)
		if err != nil {
			return // rejected input: only no-panic is required
		}
		var enc1 bytes.Buffer
		if err := server.EncodeBatches(&enc1, ct, bs); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		bs2, err := server.DecodeBatches(bytes.NewReader(enc1.Bytes()), ct)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		var enc2 bytes.Buffer
		if err := server.EncodeBatches(&enc2, ct, bs2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Errorf("encode→decode→encode not byte-identical for %s", ct)
		}
		if ct == server.ContentTypeBinary {
			// Relay through gob and back: a batch stream spooled in one
			// codec and replayed in the other must stay bit-stable.
			var viaGob bytes.Buffer
			if err := server.EncodeBatches(&viaGob, server.ContentTypeGob, bs); err != nil {
				t.Fatalf("gob encode of accepted binary input failed: %v", err)
			}
			bs3, err := server.DecodeBatches(bytes.NewReader(viaGob.Bytes()), server.ContentTypeGob)
			if err != nil {
				t.Fatalf("gob decode of relayed batches failed: %v", err)
			}
			var enc3 bytes.Buffer
			if err := server.EncodeBatches(&enc3, server.ContentTypeBinary, bs3); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1.Bytes(), enc3.Bytes()) {
				t.Error("binary→gob→binary relay not byte-identical")
			}
		}
	})
}
