// Package server exposes the streaming analyzer (internal/stream) over
// HTTP: concurrent clients POST sample batches, the server ingests them
// through bounded per-session queues (with 429 backpressure when a
// client outruns the analyzer), and readers pull advice, live stride
// state, full reports, or a materialized profile snapshot at any time.
// Prometheus-text metrics report ingest throughput, queue depths,
// per-session lag, and eviction counts.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/profile"
	"repro/internal/stream"
	"repro/internal/workloads"
)

// Config tunes the ingest server.
type Config struct {
	// QueueDepth is the per-session batch queue bound; a full queue
	// rejects the POST with 429 + Retry-After. Default 64.
	QueueDepth int
	// RetryAfter is the Retry-After value (seconds) sent with 429.
	// Default 1.
	RetryAfter int
	// IngestDelay, when non-nil, runs before every batch ingest — a test
	// hook to provoke backpressure deterministically.
	IngestDelay func()
	// Optimize, when non-nil, enables POST /v1/optimize: the server
	// materializes the streamed profile, enumerates candidate layouts for
	// this workload's record, and runs the measured A/B selection loop.
	// Without it the endpoint answers 501.
	Optimize workloads.Workload
	// OptimizeScale is the problem scale candidates are measured at.
	OptimizeScale workloads.Scale
	// OptimizeParallel bounds the A/B loop's worker pool (0 = sequential;
	// results are byte-identical at any value).
	OptimizeParallel int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 1
	}
	return c
}

// Server ingests sample batches into a streaming analyzer.
type Server struct {
	an    *stream.Analyzer
	conf  Config
	start time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string]*sessionQueue
	pending  int64 // batches enqueued but not yet ingested, all sessions
	draining bool
	wg       sync.WaitGroup

	samplesTotal atomic.Uint64
	batchesTotal atomic.Uint64
	rejected     atomic.Uint64
	ingestErrors atomic.Uint64
}

// queued is one enqueued batch plus the release hook that returns its
// arena-backed sample storage to the decode pool after ingest (nil for
// the non-pooled codecs).
type queued struct {
	b    stream.Batch
	done func()
}

type sessionQueue struct {
	ch chan queued
}

// New wraps an analyzer in an ingest server.
func New(an *stream.Analyzer, conf Config) *Server {
	s := &Server{an: an, conf: conf.withDefaults(), start: time.Now(), queues: make(map[string]*sessionQueue)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Analyzer returns the wrapped analyzer.
func (s *Server) Analyzer() *stream.Analyzer { return s.an }

// Handler builds the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/samples", s.handleSamples)
	mux.HandleFunc("POST /v1/flush", s.handleFlush)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/advice/{object}", s.handleAdvice)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/live", s.handleLive)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// enqueue routes one batch to its session queue, spawning the session's
// worker on first sight. Returns false when the queue is full; the
// caller keeps ownership of done unless the batch was accepted.
func (s *Server) enqueue(b stream.Batch, done func()) (bool, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false, fmt.Errorf("server is draining")
	}
	q := s.queues[b.Session]
	if q == nil {
		q = &sessionQueue{ch: make(chan queued, s.conf.QueueDepth)}
		s.queues[b.Session] = q
		s.wg.Add(1)
		go s.worker(q)
	}
	select {
	case q.ch <- queued{b: b, done: done}:
		s.pending++
		s.mu.Unlock()
		return true, nil
	default:
		s.mu.Unlock()
		return false, nil
	}
}

// worker drains one session's queue. One goroutine per session keeps
// batches of a session strictly ordered while sessions ingest in
// parallel (the analyzer locks per session).
func (s *Server) worker(q *sessionQueue) {
	defer s.wg.Done()
	for e := range q.ch {
		if s.conf.IngestDelay != nil {
			s.conf.IngestDelay()
		}
		if err := s.an.Ingest(e.b); err != nil {
			s.ingestErrors.Add(1)
		}
		if e.done != nil {
			e.done()
		}
		s.mu.Lock()
		s.pending--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Flush blocks until every enqueued batch has been ingested — the
// consistency barrier readers use before pulling a report that must
// include everything already acknowledged.
func (s *Server) Flush() {
	s.mu.Lock()
	for s.pending > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Drain stops accepting new batches, waits for the queues to empty, and
// stops the workers. Call after http.Server.Shutdown for a graceful
// exit; the analyzer stays queryable afterwards.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	for s.pending > 0 {
		s.cond.Wait()
	}
	for _, q := range s.queues {
		close(q.ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	batches, arena, err := DecodeBatchesArena(r.Body, r.Header.Get("Content-Type"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Validate everything before enqueueing anything: a malformed batch
	// must never leave a prefix of its request ingested.
	for i := range batches {
		if batches[i].Session == "" || batches[i].Period == 0 {
			s.releaseFrom(arena, batches, 0)
			http.Error(w, "batch without session or period", http.StatusBadRequest)
			return
		}
	}
	if len(batches) == 0 {
		http.Error(w, "empty request: no batches", http.StatusBadRequest)
		return
	}
	var done func()
	if arena != nil {
		done = arena.Release
	}
	accepted := 0
	for i := range batches {
		b := batches[i]
		ok, err := s.enqueue(b, done)
		if err != nil {
			s.releaseFrom(arena, batches, i)
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if !ok {
			// Backpressure: report how much of the request was taken so
			// the client can resend the rest after Retry-After.
			s.releaseFrom(arena, batches, i)
			s.rejected.Add(1)
			w.Header().Set("Retry-After", fmt.Sprint(s.conf.RetryAfter))
			w.Header().Set("X-Accepted-Batches", fmt.Sprint(accepted))
			http.Error(w, "session queue full", http.StatusTooManyRequests)
			return
		}
		accepted++
		s.batchesTotal.Add(1)
		s.samplesTotal.Add(uint64(len(b.Samples)))
	}
	w.WriteHeader(http.StatusAccepted)
}

// releaseFrom drops the arena references of batches[from:] — the ones the
// handler still owns because they were never handed to a worker.
func (s *Server) releaseFrom(arena *Arena, batches []stream.Batch, from int) {
	if arena == nil {
		return
	}
	for range batches[from:] {
		arena.Release()
	}
}

func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	s.Flush()
	w.WriteHeader(http.StatusNoContent)
}

// report builds the requested report, after a flush so the result covers
// every acknowledged batch.
func (s *Server) report(r *http.Request) (*core.Report, error) {
	s.Flush()
	if r.URL.Query().Get("source") == "snapshot" {
		p, err := s.an.Snapshot()
		if err != nil {
			return nil, err
		}
		return core.Analyze(p, s.an.Program(), s.an.AnalysisOptions())
	}
	return s.an.Report()
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.report(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rep.RenderText(w)
}

func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	rep, err := s.report(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	name := r.PathValue("object")
	for _, sr := range rep.Structures {
		if sr.TypeName == name || sr.Name == name {
			writeJSON(w, adviceResponse(sr))
			return
		}
	}
	http.Error(w, fmt.Sprintf("no analyzed structure %q", name), http.StatusNotFound)
}

// handleOptimize closes the loop server-side: flush, materialize the
// streamed profile, analyze it, and run the candidate enumerator + A/B
// selection loop over the configured workload. The ranked groupings come
// back as JSON (optimize.ResultJSON). ?mode=exact measures every
// candidate on the exact machine instead of the statistical engine.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if s.conf.Optimize == nil {
		http.Error(w, "optimize: server was started without an optimizable -workload", http.StatusNotImplemented)
		return
	}
	s.Flush()
	p, err := s.an.Snapshot()
	if err != nil {
		http.Error(w, fmt.Sprintf("optimize: profile has no hot structs: %v", err), http.StatusConflict)
		return
	}
	rep, err := core.Analyze(p, s.an.Program(), s.an.AnalysisOptions())
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	opt := optimize.Options{
		Scale:    s.conf.OptimizeScale,
		Parallel: s.conf.OptimizeParallel,
		Exact:    r.URL.Query().Get("mode") == "exact",
		Analysis: s.an.AnalysisOptions(),
	}
	res, err := optimize.RunWithReport(s.conf.Optimize, s.an.Program(), rep, opt)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, optimize.ErrNoHotStruct) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, res.JSON())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	s.Flush()
	p, err := s.an.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", ContentTypeGob)
	if err := profile.WriteProfile(w, p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	topK := 0
	if v := r.URL.Query().Get("top"); v != "" {
		fmt.Sscanf(v, "%d", &topK)
	}
	writeJSON(w, s.an.Live(topK))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	infos := s.an.Sessions()
	var maxCycle uint64
	for _, si := range infos {
		if si.LastCycle > maxCycle {
			maxCycle = si.LastCycle
		}
	}
	s.mu.Lock()
	depths := make(map[string]int, len(s.queues))
	for id, q := range s.queues {
		depths[id] = len(q.ch)
	}
	s.mu.Unlock()

	uptime := time.Since(s.start).Seconds()
	samples := s.samplesTotal.Load()
	rate := 0.0
	if uptime > 0 {
		rate = float64(samples) / uptime
	}

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("structslim_samples_total", "Samples accepted for ingest.", samples)
	counter("structslim_batches_total", "Batches accepted for ingest.", s.batchesTotal.Load())
	counter("structslim_rejected_batches_total", "Batches rejected with 429 backpressure.", s.rejected.Load())
	counter("structslim_ingest_errors_total", "Batches the analyzer rejected.", s.ingestErrors.Load())
	fmt.Fprintf(&b, "# HELP structslim_sessions Live ingest sessions.\n# TYPE structslim_sessions gauge\nstructslim_sessions %d\n", len(infos))
	fmt.Fprintf(&b, "# HELP structslim_uptime_seconds Server uptime.\n# TYPE structslim_uptime_seconds gauge\nstructslim_uptime_seconds %.3f\n", uptime)
	fmt.Fprintf(&b, "# HELP structslim_samples_per_second Mean accepted-sample rate since start.\n# TYPE structslim_samples_per_second gauge\nstructslim_samples_per_second %.3f\n", rate)

	b.WriteString("# HELP structslim_queue_depth Batches waiting in a session's queue.\n# TYPE structslim_queue_depth gauge\n")
	b.WriteString("# HELP structslim_session_lag_cycles Simulated-cycle lag behind the most recent session.\n# TYPE structslim_session_lag_cycles gauge\n")
	b.WriteString("# HELP structslim_evicted_streams_total Stream-state LRU evictions.\n# TYPE structslim_evicted_streams_total counter\n")
	b.WriteString("# HELP structslim_evicted_identities_total Identity-accumulator LRU evictions.\n# TYPE structslim_evicted_identities_total counter\n")
	for _, si := range infos {
		fmt.Fprintf(&b, "structslim_queue_depth{session=%q} %d\n", si.ID, depths[si.ID])
		fmt.Fprintf(&b, "structslim_session_lag_cycles{session=%q} %d\n", si.ID, maxCycle-si.LastCycle)
		fmt.Fprintf(&b, "structslim_evicted_streams_total{session=%q} %d\n", si.ID, si.EvictedStreams)
		fmt.Fprintf(&b, "structslim_evicted_identities_total{session=%q} %d\n", si.ID, si.EvictedIdentities)
	}
	fmt.Fprint(w, b.String())
}

// Advice is the JSON body of GET /v1/advice/{object}.
type Advice struct {
	Object       string     `json:"object"`
	TypeName     string     `json:"type_name,omitempty"`
	Identity     uint64     `json:"identity"`
	Ld           float64    `json:"latency_share"`
	InferredSize uint64     `json:"inferred_size"`
	TrueSize     int        `json:"true_size,omitempty"`
	Groups       [][]string `json:"groups,omitempty"`
	Offsets      [][]uint64 `json:"offsets,omitempty"`
	Complete     bool       `json:"complete"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func adviceResponse(sr *core.StructReport) Advice {
	a := Advice{
		Object:       sr.Name,
		TypeName:     sr.TypeName,
		Identity:     sr.Identity,
		Ld:           sr.Ld,
		InferredSize: sr.InferredSize,
		TrueSize:     sr.TrueSize,
	}
	if sr.Advice != nil {
		a.Groups = sr.Advice.Groups
		a.Offsets = sr.Advice.Offsets
		a.Complete = sr.Advice.Complete
	}
	return a
}
