package server

// The length-prefixed binary batch framing: the high-throughput wire
// format for POST /v1/samples. A request body is a sequence of frames,
// one frame per stream.Batch, each a fixed little-endian header followed
// by the session/process strings, packed object records, and packed
// fixed-width sample records — no varints, no reflection, no type
// dictionaries. Unlike gob (whose decoder re-reads its type preamble and
// allocates per value) a frame decodes with plain loads into preallocated
// backing arrays, so ingest cost is bounded by the analyzer, not the
// transport.
//
// Frame layout (all integers little-endian):
//
//	header (68 bytes)
//	  [ 0: 4) magic "SSB1"
//	  [ 4: 8) frameLen  uint32   total frame bytes, header included
//	  [ 8:12) sessionLen uint32
//	  [12:16) processLen uint32
//	  [16:20) tid       int32
//	  [20:28) period    uint64
//	  [28:36) seq       uint64
//	  [36:44) appCycles uint64
//	  [44:52) overheadCycles uint64
//	  [52:60) memOps    uint64
//	  [60:64) nObjects  uint32
//	  [64:68) nSamples  uint32
//	session bytes, process bytes
//	nObjects object records (43 bytes + name):
//	  base(8) size(8) identity(8) allocIP(8) id(4) typeID(4) heap(1) nameLen(2) name
//	nSamples sample records (46 bytes):
//	  ip(8) ea(8) cycle(8) ctx(8) tid(4) latency(4) objID(4) level(1) write(1)
//
// The encoding is canonical: a frame is a pure function of its batch, and
// the decoder rejects any frame whose frameLen disagrees with the sizes
// implied by its counts, so decode→encode is byte-identical for every
// accepted input (the fuzz test pins this down, cross-checked against the
// gob codec).

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/profile"
	"repro/internal/stream"
)

// ContentTypeBinary negotiates the binary batch framing.
const ContentTypeBinary = "application/x-structslim-binary"

const (
	binaryMagic      = uint32('S') | uint32('S')<<8 | uint32('B')<<16 | uint32('1')<<24
	binaryHeaderLen  = 68
	binaryObjFixed   = 43
	binarySampleLen  = 46
	maxFrameLen      = 1 << 26 // 64 MiB
	maxStringLen     = 1 << 12
	maxObjectsPerMsg = 1 << 20
)

// AppendBatchBinary appends one batch's frame to dst and returns the
// extended slice — the zero-allocation encode primitive clients build
// pipelined senders on.
func AppendBatchBinary(dst []byte, b *stream.Batch) []byte {
	frameLen := binaryHeaderLen + len(b.Session) + len(b.Process) + binarySampleLen*len(b.Samples)
	for i := range b.Objects {
		frameLen += binaryObjFixed + len(b.Objects[i].Name)
	}
	var h [binaryHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(h[0:], binaryMagic)
	le.PutUint32(h[4:], uint32(frameLen))
	le.PutUint32(h[8:], uint32(len(b.Session)))
	le.PutUint32(h[12:], uint32(len(b.Process)))
	le.PutUint32(h[16:], uint32(b.TID))
	le.PutUint64(h[20:], b.Period)
	le.PutUint64(h[28:], b.Seq)
	le.PutUint64(h[36:], b.AppCycles)
	le.PutUint64(h[44:], b.OverheadCycles)
	le.PutUint64(h[52:], b.MemOps)
	le.PutUint32(h[60:], uint32(len(b.Objects)))
	le.PutUint32(h[64:], uint32(len(b.Samples)))
	dst = append(dst, h[:]...)
	dst = append(dst, b.Session...)
	dst = append(dst, b.Process...)
	var rec [binaryObjFixed]byte
	for i := range b.Objects {
		o := &b.Objects[i]
		le.PutUint64(rec[0:], o.Base)
		le.PutUint64(rec[8:], o.Size)
		le.PutUint64(rec[16:], o.Identity)
		le.PutUint64(rec[24:], o.AllocIP)
		le.PutUint32(rec[32:], uint32(o.ID))
		le.PutUint32(rec[36:], uint32(o.TypeID))
		rec[40] = 0
		if o.Heap {
			rec[40] = 1
		}
		le.PutUint16(rec[41:], uint16(len(o.Name)))
		dst = append(dst, rec[:]...)
		dst = append(dst, o.Name...)
	}
	var sr [binarySampleLen]byte
	for i := range b.Samples {
		s := &b.Samples[i]
		le.PutUint64(sr[0:], s.IP)
		le.PutUint64(sr[8:], s.EA)
		le.PutUint64(sr[16:], s.Cycle)
		le.PutUint64(sr[24:], s.Ctx)
		le.PutUint32(sr[32:], uint32(s.TID))
		le.PutUint32(sr[36:], s.Latency)
		le.PutUint32(sr[40:], uint32(s.ObjID))
		sr[44] = s.Level
		sr[45] = 0
		if s.Write {
			sr[45] = 1
		}
		dst = append(dst, sr[:]...)
	}
	return dst
}

// Arena is a pooled decode workspace: the byte buffer one request's
// frames are read into and the []profile.Sample backing array every
// batch's Samples slice points into. Arenas recycle through a sync.Pool,
// so steady-state binary ingest performs zero per-sample allocations —
// only the per-batch session/process/name strings allocate.
//
// Ownership: the analyzer copies every sample and object it retains
// during Ingest, so a batch's backing arrays may be recycled as soon as
// that batch has been ingested (or dropped). Each batch holds one
// reference; Release returns the arena to the pool when the last
// reference drops.
type Arena struct {
	refs    atomic.Int64
	buf     []byte
	samples []profile.Sample
	batches []stream.Batch
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// Release drops one batch's reference; the last release recycles the
// arena. Safe on a nil arena (non-pooled codecs).
func (a *Arena) Release() {
	if a == nil {
		return
	}
	if a.refs.Add(-1) == 0 {
		arenaPool.Put(a)
	}
}

// retain primes the arena with one reference per decoded batch.
func (a *Arena) retain(n int) {
	if a != nil {
		a.refs.Store(int64(n))
	}
}

// grow returns a[:n] with reallocation only when capacity is short.
func growBytes(a []byte, n int) []byte {
	if cap(a) < n {
		return make([]byte, n)
	}
	return a[:n]
}

// decodeBinary reads every frame of r. With a non-nil arena the sample
// records of all frames share one arena-owned backing array; otherwise
// fresh slices are allocated (the standalone DecodeBatches path, whose
// results outlive the call).
func decodeBinary(r io.Reader, arena *Arena) ([]stream.Batch, error) {
	le := binary.LittleEndian
	var batches []stream.Batch
	var samples []profile.Sample
	if arena != nil {
		batches = arena.batches[:0]
		samples = arena.samples[:0]
	}
	var header [binaryHeaderLen]byte
	var body []byte
	if arena != nil {
		body = arena.buf
	}
	totalSamples := 0
	for frame := 0; ; frame++ {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("binary: frame %d: truncated header: %w", frame, err)
		}
		if got := le.Uint32(header[0:]); got != binaryMagic {
			return nil, fmt.Errorf("binary: frame %d: bad magic %#x", frame, got)
		}
		frameLen := int(le.Uint32(header[4:]))
		sessionLen := int(le.Uint32(header[8:]))
		processLen := int(le.Uint32(header[12:]))
		nObjects := int(le.Uint32(header[60:]))
		nSamples := int(le.Uint32(header[64:]))
		if frameLen > maxFrameLen {
			return nil, fmt.Errorf("binary: frame %d: oversized frame (%d bytes > %d)", frame, frameLen, maxFrameLen)
		}
		if sessionLen > maxStringLen || processLen > maxStringLen {
			return nil, fmt.Errorf("binary: frame %d: oversized session/process string", frame)
		}
		if nObjects > maxObjectsPerMsg {
			return nil, fmt.Errorf("binary: frame %d: oversized object table (%d)", frame, nObjects)
		}
		minLen := binaryHeaderLen + sessionLen + processLen + nObjects*binaryObjFixed + nSamples*binarySampleLen
		if frameLen < minLen || nSamples < 0 || minLen < binaryHeaderLen {
			return nil, fmt.Errorf("binary: frame %d: header counts exceed frame length (%d > %d)", frame, minLen, frameLen)
		}
		body = growBytes(body, frameLen-binaryHeaderLen)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("binary: frame %d: truncated body: %w", frame, err)
		}

		b := stream.Batch{
			TID:            int32(le.Uint32(header[16:])),
			Period:         le.Uint64(header[20:]),
			Seq:            le.Uint64(header[28:]),
			AppCycles:      le.Uint64(header[36:]),
			OverheadCycles: le.Uint64(header[44:]),
			MemOps:         le.Uint64(header[52:]),
		}
		p := body
		b.Session, p = string(p[:sessionLen]), p[sessionLen:]
		b.Process, p = string(p[:processLen]), p[processLen:]
		if nObjects > 0 {
			b.Objects = make([]profile.ObjInfo, nObjects)
			for i := range b.Objects {
				if len(p) < binaryObjFixed {
					return nil, fmt.Errorf("binary: frame %d: truncated object record %d", frame, i)
				}
				o := &b.Objects[i]
				o.Base = le.Uint64(p[0:])
				o.Size = le.Uint64(p[8:])
				o.Identity = le.Uint64(p[16:])
				o.AllocIP = le.Uint64(p[24:])
				o.ID = int32(le.Uint32(p[32:]))
				o.TypeID = int32(le.Uint32(p[36:]))
				if p[40] > 1 {
					return nil, fmt.Errorf("binary: frame %d: object %d: bad heap flag %d", frame, i, p[40])
				}
				o.Heap = p[40] == 1
				nameLen := int(le.Uint16(p[41:]))
				p = p[binaryObjFixed:]
				if nameLen > maxStringLen || len(p) < nameLen {
					return nil, fmt.Errorf("binary: frame %d: object %d: bad name length %d", frame, i, nameLen)
				}
				o.Name, p = string(p[:nameLen]), p[nameLen:]
			}
		}
		if len(p) != nSamples*binarySampleLen {
			return nil, fmt.Errorf("binary: frame %d: frame length disagrees with counts (%d trailing bytes for %d samples)",
				frame, len(p), nSamples)
		}
		if nSamples > 0 {
			var dst []profile.Sample
			if arena != nil {
				off := len(samples)
				samples = append(samples, make([]profile.Sample, nSamples)...)
				dst = samples[off : off+nSamples : off+nSamples]
			} else {
				dst = make([]profile.Sample, nSamples)
			}
			for i := range dst {
				s := &dst[i]
				s.IP = le.Uint64(p[0:])
				s.EA = le.Uint64(p[8:])
				s.Cycle = le.Uint64(p[16:])
				s.Ctx = le.Uint64(p[24:])
				s.TID = int32(le.Uint32(p[32:]))
				s.Latency = le.Uint32(p[36:])
				s.ObjID = int32(le.Uint32(p[40:]))
				s.Level = p[44]
				if p[45] > 1 {
					return nil, fmt.Errorf("binary: frame %d: sample %d: bad write flag %d", frame, i, p[45])
				}
				s.Write = p[45] == 1
				p = p[binarySampleLen:]
			}
			b.Samples = dst
			totalSamples += nSamples
		}
		batches = append(batches, b)
	}
	if arena != nil {
		// Appends past capacity moved the slab: repoint every batch at its
		// final backing array before handing the slab to the arena.
		off := 0
		for i := range batches {
			if n := len(batches[i].Samples); n > 0 {
				batches[i].Samples = samples[off : off+n : off+n]
				off += n
			}
		}
		arena.buf = body
		arena.samples = samples
		arena.batches = batches
	}
	return batches, nil
}

// encodeBinary writes every batch as one frame.
func encodeBinary(w io.Writer, bs []stream.Batch) error {
	var buf []byte
	for i := range bs {
		buf = AppendBatchBinary(buf[:0], &bs[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBatchesArena decodes one request body like DecodeBatches but, for
// the binary content type, into a pooled arena: every batch's Samples
// slice points into one reused backing array, and each batch must call
// arena.Release() once it no longer needs the samples. For the other
// codecs the returned arena is nil (their decoders allocate normally) and
// Release on nil is a no-op.
func DecodeBatchesArena(r io.Reader, contentType string) ([]stream.Batch, *Arena, error) {
	if normalizeContentType(contentType) != ContentTypeBinary {
		bs, err := DecodeBatches(r, contentType)
		return bs, nil, err
	}
	arena := arenaPool.Get().(*Arena)
	bs, err := decodeBinary(r, arena)
	if err != nil {
		arena.retain(1)
		arena.Release()
		return nil, nil, err
	}
	if len(bs) == 0 {
		arena.retain(1)
		arena.Release()
		return bs, nil, nil
	}
	arena.retain(len(bs))
	return bs, arena, nil
}
