package server_test

// Error-path coverage for the ingest codecs, centered on the binary
// framing: every malformed request must be rejected with a 4xx — never a
// panic, never a partial ingest (a request is decoded and validated in
// full before any batch reaches a session queue).

import (
	"bytes"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/server"
	"repro/internal/stream"
)

func testBatches() []stream.Batch {
	return []stream.Batch{
		{
			Session: "s0", Process: "p0", TID: 1, Period: 10000, Seq: 3,
			Objects: []profile.ObjInfo{
				{ID: 0, Heap: true, Name: "heap#0", Base: 0x1000, Size: 4096, Identity: 42, AllocIP: 0x400, TypeID: 2},
				{ID: 1, Name: "", Base: 0x2000, Size: 64, Identity: 7, TypeID: -1},
			},
			Samples: []profile.Sample{
				{TID: 1, IP: 0x404, EA: 0x1010, Latency: 33, Level: 2, Write: true, Cycle: 99, ObjID: 0, Ctx: 7},
				{TID: 1, IP: 0x404, EA: 0x1028, Latency: 12, Cycle: 120, ObjID: -1},
			},
			AppCycles: 1000, OverheadCycles: 10, MemOps: 500,
		},
		{Session: "s1", Period: 1, Seq: 9},
	}
}

// TestBinaryRoundTrip pins the canonical-codec contract: encode → decode
// reproduces the batches exactly, and re-encoding is byte-identical.
func TestBinaryRoundTrip(t *testing.T) {
	want := testBatches()
	var buf bytes.Buffer
	if err := server.EncodeBatches(&buf, server.ContentTypeBinary, want); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := server.DecodeBatches(bytes.NewReader(first), server.ContentTypeBinary)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary round trip mutated batches:\ngot  %+v\nwant %+v", got, want)
	}
	var again bytes.Buffer
	if err := server.EncodeBatches(&again, server.ContentTypeBinary, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Error("binary re-encode not byte-identical")
	}
}

// TestBinaryMatchesGobSemantics cross-checks the two binary codecs: the
// same batches pushed through gob and through the binary framing must
// decode to identical values.
func TestBinaryMatchesGobSemantics(t *testing.T) {
	in := testBatches()
	var gobBuf, binBuf bytes.Buffer
	if err := server.EncodeBatches(&gobBuf, server.ContentTypeGob, in); err != nil {
		t.Fatal(err)
	}
	if err := server.EncodeBatches(&binBuf, server.ContentTypeBinary, in); err != nil {
		t.Fatal(err)
	}
	fromGob, err := server.DecodeBatches(&gobBuf, server.ContentTypeGob)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := server.DecodeBatches(&binBuf, server.ContentTypeBinary)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromGob, fromBin) {
		t.Errorf("gob and binary decode to different values:\ngob    %+v\nbinary %+v", fromGob, fromBin)
	}
}

// TestArenaDecode exercises the pooled decode path directly: the decoded
// batches must equal the plain decode, and Release must be safe to call
// once per batch.
func TestArenaDecode(t *testing.T) {
	want := testBatches()
	var buf bytes.Buffer
	if err := server.EncodeBatches(&buf, server.ContentTypeBinary, want); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()
	// Two rounds so the second decode reuses a recycled arena.
	for round := 0; round < 2; round++ {
		got, arena, err := server.DecodeBatchesArena(bytes.NewReader(payload), server.ContentTypeBinary)
		if err != nil {
			t.Fatal(err)
		}
		if arena == nil {
			t.Fatal("binary decode returned no arena")
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: arena decode differs from input", round)
		}
		for range got {
			arena.Release()
		}
	}
	// Non-binary codecs take the plain path: nil arena, Release is a no-op.
	var gobBuf bytes.Buffer
	if err := server.EncodeBatches(&gobBuf, server.ContentTypeGob, want); err != nil {
		t.Fatal(err)
	}
	got, arena, err := server.DecodeBatchesArena(&gobBuf, server.ContentTypeGob)
	if err != nil {
		t.Fatal(err)
	}
	if arena != nil {
		t.Error("gob decode returned an arena")
	}
	arena.Release()
	if !reflect.DeepEqual(got, want) {
		t.Error("gob arena-path decode differs from input")
	}
}

// encodeOne frames a single batch in the binary format.
func encodeOne(t *testing.T, b stream.Batch) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := server.EncodeBatches(&buf, server.ContentTypeBinary, []stream.Batch{b}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryDecodeErrors drives the decoder through each malformed-frame
// class; every one must produce a descriptive error, never a panic or an
// oversized allocation.
func TestBinaryDecodeErrors(t *testing.T) {
	valid := encodeOne(t, testBatches()[0])
	le := binary.LittleEndian

	corrupt := func(mutate func(b []byte) []byte) []byte {
		cp := append([]byte(nil), valid...)
		return mutate(cp)
	}
	cases := []struct {
		name    string
		payload []byte
		errHas  string
	}{
		{"truncated header", valid[:40], "truncated header"},
		{"truncated body", valid[:len(valid)-13], "truncated body"},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), "bad magic"},
		{"oversized frame length", corrupt(func(b []byte) []byte {
			le.PutUint32(b[4:], 1<<30)
			return b
		}), "oversized frame"},
		{"oversized session string", corrupt(func(b []byte) []byte {
			le.PutUint32(b[8:], 1<<20)
			return b
		}), "oversized session"},
		{"oversized object table", corrupt(func(b []byte) []byte {
			le.PutUint32(b[60:], 1<<24)
			return b
		}), "oversized object table"},
		{"sample count exceeds frame", corrupt(func(b []byte) []byte {
			le.PutUint32(b[64:], 1<<20)
			return b
		}), "exceed frame length"},
		{"count/length disagreement", corrupt(func(b []byte) []byte {
			// One sample fewer than the frame carries: trailing bytes.
			le.PutUint32(b[64:], le.Uint32(b[64:])-1)
			return b
		}), "disagrees with counts"},
		{"mid-stream codec switch", append(append([]byte(nil), valid...),
			[]byte("{\"Session\":\"s\",\"Period\":1}\n")...), "frame 1"},
		{"gob spliced after frame", func() []byte {
			var gobBuf bytes.Buffer
			if err := server.EncodeBatches(&gobBuf, server.ContentTypeGob, testBatches()); err != nil {
				t.Fatal(err)
			}
			return append(append([]byte(nil), valid...), gobBuf.Bytes()...)
		}(), "frame 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := server.DecodeBatches(bytes.NewReader(tc.payload), server.ContentTypeBinary)
			if err == nil {
				t.Fatal("malformed frame accepted")
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Errorf("error %q does not mention %q", err, tc.errHas)
			}
		})
	}
}

// TestServerRejectsMalformedBinary posts each malformed-request class at
// a live server: all must yield 4xx with zero batches ingested — decode
// and validation errors may never leave a request prefix in the analyzer.
func TestServerRejectsMalformedBinary(t *testing.T) {
	an, err := stream.New(nil, stream.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(an, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	valid := encodeOne(t, testBatches()[0])
	noSession := encodeOne(t, stream.Batch{Period: 100, Seq: 1})
	cases := []struct {
		name    string
		payload []byte
	}{
		{"truncated frame", valid[:len(valid)-5]},
		{"oversized header", func() []byte {
			cp := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(cp[4:], 1<<31-1)
			return cp
		}()},
		{"mid-stream codec switch", append(append([]byte(nil), valid...), []byte("not a frame")...)},
		{"empty request, zero frames", nil},
		{"empty-batch frame without session", noSession},
		// The invalid frame rides second: the valid first frame must not
		// be ingested either (atomicity of one request).
		{"valid frame then invalid", append(append([]byte(nil), valid...), noSession...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/samples", server.ContentTypeBinary, bytes.NewReader(tc.payload))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode < 400 || resp.StatusCode > 499 {
				t.Fatalf("status %d, want 4xx", resp.StatusCode)
			}
			srv.Flush()
			if got := an.Sessions(); len(got) != 0 {
				t.Fatalf("partial ingest: analyzer has sessions %+v", got)
			}
		})
	}

	// Positive control: an empty batch with a session is the push
	// protocol's empty-stream case and must be accepted.
	resp, err := http.Post(ts.URL+"/v1/samples", server.ContentTypeBinary,
		bytes.NewReader(encodeOne(t, stream.Batch{Session: "empty", Period: 100})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("empty batch with session: %d, want 202", resp.StatusCode)
	}
}
