package server_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/workloads"
	"repro/structslim"
)

var testOpt = structslim.Options{SamplePeriod: 3000, Seed: 7}

// batchesOf splits a run into per-thread session batches.
func batchesOf(res *structslim.RunResult, batchSize int) []stream.Batch {
	var out []stream.Batch
	for _, tp := range res.ThreadProfiles {
		n := len(tp.Samples)
		var seq uint64
		for start := 0; start < n || start == 0; start += batchSize {
			end := start + batchSize
			if end > n {
				end = n
			}
			b := stream.Batch{
				Session: fmt.Sprintf("push-t%03d", tp.TID),
				Process: "p0",
				TID:     int32(tp.TID),
				Period:  tp.Period,
				Seq:     seq,
				Samples: tp.Samples[start:end],
			}
			if start == 0 {
				b.Objects = tp.Objects
			}
			if end == n {
				b.AppCycles = tp.AppCycles
				b.OverheadCycles = tp.OverheadCycles
				b.MemOps = tp.MemOps
			}
			out = append(out, b)
			seq++
			if end == n {
				break
			}
		}
	}
	return out
}

func postBatches(t *testing.T, ts *httptest.Server, ct string, bs []stream.Batch) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := server.EncodeBatches(&buf, ct, bs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/samples", ct, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestEndToEnd pushes a profiled workload over HTTP in both wire formats
// and checks the server's report, snapshot, advice, live view, and
// metrics against the local batch pipeline.
func TestEndToEnd(t *testing.T) {
	for _, ct := range []string{server.ContentTypeGob, server.ContentTypeNDJSON} {
		t.Run(ct, func(t *testing.T) {
			w, err := workloads.Get("art")
			if err != nil {
				t.Fatal(err)
			}
			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			res, err := structslim.ProfileRun(p, phases, testOpt)
			if err != nil {
				t.Fatal(err)
			}
			batchRep, err := core.Analyze(res.Profile, p, testOpt.Analysis)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			batchRep.RenderText(&want)

			an, err := stream.New(p, stream.Config{})
			if err != nil {
				t.Fatal(err)
			}
			srv := server.New(an, server.Config{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			defer srv.Drain()

			resp := postBatches(t, ts, ct, batchesOf(res, 128))
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("POST /v1/samples: %d", resp.StatusCode)
			}

			// Online report and snapshot-derived report both match batch.
			for _, path := range []string{"/v1/report", "/v1/report?source=snapshot"} {
				code, body := get(t, ts, path)
				if code != http.StatusOK {
					t.Fatalf("GET %s: %d: %s", path, code, body)
				}
				if !bytes.Equal(body, want.Bytes()) {
					t.Errorf("GET %s differs from batch report", path)
				}
			}

			// Snapshot round-trips to the batch merged profile.
			code, body := get(t, ts, "/v1/snapshot")
			if code != http.StatusOK {
				t.Fatalf("GET /v1/snapshot: %d", code)
			}
			snap, err := profile.ReadProfile(bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(snap, res.Profile) {
				t.Error("snapshot over HTTP differs from batch merged profile")
			}

			// Advice for the hot structure resolves by type name.
			if len(batchRep.Structures) == 0 {
				t.Fatal("batch report has no structures")
			}
			hot := batchRep.Structures[0]
			name := hot.TypeName
			if name == "" {
				name = hot.Name
			}
			code, body = get(t, ts, "/v1/advice/"+name)
			if code != http.StatusOK {
				t.Fatalf("GET /v1/advice/%s: %d: %s", name, code, body)
			}
			if !bytes.Contains(body, []byte(fmt.Sprintf("\"identity\": %d", hot.Identity))) {
				t.Errorf("advice response missing identity: %s", body)
			}
			code, _ = get(t, ts, "/v1/advice/nonexistent")
			if code != http.StatusNotFound {
				t.Errorf("GET /v1/advice/nonexistent: %d, want 404", code)
			}

			// Live view and metrics respond.
			code, body = get(t, ts, "/v1/live?top=3")
			if code != http.StatusOK || !bytes.Contains(body, []byte("Structures")) {
				t.Errorf("GET /v1/live: %d: %.80s", code, body)
			}
			code, body = get(t, ts, "/metrics")
			if code != http.StatusOK {
				t.Fatalf("GET /metrics: %d", code)
			}
			for _, metric := range []string{
				"structslim_samples_total",
				"structslim_batches_total",
				"structslim_queue_depth{session=\"push-t000\"}",
				"structslim_session_lag_cycles",
				"structslim_samples_per_second",
			} {
				if !bytes.Contains(body, []byte(metric)) {
					t.Errorf("metrics missing %s", metric)
				}
			}
		})
	}
}

// TestBackpressure fills a depth-1 queue against a blocked ingest worker
// and expects 429 + Retry-After, then verifies nothing was lost once the
// worker resumes and the client retries.
func TestBackpressure(t *testing.T) {
	an, err := stream.New(nil, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var once sync.Once
	srv := server.New(an, server.Config{
		QueueDepth:  1,
		RetryAfter:  2,
		IngestDelay: func() { <-release },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mk := func(seq uint64) stream.Batch {
		return stream.Batch{
			Session: "s", Period: 1000, Seq: seq,
			Objects: []profile.ObjInfo{{ID: 0, Name: "o", Base: 0x1000, Size: 4096, Identity: 1, TypeID: -1}},
			Samples: []profile.Sample{{IP: 0x400, EA: 0x1000 + 8*seq, Latency: 10, ObjID: 0}},
		}
	}
	// First batch occupies the (blocked) worker, second fills the queue;
	// eventually a POST must bounce with 429.
	var rejected *http.Response
	for seq := uint64(0); seq < 8; seq++ {
		resp := postBatches(t, ts, server.ContentTypeGob, []stream.Batch{mk(seq)})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seq %d: unexpected status %d", seq, resp.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("no 429 despite blocked worker and depth-1 queue")
	}
	if ra := rejected.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	// Unblock and retry: the accepted batches drain, new ones are taken.
	once.Do(func() { close(release) })
	resp := postBatches(t, ts, server.ContentTypeGob, []stream.Batch{mk(99)})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-release POST: %d", resp.StatusCode)
	}
	srv.Flush()
	infos := an.Sessions()
	if len(infos) != 1 || infos[0].NumSamples == 0 {
		t.Fatalf("analyzer saw %v", infos)
	}
	srv.Drain()
}

// TestDrain verifies the graceful-drain contract: queued batches are
// ingested, later posts are refused, queries still work.
func TestDrain(t *testing.T) {
	an, err := stream.New(nil, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(an, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bs := []stream.Batch{{
		Session: "s", Period: 1000,
		Objects: []profile.ObjInfo{{ID: 0, Name: "o", Base: 0x1000, Size: 4096, Identity: 1, TypeID: -1}},
		Samples: []profile.Sample{
			{IP: 0x400, EA: 0x1000, Latency: 10, ObjID: 0},
			{IP: 0x400, EA: 0x1018, Latency: 10, ObjID: 0},
		},
	}}
	resp := postBatches(t, ts, server.ContentTypeNDJSON, bs)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	srv.Drain()

	// Every queued sample made it in.
	infos := an.Sessions()
	if len(infos) != 1 || infos[0].NumSamples != 2 {
		t.Fatalf("after drain: %+v", infos)
	}
	// New ingest is refused with 503.
	resp = postBatches(t, ts, server.ContentTypeNDJSON, bs)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST after drain: %d, want 503", resp.StatusCode)
	}
	// Reads still work.
	if code, _ := get(t, ts, "/v1/live"); code != http.StatusOK {
		t.Errorf("GET /v1/live after drain: %d", code)
	}
	// Drain is idempotent.
	srv.Drain()
}

func TestBadRequests(t *testing.T) {
	an, _ := stream.New(nil, stream.Config{})
	srv := server.New(an, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp, err := http.Post(ts.URL+"/v1/samples", "text/csv", bytes.NewBufferString("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown content type: %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/samples", server.ContentTypeNDJSON,
		bytes.NewBufferString(`{"Session":"","Period":0}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batch without session: %d, want 400", resp.StatusCode)
	}

	// Report with no sessions yet: 409.
	if code, _ := get(t, ts, "/v1/report"); code != http.StatusConflict {
		t.Errorf("report with no data: %d, want 409", code)
	}
}
