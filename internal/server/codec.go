package server

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/stream"
)

// Wire formats for sample-batch ingest. All carry a sequence of
// stream.Batch values:
//
//   - binary (ContentTypeBinary): length-prefixed fixed-width frames, one
//     per batch (binary.go) — the high-throughput format the pipelined
//     `structslim push` client uses, decodable into pooled backing arrays
//     with zero per-sample allocations;
//   - gob (ContentTypeGob): a single gob-encoded []stream.Batch — the
//     original compact format, kept for compatibility;
//   - NDJSON (ContentTypeNDJSON): one JSON-encoded batch per line — the
//     debuggable format for hand-rolled clients (curl, scripts).
//
// All codecs are canonical: decoding and re-encoding an encoded value
// reproduces it byte-identically (the binary framing is a pure function
// of the batch and rejects length/count mismatches; gob emits type info
// deterministically for a fixed type; JSON re-marshals struct fields in
// declaration order), which the fuzz test pins down.

// Content types accepted by POST /v1/samples.
const (
	ContentTypeGob    = "application/x-structslim-gob"
	ContentTypeNDJSON = "application/x-ndjson"
)

// DecodeBatches reads all batches of one request body in the given
// content type.
func DecodeBatches(r io.Reader, contentType string) ([]stream.Batch, error) {
	switch normalizeContentType(contentType) {
	case ContentTypeBinary:
		return decodeBinary(r, nil)
	case ContentTypeGob:
		var bs []stream.Batch
		if err := gob.NewDecoder(r).Decode(&bs); err != nil {
			return nil, fmt.Errorf("gob: %w", err)
		}
		return bs, nil
	case ContentTypeNDJSON:
		var bs []stream.Batch
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var b stream.Batch
			if err := json.Unmarshal([]byte(line), &b); err != nil {
				return nil, fmt.Errorf("ndjson line %d: %w", len(bs)+1, err)
			}
			bs = append(bs, b)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ndjson: %w", err)
		}
		return bs, nil
	default:
		return nil, fmt.Errorf("unsupported content type %q (want %s, %s, or %s)",
			contentType, ContentTypeBinary, ContentTypeGob, ContentTypeNDJSON)
	}
}

// EncodeBatches writes batches in the given content type.
func EncodeBatches(w io.Writer, contentType string, bs []stream.Batch) error {
	switch normalizeContentType(contentType) {
	case ContentTypeBinary:
		return encodeBinary(w, bs)
	case ContentTypeGob:
		return gob.NewEncoder(w).Encode(bs)
	case ContentTypeNDJSON:
		bw := bufio.NewWriter(w)
		for i := range bs {
			data, err := json.Marshal(&bs[i])
			if err != nil {
				return err
			}
			if _, err := bw.Write(data); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
		return bw.Flush()
	default:
		return fmt.Errorf("unsupported content type %q", contentType)
	}
}

// normalizeContentType strips parameters ("; charset=...") and spaces.
func normalizeContentType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(strings.ToLower(ct))
}
