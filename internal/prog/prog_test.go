package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// buildTiny builds a two-function program with a loop, for structural
// assertions.
func buildTiny(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("tiny")

	g := b.Global("data", 1024, -1)

	leaf := b.Func("leaf", "tiny.c")
	b.AtLine(50)
	b.AddI(RetReg, ArgReg0, 1)
	b.Ret()

	main := b.Func("main", "tiny.c")
	b.AtLine(10)
	base := b.R()
	b.GAddr(base, g)
	iv := b.R()
	sum := b.R()
	b.MovI(sum, 0)
	b.AtLine(12)
	b.ForRange(iv, 0, 8, 1, func() {
		v := b.R()
		b.Load(v, base, iv, 8, 0, 8)
		b.Add(sum, sum, v)
		b.Release(v)
	})
	b.AtLine(20)
	b.MovI(ArgReg0, 41)
	b.Call(leaf)
	b.Halt()
	b.SetEntry(main)

	p, err := b.Program()
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	return p
}

func TestFinalizeAssignsSequentialIPs(t *testing.T) {
	p := buildTiny(t)
	want := isa.TextBase
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].IP != want {
					t.Fatalf("IP = %#x, want %#x", blk.Instrs[i].IP, want)
				}
				want += isa.InstrBytes
			}
		}
	}
}

func TestLocRoundTrip(t *testing.T) {
	p := buildTiny(t)
	for fi, f := range p.Funcs {
		for bi, blk := range f.Blocks {
			for ii := range blk.Instrs {
				loc, ok := p.Loc(blk.Instrs[ii].IP)
				if !ok {
					t.Fatalf("Loc(%#x) missing", blk.Instrs[ii].IP)
				}
				if loc.Fn != fi || loc.Block != bi || loc.Index != ii {
					t.Fatalf("Loc(%#x) = %+v, want {%d %d %d}", blk.Instrs[ii].IP, loc, fi, bi, ii)
				}
				if got := p.InstrAt(blk.Instrs[ii].IP); got != &blk.Instrs[ii] {
					t.Fatal("InstrAt returned a different instruction")
				}
			}
		}
	}
	if _, ok := p.Loc(isa.TextBase - 4); ok {
		t.Error("Loc below text base succeeded")
	}
	if _, ok := p.Loc(isa.TextBase + uint64(p.NumInstrs())*isa.InstrBytes); ok {
		t.Error("Loc past end succeeded")
	}
	if p.InstrAt(0) != nil {
		t.Error("InstrAt(0) non-nil")
	}
}

func TestLineTable(t *testing.T) {
	p := buildTiny(t)
	main := p.FuncByName("main")
	if main == nil {
		t.Fatal("no main")
	}
	// The loop body instructions carry line 12.
	var sawLine12 bool
	for _, blk := range main.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == isa.Load {
				file, line := p.LineOf(blk.Instrs[i].IP)
				if file != "tiny.c" || line != 12 {
					t.Errorf("LineOf(load) = %s:%d, want tiny.c:12", file, line)
				}
				sawLine12 = true
			}
		}
	}
	if !sawLine12 {
		t.Error("no load instruction found in main")
	}
	if file, line := p.LineOf(12345); file != "" || line != 0 {
		t.Error("LineOf(bogus) should be empty")
	}
}

func TestForRangeShape(t *testing.T) {
	p := buildTiny(t)
	main := p.FuncByName("main")
	// The loop header must end in a conditional branch targeting the exit
	// block, which must come after the body in layout order.
	var head *Block
	for _, blk := range main.Blocks {
		if n := len(blk.Instrs); n > 0 && blk.Instrs[n-1].Op == isa.Br {
			head = blk
			break
		}
	}
	if head == nil {
		t.Fatal("no loop header found")
	}
	br := head.Instrs[len(head.Instrs)-1]
	if br.Cmp != isa.Ge {
		t.Errorf("loop exit condition = %s, want ge", br.Cmp)
	}
	if br.Target <= head.ID+1 {
		t.Errorf("exit target b%d not after body (header b%d)", br.Target, head.ID)
	}
	// The body's final jump returns to the header: a back edge.
	var sawBackEdge bool
	for _, blk := range main.Blocks {
		if n := len(blk.Instrs); n > 0 {
			in := blk.Instrs[n-1]
			if in.Op == isa.Jmp && in.Target == head.ID && blk.ID > head.ID {
				sawBackEdge = true
			}
		}
	}
	if !sawBackEdge {
		t.Error("no back edge to loop header")
	}
}

func TestValidationCatchesBadPrograms(t *testing.T) {
	// Call target out of range.
	b := NewBuilder("bad")
	b.Func("main", "x.c")
	b.Call(7)
	b.Halt()
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "call target") {
		t.Errorf("bad call: err = %v", err)
	}

	// Branch target out of range.
	b = NewBuilder("bad2")
	b.Func("main", "x.c")
	b.Jmp(9)
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "target") {
		t.Errorf("bad branch: err = %v", err)
	}

	// Last block must end in a terminator.
	b = NewBuilder("bad3")
	b.Func("main", "x.c")
	b.MovI(8, 1)
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("missing terminator: err = %v", err)
	}

	// Conditional branch at the very end has no fallthrough.
	b = NewBuilder("bad4")
	b.Func("main", "x.c")
	b.Br(isa.Eq, 1, 2, 0)
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "fallthrough") {
		t.Errorf("trailing br: err = %v", err)
	}

	// GAddr of an undeclared global.
	b = NewBuilder("bad5")
	b.Func("main", "x.c")
	b.GAddr(8, 0)
	b.Halt()
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "global") {
		t.Errorf("bad global: err = %v", err)
	}

	// Empty program.
	b = NewBuilder("bad6")
	if _, err := b.Program(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestAllocSiteTypeRecording(t *testing.T) {
	rec := MustRecord("node", Field{Name: "next", Size: 8}, Field{Name: "v", Size: 8})
	b := NewBuilder("allocs")
	tid := b.Type(AoS(rec).Structs[0])
	b.Func("main", "x.c")
	sz := b.R()
	ptr := b.R()
	b.MovI(sz, 16)
	b.Alloc(ptr, sz, tid)
	b.Alloc(ptr, sz, -1)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	var typed, untyped int
	for _, blk := range p.Funcs[0].Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op != isa.Alloc {
				continue
			}
			if st := p.TypeOfAllocSite(blk.Instrs[i].IP); st != nil {
				if st.Name != "node" {
					t.Errorf("alloc site type = %s, want node", st.Name)
				}
				typed++
			} else {
				untyped++
			}
		}
	}
	if typed != 1 || untyped != 1 {
		t.Errorf("typed=%d untyped=%d, want 1/1", typed, untyped)
	}
}

func TestTypeDeduplication(t *testing.T) {
	rec := MustRecord("n", Field{Name: "a", Size: 8})
	b := NewBuilder("dedupe")
	st := AoS(rec).Structs[0]
	id1 := b.Type(st)
	id2 := b.Type(st)
	if id1 != id2 {
		t.Errorf("same type registered twice: %d, %d", id1, id2)
	}
}

func TestDisasmContainsEverything(t *testing.T) {
	p := buildTiny(t)
	d := p.Disasm()
	for _, want := range []string{"func main", "func leaf", "gaddr", "load8", "br.ge", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("Disasm missing %q", want)
		}
	}
}

func TestIfElseShape(t *testing.T) {
	b := NewBuilder("ifelse")
	b.Func("main", "x.c")
	r := b.R()
	out := b.R()
	b.MovI(r, 5)
	b.If(isa.Gt, r, isa.RZ,
		func() { b.MovI(out, 1) },
		func() { b.MovI(out, 2) },
	)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	// Shape is validated structurally by Finalize; semantic behaviour is
	// covered by the vm package's TestIfElse.
	if p.NumInstrs() < 6 {
		t.Errorf("if/else produced too few instructions: %d", p.NumInstrs())
	}
}

func TestBuilderRegisterReuse(t *testing.T) {
	b := NewBuilder("regs")
	b.Func("f", "x.c")
	r1 := b.R()
	b.Release(r1)
	r2 := b.R()
	if r1 != r2 {
		t.Errorf("released register not reused: %d then %d", r1, r2)
	}
	// The zero register must never be handed out even when released.
	b.Release(isa.RZ)
	if got := b.R(); got == isa.RZ {
		t.Error("allocator handed out r0")
	}
	b.Halt()
}

func TestBuilderOutOfRegistersPanics(t *testing.T) {
	b := NewBuilder("overflow")
	b.Func("f", "x.c")
	defer func() {
		if recover() == nil {
			t.Error("expected panic when out of registers")
		}
	}()
	for i := 0; i < 100; i++ {
		b.R()
	}
}
