package prog

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRecordValidation(t *testing.T) {
	if _, err := NewRecord(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRecord("r"); err == nil {
		t.Error("no fields accepted")
	}
	if _, err := NewRecord("r", Field{Name: "a", Size: 4}, Field{Name: "a", Size: 4}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewRecord("r", Field{Name: "a", Size: 0}); err == nil {
		t.Error("zero-size field accepted")
	}
	if _, err := NewRecord("r", Field{Name: "", Size: 4}); err == nil {
		t.Error("unnamed field accepted")
	}
	r, err := NewRecord("r", Field{Name: "a", Size: 4}, Field{Name: "b", Size: 8})
	if err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if r.FieldIndex("b") != 1 || r.FieldIndex("zz") != -1 {
		t.Error("FieldIndex wrong")
	}
	if !reflect.DeepEqual(r.FieldNames(), []string{"a", "b"}) {
		t.Errorf("FieldNames = %v", r.FieldNames())
	}
}

// TestLayoutTSPTree checks offsets for the Olden TSP tree struct from the
// paper: {int sz; double x, y; ptr left, right, next, prev} on a 64-bit
// target: sz at 0, x at 8 (aligned), ..., size 56.
func TestLayoutTSPTree(t *testing.T) {
	rec := MustRecord("tree",
		Field{Name: "sz", Size: 4},
		Field{Name: "x", Size: 8, Float: true},
		Field{Name: "y", Size: 8, Float: true},
		Field{Name: "left", Size: 8},
		Field{Name: "right", Size: 8},
		Field{Name: "next", Size: 8},
		Field{Name: "prev", Size: 8},
	)
	l := AoS(rec)
	st := l.Structs[0]
	wantOffsets := map[string]int{"sz": 0, "x": 8, "y": 16, "left": 24, "right": 32, "next": 40, "prev": 48}
	for name, off := range wantOffsets {
		if got := l.Place(name).Offset; got != off {
			t.Errorf("offset(%s) = %d, want %d", name, got, off)
		}
	}
	if st.Size != 56 {
		t.Errorf("sizeof(tree) = %d, want 56", st.Size)
	}
	if st.Align != 8 {
		t.Errorf("alignof(tree) = %d, want 8", st.Align)
	}
}

// TestLayoutNNNeighbor checks the Rodinia NN record with a byte-array
// field: {char entry[49]; double dist} → dist aligned to 8 at offset 56,
// size 64 (one cache line, as in the paper).
func TestLayoutNNNeighbor(t *testing.T) {
	rec := MustRecord("neighbor",
		Field{Name: "entry", Size: 49},
		Field{Name: "dist", Size: 8, Float: true},
	)
	l := AoS(rec)
	if got := l.Place("dist").Offset; got != 56 {
		t.Errorf("offset(dist) = %d, want 56", got)
	}
	if got := l.Structs[0].Size; got != 64 {
		t.Errorf("sizeof(neighbor) = %d, want 64", got)
	}
}

func TestLayoutPaddingTail(t *testing.T) {
	// {int8 a; double b; int8 c} → a@0, b@8, c@16, size 24 (tail padded).
	rec := MustRecord("p",
		Field{Name: "a", Size: 1},
		Field{Name: "b", Size: 8},
		Field{Name: "c", Size: 1},
	)
	st := AoS(rec).Structs[0]
	if st.Size != 24 {
		t.Errorf("size = %d, want 24", st.Size)
	}
	if f := st.FieldAt(16); f == nil || f.Name != "c" {
		t.Errorf("FieldAt(16) = %v, want c", f)
	}
	if f := st.FieldAt(17); f != nil {
		t.Errorf("FieldAt(padding) = %v, want nil", f)
	}
	if f := st.FieldAt(200); f != nil {
		t.Errorf("FieldAt(out of range) = %v, want nil", f)
	}
}

func TestSplitValidation(t *testing.T) {
	rec := MustRecord("r",
		Field{Name: "a", Size: 8}, Field{Name: "b", Size: 8}, Field{Name: "c", Size: 8},
	)
	if _, err := Split(rec, [][]string{{"a", "b"}}); err == nil {
		t.Error("incomplete partition accepted")
	}
	if _, err := Split(rec, [][]string{{"a", "b"}, {"b", "c"}}); err == nil {
		t.Error("overlapping partition accepted")
	}
	if _, err := Split(rec, [][]string{{"a", "zz"}, {"b", "c"}}); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Split(rec, [][]string{{}, {"a", "b", "c"}}); err == nil {
		t.Error("empty group accepted")
	}
}

func TestSplitNormalization(t *testing.T) {
	rec := MustRecord("r",
		Field{Name: "a", Size: 8}, Field{Name: "b", Size: 8},
		Field{Name: "c", Size: 8}, Field{Name: "d", Size: 8},
	)
	// Groups given out of order should normalize to declaration order.
	l, err := Split(rec, [][]string{{"d", "b"}, {"c", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a", "c"}, {"b", "d"}}
	if !reflect.DeepEqual(l.Groups, want) {
		t.Errorf("normalized groups = %v, want %v", l.Groups, want)
	}
	if !l.IsSplit() || l.NumArrays() != 2 {
		t.Error("split layout shape wrong")
	}
	// Struct names carry the group index.
	if l.Structs[0].Name != "r_0" || l.Structs[1].Name != "r_1" {
		t.Errorf("struct names = %s, %s", l.Structs[0].Name, l.Structs[1].Name)
	}
}

func TestAoSIdentity(t *testing.T) {
	rec := MustRecord("r", Field{Name: "a", Size: 4}, Field{Name: "b", Size: 4})
	l := AoS(rec)
	if l.IsSplit() {
		t.Error("AoS claims to be split")
	}
	if l.Structs[0].Name != "r" {
		t.Errorf("AoS struct name = %s, want r", l.Structs[0].Name)
	}
	if got := l.Stride("a"); got != 8 {
		t.Errorf("stride = %d, want 8", got)
	}
}

func TestPlacePanicsOnUnknownField(t *testing.T) {
	rec := MustRecord("r", Field{Name: "a", Size: 4})
	l := AoS(rec)
	defer func() {
		if recover() == nil {
			t.Error("Place on unknown field did not panic")
		}
	}()
	l.Place("nope")
}

func TestLayoutString(t *testing.T) {
	rec := MustRecord("r", Field{Name: "a", Size: 8}, Field{Name: "b", Size: 8})
	l, _ := Split(rec, [][]string{{"a"}, {"b"}})
	if got := l.String(); got != "r{a | b}" {
		t.Errorf("String = %q", got)
	}
	if s := l.Structs[0].String(); !strings.Contains(s, "a@0:8") {
		t.Errorf("struct String = %q", s)
	}
}

// Property: for any record, splitting into singleton groups preserves each
// field's size and yields structs whose sizes are at least the field size.
func TestSplitSingletonsProperty(t *testing.T) {
	sizes := []int{1, 2, 4, 8, 16, 49}
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true // skip degenerate shapes
		}
		fields := make([]Field, len(raw))
		groups := make([][]string, len(raw))
		for i, r := range raw {
			name := string(rune('a' + i))
			fields[i] = Field{Name: name, Size: sizes[int(r)%len(sizes)]}
			groups[i] = []string{name}
		}
		rec, err := NewRecord("q", fields...)
		if err != nil {
			return false
		}
		l, err := Split(rec, groups)
		if err != nil {
			return false
		}
		for i, fl := range fields {
			st := l.Structs[l.Place(fl.Name).Arr]
			if st.Size < fl.Size {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: offsets within any AoS layout are strictly increasing and
// aligned, and the struct size is a multiple of its alignment.
func TestAoSLayoutInvariants(t *testing.T) {
	sizes := []int{1, 2, 4, 8, 12, 49}
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		fields := make([]Field, len(raw))
		for i, r := range raw {
			fields[i] = Field{Name: string(rune('a' + i)), Size: sizes[int(r)%len(sizes)]}
		}
		rec, err := NewRecord("q", fields...)
		if err != nil {
			return false
		}
		st := AoS(rec).Structs[0]
		prevEnd := 0
		for _, pf := range st.Fields {
			if pf.Offset < prevEnd {
				return false
			}
			a := Field{Size: pf.Size}.Align()
			if pf.Offset%a != 0 {
				return false
			}
			prevEnd = pf.Offset + pf.Size
		}
		return st.Size%st.Align == 0 && st.Size >= prevEnd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
