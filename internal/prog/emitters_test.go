package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestAllEmitters drives every convenience emitter once and checks the
// produced opcodes via the disassembly, pinning the builder/ISA mapping.
func TestAllEmitters(t *testing.T) {
	b := NewBuilder("emitters")
	rec := MustRecord("pair", Field{Name: "x", Size: 8}, Field{Name: "y", Size: 8})
	l := AoS(rec)
	tids := b.RegisterLayout(l)
	g := b.Global("arr", 64*16, tids[0])

	leaf := b.Func("leaf", "e.c")
	b.Nop()
	b.Ret()

	main := b.Func("main", "e.c")
	base := b.R()
	b.GAddr(base, g)
	r1, r2, r3 := b.R(), b.R(), b.R()
	b.MovI(r1, 7)
	b.MovF(r2, 2.5)
	b.Mov(r3, r1)
	b.Add(r3, r1, r2)
	b.AddI(r3, r3, 5)
	b.Sub(r3, r3, r1)
	b.Mul(r3, r3, r1)
	b.MulI(r3, r3, 3)
	b.Div(r3, r3, r1)
	b.Rem(r3, r3, r1)
	b.And(r3, r3, r1)
	b.Or(r3, r3, r1)
	b.Xor(r3, r3, r1)
	b.Shl(r3, r3, r1)
	b.Shr(r3, r3, r1)
	b.FAdd(r3, r3, r2)
	b.FSub(r3, r3, r2)
	b.FMul(r3, r3, r2)
	b.FDiv(r3, r3, r2)
	b.FSqrt(r3, r3)
	b.CvtIF(r3, r1)
	b.CvtFI(r3, r3)
	idx := b.R()
	b.MovI(idx, 3)
	b.LoadField(r3, l, []isa.Reg{base}, idx, "x")
	b.StoreField(r3, l, []isa.Reg{base}, idx, "y")
	b.FieldAddr(r3, l, []isa.Reg{base}, idx, "y")
	sz := b.R()
	b.MovI(sz, 32)
	b.Alloc(r3, sz, tids[0])
	b.Call(leaf)
	b.Halt()
	b.SetEntry(main)

	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	d := p.Disasm()
	for _, op := range []string{
		"movi", "mov ", "add ", "addi", "sub", "mul ", "muli", "div", "rem",
		"and", "or ", "xor", "shl", "shr", "fadd", "fsub", "fmul", "fdiv",
		"fsqrt", "cvtif", "cvtfi", "load8", "store8", "alloc", "call", "gaddr",
		"halt", "ret", "nop",
	} {
		if !strings.Contains(d, op) {
			t.Errorf("disassembly missing %q", op)
		}
	}

	// FieldAddr result: base + 3*16 + 8.
	if p.NumInstrs() == 0 {
		t.Fatal("no instructions")
	}
	if got := p.TypeOfGlobal(g); got == nil || got.Name != "pair" {
		t.Errorf("TypeOfGlobal = %v", got)
	}
	if p.TypeOfGlobal(99) != nil || p.TypeOfGlobal(-1) != nil {
		t.Error("out-of-range global type lookup")
	}
	if p.FuncByName("nope") != nil {
		t.Error("FuncByName ghost")
	}
	if b.CurLine() != 0 {
		t.Errorf("CurLine = %d", b.CurLine())
	}
}

func TestForRangeRejectsBadStep(t *testing.T) {
	b := NewBuilder("badstep")
	b.Func("main", "x.c")
	defer func() {
		if recover() == nil {
			t.Error("non-positive step accepted")
		}
	}()
	b.ForRange(b.R(), 0, 10, 0, func() {})
}

func TestForRangeRegRejectsBadStep(t *testing.T) {
	b := NewBuilder("badstep2")
	b.Func("main", "x.c")
	defer func() {
		if recover() == nil {
			t.Error("non-positive step accepted")
		}
	}()
	b.ForRangeReg(b.R(), 0, b.R(), -1, func() {})
}

func TestEmptyBlockPadding(t *testing.T) {
	// Nested Ifs leave empty join blocks; Program() must pad them.
	b := NewBuilder("pad")
	b.Func("main", "x.c")
	r := b.R()
	b.MovI(r, 1)
	b.If(isa.Gt, r, isa.RZ, func() {
		b.If(isa.Lt, r, isa.RZ, func() { b.Nop() }, nil)
	}, nil)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("nested-if program rejected: %v", err)
	}
	for _, blk := range p.Funcs[0].Blocks {
		if len(blk.Instrs) == 0 {
			t.Fatal("empty block survived finalization")
		}
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	b := NewBuilder("idem")
	b.Func("main", "x.c")
	b.Halt()
	p := b.MustProgram()
	ip := p.Funcs[0].Blocks[0].Instrs[0].IP
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if p.Funcs[0].Blocks[0].Instrs[0].IP != ip {
		t.Error("second Finalize changed IPs")
	}
}
