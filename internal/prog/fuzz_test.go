package prog

import (
	"testing"

	"repro/internal/isa"
)

// FuzzFinalize: arbitrary instruction streams assembled into a function
// must either finalize cleanly or be rejected with an error — never
// panic, and never produce an inconsistent IP index.
func FuzzFinalize(f *testing.F) {
	f.Add([]byte{byte(isa.MovI), 8, byte(isa.Halt)})
	f.Add([]byte{byte(isa.Br), 0, byte(isa.Jmp), 1, byte(isa.Halt)})
	f.Add([]byte{byte(isa.Load), 3, byte(isa.Halt), byte(isa.Nop)})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 200 {
			return
		}
		fn := &Func{ID: 0, Name: "f", File: "f.c"}
		blk := &Block{ID: 0}
		for i := 0; i+1 < len(data); i += 2 {
			op := isa.Op(data[i] % 30)
			arg := data[i+1]
			in := isa.Instr{
				Op:     op,
				Rd:     isa.Reg(arg % isa.NumRegs),
				Rs1:    isa.Reg((arg >> 1) % isa.NumRegs),
				Rs2:    isa.Reg((arg >> 2) % isa.NumRegs),
				Size:   []uint8{1, 2, 4, 8}[arg%4],
				Scale:  arg % 16,
				Target: int(arg % 8),
				Fn:     int(arg % 4),
				Imm:    int64(arg),
			}
			blk.Instrs = append(blk.Instrs, in)
			if op.IsTerminator() {
				fn.Blocks = append(fn.Blocks, blk)
				blk = &Block{ID: len(fn.Blocks)}
			}
		}
		if len(blk.Instrs) > 0 {
			fn.Blocks = append(fn.Blocks, blk)
		}
		if len(fn.Blocks) == 0 {
			return
		}
		p := &Program{Name: "fuzz", Funcs: []*Func{fn}}
		if err := p.Finalize(); err != nil {
			return // rejected, fine
		}
		// Accepted: the IP index must be total and self-consistent.
		n := p.NumInstrs()
		for i := 0; i < n; i++ {
			ip := isa.TextBase + uint64(i)*isa.InstrBytes
			loc, ok := p.Loc(ip)
			if !ok {
				t.Fatalf("accepted program missing IP %#x", ip)
			}
			in := &p.Funcs[loc.Fn].Blocks[loc.Block].Instrs[loc.Index]
			if in.IP != ip {
				t.Fatalf("IP index inconsistent at %#x", ip)
			}
		}
	})
}
