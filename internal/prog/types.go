// Package prog represents the synthetic programs StructSlim profiles:
// functions of basic blocks over the isa instruction set, static data
// objects, a struct-type registry (the stand-in for DWARF debug info), and
// a builder DSL for writing loop kernels.
//
// The package also models data layouts. A RecordSpec describes the
// *logical* fields of an aggregate (e.g. ART's f1_neuron); a PhysLayout
// maps those fields onto one or more physical structs. The identity AoS
// layout places every field in a single struct — the "before" program —
// while a Split layout partitions fields into several structs — the
// "after" program. Workload kernels are written once against the logical
// record and can be built with either layout, which is how the benchmark
// harness measures the effect of StructSlim's advice.
package prog

import (
	"fmt"
	"sort"
	"strings"
)

// Field is one logical field of a record. Size is in bytes; fields larger
// than 8 bytes (e.g. NN's char entry[49]) are byte arrays with alignment 1.
type Field struct {
	Name  string
	Size  int
	Float bool // values are float64 bit patterns (only meaningful for Size 8)
}

// Align returns the natural alignment of the field: its size for power-of-
// two sizes up to 8, and 1 for anything else (byte arrays).
func (f Field) Align() int {
	switch f.Size {
	case 1, 2, 4, 8:
		return f.Size
	}
	return 1
}

// RecordSpec is the logical shape of an aggregate data structure, before
// any layout decision.
type RecordSpec struct {
	Name   string
	Fields []Field
}

// NewRecord builds a RecordSpec, validating field names and sizes.
func NewRecord(name string, fields ...Field) (*RecordSpec, error) {
	if name == "" {
		return nil, fmt.Errorf("record needs a name")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("record %s has no fields", name)
	}
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("record %s: field with empty name", name)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("record %s: duplicate field %s", name, f.Name)
		}
		seen[f.Name] = true
		if f.Size <= 0 {
			return nil, fmt.Errorf("record %s: field %s has size %d", name, f.Name, f.Size)
		}
	}
	return &RecordSpec{Name: name, Fields: fields}, nil
}

// MustRecord is NewRecord for statically-known specs; it panics on error.
func MustRecord(name string, fields ...Field) *RecordSpec {
	r, err := NewRecord(name, fields...)
	if err != nil {
		panic(err)
	}
	return r
}

// FieldIndex returns the index of the named field, or -1.
func (r *RecordSpec) FieldIndex(name string) int {
	for i, f := range r.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FieldNames returns the field names in declaration order.
func (r *RecordSpec) FieldNames() []string {
	names := make([]string, len(r.Fields))
	for i, f := range r.Fields {
		names[i] = f.Name
	}
	return names
}

// PhysField is a field placed at a concrete offset inside a StructType.
type PhysField struct {
	Name   string
	Offset int
	Size   int
	Float  bool
}

// StructType is a concrete in-memory struct layout. It is registered with
// a Program so the analyzer's reporter can translate sampled offsets back
// to field names, playing the role of debug info.
type StructType struct {
	Name   string
	Fields []PhysField
	Size   int // padded size: the stride of an array of this struct
	Align  int
}

// FieldAt returns the field covering the byte at the given offset, or nil
// if the offset falls into padding or out of range.
func (st *StructType) FieldAt(offset int) *PhysField {
	for i := range st.Fields {
		f := &st.Fields[i]
		if offset >= f.Offset && offset < f.Offset+f.Size {
			return f
		}
	}
	return nil
}

// String renders a C-like definition of the struct.
func (st *StructType) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s { ", st.Name)
	for _, f := range st.Fields {
		fmt.Fprintf(&b, "%s@%d:%d; ", f.Name, f.Offset, f.Size)
	}
	fmt.Fprintf(&b, "} // size %d", st.Size)
	return b.String()
}

// layoutStruct computes offsets for the given logical fields in order,
// honoring natural alignment, and returns the resulting StructType.
func layoutStruct(name string, fields []Field) *StructType {
	st := &StructType{Name: name, Align: 1}
	off := 0
	for _, f := range fields {
		a := f.Align()
		if a > st.Align {
			st.Align = a
		}
		off = alignUp(off, a)
		st.Fields = append(st.Fields, PhysField{Name: f.Name, Offset: off, Size: f.Size, Float: f.Float})
		off += f.Size
	}
	st.Size = alignUp(off, st.Align)
	if st.Size == 0 {
		st.Size = st.Align
	}
	return st
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Placement locates one logical field inside a PhysLayout: which physical
// array it lives in and at what offset within that array's element struct.
type Placement struct {
	Arr    int // index into PhysLayout.Structs
	Offset int
}

// PhysLayout maps a RecordSpec's fields onto one or more physical structs.
type PhysLayout struct {
	Record  *RecordSpec
	Groups  [][]string // partition of field names, one group per struct
	Structs []*StructType
	place   map[string]Placement
}

// AoS returns the identity layout: all fields in one struct, in
// declaration order. This is the "original" program layout.
func AoS(rec *RecordSpec) *PhysLayout {
	l, err := Split(rec, [][]string{rec.FieldNames()})
	if err != nil {
		panic(err) // identity partition is always valid
	}
	return l
}

// Split builds a layout that partitions the record's fields into one
// struct per group. Groups must cover every field exactly once. Within a
// group, fields keep their declaration order so the result is
// deterministic regardless of how the groups were discovered.
func Split(rec *RecordSpec, groups [][]string) (*PhysLayout, error) {
	used := make(map[string]bool, len(rec.Fields))
	for _, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("split of %s: empty group", rec.Name)
		}
		for _, name := range g {
			if rec.FieldIndex(name) < 0 {
				return nil, fmt.Errorf("split of %s: unknown field %s", rec.Name, name)
			}
			if used[name] {
				return nil, fmt.Errorf("split of %s: field %s in two groups", rec.Name, name)
			}
			used[name] = true
		}
	}
	if len(used) != len(rec.Fields) {
		var missing []string
		for _, f := range rec.Fields {
			if !used[f.Name] {
				missing = append(missing, f.Name)
			}
		}
		return nil, fmt.Errorf("split of %s: fields not covered: %s", rec.Name, strings.Join(missing, ", "))
	}

	// Normalize: order fields within each group by declaration order, and
	// order groups by their first field's declaration order.
	norm := make([][]string, len(groups))
	for i, g := range groups {
		gg := append([]string(nil), g...)
		sort.Slice(gg, func(a, b int) bool {
			return rec.FieldIndex(gg[a]) < rec.FieldIndex(gg[b])
		})
		norm[i] = gg
	}
	sort.Slice(norm, func(a, b int) bool {
		return rec.FieldIndex(norm[a][0]) < rec.FieldIndex(norm[b][0])
	})

	l := &PhysLayout{Record: rec, Groups: norm, place: make(map[string]Placement)}
	for gi, g := range norm {
		fields := make([]Field, 0, len(g))
		for _, name := range g {
			fields = append(fields, rec.Fields[rec.FieldIndex(name)])
		}
		stName := rec.Name
		if len(norm) > 1 {
			stName = fmt.Sprintf("%s_%d", rec.Name, gi)
		}
		st := layoutStruct(stName, fields)
		l.Structs = append(l.Structs, st)
		for _, pf := range st.Fields {
			l.place[pf.Name] = Placement{Arr: gi, Offset: pf.Offset}
		}
	}
	return l, nil
}

// Reordered builds a single-struct layout with the record's fields in
// the given order — field *reordering*, the classic cheaper alternative
// to splitting (Chilimbi et al. reorder hot fields to share lines).
// order must be a permutation of the record's field names. The ablation
// benchmarks use this to show where reordering helps (co-accessed fields
// at opposite ends of a large struct) and where only splitting does
// (strided single-field scans).
func Reordered(rec *RecordSpec, order []string) (*PhysLayout, error) {
	if len(order) != len(rec.Fields) {
		return nil, fmt.Errorf("reorder of %s: %d names for %d fields", rec.Name, len(order), len(rec.Fields))
	}
	seen := make(map[string]bool, len(order))
	fields := make([]Field, 0, len(order))
	for _, name := range order {
		i := rec.FieldIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("reorder of %s: unknown field %q", rec.Name, name)
		}
		if seen[name] {
			return nil, fmt.Errorf("reorder of %s: field %q repeated", rec.Name, name)
		}
		seen[name] = true
		fields = append(fields, rec.Fields[i])
	}
	st := layoutStruct(rec.Name, fields)
	l := &PhysLayout{
		Record:  rec,
		Groups:  [][]string{append([]string(nil), order...)},
		Structs: []*StructType{st},
		place:   make(map[string]Placement),
	}
	for _, pf := range st.Fields {
		l.place[pf.Name] = Placement{Arr: 0, Offset: pf.Offset}
	}
	return l, nil
}

// Padded returns a copy of the layout whose struct strides are rounded
// up to a multiple of line bytes — the anti-false-sharing transform:
// element offsets are unchanged (so the layout stays legal whenever the
// original was), but neighboring elements no longer share a cache line.
// line <= 1, and strides already line-multiples, return the layout
// unchanged.
func (l *PhysLayout) Padded(line int) *PhysLayout {
	if line <= 1 {
		return l
	}
	changed := false
	structs := make([]*StructType, len(l.Structs))
	for i, st := range l.Structs {
		size := alignUp(st.Size, line)
		if size == st.Size {
			structs[i] = st
			continue
		}
		cp := *st
		cp.Size = size
		structs[i] = &cp
		changed = true
	}
	if !changed {
		return l
	}
	return &PhysLayout{Record: l.Record, Groups: l.Groups, Structs: structs, place: l.place}
}

// Place returns the placement of the named field. It panics on unknown
// fields: layouts are total over their record by construction, so a miss
// is a programming error in a kernel.
func (l *PhysLayout) Place(field string) Placement {
	p, ok := l.place[field]
	if !ok {
		panic(fmt.Sprintf("layout of %s: no field %q", l.Record.Name, field))
	}
	return p
}

// Stride returns the element size of the physical array holding the named
// field.
func (l *PhysLayout) Stride(field string) int {
	return l.Structs[l.Place(field).Arr].Size
}

// NumArrays returns how many physical arrays the layout uses.
func (l *PhysLayout) NumArrays() int { return len(l.Structs) }

// IsSplit reports whether the layout uses more than one physical array.
func (l *PhysLayout) IsSplit() bool { return len(l.Structs) > 1 }

// String summarizes the layout, e.g. "f1_neuron{I,U | X,Q | P | ...}".
func (l *PhysLayout) String() string {
	parts := make([]string, len(l.Groups))
	for i, g := range l.Groups {
		parts[i] = strings.Join(g, ",")
	}
	return fmt.Sprintf("%s{%s}", l.Record.Name, strings.Join(parts, " | "))
}
