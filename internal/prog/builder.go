package prog

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Builder constructs Programs imperatively, the way a compiler backend
// lowers structured source. It manages block creation and fallthrough
// order, forward branch patching, a per-function register allocator, and
// the synthetic line table.
//
// Register convention (matching the interpreter): r0 is the zero register;
// r1..r6 pass arguments and r1 returns values across Call/Ret (the
// interpreter restores all other registers on return); r8 and up are
// function-local scratch handed out by R().
type Builder struct {
	p    *Program
	f    *Func
	b    *Block
	line int32

	nextReg isa.Reg
	free    []isa.Reg

	typeIDs map[string]int

	// pendingAllocTypes records Alloc sites whose debug type must be keyed
	// by IP once Finalize has assigned IPs.
	pendingAllocTypes []pendingAlloc
}

// Argument/return registers of the calling convention, re-exported from
// isa for kernel-builder convenience.
const (
	ArgReg0 = isa.ArgReg0
	ArgReg1 = isa.ArgReg1
	ArgReg2 = isa.ArgReg2
	ArgReg3 = isa.ArgReg3
	ArgReg4 = isa.ArgReg4
	ArgReg5 = isa.ArgReg5
	RetReg  = isa.RetReg

	firstScratchReg = isa.FirstScratchReg
)

// NewBuilder starts a new program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		p:       &Program{Name: name, EntryFn: 0, AllocSiteType: make(map[uint64]int)},
		typeIDs: make(map[string]int),
	}
}

// Program finalizes and returns the built program. Structured control
// flow (nested If/loops) naturally leaves empty join blocks behind; they
// are padded with a Nop so the finalized program satisfies the
// no-empty-blocks invariant.
func (b *Builder) Program() (*Program, error) {
	for _, f := range b.p.Funcs {
		for _, blk := range f.Blocks {
			if len(blk.Instrs) == 0 {
				blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Nop})
			}
		}
	}
	if err := b.p.Finalize(); err != nil {
		return nil, err
	}
	for _, pa := range b.pendingAllocTypes {
		in := b.p.Funcs[pa.fn].Blocks[pa.blk].Instrs[pa.idx]
		b.p.AllocSiteType[in.IP] = pa.typeID
	}
	return b.p, nil
}

// MustProgram is Program, panicking on error; for statically-known
// workload builders whose shape is covered by tests.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// Type registers a struct type (deduplicated by name) and returns its id.
func (b *Builder) Type(st *StructType) int {
	if id, ok := b.typeIDs[st.Name]; ok {
		return id
	}
	id := len(b.p.Types)
	b.p.Types = append(b.p.Types, st)
	b.typeIDs[st.Name] = id
	return id
}

// RegisterLayout registers all physical structs of a layout and returns
// their type ids, in layout order.
func (b *Builder) RegisterLayout(l *PhysLayout) []int {
	ids := make([]int, len(l.Structs))
	for i, st := range l.Structs {
		ids[i] = b.Type(st)
	}
	return ids
}

// Global declares a static data object of the given byte size and returns
// its index. typeID is the element struct type for arrays of structs, or
// -1 for plain memory.
func (b *Builder) Global(name string, size int64, typeID int) int {
	idx := len(b.p.Globals)
	b.p.Globals = append(b.p.Globals, Global{Name: name, Size: size, TypeID: typeID})
	return idx
}

// Func opens a new function and makes it current. Every function starts
// with entry block 0.
func (b *Builder) Func(name, file string) int {
	id := len(b.p.Funcs)
	b.f = &Func{ID: id, Name: name, File: file}
	b.p.Funcs = append(b.p.Funcs, b.f)
	b.nextReg = firstScratchReg
	b.free = b.free[:0]
	b.newBlock()
	return id
}

// SetEntry selects the program's entry function.
func (b *Builder) SetEntry(fn int) { b.p.EntryFn = fn }

// AtLine sets the current synthetic source line; subsequently emitted
// instructions carry it.
func (b *Builder) AtLine(line int) { b.line = int32(line) }

// CurLine returns the current synthetic source line.
func (b *Builder) CurLine() int { return int(b.line) }

// R allocates a fresh scratch register in the current function.
func (b *Builder) R() isa.Reg {
	if n := len(b.free); n > 0 {
		r := b.free[n-1]
		b.free = b.free[:n-1]
		return r
	}
	if b.nextReg >= isa.NumRegs {
		panic(fmt.Sprintf("builder: out of registers in %s", b.f.Name))
	}
	r := b.nextReg
	b.nextReg++
	return r
}

// Release returns scratch registers to the allocator.
func (b *Builder) Release(regs ...isa.Reg) {
	for _, r := range regs {
		if r >= firstScratchReg {
			b.free = append(b.free, r)
		}
	}
}

func (b *Builder) newBlock() int {
	id := len(b.f.Blocks)
	b.b = &Block{ID: id}
	b.f.Blocks = append(b.f.Blocks, b.b)
	return id
}

// StartBlock closes the current block (falling through) and starts a new
// one, returning its id.
func (b *Builder) StartBlock() int { return b.newBlock() }

// Emit appends a raw instruction to the current block.
func (b *Builder) Emit(in isa.Instr) {
	in.Line = b.line
	b.b.Instrs = append(b.b.Instrs, in)
}

// patchRef identifies a branch whose Target needs patching.
type patchRef struct {
	blk  *Block
	inst int
}

func (b *Builder) emitPatchable(in isa.Instr) patchRef {
	b.Emit(in)
	return patchRef{blk: b.b, inst: len(b.b.Instrs) - 1}
}

func (r patchRef) patch(target int) { r.blk.Instrs[r.inst].Target = target }

// --- Instruction helpers -------------------------------------------------

// Nop emits a no-op (useful to give a line a distinct IP in tests).
func (b *Builder) Nop() { b.Emit(isa.Instr{Op: isa.Nop}) }

// MovI sets rd to an integer constant.
func (b *Builder) MovI(rd isa.Reg, imm int64) { b.Emit(isa.Instr{Op: isa.MovI, Rd: rd, Imm: imm}) }

// MovF sets rd to the bit pattern of a float constant.
func (b *Builder) MovF(rd isa.Reg, f float64) {
	b.Emit(isa.Instr{Op: isa.MovI, Rd: rd, Imm: int64(math.Float64bits(f))})
}

// Mov copies rs into rd.
func (b *Builder) Mov(rd, rs isa.Reg) { b.Emit(isa.Instr{Op: isa.Mov, Rd: rd, Rs1: rs}) }

// Binary ALU helpers.
func (b *Builder) Add(rd, a, c isa.Reg) { b.Emit(isa.Instr{Op: isa.Add, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) AddI(rd, a isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.AddI, Rd: rd, Rs1: a, Imm: imm})
}
func (b *Builder) Sub(rd, a, c isa.Reg) { b.Emit(isa.Instr{Op: isa.Sub, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) Mul(rd, a, c isa.Reg) { b.Emit(isa.Instr{Op: isa.Mul, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) MulI(rd, a isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.MulI, Rd: rd, Rs1: a, Imm: imm})
}
func (b *Builder) Div(rd, a, c isa.Reg)  { b.Emit(isa.Instr{Op: isa.Div, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) Rem(rd, a, c isa.Reg)  { b.Emit(isa.Instr{Op: isa.Rem, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) And(rd, a, c isa.Reg)  { b.Emit(isa.Instr{Op: isa.And, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) Or(rd, a, c isa.Reg)   { b.Emit(isa.Instr{Op: isa.Or, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) Xor(rd, a, c isa.Reg)  { b.Emit(isa.Instr{Op: isa.Xor, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) Shl(rd, a, c isa.Reg)  { b.Emit(isa.Instr{Op: isa.Shl, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) Shr(rd, a, c isa.Reg)  { b.Emit(isa.Instr{Op: isa.Shr, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) FAdd(rd, a, c isa.Reg) { b.Emit(isa.Instr{Op: isa.FAdd, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) FSub(rd, a, c isa.Reg) { b.Emit(isa.Instr{Op: isa.FSub, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) FMul(rd, a, c isa.Reg) { b.Emit(isa.Instr{Op: isa.FMul, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) FDiv(rd, a, c isa.Reg) { b.Emit(isa.Instr{Op: isa.FDiv, Rd: rd, Rs1: a, Rs2: c}) }
func (b *Builder) FSqrt(rd, a isa.Reg)   { b.Emit(isa.Instr{Op: isa.FSqrt, Rd: rd, Rs1: a}) }
func (b *Builder) CvtIF(rd, a isa.Reg)   { b.Emit(isa.Instr{Op: isa.CvtIF, Rd: rd, Rs1: a}) }
func (b *Builder) CvtFI(rd, a isa.Reg)   { b.Emit(isa.Instr{Op: isa.CvtFI, Rd: rd, Rs1: a}) }

// Load emits rd = mem[base + idx*scale + disp] of the given size.
func (b *Builder) Load(rd, base, idx isa.Reg, scale int, disp int64, size int) {
	b.Emit(isa.Instr{Op: isa.Load, Rd: rd, Rs1: base, Rs2: idx, Scale: uint8(scale), Disp: disp, Size: uint8(size)})
}

// Store emits mem[base + idx*scale + disp] = val of the given size.
func (b *Builder) Store(val, base, idx isa.Reg, scale int, disp int64, size int) {
	b.Emit(isa.Instr{Op: isa.Store, Rd: val, Rs1: base, Rs2: idx, Scale: uint8(scale), Disp: disp, Size: uint8(size)})
}

// GAddr loads the address of global g into rd.
func (b *Builder) GAddr(rd isa.Reg, g int) {
	b.Emit(isa.Instr{Op: isa.GAddr, Rd: rd, Imm: int64(g)})
}

// Call emits a call to function fn.
func (b *Builder) Call(fn int) { b.Emit(isa.Instr{Op: isa.Call, Fn: fn}) }

// Ret emits a return.
func (b *Builder) Ret() { b.Emit(isa.Instr{Op: isa.Ret}) }

// Halt emits a thread stop.
func (b *Builder) Halt() { b.Emit(isa.Instr{Op: isa.Halt}) }

// Jmp emits an unconditional jump to an existing block.
func (b *Builder) Jmp(target int) { b.Emit(isa.Instr{Op: isa.Jmp, Target: target}) }

// Br emits a conditional branch to an existing block.
func (b *Builder) Br(c isa.Cond, a, rhs isa.Reg, target int) {
	b.Emit(isa.Instr{Op: isa.Br, Cmp: c, Rs1: a, Rs2: rhs, Target: target})
}

// Alloc emits rd = heap allocation of size bytes (from register), with an
// optional struct type id (-1 for untyped) recorded as the allocation
// site's debug type. The type is attached after finalization via the
// instruction's IP, so the builder records the pending location.
func (b *Builder) Alloc(rd, sizeReg isa.Reg, typeID int) {
	b.Emit(isa.Instr{Op: isa.Alloc, Rd: rd, Rs1: sizeReg})
	if typeID >= 0 {
		b.pendingAllocTypes = append(b.pendingAllocTypes, pendingAlloc{
			fn: b.f.ID, blk: b.b.ID, idx: len(b.b.Instrs) - 1, typeID: typeID,
		})
	}
}

type pendingAlloc struct {
	fn, blk, idx, typeID int
}

// --- Structured control flow ---------------------------------------------

// ForRange emits a counted loop: for iv = start; iv < stop; iv += step.
// The body callback emits the loop body; it may itself create blocks and
// nested loops. step must be positive. The loop's trip-count bound is kept
// in a dedicated register for the loop's duration.
func (b *Builder) ForRange(iv isa.Reg, start, stop, step int64, body func()) {
	if step <= 0 {
		panic("ForRange: step must be positive")
	}
	bound := b.R()
	b.MovI(bound, stop)
	b.MovI(iv, start)
	head := b.StartBlock()
	exitBr := b.emitPatchable(isa.Instr{Op: isa.Br, Cmp: isa.Ge, Rs1: iv, Rs2: bound, Line: b.line})
	b.StartBlock() // loop body; header falls through here
	body()
	b.AddI(iv, iv, step)
	b.Jmp(head)
	exit := b.StartBlock()
	exitBr.patch(exit)
	b.Release(bound)
}

// ForRangeReg is ForRange with a register bound (computed trip counts).
func (b *Builder) ForRangeReg(iv isa.Reg, start int64, stopReg isa.Reg, step int64, body func()) {
	if step <= 0 {
		panic("ForRangeReg: step must be positive")
	}
	b.MovI(iv, start)
	head := b.StartBlock()
	exitBr := b.emitPatchable(isa.Instr{Op: isa.Br, Cmp: isa.Ge, Rs1: iv, Rs2: stopReg, Line: b.line})
	b.StartBlock()
	body()
	b.AddI(iv, iv, step)
	b.Jmp(head)
	exit := b.StartBlock()
	exitBr.patch(exit)
}

// WhileNZ emits: while (p != 0) { body } — the pointer-chasing loop shape
// used by linked-structure workloads (TSP, CLOMP, Health).
func (b *Builder) WhileNZ(p isa.Reg, body func()) {
	head := b.StartBlock()
	exitBr := b.emitPatchable(isa.Instr{Op: isa.Br, Cmp: isa.Eq, Rs1: p, Rs2: isa.RZ, Line: b.line})
	b.StartBlock()
	body()
	b.Jmp(head)
	exit := b.StartBlock()
	exitBr.patch(exit)
}

// WhileLt emits: while (a < bound) { body }. The body is responsible for
// advancing a (e.g. a CSR edge cursor).
func (b *Builder) WhileLt(a, bound isa.Reg, body func()) {
	head := b.StartBlock()
	exitBr := b.emitPatchable(isa.Instr{Op: isa.Br, Cmp: isa.Ge, Rs1: a, Rs2: bound, Line: b.line})
	b.StartBlock()
	body()
	b.Jmp(head)
	exit := b.StartBlock()
	exitBr.patch(exit)
}

// If emits a conditional: if cmp(a, rhs) { then } else { els }. els may be
// nil. Both arms join at a fresh block.
func (b *Builder) If(c isa.Cond, a, rhs isa.Reg, then func(), els func()) {
	// Branch to the then-arm on the condition; fall through to else.
	thenBr := b.emitPatchable(isa.Instr{Op: isa.Br, Cmp: c, Rs1: a, Rs2: rhs, Line: b.line})
	b.StartBlock()
	if els != nil {
		els()
	}
	joinJmp := b.emitPatchable(isa.Instr{Op: isa.Jmp, Line: b.line})
	thenBlk := b.StartBlock()
	thenBr.patch(thenBlk)
	then()
	join := b.StartBlock()
	joinJmp.patch(join)
}

// LoadField emits rd = element idx's field of a record array laid out by l.
// bases[k] must hold the base address of the layout's k-th physical array.
// The access width is min(field size, 8) — wider fields (byte arrays) are
// touched at their first word, which is how the paper's kernels read e.g.
// NN's entry field header.
func (b *Builder) LoadField(rd isa.Reg, l *PhysLayout, bases []isa.Reg, idx isa.Reg, field string) {
	pl := l.Place(field)
	st := l.Structs[pl.Arr]
	f := st.FieldAt(pl.Offset)
	size := f.Size
	if size > 8 {
		size = 8
	}
	b.Load(rd, bases[pl.Arr], idx, st.Size, int64(pl.Offset), size)
}

// StoreField is the store counterpart of LoadField.
func (b *Builder) StoreField(val isa.Reg, l *PhysLayout, bases []isa.Reg, idx isa.Reg, field string) {
	pl := l.Place(field)
	st := l.Structs[pl.Arr]
	f := st.FieldAt(pl.Offset)
	size := f.Size
	if size > 8 {
		size = 8
	}
	b.Store(val, bases[pl.Arr], idx, st.Size, int64(pl.Offset), size)
}

// FieldAddr emits rd = address of element idx's field (no memory access).
func (b *Builder) FieldAddr(rd isa.Reg, l *PhysLayout, bases []isa.Reg, idx isa.Reg, field string) {
	pl := l.Place(field)
	st := l.Structs[pl.Arr]
	tmp := b.R()
	b.MulI(tmp, idx, int64(st.Size))
	b.Add(rd, bases[pl.Arr], tmp)
	if pl.Offset != 0 {
		b.AddI(rd, rd, int64(pl.Offset))
	}
	b.Release(tmp)
}
