package prog

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Global describes one static data object of the program. The loader
// assigns its address; GAddr instructions reference it by index.
type Global struct {
	Name   string
	Size   int64
	TypeID int // index into Program.Types, or -1 if not an array of structs
}

// Func is a function: a name, a synthetic source file, and basic blocks.
// Block 0 is the entry. Control falls through from block i to block i+1
// unless block i ends in an unconditional terminator.
type Func struct {
	ID     int
	Name   string
	File   string
	Blocks []*Block
}

// Block is a basic block of instructions. Only the last instruction may be
// a terminator; a block without a terminator falls through.
type Block struct {
	ID     int
	Instrs []isa.Instr
}

// InstrLoc locates one instruction inside a program.
type InstrLoc struct {
	Fn, Block, Index int
}

// Program is a complete synthetic binary: functions, static data, and the
// struct-type registry that plays the role of debug information.
type Program struct {
	Name    string
	Funcs   []*Func
	EntryFn int
	Types   []*StructType
	Globals []Global

	// AllocSiteType maps an Alloc instruction's IP to the struct type the
	// allocation holds an array of — the equivalent of type information
	// recovered from debug info at an allocation call site. -1/absent
	// means untyped.
	AllocSiteType map[uint64]int

	// GlobalArrayType is implied by Globals[i].TypeID.

	finalized bool
	locs      []InstrLoc // indexed by (IP - TextBase) / InstrBytes
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NumInstrs returns the total instruction count across all functions.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// Finalize assigns instruction pointers, validates the program, and builds
// the IP lookup table. It must be called once before execution or analysis.
func (p *Program) Finalize() error {
	if p.finalized {
		return nil
	}
	if len(p.Funcs) == 0 {
		return fmt.Errorf("program %s: no functions", p.Name)
	}
	if p.EntryFn < 0 || p.EntryFn >= len(p.Funcs) {
		return fmt.Errorf("program %s: entry function %d out of range", p.Name, p.EntryFn)
	}
	if p.AllocSiteType == nil {
		p.AllocSiteType = make(map[uint64]int)
	}
	ip := isa.TextBase
	for fi, f := range p.Funcs {
		if f.ID != fi {
			return fmt.Errorf("program %s: function %s has id %d at index %d", p.Name, f.Name, f.ID, fi)
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("function %s: no blocks", f.Name)
		}
		for bi, b := range f.Blocks {
			if b.ID != bi {
				return fmt.Errorf("function %s: block id %d at index %d", f.Name, b.ID, bi)
			}
			if len(b.Instrs) == 0 {
				return fmt.Errorf("function %s: block %d is empty", f.Name, bi)
			}
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if err := in.Validate(); err != nil {
					return fmt.Errorf("function %s block %d instr %d: %w", f.Name, bi, ii, err)
				}
				if in.Op.IsTerminator() && ii != len(b.Instrs)-1 {
					return fmt.Errorf("function %s block %d: terminator %s not last", f.Name, bi, in.Op)
				}
				switch in.Op {
				case isa.Jmp, isa.Br:
					if in.Target >= len(f.Blocks) {
						return fmt.Errorf("function %s block %d: branch target b%d out of range", f.Name, bi, in.Target)
					}
				case isa.Call:
					if in.Fn >= len(p.Funcs) {
						return fmt.Errorf("function %s block %d: call target f%d out of range", f.Name, bi, in.Fn)
					}
				case isa.GAddr:
					if in.Imm < 0 || in.Imm >= int64(len(p.Globals)) {
						return fmt.Errorf("function %s block %d: global g%d out of range", f.Name, bi, in.Imm)
					}
				}
				in.IP = ip
				p.locs = append(p.locs, InstrLoc{Fn: fi, Block: bi, Index: ii})
				ip += isa.InstrBytes
			}
			// A fallthrough off the end of the last block would run off
			// the function; require a terminator there.
			last := &b.Instrs[len(b.Instrs)-1]
			if bi == len(f.Blocks)-1 && !last.Op.IsTerminator() {
				return fmt.Errorf("function %s: last block %d does not end in a terminator", f.Name, bi)
			}
			// A Br as last instruction of the last block has nowhere to
			// fall through to.
			if bi == len(f.Blocks)-1 && last.Op == isa.Br {
				return fmt.Errorf("function %s: last block %d ends in a conditional branch with no fallthrough", f.Name, bi)
			}
		}
	}
	for _, g := range p.Globals {
		if g.Size <= 0 {
			return fmt.Errorf("program %s: global %s has size %d", p.Name, g.Name, g.Size)
		}
		if g.TypeID >= len(p.Types) {
			return fmt.Errorf("program %s: global %s has type id %d out of range", p.Name, g.Name, g.TypeID)
		}
	}
	for ip, tid := range p.AllocSiteType {
		if tid < 0 || tid >= len(p.Types) {
			return fmt.Errorf("program %s: alloc site %#x has type id %d out of range", p.Name, ip, tid)
		}
	}
	p.finalized = true
	return nil
}

// Finalized reports whether Finalize has completed successfully.
func (p *Program) Finalized() bool { return p.finalized }

// Loc returns the location of the instruction at the given IP.
func (p *Program) Loc(ip uint64) (InstrLoc, bool) {
	if ip < isa.TextBase {
		return InstrLoc{}, false
	}
	idx := (ip - isa.TextBase) / isa.InstrBytes
	if idx >= uint64(len(p.locs)) {
		return InstrLoc{}, false
	}
	return p.locs[idx], true
}

// InstrAt returns the instruction at the given IP, or nil.
func (p *Program) InstrAt(ip uint64) *isa.Instr {
	loc, ok := p.Loc(ip)
	if !ok {
		return nil
	}
	return &p.Funcs[loc.Fn].Blocks[loc.Block].Instrs[loc.Index]
}

// FuncOf returns the function containing the given IP, or nil.
func (p *Program) FuncOf(ip uint64) *Func {
	loc, ok := p.Loc(ip)
	if !ok {
		return nil
	}
	return p.Funcs[loc.Fn]
}

// LineOf returns the synthetic source line of the instruction at ip, and
// the file of its function. Returns ("", 0) for unknown IPs.
func (p *Program) LineOf(ip uint64) (file string, line int32) {
	loc, ok := p.Loc(ip)
	if !ok {
		return "", 0
	}
	f := p.Funcs[loc.Fn]
	return f.File, f.Blocks[loc.Block].Instrs[loc.Index].Line
}

// TypeOfGlobal returns the struct type of a global array, or nil.
func (p *Program) TypeOfGlobal(idx int) *StructType {
	if idx < 0 || idx >= len(p.Globals) {
		return nil
	}
	tid := p.Globals[idx].TypeID
	if tid < 0 || tid >= len(p.Types) {
		return nil
	}
	return p.Types[tid]
}

// TypeOfAllocSite returns the struct type recorded for an allocation-site
// IP, or nil.
func (p *Program) TypeOfAllocSite(ip uint64) *StructType {
	tid, ok := p.AllocSiteType[ip]
	if !ok || tid < 0 || tid >= len(p.Types) {
		return nil
	}
	return p.Types[tid]
}

// Disasm renders the whole program as text, for debugging and golden
// tests.
func (p *Program) Disasm() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s (f%d) file=%s\n", f.Name, f.ID, f.File)
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "  b%d:\n", b.ID)
			for i := range b.Instrs {
				in := &b.Instrs[i]
				fmt.Fprintf(&sb, "    %#x L%-4d %s\n", in.IP, in.Line, in.String())
			}
		}
	}
	return sb.String()
}
