package vm

// Differential tests of the block-compiled engine against the reference
// interpreter: the same program, machine configuration, and observer must
// yield identical register files, memory, statistics, and event streams
// whichever engine runs. Config.Reference selects the engine, so the two
// machines differ in nothing else.

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/prog"
)

// buildKitchenSink assembles a program that executes every opcode the
// engines implement: the ALU and FP set, loads and stores of every
// size, GAddr, Alloc with and without a registered type, nested calls,
// conditional and unconditional branches, and enough loop iterations to
// cross several scheduler quanta.
func buildKitchenSink() (*prog.Program, int, int) {
	b := prog.NewBuilder("kitchensink")
	st := &prog.StructType{
		Name: "node",
		Fields: []prog.PhysField{
			{Name: "val", Offset: 0, Size: 8},
			{Name: "next", Offset: 8, Size: 8},
		},
		Size: 16, Align: 8,
	}
	tid := b.Type(st)
	arr := b.Global("arr", 512*8, -1)
	out := b.Global("out", 64, -1)

	// helper: computes r_out = arg0*2 + 7 via a mix of ops, then returns.
	helper := b.Func("helper", "k.c")
	h1, h2 := b.R(), b.R()
	b.MovI(h1, 2)
	b.Mul(h1, isa.ArgReg0, h1)
	b.AddI(h1, h1, 7)
	b.MovI(h2, 3)
	b.Div(h2, h1, h2)
	b.Rem(h2, h1, h2)
	b.Store(h2, isa.ArgReg1, isa.RZ, 1, 0, 8)
	b.Ret()

	main := b.Func("main", "k.c")
	base, ob, iv, v, w, f := b.R(), b.R(), b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, arr)
	b.GAddr(ob, out)

	// Strided stores and loads of every access size.
	b.ForRange(iv, 0, 512, 1, func() {
		b.Mul(v, iv, iv)
		b.Store(v, base, iv, 8, 0, 8)
	})
	b.MovI(w, 0)
	for _, size := range []int{1, 2, 4, 8} {
		size := size
		b.ForRange(iv, 0, 256, 1, func() {
			b.Load(v, base, iv, 8, int64(size), size)
			b.Add(w, w, v)
		})
	}
	b.Store(w, ob, isa.RZ, 1, 0, 8)

	// Bit ops, shifts, float pipeline.
	b.MovI(v, 0x0f0f)
	b.And(w, w, v)
	b.Or(w, w, v)
	b.Xor(w, w, v)
	b.MovI(v, 3)
	b.Shl(w, w, v)
	b.Shr(w, w, v)
	b.CvtIF(f, w)
	b.FAdd(f, f, f)
	b.FMul(f, f, f)
	b.FSub(f, f, f)
	b.MovI(v, 4)
	b.CvtIF(v, v)
	b.FDiv(f, f, v)
	b.FSqrt(f, v)
	b.CvtFI(f, f)
	b.Store(f, ob, isa.RZ, 1, 8, 8)

	// Heap allocation (typed and untyped) plus a pointer chase.
	sz, p1, p2 := b.R(), b.R(), b.R()
	b.MovI(sz, 16)
	b.Alloc(p1, sz, tid)
	b.Alloc(p2, sz, -1)
	b.Store(p2, p1, isa.RZ, 1, 8, 8) // p1.next = p2
	b.MovI(v, 41)
	b.Store(v, p2, isa.RZ, 1, 0, 8)
	b.Load(w, p1, isa.RZ, 1, 8, 8) // w = p1.next
	b.Load(v, w, isa.RZ, 1, 0, 8)  // v = *w
	b.Store(v, ob, isa.RZ, 1, 16, 8)

	// Nested call with address argument.
	b.MovI(isa.ArgReg0, 10)
	b.AddI(isa.ArgReg1, ob, 24)
	b.Call(helper)

	// Branches both ways, and a Nop for completeness.
	b.Nop()
	b.If(isa.Lt, v, w, func() {
		b.AddI(v, v, 1)
	}, func() {
		b.AddI(v, v, 2)
	})
	b.If(isa.Ge, v, w, func() {
		b.AddI(v, v, 4)
	}, nil)
	b.Store(v, ob, isa.RZ, 1, 32, 8)
	b.Halt()
	b.SetEntry(main)
	return b.MustProgram(), main, out
}

// machinesBoth builds a fast-engine and a reference-engine machine with
// otherwise identical configuration.
func machinesBoth(t *testing.T, p *prog.Program, ccfg cache.Config, cores int) (fast, ref *Machine) {
	t.Helper()
	var err error
	fast, err = NewMachine(p, ccfg, cores, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := DefaultConfig()
	rcfg.Reference = true
	ref, err = NewMachine(p, ccfg, cores, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.code == nil {
		t.Fatal("fast machine did not compile")
	}
	if ref.code != nil {
		t.Fatal("Reference machine compiled anyway")
	}
	return fast, ref
}

func runBothPhases(t *testing.T, fast, ref *Machine, phases [][]ThreadSpec) (fastStats, refStats []Stats) {
	t.Helper()
	for pi, ph := range phases {
		fs, err := fast.Run(ph)
		if err != nil {
			t.Fatalf("fast phase %d: %v", pi, err)
		}
		rs, err := ref.Run(ph)
		if err != nil {
			t.Fatalf("reference phase %d: %v", pi, err)
		}
		fastStats = append(fastStats, fs)
		refStats = append(refStats, rs)
	}
	return fastStats, refStats
}

// TestFastEngineMatchesReference runs the kitchen-sink program on both
// engines and demands identical stats, registers, and memory.
func TestFastEngineMatchesReference(t *testing.T) {
	p, _, out := buildKitchenSink()
	for _, prefetch := range []bool{false, true} {
		ccfg := cache.DefaultConfig()
		ccfg.Prefetch = prefetch
		fast, ref := machinesBoth(t, p, ccfg, 1)
		fs, rs := runBothPhases(t, fast, ref, [][]ThreadSpec{nil})
		if !reflect.DeepEqual(fs, rs) {
			t.Errorf("prefetch=%t: stats differ\nfast: %+v\nref:  %+v", prefetch, fs, rs)
		}
		if fast.Threads[0].Regs != ref.Threads[0].Regs {
			t.Errorf("prefetch=%t: final register files differ", prefetch)
		}
		for off := uint64(0); off < 40; off += 8 {
			fv := fast.Space.ReadInt(fast.GlobalBase(out)+off, 8)
			rv := ref.Space.ReadInt(ref.GlobalBase(out)+off, 8)
			if fv != rv {
				t.Errorf("prefetch=%t: out+%d = %d (fast) vs %d (ref)", prefetch, off, fv, rv)
			}
		}
	}
}

// TestFastEngineEventStream runs a multithreaded two-phase workload on
// both engines with recording observers attached and compares the full
// event streams field by field — the strictest possible statement that
// the compiled engine changes no observable event.
func TestFastEngineEventStream(t *testing.T) {
	const n = 2048
	b := prog.NewBuilder("events")
	arr := b.Global("arr", n*8, -1)
	initFn := b.Func("init", "e.c")
	base, iv := b.R(), b.R()
	b.GAddr(base, arr)
	b.ForRange(iv, 0, n, 1, func() {
		b.Store(iv, base, iv, 8, 0, 8)
	})
	b.Halt()
	worker := b.Func("worker", "e.c")
	wb, wi, wv, ws := b.R(), b.R(), b.R(), b.R()
	b.GAddr(wb, arr)
	b.MovI(ws, 0)
	b.ForRangeReg(wi, 0, isa.ArgReg1, 1, func() {
		b.Add(wv, wi, isa.ArgReg0)
		b.Load(wv, wb, wv, 8, 0, 8)
		b.Add(ws, ws, wv)
		b.Store(ws, wb, wi, 8, 0, 8)
	})
	b.Halt()
	b.SetEntry(initFn)
	p := b.MustProgram()

	phases := [][]ThreadSpec{
		{{Fn: initFn}},
		{
			{Fn: worker, Args: []int64{0, n / 2}, Core: 0},
			{Fn: worker, Args: []int64{n / 2, n / 2}, Core: 1},
		},
	}
	ccfg := cache.DefaultConfig()
	fast, ref := machinesBoth(t, p, ccfg, 2)
	fRec, rRec := &observerRecorder{overhead: 9}, &observerRecorder{overhead: 9}
	fast.Observer, ref.Observer = fRec, rRec
	fs, rs := runBothPhases(t, fast, ref, phases)
	if !reflect.DeepEqual(fs, rs) {
		t.Errorf("stats differ\nfast: %+v\nref:  %+v", fs, rs)
	}
	if len(fRec.events) != len(rRec.events) {
		t.Fatalf("event counts differ: fast %d, ref %d", len(fRec.events), len(rRec.events))
	}
	for i := range fRec.events {
		if fRec.events[i] != rRec.events[i] {
			t.Fatalf("event %d differs:\nfast %+v\nref  %+v", i, fRec.events[i], rRec.events[i])
		}
	}
}

// fakeGapSampler is an in-package GapSampler double (the real one lives
// in internal/pebs, which imports this package). It records every
// delivered sample and — crucially — books skipped accesses, so the test
// can verify the machine's batching squares with an every-event count.
type fakeGapSampler struct {
	period   uint64
	byInstrs bool
	counts   []uint64 // PEBS: accesses until next sample; IBS: next tagged instr
	samples  []MemEvent
	skipped  uint64
}

func newFakeGapSampler(period uint64, byInstrs bool, threads int) *fakeGapSampler {
	s := &fakeGapSampler{period: period, byInstrs: byInstrs}
	s.counts = make([]uint64, threads)
	for i := range s.counts {
		s.counts[i] = period
	}
	return s
}

func (s *fakeGapSampler) OnAccess(ev *MemEvent) uint64 {
	if s.byInstrs {
		if ev.Instrs < s.counts[ev.TID] {
			return 0
		}
		var tagged uint64
		for s.counts[ev.TID] <= ev.Instrs {
			tagged = s.counts[ev.TID]
			s.counts[ev.TID] += s.period
		}
		if tagged != ev.Instrs {
			return 0
		}
	} else {
		s.counts[ev.TID]--
		if s.counts[ev.TID] > 0 {
			return 0
		}
		s.counts[ev.TID] = s.period
	}
	s.samples = append(s.samples, *ev)
	return 11
}

func (s *fakeGapSampler) AccessGap(tid int) (uint64, bool) {
	if s.byInstrs {
		return s.counts[tid], true
	}
	return s.counts[tid] - 1, false
}

func (s *fakeGapSampler) SkipAccesses(tid int, n uint64) {
	s.counts[tid] -= n
	s.skipped += n
}

// TestGapSamplerBatching runs the same workload with a gap-aware sampler
// on the fast engine and an every-event count on the reference engine;
// the recorded samples must be identical, and the fast run must actually
// have used the no-copy-out path.
func TestGapSamplerBatching(t *testing.T) {
	p, _, _ := buildKitchenSink()
	for _, byInstrs := range []bool{false, true} {
		ccfg := cache.DefaultConfig()
		fast, ref := machinesBoth(t, p, ccfg, 1)
		fSamp := newFakeGapSampler(97, byInstrs, 1)
		rSamp := newFakeGapSampler(97, byInstrs, 1)
		fast.Observer, ref.Observer = fSamp, rSamp
		fs, rs := runBothPhases(t, fast, ref, [][]ThreadSpec{nil})
		if !reflect.DeepEqual(fs, rs) {
			t.Errorf("byInstrs=%t: stats differ\nfast: %+v\nref:  %+v", byInstrs, fs, rs)
		}
		if len(fSamp.samples) == 0 {
			t.Fatalf("byInstrs=%t: no samples recorded", byInstrs)
		}
		if !reflect.DeepEqual(fSamp.samples, rSamp.samples) {
			t.Errorf("byInstrs=%t: sample streams differ (fast %d, ref %d)",
				byInstrs, len(fSamp.samples), len(rSamp.samples))
		}
		if !byInstrs && fSamp.skipped == 0 {
			t.Error("fast engine never used the batched skip path")
		}
		if rSamp.skipped != 0 {
			t.Error("reference engine must deliver every event, not skip")
		}
	}
}

// TestPlainObserverSeesEveryAccess pins the contract that an observer
// which is not a GapSampler — the sharing verifier, the ground-truth
// recorder — still receives every access from the fast engine.
func TestPlainObserverSeesEveryAccess(t *testing.T) {
	p, _, _ := buildKitchenSink()
	fast, ref := machinesBoth(t, p, cache.DefaultConfig(), 1)
	fRec, rRec := &observerRecorder{}, &observerRecorder{}
	fast.Observer, ref.Observer = fRec, rRec
	fs, rs := runBothPhases(t, fast, ref, [][]ThreadSpec{nil})
	if fs[0].MemOps != uint64(len(fRec.events)) {
		t.Errorf("fast engine delivered %d events for %d memops", len(fRec.events), fs[0].MemOps)
	}
	if len(fRec.events) != len(rRec.events) {
		t.Errorf("event counts differ: fast %d, ref %d", len(fRec.events), len(rRec.events))
	}
	_ = rs
}
