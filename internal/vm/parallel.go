package vm

// parallel.go is the parallel execution engine (Config.Parallel): each
// thread of a multi-thread phase advances one quantum on its own
// goroutine against thread-private views of the shared state, then a
// barrier folds the private state back in fixed thread/core order:
//
//   - memory writes that missed the frozen shared page map land in
//     per-thread overlay pages, merged at the barrier (mem.View);
//   - private cache levels mutate freely, while every shared-level and
//     directory mutation is queued and applied at the barrier in core
//     order (cache.ParallelSession);
//   - observer events are delivered inline from the per-thread
//     goroutines, which the engine only allows for observers that declare
//     themselves ParallelSafe (per-thread sampler state).
//
// The resulting semantics are deterministic lax coherence: cross-core
// effects become visible at quantum boundaries, in a fixed merge order
// that does not depend on goroutine scheduling. Profiles, statistics, and
// tables are therefore byte-identical at any Workers count and any
// GOMAXPROCS — the differential suite in parallel_differential_test.go
// gates this — but are a distinct (equally deterministic) interleaving
// semantics from the sequential engine, whose coherence is visible
// per-access.
//
// Phases the protocol cannot express fall back to the sequential engine,
// with the reason recorded in ParallelInfo: a single runnable thread,
// threads sharing a core (their private levels would race), heap
// allocation reachable from a thread root (the object table and page map
// must stay frozen), or an observer that is not ParallelSafe.

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ParallelInfo reports what the parallel engine did across a machine's
// runs. It is diagnostic only — deliberately not part of Stats, so
// sequential and parallel runs of eligible workloads can compare Stats
// wholesale.
type ParallelInfo struct {
	// Engaged reports whether any phase ran on the parallel engine.
	Engaged bool
	// Rounds counts quantum barriers executed.
	Rounds uint64
	// Fallbacks records, per multi-thread phase that was routed to the
	// sequential engine despite Config.Parallel, why it was ineligible.
	Fallbacks []string
}

// ParallelInfo returns the engine's record for this machine.
func (m *Machine) ParallelInfo() ParallelInfo { return m.parInfo }

// parallelIneligible reports why the current thread set cannot run on the
// parallel engine ("" if it can).
func (m *Machine) parallelIneligible(specs []ThreadSpec) string {
	var seen uint64
	for _, sp := range specs {
		if sp.Core >= 64 {
			return "core index beyond engine limit"
		}
		if seen&(1<<uint(sp.Core)) != 0 {
			return "threads share a core"
		}
		seen |= 1 << uint(sp.Core)
	}
	if m.Observer != nil {
		ps, ok := m.Observer.(ParallelSafeObserver)
		if !ok || !ps.ParallelSafe() {
			return "observer is not parallel-safe"
		}
	}
	if m.allocReach == nil {
		m.computeAllocReach()
	}
	for _, sp := range specs {
		if m.allocReach[sp.Fn] {
			return "heap allocation reachable from thread root"
		}
	}
	return ""
}

// computeAllocReach computes, per function, whether an Alloc is reachable
// through the static call graph (Call targets are direct, so the graph is
// exact). Fixed-point propagation over the compiled code; computed once
// per machine.
func (m *Machine) computeAllocReach() {
	n := len(m.code)
	reach := make([]bool, n)
	calls := make([][]int32, n)
	for fi, code := range m.code {
		for i := range code {
			switch code[i].op {
			case isa.Alloc:
				reach[fi] = true
			case isa.Call:
				calls[fi] = append(calls[fi], code[i].target)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fi := range reach {
			if reach[fi] {
				continue
			}
			for _, callee := range calls[fi] {
				if reach[callee] {
					reach[fi] = true
					changed = true
					break
				}
			}
		}
	}
	m.allocReach = reach
}

// runParallel executes the current thread set with one goroutine per
// runnable thread per quantum round, bounded by Config.Workers.
func (m *Machine) runParallel() (Stats, error) {
	m.parInfo.Engaged = true
	// Freeze the shared page map: with every allocated range backed, the
	// concurrent quanta never mutate the map itself, and overlay pages
	// only appear for stray accesses outside every object.
	m.Space.MaterializeObjectPages()
	if m.parSession == nil {
		m.parSession = m.Caches.NewParallelSession()
	}
	for len(m.parViews) < len(m.Threads) {
		m.parViews = append(m.parViews, m.Space.NewView())
	}
	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	quantum := m.cfg.Quantum
	ns := make([]uint64, len(m.Threads))
	errs := make([]error, len(m.Threads))
	sem := make(chan struct{}, workers)
	var executed uint64
	for {
		alive := false
		var wg sync.WaitGroup
		for _, t := range m.Threads {
			if t.Halted {
				continue
			}
			alive = true
			t := t
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				ns[t.ID], errs[t.ID] = m.stepThreadPar(t, quantum, m.parViews[t.ID], m.parSession.Core(t.Core))
				<-sem
			}()
		}
		if !alive {
			break
		}
		wg.Wait()

		// Barrier: fold thread-private state back in fixed thread order,
		// then shared cache/directory ops in fixed core order.
		for _, t := range m.Threads {
			m.Space.MergeView(m.parViews[t.ID])
		}
		m.parSession.Merge()
		m.parInfo.Rounds++

		for _, t := range m.Threads {
			if errs[t.ID] != nil {
				return Stats{}, fmt.Errorf("thread %d: %w", t.ID, errs[t.ID])
			}
			executed += ns[t.ID]
			ns[t.ID] = 0
		}
		if executed > m.cfg.MaxInstrs {
			return Stats{}, fmt.Errorf("instruction budget exceeded (%d); runaway program?", m.cfg.MaxInstrs)
		}
	}
	return m.stats(), nil
}

// stepThreadPar runs up to quantum micro-ops of one thread against its
// memory view and core cache handle. It mirrors stepThreadFast case by
// case; the differences are the space/cache indirection, and that Alloc
// is an error (eligibility proved it unreachable).
func (m *Machine) stepThreadPar(t *Thread, quantum int, space *mem.View, caches *cache.CoreCache) (uint64, error) {
	obs := m.Observer
	gap := m.gap
	gapByInstr := m.gapByInstr
	winSampler := m.winSampler
	statW := uint64(m.cfg.StatWindow)
	code := m.code[t.fn]
	pc := t.pc
	regs := &t.Regs
	instrs := t.Instrs
	cycles := t.Cycles
	memOps := t.MemOps
	sampSkip := t.sampSkip
	pendSkip := t.pendSkip
	var done uint64

	for int(done) < quantum {
		u := &code[pc]
		pc++
		done++
		instrs++
		cycles += uint64(u.cost)

		switch u.op {
		case isa.Nop:
		case isa.MovI:
			regs[u.rd] = u.imm
		case isa.Mov:
			regs[u.rd] = regs[u.rs1]
		case isa.Add:
			regs[u.rd] = regs[u.rs1] + regs[u.rs2]
		case isa.AddI:
			regs[u.rd] = regs[u.rs1] + u.imm
		case isa.Sub:
			regs[u.rd] = regs[u.rs1] - regs[u.rs2]
		case isa.Mul:
			regs[u.rd] = regs[u.rs1] * regs[u.rs2]
		case isa.MulI:
			regs[u.rd] = regs[u.rs1] * u.imm
		case isa.Div:
			if d := regs[u.rs2]; d != 0 {
				regs[u.rd] = regs[u.rs1] / d
			} else {
				regs[u.rd] = 0
			}
		case isa.Rem:
			if d := regs[u.rs2]; d != 0 {
				regs[u.rd] = regs[u.rs1] % d
			} else {
				regs[u.rd] = 0
			}
		case isa.And:
			regs[u.rd] = regs[u.rs1] & regs[u.rs2]
		case isa.Or:
			regs[u.rd] = regs[u.rs1] | regs[u.rs2]
		case isa.Xor:
			regs[u.rd] = regs[u.rs1] ^ regs[u.rs2]
		case isa.Shl:
			regs[u.rd] = regs[u.rs1] << (uint64(regs[u.rs2]) & 63)
		case isa.Shr:
			regs[u.rd] = regs[u.rs1] >> (uint64(regs[u.rs2]) & 63)
		case isa.FAdd:
			regs[u.rd] = fbits(fval(regs[u.rs1]) + fval(regs[u.rs2]))
		case isa.FSub:
			regs[u.rd] = fbits(fval(regs[u.rs1]) - fval(regs[u.rs2]))
		case isa.FMul:
			regs[u.rd] = fbits(fval(regs[u.rs1]) * fval(regs[u.rs2]))
		case isa.FDiv:
			regs[u.rd] = fbits(fval(regs[u.rs1]) / fval(regs[u.rs2]))
		case isa.FSqrt:
			regs[u.rd] = fbits(math.Sqrt(fval(regs[u.rs1])))
		case isa.CvtIF:
			regs[u.rd] = fbits(float64(regs[u.rs1]))
		case isa.CvtFI:
			regs[u.rd] = int64(fval(regs[u.rs1]))

		case isa.Load, isa.Store:
			ea := uint64(regs[u.rs1] + regs[u.rs2]*u.scale + u.disp)
			size := int(u.size)
			write := u.op == isa.Store
			if write {
				space.WriteInt(ea, size, regs[u.rd])
			}
			if t.ffSkip > 0 {
				t.ffSkip--
				cycles += t.estLat
				memOps++
				t.statSkipped++
				t.statSkipCycles += t.estLat
				if !write {
					regs[u.rd] = space.ReadInt(ea, size)
				}
				if sampSkip > 0 {
					sampSkip--
					pendSkip++
				}
				break
			}
			res := caches.Access(u.ip, ea, size, write)
			cycles += uint64(res.Latency)
			memOps++
			if winSampler != nil {
				t.simLatSum += uint64(res.Latency)
				t.simAccesses++
			}
			if !write {
				regs[u.rd] = space.ReadInt(ea, size)
			}
			if obs != nil {
				deliver := true
				if gap != nil {
					if gapByInstr {
						deliver = instrs >= t.instrGate
					} else if sampSkip > 0 {
						sampSkip--
						pendSkip++
						deliver = false
					}
				}
				if deliver {
					t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
					t.sampSkip, t.pendSkip = sampSkip, pendSkip
					m.deliverAccess(t, u.ip, ea, u.size, write, res)
					sampSkip, pendSkip = t.sampSkip, t.pendSkip
					if winSampler != nil && t.simAccesses > 0 {
						if ff := winSampler.WindowPlan(t.ID, statW); ff > 0 {
							t.ffSkip = ff
							t.estLat = t.simLatSum / t.simAccesses
							t.statWindows++
							caches.Age(ff)
						}
					}
				}
			}

		case isa.Jmp:
			pc = int(u.target)
		case isa.Br:
			if u.cmp.Eval(regs[u.rs1], regs[u.rs2]) {
				pc = int(u.target)
			}
		case isa.Call:
			fr := frame{fn: t.fn, pc: pc, callIP: u.ip}
			fr.regs = *regs
			t.frames = append(t.frames, fr)
			t.callPath = append(t.callPath, u.ip)
			t.ctxStack = append(t.ctxStack, mixCtx(t.ctx(), u.ip))
			t.fn = int(u.target)
			pc = 0
			code = m.code[t.fn]
		case isa.Ret:
			if len(t.frames) == 0 {
				// Returning from the thread's root function halts it.
				t.Halted = true
				t.pc = pc
				t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
				t.sampSkip, t.pendSkip = sampSkip, pendSkip
				m.flushSkips(t)
				return done, nil
			}
			fr := t.frames[len(t.frames)-1]
			t.frames = t.frames[:len(t.frames)-1]
			t.callPath = t.callPath[:len(t.callPath)-1]
			t.ctxStack = t.ctxStack[:len(t.ctxStack)-1]
			ret := regs[isa.RetReg]
			*regs = fr.regs
			regs[isa.RetReg] = ret
			t.fn, pc = fr.fn, fr.pc
			code = m.code[t.fn]
		case isa.Halt:
			t.Halted = true
			t.pc = pc
			t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
			t.sampSkip, t.pendSkip = sampSkip, pendSkip
			m.flushSkips(t)
			return done, nil

		case isa.Alloc:
			t.pc = pc
			t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
			t.sampSkip, t.pendSkip = sampSkip, pendSkip
			m.flushSkips(t)
			return done, fmt.Errorf("allocation in parallel phase at %#x", u.ip)
		case isa.GAddr:
			regs[u.rd] = u.imm

		default:
			t.pc = pc
			t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
			t.sampSkip, t.pendSkip = sampSkip, pendSkip
			m.flushSkips(t)
			return done, fmt.Errorf("unimplemented opcode %s at %#x", u.op, u.ip)
		}
		regs[isa.RZ] = 0
	}
	t.pc = pc
	t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
	t.sampSkip, t.pendSkip = sampSkip, pendSkip
	m.flushSkips(t)
	return done, nil
}
