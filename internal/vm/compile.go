package vm

// compile.go is the block-compiled execution engine. NewMachine
// pre-decodes every function into a flat array of resolved micro-ops
// (cop): block lists are concatenated in order so fallthrough is just
// pc+1, branch targets become flat indices, global bases and
// allocation-site types are resolved once, and each op carries its base
// cost. The executor (stepThreadFast) then runs a tight fetch loop with
// no per-instruction table lookups or block chasing.
//
// The engine is an optimization, not a semantic variant: it executes the
// same instructions in the same order with the same costs as the
// reference interpreter (stepThread), so every observable — register
// values, memory, cache state transitions, observer event streams, cycle
// accounts — is bit-identical. Config.Reference forces the interpreter;
// the differential tests in fastpath_test.go hold the two engines equal.

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/prog"
)

// cop is one pre-decoded micro-op. Operand fields are copied out of
// isa.Instr; target is overloaded per op: the flat uop index of the
// branch target (Jmp/Br), the callee function id (Call), or the
// allocation-site type id (Alloc, -1 if untyped). GAddr's imm is the
// resolved global base address.
type cop struct {
	op           isa.Op
	cmp          isa.Cond
	rd, rs1, rs2 isa.Reg
	size         uint8
	cost         uint8
	target       int32
	imm          int64
	disp         int64
	scale        int64 // EffScale, normalized at compile time
	ip           uint64
}

// compileFunc flattens one function into a cop array. Concatenating the
// blocks in order makes fallthrough implicit (Finalize guarantees every
// block is non-empty and the function's last block ends in a
// terminator, so pc never runs past the end through fallthrough).
func compileFunc(p *prog.Program, f *prog.Func, globalBase []uint64) []cop {
	starts := make([]int32, len(f.Blocks))
	n := 0
	for bi, b := range f.Blocks {
		starts[bi] = int32(n)
		n += len(b.Instrs)
	}
	code := make([]cop, 0, n)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			u := cop{
				op: in.Op, cmp: in.Cmp, rd: in.Rd, rs1: in.Rs1, rs2: in.Rs2,
				size: in.Size, cost: uint8(opCost[in.Op]),
				imm: in.Imm, disp: in.Disp, scale: in.EffScale(), ip: in.IP,
			}
			switch in.Op {
			case isa.Jmp, isa.Br:
				u.target = starts[in.Target]
			case isa.Call:
				u.target = int32(in.Fn)
			case isa.GAddr:
				u.imm = int64(globalBase[in.Imm])
			case isa.Alloc:
				tid, ok := p.AllocSiteType[in.IP]
				if !ok {
					tid = -1
				}
				u.target = int32(tid)
			}
			code = append(code, u)
		}
	}
	return code
}

// compileProgram compiles every function against the loaded global bases.
func compileProgram(p *prog.Program, globalBase []uint64) [][]cop {
	code := make([][]cop, len(p.Funcs))
	for fi, f := range p.Funcs {
		code[fi] = compileFunc(p, f, globalBase)
	}
	return code
}

// GapSampler is an AccessObserver that can tell the machine, after each
// delivered event, how many upcoming events it will certainly ignore.
// The machine then runs those accesses through a no-copy-out path —
// memory, cache, and cycle effects happen as always, but no MemEvent is
// materialized — and squares the books before the next delivery.
//
// AccessGap returns either a count of future *accesses* that need no
// delivery (byInstrs false; the machine reports them in bulk via
// SkipAccesses before the next OnAccess), or an absolute retired-
// *instruction* threshold below which accesses need no delivery at all
// (byInstrs true; nothing is reported back — the sampler's state does
// not depend on sub-threshold events).
type GapSampler interface {
	AccessObserver
	AccessGap(tid int) (gap uint64, byInstrs bool)
	SkipAccesses(tid int, n uint64)
}

// WindowSampler is a GapSampler that additionally understands sampled-
// window statistical simulation (Config.StatWindow). After each delivered
// sample, WindowPlan returns how many of the upcoming skippable accesses
// the machine may fast-forward — run with exact program semantics but
// estimated memory latency, without walking the cache hierarchy — so that
// the trailing `window` accesses before the next sample still run the
// full cache model as warmup. A sampler returns 0 to demand exact
// simulation of the whole gap (e.g. in instruction-gated mode).
type WindowSampler interface {
	GapSampler
	WindowPlan(tid int, window uint64) (fastForward uint64)
}

// ParallelSafeObserver marks an AccessObserver whose OnAccess may be
// invoked concurrently from per-thread interpreter goroutines, provided
// events for any single tid arrive in order from one goroutine at a time.
// The parallel engine falls back to sequential execution for observers
// that do not implement it (or return false).
type ParallelSafeObserver interface {
	AccessObserver
	ParallelSafe() bool
}

// deliverAccess materializes the full MemEvent for one access, flushes
// any batched skips first so a gap sampler's counters are exact, and
// re-arms the thread's skip budget from the sampler afterwards.
func (m *Machine) deliverAccess(t *Thread, ip, ea uint64, size uint8, write bool, res cache.Result) {
	if m.gap != nil && !m.gapByInstr && t.pendSkip > 0 {
		m.gap.SkipAccesses(t.ID, t.pendSkip)
		t.pendSkip = 0
	}
	ev := &t.evScratch
	ev.TID = t.ID
	ev.IP = ip
	ev.EA = ea
	ev.Size = size
	ev.Write = write
	ev.Latency = res.Latency
	ev.Level = res.Level
	ev.Cycle = t.Now()
	ev.Instrs = t.Instrs
	ev.Ctx = t.ctx()
	t.OverheadCycles += m.Observer.OnAccess(ev)
	if m.gap != nil {
		gap, _ := m.gap.AccessGap(t.ID)
		if m.gapByInstr {
			t.instrGate = gap
		} else {
			t.sampSkip = gap
		}
	}
}

// flushSkips reports batched skipped accesses to the gap sampler. Called
// on every exit from stepThreadFast so the sampler's counters are exact
// whenever the machine is not mid-quantum (quantum rotation, thread
// halt, end of a phase).
func (m *Machine) flushSkips(t *Thread) {
	if m.gap != nil && !m.gapByInstr && t.pendSkip > 0 {
		m.gap.SkipAccesses(t.ID, t.pendSkip)
		t.pendSkip = 0
	}
}

// stepThreadFast runs up to quantum micro-ops of one thread on the
// compiled code. It mirrors stepThread case by case; the differences are
// mechanical (flat pc instead of block/index, pre-resolved operands) and
// the batched observer delivery on Load/Store.
func (m *Machine) stepThreadFast(t *Thread, quantum int) (uint64, error) {
	space := m.Space
	caches := m.Caches
	obs := m.Observer
	gap := m.gap
	gapByInstr := m.gapByInstr
	winSampler := m.winSampler
	statW := uint64(m.cfg.StatWindow)
	code := m.code[t.fn]
	pc := t.pc
	regs := &t.Regs
	// The per-instruction accounts accumulate in locals (registers) and
	// are stored back on every exit and before any external call that
	// could observe the thread; the reference engine updates the fields
	// directly, so flush points are everywhere an observer runs.
	instrs := t.Instrs
	cycles := t.Cycles
	memOps := t.MemOps
	sampSkip := t.sampSkip
	pendSkip := t.pendSkip
	var done uint64

	for int(done) < quantum {
		u := &code[pc]
		pc++
		done++
		instrs++
		cycles += uint64(u.cost)

		switch u.op {
		case isa.Nop:
		case isa.MovI:
			regs[u.rd] = u.imm
		case isa.Mov:
			regs[u.rd] = regs[u.rs1]
		case isa.Add:
			regs[u.rd] = regs[u.rs1] + regs[u.rs2]
		case isa.AddI:
			regs[u.rd] = regs[u.rs1] + u.imm
		case isa.Sub:
			regs[u.rd] = regs[u.rs1] - regs[u.rs2]
		case isa.Mul:
			regs[u.rd] = regs[u.rs1] * regs[u.rs2]
		case isa.MulI:
			regs[u.rd] = regs[u.rs1] * u.imm
		case isa.Div:
			if d := regs[u.rs2]; d != 0 {
				regs[u.rd] = regs[u.rs1] / d
			} else {
				regs[u.rd] = 0
			}
		case isa.Rem:
			if d := regs[u.rs2]; d != 0 {
				regs[u.rd] = regs[u.rs1] % d
			} else {
				regs[u.rd] = 0
			}
		case isa.And:
			regs[u.rd] = regs[u.rs1] & regs[u.rs2]
		case isa.Or:
			regs[u.rd] = regs[u.rs1] | regs[u.rs2]
		case isa.Xor:
			regs[u.rd] = regs[u.rs1] ^ regs[u.rs2]
		case isa.Shl:
			regs[u.rd] = regs[u.rs1] << (uint64(regs[u.rs2]) & 63)
		case isa.Shr:
			regs[u.rd] = regs[u.rs1] >> (uint64(regs[u.rs2]) & 63)
		case isa.FAdd:
			regs[u.rd] = fbits(fval(regs[u.rs1]) + fval(regs[u.rs2]))
		case isa.FSub:
			regs[u.rd] = fbits(fval(regs[u.rs1]) - fval(regs[u.rs2]))
		case isa.FMul:
			regs[u.rd] = fbits(fval(regs[u.rs1]) * fval(regs[u.rs2]))
		case isa.FDiv:
			regs[u.rd] = fbits(fval(regs[u.rs1]) / fval(regs[u.rs2]))
		case isa.FSqrt:
			regs[u.rd] = fbits(math.Sqrt(fval(regs[u.rs1])))
		case isa.CvtIF:
			regs[u.rd] = fbits(float64(regs[u.rs1]))
		case isa.CvtFI:
			regs[u.rd] = int64(fval(regs[u.rs1]))

		case isa.Load, isa.Store:
			ea := uint64(regs[u.rs1] + regs[u.rs2]*u.scale + u.disp)
			size := int(u.size)
			write := u.op == isa.Store
			if write {
				space.WriteInt(ea, size, regs[u.rd])
			}
			if t.ffSkip > 0 {
				// Statistical fast-forward: the write above and the read
				// below keep program semantics exact; the cache walk is
				// replaced by the thread's running-mean latency, and the
				// access is batched as a sampler skip like any other
				// non-sample access.
				t.ffSkip--
				cycles += t.estLat
				memOps++
				t.statSkipped++
				t.statSkipCycles += t.estLat
				if !write {
					regs[u.rd] = space.ReadInt(ea, size)
				}
				if sampSkip > 0 {
					sampSkip--
					pendSkip++
				}
				break
			}
			res := caches.Access(t.Core, u.ip, ea, size, write)
			cycles += uint64(res.Latency)
			memOps++
			if winSampler != nil {
				t.simLatSum += uint64(res.Latency)
				t.simAccesses++
			}
			if !write {
				regs[u.rd] = space.ReadInt(ea, size)
			}
			if obs != nil {
				deliver := true
				if gap != nil {
					if gapByInstr {
						deliver = instrs >= t.instrGate
					} else if sampSkip > 0 {
						sampSkip--
						pendSkip++
						deliver = false
					}
				}
				if deliver {
					t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
					t.sampSkip, t.pendSkip = sampSkip, pendSkip
					m.deliverAccess(t, u.ip, ea, u.size, write, res)
					sampSkip, pendSkip = t.sampSkip, t.pendSkip
					if winSampler != nil && t.simAccesses > 0 {
						if ff := winSampler.WindowPlan(t.ID, statW); ff > 0 {
							t.ffSkip = ff
							t.estLat = t.simLatSum / t.simAccesses
							t.statWindows++
							caches.Age(t.Core, ff)
						}
					}
				}
			}

		case isa.Jmp:
			pc = int(u.target)
		case isa.Br:
			if u.cmp.Eval(regs[u.rs1], regs[u.rs2]) {
				pc = int(u.target)
			}
		case isa.Call:
			fr := frame{fn: t.fn, pc: pc, callIP: u.ip}
			fr.regs = *regs
			t.frames = append(t.frames, fr)
			t.callPath = append(t.callPath, u.ip)
			t.ctxStack = append(t.ctxStack, mixCtx(t.ctx(), u.ip))
			t.fn = int(u.target)
			pc = 0
			code = m.code[t.fn]
		case isa.Ret:
			if len(t.frames) == 0 {
				// Returning from the thread's root function halts it.
				t.Halted = true
				t.pc = pc
				t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
				t.sampSkip, t.pendSkip = sampSkip, pendSkip
				m.flushSkips(t)
				return done, nil
			}
			fr := t.frames[len(t.frames)-1]
			t.frames = t.frames[:len(t.frames)-1]
			t.callPath = t.callPath[:len(t.callPath)-1]
			t.ctxStack = t.ctxStack[:len(t.ctxStack)-1]
			ret := regs[isa.RetReg]
			*regs = fr.regs
			regs[isa.RetReg] = ret
			t.fn, pc = fr.fn, fr.pc
			code = m.code[t.fn]
		case isa.Halt:
			t.Halted = true
			t.pc = pc
			t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
			t.sampSkip, t.pendSkip = sampSkip, pendSkip
			m.flushSkips(t)
			return done, nil

		case isa.Alloc:
			size := uint64(regs[u.rs1])
			obj := space.AllocHeap(size, u.ip, t.callPath, int(u.target))
			regs[u.rd] = int64(obj.Base)
			if m.AllocObserver != nil {
				t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
				m.AllocObserver.OnAlloc(t.ID, obj)
			}
		case isa.GAddr:
			regs[u.rd] = u.imm

		default:
			t.pc = pc
			t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
			t.sampSkip, t.pendSkip = sampSkip, pendSkip
			m.flushSkips(t)
			return done, fmt.Errorf("unimplemented opcode %s at %#x", u.op, u.ip)
		}
		regs[isa.RZ] = 0
	}
	t.pc = pc
	t.Instrs, t.Cycles, t.MemOps = instrs, cycles, memOps
	t.sampSkip, t.pendSkip = sampSkip, pendSkip
	m.flushSkips(t)
	return done, nil
}
