package vm

// Differential testing of loads/stores: random access sequences executed
// by the interpreter against a flat reference model of memory.

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

func TestDifferentialMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	sizes := []int{1, 2, 4, 8}

	for round := 0; round < 50; round++ {
		const region = 512 // bytes of the global the program may touch
		b := prog.NewBuilder("memdiff")
		g := b.Global("mem", region, -1)
		b.Func("main", "m.c")
		base := b.R()
		b.GAddr(base, g)
		val := b.R()

		// Reference memory: byte-accurate model of the region.
		ref := make([]byte, region)
		read := func(off, size int) int64 {
			var v uint64
			for i := size - 1; i >= 0; i-- {
				v = v<<8 | uint64(ref[off+i])
			}
			return int64(v)
		}
		write := func(off, size int, v int64) {
			u := uint64(v)
			for i := 0; i < size; i++ {
				ref[off+i] = byte(u)
				u >>= 8
			}
		}

		// Emit a random store/load sequence; the reference tracks the
		// stores, and the whole region is compared byte-for-byte at the
		// end.
		for k := 0; k < 60; k++ {
			size := sizes[rng.Intn(len(sizes))]
			off := rng.Intn(region - 8)
			if rng.Intn(2) == 0 {
				v := rng.Int63() - rng.Int63()
				b.MovI(val, v)
				b.Store(val, base, isa.RZ, 1, int64(off), size)
				write(off, size, v)
			} else {
				b.Load(val, base, isa.RZ, 1, int64(off), size)
				_ = read // loads are exercised; correctness is covered by the final sweep
			}
		}
		b.Halt()
		p := b.MustProgram()

		m, err := NewMachine(p, testCacheConfig(), 1, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(nil); err != nil {
			t.Fatal(err)
		}
		gBase := m.GlobalBase(g)
		// Full-region comparison byte by byte.
		for off := 0; off < region; off++ {
			got := byte(m.Space.ReadInt(gBase+uint64(off), 1))
			if got != ref[off] {
				t.Fatalf("round %d: byte %d = %#x, reference %#x", round, off, got, ref[off])
			}
		}
	}
}
