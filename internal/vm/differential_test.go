package vm

// Differential testing of the interpreter: random straight-line programs
// over the ALU subset are executed both by the machine and by a direct
// Go-side evaluator; the full register files must agree. This is the
// standard compilers trick for catching opcode-semantics drift without
// hand-writing a case per instruction.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// aluOps are the opcodes the generator draws from.
var aluOps = []isa.Op{
	isa.MovI, isa.Mov, isa.Add, isa.AddI, isa.Sub, isa.Mul, isa.MulI,
	isa.Div, isa.Rem, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
	isa.FAdd, isa.FSub, isa.FMul, isa.FDiv, isa.FSqrt, isa.CvtIF, isa.CvtFI,
}

// evalRef interprets one ALU instruction against a reference register
// file, mirroring the language of the ISA documentation rather than the
// interpreter's code.
func evalRef(regs *[isa.NumRegs]int64, in isa.Instr) {
	a, b := regs[in.Rs1], regs[in.Rs2]
	var out int64
	switch in.Op {
	case isa.MovI:
		out = in.Imm
	case isa.Mov:
		out = a
	case isa.Add:
		out = a + b
	case isa.AddI:
		out = a + in.Imm
	case isa.Sub:
		out = a - b
	case isa.Mul:
		out = a * b
	case isa.MulI:
		out = a * in.Imm
	case isa.Div:
		if b != 0 {
			out = a / b
		}
	case isa.Rem:
		if b != 0 {
			out = a % b
		}
	case isa.And:
		out = a & b
	case isa.Or:
		out = a | b
	case isa.Xor:
		out = a ^ b
	case isa.Shl:
		out = a << (uint64(b) & 63)
	case isa.Shr:
		out = a >> (uint64(b) & 63)
	case isa.FAdd:
		out = f2i(i2f(a) + i2f(b))
	case isa.FSub:
		out = f2i(i2f(a) - i2f(b))
	case isa.FMul:
		out = f2i(i2f(a) * i2f(b))
	case isa.FDiv:
		out = f2i(i2f(a) / i2f(b))
	case isa.FSqrt:
		out = f2i(math.Sqrt(i2f(a)))
	case isa.CvtIF:
		out = f2i(float64(a))
	case isa.CvtFI:
		out = int64(i2f(a))
	}
	regs[in.Rd] = out
	regs[isa.RZ] = 0
}

func i2f(v int64) float64 { return math.Float64frombits(uint64(v)) }
func f2i(f float64) int64 { return int64(math.Float64bits(f)) }

// sameValue treats NaN bit patterns of the same kind as equal (Go's
// math.Sqrt of negative values etc. produce deterministic NaNs, but we
// compare bit-exactly anyway — the interpreter and reference share the
// host FPU).
func sameValue(x, y int64) bool { return x == y }

func TestDifferentialALU(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	const rounds = 200
	const instrsPerRound = 120

	for round := 0; round < rounds; round++ {
		b := prog.NewBuilder("difftest")
		b.Func("main", "d.c")

		var ref [isa.NumRegs]int64
		// Seed a few registers with interesting values.
		seeds := []int64{
			0, 1, -1, math.MaxInt64, math.MinInt64,
			f2i(1.5), f2i(-2.25), f2i(0.0), rng.Int63(), -rng.Int63(),
		}
		for ri, v := range seeds {
			rd := isa.Reg(8 + ri)
			b.Emit(isa.Instr{Op: isa.MovI, Rd: rd, Imm: v})
			ref[rd] = v
		}

		regRange := func() isa.Reg { return isa.Reg(rng.Intn(24)) } // includes r0 and seeded regs
		for k := 0; k < instrsPerRound; k++ {
			op := aluOps[rng.Intn(len(aluOps))]
			in := isa.Instr{
				Op:  op,
				Rd:  isa.Reg(rng.Intn(24)),
				Rs1: regRange(),
				Rs2: regRange(),
				Imm: rng.Int63() - rng.Int63(),
			}
			b.Emit(in)
			evalRef(&ref, in)
		}
		b.Halt()
		p := b.MustProgram()

		m, err := NewMachine(p, testCacheConfig(), 1, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := m.Threads[0].Regs
		for r := 0; r < isa.NumRegs; r++ {
			if !sameValue(got[r], ref[r]) {
				t.Fatalf("round %d: r%d = %#x, reference %#x\nprogram:\n%s",
					round, r, got[r], ref[r], p.Disasm())
			}
		}
	}
}

// TestDifferentialBranches runs random short branchy programs against a
// reference that interprets block-by-block, exercising Br/Jmp semantics
// and the fallthrough rule.
func TestDifferentialBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	conds := []isa.Cond{isa.Eq, isa.Ne, isa.Lt, isa.Le, isa.Gt, isa.Ge}

	for round := 0; round < 200; round++ {
		// Build a program of nBlocks straight-line blocks; each block
		// adds a distinct constant to r8, then branches conditionally
		// *forward* (guaranteeing termination) or falls through; the
		// last block halts.
		nBlocks := 4 + rng.Intn(5)
		type blockSpec struct {
			add    int64
			cmp    isa.Cond
			rs1    isa.Reg
			rs2    isa.Reg
			target int
		}
		specs := make([]blockSpec, nBlocks)
		for i := range specs {
			specs[i] = blockSpec{
				add:    int64(rng.Intn(1000)),
				cmp:    conds[rng.Intn(len(conds))],
				rs1:    isa.Reg(9 + rng.Intn(2)),
				rs2:    isa.Reg(9 + rng.Intn(2)),
				target: i + 1 + rng.Intn(nBlocks-i), // forward, possibly past the end? clamp below
			}
			if specs[i].target >= nBlocks {
				specs[i].target = nBlocks - 1
			}
		}

		b := prog.NewBuilder("branchy")
		b.Func("main", "b.c")
		r9init, r10init := int64(rng.Intn(5)), int64(rng.Intn(5))
		b.MovI(9, r9init)
		b.MovI(10, r10init)
		b.MovI(8, 0)
		b.StartBlock()
		for i, sp := range specs {
			if i > 0 {
				b.StartBlock()
			}
			b.AddI(8, 8, sp.add)
			if i < nBlocks-1 {
				b.Br(sp.cmp, sp.rs1, sp.rs2, sp.target+1) // +1: block 0 is the preamble
			}
		}
		b.Halt()
		p := b.MustProgram()

		// Reference walk over the same specs.
		var refSum int64
		regs := map[isa.Reg]int64{9: r9init, 10: r10init}
		blk := 0
		for {
			sp := specs[blk]
			refSum += sp.add
			if blk == nBlocks-1 {
				break
			}
			if sp.cmp.Eval(regs[sp.rs1], regs[sp.rs2]) {
				blk = sp.target
			} else {
				blk++
			}
		}

		m, err := NewMachine(p, testCacheConfig(), 1, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := m.Threads[0].Regs[8]; got != refSum {
			t.Fatalf("round %d: r8 = %d, reference %d\n%s", round, got, refSum, p.Disasm())
		}
	}
}
