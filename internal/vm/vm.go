// Package vm interprets synthetic programs, producing the memory-access
// stream that the profiler observes.
//
// The machine executes one or more threads round-robin in fixed
// instruction quanta, each thread pinned to a simulated core of the cache
// hierarchy. It keeps per-thread cycle accounts: application cycles (what
// the program costs by itself) and overhead cycles (what an attached
// observer — the PEBS-style sampler — charges per event). Because
// execution is deterministic, one profiled run yields both the
// "original execution time" and the "with profiler" time the paper
// reports: the wall clock is the max over threads of app cycles, with and
// without the overhead account.
//
// # How the fast path preserves determinism
//
// The machine has two execution engines. The reference engine
// (Config.Reference) interprets isa.Instr values block by block; the
// default engine runs code block-compiled at NewMachine time
// (compile.go) and, when the observer is a GapSampler, skips
// materializing MemEvents for accesses the sampler has promised to
// ignore. Both engines retire the same instructions in the same order
// with the same costs against the same memory and cache state, and a
// skipped event changes no sampler-visible state (the skip count is
// reported in bulk before the next delivered event), so profiles,
// statistics, and observer event streams are bit-identical between the
// two — the fast path changes how fast the simulation runs, never what
// it computes. The differential tests in fastpath_test.go enforce this.
package vm

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// MemEvent describes one executed data memory access. It carries exactly
// the fields PEBS-LL exposes per sample — IP, effective address, latency,
// and the serving data source — plus the thread and its local time.
type MemEvent struct {
	TID     int
	IP      uint64
	EA      uint64
	Size    uint8
	Write   bool
	Latency uint32
	Level   uint8 // 1=L1 .. n; n+1 = memory
	Cycle   uint64
	// Instrs is the thread's retired-instruction count at this access;
	// instruction-based samplers (AMD IBS) period off it instead of off
	// the memory-access count.
	Instrs uint64
	// Ctx is a hash of the thread's calling context (the stack of
	// call-site IPs). StructSlim's stream assumption — one instruction
	// accesses one field — holds per calling context (Section 4.2), so
	// streams are keyed by (IP, Ctx, data structure).
	Ctx uint64
}

// AccessObserver is notified of every data memory access. The returned
// value is extra cycles to charge the thread's overhead account (e.g. the
// cost of a sampling interrupt when the observer decides to take a
// sample). Observers must be cheap: they run inline in the interpreter.
// The event is only valid for the duration of the call — the machine
// reuses one event across accesses so the hot path does not allocate;
// observers that keep data must copy it out.
type AccessObserver interface {
	OnAccess(ev *MemEvent) (overheadCycles uint64)
}

// AllocObserver is notified of heap allocations (the interposed-malloc
// hook used by data-centric attribution).
type AllocObserver interface {
	OnAlloc(tid int, obj *mem.Object)
}

// ThreadSpec launches one thread: the function to run, up to six integer
// arguments placed in r1..r6, and the core the thread is pinned to.
type ThreadSpec struct {
	Fn   int
	Args []int64
	Core int
}

// Config tunes the interpreter.
type Config struct {
	// Quantum is how many instructions a thread runs before the scheduler
	// rotates; it controls the interleaving granularity of parallel runs.
	Quantum int
	// MaxInstrs aborts runaway programs (0 means a very large default).
	MaxInstrs uint64
	// Reference forces the original per-instruction interpreter with
	// per-access observer delivery instead of the block-compiled engine.
	// Results are identical either way (see the package comment);
	// differential tests and baseline benchmarks use it.
	Reference bool

	// StatWindow > 0 enables sampled-window statistical simulation on the
	// compiled engine when the observer is a WindowSampler: of each
	// inter-sample gap, only the trailing StatWindow accesses (the warmup
	// suffix) and the sample itself run the full cache model; the leading
	// accesses execute their exact memory semantics but charge the
	// thread's running-mean latency instead of walking the hierarchy.
	// Control flow, memory contents, and the set of sampled accesses are
	// exact; sample latencies, levels, and timestamps are approximate
	// (see StatCounters). Instruction-gated (IBS) sampling and the
	// reference engine ignore the setting and stay exact.
	StatWindow int

	// Parallel runs each multi-thread phase's threads on separate
	// goroutines, one simulated core per thread, with deterministic
	// quantum-boundary merging of shared cache, directory, and memory
	// state (see parallel.go). Phases that are ineligible — one thread,
	// threads sharing a core, reachable allocation, or an observer that
	// is not ParallelSafe — fall back to the sequential engine.
	Parallel bool
	// Workers bounds the goroutines executing thread quanta concurrently
	// (0 = GOMAXPROCS). Results are byte-identical at any worker count.
	Workers int
}

// DefaultConfig returns the interpreter defaults.
func DefaultConfig() Config {
	return Config{Quantum: 1000, MaxInstrs: 0}
}

const defaultMaxInstrs = uint64(1) << 40

// Instruction base costs in cycles, excluding memory latency; a simple
// in-order timing model.
var opCost = func() [64]uint64 {
	var c [64]uint64
	for i := range c {
		c[i] = 1
	}
	c[isa.Mul] = 3
	c[isa.MulI] = 3
	c[isa.Div] = 20
	c[isa.Rem] = 20
	c[isa.FAdd] = 3
	c[isa.FSub] = 3
	c[isa.FMul] = 4
	c[isa.FDiv] = 20
	c[isa.FSqrt] = 20
	c[isa.Call] = 5
	c[isa.Ret] = 5
	c[isa.Alloc] = 30
	return c
}()

// CostOf exposes the instruction base cost (excluding memory latency) so
// analytic execution models can reproduce the interpreter's exact cycle
// accounting without running it.
func CostOf(op isa.Op) uint64 { return opCost[op] }

// frame is a saved caller state for Call/Ret. The convention saves the
// whole register file; r1 carries the return value through the restore.
type frame struct {
	fn, blk, idx int
	pc           int // flat resume index (compiled engine)
	regs         [isa.NumRegs]int64
	callIP       uint64
}

// Thread is one executing thread.
type Thread struct {
	ID   int
	Core int

	Regs [isa.NumRegs]int64

	fn, blk, idx int
	pc           int // flat uop index (compiled engine)
	frames       []frame
	callPath     []uint64 // call-site IPs, outermost first
	ctxStack     []uint64 // incremental hash of callPath per depth
	Halted       bool

	// Batched-sampling state (compiled engine with a GapSampler):
	// sampSkip accesses remain undeliverable, pendSkip of them have not
	// been reported yet, and instrGate is the IBS-style absolute retired-
	// instruction threshold below which accesses are not delivered.
	sampSkip  uint64
	pendSkip  uint64
	instrGate uint64

	// Statistical-mode state (compiled engine with Config.StatWindow > 0
	// and a WindowSampler): ffSkip accesses remain to fast-forward without
	// walking the cache hierarchy, each charged estLat cycles — the
	// running mean simLatSum/simAccesses over the accesses this thread
	// simulated exactly. statWindows/statSkipped/statSkipCycles feed the
	// run's StatCounters.
	ffSkip         uint64
	estLat         uint64
	simLatSum      uint64
	simAccesses    uint64
	statWindows    uint64
	statSkipped    uint64
	statSkipCycles uint64

	Cycles         uint64 // application cycles
	OverheadCycles uint64 // observer-charged cycles
	Instrs         uint64
	MemOps         uint64

	// evScratch is the MemEvent handed to the observer for this thread's
	// accesses. Reusing one thread-owned event keeps the per-access path
	// allocation-free (a stack-local event would escape through the
	// interface call), and per-thread ownership lets the parallel engine
	// deliver events from concurrent quanta without sharing.
	evScratch MemEvent
}

// Now returns the thread's local time including charged overhead; sample
// timestamps use it so profiles order events the way a perturbed real run
// would.
func (t *Thread) Now() uint64 { return t.Cycles + t.OverheadCycles }

// Machine executes a program against an address space and cache
// hierarchy.
type Machine struct {
	Prog   *prog.Program
	Space  *mem.Space
	Caches *cache.Hierarchy

	Observer      AccessObserver
	AllocObserver AllocObserver

	Threads []*Thread

	globalBase []uint64
	cfg        Config

	// code is the block-compiled program (nil under Config.Reference);
	// gap/gapByInstr cache the observer's GapSampler view for one Run,
	// and winSampler its WindowSampler view when statistical mode is on.
	code       [][]cop
	gap        GapSampler
	gapByInstr bool
	winSampler WindowSampler

	// Parallel-engine state: the reusable barrier session, the per-thread
	// memory views, the memoized can-this-function-allocate analysis, and
	// the record of what the engine did (see ParallelInfo).
	parSession *cache.ParallelSession
	parViews   []*mem.View
	allocReach []bool // per function: can an Alloc execute from here?
	parInfo    ParallelInfo
}

// NewMachine loads the program: it finalizes it if needed, places static
// data in a fresh address space, and attaches a cache hierarchy sized for
// numCores cores.
func NewMachine(p *prog.Program, cacheCfg cache.Config, numCores int, cfg Config) (*Machine, error) {
	if !p.Finalized() {
		if err := p.Finalize(); err != nil {
			return nil, err
		}
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultConfig().Quantum
	}
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = defaultMaxInstrs
	}
	h, err := cache.NewHierarchy(cacheCfg, numCores)
	if err != nil {
		return nil, err
	}
	m := &Machine{Prog: p, Space: mem.NewSpace(), Caches: h, cfg: cfg}
	for gi, g := range p.Globals {
		o := m.Space.AllocStatic(g.Name, uint64(g.Size), g.TypeID, gi)
		m.globalBase = append(m.globalBase, o.Base)
	}
	if !cfg.Reference {
		m.code = compileProgram(p, m.globalBase)
	}
	return m, nil
}

// GlobalBase returns the loaded address of global gi.
func (m *Machine) GlobalBase(gi int) uint64 { return m.globalBase[gi] }

// SetCoherenceObserver attaches a coherence observer to the machine's
// cache hierarchy, alongside the access observer.
func (m *Machine) SetCoherenceObserver(o cache.CoherenceObserver) {
	m.Caches.SetCoherenceObserver(o)
}

// RunAll executes a sequence of phases back to back on the same machine
// (same address space and caches) and returns the final phase's
// statistics. A nil or empty phase list runs the program entry function
// once — the convention every verification-run helper shares.
func (m *Machine) RunAll(phases [][]ThreadSpec) (Stats, error) {
	if len(phases) == 0 {
		phases = [][]ThreadSpec{{{Fn: m.Prog.EntryFn}}}
	}
	var last Stats
	for _, ph := range phases {
		st, err := m.Run(ph)
		if err != nil {
			return Stats{}, err
		}
		last = st
	}
	return last, nil
}

// Run executes the given threads to completion and returns run statistics.
func (m *Machine) Run(specs []ThreadSpec) (Stats, error) {
	if len(specs) == 0 {
		specs = []ThreadSpec{{Fn: m.Prog.EntryFn}}
	}
	m.Threads = m.Threads[:0]
	for i, sp := range specs {
		if sp.Fn < 0 || sp.Fn >= len(m.Prog.Funcs) {
			return Stats{}, fmt.Errorf("thread %d: function %d out of range", i, sp.Fn)
		}
		if sp.Core < 0 || sp.Core >= m.Caches.NumCores() {
			return Stats{}, fmt.Errorf("thread %d: core %d out of range", i, sp.Core)
		}
		if len(sp.Args) > 6 {
			return Stats{}, fmt.Errorf("thread %d: too many arguments", i)
		}
		t := &Thread{ID: i, Core: sp.Core, fn: sp.Fn}
		for ai, v := range sp.Args {
			t.Regs[isa.ArgReg0+isa.Reg(ai)] = v
		}
		m.Threads = append(m.Threads, t)
	}

	// A GapSampler observer lets the compiled engine batch non-sample
	// accesses; arm each thread's initial skip budget. The reference
	// engine always delivers every access.
	m.gap = nil
	m.winSampler = nil
	if m.code != nil && m.Observer != nil {
		if g, ok := m.Observer.(GapSampler); ok {
			m.gap = g
			for _, t := range m.Threads {
				gap, byInstr := g.AccessGap(t.ID)
				m.gapByInstr = byInstr
				if byInstr {
					t.instrGate = gap
				} else {
					t.sampSkip = gap
				}
			}
			if m.cfg.StatWindow > 0 && !m.gapByInstr {
				if w, ok := g.(WindowSampler); ok {
					m.winSampler = w
					// Statistical runs age lines across fast-forwards so
					// the skipped accesses' evictions are modeled rather
					// than leaving stale lines to serve artificial hits.
					m.Caches.EnableDecay()
				}
			}
		}
	}

	if m.cfg.Parallel && m.code != nil && len(m.Threads) > 1 {
		if reason := m.parallelIneligible(specs); reason == "" {
			return m.runParallel()
		} else {
			m.parInfo.Fallbacks = append(m.parInfo.Fallbacks, reason)
		}
	}

	var executed uint64
	for {
		alive := false
		for _, t := range m.Threads {
			if t.Halted {
				continue
			}
			alive = true
			var n uint64
			var err error
			if m.code != nil {
				n, err = m.stepThreadFast(t, m.cfg.Quantum)
			} else {
				n, err = m.stepThread(t, m.cfg.Quantum)
			}
			if err != nil {
				return Stats{}, fmt.Errorf("thread %d: %w", t.ID, err)
			}
			executed += n
		}
		if !alive {
			break
		}
		if executed > m.cfg.MaxInstrs {
			return Stats{}, fmt.Errorf("instruction budget exceeded (%d); runaway program?", m.cfg.MaxInstrs)
		}
	}
	return m.stats(), nil
}

// stepThread runs up to quantum instructions of one thread. The machine's
// hot fields (address space, hierarchy, observer) are hoisted into locals
// so the dispatch loop reads them without pointer-chasing through m, and
// the instruction slice of the current block is kept in a local to keep
// the bounds check and indexing flat.
func (m *Machine) stepThread(t *Thread, quantum int) (uint64, error) {
	p := m.Prog
	space := m.Space
	caches := m.Caches
	obs := m.Observer
	f := p.Funcs[t.fn]
	blk := f.Blocks[t.blk]
	instrs := blk.Instrs
	regs := &t.Regs
	var done uint64

	for int(done) < quantum {
		if t.idx >= len(instrs) {
			// Fallthrough to the next block (Finalize guarantees the last
			// block of a function ends in a terminator).
			t.blk++
			t.idx = 0
			blk = f.Blocks[t.blk]
			instrs = blk.Instrs
			continue
		}
		in := &instrs[t.idx]
		t.idx++
		done++
		t.Instrs++
		t.Cycles += opCost[in.Op]

		switch in.Op {
		case isa.Nop:
		case isa.MovI:
			regs[in.Rd] = in.Imm
		case isa.Mov:
			regs[in.Rd] = regs[in.Rs1]
		case isa.Add:
			regs[in.Rd] = regs[in.Rs1] + regs[in.Rs2]
		case isa.AddI:
			regs[in.Rd] = regs[in.Rs1] + in.Imm
		case isa.Sub:
			regs[in.Rd] = regs[in.Rs1] - regs[in.Rs2]
		case isa.Mul:
			regs[in.Rd] = regs[in.Rs1] * regs[in.Rs2]
		case isa.MulI:
			regs[in.Rd] = regs[in.Rs1] * in.Imm
		case isa.Div:
			if d := regs[in.Rs2]; d != 0 {
				regs[in.Rd] = regs[in.Rs1] / d
			} else {
				regs[in.Rd] = 0
			}
		case isa.Rem:
			if d := regs[in.Rs2]; d != 0 {
				regs[in.Rd] = regs[in.Rs1] % d
			} else {
				regs[in.Rd] = 0
			}
		case isa.And:
			regs[in.Rd] = regs[in.Rs1] & regs[in.Rs2]
		case isa.Or:
			regs[in.Rd] = regs[in.Rs1] | regs[in.Rs2]
		case isa.Xor:
			regs[in.Rd] = regs[in.Rs1] ^ regs[in.Rs2]
		case isa.Shl:
			regs[in.Rd] = regs[in.Rs1] << (uint64(regs[in.Rs2]) & 63)
		case isa.Shr:
			regs[in.Rd] = regs[in.Rs1] >> (uint64(regs[in.Rs2]) & 63)
		case isa.FAdd:
			regs[in.Rd] = fbits(fval(regs[in.Rs1]) + fval(regs[in.Rs2]))
		case isa.FSub:
			regs[in.Rd] = fbits(fval(regs[in.Rs1]) - fval(regs[in.Rs2]))
		case isa.FMul:
			regs[in.Rd] = fbits(fval(regs[in.Rs1]) * fval(regs[in.Rs2]))
		case isa.FDiv:
			regs[in.Rd] = fbits(fval(regs[in.Rs1]) / fval(regs[in.Rs2]))
		case isa.FSqrt:
			regs[in.Rd] = fbits(math.Sqrt(fval(regs[in.Rs1])))
		case isa.CvtIF:
			regs[in.Rd] = fbits(float64(regs[in.Rs1]))
		case isa.CvtFI:
			regs[in.Rd] = int64(fval(regs[in.Rs1]))

		case isa.Load, isa.Store:
			ea := uint64(regs[in.Rs1] + regs[in.Rs2]*in.EffScale() + in.Disp)
			size := int(in.Size)
			write := in.Op == isa.Store
			if write {
				space.WriteInt(ea, size, regs[in.Rd])
			}
			res := caches.Access(t.Core, in.IP, ea, size, write)
			t.Cycles += uint64(res.Latency)
			t.MemOps++
			if !write {
				regs[in.Rd] = space.ReadInt(ea, size)
			}
			if obs != nil {
				ev := &t.evScratch
				ev.TID = t.ID
				ev.IP = in.IP
				ev.EA = ea
				ev.Size = in.Size
				ev.Write = write
				ev.Latency = res.Latency
				ev.Level = res.Level
				ev.Cycle = t.Now()
				ev.Instrs = t.Instrs
				ev.Ctx = t.ctx()
				t.OverheadCycles += obs.OnAccess(ev)
			}

		case isa.Jmp:
			t.blk = in.Target
			t.idx = 0
			blk = f.Blocks[t.blk]
			instrs = blk.Instrs
		case isa.Br:
			if in.Cmp.Eval(regs[in.Rs1], regs[in.Rs2]) {
				t.blk = in.Target
				t.idx = 0
				blk = f.Blocks[t.blk]
				instrs = blk.Instrs
			}
		case isa.Call:
			fr := frame{fn: t.fn, blk: t.blk, idx: t.idx, callIP: in.IP}
			fr.regs = *regs
			t.frames = append(t.frames, fr)
			t.callPath = append(t.callPath, in.IP)
			t.ctxStack = append(t.ctxStack, mixCtx(t.ctx(), in.IP))
			t.fn = in.Fn
			t.blk = 0
			t.idx = 0
			f = p.Funcs[t.fn]
			blk = f.Blocks[0]
			instrs = blk.Instrs
		case isa.Ret:
			if len(t.frames) == 0 {
				// Returning from the thread's root function halts it.
				t.Halted = true
				return done, nil
			}
			fr := t.frames[len(t.frames)-1]
			t.frames = t.frames[:len(t.frames)-1]
			t.callPath = t.callPath[:len(t.callPath)-1]
			t.ctxStack = t.ctxStack[:len(t.ctxStack)-1]
			ret := regs[isa.RetReg]
			*regs = fr.regs
			regs[isa.RetReg] = ret
			t.fn, t.blk, t.idx = fr.fn, fr.blk, fr.idx
			f = p.Funcs[t.fn]
			blk = f.Blocks[t.blk]
			instrs = blk.Instrs
		case isa.Halt:
			t.Halted = true
			return done, nil

		case isa.Alloc:
			size := uint64(regs[in.Rs1])
			tid, ok := p.AllocSiteType[in.IP]
			if !ok {
				tid = -1
			}
			obj := space.AllocHeap(size, in.IP, t.callPath, tid)
			regs[in.Rd] = int64(obj.Base)
			if m.AllocObserver != nil {
				m.AllocObserver.OnAlloc(t.ID, obj)
			}
		case isa.GAddr:
			regs[in.Rd] = int64(m.globalBase[in.Imm])

		default:
			return done, fmt.Errorf("unimplemented opcode %s at %#x", in.Op, in.IP)
		}
		regs[isa.RZ] = 0
	}
	return done, nil
}

func fval(bits int64) float64 { return math.Float64frombits(uint64(bits)) }
func fbits(f float64) int64   { return int64(math.Float64bits(f)) }

// ctx returns the thread's current calling-context hash (0 at the root).
func (t *Thread) ctx() uint64 {
	if n := len(t.ctxStack); n > 0 {
		return t.ctxStack[n-1]
	}
	return 0
}

// mixCtx folds a call-site IP into a context hash (FNV-style).
func mixCtx(h, ip uint64) uint64 {
	if h == 0 {
		h = 1469598103934665603
	}
	for i := 0; i < 8; i++ {
		h ^= ip & 0xff
		h *= 1099511628211
		ip >>= 8
	}
	return h
}

// Stats summarizes one Run.
type Stats struct {
	PerThread []ThreadStats
	// WallCycles is the end-to-end runtime including observer overhead;
	// AppWallCycles excludes it (the unprofiled runtime of the same
	// deterministic execution).
	WallCycles    uint64
	AppWallCycles uint64
	Instrs        uint64
	MemOps        uint64
	Cache         cache.Stats
	// Stat accounts for statistical mode; all-zero on exact runs, so
	// exact-mode differential twins compare Stats wholesale.
	Stat StatCounters
}

// StatCounters records what statistical mode skipped and what it
// simulated, the raw material for the run's error report: of
// Simulated+Skipped memory accesses, only Simulated walked the cache
// hierarchy; the rest were charged EstimatedCycles in total from each
// thread's running-mean latency. Windows counts the fast-forward windows
// armed (one per sampled access with a gap wider than the window).
type StatCounters struct {
	Windows         uint64
	Skipped         uint64
	Simulated       uint64
	EstimatedCycles uint64
}

// ThreadStats is one thread's account.
type ThreadStats struct {
	ID             int
	Cycles         uint64
	OverheadCycles uint64
	Instrs         uint64
	MemOps         uint64
}

// OverheadPct returns the measurement overhead percentage of the run:
// (profiled wall − app wall) / app wall × 100.
func (s Stats) OverheadPct() float64 {
	if s.AppWallCycles == 0 {
		return 0
	}
	return 100 * float64(s.WallCycles-s.AppWallCycles) / float64(s.AppWallCycles)
}

func (m *Machine) stats() Stats {
	var st Stats
	for _, t := range m.Threads {
		ts := ThreadStats{
			ID: t.ID, Cycles: t.Cycles, OverheadCycles: t.OverheadCycles,
			Instrs: t.Instrs, MemOps: t.MemOps,
		}
		st.PerThread = append(st.PerThread, ts)
		st.Instrs += t.Instrs
		st.MemOps += t.MemOps
		st.Stat.Windows += t.statWindows
		st.Stat.Skipped += t.statSkipped
		st.Stat.Simulated += t.simAccesses
		st.Stat.EstimatedCycles += t.statSkipCycles
		if t.Cycles > st.AppWallCycles {
			st.AppWallCycles = t.Cycles
		}
		if w := t.Cycles + t.OverheadCycles; w > st.WallCycles {
			st.WallCycles = w
		}
	}
	st.Cache = m.Caches.Stats()
	return st
}
