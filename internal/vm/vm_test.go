package vm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

func testCacheConfig() cache.Config {
	c := cache.DefaultConfig()
	c.Prefetch = false
	return c
}

func newTestMachine(t *testing.T, p *prog.Program, cores int) *Machine {
	t.Helper()
	m, err := NewMachine(p, testCacheConfig(), cores, DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

// TestLoopSum runs sum(0..99) through a counted loop, storing the result
// to a global, and checks the value landed in simulated memory.
func TestLoopSum(t *testing.T) {
	b := prog.NewBuilder("loopsum")
	g := b.Global("out", 8, -1)
	b.Func("main", "t.c")
	iv, sum, base := b.R(), b.R(), b.R()
	b.MovI(sum, 0)
	b.ForRange(iv, 0, 100, 1, func() {
		b.Add(sum, sum, iv)
	})
	b.GAddr(base, g)
	b.Store(sum, base, isa.RZ, 1, 0, 8)
	b.Halt()
	p := b.MustProgram()

	m := newTestMachine(t, p, 1)
	st, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Space.ReadInt(m.GlobalBase(g), 8); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
	if st.Instrs == 0 || st.AppWallCycles == 0 {
		t.Error("stats empty")
	}
	if st.MemOps != 1 {
		t.Errorf("memops = %d, want 1", st.MemOps)
	}
}

// TestStridedStoreLoad writes i*i into element i of an array of 16-byte
// records and reads them back at the right addresses.
func TestStridedStoreLoad(t *testing.T) {
	const n, stride = 64, 16
	b := prog.NewBuilder("strided")
	g := b.Global("arr", n*stride, -1)
	b.Func("main", "t.c")
	base, iv, v := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.ForRange(iv, 0, n, 1, func() {
		b.Mul(v, iv, iv)
		b.Store(v, base, iv, stride, 8, 8) // offset 8 within each record
	})
	b.Halt()
	p := b.MustProgram()

	m := newTestMachine(t, p, 1)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		addr := m.GlobalBase(g) + uint64(i*stride+8)
		if got := m.Space.ReadInt(addr, 8); got != int64(i*i) {
			t.Fatalf("elem %d = %d, want %d", i, got, i*i)
		}
	}
}

// TestCallRestoresRegisters checks the calling convention: callee clobbers
// are undone on return, and r1 carries the return value.
func TestCallRestoresRegisters(t *testing.T) {
	b := prog.NewBuilder("callconv")
	g := b.Global("out", 16, -1)

	callee := b.Func("callee", "t.c")
	// Clobber a bunch of scratch registers, then return Arg0*2.
	for r := isa.FirstScratchReg; r < isa.FirstScratchReg+20; r++ {
		b.MovI(r, -999)
	}
	b.Add(isa.RetReg, isa.ArgReg0, isa.ArgReg0)
	b.Ret()

	main := b.Func("main", "t.c")
	keep, base := b.R(), b.R()
	b.MovI(keep, 1234)
	b.MovI(isa.ArgReg0, 21)
	b.Call(callee)
	b.GAddr(base, g)
	b.Store(isa.RetReg, base, isa.RZ, 1, 0, 8) // 42
	b.Store(keep, base, isa.RZ, 1, 8, 8)       // 1234 must survive
	b.Halt()
	b.SetEntry(main)
	p := b.MustProgram()

	m := newTestMachine(t, p, 1)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Space.ReadInt(m.GlobalBase(g), 8); got != 42 {
		t.Errorf("return value = %d, want 42", got)
	}
	if got := m.Space.ReadInt(m.GlobalBase(g)+8, 8); got != 1234 {
		t.Errorf("caller register = %d, want 1234 (clobbered by callee)", got)
	}
}

// TestRetFromRootHalts: a thread returning from its root function stops.
func TestRetFromRootHalts(t *testing.T) {
	b := prog.NewBuilder("root")
	b.Func("main", "t.c")
	b.MovI(b.R(), 7)
	b.Ret()
	p := b.MustProgram()
	m := newTestMachine(t, p, 1)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !m.Threads[0].Halted {
		t.Error("thread not halted after root return")
	}
}

// TestAllocAndPointerChase builds a linked list via Alloc and walks it,
// verifying stored pointers round-trip through simulated memory.
func TestAllocAndPointerChase(t *testing.T) {
	const n = 50
	b := prog.NewBuilder("chase")
	g := b.Global("head", 8, -1)
	b.Func("main", "t.c")
	// Build list: each node {next*8, val*8}; nodes carry val = i.
	sz, node, prev, iv, headBase := b.R(), b.R(), b.R(), b.R(), b.R()
	b.MovI(sz, 16)
	b.MovI(prev, 0)
	b.ForRange(iv, 0, n, 1, func() {
		b.Alloc(node, sz, -1)
		b.Store(prev, node, isa.RZ, 1, 0, 8) // node.next = prev
		b.Store(iv, node, isa.RZ, 1, 8, 8)   // node.val = i
		b.Mov(prev, node)
	})
	b.GAddr(headBase, g)
	b.Store(prev, headBase, isa.RZ, 1, 0, 8)
	// Walk the list summing vals.
	sum, cur, v := b.R(), b.R(), b.R()
	b.MovI(sum, 0)
	b.Load(cur, headBase, isa.RZ, 1, 0, 8)
	b.WhileNZ(cur, func() {
		b.Load(v, cur, isa.RZ, 1, 8, 8)
		b.Add(sum, sum, v)
		b.Load(cur, cur, isa.RZ, 1, 0, 8)
	})
	out := b.Global("out", 8, -1)
	ob := b.R()
	b.GAddr(ob, out)
	b.Store(sum, ob, isa.RZ, 1, 0, 8)
	b.Halt()
	p := b.MustProgram()

	m := newTestMachine(t, p, 1)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Space.ReadInt(m.GlobalBase(out), 8); got != n*(n-1)/2 {
		t.Errorf("list sum = %d, want %d", got, n*(n-1)/2)
	}
	// Each Alloc created one heap object.
	heapObjs := 0
	for _, o := range m.Space.Objects() {
		if o.Kind == mem.HeapObj {
			heapObjs++
		}
	}
	if heapObjs != n {
		t.Errorf("heap objects = %d, want %d", heapObjs, n)
	}
}

// TestAllocCallPathIdentity: allocations reached through different call
// sites get different identities; through the same call site, the same.
func TestAllocCallPathIdentity(t *testing.T) {
	b := prog.NewBuilder("idpath")
	allocFn := b.Func("do_alloc", "t.c")
	sz := b.R()
	b.MovI(sz, 32)
	b.Alloc(isa.RetReg, sz, -1)
	b.Ret()

	main := b.Func("main", "t.c")
	b.Call(allocFn) // call site 1
	b.Call(allocFn) // call site 2 (different IP)
	b.Call(allocFn) // call site 3
	b.Halt()
	b.SetEntry(main)
	p := b.MustProgram()

	m := newTestMachine(t, p, 1)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	objs := m.Space.Objects()
	if len(objs) != 3 {
		t.Fatalf("objects = %d, want 3", len(objs))
	}
	if objs[0].Identity == objs[1].Identity {
		t.Error("different call sites share identity")
	}
	if len(objs[0].CallPath) != 1 {
		t.Errorf("call path depth = %d, want 1", len(objs[0].CallPath))
	}
}

// TestFloatOps exercises the FP pipeline: hypot(3,4) == 5.
func TestFloatOps(t *testing.T) {
	b := prog.NewBuilder("float")
	g := b.Global("out", 8, -1)
	b.Func("main", "t.c")
	x, y, s, base := b.R(), b.R(), b.R(), b.R()
	b.MovF(x, 3.0)
	b.MovF(y, 4.0)
	b.FMul(x, x, x)
	b.FMul(y, y, y)
	b.FAdd(s, x, y)
	b.FSqrt(s, s)
	b.GAddr(base, g)
	b.Store(s, base, isa.RZ, 1, 0, 8)
	b.Halt()
	p := b.MustProgram()
	m := newTestMachine(t, p, 1)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	bits := uint64(m.Space.ReadInt(m.GlobalBase(g), 8))
	if got := math.Float64frombits(bits); got != 5.0 {
		t.Errorf("hypot = %v, want 5", got)
	}
}

// TestIfElse checks both arms of the If builder produce correct control
// flow under the interpreter.
func TestIfElse(t *testing.T) {
	build := func(v int64) *prog.Program {
		b := prog.NewBuilder("ifelse")
		g := b.Global("out", 8, -1)
		b.Func("main", "t.c")
		r, out, base := b.R(), b.R(), b.R()
		b.MovI(r, v)
		b.If(isa.Gt, r, isa.RZ,
			func() { b.MovI(out, 1) },
			func() { b.MovI(out, 2) },
		)
		b.GAddr(base, g)
		b.Store(out, base, isa.RZ, 1, 0, 8)
		b.Halt()
		return b.MustProgram()
	}
	for _, tc := range []struct {
		v    int64
		want int64
	}{{5, 1}, {-5, 2}, {0, 2}} {
		m := newTestMachine(t, build(tc.v), 1)
		if _, err := m.Run(nil); err != nil {
			t.Fatal(err)
		}
		if got := m.Space.ReadInt(m.GlobalBase(0), 8); got != tc.want {
			t.Errorf("if(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestMultiThreadDeterminism runs two threads that sum disjoint halves of
// an array; the scheduler must interleave them and results must be exact.
func TestMultiThreadDeterminism(t *testing.T) {
	const n = 1000
	b := prog.NewBuilder("par")
	arr := b.Global("arr", n*8, -1)
	out := b.Global("out", 16, -1)

	initFn := b.Func("init", "t.c")
	base, iv := b.R(), b.R()
	b.GAddr(base, arr)
	b.ForRange(iv, 0, n, 1, func() {
		b.Store(iv, base, iv, 8, 0, 8)
	})
	b.Halt()

	worker := b.Func("worker", "t.c")
	// Args: r1 = start, r2 = stop, r3 = output slot.
	wbase, wiv, wv, wsum, wout := b.R(), b.R(), b.R(), b.R(), b.R()
	b.GAddr(wbase, arr)
	b.MovI(wsum, 0)
	b.ForRangeReg(wiv, 0, isa.ArgReg1, 1, func() {
		b.Add(wv, wiv, isa.ArgReg0) // not used as address: index = start+i
		b.Load(wv, wbase, wv, 8, 0, 8)
		b.Add(wsum, wsum, wv)
	})
	b.GAddr(wout, out)
	b.Store(wsum, wout, isa.ArgReg2, 8, 0, 8)
	b.Halt()
	b.SetEntry(initFn)
	p := b.MustProgram()

	// First run init on one thread.
	m := newTestMachine(t, p, 2)
	if _, err := m.Run([]ThreadSpec{{Fn: initFn}}); err != nil {
		t.Fatal(err)
	}
	// Then two workers in parallel. Each sums half; ForRangeReg counts
	// iterations, with ArgReg0 as the base offset.
	_, err := m.Run([]ThreadSpec{
		{Fn: worker, Args: []int64{0, n / 2, 0}, Core: 0},
		{Fn: worker, Args: []int64{n / 2, n / 2, 1}, Core: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lo := m.Space.ReadInt(m.GlobalBase(out), 8)
	hi := m.Space.ReadInt(m.GlobalBase(out)+8, 8)
	if lo+hi != n*(n-1)/2 {
		t.Errorf("parallel sum = %d, want %d", lo+hi, n*(n-1)/2)
	}
	if lo == 0 || hi == 0 {
		t.Error("one worker did nothing")
	}
}

// observerRecorder captures events and charges fixed overhead.
type observerRecorder struct {
	events   []MemEvent
	overhead uint64
}

func (o *observerRecorder) OnAccess(ev *MemEvent) uint64 {
	o.events = append(o.events, *ev)
	return o.overhead
}

// TestObserverEvents checks every field the profiler depends on: IP
// resolves to a Load, EA falls in the right object, latency and level are
// consistent, and cycles are monotonic per thread.
func TestObserverEvents(t *testing.T) {
	const n = 32
	b := prog.NewBuilder("obs")
	arr := b.Global("arr", n*16, -1)
	b.Func("main", "t.c")
	base, iv, v := b.R(), b.R(), b.R()
	b.GAddr(base, arr)
	b.ForRange(iv, 0, n, 1, func() {
		b.Load(v, base, iv, 16, 0, 8)
	})
	b.Halt()
	p := b.MustProgram()

	m := newTestMachine(t, p, 1)
	rec := &observerRecorder{overhead: 100}
	m.Observer = rec
	st, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != n {
		t.Fatalf("events = %d, want %d", len(rec.events), n)
	}
	var lastCycle uint64
	for i, ev := range rec.events {
		in := p.InstrAt(ev.IP)
		if in == nil || in.Op != isa.Load {
			t.Fatalf("event %d: IP %#x does not resolve to a load", i, ev.IP)
		}
		if ev.EA != m.GlobalBase(arr)+uint64(i*16) {
			t.Fatalf("event %d: EA %#x, want %#x", i, ev.EA, m.GlobalBase(arr)+uint64(i*16))
		}
		if ev.Latency == 0 || ev.Level == 0 {
			t.Fatalf("event %d: empty latency/level", i)
		}
		if ev.Cycle <= lastCycle {
			t.Fatalf("event %d: cycle %d not monotonic", i, ev.Cycle)
		}
		lastCycle = ev.Cycle
		if ev.Write {
			t.Fatalf("event %d: spurious write flag", i)
		}
	}
	// Overhead accounting: n events × 100 cycles.
	if st.WallCycles-st.AppWallCycles != n*100 {
		t.Errorf("overhead cycles = %d, want %d", st.WallCycles-st.AppWallCycles, n*100)
	}
	if st.OverheadPct() <= 0 {
		t.Error("overhead percentage not positive")
	}
}

// TestMaxInstrsGuard aborts an infinite loop.
func TestMaxInstrsGuard(t *testing.T) {
	b := prog.NewBuilder("inf")
	b.Func("main", "t.c")
	b.Jmp(0) // while(true){}
	p := b.MustProgram()
	cfg := DefaultConfig()
	cfg.MaxInstrs = 10_000
	m, err := NewMachine(p, testCacheConfig(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("runaway program not caught: %v", err)
	}
}

// TestRunErrors validates thread-spec checking.
func TestRunErrors(t *testing.T) {
	b := prog.NewBuilder("e")
	b.Func("main", "t.c")
	b.Halt()
	p := b.MustProgram()
	m := newTestMachine(t, p, 1)
	if _, err := m.Run([]ThreadSpec{{Fn: 99}}); err == nil {
		t.Error("bad function accepted")
	}
	if _, err := m.Run([]ThreadSpec{{Fn: 0, Core: 5}}); err == nil {
		t.Error("bad core accepted")
	}
	if _, err := m.Run([]ThreadSpec{{Fn: 0, Args: make([]int64, 9)}}); err == nil {
		t.Error("too many args accepted")
	}
}

// TestIntegerOps covers the ALU opcodes end to end.
func TestIntegerOps(t *testing.T) {
	b := prog.NewBuilder("alu")
	g := b.Global("out", 96, -1)
	b.Func("main", "t.c")
	a, c, r, base := b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.MovI(a, 100)
	b.MovI(c, 7)
	slot := int64(0)
	emit := func(f func()) {
		f()
		b.Store(r, base, isa.RZ, 1, slot, 8)
		slot += 8
	}
	emit(func() { b.Sub(r, a, c) })      // 93
	emit(func() { b.Div(r, a, c) })      // 14
	emit(func() { b.Rem(r, a, c) })      // 2
	emit(func() { b.And(r, a, c) })      // 4
	emit(func() { b.Or(r, a, c) })       // 103
	emit(func() { b.Xor(r, a, c) })      // 99
	emit(func() { b.Shl(r, c, c) })      // 7<<7 = 896
	emit(func() { b.Shr(r, a, c) })      // 100>>7 = 0
	emit(func() { b.Div(r, a, isa.RZ) }) // div by zero → 0
	emit(func() { b.Rem(r, a, isa.RZ) }) // rem by zero → 0
	b.Halt()
	p := b.MustProgram()
	m := newTestMachine(t, p, 1)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []int64{93, 14, 2, 4, 103, 99, 896, 0, 0, 0}
	for i, w := range want {
		if got := m.Space.ReadInt(m.GlobalBase(g)+uint64(i*8), 8); got != w {
			t.Errorf("op %d = %d, want %d", i, got, w)
		}
	}
}

// TestCvt covers int↔float conversion.
func TestCvt(t *testing.T) {
	b := prog.NewBuilder("cvt")
	g := b.Global("out", 16, -1)
	b.Func("main", "t.c")
	r, base := b.R(), b.R()
	b.GAddr(base, g)
	b.MovI(r, 9)
	b.CvtIF(r, r)
	b.FSqrt(r, r)
	b.CvtFI(r, r)
	b.Store(r, base, isa.RZ, 1, 0, 8)
	b.Halt()
	p := b.MustProgram()
	m := newTestMachine(t, p, 1)
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Space.ReadInt(m.GlobalBase(g), 8); got != 3 {
		t.Errorf("cvtfi(sqrt(cvtif(9))) = %d, want 3", got)
	}
}

// TestWallCyclesIsMax checks wall-clock aggregation over unequal threads.
func TestWallCyclesIsMax(t *testing.T) {
	b := prog.NewBuilder("wall")
	b.Func("short", "t.c")
	b.MovI(b.R(), 1)
	b.Halt()
	long := b.Func("long", "t.c")
	iv := b.R()
	b.ForRange(iv, 0, 10000, 1, func() { b.AddI(iv, iv, 0) })
	b.Halt()
	p := b.MustProgram()
	m := newTestMachine(t, p, 2)
	st, err := m.Run([]ThreadSpec{{Fn: 0, Core: 0}, {Fn: long, Core: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.WallCycles != st.PerThread[1].Cycles {
		t.Errorf("wall = %d, want long thread's %d", st.WallCycles, st.PerThread[1].Cycles)
	}
}
