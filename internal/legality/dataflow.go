package legality

// dataflow.go is the fixpoint engine of the legality pass: a forward,
// flow-sensitive propagation of provenance + congruence values through
// every function's registers, a field-sensitive store environment shared
// across functions (phase entry points are not reachable from main, so
// memory is the only channel between them — modelling it order-free is
// sound), and return-value propagation across calls. The engine sweeps
// functions in id order and blocks in reverse postorder so the result is
// deterministic; a sweep budget bounds pathological programs, and budget
// exhaustion demotes honestly (every record object freezes).

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/staticlint"
)

const (
	// maxBlockSweeps bounds the per-function inner fixpoint.
	maxBlockSweeps = 200
	// maxProgramSweeps bounds the whole-program outer fixpoint.
	maxProgramSweeps = 40
)

// resid is one attributed footprint contribution: the access started at
// byte offset c + m·Z from the object base (m == 0: exactly c).
type resid struct {
	c int64
	m uint64
}

// objAttr is the footprint one memory instruction has on one object.
type objAttr struct {
	all      bool
	residues []resid

	// Filled by the verdict pass for the dynamic cross-check: the field
	// mask this instruction may touch on this object.
	mask    uint64
	maskAll bool
}

func (oa *objAttr) add(r resid) {
	for _, e := range oa.residues {
		if e == r {
			return
		}
	}
	oa.residues = append(oa.residues, r)
}

// ipAttr is the full attribution of one Load/Store instruction.
type ipAttr struct {
	ip   uint64
	fnID int
	size uint8
	objs map[int]*objAttr
}

func (ia *ipAttr) forObj(id int) *objAttr {
	oa := ia.objs[id]
	if oa == nil {
		oa = &objAttr{}
		ia.objs[id] = oa
	}
	return oa
}

// freezeEv records a pointer escaping into an opaque flow or to memory.
type freezeEv struct {
	objs objSet
	fnID int
	ip   uint64
	msg  string
}

// collector gathers attribution facts during the final (post-fixpoint)
// sweep.
type collector struct {
	attrs   map[uint64]*ipAttr
	freezes []freezeEv
	demoted []Reason // program-level: freezes every record object
}

func (col *collector) attr(in *isa.Instr, fnID int) *ipAttr {
	ia := col.attrs[in.IP]
	if ia == nil {
		ia = &ipAttr{ip: in.IP, fnID: fnID, size: in.Size, objs: make(map[int]*objAttr)}
		col.attrs[in.IP] = ia
	}
	return ia
}

func (col *collector) freeze(objs objSet, fnID int, ip uint64, msg string) {
	if objs.empty() {
		return
	}
	for _, ev := range col.freezes {
		if ev.ip == ip && ev.msg == msg && ev.objs.equal(objs) {
			return
		}
	}
	col.freezes = append(col.freezes, freezeEv{objs: objs, fnID: fnID, ip: ip, msg: msg})
}

func (col *collector) demoteAll(fnID int, ip uint64, msg string) {
	for _, r := range col.demoted {
		if r.IP == ip && r.Msg == msg {
			return
		}
	}
	col.demoted = append(col.demoted, Reason{Field: -1, Other: -1, FnID: fnID, IP: ip, Msg: msg})
}

// memEntry is one tracked store: values written to offsets c + m·Z (size
// bytes each) of its object.
type memEntry struct {
	c    int64
	m    uint64
	size uint8
	v    value
}

// memEnv is the field-sensitive store environment. Every store is
// tracked; a load joins the values of all overlapping entries of the
// objects its address may point into. The "anywhere" bucket holds values
// stored through addresses the pass could not attribute at all.
type memEnv struct {
	byObj    map[int][]memEntry
	anywhere value
	anySet   bool
}

func newMemEnv() *memEnv {
	return &memEnv{byObj: make(map[int][]memEntry)}
}

// store records a write; reports whether the environment changed.
func (me *memEnv) store(obj int, c int64, m uint64, size uint8, v value) bool {
	es := me.byObj[obj]
	for i := range es {
		if es[i].c == c && es[i].m == m && es[i].size == size {
			j := join(es[i].v, v)
			if j.equal(es[i].v) {
				return false
			}
			es[i].v = j
			return true
		}
	}
	me.byObj[obj] = append(es, memEntry{c: c, m: m, size: size, v: v})
	return true
}

func (me *memEnv) storeAnywhere(v value) bool {
	if !me.anySet {
		me.anywhere = v
		me.anySet = true
		return true
	}
	j := join(me.anywhere, v)
	if j.equal(me.anywhere) {
		return false
	}
	me.anywhere = j
	return true
}

// load joins the values of every entry of objs overlapping [c+m·Z,
// c+m·Z+size). found reports whether any entry (or the anywhere bucket)
// contributed; a not-found load reads never-written memory (zero).
func (me *memEnv) load(objs objSet, c int64, m uint64, size uint8) (value, bool) {
	res := value{}
	found := false
	objs.each(func(id int) {
		for _, e := range me.byObj[id] {
			if locOverlap(c, m, uint64(size), e.c, e.m, uint64(e.size)) {
				if !found {
					res, found = e.v, true
				} else {
					res = join(res, e.v)
				}
			}
		}
	})
	if me.anySet {
		if !found {
			return me.anywhere, true
		}
		res = join(res, me.anywhere)
	}
	return res, found
}

// locOverlap reports whether the offset sets c1+m1·Z (s1 bytes wide) and
// c2+m2·Z (s2 bytes wide) can intersect. With both exact it is interval
// intersection; otherwise both classes are projected onto the circle of
// circumference g = gcd(m1, m2) (an over-approximation) and the two arcs
// are tested for overlap.
func locOverlap(c1 int64, m1, s1 uint64, c2 int64, m2, s2 uint64) bool {
	if m1 == 0 && m2 == 0 {
		return c1 < c2+int64(s2) && c2 < c1+int64(s1)
	}
	g := m1
	if g == 0 {
		g = m2
	} else if m2 != 0 {
		g = gcd64(m1, m2)
	}
	if s1+s2 >= g {
		return true
	}
	d := umod64(c2-c1, g)
	return d < s1 || g-d < s2
}

// state is one abstract register file.
type state []value

func newEntryState() state {
	st := make(state, isa.NumRegs)
	for i := range st {
		st[i] = unknown()
	}
	st[isa.RZ] = exact(0)
	return st
}

func (st state) clone() state {
	c := make(state, len(st))
	copy(c, st)
	return c
}

func (st state) equal(o state) bool {
	for i := range st {
		if !st[i].equal(o[i]) {
			return false
		}
	}
	return true
}

func (st state) set(r isa.Reg, v value) {
	if r == isa.RZ {
		return
	}
	st[r] = v
}

// joinInto joins o into st, reporting change.
func (st state) joinInto(o state) bool {
	changed := false
	for i := range st {
		j := join(st[i], o[i])
		if !j.equal(st[i]) {
			st[i] = j
			changed = true
		}
	}
	return changed
}

// funcFlow caches per-function converged block in-states for the collect
// pass.
type funcFlow struct {
	g   *cfg.Graph
	rpo []int
	ins []state // indexed by block id; nil = unreachable
}

// analyzer runs the whole-program fixpoint.
type analyzer struct {
	p  *prog.Program
	sa *staticlint.Analysis
	a  *Analysis

	mem   *memEnv
	rets  []value
	seen  []bool // rets[fn] valid
	flows []*funcFlow

	globalBase []uint64
	dirty      bool // outer-fixpoint change flag

	demotions []Reason // fixpoint-budget demotions, merged into the collector
}

func newAnalyzer(p *prog.Program, sa *staticlint.Analysis, a *Analysis) *analyzer {
	return &analyzer{
		p:          p,
		sa:         sa,
		a:          a,
		mem:        newMemEnv(),
		rets:       make([]value, len(p.Funcs)),
		seen:       make([]bool, len(p.Funcs)),
		flows:      make([]*funcFlow, len(p.Funcs)),
		globalBase: staticlint.GlobalBases(p),
	}
}

// solve runs the outer fixpoint and the collect pass.
func (az *analyzer) solve() *collector {
	for _, f := range az.p.Funcs {
		g := cfg.Build(f)
		az.flows[f.ID] = &funcFlow{g: g, rpo: g.ReversePostorder()}
	}
	converged := false
	for sweep := 0; sweep < maxProgramSweeps; sweep++ {
		az.dirty = false
		for _, f := range az.p.Funcs {
			az.runFunc(f, nil)
		}
		if !az.dirty {
			converged = true
			break
		}
	}
	col := &collector{attrs: make(map[uint64]*ipAttr)}
	if !converged {
		az.demotions = append(az.demotions, Reason{
			Field: -1, Other: -1, FnID: -1,
			Msg: fmt.Sprintf("whole-program fixpoint did not converge in %d sweeps", maxProgramSweeps),
		})
	}
	col.demoted = append(col.demoted, az.demotions...)
	for _, f := range az.p.Funcs {
		az.runFunc(f, col)
	}
	return col
}

// runFunc runs the per-function inner fixpoint. With col set it instead
// performs one attribution sweep over the converged in-states (re-running
// the fixpoint first so they reflect the final memory environment).
func (az *analyzer) runFunc(f *prog.Func, col *collector) {
	ff := az.flows[f.ID]
	n := len(f.Blocks)
	if ff.ins == nil {
		ff.ins = make([]state, n)
	}
	outs := make([]state, n)
	entry := newEntryState()

	for sweep := 0; ; sweep++ {
		if sweep >= maxBlockSweeps {
			az.noteBudget(f)
			break
		}
		changed := false
		for _, b := range ff.rpo {
			in := state(nil)
			if b == ff.rpo[0] {
				in = entry.clone()
			}
			for _, p := range ff.g.Preds[b] {
				if outs[p] == nil {
					continue
				}
				if in == nil {
					in = outs[p].clone()
				} else {
					in.joinInto(outs[p])
				}
			}
			if in == nil {
				continue
			}
			ff.ins[b] = in
			st := in.clone()
			for i := range f.Blocks[b].Instrs {
				az.transfer(f.ID, &f.Blocks[b].Instrs[i], st, nil)
			}
			if outs[b] == nil || !outs[b].equal(st) {
				outs[b] = st
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	if col == nil {
		return
	}
	for _, b := range ff.rpo {
		if ff.ins[b] == nil {
			continue
		}
		st := ff.ins[b].clone()
		for i := range f.Blocks[b].Instrs {
			az.transfer(f.ID, &f.Blocks[b].Instrs[i], st, col)
		}
	}
}

func (az *analyzer) noteBudget(f *prog.Func) {
	msg := fmt.Sprintf("dataflow in %s did not converge in %d sweeps", f.Name, maxBlockSweeps)
	for _, r := range az.demotions {
		if r.Msg == msg {
			return
		}
	}
	az.demotions = append(az.demotions, Reason{Field: -1, Other: -1, FnID: f.ID, Msg: msg})
}

// eaOf evaluates a Load/Store effective address: Rs1 + Rs2·scale + Disp.
func (az *analyzer) eaOf(in *isa.Instr, st state) value {
	idx := mulVals(st[in.Rs2], exact(in.EffScale()))
	if st[in.Rs2].isPtr() {
		// An index register holding a pointer is address arithmetic the
		// resolver cannot invert.
		idx = opaquePtr(st[in.Rs2].objs)
	}
	return addVals(addVals(st[in.Rs1], idx), exact(in.Disp))
}

// transfer interprets one instruction over st. With col set it also
// records attributions, freezes, and demotions.
func (az *analyzer) transfer(fnID int, in *isa.Instr, st state, col *collector) {
	switch in.Op {
	case isa.Nop, isa.Jmp, isa.Br, isa.Halt:
		// no register effects

	case isa.MovI:
		st.set(in.Rd, exact(in.Imm))
	case isa.Mov:
		st.set(in.Rd, st[in.Rs1])
	case isa.Add:
		st.set(in.Rd, az.checkedAdd(st[in.Rs1], st[in.Rs2], fnID, in, col))
	case isa.AddI:
		st.set(in.Rd, addVals(st[in.Rs1], exact(in.Imm)))
	case isa.Sub:
		st.set(in.Rd, az.checkedSub(st[in.Rs1], st[in.Rs2], fnID, in, col))
	case isa.Mul:
		st.set(in.Rd, az.intOnly2(st[in.Rs1], st[in.Rs2], fnID, in, col, mulVals))
	case isa.MulI:
		if st[in.Rs1].isPtr() {
			if in.Imm == 1 {
				st.set(in.Rd, st[in.Rs1])
			} else {
				st.set(in.Rd, az.opaqued(st[in.Rs1].objs, fnID, in, col))
			}
			break
		}
		st.set(in.Rd, mulVals(st[in.Rs1], exact(in.Imm)))
	case isa.Shl:
		st.set(in.Rd, az.intOnly2(st[in.Rs1], st[in.Rs2], fnID, in, col, shlVals))
	case isa.Div, isa.Rem, isa.And, isa.Or, isa.Xor, isa.Shr,
		isa.FAdd, isa.FSub, isa.FMul, isa.FDiv:
		st.set(in.Rd, az.intOnly2(st[in.Rs1], st[in.Rs2], fnID, in, col, nil))
	case isa.FSqrt, isa.CvtIF, isa.CvtFI:
		v := st[in.Rs1]
		if v.isPtr() {
			st.set(in.Rd, az.opaqued(v.objs, fnID, in, col))
		} else {
			st.set(in.Rd, unknown())
		}

	case isa.Load:
		ea := az.eaOf(in, st)
		if col != nil {
			az.recordAccess(fnID, in, ea, col)
		}
		st.set(in.Rd, az.loadMem(ea, in.Size))
	case isa.Store:
		ea := az.eaOf(in, st)
		if col != nil {
			az.recordAccess(fnID, in, ea, col)
			az.checkPtrEscape(st[in.Rd], fnID, in, col)
		}
		if az.storeMem(ea, in.Size, st[in.Rd]) {
			az.dirty = true
		}

	case isa.GAddr:
		gi := int(in.Imm)
		if gi >= 0 && gi < len(az.a.objOfGlobal) {
			st.set(in.Rd, objValue(az.a.objOfGlobal[gi]))
		} else {
			st.set(in.Rd, unknown())
		}
	case isa.Alloc:
		if id, ok := az.a.objOfAlloc[in.IP]; ok {
			st.set(in.Rd, objValue(id))
		} else {
			st.set(in.Rd, unknown())
		}

	case isa.Call:
		var v value
		if in.Fn >= 0 && in.Fn < len(az.rets) && az.seen[in.Fn] {
			v = az.rets[in.Fn]
		} else {
			v = unknown()
		}
		st.set(isa.RetReg, v)
	case isa.Ret:
		fn := fnID
		if !az.seen[fn] {
			az.rets[fn] = st[isa.RetReg]
			az.seen[fn] = true
			az.dirty = true
		} else {
			j := join(az.rets[fn], st[isa.RetReg])
			if !j.equal(az.rets[fn]) {
				az.rets[fn] = j
				az.dirty = true
			}
		}

	default:
		st.set(in.Rd, unknown())
	}
	st[isa.RZ] = exact(0)
}

// opaqued demotes a pointer that passed through non-affine arithmetic.
func (az *analyzer) opaqued(objs objSet, fnID int, in *isa.Instr, col *collector) value {
	if col != nil {
		col.freeze(objs, fnID, in.IP, fmt.Sprintf("pointer passes through %s", in.Op))
	}
	return opaquePtr(objs)
}

// checkedAdd demotes ptr+ptr; everything else is affine.
func (az *analyzer) checkedAdd(a, b value, fnID int, in *isa.Instr, col *collector) value {
	if a.isPtr() && b.isPtr() {
		return az.opaqued(a.objs.union(b.objs), fnID, in, col)
	}
	return addVals(a, b)
}

// checkedSub demotes int-ptr (ptr-ptr is a plain pointer difference).
func (az *analyzer) checkedSub(a, b value, fnID int, in *isa.Instr, col *collector) value {
	if b.isPtr() && !a.isPtr() {
		return az.opaqued(b.objs, fnID, in, col)
	}
	return subVals(a, b)
}

// intOnly2 applies fn (or returns unknown when fn is nil) to two integer
// operands; a pointer operand demotes to opaque.
func (az *analyzer) intOnly2(a, b value, fnID int, in *isa.Instr, col *collector,
	fn func(a, b value) value) value {
	if a.isPtr() || b.isPtr() {
		return az.opaqued(a.objs.union(b.objs), fnID, in, col)
	}
	if fn == nil {
		return unknown()
	}
	return fn(a, b)
}

// shlVals models Shl with an exact shift as a multiply.
func shlVals(a, b value) value {
	if b.m == 0 && b.c >= 0 && b.c < 63 {
		return mulVals(a, exact(int64(1)<<uint(b.c)))
	}
	return unknown()
}

// normEA reduces an effective address to object-relative form. Exact
// absolute addresses inside a global's loader range are attributed to it.
func (az *analyzer) normEA(ea value) (objs objSet, c int64, m uint64, ok bool) {
	if ea.isPtr() {
		if ea.opaque {
			return ea.objs, 0, 1, true
		}
		return ea.objs, ea.c, ea.m, true
	}
	if ea.m == 0 {
		if id, off, found := az.globalAt(uint64(ea.c)); found {
			return singleObj(id), off, 0, true
		}
	}
	return nil, 0, 0, false
}

// globalAt maps an absolute address to (object id, offset) when it falls
// inside a global's loader range.
func (az *analyzer) globalAt(addr uint64) (id int, off int64, ok bool) {
	i := sort.Search(len(az.globalBase), func(i int) bool { return az.globalBase[i] > addr })
	if i == 0 {
		return 0, 0, false
	}
	gi := i - 1
	g := az.p.Globals[gi]
	if addr >= az.globalBase[gi]+uint64(g.Size) {
		return 0, 0, false
	}
	return az.a.objOfGlobal[gi], int64(addr - az.globalBase[gi]), true
}

func (az *analyzer) storeMem(ea value, size uint8, v value) bool {
	objs, c, m, ok := az.normEA(ea)
	if !ok {
		if ea.m == 0 && uint64(ea.c) < mem.StaticBase {
			return false // below the data segment: never an object
		}
		return az.mem.storeAnywhere(v)
	}
	changed := false
	objs.each(func(id int) {
		if az.mem.store(id, c, m, size, v) {
			changed = true
		}
	})
	return changed
}

func (az *analyzer) loadMem(ea value, size uint8) value {
	objs, c, m, ok := az.normEA(ea)
	if !ok {
		return unknown()
	}
	v, found := az.mem.load(objs, c, m, size)
	if !found {
		// Never-written memory reads zero.
		return exact(0)
	}
	return v
}

// recordAccess attributes one Load/Store. The staticlint Exact stream is
// preferred when available (its IV dataflow bounds offsets tighter than
// the congruence join); otherwise the provenance lattice attributes, and
// anything neither can place demotes every record object.
func (az *analyzer) recordAccess(fnID int, in *isa.Instr, ea value, col *collector) {
	if sp := az.sa.StreamAt(in.IP); sp != nil && sp.Confidence == staticlint.Exact {
		if bo, ok := sp.BaseOf(); ok {
			if id, ok2 := az.objOfBase(bo); ok2 {
				col.attr(in, fnID).forObj(id).add(resid{c: sp.Disp, m: sp.Stride})
				return
			}
		}
	}
	if ea.isPtr() && ea.opaque {
		ia := col.attr(in, fnID)
		ea.objs.each(func(id int) { ia.forObj(id).all = true })
		col.freeze(ea.objs, fnID, in.IP, "access through an opaque pointer flow")
		return
	}
	objs, c, m, ok := az.normEA(ea)
	if ok {
		ia := col.attr(in, fnID)
		objs.each(func(id int) { ia.forObj(id).add(resid{c: c, m: m}) })
		return
	}
	if ea.m == 0 {
		if uint64(ea.c) < mem.StaticBase {
			return // e.g. a null-pointer chase terminator: touches no object
		}
		col.demoteAll(fnID, in.IP, "access through a forged (absolute) address")
		return
	}
	col.demoteAll(fnID, in.IP, "access through a statically unattributable address")
}

// checkPtrEscape freezes record objects whose *interior* (field) address
// is stored to memory: an escaping field pointer defeats any relocation
// of that field. Whole-element pointers (offset ≡ 0 mod element size) are
// the linked-structure idiom and stay legal — loads re-attribute them via
// the store environment.
func (az *analyzer) checkPtrEscape(v value, fnID int, in *isa.Instr, col *collector) {
	if !v.isPtr() {
		return
	}
	if v.opaque {
		col.freeze(v.objs, fnID, in.IP, "opaque pointer flow escapes to memory")
		return
	}
	var bad objSet
	v.objs.each(func(id int) {
		oi := &az.a.objs[id]
		if oi.st == nil {
			return // untyped objects carry no field claims
		}
		s := uint64(oi.st.Size)
		elemPtr := umod64(v.c, s) == 0 && (v.m == 0 || v.m%s == 0)
		if !elemPtr {
			bad = bad.union(singleObj(id))
		}
	})
	if !bad.empty() {
		col.freeze(bad, fnID, in.IP, "field address escapes to memory")
	}
}

// objOfBase maps a staticlint base object to an analysis object id.
func (az *analyzer) objOfBase(bo staticlint.BaseObject) (int, bool) {
	if bo.IsGlobal {
		if bo.Global < 0 || bo.Global >= len(az.a.objOfGlobal) {
			return 0, false
		}
		return az.a.objOfGlobal[bo.Global], true
	}
	if bo.IsHeap {
		id, ok := az.a.objOfAlloc[bo.AllocIP]
		return id, ok
	}
	return 0, false
}
