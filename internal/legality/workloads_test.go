package legality

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestPaperWorkloadVerdicts runs the pass over every paper benchmark in
// its original (AoS) layout and cross-checks each verdict dynamically:
// zero violations is the hard soundness gate. The hot record of each
// workload must not be frozen — the paper splits all seven by hand, so a
// frozen hot record would mean the pass is too blunt to be useful.
func TestPaperWorkloadVerdicts(t *testing.T) {
	for _, w := range workloads.Paper() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			a, err := AnalyzeProgram(p, nil)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			var buf bytes.Buffer
			a.RenderText(&buf)
			t.Logf("\n%s", buf.String())

			rec := w.Record()
			hotFrozen := true
			for _, v := range a.Objects {
				if v.Type.Name == rec.Name && v.Verdict != Frozen {
					hotFrozen = false
				}
			}
			if len(a.Objects) == 0 {
				t.Fatal("no record objects found")
			}
			if hotFrozen {
				t.Errorf("every %s object is frozen; the pass is too conservative", rec.Name)
			}

			vmPhases := make([][]vm.ThreadSpec, len(phases))
			for i, ph := range phases {
				vmPhases[i] = ph
			}
			rep, err := CrossCheck(a, cache.DefaultConfig(), vmPhases)
			if err != nil {
				t.Fatalf("CrossCheck: %v", err)
			}
			var rb bytes.Buffer
			rep.RenderText(&rb)
			t.Logf("\n%s", rb.String())
			if rep.Failed() {
				t.Errorf("dynamic cross-check violated static claims:\n%s", rb.String())
			}
			if rep.Checked == 0 && len(a.Objects) > 0 {
				nonFrozen := 0
				for _, v := range a.Objects {
					if v.Verdict != Frozen {
						nonFrozen++
					}
				}
				if nonFrozen > 0 {
					t.Error("cross-check never exercised a checked object")
				}
			}
		})
	}
}

// TestWorkloadVerdictDeterminism renders every registered workload's
// verdicts twice from independent builds and analyses; output must be
// byte-identical.
func TestWorkloadVerdictDeterminism(t *testing.T) {
	for _, w := range workloads.All() {
		if w.Record() == nil {
			continue
		}
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			var out [2]bytes.Buffer
			for k := 0; k < 2; k++ {
				p, _, err := w.Build(nil, workloads.ScaleTest)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				a, err := AnalyzeProgram(p, nil)
				if err != nil {
					t.Fatalf("analyze: %v", err)
				}
				a.RenderText(&out[k])
			}
			if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
				t.Fatalf("verdicts not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s",
					out[0].String(), out[1].String())
			}
		})
	}
}
