package legality

// crosscheck.go is the dynamic enforcement of the static verdicts: the
// workload replays under a vm.AccessObserver that resolves every
// effective address back to its data object and checks it against the
// pass's per-instruction footprint claims. For any object judged
// SplitSafe or KeepTogether, every access must come from an instruction
// the pass attributed to that object, touching only the claimed fields —
// a violation means the static pass was unsound, and Report.Failed()
// turns it into a hard test failure. Frozen objects carry no claim and
// are not checked.

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vm"
)

// claim is one instruction's allowed footprint on one checked object.
type claim struct {
	obj  int // analysis object id
	mask uint64
	all  bool
}

// checkedObj is the observer's per-object checking state.
type checkedObj struct {
	verdict     *ObjectVerdict
	size        uint64
	fieldOfByte []int8 // byte offset in element → field index (-1 padding)
	accesses    uint64
}

// Violation is one dynamic access that contradicts a static claim.
type Violation struct {
	IP      uint64
	Where   string
	Obj     string
	ElemOff uint64
	Size    uint8
	Msg     string
}

// maxStoredViolations caps the detail list; the count keeps running.
const maxStoredViolations = 16

// Observer checks every access against the analysis claims. It is not
// parallel-safe, so multi-core phases run on the interleaved engine.
type Observer struct {
	a       *Analysis
	space   *mem.Space
	claims  [][]claim // indexed by (IP - TextBase) / InstrBytes
	checked map[int]*checkedObj

	accesses       uint64
	checkedCount   uint64
	violationCount uint64
	violations     []Violation
}

// NewObserver builds the claim table for a machine executing the
// analyzed program inside the given address space.
func NewObserver(a *Analysis, space *mem.Space) *Observer {
	ob := &Observer{
		a:       a,
		space:   space,
		claims:  make([][]claim, a.Program.NumInstrs()),
		checked: make(map[int]*checkedObj),
	}
	for id, v := range a.verdictOf {
		if v.Verdict == Frozen {
			continue
		}
		s := uint64(v.Type.Size)
		co := &checkedObj{verdict: v, size: s, fieldOfByte: make([]int8, s)}
		for b := uint64(0); b < s; b++ {
			co.fieldOfByte[b] = int8(fieldIdxAt(v.Type, int(b)))
		}
		ob.checked[id] = co
	}
	for ip, ia := range a.attrs {
		idx := int((ip - isa.TextBase) / isa.InstrBytes)
		if idx < 0 || idx >= len(ob.claims) {
			continue
		}
		for id, oa := range ia.objs {
			if ob.checked[id] == nil {
				continue
			}
			ob.claims[idx] = append(ob.claims[idx], claim{obj: id, mask: oa.mask, all: oa.maskAll})
		}
	}
	return ob
}

// OnAccess implements vm.AccessObserver.
func (ob *Observer) OnAccess(ev *vm.MemEvent) uint64 {
	ob.accesses++
	obj := ob.space.FindObject(ev.EA)
	if obj == nil {
		return 0
	}
	id, ok := ob.objID(obj)
	if !ok {
		return 0
	}
	co := ob.checked[id]
	if co == nil {
		return 0
	}
	co.accesses++
	ob.checkedCount++

	off := (ev.EA - obj.Base) % co.size
	var touched uint64
	for j := uint64(0); j < uint64(ev.Size); j++ {
		if fi := co.fieldOfByte[(off+j)%co.size]; fi >= 0 {
			touched |= 1 << uint(fi)
		}
	}

	idx := int((ev.IP - isa.TextBase) / isa.InstrBytes)
	var allowed uint64
	found := false
	if idx >= 0 && idx < len(ob.claims) {
		for _, c := range ob.claims[idx] {
			if c.obj == id {
				found = true
				if c.all {
					return 0
				}
				allowed = c.mask
				break
			}
		}
	}
	switch {
	case !found:
		ob.violate(ev, co, off, "access not attributed to this object by the static pass")
	case touched&^allowed != 0:
		ob.violate(ev, co, off, fmt.Sprintf(
			"access touches field mask %#x but the static footprint allows %#x", touched, allowed))
	}
	return 0
}

func (ob *Observer) violate(ev *vm.MemEvent, co *checkedObj, off uint64, msg string) {
	ob.violationCount++
	if len(ob.violations) >= maxStoredViolations {
		return
	}
	ob.violations = append(ob.violations, Violation{
		IP: ev.IP, Where: ob.a.where(ev.IP), Obj: co.verdict.Name,
		ElemOff: off, Size: ev.Size, Msg: msg,
	})
}

// objID maps a runtime memory object to an analysis object id.
func (ob *Observer) objID(obj *mem.Object) (int, bool) {
	if obj.GlobalIx >= 0 {
		if obj.GlobalIx >= len(ob.a.objOfGlobal) {
			return 0, false
		}
		return ob.a.objOfGlobal[obj.GlobalIx], true
	}
	if obj.AllocIP != 0 {
		id, ok := ob.a.objOfAlloc[obj.AllocIP]
		return id, ok
	}
	return 0, false
}

// ObjCheck summarizes the dynamic coverage of one checked object.
type ObjCheck struct {
	Name     string
	Verdict  Verdict
	Accesses uint64
}

// Report is the outcome of one cross-check run.
type Report struct {
	Accesses       uint64
	Checked        uint64
	ViolationCount uint64
	Violations     []Violation // first maxStoredViolations, in order
	Objects        []ObjCheck  // checked objects in verdict-listing order
}

// Failed reports whether any dynamic access contradicted a static claim.
func (r *Report) Failed() bool { return r.ViolationCount > 0 }

// RenderText writes the cross-check summary.
func (r *Report) RenderText(w io.Writer) {
	fmt.Fprintf(w, "legality cross-check: %d accesses, %d checked against claims, %d violations\n",
		r.Accesses, r.Checked, r.ViolationCount)
	for _, oc := range r.Objects {
		fmt.Fprintf(w, "  %s (%s): %d accesses\n", oc.Name, oc.Verdict.tag(), oc.Accesses)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  VIOLATION %s: %s elem+%d size %d: %s\n",
			v.Where, v.Obj, v.ElemOff, v.Size, v.Msg)
	}
	if !r.Failed() {
		fmt.Fprintln(w, "  LEGALITY-OK")
	}
}

// Report assembles the observer's counters into a Report.
func (ob *Observer) Report() *Report {
	rep := &Report{
		Accesses:       ob.accesses,
		Checked:        ob.checkedCount,
		ViolationCount: ob.violationCount,
		Violations:     ob.violations,
	}
	// List checked objects in the analysis's deterministic object order.
	for _, v := range ob.a.Objects {
		for id, co := range ob.checked {
			if co.verdict == v {
				_ = id
				rep.Objects = append(rep.Objects, ObjCheck{Name: v.Name, Verdict: v.Verdict, Accesses: co.accesses})
				break
			}
		}
	}
	return rep
}

// CrossCheck replays the program (entry function when phases is empty)
// under the checking observer and returns the report. The machine runs
// the full cache model with every access delivered to the observer.
func CrossCheck(a *Analysis, cacheCfg cache.Config, phases [][]vm.ThreadSpec) (*Report, error) {
	cores := 1
	for _, ph := range phases {
		for _, ts := range ph {
			if ts.Core+1 > cores {
				cores = ts.Core + 1
			}
		}
	}
	m, err := vm.NewMachine(a.Program, cacheCfg, cores, vm.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ob := NewObserver(a, m.Space)
	m.Observer = ob
	if _, err := m.RunAll(phases); err != nil {
		return nil, err
	}
	return ob.Report(), nil
}
