package legality

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/prog"
)

// recType is the canonical 24-byte test record: a@0, b@8, len@16(4), crc@20(4).
func recType() *prog.StructType {
	return &prog.StructType{
		Name: "rec",
		Fields: []prog.PhysField{
			{Name: "a", Offset: 0, Size: 8},
			{Name: "b", Offset: 8, Size: 8},
			{Name: "len", Offset: 16, Size: 4},
			{Name: "crc", Offset: 20, Size: 4},
		},
		Size: 24, Align: 8,
	}
}

func analyze(t *testing.T, p *prog.Program) *Analysis {
	t.Helper()
	a, err := AnalyzeProgram(p, nil)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	return a
}

func soleVerdict(t *testing.T, a *Analysis) *ObjectVerdict {
	t.Helper()
	if len(a.Objects) != 1 {
		var buf bytes.Buffer
		a.RenderText(&buf)
		t.Fatalf("want 1 record object, got %d:\n%s", len(a.Objects), buf.String())
	}
	return a.Objects[0]
}

// TestSplitSafeAffineLoop: a plain field-local AoS sweep must be
// SplitSafe with one stream per access instruction.
func TestSplitSafeAffineLoop(t *testing.T) {
	const n = 50
	b := prog.NewBuilder("safe")
	tid := b.Type(recType())
	g := b.Global("recs", n*24, tid)
	b.Func("main", "safe.c")
	base, i, x, y := b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.ForRange(i, 0, n, 1, func() {
		b.Load(x, base, i, 24, 0, 8)
		b.Load(y, base, i, 24, 8, 8)
		b.Add(x, x, y)
		b.Store(x, base, i, 24, 16, 4)
	})
	b.Halt()
	a := analyze(t, b.MustProgram())
	v := soleVerdict(t, a)
	if v.Verdict != SplitSafe {
		var buf bytes.Buffer
		a.RenderText(&buf)
		t.Fatalf("verdict = %v, want split-safe:\n%s", v.Verdict, buf.String())
	}
	if v.Streams != 3 {
		t.Errorf("streams = %d, want 3", v.Streams)
	}
}

// TestKeepTogetherSpanningAccess: an 8-byte access covering two 4-byte
// fields forces the pair into one group.
func TestKeepTogetherSpanningAccess(t *testing.T) {
	const n = 16
	b := prog.NewBuilder("span")
	tid := b.Type(recType())
	g := b.Global("recs", n*24, tid)
	b.Func("main", "span.c")
	base, i, x := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.ForRange(i, 0, n, 1, func() {
		b.Load(x, base, i, 24, 16, 8) // covers len and crc at once
		b.Store(x, base, i, 24, 0, 8)
	})
	b.Halt()
	a := analyze(t, b.MustProgram())
	v := soleVerdict(t, a)
	if v.Verdict != KeepTogether {
		t.Fatalf("verdict = %v, want keep-together", v.Verdict)
	}
	if len(v.Pairs) != 1 || v.Pairs[0] != [2]int{2, 3} {
		t.Fatalf("pairs = %v, want [[2 3]]", v.Pairs)
	}
	// The verdict must survive the dynamic cross-check.
	rep, err := CrossCheck(a, cache.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("CrossCheck: %v", err)
	}
	if rep.Failed() {
		var buf bytes.Buffer
		rep.RenderText(&buf)
		t.Fatalf("cross-check failed:\n%s", buf.String())
	}
	if rep.Checked == 0 {
		t.Fatal("cross-check saw no checked accesses")
	}
}

// TestFrozenOpaqueFlow: a field address pushed through Xor and
// dereferenced must freeze the object.
func TestFrozenOpaqueFlow(t *testing.T) {
	const n = 16
	b := prog.NewBuilder("opaque")
	tid := b.Type(recType())
	g := b.Global("recs", n*24, tid)
	b.Func("main", "opaque.c")
	base, i, q, key, x := b.R(), b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.MovI(key, 0x5a)
	b.ForRange(i, 0, n, 1, func() {
		b.MulI(q, i, 24)
		b.Add(q, q, base)
		b.AddI(q, q, 20) // &recs[i].crc
		b.Xor(q, q, key) // obfuscate
		b.Xor(q, q, key) // deobfuscate: dynamically the same address
		b.Load(x, q, 0, 1, 0, 4)
	})
	b.Halt()
	a := analyze(t, b.MustProgram())
	v := soleVerdict(t, a)
	if v.Verdict != Frozen {
		var buf bytes.Buffer
		a.RenderText(&buf)
		t.Fatalf("verdict = %v, want frozen:\n%s", v.Verdict, buf.String())
	}
	// Frozen objects carry no claims, so the replay must still pass.
	rep, err := CrossCheck(a, cache.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("CrossCheck: %v", err)
	}
	if rep.Failed() {
		t.Fatal("cross-check must not fail on a frozen object")
	}
}

// TestFrozenFieldAddrEscape: storing an interior (field) pointer to
// memory freezes the object even though the access itself is field-local.
func TestFrozenFieldAddrEscape(t *testing.T) {
	const n = 16
	b := prog.NewBuilder("escape-store")
	tid := b.Type(recType())
	g := b.Global("recs", n*24, tid)
	slot := b.Global("slot", 8, -1)
	b.Func("main", "escape.c")
	base, sb, q := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.GAddr(sb, slot)
	b.AddI(q, base, 8) // &recs[0].b — an interior pointer
	b.Store(q, sb, 0, 1, 0, 8)
	b.Halt()
	a := analyze(t, b.MustProgram())
	v := soleVerdict(t, a)
	if v.Verdict != Frozen {
		var buf bytes.Buffer
		a.RenderText(&buf)
		t.Fatalf("verdict = %v, want frozen:\n%s", v.Verdict, buf.String())
	}
}

// TestPointerChaseStaysSafe: the linked-list idiom — whole-element
// pointers stored to memory, reloaded, and dereferenced at field offsets
// — must stay SplitSafe (this is TSP's tour loop in miniature).
func TestPointerChaseStaysSafe(t *testing.T) {
	const n = 8
	b := prog.NewBuilder("chase")
	tid := b.Type(recType())
	head := b.Global("head", 8, -1)
	b.Func("main", "chase.c")
	hb, sz, node, prev, i, p, x := b.R(), b.R(), b.R(), b.R(), b.R(), b.R(), b.R()
	b.GAddr(hb, head)
	b.MovI(prev, 0)
	b.MovI(sz, 24)
	b.ForRange(i, 0, n, 1, func() {
		b.Alloc(node, sz, tid)
		b.Store(prev, node, 0, 1, 8, 8) // node.b = prev (next pointer in b)
		b.Mov(prev, node)
	})
	b.Store(prev, hb, 0, 1, 0, 8)
	b.Load(p, hb, 0, 1, 0, 8)
	b.WhileNZ(p, func() {
		b.Load(x, p, 0, 1, 0, 8) // p.a
		b.Load(p, p, 0, 1, 8, 8) // p = p.b
	})
	b.Halt()
	a := analyze(t, b.MustProgram())
	v := soleVerdict(t, a)
	if v.Verdict != SplitSafe {
		var buf bytes.Buffer
		a.RenderText(&buf)
		t.Fatalf("verdict = %v, want split-safe:\n%s", v.Verdict, buf.String())
	}
	rep, err := CrossCheck(a, cache.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("CrossCheck: %v", err)
	}
	if rep.Failed() {
		var buf bytes.Buffer
		rep.RenderText(&buf)
		t.Fatalf("cross-check failed:\n%s", buf.String())
	}
}

// TestCrossCheckCatchesLies: corrupt the static footprints and the
// replay must flag violations — the checker is live, not vacuous.
func TestCrossCheckCatchesLies(t *testing.T) {
	const n = 16
	b := prog.NewBuilder("lies")
	tid := b.Type(recType())
	g := b.Global("recs", n*24, tid)
	b.Func("main", "lies.c")
	base, i, x := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.ForRange(i, 0, n, 1, func() {
		b.Load(x, base, i, 24, 8, 8)
	})
	b.Halt()
	a := analyze(t, b.MustProgram())
	if v := soleVerdict(t, a); v.Verdict != SplitSafe {
		t.Fatalf("verdict = %v, want split-safe", v.Verdict)
	}
	for _, ia := range a.attrs {
		for _, oa := range ia.objs {
			oa.mask = 1 // claim field a; the loop really reads field b
		}
	}
	rep, err := CrossCheck(a, cache.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("CrossCheck: %v", err)
	}
	if !rep.Failed() {
		t.Fatal("corrupted footprints were not flagged")
	}
}

// TestUnattributableAccessDemotesAll: a load through a register the pass
// cannot trace to any object must drop every claim in the program.
func TestUnattributableAccessDemotesAll(t *testing.T) {
	const n = 16
	b := prog.NewBuilder("wild")
	tid := b.Type(recType())
	g := b.Global("recs", n*24, tid)
	b.Func("main", "wild.c")
	base, x, w := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.Load(x, base, 0, 1, 0, 8) // recs[0].a: would be split-safe alone
	b.Load(x, w, 0, 1, 0, 8)    // w is never written: no provenance at all
	b.Halt()
	a := analyze(t, b.MustProgram())
	if len(a.Demoted) == 0 {
		t.Fatal("no program-level demotion recorded")
	}
	if v := soleVerdict(t, a); v.Verdict != Frozen {
		t.Fatalf("verdict = %v, want frozen under program demotion", v.Verdict)
	}
}

// TestDeterministicRender: two independent runs over the same program
// must render byte-identical output.
func TestDeterministicRender(t *testing.T) {
	build := func() *prog.Program {
		const n = 32
		b := prog.NewBuilder("det")
		tid := b.Type(recType())
		g := b.Global("recs", n*24, tid)
		pairTy := b.Type(&prog.StructType{
			Name: "pair",
			Fields: []prog.PhysField{
				{Name: "lo", Offset: 0, Size: 4},
				{Name: "hi", Offset: 4, Size: 4},
			},
			Size: 8, Align: 4,
		})
		h := b.Global("chk", 16*8, pairTy)
		b.Func("main", "det.c")
		base, hb, i, x, q, key := b.R(), b.R(), b.R(), b.R(), b.R(), b.R()
		b.GAddr(base, g)
		b.GAddr(hb, h)
		b.MovI(key, 3)
		b.ForRange(i, 0, 32, 1, func() {
			b.Load(x, base, i, 24, 0, 8)
			b.Store(x, base, i, 24, 8, 8)
		})
		b.ForRange(i, 0, 16, 1, func() {
			b.Load(x, hb, i, 8, 0, 8) // spans lo+hi
			b.Xor(q, x, key)
			b.Store(q, hb, i, 8, 0, 4)
		})
		b.Halt()
		return b.MustProgram()
	}
	var out [2]bytes.Buffer
	for k := 0; k < 2; k++ {
		a := analyze(t, build())
		a.RenderText(&out[k])
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatalf("render not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			out[0].String(), out[1].String())
	}
	if out[0].Len() == 0 {
		t.Fatal("empty render")
	}
}
