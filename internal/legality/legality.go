// Package legality is the transform-legality analyzer: a whole-program
// alias/escape/address-taken pass over the prog IR that decides, per
// record object, whether StructSlim's splitting advice may be applied
// mechanically. The paper applies splits by hand and leaves legality to
// the programmer; closing the loop (structslim optimize) needs a static
// proof that every access to the object is *field-local* — computed from
// the object's base plus a statically bounded offset that stays inside
// one field — before the A/B engine may run a transformed layout.
//
// The pass tracks provenance + congruence values (see value.go) through
// registers, calls, and memory: pointer facts stored to memory are kept
// in a field-sensitive store environment so pointer chases (TSP's tour,
// Health's arena queues) re-attribute on load. Accesses the pass can
// attribute contribute a per-field footprint; the verdict lattice is
//
//	SplitSafe      every attributed access touches exactly one field
//	KeepTogether   some access's footprint spans several fields (block
//	               copies, boundary-crossing loads, sub-element strides):
//	               those fields must stay in one split group
//	Frozen         a field address escaped into opaque register flows
//	               (mul/div/bit/float ops on pointers) or the pass could
//	               not attribute an access at all: no split is proven safe
//
// Soundness rests on the C object-provenance rule — address arithmetic
// cannot move a pointer between objects — plus the absence of forged
// (integer-literal) pointers. Both are enforced dynamically: CrossCheck
// replays the workload under a vm.AccessObserver and hard-fails if any
// access contradicts a SplitSafe or KeepTogether claim.
package legality

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/staticlint"
)

// Verdict is the per-object legality verdict.
type Verdict uint8

// Verdict levels, ordered from permissive to restrictive.
const (
	SplitSafe Verdict = iota
	KeepTogether
	Frozen
)

func (v Verdict) String() string {
	switch v {
	case SplitSafe:
		return "split-safe"
	case KeepTogether:
		return "keep-together"
	case Frozen:
		return "frozen"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Reason explains one contribution to an object's verdict. Field is the
// record field index the reason anchors to (-1 for object-level
// reasons); Other is the partner field of a keep-together pair (-1
// otherwise). Reasons are sorted by (Field, FnID, IP) so rendered output
// is byte-stable.
type Reason struct {
	Field int
	Other int
	FnID  int
	IP    uint64
	Where string // file:line of the offending instruction ("" for program-level)
	Msg   string
}

// ObjectVerdict is the verdict for one record object (a typed global or
// a typed heap allocation site).
type ObjectVerdict struct {
	// GlobalIx is the program global index, or -1 for heap objects;
	// AllocIP is the allocation site for heap objects.
	GlobalIx int
	AllocIP  uint64
	Name     string // symbol name, or heap@file:line
	TypeID   int
	Type     *prog.StructType

	Verdict Verdict
	// Pairs lists field-index pairs that must stay in the same split
	// group (i < j, sorted, deduplicated). Empty for SplitSafe.
	Pairs [][2]int
	// AllFields marks footprints the pass could only bound to "somewhere
	// in the element": the whole record must stay together.
	AllFields bool
	Reasons   []Reason
	// Streams is the number of distinct memory instructions the pass
	// attributed to this object.
	Streams int
}

// PairNames renders the keep-together pairs as field-name pairs.
func (v *ObjectVerdict) PairNames() [][2]string {
	out := make([][2]string, 0, len(v.Pairs))
	for _, p := range v.Pairs {
		out = append(out, [2]string{v.Type.Fields[p[0]].Name, v.Type.Fields[p[1]].Name})
	}
	return out
}

// objInfo is one row of the analysis object table: every global and
// every allocation site, typed or not, in deterministic id order
// (globals by index, then allocation sites by IP).
type objInfo struct {
	global  int // ≥ 0 for globals, -1 for heap sites
	allocIP uint64
	name    string
	typeID  int
	st      *prog.StructType // nil when untyped
	size    int64            // global size; 0 for heap sites (size varies)
}

// Analysis is the full legality analysis of one program.
type Analysis struct {
	Program *prog.Program
	// Objects holds the verdicts for every record-typed object, sorted
	// by object id (globals by index, then allocation sites by IP).
	Objects []*ObjectVerdict
	// Demoted lists program-level demotions: accesses the pass could not
	// attribute to any object (forged or fully unknown addresses) and
	// fixpoint-budget exhaustion. Any entry freezes every record object.
	Demoted []Reason

	objs        []objInfo
	objOfGlobal []int
	objOfAlloc  map[uint64]int
	verdictOf   map[int]*ObjectVerdict // object id → verdict (record objects)
	attrs       map[uint64]*ipAttr     // per memory-instruction attribution
}

// AnalyzeProgram runs the legality pass. The staticlint analysis is
// consulted for Exact affine streams (its effective-address resolver and
// IV dataflow are strictly more precise inside the affine template); sa
// may be nil, in which case it is computed here.
func AnalyzeProgram(p *prog.Program, sa *staticlint.Analysis) (*Analysis, error) {
	if p == nil || !p.Finalized() {
		return nil, fmt.Errorf("legality: program not finalized")
	}
	if sa == nil {
		var err error
		sa, err = staticlint.AnalyzeProgram(p)
		if err != nil {
			return nil, err
		}
	}
	a := &Analysis{
		Program:    p,
		objOfAlloc: make(map[uint64]int),
		verdictOf:  make(map[int]*ObjectVerdict),
	}
	a.buildObjectTable(p)

	az := newAnalyzer(p, sa, a)
	col := az.solve()
	a.attrs = col.attrs
	a.buildVerdicts(col)
	return a, nil
}

// buildObjectTable enumerates globals and allocation sites.
func (a *Analysis) buildObjectTable(p *prog.Program) {
	a.objOfGlobal = make([]int, len(p.Globals))
	for gi, g := range p.Globals {
		var st *prog.StructType
		if g.TypeID >= 0 && g.TypeID < len(p.Types) {
			st = p.Types[g.TypeID]
		}
		a.objOfGlobal[gi] = len(a.objs)
		a.objs = append(a.objs, objInfo{
			global: gi, allocIP: 0, name: g.Name, typeID: g.TypeID, st: st, size: g.Size,
		})
	}
	// Allocation sites in IP order.
	var sites []uint64
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == isa.Alloc {
					sites = append(sites, b.Instrs[i].IP)
				}
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, ip := range sites {
		tid := -1
		if t, ok := p.AllocSiteType[ip]; ok {
			tid = t
		}
		var st *prog.StructType
		if tid >= 0 && tid < len(p.Types) {
			st = p.Types[tid]
		}
		name := fmt.Sprintf("heap@%#x", ip)
		if file, line := p.LineOf(ip); file != "" {
			name = fmt.Sprintf("heap@%s:%d", file, line)
		}
		a.objOfAlloc[ip] = len(a.objs)
		a.objs = append(a.objs, objInfo{global: -1, allocIP: ip, name: name, typeID: tid, st: st})
	}
}

// ForGlobal returns the verdict for a typed global, or nil.
func (a *Analysis) ForGlobal(gi int) *ObjectVerdict {
	if gi < 0 || gi >= len(a.objOfGlobal) {
		return nil
	}
	return a.verdictOf[a.objOfGlobal[gi]]
}

// ForAlloc returns the verdict for a typed allocation site, or nil.
func (a *Analysis) ForAlloc(ip uint64) *ObjectVerdict {
	id, ok := a.objOfAlloc[ip]
	if !ok {
		return nil
	}
	return a.verdictOf[id]
}

// where renders an IP as file:line.
func (a *Analysis) where(ip uint64) string {
	if file, line := a.Program.LineOf(ip); file != "" {
		return fmt.Sprintf("%s:%d", file, line)
	}
	return fmt.Sprintf("ip %#x", ip)
}
