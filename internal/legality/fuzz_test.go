package legality

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/prog"
)

// fuzzProgram decodes byte pairs into a loop-nest program over one typed
// record array plus an untyped pointer-spill region. The op set is built
// to wander the verdict lattice: field-local loads and stores (the
// split-safe core), element-pointer computation with optional Xor
// obfuscation (the frozen path — the Xor round-trips so the dynamic
// address stays valid), pointer spills to memory at element or interior
// offsets (the escape path), and reloads that chase the spilled pointer
// at field offsets (the linked-structure idiom). Every address stays
// inside the two globals by construction so the replay cannot fault.
//
// Byte pairs (op, arg), op%6: 0 load field, 1 store field, 2 open loop,
// 3 close loop, 4 compute/obfuscate/spill an element pointer, 5 reload a
// spilled pointer and dereference it.
func fuzzProgram(data []byte) *prog.Program {
	if len(data) < 2 || len(data) > 64 {
		return nil
	}
	const n = 32
	b := prog.NewBuilder("fuzz")
	tid := b.Type(recType())
	g := b.Global("recs", n*24, tid)
	scratch := b.Global("scratch", 64, -1)
	b.Func("main", "fuzz.c")
	base, sb, x, q, key := b.R(), b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.GAddr(sb, scratch)
	b.MovI(key, 0x33)
	// Initialize every spill slot with a valid element pointer so a
	// reload-and-dereference is never wild.
	for s := int64(0); s < 8; s++ {
		b.Store(base, sb, 0, 1, s*8, 8)
	}

	// Field starts and sizes of recType: a@0/8 b@8/8 len@16/4 crc@20/4.
	fieldOff := [4]int64{0, 8, 16, 20}
	fieldSz := [4]int{8, 8, 4, 4}

	var ivs []isa.Reg
	loops, pos := 0, 0
	var walk func(depth int)
	walk = func(depth int) {
		for pos+1 < len(data) {
			op, arg := data[pos], data[pos+1]
			pos += 2
			idx := isa.RZ
			if len(ivs) > 0 {
				idx = ivs[int(arg)%len(ivs)]
			}
			fi := int(arg) % 4
			switch op % 6 {
			case 0:
				b.Load(x, base, idx, 24, fieldOff[fi], fieldSz[fi])
			case 1:
				b.Store(x, base, idx, 24, fieldOff[fi], fieldSz[fi])
			case 2:
				if depth >= 3 || loops >= 6 {
					continue
				}
				loops++
				iv := b.R()
				trips := int64(arg%7) + 2
				step := int64(arg%3) + 1
				ivs = append(ivs, iv)
				b.ForRange(iv, 0, trips*step, step, func() { walk(depth + 1) })
				ivs = ivs[:len(ivs)-1]
			case 3:
				if depth > 0 {
					return
				}
			case 4:
				// q = &recs[iv] (+ a field offset when arg&4): an element
				// or interior pointer.
				b.MulI(q, idx, 24)
				b.Add(q, q, base)
				if arg&4 != 0 {
					b.AddI(q, q, fieldOff[fi])
				}
				if arg&1 != 0 {
					b.Xor(q, q, key) // tag …
					b.Xor(q, q, key) // … and untag: same dynamic address
				}
				if arg&2 != 0 {
					b.Store(q, sb, 0, 1, int64((arg>>3)%8)*8, 8) // spill
				}
				b.Load(x, q, 0, 1, 0, 4)
			case 5:
				b.Load(q, sb, 0, 1, int64((arg>>3)%8)*8, 8)
				// Dereference within the element; 20+8 wraps into the
				// next element, which stays in bounds (idx ≤ 27 < 31).
				b.Load(x, q, 0, 1, int64(arg%2)*8, 8)
			}
		}
	}
	walk(0)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		return nil
	}
	return p
}

// FuzzLegality drives the pass over the generated program space. Three
// invariants: the pass never panics or errors, two independent
// build+analyze+render cycles are byte-identical, and — the soundness
// gate — replaying the program under the cross-check observer never
// contradicts a SplitSafe or KeepTogether claim.
func FuzzLegality(f *testing.F) {
	f.Add([]byte{2, 5, 0, 9, 1, 2, 3, 0})              // field-local loop
	f.Add([]byte{2, 3, 4, 1, 3, 0})                    // xor-obfuscated pointer
	f.Add([]byte{4, 2, 2, 4, 5, 8, 3, 0})              // spill then chase
	f.Add([]byte{2, 2, 4, 6, 3, 0, 0, 1})              // interior spill
	f.Add([]byte{2, 2, 2, 8, 0, 17, 1, 4, 3, 0, 5, 1}) // nest + reload
	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzProgram(data)
		if p == nil {
			return
		}
		a, err := AnalyzeProgram(p, nil)
		if err != nil {
			t.Fatalf("AnalyzeProgram: %v", err)
		}
		var r1, r2 bytes.Buffer
		a.RenderText(&r1)

		p2 := fuzzProgram(data)
		a2, err := AnalyzeProgram(p2, nil)
		if err != nil {
			t.Fatalf("AnalyzeProgram (rebuild): %v", err)
		}
		a2.RenderText(&r2)
		if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
			t.Fatalf("verdicts not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s",
				r1.String(), r2.String())
		}

		rep, err := CrossCheck(a, cache.DefaultConfig(), nil)
		if err != nil {
			t.Fatalf("CrossCheck: %v", err)
		}
		if rep.Failed() {
			var buf bytes.Buffer
			rep.RenderText(&buf)
			t.Fatalf("soundness violation on input %v:\n%s\n%s", data, r1.String(), buf.String())
		}
	})
}
