package legality

import "math/bits"

// value.go is the abstract domain of the provenance pass: each register
// holds a *provenance + congruence* value — the set of data objects a
// pointer may be based on, together with a congruence class describing
// the offset from that base. The congruence half is the classic
// "constant + stride lattice": (c, m) denotes the set {c + k·m | k ∈ Z},
// with m == 0 meaning the exact constant c and m == 1 meaning any
// integer. The provenance half is a bitset over the analysis object
// table. A value whose object set is empty is a plain integer; a value
// with objects and opaque == true is a pointer that passed through
// arithmetic the resolver cannot invert (mul, div, bit ops, float ops) —
// dereferencing or storing such a value freezes its objects.

// objSet is an immutable bitset over analysis-object ids. The zero value
// is the empty set.
type objSet []uint64

func (s objSet) has(i int) bool {
	w := i >> 6
	return w < len(s) && s[w]&(1<<(uint(i)&63)) != 0
}

func (s objSet) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s objSet) equal(o objSet) bool {
	n := len(s)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s) {
			a = s[i]
		}
		if i < len(o) {
			b = o[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// union returns s ∪ o, reusing s when o adds nothing.
func (s objSet) union(o objSet) objSet {
	if o.empty() {
		return s
	}
	if s.empty() {
		return o
	}
	grown := false
	for i, w := range o {
		if i >= len(s) || s[i]|w != s[i] {
			grown = true
			break
		}
	}
	if !grown {
		return s
	}
	n := len(s)
	if len(o) > n {
		n = len(o)
	}
	r := make(objSet, n)
	copy(r, s)
	for i, w := range o {
		r[i] |= w
	}
	return r
}

func singleObj(i int) objSet {
	s := make(objSet, i>>6+1)
	s[i>>6] = 1 << (uint(i) & 63)
	return s
}

// each calls fn for every member in ascending order.
func (s objSet) each(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			fn(i)
			w &= w - 1
		}
	}
}

// value is one abstract register value. Invariants: if m > 0 then
// 0 <= c < m after canon(); opaque implies objs non-empty.
type value struct {
	objs   objSet
	c      int64
	m      uint64
	opaque bool
}

func unknown() value       { return value{m: 1} }
func exact(c int64) value  { return value{c: c} }
func objValue(i int) value { return value{objs: singleObj(i)} }

// opaquePtr is the demoted form of a pointer that went through
// non-affine arithmetic: provenance retained, offset lost.
func opaquePtr(objs objSet) value { return value{objs: objs, m: 1, opaque: true} }

func (v value) isPtr() bool { return !v.objs.empty() }

// canon normalizes the congruence representative.
func (v value) canon() value {
	if v.m == 1 {
		v.c = 0
	} else if v.m > 1 {
		v.c = int64(umod64(v.c, v.m))
	}
	if v.objs.empty() {
		v.opaque = false
		v.objs = nil
	}
	return v
}

func (v value) equal(o value) bool {
	return v.c == o.c && v.m == o.m && v.opaque == o.opaque && v.objs.equal(o.objs)
}

// congJoin joins two congruence classes: the smallest class (largest
// modulus) containing both.
func congJoin(c1 int64, m1 uint64, c2 int64, m2 uint64) (int64, uint64) {
	if m1 == 0 && m2 == 0 && c1 == c2 {
		return c1, 0
	}
	// |c1 - c2| computed wrapping; offsets in practice never overflow.
	d := uint64(c1 - c2)
	if int64(d) < 0 {
		d = -d
	}
	m := gcd64(gcd64(m1, m2), d)
	if m == 0 {
		return c1, 0
	}
	return int64(umod64(c1, m)), m
}

func join(a, b value) value {
	c, m := congJoin(a.c, a.m, b.c, b.m)
	return value{
		objs:   a.objs.union(b.objs),
		c:      c,
		m:      m,
		opaque: a.opaque || b.opaque,
	}.canon()
}

// addVals models Add: pointer + integer keeps provenance and shifts the
// class; pointer + pointer is not an address anymore (demoted opaque).
func addVals(a, b value) value {
	if a.isPtr() && b.isPtr() {
		return opaquePtr(a.objs.union(b.objs))
	}
	v := value{objs: a.objs.union(b.objs), opaque: a.opaque || b.opaque}
	if a.m == 0 && b.m == 0 {
		v.c = a.c + b.c
	} else {
		v.m = gcd64(a.m, b.m)
		v.c = a.c + b.c
	}
	return v.canon()
}

// subVals models Sub: ptr - int shifts; ptr - ptr is a plain integer
// (a pointer difference); int - ptr is demoted.
func subVals(a, b value) value {
	switch {
	case a.isPtr() && b.isPtr():
		return unknown()
	case b.isPtr():
		return opaquePtr(b.objs)
	}
	v := value{objs: a.objs, opaque: a.opaque}
	if a.m == 0 && b.m == 0 {
		v.c = a.c - b.c
	} else {
		v.m = gcd64(a.m, b.m)
		v.c = a.c - b.c
	}
	return v.canon()
}

// mulVals models Mul/MulI on integers; pointer operands are handled by
// the caller (they demote). (c1 + m1·Z)·(c2 + m2·Z) ⊆ c1c2 + g·Z with
// g = gcd(c1·m2, c2·m1, m1·m2).
func mulVals(a, b value) value {
	if a.m == 0 && b.m == 0 {
		if p, ok := mulOverflows(a.c, b.c); ok {
			return exact(p)
		}
		return unknown()
	}
	t1, ok1 := mulOverflows(a.c, int64(b.m))
	t2, ok2 := mulOverflows(b.c, int64(a.m))
	t3, ok3 := mulOverflows(int64(a.m), int64(b.m))
	p, okp := mulOverflows(a.c, b.c)
	if !ok1 || !ok2 || !ok3 || !okp {
		return unknown()
	}
	g := gcd64(gcd64(abs64u(t1), abs64u(t2)), abs64u(t3))
	if g == 0 {
		return exact(p)
	}
	return value{c: p, m: g}.canon()
}

// mulOverflows returns a*b and whether it did NOT overflow.
func mulOverflows(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64u(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}

// umod64 is the Euclidean remainder of a signed value by a modulus.
func umod64(c int64, m uint64) uint64 {
	r := c % int64(m)
	if r < 0 {
		r += int64(m)
	}
	return uint64(r)
}
