package legality

// summary.go bridges the pass to the profiler's report types: SummaryFor
// condenses the per-object verdicts of one structure into the
// core.LegalitySummary that the splitting machinery consults, and
// FrozenIdentities maps frozen objects back onto profile identities so
// array regrouping can skip arrays no transform may touch.

import (
	"sort"

	"repro/internal/core"
	"repro/internal/profile"
)

// matches reports whether the verdict's object belongs to the named
// structure: by struct type name, or by object symbol name.
func (v *ObjectVerdict) matches(name, typeName string) bool {
	if typeName != "" && v.Type.Name == typeName {
		return true
	}
	return name != "" && (v.Name == name || v.Type.Name == name)
}

// SummaryFor condenses the verdicts of every object of one structure
// (matched by struct type name, falling back to the display name) into a
// core.LegalitySummary: the most restrictive verdict wins, keep-together
// pairs are unioned. Returns nil when no analyzed object matches.
func SummaryFor(a *Analysis, name, typeName string) *core.LegalitySummary {
	var objs []*ObjectVerdict
	for _, v := range a.Objects {
		if v.matches(name, typeName) {
			objs = append(objs, v)
		}
	}
	if len(objs) == 0 {
		return nil
	}
	worst := SplitSafe
	for _, v := range objs {
		if v.Verdict > worst {
			worst = v.Verdict
		}
	}
	sum := &core.LegalitySummary{Verdict: worst.String()}
	if worst == SplitSafe {
		return sum
	}
	for _, v := range objs {
		sum.AllFields = sum.AllFields || v.AllFields
		sum.Pairs = append(sum.Pairs, v.PairNames()...)
		if sum.Reason == "" && v.Verdict == worst && len(v.Reasons) > 0 {
			r := v.Reasons[0]
			sum.Reason = r.Msg
			if r.Where != "" {
				sum.Reason += " (at " + r.Where + ")"
			}
		}
	}
	sum.Pairs = dedupNamePairs(sum.Pairs)
	return sum
}

func dedupNamePairs(ps [][2]string) [][2]string {
	if len(ps) == 0 {
		return nil
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// FrozenIdentities maps Frozen verdicts onto profile identities: heap
// sites match by allocation IP, static objects by symbol name. The
// result feeds regroup.Options so the clustering skips frozen arrays.
func FrozenIdentities(a *Analysis, p *profile.Profile) map[uint64]bool {
	if a == nil || p == nil {
		return nil
	}
	byName := make(map[string]*ObjectVerdict)
	byAlloc := make(map[uint64]*ObjectVerdict)
	for _, v := range a.Objects {
		if v.GlobalIx >= 0 {
			byName[v.Name] = v
		} else {
			byAlloc[v.AllocIP] = v
		}
	}
	frozen := make(map[uint64]bool)
	for i := range p.Objects {
		o := &p.Objects[i]
		var v *ObjectVerdict
		if o.Heap {
			v = byAlloc[o.AllocIP]
		} else {
			v = byName[o.Name]
		}
		if v != nil && v.Verdict == Frozen {
			frozen[o.Identity] = true
		}
	}
	return frozen
}
