package legality

// render.go renders verdicts for `structslim vet -legality`. The output
// is byte-stable: objects are ordered by analysis object id (globals by
// index, then allocation sites by IP) and reasons by (Field, Other,
// FnID, IP) — the determinism test renders twice and compares bytes.

import (
	"fmt"
	"io"
)

// tag is the render token for a verdict (greppable in CI).
func (v Verdict) tag() string {
	switch v {
	case SplitSafe:
		return "SPLIT-SAFE"
	case KeepTogether:
		return "KEEP-TOGETHER"
	case Frozen:
		return "FROZEN"
	}
	return "UNKNOWN"
}

// Counts tallies the verdicts.
func (a *Analysis) Counts() (safe, keep, frozen int) {
	for _, v := range a.Objects {
		switch v.Verdict {
		case SplitSafe:
			safe++
		case KeepTogether:
			keep++
		case Frozen:
			frozen++
		}
	}
	return
}

// RenderText writes the human-readable verdict listing.
func (a *Analysis) RenderText(w io.Writer) {
	safe, keep, frozen := a.Counts()
	fmt.Fprintf(w, "legality: %s: %d record objects (%d split-safe, %d keep-together, %d frozen)\n",
		a.Program.Name, len(a.Objects), safe, keep, frozen)
	for _, v := range a.Objects {
		fmt.Fprintf(w, "  %s (struct %s, %d fields, %d streams): %s",
			v.Name, v.Type.Name, len(v.Type.Fields), v.Streams, v.Verdict.tag())
		if v.Verdict == KeepTogether {
			if v.AllFields {
				fmt.Fprintf(w, " {all fields}")
			} else {
				fmt.Fprintf(w, " ")
				for i, p := range v.PairNames() {
					if i > 0 {
						fmt.Fprintf(w, " ")
					}
					fmt.Fprintf(w, "{%s,%s}", p[0], p[1])
				}
			}
		}
		fmt.Fprintln(w)
		for _, r := range v.Reasons {
			fmt.Fprintf(w, "      %s%s\n", reasonPrefix(v, r), r.Msg)
			if r.Where != "" {
				fmt.Fprintf(w, "        at %s\n", r.Where)
			}
		}
	}
	if len(a.Demoted) > 0 {
		fmt.Fprintf(w, "  program-level demotions:\n")
		for _, r := range a.Demoted {
			if r.Where != "" {
				fmt.Fprintf(w, "      %s (at %s)\n", r.Msg, r.Where)
			} else {
				fmt.Fprintf(w, "      %s\n", r.Msg)
			}
		}
	}
}

func reasonPrefix(v *ObjectVerdict, r Reason) string {
	if r.Field < 0 || r.Field >= len(v.Type.Fields) {
		return ""
	}
	if r.Other >= 0 && r.Other < len(v.Type.Fields) {
		return fmt.Sprintf("%s+%s: ", v.Type.Fields[r.Field].Name, v.Type.Fields[r.Other].Name)
	}
	return fmt.Sprintf("%s: ", v.Type.Fields[r.Field].Name)
}
