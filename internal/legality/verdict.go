package legality

// verdict.go turns collected footprints into per-object verdicts: each
// attributed access's offset class (c + m·Z, size bytes) is intersected
// with the record layout to find the fields it can touch; single-field
// accesses leave an object SplitSafe, multi-field footprints produce
// keep-together pairs, and escapes/unattributable accesses freeze.

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/prog"
)

// fieldIdxAt returns the index of the field covering byte `off`, or -1
// for padding / out of range.
func fieldIdxAt(st *prog.StructType, off int) int {
	for i := range st.Fields {
		f := &st.Fields[i]
		if off >= f.Offset && off < f.Offset+f.Size {
			return i
		}
	}
	return -1
}

// footMask maps one footprint contribution onto the record layout.
// Offsets from the object base are c + m·Z; reduced mod the element size
// S they form the residue class c mod gcd(m, S). Every start in that
// class contributes the fields under its [start, start+size) byte span
// (wrapping into the next element). spanning reports a single access
// covering several fields; allOffsets reports a class that degenerates to
// every byte of the element.
func footMask(st *prog.StructType, r resid, size uint8) (mask uint64, spanning, allOffsets bool) {
	s := uint64(st.Size)
	if s == 0 {
		return 0, false, true
	}
	var d uint64
	if r.m == 0 {
		d = s // a single start: c mod S
	} else {
		d = gcd64(r.m, s)
	}
	if d == 1 {
		return 0, false, true
	}
	for o := umod64(r.c, d); o < s; o += d {
		var span uint64
		for j := uint64(0); j < uint64(size); j++ {
			if fi := fieldIdxAt(st, int((o+j)%s)); fi >= 0 {
				span |= 1 << uint(fi)
			}
		}
		if bits.OnesCount64(span) > 1 {
			spanning = true
		}
		mask |= span
	}
	return mask, spanning, false
}

// buildVerdicts assembles the per-object verdicts from the collector.
func (a *Analysis) buildVerdicts(col *collector) {
	for id := range a.objs {
		oi := &a.objs[id]
		if oi.st == nil || len(oi.st.Fields) == 0 {
			continue
		}
		v := &ObjectVerdict{
			GlobalIx: oi.global, AllocIP: oi.allocIP,
			Name: oi.name, TypeID: oi.typeID, Type: oi.st,
		}
		a.verdictOf[id] = v
		a.Objects = append(a.Objects, v)
	}

	// Footprints, in IP order for stable reason ordering.
	ips := make([]uint64, 0, len(col.attrs))
	for ip := range col.attrs {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		ia := col.attrs[ip]
		ids := make([]int, 0, len(ia.objs))
		for id := range ia.objs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			oa := ia.objs[id]
			v := a.verdictOf[id]
			if v == nil {
				continue // untyped object: no field claims to make
			}
			v.Streams++
			st := v.Type
			if oa.all || len(st.Fields) > 64 {
				oa.maskAll = true
				continue // frozen via the matching freeze event
			}
			var mask uint64
			spanning, allOff := false, false
			for _, r := range oa.residues {
				mk, sp, ao := footMask(st, r, ia.size)
				mask |= mk
				spanning = spanning || sp
				allOff = allOff || ao
			}
			oa.mask = mask
			if allOff {
				oa.maskAll = true
				v.AllFields = true
				v.Reasons = append(v.Reasons, Reason{
					Field: -1, Other: -1, FnID: ia.fnID, IP: ip, Where: a.where(ip),
					Msg: "access offset is unbounded within the element; every field is reachable",
				})
				continue
			}
			if bits.OnesCount64(mask) > 1 {
				why := "a stride residue reaches both"
				if spanning {
					why = fmt.Sprintf("a single %d-byte access spans", ia.size)
				}
				fs := bitIndices(mask)
				for i := 0; i < len(fs); i++ {
					for j := i + 1; j < len(fs); j++ {
						v.Pairs = append(v.Pairs, [2]int{fs[i], fs[j]})
						v.Reasons = append(v.Reasons, Reason{
							Field: fs[i], Other: fs[j], FnID: ia.fnID, IP: ip, Where: a.where(ip),
							Msg: fmt.Sprintf("%s %s and %s", why,
								st.Fields[fs[i]].Name, st.Fields[fs[j]].Name),
						})
					}
				}
			}
		}
	}

	// Escapes and opaque flows.
	frozen := make(map[int]bool)
	for _, ev := range col.freezes {
		ev.objs.each(func(id int) {
			v := a.verdictOf[id]
			if v == nil {
				return
			}
			frozen[id] = true
			v.Reasons = append(v.Reasons, Reason{
				Field: -1, Other: -1, FnID: ev.fnID, IP: ev.ip,
				Where: a.where(ev.ip), Msg: ev.msg,
			})
		})
	}

	// Program-level demotions freeze everything.
	sort.Slice(col.demoted, func(i, j int) bool {
		if col.demoted[i].FnID != col.demoted[j].FnID {
			return col.demoted[i].FnID < col.demoted[j].FnID
		}
		return col.demoted[i].IP < col.demoted[j].IP
	})
	for i := range col.demoted {
		if col.demoted[i].IP != 0 {
			col.demoted[i].Where = a.where(col.demoted[i].IP)
		}
	}
	a.Demoted = col.demoted
	if len(a.Demoted) > 0 {
		for id, v := range a.verdictOf {
			frozen[id] = true
			v.Reasons = append(v.Reasons, Reason{
				Field: -1, Other: -1, FnID: a.Demoted[0].FnID, IP: a.Demoted[0].IP,
				Where: a.Demoted[0].Where,
				Msg:   fmt.Sprintf("program-level demotion: %s", a.Demoted[0].Msg),
			})
		}
	}

	// Finalize: dedup pairs, order reasons, assign verdicts.
	for id, v := range a.verdictOf {
		v.Pairs = dedupPairs(v.Pairs)
		sort.SliceStable(v.Reasons, func(i, j int) bool {
			ri, rj := v.Reasons[i], v.Reasons[j]
			if ri.Field != rj.Field {
				return ri.Field < rj.Field
			}
			if ri.Other != rj.Other {
				return ri.Other < rj.Other
			}
			if ri.FnID != rj.FnID {
				return ri.FnID < rj.FnID
			}
			if ri.IP != rj.IP {
				return ri.IP < rj.IP
			}
			return ri.Msg < rj.Msg
		})
		// Same-line duplicates (e.g. two Xors of one source statement)
		// render identically; keep the first.
		kept := v.Reasons[:0]
		for _, r := range v.Reasons {
			dup := false
			for _, k := range kept {
				if k.Field == r.Field && k.Other == r.Other && k.Where == r.Where && k.Msg == r.Msg {
					dup = true
					break
				}
			}
			if !dup {
				kept = append(kept, r)
			}
		}
		v.Reasons = kept
		switch {
		case frozen[id]:
			v.Verdict = Frozen
		case v.AllFields || len(v.Pairs) > 0:
			v.Verdict = KeepTogether
		default:
			v.Verdict = SplitSafe
		}
	}
}

func bitIndices(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		out = append(out, bits.TrailingZeros64(mask))
		mask &= mask - 1
	}
	return out
}

func dedupPairs(ps [][2]int) [][2]int {
	if len(ps) == 0 {
		return nil
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}
