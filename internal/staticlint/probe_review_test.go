package staticlint

import (
	"testing"

	"repro/internal/isa"
)

// Probe: outer loop whose "IV" increment sits inside a nested do-while
// inner loop. The addi executes once per INNER iteration, but its block
// dominates the outer latch, so detectIVs classifies it as an outer IV.
func TestProbeNestedIncrement(t *testing.T) {
	// b0: movi r1,0 ; jmp 1
	// b1 (outer header): br -> 4 exit | fall -> 2
	// b2 (inner self-loop, post-tested): addi r1,r1,8 ; load [r1] ; br -> 2 | fall -> 3
	// b3 (outer latch): jmp 1
	// b4: halt
	blocks := []rawBlock{
		{body: []isa.Instr{{Op: isa.MovI, Rd: 1, Imm: 0}}, term: "jmp", target: 1},
		{term: "br", target: 4},
		{body: []isa.Instr{
			{Op: isa.AddI, Rd: 1, Rs1: 1, Imm: 8},
			{Op: isa.Load, Rd: 8, Rs1: 1, Rs2: isa.RZ, Size: 8},
		}, term: "br", target: 2},
		{term: "jmp", target: 1},
		{term: "halt"},
	}
	p := rawProgram(t, blocks)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	for _, sp := range a.Streams {
		t.Logf("stream IP=%#x conf=%v stride=%d reason=%q", sp.IP, sp.Confidence, sp.Stride, sp.Reason)
		for _, pl := range sp.PerLoop {
			t.Logf("  perloop %s coeff=%d", pl.Loop.Name(), pl.Coeff)
		}
	}
}
