package staticlint

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/reuse"
	"repro/internal/vm"
)

// reuseverify.go is the dynamic twin of reuse.go: it checks a static
// ReusePrediction against an actual simulated execution, three ways.
//
//  1. Histogram differential — the VM's access stream is segmented into
//     nest executions (per thread, by access IPs and the statically known
//     per-execution access count) and fed through the exact
//     Bennett–Kruskal analyzer from cold, exactly mirroring the
//     predictor's per-nest cold definition. The dynamic histogram of
//     every nest must equal the static one, bucket by bucket, within
//     HistTolerance.
//  2. FromTrace differential — the first execution's line trace is
//     retained verbatim and replayed through reuse.FromTrace; its
//     histogram must match both the incremental segmentation (validating
//     the online analyzer) and the static prediction (validating the
//     exact-tier claim from a cold stack) exactly.
//  3. Miss-ratio cross-check — the predicted per-level miss ratios are
//     compared against the hierarchy's measured behaviour: per nest from
//     the per-access serving level, and whole-run against the L1
//     hit/miss counters when every access fell inside a predicted nest.
//     The per-nest comparison covers capacity misses only (first touches
//     excluded from both sides): the prediction is made from a cold
//     stack, but at run time earlier code may already have warmed the
//     cache, so compulsory misses are not reproducible — reuse behaviour
//     is. The whole-run check brackets the measured L1 miss ratio
//     between the capacity-only and the everything-cold prediction.
//     Run the measurement with prefetching disabled: the stack model has
//     no prefetcher, and the stated tolerance (LevelTolerance) accounts
//     for associativity conflicts, not for prefetch hits.
//
// Divergence on an exact-tier claim is a hard failure: FoldReuse counts
// it as a CrossReport mismatch, which fails `structslim vet`.

const (
	// HistTolerance is the allowed per-bucket discrepancy of checks 1 and
	// 2, as a fraction of the nest's total accesses. Exact-tier claims
	// are deterministic, so matches are expected to be exact; the
	// tolerance exists to make the acceptance threshold explicit.
	HistTolerance = 0.005
	// LevelTolerance is the allowed absolute difference between predicted
	// and measured per-level miss ratios (the stack model is fully
	// associative; the hierarchy is set-associative).
	LevelTolerance = 0.10
	// maxFirstTrace bounds the retained first-execution line trace.
	maxFirstTrace = 8 << 20
)

// ReuseLevelCheck is one level's predicted-vs-measured capacity-miss
// ratio (first touches excluded from both numerator and denominator).
type ReuseLevelCheck struct {
	Name      string
	Predicted float64
	Measured  float64
	OK        bool
}

// ReuseNestCheck is the verification verdict for one predicted nest.
type ReuseNestCheck struct {
	Key  uint64
	Info *cfg.LoopInfo

	Execs       uint64
	DynAccesses uint64

	HistMatch   bool
	HistDetail  string
	TraceMatch  bool
	TraceDetail string
	Levels      []ReuseLevelCheck

	OK bool
}

// ReuseWholeRun is the whole-run L1 cross-check (present only when every
// access of the run fell inside a predicted nest): the measured miss
// ratio must lie between the capacity-only prediction (as if the cache
// were fully warm at every nest entry) and the everything-cold
// prediction, within LevelTolerance on each side.
type ReuseWholeRun struct {
	PredictedLow  float64 // capacity misses only
	PredictedHigh float64 // per-nest cold counted every execution
	Measured      float64
	OK            bool
}

// ReuseReport is the full static-vs-dynamic reuse validation of one run.
type ReuseReport struct {
	Program string
	Nests   []ReuseNestCheck
	// Stray counts accesses outside every predicted nest; Unexecuted
	// lists predicted nests the run never entered (a warning, not a
	// failure — the workload may not call that function).
	Stray      uint64
	Unexecuted []uint64
	WholeRun   *ReuseWholeRun

	Failures int
}

// OK reports whether every executed nest verified.
func (rr *ReuseReport) OK() bool { return rr.Failures == 0 }

// TraceChecker observes a VM run and verifies a ReusePrediction against
// it. It adds no overhead cycles (OnAccess returns 0), so the profiled
// execution is unperturbed. Chain it with another observer if the run
// also needs sampling.
type TraceChecker struct {
	rp        *ReusePrediction
	lineShift uint
	ipNest    map[uint64]int

	threads map[int]*tcThread
	nests   []*nestDyn
	stray   uint64
}

type tcThread struct {
	cur  int // nest index, -1 outside
	segN uint64
	an   *reuse.Analyzer
	// capturing is set while this thread runs the first observed
	// execution of the current nest.
	capturing bool
}

type nestDyn struct {
	execs    uint64
	hist     ReuseHist
	measMiss []uint64

	firstTrace []uint64
	firstHist  ReuseHist
	firstOpen  bool // a thread is currently capturing
	firstDone  bool
	firstOver  bool // trace exceeded maxFirstTrace, dropped
}

// NewTraceChecker builds a checker for a prediction. The run must use the
// same cache geometry the prediction was made for.
func NewTraceChecker(rp *ReusePrediction) *TraceChecker {
	tc := &TraceChecker{
		rp:      rp,
		ipNest:  make(map[uint64]int),
		threads: make(map[int]*tcThread),
	}
	for sz := rp.LineSize; sz > 1; sz >>= 1 {
		tc.lineShift++
	}
	for ni, np := range rp.Nests {
		for _, ip := range np.IPs {
			tc.ipNest[ip] = ni
		}
		tc.nests = append(tc.nests, &nestDyn{measMiss: make([]uint64, len(rp.Levels))})
	}
	return tc
}

func (tc *TraceChecker) thread(tid int) *tcThread {
	th, ok := tc.threads[tid]
	if !ok {
		th = &tcThread{cur: -1, an: reuse.NewAnalyzer(4096)}
		tc.threads[tid] = th
	}
	return th
}

func (tc *TraceChecker) closeSeg(th *tcThread) {
	if th.cur >= 0 && th.capturing {
		nd := tc.nests[th.cur]
		nd.firstOpen = false
		nd.firstDone = true
		th.capturing = false
	}
	th.cur = -1
	th.segN = 0
}

// OnAccess implements vm.AccessObserver with zero overhead.
func (tc *TraceChecker) OnAccess(ev *vm.MemEvent) uint64 {
	ni, ok := tc.ipNest[ev.IP]
	th := tc.thread(ev.TID)
	if !ok {
		tc.closeSeg(th)
		tc.stray++
		return 0
	}
	np := tc.rp.Nests[ni]
	nd := tc.nests[ni]
	// A new execution starts when the nest changes — or when the previous
	// execution of the same nest is complete (the per-execution access
	// count is statically exact, so back-to-back executions split here).
	if th.cur != ni || th.segN == np.Accesses {
		tc.closeSeg(th)
		th.cur = ni
		th.an.Reset()
		nd.execs++
		if !nd.firstDone && !nd.firstOpen && !nd.firstOver {
			nd.firstOpen = true
			th.capturing = true
		}
	}
	th.segN++
	line := ev.EA >> tc.lineShift
	d := th.an.Observe(line)
	nd.hist.add(d)
	if d != reuse.Infinite {
		// Serving levels are compared for reuses only: whether a first
		// touch hits depends on what ran before the nest, which the
		// per-nest cold model deliberately does not see.
		for l := range nd.measMiss {
			if int(ev.Level) > l+1 {
				nd.measMiss[l]++
			}
		}
	}
	if th.capturing {
		if len(nd.firstTrace) < maxFirstTrace {
			nd.firstTrace = append(nd.firstTrace, line)
			nd.firstHist.add(d)
		} else {
			// Too large to replay: drop the capture entirely.
			nd.firstTrace = nil
			nd.firstHist = ReuseHist{}
			nd.firstOpen = false
			nd.firstOver = true
			th.capturing = false
		}
	}
	return 0
}

// Finish closes every open segment and renders the verdicts. Pass the
// run's stats to enable the whole-run counter cross-check; a zero
// vm.Stats skips it.
func (tc *TraceChecker) Finish(st vm.Stats) *ReuseReport {
	for _, th := range tc.threads {
		tc.closeSeg(th)
	}
	rr := &ReuseReport{Program: tc.rp.Program, Stray: tc.stray}
	for ni, np := range tc.rp.Nests {
		nd := tc.nests[ni]
		if nd.execs == 0 {
			rr.Unexecuted = append(rr.Unexecuted, np.Key)
			continue
		}
		nc := ReuseNestCheck{
			Key: np.Key, Info: np.Info,
			Execs: nd.execs, DynAccesses: nd.hist.N,
		}
		nc.HistMatch, nc.HistDetail = histsMatch(np.Total, nd.hist, nd.execs)
		nc.TraceMatch, nc.TraceDetail = tc.checkFirstTrace(np, nd)
		nc.OK = nc.HistMatch && nc.TraceMatch
		predReuses := np.Accesses - np.Total.Cold
		dynReuses := nd.hist.N - nd.hist.Cold
		for l, lv := range tc.rp.Levels {
			lc := ReuseLevelCheck{Name: lv.Name, OK: true}
			if predReuses > 0 {
				lc.Predicted = float64(np.Misses[l]-np.Total.Cold) / float64(predReuses)
			}
			if dynReuses > 0 {
				lc.Measured = float64(nd.measMiss[l]) / float64(dynReuses)
			}
			if predReuses > 0 && dynReuses > 0 {
				d := lc.Predicted - lc.Measured
				if d < 0 {
					d = -d
				}
				lc.OK = d <= LevelTolerance
			}
			nc.OK = nc.OK && lc.OK
			nc.Levels = append(nc.Levels, lc)
		}
		if !nc.OK {
			rr.Failures++
		}
		rr.Nests = append(rr.Nests, nc)
	}
	sort.Slice(rr.Nests, func(i, j int) bool { return rr.Nests[i].Key < rr.Nests[j].Key })

	// Whole-run counter cross-check: only meaningful when the prediction
	// covers the entire access stream. Cold accesses of one nest execution
	// may hit lines warmed by earlier nests (or earlier executions), so
	// the true miss ratio is bracketed by the capacity-only and the
	// everything-cold predictions.
	if tc.stray == 0 && len(rr.Nests) > 0 && len(st.Cache.Levels) > 0 {
		var missLow, missHigh, predN uint64
		for ni, np := range tc.rp.Nests {
			e := tc.nests[ni].execs
			if len(np.Misses) > 0 {
				missLow += (np.Misses[0] - np.Total.Cold) * e
				missHigh += np.Misses[0] * e
			}
			predN += np.Accesses * e
		}
		l1 := st.Cache.Levels[0]
		if predN > 0 && l1.Accesses > 0 {
			wr := &ReuseWholeRun{
				PredictedLow:  float64(missLow) / float64(predN),
				PredictedHigh: float64(missHigh) / float64(predN),
				Measured:      l1.MissRatio(),
			}
			wr.OK = wr.Measured >= wr.PredictedLow-LevelTolerance &&
				wr.Measured <= wr.PredictedHigh+LevelTolerance
			if !wr.OK {
				rr.Failures++
			}
			rr.WholeRun = wr
		}
	}
	return rr
}

// histsMatch compares the static per-execution histogram, scaled by the
// execution count, against the dynamic total.
func histsMatch(static ReuseHist, dyn ReuseHist, execs uint64) (bool, string) {
	if want := static.N * execs; dyn.N != want {
		return false, fmt.Sprintf("access count: dynamic %d, static %d×%d=%d",
			dyn.N, static.N, execs, want)
	}
	tol := uint64(HistTolerance * float64(dyn.N))
	diff := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	if d := diff(dyn.Cold, static.Cold*execs); d > tol {
		return false, fmt.Sprintf("cold misses: dynamic %d, static %d (Δ%d > %d)",
			dyn.Cold, static.Cold*execs, d, tol)
	}
	for b := range static.Buckets {
		if d := diff(dyn.Buckets[b], static.Buckets[b]*execs); d > tol {
			return false, fmt.Sprintf("bucket 2^%d: dynamic %d, static %d (Δ%d > %d)",
				b, dyn.Buckets[b], static.Buckets[b]*execs, d, tol)
		}
	}
	return true, ""
}

// checkFirstTrace replays the retained first-execution trace through the
// batch analyzer and checks it against both the incremental histogram and
// the static prediction.
func (tc *TraceChecker) checkFirstTrace(np *NestPrediction, nd *nestDyn) (bool, string) {
	if !nd.firstDone || nd.firstTrace == nil {
		return true, "" // capture dropped (trace too large): nothing to check
	}
	ft := reuse.FromTrace(nd.firstTrace)
	if ft.N != nd.firstHist.N || ft.Cold != nd.firstHist.Cold || ft.Hist != nd.firstHist.Buckets {
		return false, "FromTrace replay diverged from incremental observation"
	}
	if ok, detail := histsMatch(np.Total, nd.firstHist, 1); !ok {
		return false, "first execution vs static: " + detail
	}
	return true, ""
}
