package staticlint

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/reuse"
)

// reuse.go is the static reuse-distance predictor: for every loop nest
// whose streams are all exact tier (known base, stride, offset, and trip
// counts — what plan.go recovers), it derives the nest's reuse-distance
// histogram and per-level miss ratios without running the program,
// following the closed-form construction of static reuse-profile
// estimation (arXiv:2411.13854, arXiv:2509.18684) over the paper's
// Eqs. 2–7 machinery.
//
// The derivation walks the nest's access schedule symbolically — the
// program-order interleaving of its streams across the iteration space —
// and feeds line addresses through the exact Bennett–Kruskal analyzer
// (internal/reuse). Self-reuse (stride vs. line size), group reuse
// (streams touching the same lines of one object), and loop-carried
// reuse (re-touches across enclosing-loop iterations) all fall out of
// the schedule; no approximation is involved. For speed the walk
// detects, per outer-loop iteration, a steady-state period in the
// histogram deltas and extrapolates the remaining iterations in closed
// form — scans reach their steady state within a few iterations, so the
// cost is proportional to the nest's *pattern*, not its trip count.
// Histogram mass is conserved exactly: buckets + cold == accesses.
//
// A prediction's unit is one execution of the nest from cold: first
// touches within the nest count as cold misses. The dynamic twin
// (reuseverify.go) segments the VM's event stream the same way, so the
// two sides are comparable bucket by bucket.

// ReuseHist is a value-type reuse-distance histogram: Buckets[k] counts
// distances in [2^k, 2^(k+1)) (Buckets[0] counts 0 and 1), Cold counts
// first touches, N all accesses.
type ReuseHist struct {
	Buckets [64]uint64
	Cold    uint64
	N       uint64
}

func (h *ReuseHist) add(dist uint64) {
	h.N++
	if dist == reuse.Infinite {
		h.Cold++
		return
	}
	b := 0
	for d := dist; d > 1; d >>= 1 {
		b++
	}
	h.Buckets[b]++
}

// Merge folds another histogram into this one.
func (h *ReuseHist) Merge(o ReuseHist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Cold += o.Cold
	h.N += o.N
}

// Mass returns buckets + cold, which must equal N.
func (h ReuseHist) Mass() uint64 {
	m := h.Cold
	for _, b := range h.Buckets {
		m += b
	}
	return m
}

// LevelCap is one simulated cache level expressed in lines.
type LevelCap struct {
	Name    string
	Lines   uint64
	Latency int
}

// ObjectReuse attributes a nest's accesses to one base object.
type ObjectReuse struct {
	GlobalIx int
	Name     string
	Hist     ReuseHist
	// Misses[l] counts accesses whose exact reuse distance reaches past
	// level l's capacity (cold included).
	Misses []uint64
}

// LoopReuse attributes a nest's accesses to one member loop (innermost
// attribution).
type LoopReuse struct {
	Key    uint64
	Info   *cfg.LoopInfo
	Hist   ReuseHist
	Misses []uint64
}

// NestPrediction is the static reuse profile of one outermost loop nest.
type NestPrediction struct {
	Key  uint64
	Info *cfg.LoopInfo
	FnID int

	// Trips is the outer loop's iteration count; Accesses the total
	// memory accesses of one nest execution.
	Trips    int64
	Accesses uint64

	Total ReuseHist
	// Misses[l] is the predicted miss count at hierarchy level l (0-based
	// over ReusePrediction.Levels), from exact distances (not buckets).
	Misses []uint64

	// IPs lists the memory-instruction addresses belonging to this nest;
	// the dynamic verifier segments the VM's event stream by them.
	IPs []uint64

	Objects []ObjectReuse
	Loops   []LoopReuse

	// Extrapolated reports that a steady-state period was found and the
	// tail extrapolated; SimulatedIters is how many outer iterations were
	// walked explicitly.
	Extrapolated   bool
	SimulatedIters int64
	Period         int64
}

// MissRatio returns the predicted miss ratio at level l.
func (np *NestPrediction) MissRatio(l int) float64 {
	if np.Accesses == 0 || l >= len(np.Misses) {
		return 0
	}
	return float64(np.Misses[l]) / float64(np.Accesses)
}

// SkippedNest records a loop nest the predictor could not claim, with the
// demotion reason — the static analog of a stream's Unresolved tier.
type SkippedNest struct {
	Key    uint64
	Info   *cfg.LoopInfo
	FnID   int
	Reason string
}

// ReusePrediction is the whole-program static reuse analysis, attached to
// an Analysis by PredictReuse.
type ReusePrediction struct {
	Program  string
	LineSize uint64
	Levels   []LevelCap

	Nests   []*NestPrediction
	Skipped []SkippedNest
}

// NestAt returns the prediction for the nest with the given loop key.
func (rp *ReusePrediction) NestAt(key uint64) *NestPrediction {
	for _, np := range rp.Nests {
		if np.Key == key {
			return np
		}
	}
	return nil
}

// maxSimObservations bounds the explicit walk per nest; nests that reach
// the budget without a steady-state period are skipped rather than
// mispredicted.
const maxSimObservations = 32 << 20

// steadyBlocks is how many consecutive identical period blocks confirm a
// steady state before extrapolating.
const steadyBlocks = 3

// minSteadyWindow is the minimum number of trailing outer iterations a
// candidate period must explain before it is trusted: a short period must
// repeat across a long window, or a longer true period (a strided scan
// crosses a line boundary only every lineSize/stride iterations) would be
// shadowed by its constant prefix.
const minSteadyWindow = 64

// maxPeriod bounds the steady-state period search (in outer iterations).
const maxPeriod = 64

// PredictReuse runs the static reuse predictor over every outermost loop
// nest of the program against the given hierarchy, attaches the result
// to the analysis, and returns it.
func PredictReuse(a *Analysis, cfg cache.Config) *ReusePrediction {
	rp := &ReusePrediction{
		Program:  a.Program.Name,
		LineSize: uint64(cfg.LineSize),
	}
	for _, lv := range cfg.Levels {
		rp.Levels = append(rp.Levels, LevelCap{
			Name:    lv.Name,
			Lines:   uint64(lv.Size) / uint64(cfg.LineSize),
			Latency: lv.Latency,
		})
	}
	bases := GlobalBases(a.Program)

	for _, f := range a.Program.Funcs {
		forest := a.Loops.Forests[f.ID]
		fa := newFuncAnalysis(a.Program, f, forest)
		converged := fa.solve()
		for lid, l := range forest.Loops {
			if l.Parent != -1 {
				continue // only outermost nests
			}
			key := cfg2key(f.ID, l.Header)
			info := a.Loops.Info(key)
			if !converged {
				rp.Skipped = append(rp.Skipped, SkippedNest{Key: key, Info: info, FnID: f.ID, Reason: "dataflow did not converge"})
				continue
			}
			pl := &planner{a: a, fa: fa, visited: make(map[int]bool)}
			lp, err := pl.planLoop(lid)
			if err != nil {
				rp.Skipped = append(rp.Skipped, SkippedNest{Key: key, Info: info, FnID: f.ID, Reason: err.Error()})
				continue
			}
			np, err := simulateNest(a, lp, bases, rp, f.ID)
			if err != nil {
				rp.Skipped = append(rp.Skipped, SkippedNest{Key: key, Info: info, FnID: f.ID, Reason: err.Error()})
				continue
			}
			rp.Nests = append(rp.Nests, np)
		}
	}
	sort.Slice(rp.Nests, func(i, j int) bool { return rp.Nests[i].Key < rp.Nests[j].Key })
	sort.Slice(rp.Skipped, func(i, j int) bool { return rp.Skipped[i].Key < rp.Skipped[j].Key })
	a.Reuse = rp
	return rp
}

// cfg2key mirrors cfg.LoopKey without re-importing it under a name that
// collides with the cache config parameter.
func cfg2key(fnID, header int) uint64 { return uint64(fnID+1)<<32 | uint64(uint32(header)) }

// nestTally is the mutable accumulator state of one nest walk; snapshots
// of its counters form the per-iteration deltas for period detection.
type nestTally struct {
	levels []uint64 // level capacities in lines

	total  ReuseHist
	misses []uint64

	objIdx  map[int]int
	objs    []ObjectReuse
	loopIdx map[uint64]int
	loops   []LoopReuse
}

func (nt *nestTally) record(tpl *AccessTpl, dist uint64) {
	nt.total.add(dist)
	oi := nt.objIdx[tpl.GlobalIx]
	nt.objs[oi].Hist.add(dist)
	li, haveLoop := nt.loopIdx[tpl.LoopKey]
	if haveLoop {
		nt.loops[li].Hist.add(dist)
	}
	for l, capLines := range nt.levels {
		if dist == reuse.Infinite || dist >= capLines {
			nt.misses[l]++
			nt.objs[oi].Misses[l]++
			if haveLoop {
				nt.loops[li].Misses[l]++
			}
		}
	}
}

// snapshot flattens every counter into one comparable vector.
func (nt *nestTally) snapshot() []uint64 {
	out := make([]uint64, 0, 70*(1+len(nt.objs)+len(nt.loops)))
	flat := func(h *ReuseHist, m []uint64) {
		out = append(out, h.Buckets[:]...)
		out = append(out, h.Cold, h.N)
		out = append(out, m...)
	}
	flat(&nt.total, nt.misses)
	for i := range nt.objs {
		flat(&nt.objs[i].Hist, nt.objs[i].Misses)
	}
	for i := range nt.loops {
		flat(&nt.loops[i].Hist, nt.loops[i].Misses)
	}
	return out
}

// apply adds a scaled delta vector back into the counters, inverting
// snapshot's layout.
func (nt *nestTally) apply(delta []uint64, times uint64) {
	pos := 0
	take := func(h *ReuseHist, m []uint64) {
		for i := range h.Buckets {
			h.Buckets[i] += delta[pos] * times
			pos++
		}
		h.Cold += delta[pos] * times
		pos++
		h.N += delta[pos] * times
		pos++
		for i := range m {
			m[i] += delta[pos] * times
			pos++
		}
	}
	take(&nt.total, nt.misses)
	for i := range nt.objs {
		take(&nt.objs[i].Hist, nt.objs[i].Misses)
	}
	for i := range nt.loops {
		take(&nt.loops[i].Hist, nt.loops[i].Misses)
	}
}

// collectAccessInfo walks a plan subtree registering objects and loops.
func collectAccessInfo(items []PlanItem, a *Analysis, nt *nestTally) {
	for i := range items {
		switch {
		case items[i].Access != nil:
			tpl := items[i].Access
			if _, ok := nt.objIdx[tpl.GlobalIx]; !ok {
				nt.objIdx[tpl.GlobalIx] = len(nt.objs)
				name := ""
				if tpl.GlobalIx < len(a.Program.Globals) {
					name = a.Program.Globals[tpl.GlobalIx].Name
				}
				nt.objs = append(nt.objs, ObjectReuse{
					GlobalIx: tpl.GlobalIx, Name: name,
					Misses: make([]uint64, len(nt.levels)),
				})
			}
		case items[i].Loop != nil:
			lp := items[i].Loop
			if _, ok := nt.loopIdx[lp.Key]; !ok {
				nt.loopIdx[lp.Key] = len(nt.loops)
				nt.loops = append(nt.loops, LoopReuse{
					Key: lp.Key, Info: lp.Info,
					Misses: make([]uint64, len(nt.levels)),
				})
			}
			collectAccessInfo(lp.Body, a, nt)
		}
	}
}

// simulateNest walks one nest's access schedule from cold, detecting a
// steady-state period over outer iterations and extrapolating the tail.
func simulateNest(a *Analysis, lp *LoopPlan, bases []uint64, rp *ReusePrediction, fnID int) (*NestPrediction, error) {
	lineShift := uint(0)
	for sz := rp.LineSize; sz > 1; sz >>= 1 {
		lineShift++
	}
	nt := &nestTally{
		levels:  make([]uint64, len(rp.Levels)),
		misses:  make([]uint64, len(rp.Levels)),
		objIdx:  make(map[int]int),
		loopIdx: make(map[uint64]int),
	}
	for i, lv := range rp.Levels {
		nt.levels[i] = lv.Lines
	}
	// The nest loop itself is attributed like its members.
	nt.loopIdx[lp.Key] = 0
	nt.loops = append(nt.loops, LoopReuse{Key: lp.Key, Info: lp.Info, Misses: make([]uint64, len(rp.Levels))})
	collectAccessInfo(lp.Body, a, nt)

	an := reuse.NewAnalyzer(4096)
	k := make([]int64, lp.Depth+1+maxLoopDepth(lp.Body))
	var observed uint64

	var walk func(items []PlanItem, depth int) error
	walk = func(items []PlanItem, depth int) error {
		for i := range items {
			it := &items[i]
			switch {
			case it.Access != nil:
				tpl := it.Access
				ea := uint64(int64(bases[tpl.GlobalIx]) + tpl.Disp)
				for d, c := range tpl.Coeff {
					ea += uint64(c * k[d])
				}
				nt.record(tpl, an.Observe(ea>>lineShift))
				observed++
				if observed > maxSimObservations {
					return errBudget
				}
			case it.Loop != nil:
				for k[it.Loop.Depth] = 0; k[it.Loop.Depth] < it.Loop.Trips; k[it.Loop.Depth]++ {
					if err := walk(it.Loop.Body, depth+1); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	np := &NestPrediction{Key: lp.Key, Info: lp.Info, FnID: fnID, Trips: lp.Trips}

	// Outer iterations: walk explicitly, snapshot per iteration, and try
	// to confirm a steady-state period.
	prev := nt.snapshot()
	var deltas [][]uint64
	iter := int64(0)
	for ; iter < lp.Trips; iter++ {
		k[lp.Depth] = iter
		if err := walk(lp.Body, 0); err != nil {
			return nil, err
		}
		cur := nt.snapshot()
		delta := make([]uint64, len(cur))
		for i := range cur {
			delta[i] = cur[i] - prev[i]
		}
		prev = cur
		deltas = append(deltas, delta)

		if p := findPeriod(deltas); p > 0 && iter+1 < lp.Trips {
			remaining := uint64(lp.Trips - (iter + 1))
			block := deltas[len(deltas)-p:]
			full, rem := remaining/uint64(p), remaining%uint64(p)
			for _, d := range block {
				nt.apply(d, full)
			}
			for j := uint64(0); j < rem; j++ {
				nt.apply(block[j], 1)
			}
			np.Extrapolated = true
			np.Period = int64(p)
			iter++
			break
		}
	}
	np.SimulatedIters = iter

	np.Total = nt.total
	np.Misses = nt.misses
	np.Accesses = nt.total.N
	np.Objects = nt.objs
	np.Loops = nt.loops
	np.IPs = collectIPs(lp.Body, nil)
	sort.Slice(np.IPs, func(i, j int) bool { return np.IPs[i] < np.IPs[j] })
	sort.Slice(np.Objects, func(i, j int) bool { return np.Objects[i].GlobalIx < np.Objects[j].GlobalIx })
	sort.Slice(np.Loops, func(i, j int) bool { return np.Loops[i].Key < np.Loops[j].Key })
	return np, nil
}

var errBudget = fmt.Errorf("steady-state period not found within the simulation budget")

// collectIPs gathers every access IP of a plan subtree.
func collectIPs(items []PlanItem, out []uint64) []uint64 {
	for i := range items {
		switch {
		case items[i].Access != nil:
			out = append(out, items[i].Access.IP)
		case items[i].Loop != nil:
			out = collectIPs(items[i].Loop.Body, out)
		}
	}
	return out
}

// maxLoopDepth returns the deepest nested-loop Depth in a subtree,
// relative to the items' own enclosing depth.
func maxLoopDepth(items []PlanItem) int {
	d := 0
	for i := range items {
		if lp := items[i].Loop; lp != nil {
			if n := 1 + maxLoopDepth(lp.Body); n > d {
				d = n
			}
		}
	}
	return d
}

// findPeriod looks for the smallest period p whose repetition explains the
// last max(steadyBlocks, minSteadyWindow/p) blocks of iteration deltas.
func findPeriod(deltas [][]uint64) int {
	n := len(deltas)
	for p := 1; p <= maxPeriod; p++ {
		blocks := steadyBlocks
		if b := (minSteadyWindow + p - 1) / p; b > blocks {
			blocks = b
		}
		if n < p*blocks {
			continue
		}
		ok := true
		base := deltas[n-p:]
		for blk := 2; blk <= blocks && ok; blk++ {
			cmp := deltas[n-p*blk : n-p*(blk-1)]
			for i := range base {
				if !u64Equal(base[i], cmp[i]) {
					ok = false
					break
				}
			}
		}
		if ok {
			return p
		}
	}
	return 0
}

func u64Equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
