package staticlint

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/prog"
	"repro/internal/reuse"
)

// buildMatVec builds: for i in [0,rows) { for j in [0,cols) { x = m[i][j];
// y = v[j]; m[i][j] = x+y } } — a nest with self-reuse (v re-scanned every
// row), group reuse (load/store of the same m element), and enough rows to
// exercise the steady-state extrapolation.
func buildMatVec(t *testing.T, rows, cols int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("matvec")
	gm := b.Global("m", rows*cols*8, -1)
	gv := b.Global("v", cols*8, -1)
	b.Func("main", "matvec.c")
	m, v, i, j, x, y, row := b.R(), b.R(), b.R(), b.R(), b.R(), b.R(), b.R()
	b.GAddr(m, gm)
	b.GAddr(v, gv)
	b.ForRange(i, 0, rows, 1, func() {
		b.MulI(row, i, cols*8)
		b.Add(row, row, m)
		b.ForRange(j, 0, cols, 1, func() {
			b.Load(x, row, j, 8, 0, 8)
			b.Load(y, v, j, 8, 0, 8)
			b.Add(x, x, y)
			b.Store(x, row, j, 8, 0, 8)
		})
	})
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

// matVecTrace enumerates the nest's line trace directly from the loop
// structure — independent of the planner.
func matVecTrace(p *prog.Program, rows, cols int64, lineSize uint64) []uint64 {
	bases := GlobalBases(p)
	var trace []uint64
	for i := int64(0); i < rows; i++ {
		for j := int64(0); j < cols; j++ {
			me := bases[0] + uint64(i*cols*8+j*8)
			ve := bases[1] + uint64(j*8)
			trace = append(trace, me/lineSize, ve/lineSize, me/lineSize)
		}
	}
	return trace
}

func TestPlanFunctionMatVec(t *testing.T) {
	const rows, cols = 37, 50
	p := buildMatVec(t, rows, cols)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	plan := PlanFunction(a, p.EntryFn)
	if !plan.Eligible {
		t.Fatalf("plan ineligible: %s", plan.Reason)
	}
	if want := uint64(3 * rows * cols); plan.Accesses != want {
		t.Fatalf("planned accesses = %d, want %d", plan.Accesses, want)
	}
	// One top-level loop item with one nested loop.
	var outer *LoopPlan
	for i := range plan.Items {
		if plan.Items[i].Loop != nil {
			if outer != nil {
				t.Fatalf("multiple top-level loops")
			}
			outer = plan.Items[i].Loop
		}
	}
	if outer == nil || outer.Trips != rows {
		t.Fatalf("outer loop trips = %v, want %d", outer, rows)
	}
	var inner *LoopPlan
	for i := range outer.Body {
		if outer.Body[i].Loop != nil {
			inner = outer.Body[i].Loop
		}
	}
	if inner == nil || inner.Trips != cols || inner.Depth != 1 {
		t.Fatalf("inner loop = %+v", inner)
	}
}

// TestPredictReuseMatchesTrace is the unit-level differential: the
// predicted histogram (with steady-state extrapolation) must equal the
// exact Bennett–Kruskal analyzer run over the full enumerated trace.
func TestPredictReuseMatchesTrace(t *testing.T) {
	const rows, cols = 300, 40
	p := buildMatVec(t, rows, cols)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	cfg := cache.DefaultConfig()
	rp := PredictReuse(a, cfg)
	if a.Reuse != rp {
		t.Fatalf("prediction not attached to the analysis")
	}
	if len(rp.Skipped) != 0 {
		t.Fatalf("skipped nests: %+v", rp.Skipped)
	}
	if len(rp.Nests) != 1 {
		t.Fatalf("nests = %d, want 1", len(rp.Nests))
	}
	np := rp.Nests[0]
	if !np.Extrapolated {
		t.Errorf("expected steady-state extrapolation over %d rows (simulated %d)",
			rows, np.SimulatedIters)
	}
	if np.SimulatedIters >= rows {
		t.Errorf("extrapolation saved nothing: simulated %d of %d", np.SimulatedIters, rows)
	}

	trace := matVecTrace(p, rows, cols, uint64(cfg.LineSize))
	ref := reuse.FromTrace(trace)
	if np.Accesses != ref.N {
		t.Fatalf("accesses = %d, want %d", np.Accesses, ref.N)
	}
	if np.Total.Cold != ref.Cold {
		t.Fatalf("cold = %d, want %d", np.Total.Cold, ref.Cold)
	}
	if np.Total.Buckets != ref.Hist {
		t.Fatalf("histogram diverged from exact trace:\n got %v\nwant %v",
			np.Total.Buckets, ref.Hist)
	}
	if np.Total.Mass() != np.Total.N {
		t.Fatalf("mass not conserved: %d != %d", np.Total.Mass(), np.Total.N)
	}

	// Per-level misses match a naive recount from exact distances.
	caps := make([]uint64, len(cfg.Levels))
	for i, lv := range cfg.Levels {
		caps[i] = uint64(lv.Size) / uint64(cfg.LineSize)
	}
	wantMiss := make([]uint64, len(caps))
	an := reuse.NewAnalyzer(len(trace))
	for _, ln := range trace {
		d := an.Observe(ln)
		for l, c := range caps {
			if d == reuse.Infinite || d >= c {
				wantMiss[l]++
			}
		}
	}
	for l := range caps {
		if np.Misses[l] != wantMiss[l] {
			t.Errorf("level %d misses = %d, want %d", l, np.Misses[l], wantMiss[l])
		}
	}

	// Attribution: objects and loops partition the accesses.
	var objN, loopN uint64
	for _, o := range np.Objects {
		objN += o.Hist.N
		if o.Hist.Mass() != o.Hist.N {
			t.Errorf("object %s: mass not conserved", o.Name)
		}
	}
	for _, l := range np.Loops {
		loopN += l.Hist.N
	}
	if objN != np.Accesses || loopN != np.Accesses {
		t.Errorf("attribution mass: objects %d, loops %d, want %d", objN, loopN, np.Accesses)
	}
	if len(np.Objects) != 2 {
		t.Fatalf("objects = %d, want 2 (m, v)", len(np.Objects))
	}
	if np.Objects[0].Hist.N != 2*rows*cols || np.Objects[1].Hist.N != rows*cols {
		t.Errorf("per-object N = %d, %d; want %d, %d",
			np.Objects[0].Hist.N, np.Objects[1].Hist.N, 2*rows*cols, rows*cols)
	}
}

// TestPredictReuseTripOne: a single-iteration nest yields a cold-only
// histogram for its first-touch accesses and no division by zero.
func TestPredictReuseTripOne(t *testing.T) {
	b := prog.NewBuilder("once")
	g := b.Global("buf", 1024, -1)
	b.Func("main", "once.c")
	base, i, x := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.ForRange(i, 0, 1, 1, func() {
		b.Load(x, base, i, 64, 0, 8)
		b.Store(x, base, i, 64, 8, 8)
	})
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	rp := PredictReuse(a, cache.DefaultConfig())
	if len(rp.Nests) != 1 {
		t.Fatalf("nests = %d (skipped %+v)", len(rp.Nests), rp.Skipped)
	}
	np := rp.Nests[0]
	if np.Trips != 1 || np.Accesses != 2 {
		t.Fatalf("trips=%d accesses=%d, want 1, 2", np.Trips, np.Accesses)
	}
	// Both accesses hit the same line: one cold, one distance-0.
	if np.Total.Cold != 1 || np.Total.Buckets[0] != 1 {
		t.Fatalf("trip-1 histogram: cold=%d buckets=%v", np.Total.Cold, np.Total.Buckets)
	}
	for l := range rp.Levels {
		if mr := np.MissRatio(l); mr != 0.5 {
			t.Errorf("level %d miss ratio = %v, want 0.5", l, mr)
		}
	}
	// Zero-trip loops predict an empty histogram without dividing by zero.
	if (&NestPrediction{}).MissRatio(0) != 0 {
		t.Fatalf("empty nest miss ratio not 0")
	}
}

// TestPredictReuseSkipsNonExact: a data-dependent branch inside a loop
// demotes the nest to the skipped list with a reason, not a misprediction.
func TestPredictReuseSkipsNonExact(t *testing.T) {
	b := prog.NewBuilder("skip")
	g := b.Global("buf", 4096, -1)
	b.Func("main", "skip.c")
	i, x, gaddr := b.R(), b.R(), b.R()
	b.GAddr(gaddr, g)
	b.ForRange(i, 0, 64, 1, func() {
		// Address depends on loaded data: buf[buf[i]] is not exact tier.
		b.Load(x, gaddr, i, 8, 0, 8)
		b.Load(x, gaddr, x, 8, 0, 8)
	})
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	rp := PredictReuse(a, cache.DefaultConfig())
	if len(rp.Nests) != 0 {
		t.Fatalf("non-exact nest was predicted: %+v", rp.Nests[0])
	}
	if len(rp.Skipped) != 1 || rp.Skipped[0].Reason == "" {
		t.Fatalf("skipped = %+v, want one entry with a reason", rp.Skipped)
	}
}
