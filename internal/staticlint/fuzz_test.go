package staticlint_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/structslim"

	. "repro/internal/staticlint"
)

// fuzzProgram decodes the shared byte-pair loop-nest encoding (see
// FuzzResolver) into a program, or nil when the input is unusable.
func fuzzProgram(data []byte) *prog.Program {
	if len(data) < 2 || len(data) > 64 {
		return nil
	}
	b := prog.NewBuilder("fuzz")
	g := b.Global("g", 1<<16, -1)
	b.Func("main", "fuzz.c")
	base, x := b.R(), b.R()
	b.GAddr(base, g)
	var ivs []isa.Reg
	loops := 0
	pos := 0
	var walk func(depth int)
	walk = func(depth int) {
		for pos+1 < len(data) {
			op, arg := data[pos], data[pos+1]
			pos += 2
			idx := isa.RZ
			if len(ivs) > 0 {
				idx = ivs[int(arg)%len(ivs)]
			}
			scale := int(arg%16) * 8  // 0 means ×1 to the ISA
			disp := int64(arg%64) * 8 // within the global
			switch op % 4 {
			case 0:
				b.Load(x, base, idx, scale, disp, 8)
			case 1:
				b.Store(x, base, idx, scale, disp, 8)
			case 2:
				if depth >= 3 || loops >= 6 {
					continue
				}
				loops++
				iv := b.R()
				trips := int64(arg%7) + 2
				step := int64(arg%3) + 1
				ivs = append(ivs, iv)
				b.ForRange(iv, 0, trips*step, step, func() { walk(depth + 1) })
				ivs = ivs[:len(ivs)-1]
			case 3:
				if depth > 0 {
					return
				}
			}
		}
	}
	walk(0)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		return nil // malformed program rejected by the builder, fine
	}
	return p
}

// FuzzResolver drives the symbolic address resolver with byte-encoded
// loop-nest programs over one bounded global: AnalyzeProgram must never
// panic, and every exact static stride must divide the dynamic GCD of the
// corresponding profiled stream — the deltas the profiler sees are
// integer combinations of the loop coefficients the resolver found.
//
// Byte pairs (op, arg) encode: op%4 == 0 load, 1 store, 2 open a nested
// loop (trip count and step from arg), 3 close the current loop. All
// addresses are base + iv*scale + disp with bounded iv/scale/disp, so
// every access stays inside the global.
func FuzzResolver(f *testing.F) {
	f.Add([]byte{2, 5, 0, 9, 3, 0})                    // one loop, one load
	f.Add([]byte{2, 3, 2, 8, 0, 17, 3, 0, 1, 4, 3, 0}) // nest: inner load, outer store
	f.Add([]byte{0, 0, 2, 1, 1, 255, 2, 6, 0, 33})     // straight-line + unclosed loops
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2, 0, 7})        // depth-capped nest

	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzProgram(data)
		if p == nil {
			return
		}

		a, err := AnalyzeProgram(p) // must not panic on any input
		if err != nil {
			t.Fatalf("AnalyzeProgram: %v", err)
		}

		res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 20, Seed: 3})
		if err != nil {
			t.Fatalf("ProfileRun: %v", err)
		}
		for key, stat := range res.Profile.Streams {
			sp := a.StreamAt(key.IP)
			if sp == nil || sp.Confidence != Exact {
				continue
			}
			if sp.Stride == 0 {
				if stat.GCD != 0 {
					t.Fatalf("IP %#x: static stride 0 but dynamic GCD %d", key.IP, stat.GCD)
				}
				continue
			}
			if stat.GCD%sp.Stride != 0 {
				t.Fatalf("IP %#x: static stride %d does not divide dynamic GCD %d",
					key.IP, sp.Stride, stat.GCD)
			}
		}
	})
}

// FuzzReusePredictor drives the static reuse predictor over the same
// byte-encoded loop-nest space: PredictReuse must never panic, and every
// histogram it emits — per nest, per object, per member loop — must
// conserve mass (Σ buckets + cold == N), with the per-level miss counts
// bounded by it. Skipping a nest is always legal; lying about one is not.
func FuzzReusePredictor(f *testing.F) {
	f.Add([]byte{2, 5, 0, 9, 3, 0})                    // one loop, one load
	f.Add([]byte{2, 3, 2, 8, 0, 17, 3, 0, 1, 4, 3, 0}) // nest: inner load, outer store
	f.Add([]byte{0, 0, 2, 1, 1, 255, 2, 6, 0, 33})     // straight-line + unclosed loops
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2, 0, 7})        // depth-capped nest

	cfg := cache.DefaultConfig()
	cfg.Prefetch = false

	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzProgram(data)
		if p == nil {
			return
		}
		a, err := AnalyzeProgram(p)
		if err != nil {
			t.Fatalf("AnalyzeProgram: %v", err)
		}
		rp := PredictReuse(a, cfg) // must not panic on any input
		checkMass := func(what string, h ReuseHist, misses []uint64) {
			if got := h.Mass(); got != h.N {
				t.Fatalf("%s: mass %d != N %d (cold %d)", what, got, h.N, h.Cold)
			}
			for l, m := range misses {
				if m > h.N {
					t.Fatalf("%s: level %d misses %d exceed N %d", what, l, m, h.N)
				}
				if m < h.Cold {
					t.Fatalf("%s: level %d misses %d below cold %d", what, l, m, h.Cold)
				}
			}
		}
		for _, np := range rp.Nests {
			checkMass("nest", np.Total, np.Misses)
			if np.Total.N != np.Accesses {
				t.Fatalf("nest N %d != Accesses %d", np.Total.N, np.Accesses)
			}
			var objN, loopN uint64
			for _, obj := range np.Objects {
				checkMass("object "+obj.Name, obj.Hist, obj.Misses)
				objN += obj.Hist.N
			}
			for _, lr := range np.Loops {
				checkMass("loop", lr.Hist, lr.Misses)
				loopN += lr.Hist.N
			}
			if objN != np.Accesses || loopN != np.Accesses {
				t.Fatalf("attribution leak: objects %d, loops %d, nest %d", objN, loopN, np.Accesses)
			}
		}
	})
}
