package staticlint

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// rawBlock assembles hand-shaped CFGs the Builder cannot express, so the
// tests can construct irreducible regions. Each block holds the given
// body instructions plus one terminator.
type rawBlock struct {
	body   []isa.Instr
	term   string // "fall", "br", "jmp", "halt"
	target int
}

func rawProgram(t *testing.T, blocks []rawBlock) *prog.Program {
	t.Helper()
	f := &prog.Func{ID: 0, Name: "f", File: "f.c"}
	for i, rb := range blocks {
		blk := &prog.Block{ID: i}
		blk.Instrs = append(blk.Instrs, rb.body...)
		switch rb.term {
		case "fall":
			blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Nop})
		case "br":
			blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Br, Cmp: isa.Lt, Rs1: 1, Rs2: 2, Target: rb.target})
		case "jmp":
			blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Jmp, Target: rb.target})
		case "halt":
			blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Halt})
		default:
			t.Fatalf("bad term %q", rb.term)
		}
		f.Blocks = append(f.Blocks, blk)
	}
	p := &prog.Program{Name: "raw", Funcs: []*prog.Func{f}}
	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

// TestIrreducibleDemotion: the same constant-address load inside a cycle
// is an exact prediction when the cycle is a reducible natural loop, but
// must demote to unresolved when the cycle is irreducible — the loop has
// no unique header, so "per-iteration advance" is not well defined.
func TestIrreducibleDemotion(t *testing.T) {
	load := isa.Instr{Op: isa.Load, Rd: 8, Rs1: isa.RZ, Rs2: isa.RZ, Size: 8, Disp: 64}
	cases := []struct {
		name   string
		blocks []rawBlock
		want   Confidence
		reason string
	}{
		{
			// 0 → 1 (header); 1: load, br→3 | fall→2; 2 → 1 back edge.
			name: "reducible",
			blocks: []rawBlock{
				{term: "jmp", target: 1},
				{body: []isa.Instr{load}, term: "br", target: 3},
				{term: "jmp", target: 1},
				{term: "halt"},
			},
			want: Exact,
		},
		{
			// Classic irreducible region: 0 branches into both 1 and 2;
			// 1 ⇄ 2 form the cycle; the load sits inside it.
			name: "irreducible",
			blocks: []rawBlock{
				{term: "br", target: 2},
				{body: []isa.Instr{load}, term: "br", target: 3},
				{term: "jmp", target: 1},
				{term: "halt"},
			},
			want:   Unresolved,
			reason: "inside an irreducible loop",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := rawProgram(t, tc.blocks)
			a, err := AnalyzeProgram(p)
			if err != nil {
				t.Fatalf("AnalyzeProgram: %v", err)
			}
			if len(a.Streams) != 1 {
				t.Fatalf("streams = %d, want 1", len(a.Streams))
			}
			sp := a.Streams[0]
			if sp.Confidence != tc.want {
				t.Errorf("confidence = %v (%s), want %v", sp.Confidence, sp.Reason, tc.want)
			}
			if tc.reason != "" && sp.Reason != tc.reason {
				t.Errorf("reason = %q, want %q", sp.Reason, tc.reason)
			}
			if sp.Loop == nil {
				t.Error("stream not attributed to a loop")
			} else if sp.Loop.Irreducible != (tc.want == Unresolved) {
				t.Errorf("LoopInfo.Irreducible = %v", sp.Loop.Irreducible)
			}
		})
	}
}
