package staticlint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/prog"
)

// LintKind classifies a layout-lint finding.
type LintKind int

const (
	// LintPaddingHole: alignment inserted unused bytes between two fields.
	LintPaddingHole LintKind = iota
	// LintTrailingPadding: the struct's padded size exceeds its last
	// field's end, wasting bytes in every array element.
	LintTrailingPadding
	// LintHotColdMix: the struct mixes fields with high latency share and
	// fields that are never (or barely) touched, so every cache line
	// fetched for the hot fields drags cold bytes along — the situation
	// structure splitting fixes.
	LintHotColdMix
	// LintNeverCoAccessed: the struct's fields partition into groups whose
	// static access sets never co-occur in any loop; the groups are
	// natural split candidates even before profiling.
	LintNeverCoAccessed
)

func (k LintKind) String() string {
	switch k {
	case LintPaddingHole:
		return "padding-hole"
	case LintTrailingPadding:
		return "trailing-padding"
	case LintHotColdMix:
		return "hot-cold-mix"
	case LintNeverCoAccessed:
		return "never-co-accessed"
	}
	return fmt.Sprintf("lint(%d)", int(k))
}

// Finding is one layout-lint diagnostic for a registered struct type.
type Finding struct {
	Kind   LintKind
	Struct string   // struct type name
	Fields []string // fields involved (kind-dependent)
	Bytes  int      // wasted bytes, for the padding kinds
	Detail string   // human-readable explanation
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: struct %s: %s", f.Kind, f.Struct, f.Detail)
}

// hotShare is the latency share above which a field counts as hot for
// the hot/cold-mix check (share of its structure's total latency).
const hotShare = 0.25

// Lint walks every struct type registered with the analyzed program and
// reports layout smells. The static analysis supplies per-loop field
// access sets; rep, when non-nil, supplies dynamic evidence (per-field
// latency shares and the affinity partition) for the hot/cold check.
// Findings are ordered by type-registry index, then by kind.
func Lint(a *Analysis, rep *core.Report) []Finding {
	var out []Finding
	for ti, st := range a.Program.Types {
		if st == nil || len(st.Fields) == 0 {
			continue
		}
		out = append(out, lintPadding(st)...)
		access := fieldAccessSets(a, ti)
		out = append(out, lintCoAccess(st, access)...)
		out = append(out, lintHotCold(st, access, structReportFor(rep, st.Name))...)
	}
	return out
}

// lintPadding flags alignment holes between consecutive fields and
// trailing padding. Fields are examined in offset order.
func lintPadding(st *prog.StructType) []Finding {
	fields := append([]prog.PhysField(nil), st.Fields...)
	sort.Slice(fields, func(i, j int) bool { return fields[i].Offset < fields[j].Offset })
	var out []Finding
	end := 0
	prev := ""
	for _, f := range fields {
		if f.Offset > end {
			out = append(out, Finding{
				Kind:   LintPaddingHole,
				Struct: st.Name,
				Fields: []string{prev, f.Name},
				Bytes:  f.Offset - end,
				Detail: fmt.Sprintf("%d padding byte(s) between %s and %s (bytes %d..%d)",
					f.Offset-end, fieldOrStart(prev), f.Name, end, f.Offset-1),
			})
		}
		if e := f.Offset + f.Size; e > end {
			end = e
		}
		prev = f.Name
	}
	if st.Size > end {
		out = append(out, Finding{
			Kind:   LintTrailingPadding,
			Struct: st.Name,
			Fields: []string{prev},
			Bytes:  st.Size - end,
			Detail: fmt.Sprintf("%d trailing padding byte(s) after %s (element size %d, fields end at %d)",
				st.Size-end, prev, st.Size, end),
		})
	}
	return out
}

func fieldOrStart(name string) string {
	if name == "" {
		return "start of struct"
	}
	return name
}

// fieldAccessSets maps each field index of type ti to the set of loop
// keys in which an exact static stream touches it. Accesses outside any
// loop use key 0 (cfg.LoopKey is always positive). A stream maps to a
// field only when its stride is a multiple of the element size, so its
// in-element offset is iteration-invariant.
func fieldAccessSets(a *Analysis, ti int) map[int]map[uint64]bool {
	st := a.Program.Types[ti]
	sets := make(map[int]map[uint64]bool)
	for _, obj := range a.Objects {
		if obj.TypeID != ti {
			continue
		}
		for _, sp := range obj.Streams {
			if st.Size > 0 && sp.Stride%uint64(st.Size) != 0 {
				continue
			}
			off := int(umod(sp.Disp, uint64(st.Size)))
			fi := fieldIndexAt(st, off)
			if fi < 0 {
				continue
			}
			var key uint64
			if sp.Loop != nil {
				key = sp.Loop.Key
			}
			if sets[fi] == nil {
				sets[fi] = make(map[uint64]bool)
			}
			sets[fi][key] = true
		}
	}
	return sets
}

func fieldIndexAt(st *prog.StructType, off int) int {
	for i := range st.Fields {
		f := &st.Fields[i]
		if off >= f.Offset && off < f.Offset+f.Size {
			return i
		}
	}
	return -1
}

// lintCoAccess partitions the accessed fields into connected components
// under "appears in the same loop", and reports when more than one
// component exists — the components are static split candidates.
func lintCoAccess(st *prog.StructType, access map[int]map[uint64]bool) []Finding {
	var accessed []int
	for fi := range access {
		accessed = append(accessed, fi)
	}
	if len(accessed) < 2 {
		return nil
	}
	sort.Ints(accessed)

	// Union-find over accessed fields; union any two sharing a loop key.
	parent := make(map[int]int, len(accessed))
	for _, fi := range accessed {
		parent[fi] = fi
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byLoop := make(map[uint64][]int)
	for _, fi := range accessed {
		for key := range access[fi] {
			byLoop[key] = append(byLoop[key], fi)
		}
	}
	for _, members := range byLoop {
		for _, fi := range members[1:] {
			parent[find(members[0])] = find(fi)
		}
	}

	comps := make(map[int][]int)
	for _, fi := range accessed {
		r := find(fi)
		comps[r] = append(comps[r], fi)
	}
	if len(comps) < 2 {
		return nil
	}
	var groups [][]int
	for _, c := range comps {
		sort.Ints(c)
		groups = append(groups, c)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })

	parts := make([]string, len(groups))
	var fields []string
	for gi, g := range groups {
		names := make([]string, len(g))
		for i, fi := range g {
			names[i] = st.Fields[fi].Name
			fields = append(fields, st.Fields[fi].Name)
		}
		parts[gi] = "{" + strings.Join(names, ",") + "}"
	}
	return []Finding{{
		Kind:   LintNeverCoAccessed,
		Struct: st.Name,
		Fields: fields,
		Detail: fmt.Sprintf("field groups %s are never accessed in the same loop; consider splitting",
			strings.Join(parts, " and ")),
	}}
}

// lintHotCold reports hot/cold field mixing. With a dynamic report the
// check uses measured latency shares (and the affinity partition when it
// already separates the offsets); otherwise it falls back to static
// evidence: fields accessed inside loops versus fields never accessed at
// all.
func lintHotCold(st *prog.StructType, access map[int]map[uint64]bool, sr *core.StructReport) []Finding {
	if sr != nil {
		return lintHotColdDynamic(st, sr)
	}
	var hot, cold []string
	coldBytes := 0
	for fi := range st.Fields {
		f := &st.Fields[fi]
		if loops, ok := access[fi]; ok {
			inLoop := false
			for key := range loops {
				if key != 0 {
					inLoop = true
					break
				}
			}
			if inLoop {
				hot = append(hot, f.Name)
			}
		} else {
			cold = append(cold, f.Name)
			coldBytes += f.Size
		}
	}
	if len(hot) == 0 || len(cold) == 0 {
		return nil
	}
	return []Finding{{
		Kind:   LintHotColdMix,
		Struct: st.Name,
		Fields: append(append([]string(nil), hot...), cold...),
		Bytes:  coldBytes,
		Detail: fmt.Sprintf("loop-accessed field(s) %s share the element with %d byte(s) of never-accessed field(s) %s (static evidence)",
			strings.Join(hot, ","), coldBytes, strings.Join(cold, ",")),
	}}
}

func lintHotColdDynamic(st *prog.StructType, sr *core.StructReport) []Finding {
	sampled := make(map[int]float64) // field index -> latency share
	for _, fr := range sr.Fields {
		if fr.Offset == core.UnknownOffset {
			continue
		}
		if fi := fieldIndexAt(st, int(fr.Offset)); fi >= 0 {
			sampled[fi] += fr.Share
		}
	}
	var hot, cold []string
	coldBytes := 0
	for fi := range st.Fields {
		f := &st.Fields[fi]
		if sampled[fi] >= hotShare {
			hot = append(hot, f.Name)
		} else if sampled[fi] == 0 {
			cold = append(cold, f.Name)
			coldBytes += f.Size
		}
	}
	var out []Finding
	if len(hot) > 0 && len(cold) > 0 {
		out = append(out, Finding{
			Kind:   LintHotColdMix,
			Struct: st.Name,
			Fields: append(append([]string(nil), hot...), cold...),
			Bytes:  coldBytes,
			Detail: fmt.Sprintf("hot field(s) %s (≥%.0f%% latency share) share the element with %d byte(s) of unsampled field(s) %s",
				strings.Join(hot, ","), hotShare*100, coldBytes, strings.Join(cold, ",")),
		})
	}
	// The affinity clustering (Equation 7) partitioning the sampled
	// offsets into more than one group is itself mixing evidence.
	if len(sr.OffsetGroups) > 1 {
		parts := make([]string, len(sr.OffsetGroups))
		for gi, g := range sr.OffsetGroups {
			names := make([]string, 0, len(g))
			for _, off := range g {
				if f := st.FieldAt(int(off)); f != nil {
					names = append(names, f.Name)
				} else {
					names = append(names, fmt.Sprintf("+%d", off))
				}
			}
			parts[gi] = "{" + strings.Join(names, ",") + "}"
		}
		out = append(out, Finding{
			Kind:   LintHotColdMix,
			Struct: st.Name,
			Detail: fmt.Sprintf("affinity clustering separates the accessed fields into %s",
				strings.Join(parts, " and ")),
		})
	}
	return out
}

// structReportFor finds the report's deep analysis for the named struct
// type, if the profiler produced one.
func structReportFor(rep *core.Report, typeName string) *core.StructReport {
	if rep == nil {
		return nil
	}
	for _, sr := range rep.Structures {
		if sr.TypeName == typeName {
			return sr
		}
	}
	return nil
}
