// Package staticlint is the static twin of the dynamic profiler: an IR
// dataflow analysis that predicts memory access patterns without running
// the program. Where internal/stride recovers strides, structure sizes,
// and field offsets from sparse address samples (paper Eqs. 2–6),
// staticlint derives the same facts symbolically from the binary alone:
// it detects loop induction variables over the Havlak loop forest
// (internal/cfg), resolves each Load/Store's effective address
// base + index*scale + disp into a linear form over loop counters, and
// emits per-(instruction, loop) stream predictions.
//
// Two consumers sit on top of the predictions: a cross-validation report
// (crosscheck.go) that compares static predictions against the dynamic
// profile stream by stream, and a layout linter (lint.go) that flags
// padding holes, hot/cold field mixing, and fields that never co-occur
// in a loop.
package staticlint

import (
	"fmt"
	"sort"
	"strings"
)

// ivRef names one loop's symbolic iteration counter κ: the counter of the
// reducible loop with the given header block in the given function.
type ivRef struct {
	Fn     int
	Header int
}

// baseKind classifies the base object of a resolved address expression.
type baseKind uint8

// Base kinds. baseNone means the expression is a plain integer (or an
// address with statically unknown base).
const (
	baseNone baseKind = iota
	baseGlobal
	baseAlloc
)

// baseRef identifies the base data object of an address: a program global
// (by index) or a heap allocation site (by the Alloc instruction's IP).
type baseRef struct {
	Kind    baseKind
	Global  int    // valid for baseGlobal
	AllocIP uint64 // valid for baseAlloc
}

// exprKind is the lattice level of an abstract register value.
type exprKind uint8

const (
	// exprBottom: no value yet (unreached in the fixpoint iteration).
	exprBottom exprKind = iota
	// exprLin: fully resolved linear form base + const + Σ coeff·κ.
	exprLin
	// exprLinU: linear form whose constant part (and possibly base) is
	// unknown, but whose loop-counter coefficients are known. Predictions
	// from such values are hints, not hard claims.
	exprLinU
	// exprTop: statically unknown.
	exprTop
)

// expr is one abstract value: a linear combination of loop counters over
// an optional base object plus a constant, or ⊥/⊤.
//
// expr values are treated as immutable once built; terms maps are never
// mutated in place after construction.
type expr struct {
	kind  exprKind
	base  baseRef
	c     int64
	terms map[ivRef]int64 // nonzero coefficients only
}

func bottom() expr { return expr{kind: exprBottom} }
func top() expr    { return expr{kind: exprTop} }

func constant(c int64) expr { return expr{kind: exprLin, c: c} }

func baseExpr(b baseRef) expr { return expr{kind: exprLin, base: b} }

func (e expr) isConst() bool {
	return e.kind == exprLin && e.base.Kind == baseNone && len(e.terms) == 0
}

// known reports whether the value carries any linear structure (exprLin or
// exprLinU).
func (e expr) known() bool { return e.kind == exprLin || e.kind == exprLinU }

// hasTerm reports whether κ of the given loop appears with a nonzero
// coefficient.
func (e expr) hasTerm(iv ivRef) bool {
	_, ok := e.terms[iv]
	return ok
}

// coeff returns the coefficient of the given loop counter (0 if absent).
func (e expr) coeff(iv ivRef) int64 { return e.terms[iv] }

func cloneTerms(t map[ivRef]int64) map[ivRef]int64 {
	if len(t) == 0 {
		return nil
	}
	out := make(map[ivRef]int64, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

func termsEqual(a, b map[ivRef]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (e expr) equal(o expr) bool {
	return e.kind == o.kind && e.base == o.base && e.c == o.c && termsEqual(e.terms, o.terms)
}

// addTerm returns e with coefficient k added to loop counter iv.
func (e expr) addTerm(iv ivRef, k int64) expr {
	if k == 0 {
		return e
	}
	t := cloneTerms(e.terms)
	if t == nil {
		t = make(map[ivRef]int64, 1)
	}
	t[iv] += k
	if t[iv] == 0 {
		delete(t, iv)
	}
	e.terms = t
	return e
}

// join is the lattice join (control-flow merge) of two abstract values.
func join(a, b expr) expr {
	switch {
	case a.kind == exprBottom:
		return b
	case b.kind == exprBottom:
		return a
	case a.kind == exprTop || b.kind == exprTop:
		return top()
	case a.equal(b):
		return a
	}
	// Both linear-ish but unequal: if the loop-counter coefficients agree
	// the merge still has a known stride shape — keep it as a hint with
	// the base preserved only when both sides agree on it.
	if termsEqual(a.terms, b.terms) {
		out := expr{kind: exprLinU, terms: a.terms}
		if a.base == b.base {
			out.base = a.base
		}
		return out
	}
	return top()
}

// add returns the abstract sum a + b.
func add(a, b expr) expr {
	if !a.known() || !b.known() {
		return top()
	}
	if a.base.Kind != baseNone && b.base.Kind != baseNone {
		return top() // pointer + pointer: not a meaningful address form
	}
	out := expr{kind: exprLin, base: a.base, c: a.c + b.c}
	if b.base.Kind != baseNone {
		out.base = b.base
	}
	if a.kind == exprLinU || b.kind == exprLinU {
		out.kind = exprLinU
	}
	t := cloneTerms(a.terms)
	for iv, k := range b.terms {
		if t == nil {
			t = make(map[ivRef]int64, len(b.terms))
		}
		t[iv] += k
		if t[iv] == 0 {
			delete(t, iv)
		}
	}
	out.terms = t
	return out
}

// sub returns the abstract difference a − b. Subtracting a matching base
// cancels it (pointer difference); subtracting a different base is ⊤.
func sub(a, b expr) expr {
	if !a.known() || !b.known() {
		return top()
	}
	if b.base.Kind != baseNone {
		if a.base != b.base {
			return top()
		}
		a.base = baseRef{}
		b.base = baseRef{}
	}
	neg := expr{kind: b.kind, c: -b.c}
	if len(b.terms) > 0 {
		nt := make(map[ivRef]int64, len(b.terms))
		for iv, k := range b.terms {
			nt[iv] = -k
		}
		neg.terms = nt
	}
	return add(a, neg)
}

// mulConst returns the abstract product a · k.
func mulConst(a expr, k int64) expr {
	if !a.known() {
		return top()
	}
	if k == 0 {
		return constant(0)
	}
	if a.base.Kind != baseNone && k != 1 {
		return top() // scaled pointer
	}
	out := expr{kind: a.kind, base: a.base, c: a.c * k}
	if len(a.terms) > 0 {
		t := make(map[ivRef]int64, len(a.terms))
		for iv, c := range a.terms {
			t[iv] = c * k
		}
		out.terms = t
	}
	return out
}

// String renders the value for diagnostics and tests.
func (e expr) String() string {
	switch e.kind {
	case exprBottom:
		return "⊥"
	case exprTop:
		return "⊤"
	}
	var parts []string
	switch e.base.Kind {
	case baseGlobal:
		parts = append(parts, fmt.Sprintf("g%d", e.base.Global))
	case baseAlloc:
		parts = append(parts, fmt.Sprintf("alloc@%#x", e.base.AllocIP))
	}
	ivs := make([]ivRef, 0, len(e.terms))
	for iv := range e.terms {
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Fn != ivs[j].Fn {
			return ivs[i].Fn < ivs[j].Fn
		}
		return ivs[i].Header < ivs[j].Header
	})
	for _, iv := range ivs {
		parts = append(parts, fmt.Sprintf("%d·κ(f%d,b%d)", e.terms[iv], iv.Fn, iv.Header))
	}
	if e.kind == exprLinU {
		parts = append(parts, "U")
	} else if e.c != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.c))
	}
	return strings.Join(parts, " + ")
}
