package staticlint

import (
	"fmt"
	"io"
)

// RenderText writes the static stream predictions and per-object
// aggregates in the same plain style as core.Report.RenderText.
func (a *Analysis) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Static stride analysis for %s\n", a.Program.Name)
	nExact, nHint, nUnres := 0, 0, 0
	for _, sp := range a.Streams {
		switch sp.Confidence {
		case Exact:
			nExact++
		case Hint:
			nHint++
		default:
			nUnres++
		}
	}
	fmt.Fprintf(w, "  streams: %d exact / %d hint / %d unresolved of %d memory accesses\n",
		nExact, nHint, nUnres, len(a.Streams))
	if len(a.UnanalyzedFns) > 0 {
		fmt.Fprintf(w, "  WARNING: dataflow did not converge in %d function(s)\n", len(a.UnanalyzedFns))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "Predicted streams (instruction × innermost loop):\n")
	for _, sp := range a.Streams {
		loop := "-"
		if sp.Loop != nil {
			loop = sp.Loop.Name()
		}
		switch sp.Confidence {
		case Exact:
			extra := ""
			if sp.OffsetResolved {
				extra = fmt.Sprintf("  size=%-4d offset=%d", sp.PredSize, sp.Offset)
			}
			fmt.Fprintf(w, "  %-14s %-5s %-24s exact       stride=%-6d%s\n",
				sp.Where, sp.Op, loop, sp.Stride, extra)
		case Hint:
			fmt.Fprintf(w, "  %-14s %-5s %-24s hint        stride=%-6d (%s)\n",
				sp.Where, sp.Op, loop, sp.Stride, sp.Reason)
		default:
			fmt.Fprintf(w, "  %-14s %-5s %-24s unresolved  (%s)\n",
				sp.Where, sp.Op, loop, sp.Reason)
		}
	}
	fmt.Fprintln(w)

	if len(a.Objects) > 0 {
		fmt.Fprintf(w, "Predicted objects (static Eq. 5):\n")
		for _, obj := range a.Objects {
			size := "elem size unknown"
			if obj.PredSize > 0 {
				size = fmt.Sprintf("elem size %d", obj.PredSize)
			}
			debug := ""
			if obj.DebugSize > 0 {
				debug = fmt.Sprintf(" (debug info: %d)", obj.DebugSize)
			}
			fmt.Fprintf(w, "  %-32s %s%s, %d exact stream(s)\n",
				obj.Name, size, debug, len(obj.Streams))
		}
		fmt.Fprintln(w)
	}
}

// RenderText summarizes the static-vs-dynamic cross-check, listing every
// non-OK stream comparison.
func (r *CrossReport) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Cross-check against dynamic profile (%s):\n", r.Program)
	fmt.Fprintf(w, "  %d ok / %d mismatch / %d warning / %d static-only / %d dynamic-only\n",
		r.OK, r.Mismatches, r.Warnings, r.StaticOnly, r.DynamicOnly)
	for _, c := range r.Checks {
		if c.Status == CheckOK {
			continue
		}
		obj := c.ObjName
		if obj == "" {
			obj = "-"
		}
		fmt.Fprintf(w, "  %-11s %-14s obj=%-24s %s\n", c.Status, c.Where, obj, c.Detail)
	}
	if r.Failed() {
		fmt.Fprintf(w, "  RESULT: FAIL — static predictions contradict the profiler\n")
	} else {
		fmt.Fprintf(w, "  RESULT: ok — every exact prediction is consistent with the dynamic GCD recovery\n")
	}
	fmt.Fprintln(w)
}

// WriteFindings renders the layout-lint findings, one per line.
func WriteFindings(w io.Writer, findings []Finding) {
	if len(findings) == 0 {
		fmt.Fprintf(w, "Layout lint: no findings\n")
		return
	}
	fmt.Fprintf(w, "Layout lint (%d finding(s)):\n", len(findings))
	for _, f := range findings {
		fmt.Fprintf(w, "  %-18s struct %-16s %s\n", f.Kind, f.Struct, f.Detail)
	}
	fmt.Fprintln(w)
}
