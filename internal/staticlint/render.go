package staticlint

import (
	"fmt"
	"io"
)

// RenderText writes the static stream predictions and per-object
// aggregates in the same plain style as core.Report.RenderText.
func (a *Analysis) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Static stride analysis for %s\n", a.Program.Name)
	nExact, nHint, nUnres := 0, 0, 0
	for _, sp := range a.Streams {
		switch sp.Confidence {
		case Exact:
			nExact++
		case Hint:
			nHint++
		default:
			nUnres++
		}
	}
	fmt.Fprintf(w, "  streams: %d exact / %d hint / %d unresolved of %d memory accesses\n",
		nExact, nHint, nUnres, len(a.Streams))
	if len(a.UnanalyzedFns) > 0 {
		fmt.Fprintf(w, "  WARNING: dataflow did not converge in %d function(s)\n", len(a.UnanalyzedFns))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "Predicted streams (instruction × innermost loop):\n")
	for _, sp := range a.Streams {
		loop := "-"
		if sp.Loop != nil {
			loop = sp.Loop.Name()
		}
		switch sp.Confidence {
		case Exact:
			extra := ""
			if sp.OffsetResolved {
				extra = fmt.Sprintf("  size=%-4d offset=%d", sp.PredSize, sp.Offset)
			}
			fmt.Fprintf(w, "  %-14s %-5s %-24s exact       stride=%-6d%s\n",
				sp.Where, sp.Op, loop, sp.Stride, extra)
		case Hint:
			fmt.Fprintf(w, "  %-14s %-5s %-24s hint        stride=%-6d (%s)\n",
				sp.Where, sp.Op, loop, sp.Stride, sp.Reason)
		default:
			fmt.Fprintf(w, "  %-14s %-5s %-24s unresolved  (%s)\n",
				sp.Where, sp.Op, loop, sp.Reason)
		}
	}
	fmt.Fprintln(w)

	if len(a.Objects) > 0 {
		fmt.Fprintf(w, "Predicted objects (static Eq. 5):\n")
		for _, obj := range a.Objects {
			size := "elem size unknown"
			if obj.PredSize > 0 {
				size = fmt.Sprintf("elem size %d", obj.PredSize)
			}
			debug := ""
			if obj.DebugSize > 0 {
				debug = fmt.Sprintf(" (debug info: %d)", obj.DebugSize)
			}
			fmt.Fprintf(w, "  %-32s %s%s, %d exact stream(s)\n",
				obj.Name, size, debug, len(obj.Streams))
		}
		fmt.Fprintln(w)
	}
}

// RenderText summarizes the static-vs-dynamic cross-check, listing every
// non-OK stream comparison.
func (r *CrossReport) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Cross-check against dynamic profile (%s):\n", r.Program)
	fmt.Fprintf(w, "  %d ok / %d mismatch / %d warning / %d static-only / %d dynamic-only\n",
		r.OK, r.Mismatches, r.Warnings, r.StaticOnly, r.DynamicOnly)
	for _, c := range r.Checks {
		if c.Status == CheckOK {
			continue
		}
		obj := c.ObjName
		if obj == "" {
			obj = "-"
		}
		fmt.Fprintf(w, "  %-11s %-14s obj=%-24s %s\n", c.Status, c.Where, obj, c.Detail)
	}
	if r.Failed() {
		fmt.Fprintf(w, "  RESULT: FAIL — static predictions contradict the profiler\n")
	} else {
		fmt.Fprintf(w, "  RESULT: ok — every exact prediction is consistent with the dynamic GCD recovery\n")
	}
	fmt.Fprintln(w)
}

// RenderText writes the static reuse-distance predictions: one line per
// nest with per-level miss ratios, then the skipped nests with reasons.
func (rp *ReusePrediction) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Static reuse prediction for %s (%d nest(s), %d skipped):\n",
		rp.Program, len(rp.Nests), len(rp.Skipped))
	for _, np := range rp.Nests {
		loop := "-"
		if np.Info != nil {
			loop = np.Info.Name()
		}
		mode := "enumerated"
		if np.Extrapolated {
			mode = fmt.Sprintf("period=%d after %d iter(s)", np.Period, np.SimulatedIters)
		}
		fmt.Fprintf(w, "  %-24s trips=%-8d accesses=%-10d cold=%-8d %s\n",
			loop, np.Trips, np.Accesses, np.Total.Cold, mode)
		for l, lev := range rp.Levels {
			fmt.Fprintf(w, "    %-4s miss ratio %.4f (%d / %d)\n",
				lev.Name, np.MissRatio(l), np.Misses[l], np.Accesses)
		}
		for _, obj := range np.Objects {
			fmt.Fprintf(w, "    object %-24s accesses=%-10d cold=%d\n",
				obj.Name, obj.Hist.N, obj.Hist.Cold)
		}
	}
	for _, sk := range rp.Skipped {
		loop := "-"
		if sk.Info != nil {
			loop = sk.Info.Name()
		}
		fmt.Fprintf(w, "  %-24s skipped: %s\n", loop, sk.Reason)
	}
	fmt.Fprintln(w)
}

// RenderText summarizes the static-vs-dynamic reuse verification.
func (rr *ReuseReport) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Reuse verification against instrumented run (%s):\n", rr.Program)
	for _, nc := range rr.Nests {
		loop := "-"
		if nc.Info != nil {
			loop = nc.Info.Name()
		}
		verdict := "ok"
		if !nc.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  %-24s execs=%-6d accesses=%-10d %s\n",
			loop, nc.Execs, nc.DynAccesses, verdict)
		if !nc.HistMatch {
			fmt.Fprintf(w, "    histogram: %s\n", nc.HistDetail)
		}
		if !nc.TraceMatch {
			fmt.Fprintf(w, "    first-exec trace: %s\n", nc.TraceDetail)
		}
		for _, lc := range nc.Levels {
			status := "ok"
			if !lc.OK {
				status = "FAIL"
			}
			fmt.Fprintf(w, "    %-4s capacity-miss ratio predicted %.4f measured %.4f %s\n",
				lc.Name, lc.Predicted, lc.Measured, status)
		}
	}
	if rr.Stray > 0 {
		fmt.Fprintf(w, "  %d access(es) outside every predicted nest (whole-run check skipped)\n", rr.Stray)
	}
	if len(rr.Unexecuted) > 0 {
		fmt.Fprintf(w, "  %d predicted nest(s) never executed\n", len(rr.Unexecuted))
	}
	if wr := rr.WholeRun; wr != nil {
		status := "ok"
		if !wr.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  whole-run L1 miss ratio: measured %.4f in predicted [%.4f, %.4f] %s\n",
			wr.Measured, wr.PredictedLow, wr.PredictedHigh, status)
	}
	if rr.OK() {
		fmt.Fprintf(w, "  RESULT: ok — every executed nest matches its predicted reuse profile\n")
	} else {
		fmt.Fprintf(w, "  RESULT: FAIL — %d reuse check(s) contradict the instrumented run\n", rr.Failures)
	}
	fmt.Fprintln(w)
}

// WriteFindings renders the layout-lint findings, one per line.
func WriteFindings(w io.Writer, findings []Finding) {
	if len(findings) == 0 {
		fmt.Fprintf(w, "Layout lint: no findings\n")
		return
	}
	fmt.Fprintf(w, "Layout lint (%d finding(s)):\n", len(findings))
	for _, f := range findings {
		fmt.Fprintf(w, "  %-18s struct %-16s %s\n", f.Kind, f.Struct, f.Detail)
	}
	fmt.Fprintln(w)
}
