package staticlint

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/stride"
)

// crosscheck.go validates the static predictions against a dynamic
// profile, stream by stream. For every stream the static analyzer marks
// exact, three invariants must hold against the dynamic GCD recovery
// (paper Eqs. 2–6):
//
//  1. stride: every dynamic address delta is an integer combination of
//     the loop-counter coefficients, so the dynamic GCD must be a
//     multiple of the static stride (and 0 when the static stride is 0);
//  2. size: the Eq. 5 GCD vote over the same evidence must agree — the
//     static size vote is restricted to the streams that actually voted
//     dynamically, since the sampler never sees streams with too few
//     accesses while the static pass sees all code (on full coverage the
//     two sets coincide and this is plain equality);
//  3. offset: every coefficient of an exact stream's address is a
//     multiple of its stride, so whenever the stride is a multiple of
//     the dynamically recovered size, the stream's addresses are fixed
//     modulo that size and the dynamic field offset
//     (FirstEA − objectBase) mod size must equal the static Disp mod size.
//
// Violations on exact streams are hard mismatches — one side of the
// tool is wrong. Hint streams (known stride shape, unknown base) get the
// divisibility check as a soft warning only.

// CheckStatus classifies one stream comparison.
type CheckStatus uint8

// Check statuses.
const (
	// CheckOK: all applicable invariants held.
	CheckOK CheckStatus = iota
	// CheckMismatch: a hard invariant failed on an exact stream.
	CheckMismatch
	// CheckWarning: a soft invariant failed on a hint stream.
	CheckWarning
	// CheckStaticOnly: the static side predicts, but the profile has no
	// samples for the stream (dead or unsampled code) — informational.
	CheckStaticOnly
	// CheckDynamicOnly: the profile has the stream but the static side is
	// unresolved — the sampling profiler's coverage advantage.
	CheckDynamicOnly
)

func (s CheckStatus) String() string {
	switch s {
	case CheckOK:
		return "ok"
	case CheckMismatch:
		return "MISMATCH"
	case CheckWarning:
		return "warning"
	case CheckStaticOnly:
		return "static-only"
	case CheckDynamicOnly:
		return "dynamic-only"
	}
	return "?"
}

// StreamCheck is the comparison result for one (instruction, data
// structure) stream.
type StreamCheck struct {
	IP       uint64
	Where    string
	Identity uint64
	ObjName  string

	Static *StreamPred

	// Dynamic side, merged across calling contexts and threads.
	DynCount  uint64
	DynGCD    uint64
	DynSize   uint64 // Eq. 5 result for the stream's identity
	DynOffset uint64 // Eq. 6 result, UnknownOffset when unresolved

	Status CheckStatus
	Detail string
}

// UnknownOffset mirrors core.UnknownOffset for unresolved dynamic offsets.
const UnknownOffset = ^uint64(0)

// CrossReport is the full static-vs-dynamic validation of one run.
type CrossReport struct {
	Program string
	Checks  []StreamCheck

	// Stream confidence census over the whole binary.
	NumExact, NumHint, NumUnresolved int

	OK, Mismatches, Warnings, StaticOnly, DynamicOnly int

	// Reuse holds the static-vs-dynamic reuse validation when FoldReuse
	// was called (nil otherwise).
	Reuse *ReuseReport
}

// Failed reports whether any hard invariant was violated.
func (r *CrossReport) Failed() bool { return r.Mismatches > 0 }

// FoldReuse merges a reuse-verification report into the cross-check: a
// diverging exact-tier reuse claim is as hard a failure as a diverging
// stride claim, so every reuse failure counts as a mismatch.
func (r *CrossReport) FoldReuse(rr *ReuseReport) {
	if rr == nil {
		return
	}
	r.Reuse = rr
	r.Mismatches += rr.Failures
	if rr.Stray > 0 || len(rr.Unexecuted) > 0 {
		r.Warnings++
	}
}

// mergedStream is one dynamic stream folded over calling contexts: GCD of
// the per-context GCDs (exactly how MergeThreadProfiles folds threads),
// plus every context's first-sample anchor for the offset check.
type mergedStream struct {
	count   uint64
	gcd     uint64
	anchors []anchor
}

type anchor struct {
	ctx     uint64
	firstEA uint64
	objID   int32
}

// CrossCheck compares an analysis against a merged profile of the same
// program. minSamples is the Eq. 5 voting threshold and must match the
// core.Options used for the dynamic analysis (0 = core default).
func CrossCheck(a *Analysis, p *profile.Profile, minSamples uint64) *CrossReport {
	if minSamples == 0 {
		minSamples = core.DefaultOptions().MinStreamSamples
	}
	rep := &CrossReport{Program: a.Program.Name}
	for _, sp := range a.Streams {
		switch sp.Confidence {
		case Exact:
			rep.NumExact++
		case Hint:
			rep.NumHint++
		default:
			rep.NumUnresolved++
		}
	}

	objByID := make(map[int32]*profile.ObjInfo, len(p.Objects))
	identName := make(map[uint64]string)
	globalIdent := make(map[string]uint64)   // static symbol name → identity
	allocIdents := make(map[uint64][]uint64) // alloc IP → identities (per call path)
	for i := range p.Objects {
		oi := &p.Objects[i]
		objByID[oi.ID] = oi
		identName[oi.Identity] = oi.Name
		if !oi.Heap {
			globalIdent[oi.Name] = oi.Identity
		} else {
			ids := allocIdents[oi.AllocIP]
			seen := false
			for _, id := range ids {
				if id == oi.Identity {
					seen = true
					break
				}
			}
			if !seen {
				allocIdents[oi.AllocIP] = append(ids, oi.Identity)
			}
		}
	}

	// Fold the profile's context-sensitive streams down to (IP, identity)
	// and collect the per-identity size votes exactly as core.Analyze does.
	type dynKey struct {
		ip       uint64
		identity uint64
	}
	dyn := make(map[dynKey]*mergedStream)
	votes := make(map[uint64][]uint64)
	voters := make(map[uint64][]dynKey) // identity → dynamically voting streams
	for key, stat := range p.Streams {
		dk := dynKey{ip: key.IP, identity: key.Identity}
		ms := dyn[dk]
		if ms == nil {
			ms = &mergedStream{}
			dyn[dk] = ms
		}
		ms.count += stat.Count
		ms.gcd = profile.GCD64(ms.gcd, stat.GCD)
		ms.anchors = append(ms.anchors, anchor{ctx: key.Ctx, firstEA: stat.FirstEA, objID: stat.FirstObjID})
		if stat.Count >= minSamples && stat.GCD >= stride.MinMeaningfulStride {
			votes[key.Identity] = append(votes[key.Identity], stat.GCD)
			voters[key.Identity] = append(voters[key.Identity], dk)
		}
	}
	dynSize := make(map[uint64]uint64, len(votes))
	for ident, vs := range votes {
		dynSize[ident] = stride.StructSize(vs)
	}

	// identitiesOf maps a static base to the dynamic identities it covers.
	identitiesOf := func(b baseRef) []uint64 {
		switch b.Kind {
		case baseGlobal:
			if b.Global >= 0 && b.Global < len(a.Program.Globals) {
				if id, ok := globalIdent[a.Program.Globals[b.Global].Name]; ok {
					return []uint64{id}
				}
			}
		case baseAlloc:
			return allocIdents[b.AllocIP]
		}
		return nil
	}

	// The evidence-matched static size vote: for each identity, fold the
	// static strides of exactly the streams that voted dynamically. The
	// equality check only applies when every dynamic voter is covered by
	// an exact static stream — otherwise the two sides genuinely used
	// different evidence and only divisibility is meaningful.
	exactAt := make(map[dynKey]*StreamPred)
	for _, sp := range a.Streams {
		if sp.Confidence != Exact {
			continue
		}
		for _, ident := range identitiesOf(sp.Base) {
			exactAt[dynKey{ip: sp.IP, identity: ident}] = sp
		}
	}
	cmpSize := make(map[uint64]uint64)
	covered := make(map[uint64]bool)
	for ident, dks := range voters {
		all := true
		var strides []uint64
		for _, dk := range dks {
			sp := exactAt[dk]
			if sp == nil {
				all = false
				break
			}
			strides = append(strides, sp.Stride)
		}
		if all {
			covered[ident] = true
			cmpSize[ident] = stride.StructSize(strides)
		}
	}

	matched := make(map[dynKey]bool)
	for _, sp := range a.Streams {
		if sp.Confidence != Exact {
			continue
		}
		idents := identitiesOf(sp.Base)
		if len(idents) == 0 {
			rep.Checks = append(rep.Checks, StreamCheck{
				IP: sp.IP, Where: sp.Where, Static: sp,
				Status: CheckStaticOnly,
				Detail: "no dynamic object for the predicted base",
			})
			continue
		}
		for _, ident := range idents {
			sc := StreamCheck{
				IP: sp.IP, Where: sp.Where, Identity: ident,
				ObjName: identName[ident], Static: sp, DynOffset: UnknownOffset,
			}
			ms := dyn[dynKey{ip: sp.IP, identity: ident}]
			if ms == nil {
				sc.Status = CheckStaticOnly
				sc.Detail = "stream never sampled"
				rep.Checks = append(rep.Checks, sc)
				continue
			}
			matched[dynKey{ip: sp.IP, identity: ident}] = true
			sc.DynCount = ms.count
			sc.DynGCD = ms.gcd
			sc.DynSize = dynSize[ident]
			checkExact(&sc, ms, objByID, cmpSize[ident], covered[ident])
			rep.Checks = append(rep.Checks, sc)
		}
	}

	// Hint streams: soft divisibility check against every dynamic stream
	// at the same IP. Unresolved streams with dynamic data are counted as
	// dynamic-only coverage.
	byIP := make(map[uint64][]dynKey)
	for dk := range dyn {
		byIP[dk.ip] = append(byIP[dk.ip], dk)
	}
	for _, sp := range a.Streams {
		if sp.Confidence == Exact {
			continue
		}
		for _, dk := range byIP[sp.IP] {
			if matched[dk] {
				continue
			}
			ms := dyn[dk]
			sc := StreamCheck{
				IP: sp.IP, Where: sp.Where, Identity: dk.identity,
				ObjName: identName[dk.identity], Static: sp,
				DynCount: ms.count, DynGCD: ms.gcd, DynSize: dynSize[dk.identity],
				DynOffset: UnknownOffset,
			}
			if sp.Confidence == Hint && sp.Stride > 0 && ms.count >= minSamples && ms.gcd%sp.Stride != 0 {
				sc.Status = CheckWarning
				sc.Detail = fmt.Sprintf("dynamic GCD %d not a multiple of hinted stride %d", ms.gcd, sp.Stride)
			} else if sp.Confidence == Hint {
				sc.Status = CheckOK
			} else {
				sc.Status = CheckDynamicOnly
				sc.Detail = sp.Reason
			}
			rep.Checks = append(rep.Checks, sc)
		}
	}

	sort.Slice(rep.Checks, func(i, j int) bool {
		if rep.Checks[i].IP != rep.Checks[j].IP {
			return rep.Checks[i].IP < rep.Checks[j].IP
		}
		return rep.Checks[i].Identity < rep.Checks[j].Identity
	})
	for i := range rep.Checks {
		switch rep.Checks[i].Status {
		case CheckOK:
			rep.OK++
		case CheckMismatch:
			rep.Mismatches++
		case CheckWarning:
			rep.Warnings++
		case CheckStaticOnly:
			rep.StaticOnly++
		case CheckDynamicOnly:
			rep.DynamicOnly++
		}
	}
	return rep
}

// checkExact applies the three hard invariants to one exact stream.
// cmpSize is the evidence-matched static size vote for the stream's
// identity, valid only when covered is true.
func checkExact(sc *StreamCheck, ms *mergedStream, objByID map[int32]*profile.ObjInfo, cmpSize uint64, covered bool) {
	sp := sc.Static
	// 1. Stride divisibility.
	if sp.Stride == 0 {
		if ms.gcd != 0 {
			sc.Status = CheckMismatch
			sc.Detail = fmt.Sprintf("static stride 0 (loop-invariant) but dynamic GCD %d", ms.gcd)
			return
		}
	} else if ms.gcd%sp.Stride != 0 {
		sc.Status = CheckMismatch
		sc.Detail = fmt.Sprintf("dynamic GCD %d not a multiple of static stride %d", ms.gcd, sp.Stride)
		return
	}
	// 2. Structure size (Eq. 5) over matched evidence.
	if covered && cmpSize > 0 && sc.DynSize > 0 && cmpSize != sc.DynSize {
		sc.Status = CheckMismatch
		sc.Detail = fmt.Sprintf("static size %d != dynamic size %d", cmpSize, sc.DynSize)
		return
	}
	// 3. Field offset (Eq. 6): valid whenever this stream's addresses are
	// congruent modulo the dynamically recovered size, i.e. its stride is
	// a multiple of it. Checked against every calling context's
	// first-sample anchor.
	if sc.DynSize > 0 && sp.Stride%sc.DynSize == 0 {
		staticOff := umod(sp.Disp, sc.DynSize)
		for _, an := range ms.anchors {
			obj := objByID[an.objID]
			if obj == nil {
				continue
			}
			dynOff := stride.Offset(an.firstEA, obj.Base, sc.DynSize)
			if sc.DynOffset == UnknownOffset {
				sc.DynOffset = dynOff
			}
			if dynOff != staticOff {
				sc.Status = CheckMismatch
				sc.Detail = fmt.Sprintf("static offset %d != dynamic offset %d (size %d, ctx %#x)",
					staticOff, dynOff, sc.DynSize, an.ctx)
				return
			}
		}
	}
	sc.Status = CheckOK
}
