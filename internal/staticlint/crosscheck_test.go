package staticlint

import (
	"testing"

	"repro/internal/workloads"
	"repro/structslim"
)

func TestCrossCheckAoS(t *testing.T) {
	p := buildAoS(t, 400, 64)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 50, Seed: 1})
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	r := CrossCheck(a, res.Profile, 0)
	if r.Failed() {
		for _, c := range r.Checks {
			if c.Status == CheckMismatch {
				t.Errorf("mismatch at %s: %s", c.Where, c.Detail)
			}
		}
		t.Fatalf("cross-check failed: %d mismatches", r.Mismatches)
	}
	if r.OK == 0 {
		t.Fatalf("no stream was actually checked: %+v", r)
	}
	sawOffset := false
	for _, c := range r.Checks {
		if c.Status == CheckOK && c.DynOffset != UnknownOffset {
			sawOffset = true
			if c.DynSize != 64 {
				t.Errorf("stream %s: dynamic size %d, want 64", c.Where, c.DynSize)
			}
		}
	}
	if !sawOffset {
		t.Error("no offset was cross-checked")
	}
}

// TestCrossCheckDetectsLies proves the checker has teeth: corrupting a
// static prediction must surface as a hard mismatch.
func TestCrossCheckDetectsLies(t *testing.T) {
	p := buildAoS(t, 400, 64)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 50, Seed: 1})
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	for _, sp := range a.Streams {
		if sp.Confidence == Exact {
			sp.Stride = 48 // 64 is not a multiple of 48
		}
	}
	if r := CrossCheck(a, res.Profile, 0); !r.Failed() {
		t.Error("corrupted static strides were not flagged")
	}
}

// TestCrossCheckAllWorkloads is the whole-suite validation: profile every
// built-in workload and require that no exact static prediction
// contradicts the dynamic GCD recovery — stride, structure size, or field
// offset (Eqs. 2–6).
func TestCrossCheckAllWorkloads(t *testing.T) {
	totalExact, totalOK := 0, 0
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			a, err := AnalyzeProgram(p)
			if err != nil {
				t.Fatalf("AnalyzeProgram: %v", err)
			}
			res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 500, Seed: 7})
			if err != nil {
				t.Fatalf("ProfileRun: %v", err)
			}
			r := CrossCheck(a, res.Profile, 0)
			for _, c := range r.Checks {
				if c.Status == CheckMismatch {
					t.Errorf("mismatch at %s (%s, obj %s): %s",
						c.Where, c.Static.Op, c.ObjName, c.Detail)
				}
			}
			t.Logf("%s: %d exact / %d hint / %d unresolved streams; checks: %d ok, %d warn, %d static-only, %d dynamic-only",
				w.Name(), r.NumExact, r.NumHint, r.NumUnresolved,
				r.OK, r.Warnings, r.StaticOnly, r.DynamicOnly)
			totalExact += r.NumExact
			totalOK += r.OK
		})
	}
	if totalExact == 0 || totalOK == 0 {
		t.Errorf("suite-wide: %d exact predictions, %d checked ok — the static analyzer resolved nothing",
			totalExact, totalOK)
	}
}
