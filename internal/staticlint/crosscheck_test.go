package staticlint_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/prog"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"

	. "repro/internal/staticlint"
)

// buildAoS builds: for i in [0,n) { x=recs[i].a; y=recs[i].b; recs[i].c=x+y }
// over a global array of recSize-byte records.
func buildAoS(t *testing.T, n int64, recSize int) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("aos")
	g := b.Global("recs", n*int64(recSize), -1)
	b.Func("main", "aos.c")
	base, i, x, y := b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.AtLine(10)
	b.ForRange(i, 0, n, 1, func() {
		b.Load(x, base, i, recSize, 0, 8)
		b.Load(y, base, i, recSize, 8, 8)
		b.Add(x, x, y)
		b.Store(x, base, i, recSize, 16, 8)
	})
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

func TestCrossCheckAoS(t *testing.T) {
	p := buildAoS(t, 400, 64)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 50, Seed: 1})
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	r := CrossCheck(a, res.Profile, 0)
	if r.Failed() {
		for _, c := range r.Checks {
			if c.Status == CheckMismatch {
				t.Errorf("mismatch at %s: %s", c.Where, c.Detail)
			}
		}
		t.Fatalf("cross-check failed: %d mismatches", r.Mismatches)
	}
	if r.OK == 0 {
		t.Fatalf("no stream was actually checked: %+v", r)
	}
	sawOffset := false
	for _, c := range r.Checks {
		if c.Status == CheckOK && c.DynOffset != UnknownOffset {
			sawOffset = true
			if c.DynSize != 64 {
				t.Errorf("stream %s: dynamic size %d, want 64", c.Where, c.DynSize)
			}
		}
	}
	if !sawOffset {
		t.Error("no offset was cross-checked")
	}
}

// TestCrossCheckDetectsLies proves the checker has teeth: corrupting a
// static prediction must surface as a hard mismatch.
func TestCrossCheckDetectsLies(t *testing.T) {
	p := buildAoS(t, 400, 64)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 50, Seed: 1})
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	for _, sp := range a.Streams {
		if sp.Confidence == Exact {
			sp.Stride = 48 // 64 is not a multiple of 48
		}
	}
	if r := CrossCheck(a, res.Profile, 0); !r.Failed() {
		t.Error("corrupted static strides were not flagged")
	}
}

// TestCrossCheckZeroSampleProfile: a sampling period far beyond the
// workload's access count yields an empty profile. The cross-check must
// not crash or report mismatches — every exact prediction degrades to
// static-only, and folding an (absent) reuse report stays a no-op.
func TestCrossCheckZeroSampleProfile(t *testing.T) {
	p := buildAoS(t, 50, 64)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 1 << 30, Seed: 1})
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	if res.Profile.NumSamples != 0 {
		t.Fatalf("expected an empty profile, got %d samples", res.Profile.NumSamples)
	}
	r := CrossCheck(a, res.Profile, 0)
	if r.Failed() {
		t.Fatalf("empty profile produced %d mismatches", r.Mismatches)
	}
	if r.OK != 0 || r.DynamicOnly != 0 {
		t.Errorf("empty profile cannot confirm streams: %d ok, %d dynamic-only", r.OK, r.DynamicOnly)
	}
	if r.StaticOnly != r.NumExact || r.NumExact == 0 {
		t.Errorf("want all %d exact streams static-only, got %d", r.NumExact, r.StaticOnly)
	}
	r.FoldReuse(nil)
	if r.Failed() || r.Reuse != nil {
		t.Error("folding a nil reuse report changed the verdict")
	}
}

// TestCrossCheckSingleIterationLoop: a trip-count-1 nest still produces a
// consistent static/dynamic pair — the predictor emits a cold-only
// histogram with no division by zero, and the full reuse verification
// (histogram, trace replay, per-level check) holds on the real run.
func TestCrossCheckSingleIterationLoop(t *testing.T) {
	p := buildAoS(t, 1, 64)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	res, err := structslim.ProfileRun(p, nil, structslim.Options{SamplePeriod: 1, Seed: 1})
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	r := CrossCheck(a, res.Profile, 1)
	if r.Failed() {
		t.Fatalf("trip-1 cross-check failed: %d mismatches", r.Mismatches)
	}

	cfg := cache.DefaultConfig()
	cfg.Prefetch = false
	rp := PredictReuse(a, cfg)
	if len(rp.Nests) != 1 {
		t.Fatalf("predicted %d nests, want 1 (skipped: %+v)", len(rp.Nests), rp.Skipped)
	}
	np := rp.Nests[0]
	if np.Trips != 1 || np.Accesses != 3 {
		t.Fatalf("trip-1 nest: trips=%d accesses=%d, want 1 and 3", np.Trips, np.Accesses)
	}
	// All three accesses land on one 64-byte record: one cold touch, two
	// immediate line reuses — nothing reaches past L1.
	if np.Total.Cold != 1 || np.Total.Buckets[0] != 2 {
		t.Fatalf("trip-1 histogram: cold=%d buckets[0]=%d, want 1 and 2", np.Total.Cold, np.Total.Buckets[0])
	}
	for l := range rp.Levels {
		want := 1.0 / 3.0
		if got := np.MissRatio(l); got < want-1e-12 || got > want+1e-12 {
			t.Errorf("level %d miss ratio %v, want cold-only 1/3", l, got)
		}
	}

	m, err := vm.NewMachine(p, cfg, 1, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTraceChecker(rp)
	m.Observer = tc
	st, err := m.Run([]vm.ThreadSpec{{Fn: p.EntryFn}})
	if err != nil {
		t.Fatal(err)
	}
	rr := tc.Finish(st)
	r.FoldReuse(rr)
	if !rr.OK() || r.Failed() {
		t.Fatalf("trip-1 reuse verification failed: %+v", rr)
	}
	if len(rr.Nests) != 1 || rr.Nests[0].Execs != 1 {
		t.Fatalf("trip-1 nest executions: %+v", rr.Nests)
	}
}

// TestCrossCheckAllWorkloads is the whole-suite validation: profile every
// built-in workload and require that no exact static prediction
// contradicts the dynamic GCD recovery — stride, structure size, or field
// offset (Eqs. 2–6).
func TestCrossCheckAllWorkloads(t *testing.T) {
	totalExact, totalOK := 0, 0
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			p, phases, err := w.Build(nil, workloads.ScaleTest)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			a, err := AnalyzeProgram(p)
			if err != nil {
				t.Fatalf("AnalyzeProgram: %v", err)
			}
			res, err := structslim.ProfileRun(p, phases, structslim.Options{SamplePeriod: 500, Seed: 7})
			if err != nil {
				t.Fatalf("ProfileRun: %v", err)
			}
			r := CrossCheck(a, res.Profile, 0)
			for _, c := range r.Checks {
				if c.Status == CheckMismatch {
					t.Errorf("mismatch at %s (%s, obj %s): %s",
						c.Where, c.Static.Op, c.ObjName, c.Detail)
				}
			}
			t.Logf("%s: %d exact / %d hint / %d unresolved streams; checks: %d ok, %d warn, %d static-only, %d dynamic-only",
				w.Name(), r.NumExact, r.NumHint, r.NumUnresolved,
				r.OK, r.Warnings, r.StaticOnly, r.DynamicOnly)
			totalExact += r.NumExact
			totalOK += r.OK
		})
	}
	if totalExact == 0 || totalOK == 0 {
		t.Errorf("suite-wide: %d exact predictions, %d checked ok — the static analyzer resolved nothing",
			totalExact, totalOK)
	}
}
