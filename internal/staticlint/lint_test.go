package staticlint

import (
	"strings"
	"testing"

	"repro/internal/prog"
)

// buildTyped builds a program over a typed global array of qrec-like
// records: loop 1 reads f0 (offset 0) and f1 (offset 8); loop 2 writes f3
// (offset 24); f2 (offset 16, 1 byte) is never accessed.
func buildTyped(t *testing.T) *prog.Program {
	t.Helper()
	st := &prog.StructType{
		Name: "lintrec",
		Fields: []prog.PhysField{
			{Name: "f0", Offset: 0, Size: 8},
			{Name: "f1", Offset: 8, Size: 8},
			{Name: "f2", Offset: 16, Size: 1},
			{Name: "f3", Offset: 24, Size: 8},
		},
		Size:  32,
		Align: 8,
	}
	b := prog.NewBuilder("lint")
	tid := b.Type(st)
	g := b.Global("arr", 100*32, tid)
	b.Func("main", "lint.c")
	base, i, x := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.ForRange(i, 0, 100, 1, func() {
		b.Load(x, base, i, 32, 0, 8)
		b.Load(x, base, i, 32, 8, 8)
	})
	b.ForRange(i, 0, 100, 1, func() {
		b.Store(x, base, i, 32, 24, 8)
	})
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

func findingsOf(fs []Finding, kind LintKind) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

func TestLintTyped(t *testing.T) {
	p := buildTyped(t)
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	fs := Lint(a, nil)

	holes := findingsOf(fs, LintPaddingHole)
	if len(holes) != 1 || holes[0].Bytes != 7 {
		t.Errorf("padding holes = %+v, want one 7-byte hole after f2", holes)
	}
	if tp := findingsOf(fs, LintTrailingPadding); len(tp) != 0 {
		t.Errorf("unexpected trailing padding: %+v", tp)
	}

	co := findingsOf(fs, LintNeverCoAccessed)
	if len(co) != 1 {
		t.Fatalf("never-co-accessed findings = %+v, want 1", co)
	}
	if d := co[0].Detail; !strings.Contains(d, "{f0,f1}") || !strings.Contains(d, "{f3}") {
		t.Errorf("co-access groups wrong: %s", d)
	}

	hc := findingsOf(fs, LintHotColdMix)
	if len(hc) != 1 {
		t.Fatalf("hot-cold findings = %+v, want 1 (static evidence)", hc)
	}
	if d := hc[0].Detail; !strings.Contains(d, "f2") {
		t.Errorf("cold field f2 not named: %s", d)
	}
}

// TestLintTrailingPadding checks the trailing-padding path in isolation.
func TestLintTrailingPadding(t *testing.T) {
	st := &prog.StructType{
		Name:   "tail",
		Fields: []prog.PhysField{{Name: "a", Offset: 0, Size: 8}, {Name: "b", Offset: 8, Size: 5}},
		Size:   16,
		Align:  8,
	}
	b := prog.NewBuilder("tail")
	b.Type(st)
	b.Func("main", "tail.c")
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	fs := Lint(a, nil)
	tp := findingsOf(fs, LintTrailingPadding)
	if len(tp) != 1 || tp[0].Bytes != 3 {
		t.Errorf("trailing padding = %+v, want 3 bytes", tp)
	}
}

// TestLintCleanStruct checks that a dense fully-co-accessed struct lints
// clean.
func TestLintCleanStruct(t *testing.T) {
	st := &prog.StructType{
		Name:   "clean",
		Fields: []prog.PhysField{{Name: "a", Offset: 0, Size: 8}, {Name: "b", Offset: 8, Size: 8}},
		Size:   16,
		Align:  8,
	}
	b := prog.NewBuilder("clean")
	tid := b.Type(st)
	g := b.Global("arr", 100*16, tid)
	b.Func("main", "clean.c")
	base, i, x := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.ForRange(i, 0, 100, 1, func() {
		b.Load(x, base, i, 16, 0, 8)
		b.Load(x, base, i, 16, 8, 8)
	})
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	a, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	if fs := Lint(a, nil); len(fs) != 0 {
		t.Errorf("clean struct produced findings: %+v", fs)
	}
}
