package staticlint

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/vm"
)

// plan.go recovers the *execution schedule* of a function from its binary
// alone: which loops run, how many iterations each performs, and the
// exact program-order sequence of memory accesses with closed-form
// effective addresses. It only succeeds on "exact tier" code — structured
// reducible loops whose bounds are compile-time constants and whose
// streams all resolve to global bases — which is precisely the class of
// loop nests the static reuse predictor (reuse.go in this package) and
// the analytic phase synthesis (package structslim) can handle without
// simulation.
//
// The planner re-runs the affine dataflow of analyze.go and then walks
// the CFG structurally: outside loops every block must have exactly one
// successor; a loop is entered at its header, whose single conditional
// branch `br.ge iv, bound -> exit` yields the trip count
// ceil((bound−start)/step) from the converged in-state; loop bodies are
// walked the same way until the back edge. Any shape outside this
// grammar (irreducible loops, data-dependent branches, calls, heap
// allocation, unresolved addresses) makes the function ineligible, with
// the reason recorded.

// AccessTpl is one memory instruction inside a plan, with its effective
// address in closed form: EA = GlobalBase(GlobalIx) + Disp + Σ Coeff[d]·k[d]
// over the iteration vector k of the enclosing loop path (outermost
// first).
type AccessTpl struct {
	IP    uint64
	Size  uint8
	Write bool

	// GlobalIx is the base global's index; Disp the constant byte offset
	// from its base (always the displacement of iteration vector zero).
	GlobalIx int
	Disp     int64
	// Coeff[d] is the address advance per iteration of the d-th loop on
	// the access's enclosing path, outermost first.
	Coeff []int64

	// LoopKey is the innermost enclosing loop (cfg.LoopKey), 0 outside
	// loops.
	LoopKey uint64
}

// PlanItem is one step of a plan in program order: either a run of
// non-memory instructions (cost only), a memory access, or a nested loop.
type PlanItem struct {
	// Instrs/Cycles of plain instructions executed before the next access
	// or loop (cost-only item when Access and Loop are nil).
	Instrs uint64
	Cycles uint64

	Access *AccessTpl
	Loop   *LoopPlan
}

// LoopPlan is one structured counted loop.
type LoopPlan struct {
	Key   uint64 // cfg.LoopKey
	Info  *cfg.LoopInfo
	Trips int64
	Depth int // index into the iteration vector (outermost enclosing = 0)

	// Head is the per-iteration header cost (the bound check); it runs
	// Trips+1 times: once per iteration plus the final failing check.
	HeadInstrs uint64
	HeadCycles uint64

	Body []PlanItem

	exit int // block executed after the loop
}

// FnPlan is the full schedule of one function, entry to Halt.
type FnPlan struct {
	FnID     int
	FnName   string
	Eligible bool
	Reason   string

	Items []PlanItem

	// Accesses / Instrs / Cycles are the exact totals of one execution
	// (cycles excluding memory latency, which depends on the hierarchy).
	Accesses uint64
	Instrs   uint64
	Cycles   uint64
}

// planner carries the walk state for one function.
type planner struct {
	a  *Analysis
	fa *funcAnalysis

	visited map[int]bool
	path    []*LoopPlan // enclosing loop stack, outermost first
}

// PlanFunction builds the execution plan of one function. The returned
// plan is always non-nil; Eligible is false (with Reason) when the
// function falls outside the exact tier.
func PlanFunction(a *Analysis, fnID int) *FnPlan {
	f := a.Program.Funcs[fnID]
	plan := &FnPlan{FnID: fnID, FnName: f.Name}
	fa := newFuncAnalysis(a.Program, f, a.Loops.Forests[fnID])
	if !fa.solve() {
		plan.Reason = "dataflow did not converge"
		return plan
	}
	pl := &planner{a: a, fa: fa, visited: make(map[int]bool)}
	items, err := pl.walk(0, -1)
	if err != nil {
		plan.Reason = err.Error()
		return plan
	}
	plan.Items = items
	plan.Eligible = true
	plan.Accesses, plan.Instrs, plan.Cycles = tallyItems(items)
	return plan
}

// tallyItems sums one execution of an item sequence.
func tallyItems(items []PlanItem) (accesses, instrs, cycles uint64) {
	for i := range items {
		it := &items[i]
		switch {
		case it.Access != nil:
			accesses++
			instrs++
			cycles += vm.CostOf(isa.Load) // Load and Store both cost 1
		case it.Loop != nil:
			la, li, lc := tallyItems(it.Loop.Body)
			t := uint64(it.Loop.Trips)
			accesses += la * t
			instrs += (li+it.Loop.HeadInstrs)*t + it.Loop.HeadInstrs
			cycles += (lc+it.Loop.HeadCycles)*t + it.Loop.HeadCycles
		default:
			instrs += it.Instrs
			cycles += it.Cycles
		}
	}
	return
}

// walk traverses from block b until the function halts (lid < 0) or the
// back edge of loop lid is taken, returning the program-order items.
func (pl *planner) walk(b int, lid int) ([]PlanItem, error) {
	fa := pl.fa
	var items []PlanItem
	var cost PlanItem
	flush := func() {
		if cost.Instrs > 0 {
			items = append(items, cost)
			cost = PlanItem{}
		}
	}
	for {
		if hl := fa.headerLoop(b); hl >= 0 && (lid < 0 || hl != lid) {
			flush()
			lp, err := pl.planLoop(hl)
			if err != nil {
				return nil, err
			}
			items = append(items, PlanItem{Loop: lp})
			b = lp.exit
			if lid >= 0 && !fa.blockIn[lid][b] {
				return nil, fmt.Errorf("block %d: loop exit escapes the enclosing loop", b)
			}
			continue
		}
		if pl.visited[b] {
			return nil, fmt.Errorf("block %d revisited outside a recognized loop", b)
		}
		pl.visited[b] = true
		if lid >= 0 && !fa.blockIn[lid][b] {
			return nil, fmt.Errorf("block %d escapes loop body", b)
		}

		st := append([]expr(nil), fa.in[b]...)
		blk := fa.f.Blocks[b]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case isa.Load, isa.Store:
				tpl, err := pl.accessTemplate(in, st)
				if err != nil {
					return nil, err
				}
				flush()
				items = append(items, PlanItem{Access: tpl})
			case isa.Call, isa.Ret, isa.Alloc:
				return nil, fmt.Errorf("%s at %#x: not analyzable without simulation", in.Op, in.IP)
			case isa.Halt:
				if lid >= 0 {
					return nil, fmt.Errorf("halt inside loop body at %#x", in.IP)
				}
				cost.Instrs++
				cost.Cycles += vm.CostOf(in.Op)
				flush()
				return items, nil
			case isa.Jmp:
				cost.Instrs++
				cost.Cycles += vm.CostOf(in.Op)
				if lid >= 0 && in.Target == fa.forest.Loops[lid].Header {
					flush()
					return items, nil // back edge: iteration complete
				}
				b = in.Target
			case isa.Br:
				return nil, fmt.Errorf("conditional branch at %#x outside a counted-loop header", in.IP)
			default:
				cost.Instrs++
				cost.Cycles += vm.CostOf(in.Op)
			}
			fa.transfer(in, st)
			if in.Op == isa.Jmp {
				break
			}
		}
		last := &blk.Instrs[len(blk.Instrs)-1]
		if last.Op != isa.Jmp {
			// Fallthrough.
			b++
			if lid >= 0 && b == fa.forest.Loops[lid].Header {
				flush()
				return items, nil // fallthrough back edge
			}
			if b >= len(fa.f.Blocks) {
				return nil, fmt.Errorf("fallthrough past the last block")
			}
		}
	}
}

// planLoop recognizes one counted loop: a header whose only branch is
// `br.ge iv, bound -> exit` with iv a pinned induction variable and bound
// a compile-time constant.
func (pl *planner) planLoop(lid int) (*LoopPlan, error) {
	fa := pl.fa
	l := fa.forest.Loops[lid]
	if l.Irreducible {
		return nil, fmt.Errorf("irreducible loop at block %d", l.Header)
	}
	hb := fa.f.Blocks[l.Header]
	br := &hb.Instrs[len(hb.Instrs)-1]
	if br.Op != isa.Br {
		return nil, fmt.Errorf("loop header block %d does not end in a branch", l.Header)
	}
	if fa.blockIn[lid][br.Target] {
		return nil, fmt.Errorf("loop at block %d: branch target is not the loop exit", l.Header)
	}
	if l.Header+1 >= len(fa.f.Blocks) || !fa.blockIn[lid][l.Header+1] {
		return nil, fmt.Errorf("loop at block %d: fallthrough does not enter the body", l.Header)
	}

	lp := &LoopPlan{
		Key:   cfg.LoopKey(fa.f.ID, l.Header),
		Depth: len(pl.path),
		exit:  br.Target,
	}
	lp.Info = pl.a.Loops.Info(lp.Key)

	// Header instructions run once per bound check (Trips+1 times); they
	// may not touch memory or branch before the final Br.
	st := append([]expr(nil), fa.in[l.Header]...)
	for i := range hb.Instrs[:len(hb.Instrs)-1] {
		in := &hb.Instrs[i]
		switch in.Op {
		case isa.Load, isa.Store, isa.Call, isa.Ret, isa.Alloc, isa.Jmp, isa.Br, isa.Halt:
			return nil, fmt.Errorf("loop header block %d contains %s", l.Header, in.Op)
		}
		lp.HeadInstrs++
		lp.HeadCycles += vm.CostOf(in.Op)
		fa.transfer(in, st)
	}
	lp.HeadInstrs++
	lp.HeadCycles += vm.CostOf(isa.Br)

	trips, err := tripCount(fa, lid, br, st)
	if err != nil {
		return nil, err
	}
	lp.Trips = trips

	pl.path = append(pl.path, lp)
	body, err := pl.walk(l.Header+1, lid)
	pl.path = pl.path[:len(pl.path)-1]
	if err != nil {
		return nil, err
	}
	lp.Body = body
	return lp, nil
}

// tripCount derives the loop's iteration count from the converged header
// state: the exit test `br.ge iv, bound` with iv = start + step·κ (step
// > 0) and bound = stop runs the body ceil((stop−start)/step) times.
func tripCount(fa *funcAnalysis, lid int, br *isa.Instr, st []expr) (int64, error) {
	l := fa.forest.Loops[lid]
	if br.Cmp != isa.Ge {
		return 0, fmt.Errorf("loop at block %d: unsupported exit predicate %s", l.Header, br.Cmp)
	}
	val := func(r isa.Reg) expr {
		if r == isa.RZ {
			return constant(0)
		}
		return st[r]
	}
	ivE, boundE := val(br.Rs1), val(br.Rs2)
	if !boundE.isConst() {
		return 0, fmt.Errorf("loop at block %d: bound is not a compile-time constant", l.Header)
	}
	own := ivRef{Fn: fa.f.ID, Header: l.Header}
	step := ivE.coeff(own)
	if ivE.kind != exprLin || ivE.base.Kind != baseNone || len(ivE.terms) != 1 || step <= 0 {
		return 0, fmt.Errorf("loop at block %d: induction variable is not a constant-step counter", l.Header)
	}
	start, stop := ivE.c, boundE.c
	if stop <= start {
		return 0, nil
	}
	return (stop - start + step - 1) / step, nil
}

// accessTemplate resolves one Load/Store against the walker's loop path.
func (pl *planner) accessTemplate(in *isa.Instr, st []expr) (*AccessTpl, error) {
	ea := eaExpr(in, st)
	if ea.kind != exprLin {
		return nil, fmt.Errorf("access at %#x: address not statically resolved", in.IP)
	}
	if ea.base.Kind != baseGlobal {
		return nil, fmt.Errorf("access at %#x: base is not a program global", in.IP)
	}
	if sp := pl.a.StreamAt(in.IP); sp == nil || sp.Confidence != Exact {
		return nil, fmt.Errorf("access at %#x: stream is not exact tier", in.IP)
	}
	tpl := &AccessTpl{
		IP:       in.IP,
		Size:     in.Size,
		Write:    in.Op == isa.Store,
		GlobalIx: ea.base.Global,
		Disp:     ea.c,
		Coeff:    make([]int64, len(pl.path)),
	}
	if n := len(pl.path); n > 0 {
		tpl.LoopKey = pl.path[n-1].Key
	}
	for d, lp := range pl.path {
		tpl.Coeff[d] = ea.coeff(ivRef{Fn: pl.fa.f.ID, Header: headerOfKey(lp.Key)})
	}
	// Every κ term of the address must belong to an enclosing loop.
	for iv := range ea.terms {
		onPath := false
		for _, lp := range pl.path {
			if iv.Fn == pl.fa.f.ID && iv.Header == headerOfKey(lp.Key) {
				onPath = true
				break
			}
		}
		if !onPath {
			return nil, fmt.Errorf("access at %#x: address uses a loop-exit value", in.IP)
		}
	}
	return tpl, nil
}

// headerOfKey inverts cfg.LoopKey's header component.
func headerOfKey(key uint64) int { return int(key & 0xFFFF_FFFF) }

// GlobalBases computes the load addresses the VM's loader would assign to
// every program global — the same bump allocation mem.Space performs —
// so static predictions and analytic synthesis see the run's true
// addresses without instantiating a machine.
func GlobalBases(p *prog.Program) []uint64 {
	sp := mem.NewSpace()
	out := make([]uint64, len(p.Globals))
	for gi, g := range p.Globals {
		o := sp.AllocStatic(g.Name, uint64(g.Size), g.TypeID, gi)
		out[gi] = o.Base
	}
	return out
}
