package staticlint

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/stride"
)

// Confidence grades a stream prediction.
type Confidence uint8

// Confidence levels. Exact predictions are hard claims the cross-checker
// enforces against the dynamic profile; Hint predictions have a known
// stride shape but an unknown base or constant part and are only
// soft-checked; Unresolved streams make no claim.
const (
	Unresolved Confidence = iota
	Hint
	Exact
)

func (c Confidence) String() string {
	switch c {
	case Exact:
		return "exact"
	case Hint:
		return "hint"
	}
	return "unresolved"
}

// LoopStride is the predicted address advance per iteration of one
// enclosing loop — the coefficient of that loop's counter in the stream's
// effective-address expression.
type LoopStride struct {
	Loop  *cfg.LoopInfo
	Coeff int64
}

// StreamPred is the static prediction for one memory instruction — the
// static twin of a dynamic stream (paper §4.2). Stride is the GCD of all
// loop-counter coefficients of the effective address, which is exactly
// the lattice of address deltas the dynamic GCD algorithm (Eqs. 2–3)
// samples from; PredSize and Offset mirror Eqs. 5–6.
type StreamPred struct {
	IP    uint64
	Where string // file:line
	FnID  int
	Op    isa.Op

	// Loop is the innermost enclosing loop (nil outside loops); PerLoop
	// lists every enclosing loop, innermost first, with its coefficient.
	Loop    *cfg.LoopInfo
	PerLoop []LoopStride

	Confidence Confidence
	Reason     string // why the stream is demoted below Exact

	// Stride is the GCD of the absolute values of all loop-counter
	// coefficients (0 = loop-invariant address). Valid for Exact and Hint.
	Stride uint64

	// Base and Disp describe the resolved address base + Disp (+ κ terms);
	// valid only for Exact streams.
	Base baseRef
	Disp int64

	// PredSize is the structure size of the stream's base object (Eq. 5
	// twin, filled in by object aggregation); Offset is Disp mod PredSize
	// (Eq. 6 twin). OffsetResolved gates both.
	PredSize       uint64
	Offset         uint64
	OffsetResolved bool
}

// ObjectPred aggregates the Exact streams of one base data object and
// carries the object-level structure-size prediction.
type ObjectPred struct {
	Base      baseRef
	Name      string
	TypeID    int // debug-info struct type, or -1
	DebugSize int // size from debug info, 0 when untyped

	// PredSize is the GCD of the object's Exact stream strides that are at
	// least stride.MinMeaningfulStride — the static Eq. 5.
	PredSize uint64

	Streams []*StreamPred
}

// Analysis is the full static analysis of one program.
type Analysis struct {
	Program *prog.Program
	Loops   *cfg.ProgramLoops

	// Streams holds a prediction for every Load/Store of the program,
	// sorted by IP.
	Streams []*StreamPred
	// Objects holds per-base-object aggregates for Exact streams, sorted
	// by name.
	Objects []*ObjectPred

	// UnanalyzedFns lists functions whose dataflow did not converge within
	// the iteration budget; all their streams are Unresolved.
	UnanalyzedFns []int

	// Reuse is the static reuse-distance prediction, populated by
	// PredictReuse (nil until then).
	Reuse *ReusePrediction
}

// basicIV is a detected loop induction variable: within its loop, reg is
// updated by exactly one `addi reg, reg, step` that dominates every back
// edge, so its value is entry + step·κ.
type basicIV struct {
	reg  isa.Reg
	step int64
}

// maxSweeps bounds the fixpoint iteration per function. The lattice has
// small finite height, so convergence is quick; the cap is a safety net
// for pathological CFGs, after which the function is left unanalyzed.
const maxSweeps = 64

// AnalyzeProgram runs the static stride and layout analysis over a
// finalized program. It never executes the program.
func AnalyzeProgram(p *prog.Program) (*Analysis, error) {
	if !p.Finalized() {
		return nil, fmt.Errorf("program %s not finalized", p.Name)
	}
	loops, err := cfg.AnalyzeLoops(p)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Program: p, Loops: loops}
	called := calledFuncs(p)
	for _, f := range p.Funcs {
		fa := newFuncAnalysis(p, f, loops.Forests[f.ID])
		fa.fnIsCalled = called[f.ID]
		if !fa.solve() {
			a.UnanalyzedFns = append(a.UnanalyzedFns, f.ID)
		}
		a.Streams = append(a.Streams, fa.predictions(loops)...)
	}
	sort.Slice(a.Streams, func(i, j int) bool { return a.Streams[i].IP < a.Streams[j].IP })
	a.aggregateObjects()
	return a, nil
}

// funcAnalysis is the per-function dataflow state.
type funcAnalysis struct {
	p      *prog.Program
	f      *prog.Func
	g      *cfg.Graph
	forest *cfg.Forest
	idom   []int

	// loopOf[b] = innermost loop id of block b (or -1), blockIn[l][b]
	// reports membership of block b in loop l (including nested blocks).
	blockIn []map[int]bool // per loop id

	// ivsOf[l] = detected basic induction variables of loop l. Only
	// reducible loops get entries.
	ivsOf [][]basicIV

	// in[b] is the converged register state at entry of block b.
	in        [][]expr
	converged bool

	// fnIsCalled marks functions reachable through Call instructions: a
	// single static Alloc site inside one may still execute once per call,
	// so heap-base claims are demoted to hints.
	fnIsCalled bool
}

// calledFuncs returns the set of functions targeted by any Call.
func calledFuncs(p *prog.Program) map[int]bool {
	called := make(map[int]bool)
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == isa.Call {
					called[blk.Instrs[i].Fn] = true
				}
			}
		}
	}
	return called
}

func newFuncAnalysis(p *prog.Program, f *prog.Func, forest *cfg.Forest) *funcAnalysis {
	fa := &funcAnalysis{
		p:      p,
		f:      f,
		forest: forest,
	}
	fa.g = cfg.Build(f)
	fa.idom = fa.g.Dominators()
	fa.blockIn = make([]map[int]bool, len(forest.Loops))
	for li, l := range forest.Loops {
		m := make(map[int]bool, len(l.Blocks))
		for _, b := range l.Blocks {
			m[b] = true
		}
		fa.blockIn[li] = m
	}
	fa.detectIVs()
	return fa
}

// detectIVs finds the basic induction variables of each reducible loop: a
// register whose only definition inside the loop is a single
// `addi r, r, step` in a block that dominates all the loop's back edges.
func (fa *funcAnalysis) detectIVs() {
	fa.ivsOf = make([][]basicIV, len(fa.forest.Loops))
	for li, l := range fa.forest.Loops {
		if l.Irreducible {
			continue
		}
		// Back-edge sources: predecessors of the header inside the loop.
		var latches []int
		for _, p := range fa.g.Preds[l.Header] {
			if fa.blockIn[li][p] {
				latches = append(latches, p)
			}
		}
		if len(latches) == 0 {
			continue
		}
		type defInfo struct {
			count   int
			block   int
			step    int64
			selfAdd bool
		}
		defs := make(map[isa.Reg]*defInfo)
		for _, bid := range l.Blocks {
			for i := range fa.f.Blocks[bid].Instrs {
				in := &fa.f.Blocks[bid].Instrs[i]
				rd, ok := defReg(in)
				if !ok || rd == isa.RZ {
					continue
				}
				d := defs[rd]
				if d == nil {
					d = &defInfo{}
					defs[rd] = d
				}
				d.count++
				d.block = bid
				if in.Op == isa.AddI && in.Rs1 == rd {
					d.selfAdd = true
					d.step = in.Imm
				} else {
					d.selfAdd = false
				}
			}
		}
		for reg, d := range defs {
			if d.count != 1 || !d.selfAdd || d.step == 0 {
				continue
			}
			domAll := true
			for _, latch := range latches {
				if !cfg.Dominates(fa.idom, d.block, latch) {
					domAll = false
					break
				}
			}
			if domAll {
				fa.ivsOf[li] = append(fa.ivsOf[li], basicIV{reg: reg, step: d.step})
			}
		}
		sort.Slice(fa.ivsOf[li], func(i, j int) bool { return fa.ivsOf[li][i].reg < fa.ivsOf[li][j].reg })
	}
}

// defReg returns the register an instruction defines, if any.
func defReg(in *isa.Instr) (isa.Reg, bool) {
	switch in.Op {
	case isa.Nop, isa.Store, isa.Jmp, isa.Br, isa.Ret, isa.Halt:
		return 0, false
	case isa.Call:
		return isa.RetReg, true // call clobbers the return register
	}
	return in.Rd, true
}

// headerLoop returns the loop id whose header is block b, or -1.
func (fa *funcAnalysis) headerLoop(b int) int {
	lid := fa.forest.InnermostOf[b]
	if lid >= 0 && fa.forest.Loops[lid].Header == b {
		return lid
	}
	return -1
}

// allocInLoop reports whether an Alloc-site base was produced inside the
// given loop (its value then differs per iteration and must be dropped at
// the loop's header).
func (fa *funcAnalysis) allocInLoop(b baseRef, lid int) bool {
	if b.Kind != baseAlloc {
		return false
	}
	loc, ok := fa.p.Loc(b.AllocIP)
	if !ok || loc.Fn != fa.f.ID {
		return false
	}
	return fa.blockIn[lid][loc.Block]
}

// entryState is the abstract register file at function entry: the zero
// register is 0, everything else (arguments included) is unknown.
func entryState() []expr {
	st := make([]expr, isa.NumRegs)
	for i := range st {
		st[i] = top()
	}
	st[isa.RZ] = constant(0)
	return st
}

// solve iterates the dataflow to a fixpoint. Returns false when the sweep
// budget ran out (the function is then reported unanalyzed).
func (fa *funcAnalysis) solve() bool {
	n := len(fa.f.Blocks)
	fa.in = make([][]expr, n)
	for b := range fa.in {
		fa.in[b] = make([]expr, isa.NumRegs)
		for r := range fa.in[b] {
			fa.in[b][r] = bottom()
		}
	}
	fa.in[0] = entryState()

	out := make([][]expr, n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for b := 0; b < n; b++ {
			st := fa.blockIn2(b, out)
			if !statesEqual(fa.in[b], st) {
				fa.in[b] = st
				changed = true
			}
			out[b] = fa.transferBlock(b, st)
		}
		if !changed {
			fa.converged = true
			return true
		}
	}
	return false
}

// blockIn2 computes the in-state of block b from predecessor out-states,
// applying the loop-header rules: pinned induction variables and the
// demotions that keep loop-counter symbols sound.
func (fa *funcAnalysis) blockIn2(b int, out [][]expr) []expr {
	if b == 0 && len(fa.g.Preds[0]) == 0 {
		return entryState()
	}
	lid := fa.headerLoop(b)
	reducibleHdr := lid >= 0 && !fa.forest.Loops[lid].Irreducible

	join2 := func(preds []int) []expr {
		st := make([]expr, isa.NumRegs)
		for r := range st {
			st[r] = bottom()
		}
		for _, p := range preds {
			if out[p] == nil {
				continue
			}
			for r := range st {
				st[r] = join(st[r], out[p][r])
			}
		}
		return st
	}

	if !reducibleHdr {
		st := join2(fa.g.Preds[b])
		if b == 0 {
			// The entry block may also be a loop header (or irreducible);
			// fold in the function-entry state.
			ent := entryState()
			for r := range st {
				st[r] = join(st[r], ent[r])
			}
		}
		return st
	}

	// Reducible loop header: split predecessors into entry edges and back
	// edges.
	var entryPreds, backPreds []int
	for _, p := range fa.g.Preds[b] {
		if fa.blockIn[lid][p] {
			backPreds = append(backPreds, p)
		} else {
			entryPreds = append(entryPreds, p)
		}
	}
	entrySt := join2(entryPreds)
	if b == 0 {
		ent := entryState()
		for r := range entrySt {
			entrySt[r] = join(entrySt[r], ent[r])
		}
	}
	st := join2(append(append([]int(nil), entryPreds...), backPreds...))

	iv := ivRef{Fn: fa.f.ID, Header: b}
	isIV := make(map[isa.Reg]int64)
	for _, v := range fa.ivsOf[lid] {
		isIV[v.reg] = v.step
	}
	for r := range st {
		reg := isa.Reg(r)
		if step, ok := isIV[reg]; ok {
			// Pin the induction variable: entry value + step·κ. An unknown
			// entry value still leaves the stride shape known (a hint).
			e := entrySt[r]
			switch e.kind {
			case exprBottom:
				st[r] = bottom()
			case exprTop:
				st[r] = expr{kind: exprLinU}.addTerm(iv, step)
			default:
				if e.hasTerm(iv) || fa.allocInLoop(e.base, lid) {
					// A stale counter symbol of this very loop, or a base
					// allocated inside it: no sound linear form exists.
					st[r] = top()
				} else {
					st[r] = e.addTerm(iv, step)
				}
			}
			continue
		}
		// Non-IV registers: a value mentioning this loop's own counter at
		// its header is stale (it was computed in a previous iteration or
		// a previous execution of the loop), and a base allocated inside
		// the loop differs per iteration.
		if st[r].known() && (st[r].hasTerm(iv) || fa.allocInLoop(st[r].base, lid)) {
			st[r] = top()
		}
	}
	return st
}

func statesEqual(a, b []expr) bool {
	for i := range a {
		if !a[i].equal(b[i]) {
			return false
		}
	}
	return true
}

// transferBlock applies the block's instructions to a copy of the state.
func (fa *funcAnalysis) transferBlock(b int, in []expr) []expr {
	st := append([]expr(nil), in...)
	for i := range fa.f.Blocks[b].Instrs {
		fa.transfer(&fa.f.Blocks[b].Instrs[i], st)
	}
	return st
}

// transfer applies one instruction to the state in place.
func (fa *funcAnalysis) transfer(in *isa.Instr, st []expr) {
	set := func(r isa.Reg, v expr) {
		if r != isa.RZ {
			st[r] = v
		}
	}
	val := func(r isa.Reg) expr {
		if r == isa.RZ {
			return constant(0)
		}
		return st[r]
	}
	switch in.Op {
	case isa.MovI:
		set(in.Rd, constant(in.Imm))
	case isa.Mov:
		set(in.Rd, val(in.Rs1))
	case isa.Add:
		set(in.Rd, add(val(in.Rs1), val(in.Rs2)))
	case isa.AddI:
		set(in.Rd, add(val(in.Rs1), constant(in.Imm)))
	case isa.Sub:
		set(in.Rd, sub(val(in.Rs1), val(in.Rs2)))
	case isa.Mul:
		a, b := val(in.Rs1), val(in.Rs2)
		switch {
		case a.isConst():
			set(in.Rd, mulConst(b, a.c))
		case b.isConst():
			set(in.Rd, mulConst(a, b.c))
		default:
			set(in.Rd, top())
		}
	case isa.MulI:
		set(in.Rd, mulConst(val(in.Rs1), in.Imm))
	case isa.Shl:
		if b := val(in.Rs2); b.isConst() {
			set(in.Rd, mulConst(val(in.Rs1), 1<<(uint64(b.c)&63)))
		} else {
			set(in.Rd, top())
		}
	case isa.Div, isa.Rem, isa.And, isa.Or, isa.Xor, isa.Shr:
		a, b := val(in.Rs1), val(in.Rs2)
		if a.isConst() && b.isConst() {
			set(in.Rd, constant(foldALU(in.Op, a.c, b.c)))
		} else {
			set(in.Rd, top())
		}
	case isa.GAddr:
		set(in.Rd, baseExpr(baseRef{Kind: baseGlobal, Global: int(in.Imm)}))
	case isa.Alloc:
		set(in.Rd, baseExpr(baseRef{Kind: baseAlloc, AllocIP: in.IP}))
	case isa.Load, isa.CvtFI, isa.CvtIF, isa.FAdd, isa.FSub, isa.FMul, isa.FDiv, isa.FSqrt:
		set(in.Rd, top())
	case isa.Call:
		set(isa.RetReg, top())
	}
}

// foldALU evaluates the constant-foldable ALU ops with the interpreter's
// semantics (division by zero yields 0).
func foldALU(op isa.Op, a, b int64) int64 {
	switch op {
	case isa.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.Rem:
		if b == 0 {
			return 0
		}
		return a % b
	case isa.And:
		return a & b
	case isa.Or:
		return a | b
	case isa.Xor:
		return a ^ b
	case isa.Shr:
		return a >> (uint64(b) & 63)
	}
	return 0
}

// eaExpr computes the abstract effective address of a memory instruction
// given the register state just before it.
func eaExpr(in *isa.Instr, st []expr) expr {
	val := func(r isa.Reg) expr {
		if r == isa.RZ {
			return constant(0)
		}
		return st[r]
	}
	ea := add(val(in.Rs1), mulConst(val(in.Rs2), in.EffScale()))
	return add(ea, constant(in.Disp))
}

// predictions walks every block with the converged state and emits one
// StreamPred per Load/Store.
func (fa *funcAnalysis) predictions(loops *cfg.ProgramLoops) []*StreamPred {
	var preds []*StreamPred
	for b := range fa.f.Blocks {
		var st []expr
		if fa.converged {
			st = append([]expr(nil), fa.in[b]...)
		}
		for i := range fa.f.Blocks[b].Instrs {
			in := &fa.f.Blocks[b].Instrs[i]
			if in.Op.IsMemAccess() {
				preds = append(preds, fa.predictStream(in, b, st, loops))
			}
			if st != nil {
				fa.transfer(in, st)
			}
		}
	}
	return preds
}

// predictStream builds the prediction for one memory instruction.
func (fa *funcAnalysis) predictStream(in *isa.Instr, block int, st []expr, loops *cfg.ProgramLoops) *StreamPred {
	sp := &StreamPred{
		IP:   in.IP,
		FnID: fa.f.ID,
		Op:   in.Op,
	}
	if file, line := fa.p.LineOf(in.IP); file != "" {
		sp.Where = fmt.Sprintf("%s:%d", file, line)
	}
	sp.Loop = loops.LoopOfIP(in.IP)

	// Enclosing loops, innermost first, and the irreducibility demotion.
	irreducible := false
	var enclosing []int
	for lid := fa.forest.InnermostOf[block]; lid >= 0; lid = fa.forest.Loops[lid].Parent {
		enclosing = append(enclosing, lid)
		if fa.forest.Loops[lid].Irreducible {
			irreducible = true
		}
	}

	if st == nil {
		sp.Reason = "dataflow did not converge"
		return sp
	}
	ea := eaExpr(in, st)
	if irreducible {
		sp.Reason = "inside an irreducible loop"
		return sp
	}
	if !ea.known() {
		sp.Reason = "address not statically linear"
		return sp
	}
	// A base allocated inside an enclosing loop is a fresh object every
	// iteration; the dynamic stream for this IP merges samples across
	// those objects (same allocation-site identity), so no per-object
	// static stride claim is comparable.
	for _, lid := range enclosing {
		if fa.allocInLoop(ea.base, lid) {
			sp.Reason = "base allocated inside an enclosing loop"
			return sp
		}
	}

	// Per-enclosing-loop coefficients.
	encSet := make(map[ivRef]bool, len(enclosing))
	for _, lid := range enclosing {
		iv := ivRef{Fn: fa.f.ID, Header: fa.forest.Loops[lid].Header}
		encSet[iv] = true
		sp.PerLoop = append(sp.PerLoop, LoopStride{
			Loop:  loops.Info(cfg.LoopKey(fa.f.ID, fa.forest.Loops[lid].Header)),
			Coeff: ea.coeff(iv),
		})
	}

	// Stride: GCD of every counter coefficient — the lattice the dynamic
	// deltas live in.
	var g uint64
	outsideTerm := false
	for iv, c := range ea.terms {
		g = gcd64(g, abs64(c))
		if !encSet[iv] {
			outsideTerm = true
		}
	}
	sp.Stride = g

	switch {
	case ea.kind == exprLinU:
		sp.Confidence = Hint
		sp.Reason = "base or constant part unknown"
	case ea.base.Kind == baseAlloc && fa.fnIsCalled:
		// Each call of this function re-executes the Alloc, so one dynamic
		// stream spans several objects; only the stride shape is claimed.
		sp.Confidence = Hint
		sp.Reason = "allocation in a called function"
	case outsideTerm:
		// A counter of a non-enclosing loop (a loop-exit value) behaves as
		// an opaque constant here; the stride shape is only a hint.
		sp.Confidence = Hint
		sp.Reason = "address uses a loop-exit value"
	default:
		sp.Confidence = Exact
		sp.Base = ea.base
		sp.Disp = ea.c
	}
	return sp
}

// aggregateObjects groups Exact streams by base object and computes the
// static Eq. 5/6: object size = GCD of meaningful stream strides, stream
// offset = displacement mod size.
func (a *Analysis) aggregateObjects() {
	byBase := make(map[baseRef]*ObjectPred)
	for _, sp := range a.Streams {
		if sp.Confidence != Exact {
			continue
		}
		op := byBase[sp.Base]
		if op == nil {
			op = &ObjectPred{Base: sp.Base, TypeID: -1}
			op.Name, op.TypeID, op.DebugSize = a.describeBase(sp.Base)
			byBase[sp.Base] = op
		}
		op.Streams = append(op.Streams, sp)
	}
	for _, op := range byBase {
		var votes []uint64
		for _, sp := range op.Streams {
			if sp.Stride >= stride.MinMeaningfulStride {
				votes = append(votes, sp.Stride)
			}
		}
		op.PredSize = stride.StructSize(votes)
		if op.PredSize == 0 {
			continue
		}
		for _, sp := range op.Streams {
			if sp.Stride%op.PredSize != 0 {
				continue // irregular relative to the recovered size
			}
			sp.PredSize = op.PredSize
			sp.Offset = umod(sp.Disp, op.PredSize)
			sp.OffsetResolved = true
		}
	}
	a.Objects = make([]*ObjectPred, 0, len(byBase))
	for _, op := range byBase {
		sort.Slice(op.Streams, func(i, j int) bool { return op.Streams[i].IP < op.Streams[j].IP })
		a.Objects = append(a.Objects, op)
	}
	sort.Slice(a.Objects, func(i, j int) bool {
		if a.Objects[i].Name != a.Objects[j].Name {
			return a.Objects[i].Name < a.Objects[j].Name
		}
		return a.Objects[i].Base.AllocIP < a.Objects[j].Base.AllocIP
	})
}

// describeBase resolves a base reference to a display name and debug type.
func (a *Analysis) describeBase(b baseRef) (name string, typeID, debugSize int) {
	typeID = -1
	switch b.Kind {
	case baseGlobal:
		if b.Global >= 0 && b.Global < len(a.Program.Globals) {
			g := &a.Program.Globals[b.Global]
			name = g.Name
			typeID = g.TypeID
		}
	case baseAlloc:
		if file, line := a.Program.LineOf(b.AllocIP); file != "" {
			name = fmt.Sprintf("heap@%s:%d", file, line)
		} else {
			name = fmt.Sprintf("heap@%#x", b.AllocIP)
		}
		if tid, ok := a.Program.AllocSiteType[b.AllocIP]; ok {
			typeID = tid
		}
	}
	if typeID >= 0 && typeID < len(a.Program.Types) {
		debugSize = a.Program.Types[typeID].Size
	} else {
		typeID = -1
	}
	return name, typeID, debugSize
}

// BaseObject is the exported view of a stream's resolved base, for
// other analyses (internal/sharing cross-tags its own base resolution
// against this one) without exposing the internal baseRef lattice.
type BaseObject struct {
	IsGlobal bool
	Global   int // valid when IsGlobal
	IsHeap   bool
	AllocIP  uint64 // valid when IsHeap
}

// BaseOf returns the stream's resolved base object. ok is false when the
// base never resolved (pointer chases, opaque arguments).
func (sp *StreamPred) BaseOf() (BaseObject, bool) {
	switch sp.Base.Kind {
	case baseGlobal:
		return BaseObject{IsGlobal: true, Global: sp.Base.Global}, true
	case baseAlloc:
		return BaseObject{IsHeap: true, AllocIP: sp.Base.AllocIP}, true
	}
	return BaseObject{}, false
}

// OffsetResidue reduces an Exact stream's address template to the
// congruence class of element offsets it can touch inside a structure of
// the given size: every effective address of the stream satisfies
// (EA - base) mod structSize ≡ off (mod m), where m divides structSize.
// m == 0 means the stream touches exactly one offset (loop-invariant
// address, or all loop coefficients are multiples of the size). ok is
// false for non-Exact streams, whose base and displacement are not
// trustworthy. The legality pass uses this to map each attributed access
// onto a per-field footprint.
func (sp *StreamPred) OffsetResidue(structSize uint64) (off, m uint64, ok bool) {
	if sp.Confidence != Exact || structSize == 0 {
		return 0, 0, false
	}
	if _, resolved := sp.BaseOf(); !resolved {
		return 0, 0, false
	}
	// Stride is the GCD of the loop coefficients; offsets therefore lie
	// in Disp + Stride·Z, which reduces to a class mod gcd(Stride, size).
	m = gcd64(sp.Stride, structSize)
	if m == structSize {
		m = 0 // every reachable offset lands on the same element offset
	}
	if m == 0 {
		return umod(sp.Disp, structSize), 0, true
	}
	return umod(sp.Disp, m), m, true
}

// StreamAt returns the prediction for the memory instruction at ip, or
// nil.
func (a *Analysis) StreamAt(ip uint64) *StreamPred {
	i := sort.Search(len(a.Streams), func(i int) bool { return a.Streams[i].IP >= ip })
	if i < len(a.Streams) && a.Streams[i].IP == ip {
		return a.Streams[i]
	}
	return nil
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}

// umod is the Euclidean remainder of a signed displacement by an unsigned
// size.
func umod(d int64, size uint64) uint64 {
	m := d % int64(size)
	if m < 0 {
		m += int64(size)
	}
	return uint64(m)
}
