// Package cache simulates a multi-level set-associative cache hierarchy.
//
// It supplies the two hardware signals StructSlim consumes: the load
// latency of each memory access (what PEBS-LL reports per sample) and
// per-level hit/miss counters (what event counters report, used by the
// paper's Table 4). The default configuration models the paper's
// evaluation machine, an Intel Xeon E5-4650L: 32 KB 8-way private L1D,
// 256 KB 8-way private L2, 20 MB 16-way shared L3, 64-byte lines.
//
// Coherence between the private per-core levels uses a MESI-style
// write-invalidate protocol backed by a line directory, so parallel
// workloads that share arrays (e.g. CLOMP's zones) pay realistic
// invalidation traffic. Private levels are kept inclusive of the levels
// above them, and the shared last level is inclusive of everything, with
// back-invalidation on eviction.
//
// A per-PC stride prefetcher (modeled on hardware stream prefetchers) can
// be enabled; it recognizes constant-stride streams and fills the L2
// ahead of the demand stream, which narrows — but does not close — the
// gap between unit-stride and large-stride loops, as on real hardware.
package cache

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name    string
	Size    int  // bytes, power of two
	Assoc   int  // ways
	Latency int  // cycles for a hit at this level
	Shared  bool // one instance for all cores vs. one per core
}

// Config describes the whole hierarchy.
type Config struct {
	LineSize   int // bytes, power of two
	Levels     []LevelConfig
	MemLatency int // cycles for a miss in every level

	// Prefetch enables the per-PC stride prefetcher.
	Prefetch bool
	// PrefetchDegree is how many strides ahead the prefetcher runs.
	PrefetchDegree int

	// TLB optionally models a per-core data TLB (Entries == 0 disables
	// it, the default, matching the paper's cache-only accounting).
	TLB TLBConfig

	// DisableHotLine turns off the per-core L1 hot-line shadow, a
	// direct-mapped pointer cache that answers the common L1-hit case in
	// one comparison before the full hierarchy walk. The shadow is a pure
	// optimization — entries are verified against the live line and all
	// invalidation paths flow through the lines themselves — so results
	// are identical either way; differential tests and baseline
	// benchmarks disable it.
	DisableHotLine bool
}

// DefaultConfig models the paper's Xeon E5-4650L evaluation machine.
func DefaultConfig() Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1", Size: 32 << 10, Assoc: 8, Latency: 4, Shared: false},
			{Name: "L2", Size: 256 << 10, Assoc: 8, Latency: 12, Shared: false},
			{Name: "L3", Size: 20 << 20, Assoc: 16, Latency: 40, Shared: true},
		},
		MemLatency:     200,
		Prefetch:       true,
		PrefetchDegree: 2,
	}
}

// Validate checks the configuration for the power-of-two and ordering
// invariants the implementation relies on.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("line size %d not a power of two", c.LineSize)
	}
	if len(c.Levels) == 0 {
		return fmt.Errorf("no cache levels")
	}
	for i, l := range c.Levels {
		if l.Size <= 0 || l.Assoc <= 0 {
			return fmt.Errorf("level %s: bad size/assoc", l.Name)
		}
		sets := l.Size / (c.LineSize * l.Assoc)
		if sets <= 0 {
			return fmt.Errorf("level %s: set count %d", l.Name, sets)
		}
		if i > 0 && l.Size < c.Levels[i-1].Size {
			return fmt.Errorf("level %s smaller than previous level", l.Name)
		}
		if i > 0 && !l.Shared && c.Levels[i-1].Shared {
			return fmt.Errorf("level %s: private level below a shared level is not supported", l.Name)
		}
	}
	if c.MemLatency <= 0 {
		return fmt.Errorf("memory latency must be positive")
	}
	return nil
}

// Result reports the outcome of one access.
type Result struct {
	Latency uint32
	// Level that served the access: 1-based cache level, or
	// len(Levels)+1 for main memory.
	Level uint8
}

// MemLevel returns the Result.Level value that denotes main memory for
// this configuration.
func (c Config) MemLevel() uint8 { return uint8(len(c.Levels)) + 1 }

type line struct {
	tag    uint64 // line address (addr >> lineShift)
	valid  bool
	dirty  bool
	shared bool // MESI: some other core may hold this line too
	lru    uint64
}

type level struct {
	cfg      LevelConfig
	sets     [][]line
	nsets    uint64
	setMask  uint64 // nsets-1 when nsets is a power of two, else 0
	lruClock uint64
	// decay, when nonzero, ages lines out of the level: a hit on a line
	// whose lru stamp trails lruClock by more than decay is treated as a
	// miss (the line is dropped). Statistical fast-forward advances
	// lruClock by the accesses it skips (Hierarchy.Age), so decay models
	// the evictions those unsimulated accesses would have caused; the
	// threshold is the level's capacity in lines, the point at which a
	// global-LRU replacement would have cycled the whole level. Zero
	// (exact mode) leaves lookup behavior untouched.
	decay uint64

	Accesses uint64
	Hits     uint64
	Misses   uint64
}

func newLevel(cfg LevelConfig, lineSize int) *level {
	nsets := cfg.Size / (lineSize * cfg.Assoc)
	l := &level{cfg: cfg, nsets: uint64(nsets)}
	if nsets&(nsets-1) == 0 {
		l.setMask = uint64(nsets - 1)
	}
	l.sets = make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range l.sets {
		l.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return l
}

// setOf maps a line tag to its set index; masks when the set count is a
// power of two (the common, fast case), modulo otherwise (sliced LLCs).
func (l *level) setOf(tag uint64) uint64 {
	if l.setMask != 0 || l.nsets == 1 {
		return tag & l.setMask
	}
	return tag % l.nsets
}

// lookup returns the way holding the tag, or nil.
func (l *level) lookup(tag uint64) *line {
	set := l.sets[l.setOf(tag)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if l.decay != 0 && l.lruClock-set[i].lru > l.decay {
				// Aged out across a statistical fast-forward: the skipped
				// accesses would have evicted this line. Dropping it keeps
				// fill's invariant that invalid ways carry lru 0.
				set[i].valid = false
				set[i].lru = 0
				return nil
			}
			l.lruClock++
			set[i].lru = l.lruClock
			return &set[i]
		}
	}
	return nil
}

// aged reports whether a line found by peek has decayed (read-only form
// of lookup's aging check, for paths that must not mutate the level).
func (l *level) aged(ln *line) bool {
	return l.decay != 0 && l.lruClock-ln.lru > l.decay
}

// peek is lookup without touching LRU state (used by coherence probes).
func (l *level) peek(tag uint64) *line {
	set := l.sets[l.setOf(tag)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// fill inserts tag, returning the victim's tag, whether a valid line was
// evicted, and the slot now holding the line (stable for the level's
// lifetime: sets alias one backing array that is never reallocated).
//
// Victim choice is "first invalid way, else least-recently used". Both
// cases are one min-scan over lru because invalid ways always carry
// lru 0 (zero value at start, reset by invalidate) and valid ways never
// do (lruClock is pre-incremented), so the earliest zero — the first
// invalid way — is also the strict minimum.
func (l *level) fill(tag uint64, dirty, shared bool) (victimTag uint64, evicted bool, inserted *line) {
	set := l.sets[l.setOf(tag)]
	victim := &set[0]
	for i := 1; i < len(set); i++ {
		if w := &set[i]; w.lru < victim.lru {
			victim = w
		}
	}
	victimTag, evicted = victim.tag, victim.valid
	l.lruClock++
	*victim = line{tag: tag, valid: true, dirty: dirty, shared: shared, lru: l.lruClock}
	return victimTag, evicted, victim
}

// invalidate drops the line if present, returning whether it was dirty.
// Clearing lru keeps fill's invariant that invalid ways sort first.
func (l *level) invalidate(tag uint64) (wasDirty, wasPresent bool) {
	if w := l.peek(tag); w != nil {
		w.valid = false
		w.lru = 0
		return w.dirty, true
	}
	return false, false
}
