package cache

// dirTable is the coherence directory: line tag → bitmask of cores whose
// private hierarchy may hold the line. It replaces the previous
// map[uint64]uint32 with an open-addressed, power-of-two-sized table
// (linear probing, backward-shift deletion), which keeps the per-access
// probe a handful of array reads instead of a runtime map lookup. The
// semantics are exact — every set bit the map would hold, this table
// holds — so simulation results are unchanged.
//
// A slot is occupied iff its mask is nonzero; clearing the last bit of a
// mask deletes the slot. Simulated addresses start well above zero, so
// tag 0 never collides with the zero value of an empty slot's tag.
type dirTable struct {
	tags  []uint64
	masks []uint32
	used  int
}

const dirMinSize = 1 << 10

func newDirTable() *dirTable {
	return &dirTable{tags: make([]uint64, dirMinSize), masks: make([]uint32, dirMinSize)}
}

// slot is Fibonacci hashing into the power-of-two table.
func (d *dirTable) slot(tag uint64) uint64 {
	return (tag * 0x9E3779B97F4A7C15) >> 11 & uint64(len(d.tags)-1)
}

// get returns the mask for tag (0 when absent).
func (d *dirTable) get(tag uint64) uint32 {
	mask := uint64(len(d.tags) - 1)
	for i := d.slot(tag); ; i = (i + 1) & mask {
		if d.masks[i] == 0 {
			return 0
		}
		if d.tags[i] == tag {
			return d.masks[i]
		}
	}
}

// set stores a nonzero mask for tag, growing the table at 3/4 load.
func (d *dirTable) set(tag uint64, m uint32) {
	if m == 0 {
		d.delete(tag)
		return
	}
	if d.used*4 >= len(d.tags)*3 {
		d.grow()
	}
	mask := uint64(len(d.tags) - 1)
	for i := d.slot(tag); ; i = (i + 1) & mask {
		if d.masks[i] == 0 {
			d.tags[i] = tag
			d.masks[i] = m
			d.used++
			return
		}
		if d.tags[i] == tag {
			d.masks[i] = m
			return
		}
	}
}

// or sets bits in tag's mask, inserting the entry if absent.
func (d *dirTable) or(tag uint64, bits uint32) {
	if bits == 0 {
		return
	}
	if d.used*4 >= len(d.tags)*3 {
		d.grow()
	}
	mask := uint64(len(d.tags) - 1)
	for i := d.slot(tag); ; i = (i + 1) & mask {
		if d.masks[i] == 0 {
			d.tags[i] = tag
			d.masks[i] = bits
			d.used++
			return
		}
		if d.tags[i] == tag {
			d.masks[i] |= bits
			return
		}
	}
}

// clearBit removes one core's bit, deleting the entry when it empties.
func (d *dirTable) clearBit(tag uint64, bit uint32) {
	mask := uint64(len(d.tags) - 1)
	for i := d.slot(tag); ; i = (i + 1) & mask {
		if d.masks[i] == 0 {
			return
		}
		if d.tags[i] == tag {
			if m := d.masks[i] &^ bit; m != 0 {
				d.masks[i] = m
			} else {
				d.deleteAt(i)
			}
			return
		}
	}
}

// delete removes tag's entry if present.
func (d *dirTable) delete(tag uint64) {
	mask := uint64(len(d.tags) - 1)
	for i := d.slot(tag); ; i = (i + 1) & mask {
		if d.masks[i] == 0 {
			return
		}
		if d.tags[i] == tag {
			d.deleteAt(i)
			return
		}
	}
}

// deleteAt empties slot i, backward-shifting the probe chain behind it so
// linear probing never needs tombstones.
func (d *dirTable) deleteAt(i uint64) {
	mask := uint64(len(d.tags) - 1)
	d.masks[i] = 0
	d.used--
	for j := (i + 1) & mask; d.masks[j] != 0; j = (j + 1) & mask {
		home := d.slot(d.tags[j])
		// Shift j back into i only if i lies within [home, j) cyclically —
		// i.e. the entry's probe chain passes through the emptied slot.
		if (j-home)&mask >= (j-i)&mask {
			d.tags[i] = d.tags[j]
			d.masks[i] = d.masks[j]
			d.masks[j] = 0
			i = j
		}
	}
}

func (d *dirTable) grow() {
	oldTags, oldMasks := d.tags, d.masks
	d.tags = make([]uint64, len(oldTags)*2)
	d.masks = make([]uint32, len(oldMasks)*2)
	d.used = 0
	for i, m := range oldMasks {
		if m != 0 {
			d.set(oldTags[i], m)
		}
	}
}

// len returns the number of live entries (for tests and invariants).
func (d *dirTable) len() int { return d.used }
