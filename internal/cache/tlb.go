package cache

// A data TLB model. Structure splitting changes TLB behaviour too: a
// 64-byte record touched at one field per iteration walks 16× more pages
// per useful byte than the split 8-byte array, so on TLB-constrained
// working sets part of the split's win is fewer page-table walks. The
// TLB is optional (Config.TLB.Entries == 0 disables it) so the headline
// experiments match the paper's cache-centric accounting; the
// BenchmarkAblationTLB target quantifies its contribution.

// TLBConfig describes a per-core data TLB.
type TLBConfig struct {
	// Entries is the total capacity; 0 disables TLB modeling.
	Entries int
	// Assoc is the associativity (default: fully associative up to 8,
	// else 8-way).
	Assoc int
	// PageBits is log2 of the page size (default 12 → 4 KiB).
	PageBits uint
	// MissLatency is the page-walk cost in cycles (default 30).
	MissLatency int
}

func (c TLBConfig) withDefaults() TLBConfig {
	if c.Entries == 0 {
		return c
	}
	if c.Assoc == 0 {
		if c.Entries <= 8 {
			c.Assoc = c.Entries
		} else {
			c.Assoc = 8
		}
	}
	if c.PageBits == 0 {
		c.PageBits = 12
	}
	if c.MissLatency == 0 {
		c.MissLatency = 30
	}
	return c
}

// DefaultTLBConfig models a first-level DTLB: 64 entries, 4-way, 4 KiB
// pages, 30-cycle walks.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{Entries: 64, Assoc: 4, PageBits: 12, MissLatency: 30}
}

type tlbEntry struct {
	page  uint64
	valid bool
	lru   uint64
}

// tlb is one core's set-associative DTLB.
type tlb struct {
	cfg   TLBConfig
	sets  [][]tlbEntry
	nsets uint64
	clock uint64

	Accesses uint64
	Misses   uint64
}

func newTLB(cfg TLBConfig) *tlb {
	nsets := cfg.Entries / cfg.Assoc
	if nsets < 1 {
		nsets = 1
	}
	t := &tlb{cfg: cfg, nsets: uint64(nsets)}
	backing := make([]tlbEntry, nsets*cfg.Assoc)
	t.sets = make([][]tlbEntry, nsets)
	for i := range t.sets {
		t.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return t
}

// access translates one address, returning the added latency (0 on hit).
func (t *tlb) access(addr uint64) int {
	t.Accesses++
	page := addr >> t.cfg.PageBits
	set := t.sets[page%t.nsets]
	t.clock++
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lru = t.clock
			return 0
		}
	}
	t.Misses++
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	*victim = tlbEntry{page: page, valid: true, lru: t.clock}
	return t.cfg.MissLatency
}

// TLBStats aggregates DTLB counters across cores.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRatio returns Misses/Accesses (0 when idle).
func (s TLBStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}
