package cache

import (
	"testing"
)

// tinyConfig is a small hierarchy for deterministic eviction tests:
// L1 = 4 sets × 2 ways × 64 B = 512 B, L2 = 2 KB, no prefetch.
func tinyConfig() Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1", Size: 512, Assoc: 2, Latency: 4, Shared: false},
			{Name: "L2", Size: 2048, Assoc: 4, Latency: 12, Shared: false},
			{Name: "L3", Size: 8192, Assoc: 8, Latency: 40, Shared: true},
		},
		MemLatency: 200,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.LineSize = 48
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	bad = DefaultConfig()
	bad.Levels = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty hierarchy accepted")
	}
	// Non-power-of-two set counts are legal (sliced LLCs); the default
	// config's 20 MB L3 has 20480 sets.
	sliced := DefaultConfig()
	if err := sliced.Validate(); err != nil {
		t.Errorf("sliced LLC config rejected: %v", err)
	}
	bad = DefaultConfig()
	bad.MemLatency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero memory latency accepted")
	}
	bad = DefaultConfig()
	bad.Levels[0], bad.Levels[2] = bad.Levels[2], bad.Levels[0]
	if err := bad.Validate(); err == nil {
		t.Error("shrinking hierarchy accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	h, err := NewHierarchy(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r1 := h.Access(0, 0x400000, 0x1000, 8, false)
	if r1.Level != 4 || r1.Latency != 200 {
		t.Errorf("cold access: level %d latency %d, want memory(4)/200", r1.Level, r1.Latency)
	}
	r2 := h.Access(0, 0x400000, 0x1008, 8, false) // same line
	if r2.Level != 1 || r2.Latency != 4 {
		t.Errorf("warm access: level %d latency %d, want L1(1)/4", r2.Level, r2.Latency)
	}
	st := h.Stats()
	if st.Level("L1").Misses != 1 || st.Level("L1").Hits != 1 {
		t.Errorf("L1 stats = %+v", st.Level("L1"))
	}
	if st.DemandAccesses != 2 {
		t.Errorf("demand accesses = %d", st.DemandAccesses)
	}
}

func TestLRUWithinSet(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig(), 1)
	// L1: 4 sets, 2 ways. Three lines mapping to set 0: line addresses
	// with identical low set bits. set = (addr>>6) & 3.
	a := uint64(0 << 8) // set 0
	b := uint64(1 << 8)
	c := uint64(2 << 8)
	h.Access(0, 1, a, 8, false) // miss, fill
	h.Access(0, 1, b, 8, false) // miss, fill — set 0 now {a,b}
	h.Access(0, 1, a, 8, false) // hit: a is MRU
	h.Access(0, 1, c, 8, false) // miss: evicts b (LRU)
	if r := h.Access(0, 1, a, 8, false); r.Level != 1 {
		t.Errorf("a evicted despite being MRU (level %d)", r.Level)
	}
	if r := h.Access(0, 1, b, 8, false); r.Level == 1 {
		t.Error("b still in L1 despite LRU eviction")
	}
}

func TestL2ServesL1Evictions(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig(), 1)
	// Touch 3 lines in one L1 set: the evicted one must hit in L2.
	a, b, c := uint64(0<<8), uint64(1<<8), uint64(2<<8)
	h.Access(0, 1, a, 8, false)
	h.Access(0, 1, b, 8, false)
	h.Access(0, 1, c, 8, false) // evicts a or b from L1
	rb := h.Access(0, 1, b, 8, false)
	if rb.Level > 2 {
		t.Errorf("b should be served by L1 or L2, got level %d", rb.Level)
	}
}

func TestSharedL3AcrossCores(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig(), 2)
	h.Access(0, 1, 0x1000, 8, false) // core 0 faults the line in
	r := h.Access(1, 1, 0x1000, 8, false)
	if r.Level != 3 {
		t.Errorf("core 1 access level = %d, want L3(3)", r.Level)
	}
}

func TestWriteInvalidatesOtherCores(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig(), 2)
	h.Access(0, 1, 0x1000, 8, false) // core 0 caches it
	h.Access(1, 1, 0x1000, 8, false) // core 1 caches it (shared)
	h.Access(1, 2, 0x1000, 8, true)  // core 1 writes: invalidate core 0
	r := h.Access(0, 1, 0x1000, 8, false)
	if r.Level <= 2 {
		t.Errorf("core 0 still has the line privately after remote write (level %d)", r.Level)
	}
	if h.Stats().Invalidations == 0 {
		t.Error("no invalidations recorded")
	}
}

func TestWriteAfterReadDowngrade(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig(), 2)
	h.Access(0, 1, 0x1000, 8, true)  // core 0 writes (modified, exclusive)
	h.Access(1, 1, 0x1000, 8, false) // core 1 reads: downgrade core 0 to shared
	h.Access(0, 2, 0x1000, 8, true)  // core 0 writes again: must probe core 1
	r := h.Access(1, 1, 0x1000, 8, false)
	if r.Level <= 2 {
		t.Errorf("core 1 kept a stale private copy (level %d)", r.Level)
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Levels = cfg.Levels[:2] // L1 + L2 only, so L2 evictions are easy to force
	cfg.Levels[1] = LevelConfig{Name: "L2", Size: 512, Assoc: 2, Latency: 12, Shared: true}
	h, _ := NewHierarchy(cfg, 1)
	// L2 has 4 sets × 2 ways. Fill set 0 of L2 with 3 lines: the L2
	// victim (a — L1 hits do not refresh L2 recency) must also leave L1
	// because the hierarchy is inclusive.
	a, b, c := uint64(0<<8), uint64(1<<8), uint64(2<<8)
	h.Access(0, 1, a, 8, false)
	h.Access(0, 1, b, 8, false)
	h.Access(0, 1, c, 8, false) // evicts a from L2 → back-invalidate L1
	if r := h.Access(0, 1, a, 8, false); r.Level != cfg.MemLevel() {
		t.Errorf("a served from level %d after L2 eviction, want memory", r.Level)
	}
}

func TestPrefetcherStrideStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = true
	h, _ := NewHierarchy(cfg, 1)
	pc := uint64(0x400100)
	// A unit-line-stride stream: after training, later lines should be
	// prefetched (hit in L2 rather than memory).
	var memMisses int
	for i := 0; i < 64; i++ {
		addr := uint64(0x100000 + i*64)
		r := h.Access(0, pc, addr, 8, false)
		if r.Level == cfg.MemLevel() {
			memMisses++
		}
	}
	if h.PrefetchIssued == 0 {
		t.Fatal("prefetcher never fired on a constant-stride stream")
	}
	if memMisses > 10 {
		t.Errorf("memory misses = %d of 64; prefetcher ineffective", memMisses)
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	cfg := tinyConfig() // Prefetch false
	h, _ := NewHierarchy(cfg, 1)
	for i := 0; i < 64; i++ {
		h.Access(0, 0x400100, uint64(0x100000+i*64), 8, false)
	}
	if h.PrefetchIssued != 0 {
		t.Error("prefetches issued with prefetcher disabled")
	}
}

func TestPrefetcherIgnoresIrregular(t *testing.T) {
	cfg := DefaultConfig()
	h, _ := NewHierarchy(cfg, 1)
	pc := uint64(0x400100)
	addrs := []uint64{0x1000, 0x9000, 0x2000, 0xf000, 0x3000, 0x11000, 0x500, 0x7700}
	for _, a := range addrs {
		h.Access(0, pc, a, 8, false)
	}
	if h.PrefetchIssued != 0 {
		t.Errorf("prefetched %d lines on an irregular stream", h.PrefetchIssued)
	}
}

func TestStatsLevelLookup(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig(), 1)
	h.Access(0, 1, 0x1000, 8, false)
	st := h.Stats()
	if st.Level("L2").Name != "L2" {
		t.Error("Level lookup broken")
	}
	if st.Level("nope").Accesses != 0 {
		t.Error("unknown level should be zero-valued")
	}
	l1 := st.Level("L1")
	if l1.MissRatio() != 1.0 {
		t.Errorf("MissRatio = %v, want 1", l1.MissRatio())
	}
	if (LevelStats{}).MissRatio() != 0 {
		t.Error("idle level MissRatio should be 0")
	}
}

func TestNewHierarchyErrors(t *testing.T) {
	if _, err := NewHierarchy(tinyConfig(), 0); err == nil {
		t.Error("zero cores accepted")
	}
	bad := tinyConfig()
	bad.LineSize = 0
	if _, err := NewHierarchy(bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMemLevel(t *testing.T) {
	if got := tinyConfig().MemLevel(); got != 4 {
		t.Errorf("MemLevel = %d, want 4", got)
	}
}

// TestSplitVersusAoSMissRatio is the microcosm of the whole paper: scanning
// one 8-byte field of a 64-byte struct misses on every element, while
// scanning a dense 8-byte array misses once per 8 elements.
func TestSplitVersusAoSMissRatio(t *testing.T) {
	run := func(stride int) uint64 {
		cfg := DefaultConfig()
		cfg.Prefetch = false
		h, _ := NewHierarchy(cfg, 1)
		const n = 4096
		for i := 0; i < n; i++ {
			h.Access(0, 0x400100, uint64(0x100000+i*stride), 8, false)
		}
		return h.Stats().Level("L1").Misses
	}
	aos := run(64) // one field per line
	soa := run(8)  // dense field array
	if aos < soa*6 {
		t.Errorf("AoS misses (%d) should be ~8× SoA misses (%d)", aos, soa)
	}
}
