package cache

// parallel.go partitions the hierarchy for the vm's parallel engine.
//
// One ParallelSession per hierarchy hands out a CoreCache per core. While
// thread quanta execute concurrently, each CoreCache mirrors
// Hierarchy.Access against a split view of the state:
//
//   - Private levels, the per-core TLB, prefetcher, and hot/deep shadows
//     belong to one core and mutate freely.
//   - Shared levels and the directory are read-only (peek/get); every
//     mutation they would need — LRU touches, fills, write-invalidate
//     probes, read downgrades, directory updates — is queued as a
//     deferred op.
//   - Global counters accumulate in per-core deltas.
//
// At the quantum barrier, Merge applies every core's queued ops in fixed
// core order (and, within a core, program order) using the hierarchy's
// own sequential machinery, then folds the counter deltas in. The result
// is a deterministic lax-coherence semantics: within a quantum each core
// sees shared state as of the quantum start, and cross-core effects
// become visible at the barrier. Determinism holds at any host
// parallelism because nothing depends on goroutine scheduling — only on
// the fixed merge order.
//
// One deliberate divergence from the sequential protocol: two cores that
// fill the same line in the same quantum each see the directory without
// the other and would both hold the line exclusive. Merge detects this
// when it applies the directory fills (the second core's fill finds the
// first core's bit already set) and conservatively marks every private
// copy of the line shared — silently, with no downgrade event or counter,
// since no sequential-order downgrade happened — so later writes probe
// the directory as the protocol requires.

// deferred-op kinds, applied at the barrier in queue order.
const (
	opSharedTouch  uint8 = iota // LRU-touch a shared-level hit (dirty: it was a write)
	opSharedFill                // demand fill into a shared level
	opPrefetchFill              // prefetch fill into shared levels and below
	opWriteProbe                // write-invalidate other cores' private copies
	opDowngrade                 // demote other cores' exclusive copies to shared
	opDirOr                     // record private-fill occupancy in the directory
	opDirClear                  // drop occupancy after a deepest-private eviction
)

// mergeOp is one deferred shared-state mutation.
type mergeOp struct {
	kind   uint8
	li     uint8 // level index for touch/fill ops
	dirty  bool
	shared bool
	tag    uint64
	addr   uint64 // accessing address for coherence events (0 for prefetch)
}

// lvlDelta accumulates one shared level's demand counters for one core.
type lvlDelta struct {
	accesses, hits, misses uint64
}

// CoreCache is one core's handle on the hierarchy during a concurrent
// quantum. It must only be used by one goroutine at a time, and Merge
// must run between quanta.
type CoreCache struct {
	h    *Hierarchy
	core int

	ops []mergeOp

	// Deltas of the hierarchy's global counters.
	demandAccesses uint64
	invalidations  uint64
	writeBacks     uint64
	prefetchIssued uint64
	lvl            []lvlDelta // indexed by level; used for shared levels

	// sharedAge accumulates statistical fast-forward aging of the shared
	// levels (Age); the clock advance lands at the barrier so shared
	// state stays read-only during the quantum.
	sharedAge []uint64

	// issued memoizes line tags whose prefetch fill is already queued this
	// quantum (epoch). Deferred shared fills are invisible to
	// prefetchPresent until the barrier, so without the memo a confident
	// stride would re-issue the same lines all quantum long — and
	// duplicate fills of one tag into one set would corrupt the level.
	issued map[uint64]uint64
	epoch  uint64

	// l1Line mirrors Hierarchy.l1Line for the hot-line shadow update.
	l1Line *line
}

// ParallelSession owns the per-core handles for one hierarchy.
type ParallelSession struct {
	h     *Hierarchy
	cores []*CoreCache
}

// NewParallelSession prepares per-core handles for concurrent quanta.
func (h *Hierarchy) NewParallelSession() *ParallelSession {
	s := &ParallelSession{h: h}
	for c := 0; c < h.numCores; c++ {
		s.cores = append(s.cores, &CoreCache{
			h: h, core: c, epoch: 1,
			lvl:       make([]lvlDelta, len(h.levels)),
			sharedAge: make([]uint64, len(h.levels)),
			issued:    make(map[uint64]uint64),
		})
	}
	return s
}

// Core returns the handle for one core.
func (s *ParallelSession) Core(c int) *CoreCache { return s.cores[c] }

func (cc *CoreCache) push(op mergeOp) { cc.ops = append(cc.ops, op) }

// Access mirrors Hierarchy.Access for one core during a concurrent
// quantum. pc and addr as there; accesses spanning two lines are charged
// to the first line.
func (cc *CoreCache) Access(pc, addr uint64, size int, write bool) Result {
	h := cc.h
	tag := addr >> h.lineShift
	if h.hot != nil {
		e := &h.hot[cc.core][tag&hotMask]
		if e.tag == tag && e.ln != nil && e.ln.valid && e.ln.tag == tag && (!write || !e.ln.shared) &&
			!h.inst(0, cc.core).aged(e.ln) {
			return cc.hotHit(addr, pc, e.ln, write)
		}
	}
	cc.demandAccesses++
	cc.l1Line = nil

	res := cc.accessLine(tag, addr, write)
	if h.hot != nil && cc.l1Line != nil {
		h.hot[cc.core][tag&hotMask] = hotEntry{tag: tag, ln: cc.l1Line}
	}
	if h.tlbs != nil {
		res.Latency += uint32(h.tlbs[cc.core].access(addr))
	}
	if h.prefetchers != nil {
		cc.trainPrefetcher(pc, addr)
	}
	return res
}

// hotHit mirrors Hierarchy.hotHit. The shadow only matches lines in the
// core's own L1, and only takes writes on non-shared lines, so every
// mutation here is core-private.
func (cc *CoreCache) hotHit(addr, pc uint64, ln *line, write bool) Result {
	h := cc.h
	cc.demandAccesses++
	l1 := h.inst(0, cc.core)
	l1.Accesses++
	l1.Hits++
	l1.lruClock++
	ln.lru = l1.lruClock
	if write {
		ln.dirty = true
		ln.shared = false
	}
	res := Result{Latency: h.l1Lat, Level: 1}
	if h.tlbs != nil {
		res.Latency += uint32(h.tlbs[cc.core].access(addr))
	}
	if h.prefetchers != nil {
		cc.trainPrefetcher(pc, addr)
	}
	return res
}

// accessLine mirrors Hierarchy.accessLine, deferring every shared-state
// mutation. Queue order tracks the sequential mutation order: probe,
// fills (deepest first), then the directory note.
func (cc *CoreCache) accessLine(tag, addr uint64, write bool) Result {
	h := cc.h
	hitLevel := -1
	var hitLine *line
	for li := range h.levels {
		if h.cfg.Levels[li].Shared {
			d := &cc.lvl[li]
			d.accesses++
			// An aged line counts as a miss but is not dropped here (shared
			// state is read-only during the quantum); the queued fill's
			// barrier-time lookup retires it.
			lvl := h.levels[li][0]
			if w := lvl.peek(tag); w != nil && !lvl.aged(w) {
				hitLevel = li
				hitLine = w
				d.hits++
				cc.push(mergeOp{kind: opSharedTouch, li: uint8(li), tag: tag, dirty: write})
				break
			}
			d.misses++
		} else {
			inst := h.inst(li, cc.core)
			inst.Accesses++
			if w := inst.lookup(tag); w != nil {
				hitLevel = li
				hitLine = w
				inst.Hits++
				break
			}
			inst.Misses++
		}
	}

	latency := 0
	servedBy := len(h.levels) + 1 // memory
	if hitLevel >= 0 {
		latency = h.cfg.Levels[hitLevel].Latency
		servedBy = hitLevel + 1
	} else {
		latency = h.cfg.MemLatency
	}

	if write && h.coherent {
		if hitLine != nil && hitLevel < len(h.levels) && !h.cfg.Levels[hitLevel].Shared && !hitLine.shared {
			// Exclusive in our own private hierarchy: silent upgrade.
		} else {
			cc.push(mergeOp{kind: opWriteProbe, tag: tag, addr: addr})
		}
	}

	fillTo := hitLevel
	if fillTo < 0 {
		fillTo = len(h.levels)
	}
	sharedByOthers := false
	if h.coherent {
		sharedByOthers = h.heldByOthers(cc.core, tag)
		if sharedByOthers && !write && fillTo > 0 {
			cc.push(mergeOp{kind: opDowngrade, tag: tag, addr: addr})
		}
	}
	for li := fillTo - 1; li >= 0; li-- {
		if h.cfg.Levels[li].Shared {
			cc.push(mergeOp{kind: opSharedFill, li: uint8(li), tag: tag, addr: addr, dirty: write, shared: sharedByOthers})
		} else {
			ln := cc.fillPrivate(li, tag, write, sharedByOthers)
			if li == 0 {
				cc.l1Line = ln
			}
		}
	}
	if hitLevel == 0 {
		cc.l1Line = hitLine
	}
	// A hit line may still need its dirty bit set on writes; for a shared
	// level the touch op queued above carries the write.
	if hitLine != nil && write && !h.cfg.Levels[hitLevel].Shared {
		hitLine.dirty = true
		hitLine.shared = false
	}
	if h.coherent && hitLevel != 0 {
		cc.push(mergeOp{kind: opDirOr, tag: tag})
	}

	return Result{Latency: uint32(latency), Level: uint8(servedBy)}
}

// fillPrivate mirrors the private branch of Hierarchy.fillLevel: the
// eviction fallout stays within the core's own levels, except the
// directory update, which is deferred.
func (cc *CoreCache) fillPrivate(li int, tag uint64, dirty, shared bool) *line {
	h := cc.h
	inst := h.inst(li, cc.core)
	victimTag, evicted, inserted := inst.fill(tag, dirty, shared)
	if !evicted || victimTag == tag {
		return inserted
	}
	for lj := li - 1; lj >= 0; lj-- {
		if dirtyWB, present := h.inst(lj, cc.core).invalidate(victimTag); present {
			cc.invalidations++
			if dirtyWB {
				cc.writeBacks++
			}
		}
	}
	if h.coherent && li == h.lastPriv {
		cc.push(mergeOp{kind: opDirClear, tag: victimTag})
	}
	return inserted
}

// Age mirrors Hierarchy.Age during a concurrent quantum: the core-owned
// private levels age immediately, while the shared levels' clock advance
// accumulates as a delta applied at the barrier, keeping shared state
// read-only during the quantum. The traffic-share estimates read counters
// that are frozen until Merge, so the result is schedule-independent.
func (cc *CoreCache) Age(skipped uint64) {
	h := cc.h
	l1 := h.inst(0, cc.core)
	for li := range h.levels {
		inst := h.inst(li, cc.core)
		est := skipped
		if li > 0 {
			base := l1.Accesses
			if h.cfg.Levels[li].Shared {
				base = h.demandAccesses
			}
			if base == 0 {
				continue
			}
			est = skipped * inst.Accesses / base
		}
		if h.cfg.Levels[li].Shared {
			cc.sharedAge[li] += est
		} else {
			inst.lruClock += est
		}
	}
}

// trainPrefetcher mirrors Hierarchy.trainPrefetcher on the core's own
// predictor table.
func (cc *CoreCache) trainPrefetcher(pc, addr uint64) {
	h := cc.h
	t := h.prefetchers[cc.core]
	e := &t.entries[(pc>>2)%strideTableSize]
	if e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return
	}
	if stride == e.stride {
		if e.conf < strideConfMin {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return
	}
	if e.conf < strideConfMin {
		return
	}
	for d := 1; d <= h.cfg.PrefetchDegree; d++ {
		next := uint64(int64(addr) + stride*int64(d))
		tag := next >> h.lineShift
		if tag == addr>>h.lineShift {
			continue
		}
		if cc.prefetchPresent(tag) {
			continue
		}
		cc.prefetchIssued++
		cc.prefetchFill(tag)
	}
}

// prefetchPresent mirrors Hierarchy.prefetchPresent, additionally
// treating lines with a fill already queued this quantum as present.
func (cc *CoreCache) prefetchPresent(tag uint64) bool {
	h := cc.h
	if cc.issued[tag] == cc.epoch {
		return true
	}
	if h.deep != nil {
		e := &h.deep[cc.core][tag&hotMask]
		if e.tag == tag && e.ln != nil && e.ln.valid && e.ln.tag == tag {
			return true
		}
		ln := h.inst(len(h.levels)-1, cc.core).peek(tag)
		if ln == nil {
			return false
		}
		h.deep[cc.core][tag&hotMask] = hotEntry{tag: tag, ln: ln}
		return true
	}
	for li := range h.levels {
		if h.inst(li, cc.core).peek(tag) != nil {
			return true
		}
	}
	return false
}

// prefetchFill mirrors Hierarchy.prefetchFill: private target levels fill
// immediately, shared ones at the barrier.
func (cc *CoreCache) prefetchFill(tag uint64) {
	h := cc.h
	start := 1
	if len(h.levels) == 1 {
		start = 0
	}
	shared := h.coherent && h.heldByOthers(cc.core, tag)
	for li := len(h.levels) - 1; li >= start; li-- {
		if h.cfg.Levels[li].Shared {
			cc.push(mergeOp{kind: opPrefetchFill, li: uint8(li), tag: tag, shared: shared})
			continue
		}
		ln := cc.fillPrivate(li, tag, false, shared)
		if h.deep != nil && li == len(h.levels)-1 {
			h.deep[cc.core][tag&hotMask] = hotEntry{tag: tag, ln: ln}
		}
	}
	cc.issued[tag] = cc.epoch
	if h.coherent && h.lastPriv >= start {
		cc.push(mergeOp{kind: opDirOr, tag: tag})
	}
}

// Merge applies every core's deferred ops in fixed core order and folds
// the counter deltas in. Must run with no quantum in flight.
func (s *ParallelSession) Merge() {
	h := s.h
	for _, cc := range s.cores {
		for i := range cc.ops {
			op := &cc.ops[i]
			switch op.kind {
			case opSharedTouch:
				if w := h.levels[op.li][0].lookup(op.tag); w != nil && op.dirty {
					w.dirty = true
					w.shared = false
				}
			case opSharedFill:
				h.curAddr = op.addr
				if w := h.levels[op.li][0].lookup(op.tag); w != nil {
					// Another core's earlier op (or our own, after an
					// intra-quantum re-miss) already filled the line: merge
					// the flags instead of inserting a duplicate.
					if op.dirty {
						w.dirty = true
					}
					if op.shared {
						w.shared = true
					}
				} else {
					h.fillLevel(int(op.li), cc.core, op.tag, op.dirty, op.shared)
				}
			case opPrefetchFill:
				h.curAddr = 0
				if w := h.levels[op.li][0].peek(op.tag); w != nil {
					if op.shared {
						w.shared = true
					}
				} else {
					h.fillLevel(int(op.li), cc.core, op.tag, false, op.shared)
				}
			case opWriteProbe:
				h.curAddr = op.addr
				h.invalidateOthers(cc.core, op.tag)
			case opDowngrade:
				h.curAddr = op.addr
				h.downgradeOthers(cc.core, op.tag)
			case opDirOr:
				if mask := h.directory.get(op.tag); mask&^(1<<uint(cc.core)) != 0 {
					s.markShared(op.tag, mask|1<<uint(cc.core))
				}
				h.noteDirectoryFill(cc.core, op.tag)
			case opDirClear:
				h.clearDirectoryBit(cc.core, op.tag)
			}
		}
		cc.ops = cc.ops[:0]

		h.demandAccesses += cc.demandAccesses
		h.invalidations += cc.invalidations
		h.writeBacks += cc.writeBacks
		h.PrefetchIssued += cc.prefetchIssued
		cc.demandAccesses, cc.invalidations, cc.writeBacks, cc.prefetchIssued = 0, 0, 0, 0
		for li, a := range cc.sharedAge {
			if a != 0 {
				h.levels[li][0].lruClock += a
				cc.sharedAge[li] = 0
			}
		}
		for li := range cc.lvl {
			d := &cc.lvl[li]
			if d.accesses|d.hits|d.misses != 0 {
				inst := h.levels[li][0]
				inst.Accesses += d.accesses
				inst.Hits += d.hits
				inst.Misses += d.misses
				*d = lvlDelta{}
			}
		}
		cc.epoch++
	}
	h.curAddr = 0
}

// markShared marks every private copy of the line shared on the cores in
// mask: the line was co-filled by multiple cores in one quantum, so no
// core may keep an exclusive copy (see the package comment).
func (s *ParallelSession) markShared(tag uint64, mask uint32) {
	h := s.h
	for c := 0; c < h.numCores; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		for li := range h.levels {
			if h.cfg.Levels[li].Shared {
				continue
			}
			if w := h.inst(li, c).peek(tag); w != nil {
				w.shared = true
			}
		}
	}
}
