package cache

// Differential tests of the L1 hot-line shadow (and the inclusion-based
// prefetchPresent shortcut gated with it): two hierarchies fed the exact
// same access stream, one with DisableHotLine set, must return the same
// Result for every access and end with identical counters and coherence
// event streams. The streams mix strided scans (shadow-friendly), random
// accesses (eviction-heavy), and cross-core sharing with writes (the
// invalidation paths the shadow must never short-circuit).

import (
	"math/rand"
	"reflect"
	"testing"
)

type hlCohRecorder struct {
	events []CoherenceEvent
}

func (r *hlCohRecorder) OnCoherence(ev *CoherenceEvent) { r.events = append(r.events, *ev) }

type access struct {
	core  int
	pc    uint64
	addr  uint64
	size  int
	write bool
}

// mixedStream generates a reproducible access stream over a footprint
// small enough to force both shadow hits and evictions, with shared hot
// lines that both cores write.
func mixedStream(rng *rand.Rand, n, cores int) []access {
	accs := make([]access, 0, n)
	for i := 0; i < n; i++ {
		core := rng.Intn(cores)
		var a access
		switch rng.Intn(4) {
		case 0: // strided scan chunk: the shadow's best case
			base := uint64(0x1000_0000 + rng.Intn(4)*1<<20)
			off := uint64(i%512) * 56
			a = access{core, 0x400 + uint64(rng.Intn(8))*4, base + off, 8, rng.Intn(4) == 0}
		case 1: // random over a span larger than L1+L2: eviction-heavy
			a = access{core, 0x600, 0x2000_0000 + uint64(rng.Intn(1<<22)), 8, rng.Intn(3) == 0}
		case 2: // small shared hot set, frequent writes: coherence traffic
			a = access{core, 0x800, 0x3000_0000 + uint64(rng.Intn(16))*8, 8, rng.Intn(2) == 0}
		default: // revisit of a tiny private window: repeated L1 hits
			a = access{core, 0xa00 + uint64(core)*4, 0x4000_0000 + uint64(core)<<16 + uint64(rng.Intn(64))*8, 4, rng.Intn(5) == 0}
		}
		accs = append(accs, a)
	}
	return accs
}

func diffHierarchies(t *testing.T, cfg Config, cores int, accs []access) {
	t.Helper()
	fastCfg, refCfg := cfg, cfg
	refCfg.DisableHotLine = true
	fast, err := NewHierarchy(fastCfg, cores)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewHierarchy(refCfg, cores)
	if err != nil {
		t.Fatal(err)
	}
	fRec, rRec := &hlCohRecorder{}, &hlCohRecorder{}
	fast.SetCoherenceObserver(fRec)
	ref.SetCoherenceObserver(rRec)
	for i, a := range accs {
		fr := fast.Access(a.core, a.pc, a.addr, a.size, a.write)
		rr := ref.Access(a.core, a.pc, a.addr, a.size, a.write)
		if fr != rr {
			t.Fatalf("access %d (%+v): result %+v (hotline) vs %+v (reference)", i, a, fr, rr)
		}
	}
	if fs, rs := fast.Stats(), ref.Stats(); !reflect.DeepEqual(fs, rs) {
		t.Errorf("stats differ\nhotline:   %+v\nreference: %+v", fs, rs)
	}
	if !reflect.DeepEqual(fRec.events, rRec.events) {
		t.Errorf("coherence event streams differ: %d events (hotline) vs %d (reference)",
			len(fRec.events), len(rRec.events))
	}
}

func TestHotLineDifferential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cores int
		mut   func(*Config)
	}{
		{"1core-default", 1, nil},
		{"2core-default", 2, nil},
		{"4core-default", 4, nil},
		{"2core-noprefetch", 2, func(c *Config) { c.Prefetch = false }},
		{"2core-tlb", 2, func(c *Config) { c.TLB = DefaultTLBConfig() }},
		{"1core-l1only", 1, func(c *Config) {
			c.Levels = c.Levels[:1]
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			rng := rand.New(rand.NewSource(int64(len(tc.name)) * 7919))
			accs := mixedStream(rng, 60_000, tc.cores)
			diffHierarchies(t, cfg, tc.cores, accs)
		})
	}
}

// TestHotLineStaleEntrySafety drives the specific interleaving the shadow
// must survive: core 0 caches a line in its shadow, core 1 writes the
// line (invalidating core 0's copy through the directory), then core 0
// accesses it again — the shadow entry is stale and must fail its
// verification compare, producing the same miss the reference sees.
func TestHotLineStaleEntrySafety(t *testing.T) {
	cfg := DefaultConfig()
	seq := []access{
		{0, 0x400, 0x5000_0000, 8, false}, // core 0 reads: line in L1 + shadow
		{0, 0x400, 0x5000_0000, 8, false}, // shadow hit
		{1, 0x404, 0x5000_0000, 8, true},  // core 1 writes: invalidates core 0
		{0, 0x400, 0x5000_0000, 8, false}, // stale shadow: must miss and re-fetch
		{0, 0x400, 0x5000_0000, 8, true},  // write on a now-shared line: full path probe
		{1, 0x404, 0x5000_0000, 8, false}, // and back
	}
	diffHierarchies(t, cfg, 2, seq)
}
