package cache

import "testing"

func tlbHierarchy(t *testing.T, entries int) *Hierarchy {
	t.Helper()
	cfg := tinyConfig()
	cfg.TLB = TLBConfig{Entries: entries}
	h, err := NewHierarchy(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTLBDisabledByDefault(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig(), 1)
	h.Access(0, 1, 0x1000, 8, false)
	if st := h.Stats(); st.TLB.Accesses != 0 {
		t.Errorf("TLB active without configuration: %+v", st.TLB)
	}
}

func TestTLBHitAndMiss(t *testing.T) {
	h := tlbHierarchy(t, 64)
	// First touch of a page: walk penalty on top of the memory latency.
	r1 := h.Access(0, 1, 0x10000, 8, false)
	if r1.Latency != 200+30 {
		t.Errorf("cold access latency = %d, want 230 (mem + walk)", r1.Latency)
	}
	// Same page, different line: cache miss but TLB hit.
	r2 := h.Access(0, 1, 0x10100, 8, false)
	if r2.Latency != 200 {
		t.Errorf("same-page access latency = %d, want 200", r2.Latency)
	}
	st := h.Stats()
	if st.TLB.Accesses != 2 || st.TLB.Misses != 1 {
		t.Errorf("TLB stats = %+v", st.TLB)
	}
	if st.TLB.MissRatio() != 0.5 {
		t.Errorf("miss ratio = %v", st.TLB.MissRatio())
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	h := tlbHierarchy(t, 8) // fully associative, 8 entries
	// Touch 9 distinct pages, then re-touch the first: it must have been
	// evicted (LRU).
	for p := 0; p < 9; p++ {
		h.Access(0, 1, uint64(p)<<12, 8, false)
	}
	before := h.Stats().TLB.Misses
	h.Access(0, 1, 0, 8, false)
	if h.Stats().TLB.Misses != before+1 {
		t.Error("first page survived capacity eviction")
	}
}

func TestTLBPerCore(t *testing.T) {
	cfg := tinyConfig()
	cfg.TLB = TLBConfig{Entries: 64}
	h, err := NewHierarchy(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 1, 0x10000, 8, false) // core 0 walks the page
	r := h.Access(1, 1, 0x10040, 8, false)
	// Core 1 has its own TLB: the page walk repeats even though the
	// line may be shared.
	if st := h.Stats(); st.TLB.Misses != 2 {
		t.Errorf("TLB misses = %d, want 2 (per-core TLBs)", st.TLB.Misses)
	}
	_ = r
}

// TestTLBSplitBenefit: scanning one 8-byte field of 64-byte records
// touches 8× the pages per useful element compared to the split dense
// array — the TLB-level version of the paper's cache argument.
func TestTLBSplitBenefit(t *testing.T) {
	run := func(stride int) uint64 {
		cfg := tinyConfig()
		cfg.TLB = TLBConfig{Entries: 16}
		h, _ := NewHierarchy(cfg, 1)
		const n = 1 << 14
		for i := 0; i < n; i++ {
			h.Access(0, 1, uint64(i*stride), 8, false)
		}
		return h.Stats().TLB.Misses
	}
	aos := run(64)
	soa := run(8)
	if aos < soa*7 {
		t.Errorf("AoS TLB misses (%d) should be ~8× SoA (%d)", aos, soa)
	}
}

func TestTLBConfigDefaults(t *testing.T) {
	c := TLBConfig{Entries: 64}.withDefaults()
	if c.Assoc != 8 || c.PageBits != 12 || c.MissLatency != 30 {
		t.Errorf("defaults = %+v", c)
	}
	small := TLBConfig{Entries: 4}.withDefaults()
	if small.Assoc != 4 {
		t.Errorf("small TLB assoc = %d, want fully associative", small.Assoc)
	}
	if (TLBConfig{}).withDefaults().Entries != 0 {
		t.Error("zero config should stay disabled")
	}
	if DefaultTLBConfig().Entries != 64 {
		t.Error("default TLB config wrong")
	}
	if (TLBStats{}).MissRatio() != 0 {
		t.Error("idle TLB ratio should be 0")
	}
}
