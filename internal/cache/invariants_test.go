package cache

import (
	"math/rand"
	"testing"
)

// checkInclusion asserts the inclusive-hierarchy invariant: every valid
// line in a private level is present in every level below it (same core
// for private levels, the shared instance for shared ones).
func checkInclusion(t *testing.T, h *Hierarchy) {
	t.Helper()
	for li := 0; li < len(h.levels)-1; li++ {
		for core := 0; core < h.numCores; core++ {
			upper := h.inst(li, core)
			for _, set := range upper.sets {
				for _, ln := range set {
					if !ln.valid {
						continue
					}
					for lj := li + 1; lj < len(h.levels); lj++ {
						lower := h.inst(lj, core)
						if lower.peek(ln.tag) == nil {
							t.Fatalf("inclusion violated: line %#x in %s (core %d) missing from %s",
								ln.tag, h.cfg.Levels[li].Name, core, h.cfg.Levels[lj].Name)
						}
					}
				}
			}
		}
	}
}

// checkDirectory asserts that every valid line in a core's private
// hierarchy has its directory bit set (the converse may transiently not
// hold, which is safe: spurious probes, never missed ones). Single-core
// hierarchies carry no directory at all.
func checkDirectory(t *testing.T, h *Hierarchy) {
	t.Helper()
	lp := h.lastPrivate()
	if lp < 0 {
		return
	}
	if !h.coherent {
		if n := h.directory.len(); n != 0 {
			t.Fatalf("single-core hierarchy grew a %d-entry directory", n)
		}
		return
	}
	for core := 0; core < h.numCores; core++ {
		for li := 0; li <= lp; li++ {
			inst := h.inst(li, core)
			for _, set := range inst.sets {
				for _, ln := range set {
					if !ln.valid {
						continue
					}
					if h.directory.get(ln.tag)&(1<<uint(core)) == 0 {
						t.Fatalf("directory lost core %d's line %#x (level %s)",
							core, ln.tag, h.cfg.Levels[li].Name)
					}
				}
			}
		}
	}
}

// cohRecorder tallies coherence events by kind and per line, and checks
// per-event sanity (victim differs from initiator on probe events).
type cohRecorder struct {
	t       *testing.T
	byKind  [3]uint64
	perLine map[uint64]uint64 // back-invalidations per line tag
}

func newCohRecorder(t *testing.T) *cohRecorder {
	return &cohRecorder{t: t, perLine: make(map[uint64]uint64)}
}

func (c *cohRecorder) OnCoherence(ev *CoherenceEvent) {
	c.byKind[ev.Kind]++
	switch ev.Kind {
	case CoherenceBackInvalidate:
		c.perLine[ev.Tag]++
		if ev.Addr != 0 {
			c.t.Errorf("back-invalidation of line %#x carries cause address %#x", ev.Tag, ev.Addr)
		}
	case CoherenceWriteInvalidate, CoherenceDowngrade:
		if ev.Victim == ev.Core {
			c.t.Errorf("%s event with victim == initiator (core %d, line %#x)", ev.Kind, ev.Core, ev.Tag)
		}
	}
	if ev.Kind == CoherenceDowngrade && ev.Dirty {
		c.t.Errorf("downgrade of line %#x flagged dirty", ev.Tag)
	}
}

// checkCoherenceCounts asserts the per-event counters agree with the
// observer's tallies and with the historical per-level counter.
func checkCoherenceCounts(t *testing.T, st Stats, rec *cohRecorder) {
	t.Helper()
	if st.WriteInvalidations != rec.byKind[CoherenceWriteInvalidate] {
		t.Fatalf("write-invalidations: stats %d, observer %d",
			st.WriteInvalidations, rec.byKind[CoherenceWriteInvalidate])
	}
	if st.BackInvalidations != rec.byKind[CoherenceBackInvalidate] {
		t.Fatalf("back-invalidations: stats %d, observer %d",
			st.BackInvalidations, rec.byKind[CoherenceBackInvalidate])
	}
	if st.Downgrades != rec.byKind[CoherenceDowngrade] {
		t.Fatalf("downgrades: stats %d, observer %d", st.Downgrades, rec.byKind[CoherenceDowngrade])
	}
	var perLineSum uint64
	for _, n := range rec.perLine {
		perLineSum += n
	}
	if perLineSum != st.BackInvalidations {
		t.Fatalf("per-line back-invalidation sum %d != total %d", perLineSum, st.BackInvalidations)
	}
	// Every protocol event invalidated at least one level of the victim,
	// so the per-level counter bounds the per-event ones from above.
	if st.Invalidations < st.WriteInvalidations+st.BackInvalidations {
		t.Fatalf("per-level invalidations %d < per-event write %d + back %d",
			st.Invalidations, st.WriteInvalidations, st.BackInvalidations)
	}
}

func TestHierarchyInvariantsUnderRandomAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var totalBackInv, totalWriteInv uint64
	for trial := 0; trial < 20; trial++ {
		cfg := tinyConfig()
		cfg.Prefetch = trial%2 == 1
		cfg.PrefetchDegree = 2
		cores := 1 + trial%3
		h, err := NewHierarchy(cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		rec := newCohRecorder(t)
		h.SetCoherenceObserver(rec)
		for i := 0; i < 3000; i++ {
			core := rng.Intn(cores)
			// A mix of hot lines (conflict pressure) and a wide range.
			var addr uint64
			if rng.Intn(2) == 0 {
				addr = uint64(rng.Intn(64)) * 64
			} else {
				addr = uint64(rng.Intn(1 << 20))
			}
			h.Access(core, uint64(0x400000+rng.Intn(32)*4), addr, 8, rng.Intn(3) == 0)
		}
		checkInclusion(t, h)
		checkDirectory(t, h)
		// Counter sanity: hits + misses == accesses at every level.
		st := h.Stats()
		for _, ls := range st.Levels {
			if ls.Hits+ls.Misses != ls.Accesses {
				t.Fatalf("%s: hits %d + misses %d != accesses %d",
					ls.Name, ls.Hits, ls.Misses, ls.Accesses)
			}
		}
		if st.Levels[0].Accesses != st.DemandAccesses {
			t.Fatalf("L1 accesses %d != demand %d", st.Levels[0].Accesses, st.DemandAccesses)
		}
		checkCoherenceCounts(t, st, rec)
		if cores == 1 && (st.WriteInvalidations != 0 || st.Downgrades != 0) {
			t.Fatalf("single core saw %d write-invalidations / %d downgrades",
				st.WriteInvalidations, st.Downgrades)
		}
		totalBackInv += st.BackInvalidations
		totalWriteInv += st.WriteInvalidations
	}
	// The small shared level overflows under mixed accesses and multi-core
	// trials contend on the hot lines; the per-event counters must see
	// those protocol actions, not just perform them.
	if totalBackInv == 0 {
		t.Fatal("no back-invalidations counted across all trials despite eviction pressure")
	}
	if totalWriteInv == 0 {
		t.Fatal("no write-invalidations counted across all trials despite hot-line contention")
	}
}

// TestCoherenceEventCounts pins the per-event semantics on a deterministic
// two-core ping-pong: every write to a line the other core holds is
// exactly one write-invalidation, and a read of a modified remote line is
// exactly one downgrade.
func TestCoherenceEventCounts(t *testing.T) {
	h, err := NewHierarchy(tinyConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := newCohRecorder(t)
	h.SetCoherenceObserver(rec)

	const addr = 0x1000
	h.Access(0, 1, addr, 8, true) // core 0: exclusive+dirty
	h.Access(1, 1, addr, 8, true) // kicks core 0: 1 write-invalidation, dirty
	h.Access(0, 1, addr, 8, true) // kicks core 1: 2nd write-invalidation
	st := h.Stats()
	if st.WriteInvalidations != 2 {
		t.Fatalf("ping-pong write-invalidations = %d, want 2", st.WriteInvalidations)
	}
	if st.Downgrades != 0 {
		t.Fatalf("write ping-pong produced %d downgrades", st.Downgrades)
	}

	h.Access(1, 1, addr, 8, false) // read of core 0's modified line: downgrade
	st = h.Stats()
	if st.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", st.Downgrades)
	}
	if st.WriteInvalidations != 2 {
		t.Fatalf("read fill changed write-invalidations to %d", st.WriteInvalidations)
	}
	checkCoherenceCounts(t, st, rec)
}

// TestAccessedLineLandsInL1: after any demand access the line is L1-
// resident (write-allocate, fill-on-miss).
func TestAccessedLineLandsInL1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, _ := NewHierarchy(tinyConfig(), 2)
	for i := 0; i < 2000; i++ {
		core := rng.Intn(2)
		addr := uint64(rng.Intn(1 << 18))
		h.Access(core, 1, addr, 8, rng.Intn(2) == 0)
		if h.inst(0, core).peek(addr>>6) == nil {
			t.Fatalf("line %#x absent from L1 immediately after access", addr>>6)
		}
	}
}
