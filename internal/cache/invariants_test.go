package cache

import (
	"math/rand"
	"testing"
)

// checkInclusion asserts the inclusive-hierarchy invariant: every valid
// line in a private level is present in every level below it (same core
// for private levels, the shared instance for shared ones).
func checkInclusion(t *testing.T, h *Hierarchy) {
	t.Helper()
	for li := 0; li < len(h.levels)-1; li++ {
		for core := 0; core < h.numCores; core++ {
			upper := h.inst(li, core)
			for _, set := range upper.sets {
				for _, ln := range set {
					if !ln.valid {
						continue
					}
					for lj := li + 1; lj < len(h.levels); lj++ {
						lower := h.inst(lj, core)
						if lower.peek(ln.tag) == nil {
							t.Fatalf("inclusion violated: line %#x in %s (core %d) missing from %s",
								ln.tag, h.cfg.Levels[li].Name, core, h.cfg.Levels[lj].Name)
						}
					}
				}
			}
		}
	}
}

// checkDirectory asserts that every valid line in a core's private
// hierarchy has its directory bit set (the converse may transiently not
// hold, which is safe: spurious probes, never missed ones). Single-core
// hierarchies carry no directory at all.
func checkDirectory(t *testing.T, h *Hierarchy) {
	t.Helper()
	lp := h.lastPrivate()
	if lp < 0 {
		return
	}
	if !h.coherent {
		if n := h.directory.len(); n != 0 {
			t.Fatalf("single-core hierarchy grew a %d-entry directory", n)
		}
		return
	}
	for core := 0; core < h.numCores; core++ {
		for li := 0; li <= lp; li++ {
			inst := h.inst(li, core)
			for _, set := range inst.sets {
				for _, ln := range set {
					if !ln.valid {
						continue
					}
					if h.directory.get(ln.tag)&(1<<uint(core)) == 0 {
						t.Fatalf("directory lost core %d's line %#x (level %s)",
							core, ln.tag, h.cfg.Levels[li].Name)
					}
				}
			}
		}
	}
}

func TestHierarchyInvariantsUnderRandomAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		cfg := tinyConfig()
		cfg.Prefetch = trial%2 == 1
		cfg.PrefetchDegree = 2
		cores := 1 + trial%3
		h, err := NewHierarchy(cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			core := rng.Intn(cores)
			// A mix of hot lines (conflict pressure) and a wide range.
			var addr uint64
			if rng.Intn(2) == 0 {
				addr = uint64(rng.Intn(64)) * 64
			} else {
				addr = uint64(rng.Intn(1 << 20))
			}
			h.Access(core, uint64(0x400000+rng.Intn(32)*4), addr, 8, rng.Intn(3) == 0)
		}
		checkInclusion(t, h)
		checkDirectory(t, h)
		// Counter sanity: hits + misses == accesses at every level.
		st := h.Stats()
		for _, ls := range st.Levels {
			if ls.Hits+ls.Misses != ls.Accesses {
				t.Fatalf("%s: hits %d + misses %d != accesses %d",
					ls.Name, ls.Hits, ls.Misses, ls.Accesses)
			}
		}
		if st.Levels[0].Accesses != st.DemandAccesses {
			t.Fatalf("L1 accesses %d != demand %d", st.Levels[0].Accesses, st.DemandAccesses)
		}
	}
}

// TestAccessedLineLandsInL1: after any demand access the line is L1-
// resident (write-allocate, fill-on-miss).
func TestAccessedLineLandsInL1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, _ := NewHierarchy(tinyConfig(), 2)
	for i := 0; i < 2000; i++ {
		core := rng.Intn(2)
		addr := uint64(rng.Intn(1 << 18))
		h.Access(core, 1, addr, 8, rng.Intn(2) == 0)
		if h.inst(0, core).peek(addr>>6) == nil {
			t.Fatalf("line %#x absent from L1 immediately after access", addr>>6)
		}
	}
}
