package cache

import "fmt"

// CoherenceKind classifies one coherence event.
type CoherenceKind uint8

// Coherence event kinds.
const (
	// CoherenceWriteInvalidate: a write probe removed another core's copy
	// of the line (MESI write-invalidate).
	CoherenceWriteInvalidate CoherenceKind = iota
	// CoherenceBackInvalidate: a shared-level eviction removed a private
	// copy to preserve inclusion.
	CoherenceBackInvalidate
	// CoherenceDowngrade: a read fill demoted another core's
	// exclusive/modified copy to shared.
	CoherenceDowngrade
)

func (k CoherenceKind) String() string {
	switch k {
	case CoherenceWriteInvalidate:
		return "write-invalidate"
	case CoherenceBackInvalidate:
		return "back-invalidate"
	case CoherenceDowngrade:
		return "downgrade"
	}
	return "?"
}

// CoherenceEvent describes one coherence action on one line. One event is
// emitted per victim core, regardless of how many of its private levels
// held the line — the protocol-level event count, not the per-level
// bookkeeping count.
type CoherenceEvent struct {
	Kind CoherenceKind
	// Tag is the line address (addr >> log2(LineSize)).
	Tag uint64
	// Addr is the accessing effective address that triggered the event
	// (the probe cause); 0 for back-invalidations and prefetch-triggered
	// events, whose cause is unrelated to the victim line.
	Addr uint64
	// Core initiated the event; Victim lost (or downgraded) its copy.
	Core, Victim int
	// Dirty reports whether the victim's copy was modified (a writeback).
	Dirty bool
}

// CoherenceObserver is notified of every coherence event. Observers run
// inline in the access path and must be cheap; the event is only valid for
// the duration of the call (the hierarchy reuses one event so the hot path
// does not allocate) — observers that keep data must copy it out.
type CoherenceObserver interface {
	OnCoherence(ev *CoherenceEvent)
}

// Hierarchy is a multi-core cache hierarchy: the private levels are
// instantiated per core, the shared levels once.
type Hierarchy struct {
	cfg       Config
	lineShift uint
	numCores  int

	// levels[i] holds either numCores instances (private) or 1 (shared).
	levels [][]*level

	// directory maps a line tag to the bitmask of cores whose private
	// hierarchy may hold it. Maintained on private fills and evictions;
	// consulted on writes to shared lines and on back-invalidations.
	directory *dirTable
	// coherent is false on single-core hierarchies, where no other core
	// can ever hold a line: the whole directory protocol is skipped, so
	// the per-access path does no coherence bookkeeping and the directory
	// cannot grow.
	coherent bool
	// lastPriv caches the index of the deepest private level (-1 if all
	// levels are shared); it is consulted on every fill.
	lastPriv int

	prefetchers []*strideTable
	tlbs        []*tlb
	// PrefetchIssued / PrefetchUseful count prefetcher activity.
	PrefetchIssued uint64
	PrefetchUseful uint64

	demandAccesses uint64
	writeBacks     uint64
	invalidations  uint64

	// Per-event coherence counters: one increment per victim core, unlike
	// invalidations above, which counts per level per core (the historical
	// bookkeeping counter, kept for compatibility).
	writeInvalidations uint64
	backInvalidations  uint64
	downgrades         uint64

	// cohObs, when set, receives every coherence event; cohScratch is the
	// reused event and curAddr the effective address of the in-flight
	// demand access (0 during prefetch fills).
	cohObs     CoherenceObserver
	cohScratch CoherenceEvent
	curAddr    uint64

	// hot is the per-core L1 hot-line shadow (nil when disabled): a
	// direct-mapped table of recently touched lines, each entry a
	// (tag, *line) pair pointing into the core's L1. A demand access
	// whose entry matches and whose line still holds the tag is an L1 hit
	// answered without the level walk. Entries are never invalidated —
	// every eviction, write-invalidation, back-invalidation, or
	// downgrade mutates the pointed-to line, so stale entries fail the
	// verification compare and fall into the full path. l1Line carries
	// the L1 slot the in-flight demand access hit or filled, for shadow
	// update. deep is the same trick for prefetchPresent, pointing into
	// the deepest level of each core's view.
	hot    [][]hotEntry
	deep   [][]hotEntry
	l1Line *line
	l1Lat  uint32 // Levels[0].Latency, preloaded for the fast path
}

// hotEntry is one L1 hot-line shadow slot.
type hotEntry struct {
	tag uint64
	ln  *line
}

const (
	hotLines = 1024
	hotMask  = hotLines - 1
)

// NewHierarchy builds a hierarchy for the given core count.
func NewHierarchy(cfg Config, numCores int) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numCores <= 0 {
		return nil, fmt.Errorf("core count %d", numCores)
	}
	h := &Hierarchy{cfg: cfg, numCores: numCores, directory: newDirTable()}
	h.l1Lat = uint32(cfg.Levels[0].Latency)
	for s := cfg.LineSize; s > 1; s >>= 1 {
		h.lineShift++
	}
	for _, lc := range cfg.Levels {
		n := numCores
		if lc.Shared {
			n = 1
		}
		insts := make([]*level, n)
		for i := range insts {
			insts[i] = newLevel(lc, cfg.LineSize)
		}
		h.levels = append(h.levels, insts)
	}
	h.lastPriv = -1
	for i, lc := range cfg.Levels {
		if !lc.Shared {
			h.lastPriv = i
		}
	}
	h.coherent = numCores > 1 && h.lastPriv >= 0
	if cfg.Prefetch {
		h.prefetchers = make([]*strideTable, numCores)
		for i := range h.prefetchers {
			h.prefetchers[i] = newStrideTable()
		}
	}
	if tcfg := cfg.TLB.withDefaults(); tcfg.Entries > 0 {
		h.cfg.TLB = tcfg
		h.tlbs = make([]*tlb, numCores)
		for i := range h.tlbs {
			h.tlbs[i] = newTLB(tcfg)
		}
	}
	if !cfg.DisableHotLine {
		h.hot = make([][]hotEntry, numCores)
		h.deep = make([][]hotEntry, numCores)
		backing := make([]hotEntry, 2*numCores*hotLines)
		for i := range h.hot {
			h.hot[i] = backing[2*i*hotLines : (2*i+1)*hotLines]
			h.deep[i] = backing[(2*i+1)*hotLines : (2*i+2)*hotLines]
		}
	}
	return h, nil
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// NumCores returns the configured core count.
func (h *Hierarchy) NumCores() int { return h.numCores }

func (h *Hierarchy) inst(levelIdx, core int) *level {
	insts := h.levels[levelIdx]
	if len(insts) == 1 {
		return insts[0]
	}
	return insts[core]
}

// lastPrivate returns the index of the deepest private level, or -1.
func (h *Hierarchy) lastPrivate() int { return h.lastPriv }

// SetCoherenceObserver attaches (or, with nil, detaches) the per-line
// coherence stats hook. The observer sees every write-invalidation,
// inclusion back-invalidation, and read downgrade as it happens.
func (h *Hierarchy) SetCoherenceObserver(o CoherenceObserver) { h.cohObs = o }

// emitCoherence delivers one coherence event to the observer, if any.
func (h *Hierarchy) emitCoherence(kind CoherenceKind, tag uint64, core, victim int, dirty bool) {
	if h.cohObs == nil {
		return
	}
	ev := &h.cohScratch
	ev.Kind = kind
	ev.Tag = tag
	ev.Addr = h.curAddr
	if kind == CoherenceBackInvalidate {
		ev.Addr = 0 // eviction fallout: the access is unrelated to the victim line
	}
	ev.Core = core
	ev.Victim = victim
	ev.Dirty = dirty
	h.cohObs.OnCoherence(ev)
}

// Access performs one demand access by core to addr. pc is the accessing
// instruction's address (used by the prefetcher). Accesses that span two
// lines are charged to the first line. Returns the serving level and
// total latency.
func (h *Hierarchy) Access(core int, pc, addr uint64, size int, write bool) Result {
	tag := addr >> h.lineShift
	if h.hot != nil {
		e := &h.hot[core][tag&hotMask]
		// The fast path requires the shadow entry and the line it points
		// to to agree on the tag (any eviction or invalidation since the
		// entry was written breaks one of the two), and takes writes only
		// on lines no other core holds: a write hit on a shared line must
		// probe the directory, which is the full path's job. Lines aged
		// out by a statistical fast-forward fall into the full path too,
		// which retires them.
		if e.tag == tag && e.ln != nil && e.ln.valid && e.ln.tag == tag && (!write || !e.ln.shared) &&
			!h.inst(0, core).aged(e.ln) {
			return h.hotHit(core, addr, pc, e.ln, write)
		}
	}
	h.demandAccesses++
	h.curAddr = addr
	h.l1Line = nil

	res := h.accessLine(core, tag, write, true)
	if h.hot != nil && h.l1Line != nil {
		h.hot[core][tag&hotMask] = hotEntry{tag: tag, ln: h.l1Line}
	}
	if h.tlbs != nil {
		res.Latency += uint32(h.tlbs[core].access(addr))
	}

	if h.prefetchers != nil {
		h.curAddr = 0 // prefetch fallout is not caused by this address
		h.trainPrefetcher(core, pc, addr)
	}
	return res
}

// hotHit replays exactly what the full path does for an L1 hit: counters,
// LRU touch, dirty/shared transition on writes (the caller guarantees the
// line is not shared, so a write is a silent upgrade with no directory
// traffic and an L1 hit never fills, downgrades, or touches the
// directory), TLB latency, and prefetcher training.
func (h *Hierarchy) hotHit(core int, addr, pc uint64, ln *line, write bool) Result {
	h.demandAccesses++
	l1 := h.inst(0, core)
	l1.Accesses++
	l1.Hits++
	l1.lruClock++
	ln.lru = l1.lruClock
	if write {
		ln.dirty = true
		ln.shared = false
	}
	res := Result{Latency: h.l1Lat, Level: 1}
	if h.tlbs != nil {
		res.Latency += uint32(h.tlbs[core].access(addr))
	}
	if h.prefetchers != nil {
		h.curAddr = 0 // prefetch fallout is not caused by this address
		h.trainPrefetcher(core, pc, addr)
	}
	return res
}

// accessLine walks the hierarchy for one line. demand distinguishes real
// accesses from prefetches (prefetches do not perturb counters).
func (h *Hierarchy) accessLine(core int, tag uint64, write, demand bool) Result {
	hitLevel := -1
	var hitLine *line
	for li := range h.levels {
		inst := h.inst(li, core)
		if demand {
			inst.Accesses++
		}
		if w := inst.lookup(tag); w != nil {
			hitLevel = li
			hitLine = w
			if demand {
				inst.Hits++
			}
			break
		}
		if demand {
			inst.Misses++
		}
	}

	latency := 0
	servedBy := len(h.levels) + 1 // memory
	if hitLevel >= 0 {
		latency = h.cfg.Levels[hitLevel].Latency
		servedBy = hitLevel + 1
	} else {
		latency = h.cfg.MemLatency
	}

	// Write semantics: writing a line that another core may hold must
	// invalidate the other copies (MESI write-invalidate). Single-core
	// hierarchies have no other copies: the whole protocol is skipped.
	if write && h.coherent {
		if hitLine != nil && hitLevel < len(h.levels) && !h.cfg.Levels[hitLevel].Shared && !hitLine.shared {
			// Exclusive in our own private hierarchy: silent upgrade.
		} else {
			h.invalidateOthers(core, tag)
		}
	}

	// Fill the line into every level above the serving one (on a full
	// miss, into every level — inclusive hierarchy).
	fillTo := hitLevel
	if fillTo < 0 {
		fillTo = len(h.levels)
	}
	sharedByOthers := false
	if h.coherent {
		sharedByOthers = h.heldByOthers(core, tag)
		if sharedByOthers && !write && fillTo > 0 {
			// Another core holds the line exclusive/modified; a read fill
			// downgrades its copy to shared so its next write probes us.
			h.downgradeOthers(core, tag)
		}
	}
	for li := fillTo - 1; li >= 0; li-- {
		ln := h.fillLevel(li, core, tag, write, sharedByOthers)
		if li == 0 {
			h.l1Line = ln
		}
	}
	if hitLevel == 0 {
		h.l1Line = hitLine
	}
	// A hit line may still need its dirty bit set on writes.
	if hitLine != nil && write {
		hitLine.dirty = true
		hitLine.shared = false
	}
	// Record directory occupancy only when a private fill happened; an L1
	// hit means the bit is already set.
	if h.coherent && hitLevel != 0 {
		h.noteDirectoryFill(core, tag)
	}

	return Result{Latency: uint32(latency), Level: uint8(servedBy)}
}

// fillLevel inserts the line at one level, handling eviction fallout,
// and returns the slot now holding the line.
func (h *Hierarchy) fillLevel(li, core int, tag uint64, dirty, shared bool) *line {
	inst := h.inst(li, core)
	victimTag, evicted, inserted := inst.fill(tag, dirty, shared)
	if !evicted || victimTag == tag {
		return inserted
	}
	// Inclusive hierarchy: evicting from a lower level back-invalidates
	// the levels above it.
	if h.cfg.Levels[li].Shared {
		// Shared level eviction: kick the line out of every core that
		// holds it (per the directory), then drop the directory entry.
		// Without coherence (one core) there is no directory; probe the
		// single core's private levels directly — invalidate is
		// presence-checked, so the counters move exactly as before.
		if !h.coherent {
			kicked, anyDirty := false, false
			for lj := li - 1; lj >= 0; lj-- {
				if dirtyWB, present := h.inst(lj, core).invalidate(victimTag); present {
					kicked = true
					h.invalidations++
					if dirtyWB {
						anyDirty = true
						h.writeBacks++
					}
				}
			}
			if kicked {
				h.backInvalidations++
				h.emitCoherence(CoherenceBackInvalidate, victimTag, core, core, anyDirty)
			}
		} else if mask := h.directory.get(victimTag); mask != 0 {
			for c := 0; c < h.numCores; c++ {
				if mask&(1<<uint(c)) == 0 {
					continue
				}
				kicked, anyDirty := false, false
				for lj := li - 1; lj >= 0; lj-- {
					if dirtyWB, present := h.inst(lj, c).invalidate(victimTag); present {
						kicked = true
						h.invalidations++
						if dirtyWB {
							anyDirty = true
							h.writeBacks++
						}
					}
				}
				if kicked {
					h.backInvalidations++
					h.emitCoherence(CoherenceBackInvalidate, victimTag, core, c, anyDirty)
				}
			}
			h.directory.delete(victimTag)
		}
	} else {
		// Private level eviction: back-invalidate this core's levels
		// above, and clear the directory bit if this was the deepest
		// private level.
		for lj := li - 1; lj >= 0; lj-- {
			if dirtyWB, present := h.inst(lj, core).invalidate(victimTag); present {
				h.invalidations++
				if dirtyWB {
					h.writeBacks++
				}
			}
		}
		if h.coherent && li == h.lastPriv {
			h.clearDirectoryBit(core, victimTag)
		}
	}
	return inserted
}

// heldByOthers reports whether any other core's private hierarchy may hold
// the line. Only called on coherent (multi-core) hierarchies.
func (h *Hierarchy) heldByOthers(core int, tag uint64) bool {
	mask := h.directory.get(tag)
	return mask&^(1<<uint(core)) != 0
}

// invalidateOthers removes the line from every other core's private
// levels (a write-invalidate probe).
func (h *Hierarchy) invalidateOthers(core int, tag uint64) {
	mask := h.directory.get(tag)
	if mask == 0 {
		return
	}
	others := mask &^ (1 << uint(core))
	if others == 0 {
		return
	}
	for c := 0; c < h.numCores; c++ {
		if others&(1<<uint(c)) == 0 {
			continue
		}
		kicked, anyDirty := false, false
		for li := range h.levels {
			if h.cfg.Levels[li].Shared {
				continue
			}
			if dirtyWB, present := h.inst(li, c).invalidate(tag); present {
				kicked = true
				h.invalidations++
				if dirtyWB {
					anyDirty = true
					h.writeBacks++
				}
			}
		}
		if kicked {
			h.writeInvalidations++
			h.emitCoherence(CoherenceWriteInvalidate, tag, core, c, anyDirty)
		}
	}
	h.directory.set(tag, mask&(1<<uint(core)))
}

// downgradeOthers marks the line shared in every other core's private
// levels, so a later write hit there consults the directory.
func (h *Hierarchy) downgradeOthers(core int, tag uint64) {
	mask := h.directory.get(tag) &^ (1 << uint(core))
	if mask == 0 {
		return
	}
	for c := 0; c < h.numCores; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		demoted := false
		for li := range h.levels {
			if h.cfg.Levels[li].Shared {
				continue
			}
			if w := h.inst(li, c).peek(tag); w != nil {
				w.shared = true
				demoted = true
			}
		}
		if demoted {
			h.downgrades++
			h.emitCoherence(CoherenceDowngrade, tag, core, c, false)
		}
	}
}

func (h *Hierarchy) noteDirectoryFill(core int, tag uint64) {
	h.directory.or(tag, 1<<uint(core))
}

func (h *Hierarchy) clearDirectoryBit(core int, tag uint64) {
	h.directory.clearBit(tag, 1<<uint(core))
}

// --- Statistical fast-forward aging ---------------------------------------

// EnableDecay arms line aging for statistical (sampled-window) runs: each
// level treats lines untouched for more than its capacity in lines as
// evicted (see level.decay). Exact runs never call this, so their lookup
// path is unchanged. Idempotent.
func (h *Hierarchy) EnableDecay() {
	for _, insts := range h.levels {
		for _, inst := range insts {
			inst.decay = inst.nsets * uint64(inst.cfg.Assoc)
		}
	}
}

// Age accounts for skipped accesses by one core during a statistical
// fast-forward: each level's LRU clock advances by the number of those
// accesses the level would have seen, estimated from the level's observed
// share of traffic so far (L1 sees every access; deeper levels see their
// running miss-chain fraction). Combined with EnableDecay, lines the
// skipped accesses would plausibly have evicted then age out on their
// next touch instead of serving stale hits.
func (h *Hierarchy) Age(core int, skipped uint64) {
	l1 := h.inst(0, core)
	for li := range h.levels {
		inst := h.inst(li, core)
		est := skipped
		if li > 0 {
			base := l1.Accesses
			if h.cfg.Levels[li].Shared {
				// Shared instances aggregate every core's traffic; scale
				// by the whole hierarchy's demand stream instead.
				base = h.demandAccesses
			}
			if base == 0 {
				continue
			}
			est = skipped * inst.Accesses / base
		}
		inst.lruClock += est
	}
}

// --- Prefetcher ----------------------------------------------------------

const (
	strideTableSize = 256
	strideConfMin   = 2
)

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int8
}

// strideTable is a per-core, per-PC stride predictor, direct-mapped like
// hardware reference-prediction tables.
type strideTable struct {
	entries [strideTableSize]strideEntry
}

func newStrideTable() *strideTable { return &strideTable{} }

// trainPrefetcher updates the predictor with a demand access and issues
// prefetches once a stride is confirmed.
func (h *Hierarchy) trainPrefetcher(core int, pc, addr uint64) {
	t := h.prefetchers[core]
	e := &t.entries[(pc>>2)%strideTableSize]
	if e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return
	}
	if stride == e.stride {
		if e.conf < strideConfMin {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return
	}
	if e.conf < strideConfMin {
		return
	}
	// Confident: prefetch the next PrefetchDegree strides into the
	// hierarchy (as non-demand fills ending at L2, the common design).
	for d := 1; d <= h.cfg.PrefetchDegree; d++ {
		next := uint64(int64(addr) + stride*int64(d))
		tag := next >> h.lineShift
		if tag == addr>>h.lineShift {
			continue
		}
		if h.prefetchPresent(core, tag) {
			continue
		}
		h.PrefetchIssued++
		h.prefetchFill(core, tag)
	}
}

// prefetchPresent checks whether the line is already anywhere in the
// core's view of the hierarchy.
func (h *Hierarchy) prefetchPresent(core int, tag uint64) bool {
	if h.deep != nil {
		// The hierarchy is inclusive (levels are inclusive of the levels
		// above them), so a line present anywhere in the core's view is
		// present in its deepest level: one peek decides. The verified
		// shadow answers the recurring streaming case — the same few
		// lines ahead of a confident stride, re-checked every access —
		// in one comparison.
		e := &h.deep[core][tag&hotMask]
		if e.tag == tag && e.ln != nil && e.ln.valid && e.ln.tag == tag {
			return true
		}
		ln := h.inst(len(h.levels)-1, core).peek(tag)
		if ln == nil {
			return false
		}
		h.deep[core][tag&hotMask] = hotEntry{tag: tag, ln: ln}
		return true
	}
	for li := range h.levels {
		if h.inst(li, core).peek(tag) != nil {
			return true
		}
	}
	return false
}

// prefetchFill inserts the line into the second-closest level and below
// (prefetching into L1 would pollute it; hardware prefetchers typically
// target L2).
func (h *Hierarchy) prefetchFill(core int, tag uint64) {
	start := 1
	if len(h.levels) == 1 {
		start = 0
	}
	shared := h.coherent && h.heldByOthers(core, tag)
	for li := len(h.levels) - 1; li >= start; li-- {
		ln := h.fillLevel(li, core, tag, false, shared)
		if h.deep != nil && li == len(h.levels)-1 {
			// Seed the prefetchPresent shadow with the slot just filled:
			// the very next access's candidate check asks about this tag,
			// and the memo answers it without re-peeking the deepest level.
			h.deep[core][tag&hotMask] = hotEntry{tag: tag, ln: ln}
		}
	}
	if h.coherent && h.lastPriv >= start {
		h.noteDirectoryFill(core, tag)
	}
}

// --- Stats ----------------------------------------------------------------

// LevelStats aggregates one level's counters across instances.
type LevelStats struct {
	Name     string
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRatio returns Misses/Accesses, or 0 for idle levels.
func (s LevelStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Stats is a point-in-time snapshot of the hierarchy's counters.
type Stats struct {
	Levels         []LevelStats
	DemandAccesses uint64
	WriteBacks     uint64
	// Invalidations counts per level per core (the historical bookkeeping
	// counter); the three counters below count one per victim core per
	// protocol event, split by kind, so Invalidations >=
	// WriteInvalidations + BackInvalidations.
	Invalidations      uint64
	WriteInvalidations uint64
	BackInvalidations  uint64
	Downgrades         uint64
	PrefetchIssued     uint64
	TLB                TLBStats
}

// Stats snapshots all counters, summing private instances per level.
func (h *Hierarchy) Stats() Stats {
	st := Stats{
		DemandAccesses:     h.demandAccesses,
		WriteBacks:         h.writeBacks,
		Invalidations:      h.invalidations,
		WriteInvalidations: h.writeInvalidations,
		BackInvalidations:  h.backInvalidations,
		Downgrades:         h.downgrades,
		PrefetchIssued:     h.PrefetchIssued,
	}
	for li, insts := range h.levels {
		ls := LevelStats{Name: h.cfg.Levels[li].Name}
		for _, inst := range insts {
			ls.Accesses += inst.Accesses
			ls.Hits += inst.Hits
			ls.Misses += inst.Misses
		}
		st.Levels = append(st.Levels, ls)
	}
	for _, t := range h.tlbs {
		st.TLB.Accesses += t.Accesses
		st.TLB.Misses += t.Misses
	}
	return st
}

// Level returns the stats of the named level, or a zero value.
func (s Stats) Level(name string) LevelStats {
	for _, l := range s.Levels {
		if l.Name == name {
			return l
		}
	}
	return LevelStats{Name: name}
}
