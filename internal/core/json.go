package core

import (
	"encoding/json"
	"io"
)

// The JSON view is a stable, lean serialization of the report for
// downstream tooling — e.g. the compiler passes the paper suggests
// consuming StructSlim's output ("can be easily consumed by a compiler
// pass such as ROSE to perform profile-guided data-layout optimization").

type jsonReport struct {
	Program      string          `json:"program"`
	TotalLatency uint64          `json:"total_latency"`
	NumSamples   uint64          `json:"num_samples"`
	Threads      int             `json:"threads"`
	OverheadPct  float64         `json:"overhead_pct"`
	Ranking      []jsonRankEntry `json:"ranking"`
	Structures   []jsonStructure `json:"structures"`
}

type jsonRankEntry struct {
	Name     string  `json:"name"`
	Ld       float64 `json:"ld"`
	Latency  uint64  `json:"latency"`
	Samples  uint64  `json:"samples"`
	Analyzed bool    `json:"analyzed"`
}

type jsonStructure struct {
	Name         string         `json:"name"`
	TypeName     string         `json:"type,omitempty"`
	Ld           float64        `json:"ld"`
	InferredSize uint64         `json:"inferred_size"`
	TrueSize     int            `json:"true_size,omitempty"`
	NumObjects   int            `json:"num_objects"`
	Fields       []jsonField    `json:"fields"`
	Loops        []jsonLoop     `json:"loops"`
	Affinities   []jsonAffinity `json:"affinities,omitempty"`
	Advice       [][]string     `json:"advice,omitempty"`
}

type jsonField struct {
	Name    string  `json:"name"`
	Offset  uint64  `json:"offset"`
	Share   float64 `json:"share"`
	Latency uint64  `json:"latency"`
	Samples uint64  `json:"samples"`
	Writes  uint64  `json:"writes"`
}

type jsonLoop struct {
	Name   string   `json:"name"`
	Share  float64  `json:"share"`
	Fields []string `json:"fields"`
}

type jsonAffinity struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Value float64 `json:"value"`
}

// WriteJSON serializes the report for tooling.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		Program:      r.Program,
		TotalLatency: r.TotalLatency,
		NumSamples:   r.NumSamples,
		Threads:      r.Threads,
		OverheadPct:  r.OverheadPct,
	}
	for _, e := range r.Ranking {
		out.Ranking = append(out.Ranking, jsonRankEntry{
			Name: e.Name, Ld: e.Ld, Latency: e.LatencySum,
			Samples: e.NumSamples, Analyzed: e.Analyzed,
		})
	}
	for _, sr := range r.Structures {
		js := jsonStructure{
			Name:         sr.Name,
			TypeName:     sr.TypeName,
			Ld:           sr.Ld,
			InferredSize: sr.InferredSize,
			TrueSize:     sr.TrueSize,
			NumObjects:   sr.NumObjects,
		}
		for _, f := range sr.Fields {
			js.Fields = append(js.Fields, jsonField{
				Name: f.Name, Offset: f.Offset, Share: f.Share,
				Latency: f.LatencySum, Samples: f.Samples, Writes: f.Writes,
			})
		}
		for _, l := range sr.Loops {
			js.Loops = append(js.Loops, jsonLoop{
				Name: l.Name, Share: l.Share, Fields: l.FieldNames,
			})
		}
		if sr.Affinity != nil {
			for _, e := range sr.Affinity.Edges {
				if e.Value <= 0 {
					continue
				}
				js.Affinities = append(js.Affinities, jsonAffinity{
					A: sr.fieldName(e.OffA), B: sr.fieldName(e.OffB), Value: e.Value,
				})
			}
		}
		if sr.Advice != nil {
			js.Advice = sr.Advice.FieldGroups()
		}
		out.Structures = append(out.Structures, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
