package core

// Unit tests drive the analyzer with hand-constructed profiles and a tiny
// program, independent of the simulator, so each pipeline stage's policy
// is pinned down directly. Whole-system behaviour is covered by the
// structslim, workloads, and tables packages.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/prog"
)

// testProgram builds one function with two loops; returns the program and
// the IPs of the load instruction inside each loop plus one outside.
func testProgram(t *testing.T) (p *prog.Program, loopAIP, loopBIP, outsideIP uint64, typeID int) {
	t.Helper()
	b := prog.NewBuilder("unit")
	rec := prog.MustRecord("pair",
		prog.Field{Name: "x", Size: 8},
		prog.Field{Name: "y", Size: 8},
	)
	st := prog.AoS(rec).Structs[0]
	typeID = b.Type(st)
	g := b.Global("arr", 1024*16, typeID)
	b.Func("main", "u.c")
	base, iv, v := b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.AtLine(10)
	b.ForRange(iv, 0, 100, 1, func() {
		b.AtLine(11)
		b.Load(v, base, iv, 16, 0, 8)
	})
	b.AtLine(20)
	b.ForRange(iv, 0, 100, 1, func() {
		b.AtLine(21)
		b.Load(v, base, iv, 16, 8, 8)
	})
	b.AtLine(30)
	b.Load(v, base, isa.RZ, 1, 0, 8)
	b.Halt()
	p = b.MustProgram()

	var loads []uint64
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == isa.Load {
					loads = append(loads, blk.Instrs[i].IP)
				}
			}
		}
	}
	if len(loads) != 3 {
		t.Fatalf("loads = %d, want 3", len(loads))
	}
	return p, loads[0], loads[1], loads[2], typeID
}

// mkProfile assembles a profile whose samples hit the object at the given
// (ip, element, offset, latency) tuples.
func mkProfile(base uint64, identity uint64, typeID int32, samples []profile.Sample) *profile.Profile {
	p := &profile.Profile{
		Period:  1000,
		Threads: 1,
		Streams: make(map[profile.StreamKey]*profile.StreamStat),
		Objects: []profile.ObjInfo{{
			ID: 0, Name: "arr", Base: base, Size: 1024 * 16,
			Identity: identity, TypeID: typeID,
		}},
	}
	for _, s := range samples {
		p.Samples = append(p.Samples, s)
		p.NumSamples++
		p.TotalLatency += uint64(s.Latency)
		key := profile.StreamKey{IP: s.IP, Identity: identity}
		st := p.Streams[key]
		if st == nil {
			st = &profile.StreamStat{IP: s.IP, Identity: identity}
			p.Streams[key] = st
		}
		st.Observe(s.EA, s.Latency, s.Write, s.ObjID)
	}
	p.AppCycles = 1_000_000
	p.OverheadCycles = 20_000
	return p
}

const objBase = uint64(0x10000000)

func samplesFor(ip uint64, offset uint64, elems []int, latency uint32) []profile.Sample {
	var out []profile.Sample
	for i, e := range elems {
		out = append(out, profile.Sample{
			IP: ip, EA: objBase + uint64(e)*16 + offset,
			Latency: latency, Level: 3, Cycle: uint64(i * 100), ObjID: 0,
		})
	}
	return out
}

func TestAnalyzePipeline(t *testing.T) {
	p, ipA, ipB, ipOut, typeID := testProgram(t)
	var samples []profile.Sample
	samples = append(samples, samplesFor(ipA, 0, []int{1, 3, 6, 9, 12}, 100)...) // x in loop A
	samples = append(samples, samplesFor(ipB, 8, []int{2, 4, 7, 11, 13}, 50)...) // y in loop B
	samples = append(samples, samplesFor(ipOut, 0, []int{0}, 10)...)             // x outside loops
	prof := mkProfile(objBase, 77, int32(typeID), samples)

	rep, err := Analyze(prof, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Structures) != 1 {
		t.Fatalf("structures = %d", len(rep.Structures))
	}
	sr := rep.Structures[0]
	if sr.TypeName != "pair" || sr.TrueSize != 16 {
		t.Errorf("debug info: %s/%d", sr.TypeName, sr.TrueSize)
	}
	if sr.InferredSize != 16 {
		t.Errorf("inferred size = %d, want 16", sr.InferredSize)
	}
	if sr.Ld < 0.999 {
		t.Errorf("l_d = %v, want 1 (only structure)", sr.Ld)
	}

	// Field table: x = 5*100 + 10, y = 250.
	if len(sr.Fields) != 2 {
		t.Fatalf("fields = %+v", sr.Fields)
	}
	if sr.Fields[0].Name != "x" || sr.Fields[0].LatencySum != 510 {
		t.Errorf("field x = %+v", sr.Fields[0])
	}
	if sr.Fields[1].Name != "y" || sr.Fields[1].LatencySum != 250 {
		t.Errorf("field y = %+v", sr.Fields[1])
	}

	// Loop table: two real loops plus the outside bucket; sorted by
	// latency.
	if len(sr.Loops) != 3 {
		t.Fatalf("loops = %+v", sr.Loops)
	}
	if sr.Loops[0].LatencySum != 500 || sr.Loops[0].FieldNames[0] != "x" {
		t.Errorf("hottest loop = %+v", sr.Loops[0])
	}
	var outside *LoopReport
	for i := range sr.Loops {
		if sr.Loops[i].Loop == nil {
			outside = &sr.Loops[i]
		}
	}
	if outside == nil || outside.LatencySum != 10 {
		t.Errorf("outside-loop bucket = %+v", outside)
	}

	// x and y never co-occur in a loop: affinity 0, two advice groups.
	if a := sr.Affinity.Affinity(0, 8); a != 0 {
		t.Errorf("A(x,y) = %v, want 0", a)
	}
	if sr.Advice == nil || len(sr.Advice.Groups) != 2 || !sr.Advice.Complete {
		t.Fatalf("advice = %+v", sr.Advice)
	}

	// Streams carry strides and offsets.
	for _, st := range sr.Streams {
		if st.IP == ipA && (st.Stride != 32 && st.Stride != 16) {
			// Elements 1,3,6,9,12 → deltas 2,3,3,3 ×16 → gcd 16.
			t.Errorf("stream A stride = %d", st.Stride)
		}
		if st.IP == ipB && st.Offset != 8 {
			t.Errorf("stream B offset = %d", st.Offset)
		}
	}
	if rep.OverheadPct != 2.0 {
		t.Errorf("overhead = %v, want 2", rep.OverheadPct)
	}
}

func TestTopKAndMinLdFiltering(t *testing.T) {
	p, ipA, _, _, typeID := testProgram(t)
	// Three identities with descending latency; TopK=1 keeps only the
	// first.
	prof := mkProfile(objBase, 1, int32(typeID), samplesFor(ipA, 0, []int{1, 2, 3}, 1000))
	// Add two more objects/identities by hand.
	for id := int32(1); id <= 2; id++ {
		base := objBase + uint64(id)*0x100000
		prof.Objects = append(prof.Objects, profile.ObjInfo{
			ID: id, Name: "other", Base: base, Size: 4096, Identity: uint64(10 + id), TypeID: -1,
		})
		lat := uint32(100 / id)
		for e := 0; e < 3; e++ {
			s := profile.Sample{IP: ipA, EA: base + uint64(e*8), Latency: lat, ObjID: id}
			prof.Samples = append(prof.Samples, s)
			prof.NumSamples++
			prof.TotalLatency += uint64(lat)
		}
	}

	rep, err := Analyze(prof, p, Options{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Structures) != 1 {
		t.Fatalf("structures = %d, want 1 (TopK)", len(rep.Structures))
	}
	if len(rep.Ranking) != 3 {
		t.Fatalf("ranking = %d, want 3", len(rep.Ranking))
	}
	if !rep.Ranking[0].Analyzed || rep.Ranking[1].Analyzed {
		t.Error("Analyzed flags wrong")
	}
	// Ranking is sorted by latency.
	for i := 1; i < len(rep.Ranking); i++ {
		if rep.Ranking[i].LatencySum > rep.Ranking[i-1].LatencySum {
			t.Error("ranking not sorted")
		}
	}

	// MinLd filters even within TopK.
	rep2, err := Analyze(prof, p, Options{TopK: 3, MinLd: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Structures) != 1 {
		t.Errorf("MinLd=0.5 kept %d structures", len(rep2.Structures))
	}

	// KeepAllGroups overrides both.
	rep3, err := Analyze(prof, p, Options{TopK: 1, KeepAllGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Structures) != 3 {
		t.Errorf("KeepAllGroups kept %d structures", len(rep3.Structures))
	}
}

func TestIrregularOnlyStructure(t *testing.T) {
	p, ipA, _, _, typeID := testProgram(t)
	// All samples at wildly irregular addresses: GCD degenerates to 1,
	// so no size and no field analysis — but no crash and streams are
	// still reported.
	var samples []profile.Sample
	for i, ea := range []uint64{objBase + 3, objBase + 10, objBase + 24, objBase + 91, objBase + 104} {
		samples = append(samples, profile.Sample{IP: ipA, EA: ea, Latency: 10, Cycle: uint64(i), ObjID: 0})
	}
	prof := mkProfile(objBase, 5, int32(typeID), samples)
	rep, err := Analyze(prof, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.Structures[0]
	if sr.InferredSize != 0 {
		t.Errorf("inferred size = %d, want 0 (irregular)", sr.InferredSize)
	}
	if sr.Advice != nil {
		t.Error("advice fabricated for irregular structure")
	}
	if len(sr.Streams) != 1 {
		t.Errorf("streams = %d", len(sr.Streams))
	}
}

func TestFieldNameFallsBackPositional(t *testing.T) {
	p, ipA, _, _, _ := testProgram(t)
	// No debug type (TypeID -1): names render as "+off"; advice exists
	// but is not Complete.
	prof := mkProfile(objBase, 9, -1, samplesFor(ipA, 8, []int{1, 2, 3, 4}, 10))
	rep, err := Analyze(prof, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.Structures[0]
	if sr.TypeName != "" || sr.TrueSize != 0 {
		t.Fatalf("unexpected debug info: %+v", sr)
	}
	if len(sr.Fields) != 1 || sr.Fields[0].Name != "+8" {
		t.Errorf("fields = %+v, want positional +8", sr.Fields)
	}
	if sr.Advice == nil || sr.Advice.Complete {
		t.Errorf("advice = %+v, want incomplete", sr.Advice)
	}
}

func TestUnattributedSamplesIgnored(t *testing.T) {
	p, ipA, _, _, typeID := testProgram(t)
	prof := mkProfile(objBase, 3, int32(typeID), samplesFor(ipA, 0, []int{1, 2}, 10))
	// A stack-like sample with no object.
	prof.Samples = append(prof.Samples, profile.Sample{IP: ipA, EA: 0x7fff0000, Latency: 999, ObjID: -1})
	prof.NumSamples++
	prof.TotalLatency += 999
	rep, err := Analyze(prof, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ranking) != 1 {
		t.Fatalf("ranking = %d", len(rep.Ranking))
	}
	// l_d is computed against *total* latency including unattributed.
	want := 20.0 / (20.0 + 999.0)
	if got := rep.Ranking[0].Ld; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("l_d = %v, want %v", got, want)
	}
}

func TestAnalyzeNilArgs(t *testing.T) {
	if _, err := Analyze(nil, nil, Options{}); err == nil {
		t.Error("nil args accepted")
	}
}

func TestHeapDisplayName(t *testing.T) {
	p, ipA, _, _, _ := testProgram(t)
	prof := mkProfile(objBase, 4, -1, samplesFor(ipA, 0, []int{1, 2, 3}, 10))
	prof.Objects[0].Heap = true
	prof.Objects[0].AllocIP = ipA // any valid IP; maps to u.c
	rep, err := Analyze(prof, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rep.Structures[0].Name, "heap@u.c:") {
		t.Errorf("heap display name = %q", rep.Structures[0].Name)
	}
}

func TestRenderAdviceTypes(t *testing.T) {
	adv := &SplitAdvice{StructName: "s", Groups: [][]string{{"a", "b"}, {"c"}}}
	out := adv.RenderStructs([]prog.PhysField{
		{Name: "a", Offset: 0, Size: 8, Float: true},
		{Name: "b", Offset: 8, Size: 4},
		{Name: "c", Offset: 12, Size: 49},
	})
	for _, want := range []string{"struct s_0", "struct s_1", "double a", "int b", "char[49] c"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered advice missing %q:\n%s", want, out)
		}
	}
	// Unknown fields fall back to "word".
	out2 := adv.RenderStructs(nil)
	if !strings.Contains(out2, "word a") {
		t.Errorf("fallback type missing:\n%s", out2)
	}
	// Single group keeps the bare name.
	adv2 := &SplitAdvice{StructName: "s", Groups: [][]string{{"a"}}}
	if out := adv2.RenderStructs(nil); !strings.Contains(out, "struct s {") {
		t.Errorf("single group name:\n%s", out)
	}
}

func TestWeightByCount(t *testing.T) {
	// Construct the paper's latency-vs-count divergence: fields x and y
	// co-occur in a loop with FEW but EXPENSIVE accesses to x, while x's
	// cheap accesses dominate elsewhere by count. Count weighting then
	// reports a much higher A(x,y) than latency weighting.
	// A dedicated program: loop A loads x; loop B loads x and y.
	b := prog.NewBuilder("weights")
	rec := prog.MustRecord("pair",
		prog.Field{Name: "x", Size: 8}, prog.Field{Name: "y", Size: 8})
	typeID := b.Type(prog.AoS(rec).Structs[0])
	b.Global("arr", 1024*16, typeID)
	b.Func("main", "u.c")
	base, iv, v := b.R(), b.R(), b.R()
	b.GAddr(base, 0)
	b.AtLine(10)
	b.ForRange(iv, 0, 100, 1, func() {
		b.AtLine(11)
		b.Load(v, base, iv, 16, 0, 8) // x in loop A
	})
	b.AtLine(20)
	b.ForRange(iv, 0, 100, 1, func() {
		b.AtLine(21)
		b.Load(v, base, iv, 16, 0, 8) // x in loop B
		b.Load(v, base, iv, 16, 8, 8) // y in loop B
	})
	b.Halt()
	p := b.MustProgram()
	var loads []uint64
	for _, blk := range p.Funcs[0].Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == isa.Load {
				loads = append(loads, blk.Instrs[i].IP)
			}
		}
	}
	if len(loads) != 3 {
		t.Fatalf("loads = %d", len(loads))
	}
	ipA, ipBx, ipBy := loads[0], loads[1], loads[2]

	var samples []profile.Sample
	// Loop A: x only — many cheap accesses (count-dominant).
	samples = append(samples, samplesFor(ipA, 0, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 5)...)
	// Loop B: x and y together — few, expensive.
	samples = append(samples, samplesFor(ipBx, 0, []int{20, 22}, 300)...)
	samples = append(samples, samplesFor(ipBy, 8, []int{21, 23}, 300)...)
	prof := mkProfile(objBase, 44, int32(typeID), samples)

	latRep, err := Analyze(prof, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cntRep, err := Analyze(prof, p, Options{WeightByCount: true})
	if err != nil {
		t.Fatal(err)
	}
	aLat := latRep.Structures[0].Affinity.Affinity(0, 8)
	aCnt := cntRep.Structures[0].Affinity.Affinity(0, 8)
	// Latency: lc = 600+600, l = 80+600+600 → ≈0.94.
	// Count: lc = 2+2, l = 16+2+2 → 0.2.
	if aLat < 0.85 {
		t.Errorf("latency-weighted A(x,y) = %v, want high", aLat)
	}
	if aCnt > 0.5 {
		t.Errorf("count-weighted A(x,y) = %v, want low", aCnt)
	}
	if aCnt >= aLat {
		t.Errorf("weighting made no difference: %v vs %v", aLat, aCnt)
	}
	// And the decisions diverge: latency weighting groups {x,y}; count
	// weighting splits them.
	if g := latRep.Structures[0].OffsetGroups; len(g) != 1 {
		t.Errorf("latency weighting groups = %v, want one", g)
	}
	if g := cntRep.Structures[0].OffsetGroups; len(g) != 2 {
		t.Errorf("count weighting groups = %v, want two", g)
	}
}

func TestWriteJSON(t *testing.T) {
	p, ipA, ipB, _, typeID := testProgram(t)
	var samples []profile.Sample
	samples = append(samples, samplesFor(ipA, 0, []int{1, 3, 6}, 100)...)
	samples = append(samples, samplesFor(ipB, 8, []int{2, 4, 7}, 50)...)
	prof := mkProfile(objBase, 8, int32(typeID), samples)
	rep, err := Analyze(prof, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	structures, ok := decoded["structures"].([]interface{})
	if !ok || len(structures) != 1 {
		t.Fatalf("structures missing: %v", decoded)
	}
	s := structures[0].(map[string]interface{})
	if s["type"] != "pair" || s["inferred_size"] != float64(16) {
		t.Errorf("structure JSON wrong: %v", s)
	}
	if adv, ok := s["advice"].([]interface{}); !ok || len(adv) != 2 {
		t.Errorf("advice JSON wrong: %v", s["advice"])
	}
}

func TestReportRendering(t *testing.T) {
	p, ipA, ipB, _, typeID := testProgram(t)
	var samples []profile.Sample
	samples = append(samples, samplesFor(ipA, 0, []int{1, 3, 6}, 100)...)
	samples = append(samples, samplesFor(ipB, 8, []int{2, 4, 7}, 50)...)
	prof := mkProfile(objBase, 8, int32(typeID), samples)
	rep, err := Analyze(prof, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.RenderText(&buf)
	out := buf.String()
	for _, want := range []string{"StructSlim report", "Hot data", "pair", "Affinities", "Splitting advice"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	var dot bytes.Buffer
	rep.Structures[0].WriteDot(&dot)
	if !strings.Contains(dot.String(), "graph affinity_arr") {
		t.Errorf("dot graph header missing:\n%s", dot.String())
	}

	// Keep-apart constraints from a sharing analysis overlay the graph
	// as dashed red edges.
	rep.Structures[0].KeepApart = [][2]uint64{{0, 8}, {8, 8}}
	dot.Reset()
	rep.Structures[0].WriteDot(&dot)
	for _, want := range []string{
		`f0 -- f8 [label="keep apart", style=dashed, color=red`,
		`f8 -- f8 [label="keep apart"`,
	} {
		if !strings.Contains(dot.String(), want) {
			t.Errorf("dot graph missing keep-apart edge %q:\n%s", want, dot.String())
		}
	}
}
