// Package core is StructSlim's offline analyzer — the paper's primary
// contribution. It consumes a merged address-sample profile and the
// program binary and produces structure-splitting advice through the
// pipeline of Figure 2:
//
//  1. pinpoint hot data: rank logical data structures by their share of
//     total access latency, l_d (Equation 1), and keep the top few;
//  2. analyze access patterns: group samples into streams (one memory
//     instruction × one data structure), recover each stream's stride
//     with the GCD algorithm (Equations 2–3), derive the structure size
//     (Equation 5) and each stream's field offset (Equation 6);
//  3. compute field affinities: latency-weighted co-occurrence across
//     loops (Equation 7), cluster high-affinity fields, and emit the
//     split advice — as structured data, as paper-style struct
//     definitions, and as the dot affinity graph of Figure 6.
//
// Loops are recovered from the binary by interval analysis (package cfg);
// field names come from debug info (the program's struct-type registry)
// and are used only for presentation — every analysis decision is made on
// raw offsets, as on a real binary.
package core

import (
	"fmt"

	"repro/internal/affinity"
	"repro/internal/cfg"
	"repro/internal/profile"
	"repro/internal/prog"
)

// Options tunes the analyzer.
type Options struct {
	// TopK is how many data structures to analyze in depth, ranked by
	// l_d. The paper: "we only need to investigate the top three".
	TopK int
	// MinLd drops structures below this latency share (0..1) even inside
	// the top K.
	MinLd float64
	// AffinityThreshold is the clustering cut: fields joined by an edge
	// with A_ij at or above it are grouped into the same split struct.
	AffinityThreshold float64
	// MinStreamSamples is the minimum sample count for a stream's stride
	// to vote on the structure size (Equation 5). Equation 4 wants ~10
	// unique addresses for high confidence, but the cross-stream GCD
	// already corrects multiples, so the default is lower.
	MinStreamSamples uint64
	// KeepAllGroups retains insignificant structures in the report's
	// deep-dive list too (used by tests and ablations).
	KeepAllGroups bool
	// WeightByCount switches Equation 7 from latency-weighted to
	// access-count-weighted affinity — the Chilimbi-style baseline the
	// paper argues against. Exposed for the ablation study; the default
	// (false) is the paper's latency weighting.
	WeightByCount bool
	// AnalyticPhases lets the profiler skip VM and cache simulation for
	// phases whose every loop nest is exact tier with a confirmed static
	// reuse prediction: the phase's profile contribution is synthesized
	// analytically from the closed-form access schedule. Advice is
	// unchanged; phases outside the exact tier fall back to simulation.
	AnalyticPhases bool
	// Statistical switches the profiling run to sampled-window
	// statistical simulation: only StatWindow accesses of warmup before
	// each PEBS sample (plus the sample itself) run the full cache
	// model; the rest execute exactly but charge an estimated latency.
	// The set of sampled accesses — and hence every stride, size, and
	// offset the analyzer recovers — is unchanged; sample latencies and
	// timestamps are approximate, which can perturb latency-share
	// rankings slightly. Instruction-gated (IBS) sampling stays exact.
	Statistical bool
	// StatWindow is the per-sample warmup window in accesses (0 means
	// DefaultStatWindow). Larger windows cost more simulation and
	// recover more of the exact latency distribution.
	StatWindow int
}

// DefaultStatWindow is the warmup window used when Options.Statistical is
// set without an explicit window: enough accesses to repopulate the hot
// working set's cache lines ahead of each sample without giving back the
// speedup (see EXPERIMENTS.md for the measured window sweep).
const DefaultStatWindow = 64

// DefaultOptions mirrors the paper's settings.
func DefaultOptions() Options {
	return Options{
		TopK:              3,
		MinLd:             0.01,
		AffinityThreshold: 0.5,
		MinStreamSamples:  3,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.TopK == 0 {
		o.TopK = d.TopK
	}
	if o.AffinityThreshold == 0 {
		o.AffinityThreshold = d.AffinityThreshold
	}
	if o.MinStreamSamples == 0 {
		o.MinStreamSamples = d.MinStreamSamples
	}
	return o
}

// UnknownOffset marks samples whose field offset could not be resolved.
const UnknownOffset = ^uint64(0)

// Report is the analyzer's full output.
type Report struct {
	Program      string
	TotalLatency uint64
	NumSamples   uint64
	Threads      int
	OverheadPct  float64

	// Structures lists the analyzed (significant) data structures in
	// descending l_d order; Ranking summarizes every structure seen.
	Structures []*StructReport
	Ranking    []RankEntry

	Loops *cfg.ProgramLoops
}

// RankEntry is one row of the hot-data ranking (Equation 1).
type RankEntry struct {
	Identity   uint64
	Name       string
	Ld         float64
	LatencySum uint64
	NumSamples uint64
	Analyzed   bool
}

// StructReport is the deep analysis of one significant data structure.
type StructReport struct {
	Identity   uint64
	Name       string // display name: symbol, or heap@file:line
	TypeName   string // debug-info struct type name, "" if unknown
	Ld         float64
	LatencySum uint64
	NumSamples uint64
	NumObjects int // heap objects aggregated under this identity

	// InferredSize is Equation 5's result from sampled strides;
	// TrueSize is the debug-info size (0 when unavailable). The two are
	// reported side by side as a validation of the GCD analysis.
	InferredSize uint64
	TrueSize     int

	// LevelSamples histograms the structure's samples by serving data
	// source (index = cache.Result.Level: 1=L1 … N+1=memory), the
	// PEBS-LL "data source" breakdown.
	LevelSamples map[uint8]uint64

	Fields  []FieldReport
	Loops   []LoopReport
	Streams []StreamReport

	Affinity     *affinity.Matrix
	OffsetGroups [][]uint64
	Advice       *SplitAdvice

	// KeepApart lists field-offset pairs a sharing analysis wants on
	// different cache lines (false-sharing "negative affinities"). The
	// pairs are not produced by the profiler itself; callers running the
	// static sharing analyzer attach them so WriteDot can overlay them
	// on the affinity graph. A pair may relate an offset to itself: the
	// field false-shares with its own copies in neighboring elements.
	KeepApart [][2]uint64

	// Legality is the static transform-legality verdict for this
	// structure, attached by callers running the legality pass (like
	// KeepApart, it is not produced by the profiler itself). When set,
	// Optimize consults it before building a split layout.
	Legality *LegalitySummary

	// debugFields caches the debug-info field layout for name lookups.
	debugFields []prog.PhysField
}

// LegalitySummary condenses the alias/escape pass's per-object verdicts
// for one structure type into what the splitting machinery needs. When a
// type has several objects (a global array plus heap sites), the most
// restrictive verdict wins and keep-together pairs are unioned.
type LegalitySummary struct {
	// Verdict is "split-safe", "keep-together", or "frozen".
	Verdict string
	// Reason is the principal evidence line for a restrictive verdict
	// ("" for split-safe).
	Reason string
	// Pairs lists field-name pairs that must share a split group.
	Pairs [][2]string
	// AllFields means no split of this structure is useful: every field
	// must stay in one group.
	AllFields bool
}

// Frozen reports whether the verdict forbids any layout change.
func (l *LegalitySummary) Frozen() bool { return l != nil && l.Verdict == "frozen" }

// FieldReport aggregates one field (identified by offset) program-wide —
// the paper's Table 5 rows.
type FieldReport struct {
	Offset     uint64
	Name       string
	LatencySum uint64
	Share      float64 // of this structure's latency
	Samples    uint64
	Writes     uint64
}

// LoopReport aggregates one loop's accesses to the structure — the
// paper's Table 6 rows.
type LoopReport struct {
	Loop       *cfg.LoopInfo // nil for accesses outside any loop
	Name       string
	LatencySum uint64
	Share      float64
	Offsets    []uint64
	FieldNames []string
}

// StreamReport is the per-stream diagnostic view.
type StreamReport struct {
	IP         uint64
	Where      string // file:line
	LoopName   string // "" when outside loops
	Stride     uint64
	Offset     uint64 // UnknownOffset if unresolved
	Samples    uint64
	LatencySum uint64
	VotedSize  bool // contributed to Equation 5
}

// SplitAdvice is the actionable output: a partition of the structure's
// fields into new structs.
type SplitAdvice struct {
	StructName string
	// Groups partitions field names; Offsets holds the corresponding
	// sampled offsets (empty for fields never sampled, which become
	// singleton groups).
	Groups  [][]string
	Offsets [][]uint64
	// Complete is true when debug info allowed covering every field of
	// the record, so the advice is a valid total partition.
	Complete bool
}

// Analyze runs the full pipeline: accumulate per-identity state in one
// pass over the samples (see online.go), then build the report from the
// accumulators and the merged stream statistics.
func Analyze(p *profile.Profile, program *prog.Program, opt Options) (*Report, error) {
	if p == nil || program == nil {
		return nil, fmt.Errorf("nil profile or program")
	}
	loops, err := cfg.AnalyzeLoops(program)
	if err != nil {
		return nil, err
	}
	accums := AccumulateProfile(p, loops)
	meta := ReportMeta{
		Program:      program.Name,
		TotalLatency: p.TotalLatency,
		NumSamples:   p.NumSamples,
		Threads:      p.Threads,
		OverheadPct:  p.OverheadPct(),
	}
	return BuildReport(meta, accums, p.Streams, p.ObjByID, program, loops, opt)
}

// displayName renders a structure's identity for humans: the symbol name
// for statics, the allocation site for heap identities.
func displayName(obj *profile.ObjInfo, program *prog.Program) string {
	if obj == nil {
		return "?"
	}
	if !obj.Heap {
		return obj.Name
	}
	if file, line := program.LineOf(obj.AllocIP); file != "" {
		return fmt.Sprintf("heap@%s:%d", file, line)
	}
	return obj.Name
}

// fieldName resolves an offset to a field name via debug info; offsets in
// padding or without debug info render positionally.
func (sr *StructReport) fieldName(off uint64) string {
	if sr.TrueSize > 0 {
		// InferredSize may be a multiple of the true size; normalize.
		o := off % uint64(sr.TrueSize)
		if sr.TypeName != "" {
			if f := sr.debugFieldAt(int(o)); f != nil {
				return f.Name
			}
		}
	}
	return fmt.Sprintf("+%d", off)
}

// debugField finds the debug field covering an offset. StructReport does
// not retain the *StructType to stay serialization-friendly, so the
// analyzer stashes the fields it needs.
func (sr *StructReport) debugFieldAt(off int) *prog.PhysField {
	for i := range sr.debugFields {
		f := &sr.debugFields[i]
		if off >= f.Offset && off < f.Offset+f.Size {
			return f
		}
	}
	return nil
}

// buildAdvice converts offset clusters into a field partition. With debug
// info the partition is completed with never-sampled fields as singleton
// groups (the paper's ART splitting gives cold field R its own struct).
func (sr *StructReport) buildAdvice(debugType *prog.StructType) *SplitAdvice {
	if len(sr.OffsetGroups) == 0 {
		return nil
	}
	adv := &SplitAdvice{StructName: sr.Name}
	if sr.TypeName != "" {
		adv.StructName = sr.TypeName
	}
	covered := make(map[string]bool)
	for _, og := range sr.OffsetGroups {
		names := make([]string, 0, len(og))
		seen := make(map[string]bool)
		for _, off := range og {
			n := sr.fieldName(off)
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
				covered[n] = true
			}
		}
		adv.Groups = append(adv.Groups, names)
		adv.Offsets = append(adv.Offsets, og)
	}
	if debugType != nil {
		complete := true
		for _, f := range debugType.Fields {
			if !covered[f.Name] {
				adv.Groups = append(adv.Groups, []string{f.Name})
				adv.Offsets = append(adv.Offsets, nil)
			}
		}
		// Positional names mean some sampled offsets hit padding or the
		// size inference disagreed with debug info; the partition then
		// is not guaranteed total over real fields.
		for n := range covered {
			if len(n) > 0 && n[0] == '+' {
				complete = false
			}
		}
		adv.Complete = complete
	}
	return adv
}

func streamReport(ip uint64, stat *profile.StreamStat, voted bool, off uint64, program *prog.Program, loops *cfg.ProgramLoops) StreamReport {
	rep := StreamReport{
		IP:         ip,
		Stride:     stat.GCD,
		Offset:     off,
		Samples:    stat.Count,
		LatencySum: stat.LatencySum,
		VotedSize:  voted,
	}
	if file, line := program.LineOf(ip); file != "" {
		rep.Where = fmt.Sprintf("%s:%d", file, line)
	}
	if li := loops.LoopOfIP(ip); li != nil {
		rep.LoopName = li.Name()
	}
	return rep
}
