package core

import (
	"sort"

	"repro/internal/affinity"
	"repro/internal/cfg"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/stride"
)

// This file is the analyzer's incremental accumulation layer. The paper's
// pipeline looks two-pass — Equation 5 fixes the structure size from
// stream strides, then Equation 6 folds every sample's address into a
// field offset mod that size — which would force any online consumer to
// retain raw samples until the size settles. The accumulator sidesteps
// that: per-sample state is keyed by the *raw* element offset (EA − object
// base), which needs no size, and the mod-size fold happens once at
// report time. Folding aggregated cells is arithmetically identical to
// folding samples one by one, so the batch Analyze and the streaming
// analyzer (internal/stream) share this code and produce byte-identical
// reports from the same event stream.

// CellKey addresses one accumulation cell of an identity: the sampled
// instruction, its innermost loop, and the raw element offset.
type CellKey struct {
	// LoopKey is the innermost loop containing the instruction (0 =
	// outside all loops) — the aggregation key of the loop table
	// (Table 6) and of in-loop affinity regions (Equation 7).
	LoopKey uint64
	// IP is the sampled instruction; out-of-loop samples get a
	// per-instruction pseudo-region keyed by it.
	IP uint64
	// RawOff is EA − object base: the element offset before Equation 6's
	// mod-size fold.
	RawOff uint64
}

// CellStat is the per-cell tally.
type CellStat struct {
	Latency uint64
	Samples uint64
	Writes  uint64
}

// IdentityAccum is the order-insensitive per-sample state of one logical
// data structure. Accumulators merge by summation, so per-thread (or
// per-session) instances combine into the program-wide view in any order.
type IdentityAccum struct {
	Identity uint64
	Latency  uint64
	Samples  uint64
	// Objects is the set of concrete data objects aggregated under this
	// identity (per-process object IDs).
	Objects map[int32]bool
	// AnyObj carries identity-level display metadata (name, allocation
	// IP, debug type). The lowest-ID object is kept so the choice is
	// deterministic regardless of sample or merge order.
	AnyObj profile.ObjInfo
	HasObj bool
	Cells  map[CellKey]*CellStat
	Levels map[uint8]uint64
}

// NewIdentityAccum returns an empty accumulator for one identity.
func NewIdentityAccum(identity uint64) *IdentityAccum {
	return &IdentityAccum{
		Identity: identity,
		Objects:  make(map[int32]bool),
		Cells:    make(map[CellKey]*CellStat),
		Levels:   make(map[uint8]uint64),
	}
}

// AddSample folds one attributed sample (obj must be the sample's resolved
// object) into the accumulator. loops may be nil (streaming without the
// binary): all samples then land in the outside-loops pseudo-region,
// which is fine for the ranking and stride views that work without it.
func (a *IdentityAccum) AddSample(s *profile.Sample, obj *profile.ObjInfo, loops *cfg.ProgramLoops) {
	a.Latency += uint64(s.Latency)
	a.Samples++
	a.Objects[s.ObjID] = true
	if !a.HasObj || obj.ID < a.AnyObj.ID {
		a.AnyObj = *obj
		a.HasObj = true
	}
	var loopKey uint64
	if loops != nil {
		if li := loops.LoopOfIP(s.IP); li != nil {
			loopKey = li.Key
		}
	}
	ck := CellKey{LoopKey: loopKey, IP: s.IP, RawOff: s.EA - obj.Base}
	cs := a.Cells[ck]
	if cs == nil {
		cs = &CellStat{}
		a.Cells[ck] = cs
	}
	cs.Latency += uint64(s.Latency)
	cs.Samples++
	if s.Write {
		cs.Writes++
	}
	a.Levels[s.Level]++
}

// Merge folds b into a. Both sides must describe the same identity within
// one process (shared object-ID space).
func (a *IdentityAccum) Merge(b *IdentityAccum) {
	a.Latency += b.Latency
	a.Samples += b.Samples
	for id := range b.Objects {
		a.Objects[id] = true
	}
	if b.HasObj && (!a.HasObj || b.AnyObj.ID < a.AnyObj.ID) {
		a.AnyObj = b.AnyObj
		a.HasObj = true
	}
	for ck, cs := range b.Cells {
		dst := a.Cells[ck]
		if dst == nil {
			cp := *cs
			a.Cells[ck] = &cp
			continue
		}
		dst.Latency += cs.Latency
		dst.Samples += cs.Samples
		dst.Writes += cs.Writes
	}
	for lvl, n := range b.Levels {
		a.Levels[lvl] += n
	}
}

// Clone deep-copies the accumulator.
func (a *IdentityAccum) Clone() *IdentityAccum {
	cp := NewIdentityAccum(a.Identity)
	cp.Merge(a)
	return cp
}

// AccumulateProfile builds per-identity accumulators from a merged
// profile in one pass over its samples.
func AccumulateProfile(p *profile.Profile, loops *cfg.ProgramLoops) map[uint64]*IdentityAccum {
	objByID := make(map[int32]*profile.ObjInfo, len(p.Objects))
	for i := range p.Objects {
		objByID[p.Objects[i].ID] = &p.Objects[i]
	}
	accums := make(map[uint64]*IdentityAccum)
	for i := range p.Samples {
		s := &p.Samples[i]
		if s.ObjID < 0 {
			continue
		}
		obj := objByID[s.ObjID]
		if obj == nil {
			continue
		}
		acc := accums[obj.Identity]
		if acc == nil {
			acc = NewIdentityAccum(obj.Identity)
			accums[obj.Identity] = acc
		}
		acc.AddSample(s, obj, loops)
	}
	return accums
}

// IdentityDisplayName renders a structure identity's human name the way
// the report does: the symbol name for statics, the allocation site for
// heap identities. Exported for the streaming analyzer's live view.
func IdentityDisplayName(obj *profile.ObjInfo, program *prog.Program) string {
	if program == nil {
		if obj == nil {
			return "?"
		}
		return obj.Name
	}
	return displayName(obj, program)
}

// ReportMeta is the whole-run header of a report.
type ReportMeta struct {
	Program      string
	TotalLatency uint64
	NumSamples   uint64
	Threads      int
	OverheadPct  float64
}

// BuildReport assembles the full analysis from accumulated state: the
// hot-data ranking (Equation 1) over the accumulators, and for each
// significant structure the size recovery, field/loop tables, affinities,
// and splitting advice. objOf resolves object IDs for stream-offset
// diagnostics (profile.Profile.ObjByID for the batch path). Both the
// batch Analyze and the streaming analyzer end here, which is what makes
// their outputs byte-identical.
func BuildReport(
	meta ReportMeta,
	accums map[uint64]*IdentityAccum,
	streams map[profile.StreamKey]*profile.StreamStat,
	objOf func(int32) *profile.ObjInfo,
	program *prog.Program,
	loops *cfg.ProgramLoops,
	opt Options,
) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		Program:      meta.Program,
		TotalLatency: meta.TotalLatency,
		NumSamples:   meta.NumSamples,
		Threads:      meta.Threads,
		OverheadPct:  meta.OverheadPct,
		Loops:        loops,
	}

	ranked := make([]*IdentityAccum, 0, len(accums))
	for _, acc := range accums {
		ranked = append(ranked, acc)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Latency != ranked[j].Latency {
			return ranked[i].Latency > ranked[j].Latency
		}
		return ranked[i].Identity < ranked[j].Identity
	})

	for rank, acc := range ranked {
		ld := 0.0
		if meta.TotalLatency > 0 {
			ld = float64(acc.Latency) / float64(meta.TotalLatency)
		}
		analyzed := (rank < opt.TopK && ld >= opt.MinLd) || opt.KeepAllGroups
		rep.Ranking = append(rep.Ranking, RankEntry{
			Identity:   acc.Identity,
			Name:       displayName(&acc.AnyObj, program),
			Ld:         ld,
			LatencySum: acc.Latency,
			NumSamples: acc.Samples,
			Analyzed:   analyzed,
		})
		if !analyzed {
			continue
		}
		rep.Structures = append(rep.Structures, finalizeStruct(acc, ld, streams, objOf, program, loops, opt))
	}
	return rep, nil
}

// finalizeStruct runs stages 2 and 3 for one structure from its
// accumulator and the merged stream statistics.
func finalizeStruct(
	acc *IdentityAccum,
	ld float64,
	allStreams map[profile.StreamKey]*profile.StreamStat,
	objOf func(int32) *profile.ObjInfo,
	program *prog.Program,
	loops *cfg.ProgramLoops,
	opt Options,
) *StructReport {
	sr := &StructReport{
		Identity:     acc.Identity,
		Name:         displayName(&acc.AnyObj, program),
		Ld:           ld,
		LatencySum:   acc.Latency,
		NumSamples:   acc.Samples,
		NumObjects:   len(acc.Objects),
		LevelSamples: make(map[uint8]uint64),
	}

	// Debug info (used for validation and naming only).
	var debugType *prog.StructType
	if acc.AnyObj.TypeID >= 0 && int(acc.AnyObj.TypeID) < len(program.Types) {
		debugType = program.Types[acc.AnyObj.TypeID]
		sr.TypeName = debugType.Name
		sr.TrueSize = debugType.Size
		sr.debugFields = debugType.Fields
	}

	// --- Stage 2a: streams and strides (Equations 2–3, 5) ---------------
	type streamInfo struct {
		key   profile.StreamKey
		stat  *profile.StreamStat
		voted bool
	}
	var streams []streamInfo
	var sizeVotes []uint64
	for key, stat := range allStreams {
		if key.Identity != acc.Identity {
			continue
		}
		si := streamInfo{key: key, stat: stat}
		if stat.Count >= opt.MinStreamSamples && stat.GCD >= stride.MinMeaningfulStride {
			si.voted = true
			sizeVotes = append(sizeVotes, stat.GCD)
		}
		streams = append(streams, si)
	}
	sort.Slice(streams, func(i, j int) bool {
		if streams[i].key.IP != streams[j].key.IP {
			return streams[i].key.IP < streams[j].key.IP
		}
		return streams[i].key.Ctx < streams[j].key.Ctx
	})
	sr.InferredSize = stride.StructSize(sizeVotes)

	size := sr.InferredSize
	if size == 0 {
		// No regular stream pinned the size: the structure is accessed
		// irregularly everywhere; report streams but no field analysis.
		for _, si := range streams {
			sr.Streams = append(sr.Streams, streamReport(si.key.IP, si.stat, si.voted, UnknownOffset, program, loops))
		}
		return sr
	}
	for lvl, n := range acc.Levels {
		sr.LevelSamples[lvl] = n
	}

	// --- Stage 2b: fold cells mod size — offsets, field and loop tables -
	fieldLat := make(map[uint64]uint64)
	fieldSamples := make(map[uint64]uint64)
	fieldWrites := make(map[uint64]uint64)
	type loopAgg struct {
		lat     uint64
		offsets map[uint64]bool
	}
	loopTab := make(map[uint64]*loopAgg) // loop key (0 = outside)
	ab := affinity.NewBuilder()

	for ck, cs := range acc.Cells {
		off := ck.RawOff % size // Equation 6
		fieldLat[off] += cs.Latency
		fieldSamples[off] += cs.Samples
		fieldWrites[off] += cs.Writes

		la := loopTab[ck.LoopKey]
		if la == nil {
			la = &loopAgg{offsets: make(map[uint64]bool)}
			loopTab[ck.LoopKey] = la
		}
		la.lat += cs.Latency
		la.offsets[off] = true

		// Affinity (Equation 7) counts co-occurrence within loops.
		// Accesses outside any loop get a per-instruction pseudo-region
		// so unrelated straight-line code does not fake co-occurrence.
		affKey := ck.LoopKey
		if affKey == 0 {
			affKey = ck.IP | 1<<63
		}
		weight := cs.Latency
		if opt.WeightByCount {
			weight = cs.Samples
		}
		ab.Add(affKey, off, weight)
	}

	// Field table (Table 5).
	offsets := make([]uint64, 0, len(fieldLat))
	for off := range fieldLat {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	for _, off := range offsets {
		fr := FieldReport{
			Offset:     off,
			Name:       sr.fieldName(off),
			LatencySum: fieldLat[off],
			Samples:    fieldSamples[off],
			Writes:     fieldWrites[off],
		}
		if acc.Latency > 0 {
			fr.Share = float64(fr.LatencySum) / float64(acc.Latency)
		}
		sr.Fields = append(sr.Fields, fr)
	}

	// Loop table (Table 6).
	for key, la := range loopTab {
		lr := LoopReport{LatencySum: la.lat}
		if acc.Latency > 0 {
			lr.Share = float64(la.lat) / float64(acc.Latency)
		}
		if key != 0 {
			lr.Loop = loops.Info(key)
			if lr.Loop != nil {
				lr.Name = lr.Loop.Name()
			}
		} else {
			lr.Name = "(outside loops)"
		}
		for off := range la.offsets {
			lr.Offsets = append(lr.Offsets, off)
		}
		sort.Slice(lr.Offsets, func(i, j int) bool { return lr.Offsets[i] < lr.Offsets[j] })
		for _, off := range lr.Offsets {
			lr.FieldNames = append(lr.FieldNames, sr.fieldName(off))
		}
		sr.Loops = append(sr.Loops, lr)
	}
	sort.Slice(sr.Loops, func(i, j int) bool {
		if sr.Loops[i].LatencySum != sr.Loops[j].LatencySum {
			return sr.Loops[i].LatencySum > sr.Loops[j].LatencySum
		}
		// Ties break on (FnID, LoopID) — the canonical loop order — so
		// renderings are byte-identical across runs.
		li, lj := sr.Loops[i].Loop, sr.Loops[j].Loop
		if li != nil && lj != nil {
			if li.FnID != lj.FnID {
				return li.FnID < lj.FnID
			}
			return li.LoopID < lj.LoopID
		}
		return sr.Loops[i].Name < sr.Loops[j].Name
	})

	// Stream diagnostics, with each stream's resolved offset.
	for _, si := range streams {
		off := UnknownOffset
		if obj := objOf(si.stat.FirstObjID); obj != nil {
			off = stride.Offset(si.stat.FirstEA, obj.Base, size)
		}
		sr.Streams = append(sr.Streams, streamReport(si.key.IP, si.stat, si.voted, off, program, loops))
	}

	// --- Stage 3: affinities and clustering (Equation 7) -----------------
	sr.Affinity = ab.Compute()
	sr.OffsetGroups = sr.Affinity.Cluster(opt.AffinityThreshold)
	sr.Advice = sr.buildAdvice(debugType)
	return sr
}
