package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/prog"
)

// RenderText writes the full human-readable report: the hot-data ranking,
// and for each analyzed structure the field table (Table 5 style), the
// loop table (Table 6 style), affinities, and splitting advice.
func (r *Report) RenderText(w io.Writer) {
	fmt.Fprintf(w, "StructSlim report for %s\n", r.Program)
	fmt.Fprintf(w, "  samples: %d   total latency: %d cycles   threads: %d   measurement overhead: %.2f%%\n\n",
		r.NumSamples, r.TotalLatency, r.Threads, r.OverheadPct)

	fmt.Fprintf(w, "Hot data structures (l_d, Equation 1):\n")
	for _, e := range r.Ranking {
		mark := " "
		if e.Analyzed {
			mark = "*"
		}
		fmt.Fprintf(w, "  %s %-32s l_d=%6.2f%%  latency=%-10d samples=%d\n",
			mark, e.Name, 100*e.Ld, e.LatencySum, e.NumSamples)
	}
	fmt.Fprintln(w)

	for _, sr := range r.Structures {
		sr.renderText(w)
	}
}

func (sr *StructReport) renderText(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", sr.Name)
	if sr.TypeName != "" {
		fmt.Fprintf(w, "  type %s (debug info), true size %d bytes\n", sr.TypeName, sr.TrueSize)
	}
	fmt.Fprintf(w, "  l_d=%.2f%%  latency=%d  objects=%d  inferred struct size: %d bytes\n",
		100*sr.Ld, sr.LatencySum, sr.NumObjects, sr.InferredSize)

	if len(sr.LevelSamples) > 0 {
		fmt.Fprintf(w, "  Data sources:")
		names := []string{"", "L1", "L2", "L3", "mem", "mem", "mem"}
		for lvl := uint8(1); lvl < 7; lvl++ {
			if n := sr.LevelSamples[lvl]; n > 0 {
				nm := "mem"
				if int(lvl) < len(names) && names[lvl] != "" {
					nm = names[lvl]
				}
				fmt.Fprintf(w, "  %s=%d", nm, n)
			}
		}
		fmt.Fprintln(w)
	}
	if len(sr.Fields) > 0 {
		fmt.Fprintf(w, "  Fields (by access latency):\n")
		for _, f := range sr.Fields {
			fmt.Fprintf(w, "    %-12s offset %-4d  %6.2f%%  latency=%-9d samples=%d\n",
				f.Name, f.Offset, 100*f.Share, f.LatencySum, f.Samples)
		}
	}
	if len(sr.Loops) > 0 {
		fmt.Fprintf(w, "  Loops:\n")
		for _, l := range sr.Loops {
			fmt.Fprintf(w, "    %-22s %6.2f%%  fields: %s\n",
				l.Name, 100*l.Share, strings.Join(l.FieldNames, ","))
		}
	}
	if sr.Affinity != nil && len(sr.Affinity.Edges) > 0 {
		fmt.Fprintf(w, "  Affinities (Equation 7):\n")
		for _, e := range sr.Affinity.Edges {
			fmt.Fprintf(w, "    A(%s, %s) = %.2f\n", sr.fieldName(e.OffA), sr.fieldName(e.OffB), e.Value)
		}
	}
	if len(sr.Streams) > 0 {
		fmt.Fprintf(w, "  Streams (instruction × context × structure; * voted on size):\n")
		shown := sr.Streams
		const maxStreams = 24
		if len(shown) > maxStreams {
			shown = shown[:maxStreams]
		}
		for _, st := range shown {
			voted := " "
			if st.VotedSize {
				voted = "*"
			}
			off := "?"
			if st.Offset != UnknownOffset {
				off = fmt.Sprintf("%d", st.Offset)
			}
			fmt.Fprintf(w, "    %s ip=%#x %-18s stride=%-5d offset=%-4s samples=%-5d latency=%d\n",
				voted, st.IP, st.Where, st.Stride, off, st.Samples, st.LatencySum)
		}
		if len(sr.Streams) > maxStreams {
			fmt.Fprintf(w, "    … %d more\n", len(sr.Streams)-maxStreams)
		}
	}
	switch {
	case sr.Advice == nil:
	case len(sr.Advice.Groups) < 2:
		fmt.Fprintf(w, "  No split recommended: all sampled fields belong together.\n")
	default:
		fmt.Fprintf(w, "  Splitting advice:\n%s", indent(sr.Advice.RenderStructs(sr.debugFields), "    "))
	}
	if lg := sr.Legality; lg != nil {
		fmt.Fprintf(w, "  Transform legality: %s", strings.ToUpper(lg.Verdict))
		if lg.AllFields {
			fmt.Fprintf(w, " {all fields}")
		}
		for _, p := range lg.Pairs {
			fmt.Fprintf(w, " {%s,%s}", p[0], p[1])
		}
		fmt.Fprintln(w)
		if lg.Reason != "" {
			fmt.Fprintf(w, "    %s\n", lg.Reason)
		}
	}
	fmt.Fprintln(w)
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// RenderStructs renders the advice as C-like struct definitions, the form
// the paper's Figures 7–13 use. Field types come from debug sizes when
// available.
func (a *SplitAdvice) RenderStructs(debugFields []prog.PhysField) string {
	var sb strings.Builder
	sizeOf := make(map[string]int, len(debugFields))
	floatOf := make(map[string]bool, len(debugFields))
	for _, f := range debugFields {
		sizeOf[f.Name] = f.Size
		floatOf[f.Name] = f.Float
	}
	ctype := func(name string) string {
		sz, ok := sizeOf[name]
		if !ok {
			return "word"
		}
		if floatOf[name] {
			return "double"
		}
		switch sz {
		case 1:
			return "char"
		case 2:
			return "short"
		case 4:
			return "int"
		case 8:
			return "long"
		default:
			return fmt.Sprintf("char[%d]", sz)
		}
	}
	for gi, g := range a.Groups {
		name := a.StructName
		if len(a.Groups) > 1 {
			name = fmt.Sprintf("%s_%d", a.StructName, gi)
		}
		fmt.Fprintf(&sb, "struct %s { ", name)
		for _, f := range g {
			fmt.Fprintf(&sb, "%s %s; ", ctype(f), f)
		}
		fmt.Fprintf(&sb, "};\n")
	}
	return sb.String()
}

// RenderAdvice renders the structure's splitting advice as paper-style
// struct definitions, typed via the debug-info field layout when known.
// Returns "" when there is no advice.
func (sr *StructReport) RenderAdvice() string {
	if sr.Advice == nil {
		return ""
	}
	return sr.Advice.RenderStructs(sr.debugFields)
}

// FieldGroups returns the advised partition as field-name groups,
// deterministic and suitable for prog.Split / the split package.
func (a *SplitAdvice) FieldGroups() [][]string {
	out := make([][]string, len(a.Groups))
	for i, g := range a.Groups {
		out[i] = append([]string(nil), g...)
	}
	return out
}

// WriteDot emits the affinity graph in Graphviz dot format — the paper's
// Figure 6: nodes are structure fields (labeled with their latency
// share), undirected weighted edges are affinities, and the advised
// clusters are rendered as subgraphs.
func (sr *StructReport) WriteDot(w io.Writer) {
	fmt.Fprintf(w, "graph affinity_%s {\n", sanitizeDotID(sr.Name))
	fmt.Fprintf(w, "  label=\"field affinities of %s\";\n", sr.Name)
	fmt.Fprintf(w, "  node [shape=ellipse];\n")

	share := make(map[uint64]float64, len(sr.Fields))
	for _, f := range sr.Fields {
		share[f.Offset] = f.Share
	}
	for gi, g := range sr.OffsetGroups {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n", gi)
		fmt.Fprintf(w, "    style=dashed;\n")
		for _, off := range g {
			fmt.Fprintf(w, "    f%d [label=\"%s\\n%.1f%%\"];\n", off, sr.fieldName(off), 100*share[off])
		}
		fmt.Fprintf(w, "  }\n")
	}
	if sr.Affinity != nil {
		// Edges are already sorted by (OffA, OffB) by construction.
		for _, e := range sr.Affinity.Edges {
			if e.Value <= 0 {
				continue
			}
			fmt.Fprintf(w, "  f%d -- f%d [label=\"%.2f\", weight=%d];\n",
				e.OffA, e.OffB, e.Value, int(e.Value*100))
		}
	}
	// Keep-apart pairs overlay the affinity edges as dashed red
	// constraints: whatever the locality says, these fields must not
	// share a cache line.
	for _, ka := range sr.KeepApart {
		fmt.Fprintf(w, "  f%d -- f%d [label=\"keep apart\", style=dashed, color=red, constraint=false];\n",
			ka[0], ka[1])
	}
	fmt.Fprintf(w, "}\n")
}

func sanitizeDotID(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
