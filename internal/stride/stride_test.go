package stride

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOfAddressesPaperExample(t *testing.T) {
	// Paper Section 4.2.2: samples Arr[2].a, Arr[5].a, Arr[7].a of a
	// 16-byte struct → deltas 48, 32 → stride 16.
	addrs := []uint64{2 * 16, 5 * 16, 7 * 16}
	if got := OfAddresses(addrs); got != 16 {
		t.Errorf("stride = %d, want 16", got)
	}
}

func TestOfAddressesDegenerate(t *testing.T) {
	if OfAddresses(nil) != 0 {
		t.Error("empty stream should give 0")
	}
	if OfAddresses([]uint64{100}) != 0 {
		t.Error("single sample should give 0")
	}
	if OfAddresses([]uint64{100, 100, 100}) != 0 {
		t.Error("repeated address should give 0")
	}
}

func TestOfAddressesMultipleOfStride(t *testing.T) {
	// Sampling only even elements yields 2× the real stride — the
	// known failure mode Equation 4 quantifies.
	addrs := []uint64{0 * 16, 2 * 16, 4 * 16, 6 * 16}
	if got := OfAddresses(addrs); got != 32 {
		t.Errorf("stride = %d, want 32 (multiple of the real stride)", got)
	}
}

func TestOfAddressesIsMultipleProperty(t *testing.T) {
	// For any sample positions of a stride-S stream, the computed stride
	// is a multiple of S (or 0 when <2 distinct samples).
	f := func(positions []uint16, strideSel uint8) bool {
		stride := []uint64{8, 16, 24, 56, 64}[int(strideSel)%5]
		addrs := make([]uint64, len(positions))
		for i, p := range positions {
			addrs[i] = uint64(p) * stride
		}
		g := OfAddresses(addrs)
		return g == 0 || g%stride == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStructSize(t *testing.T) {
	cases := []struct {
		strides []uint64
		want    uint64
	}{
		{[]uint64{48, 32, 16}, 16},
		{[]uint64{112, 56}, 56},   // TSP tree: one stream sampled every other node
		{[]uint64{0, 24, 48}, 24}, // 0 (singleton stream) ignored
		{[]uint64{1, 64}, 64},     // irregular stream ignored
		{[]uint64{0, 1}, 0},       // nothing meaningful
		{nil, 0},
	}
	for _, c := range cases {
		if got := StructSize(c.strides); got != c.want {
			t.Errorf("StructSize(%v) = %d, want %d", c.strides, got, c.want)
		}
	}
}

func TestOffset(t *testing.T) {
	// f1_neuron-like: 64-byte struct, field at +8.
	base := uint64(0x10000000)
	ea := base + 37*64 + 8
	if got := Offset(ea, base, 64); got != 8 {
		t.Errorf("offset = %d, want 8", got)
	}
	if got := Offset(base, base, 64); got != 0 {
		t.Errorf("offset = %d, want 0", got)
	}
}

func TestAccuracyLowerBound(t *testing.T) {
	// Paper: "if k is larger than 10, the accuracy can be higher than
	// 99%".
	if got := AccuracyLowerBound(10); got <= 0.99 {
		t.Errorf("bound(10) = %v, want > 0.99", got)
	}
	// Monotone in k.
	prev := 0.0
	for k := 2; k <= 20; k++ {
		b := AccuracyLowerBound(k)
		if b < prev {
			t.Fatalf("bound not monotone at k=%d: %v < %v", k, b, prev)
		}
		prev = b
	}
	if AccuracyLowerBound(1) != 0 {
		t.Error("k=1 should give 0")
	}
	// k=2: 1 − Σ p^−2 ≈ 1 − 0.4522 (prime zeta at 2).
	if got := AccuracyLowerBound(2); math.Abs(got-(1-0.4522474200)) > 1e-4 {
		t.Errorf("bound(2) = %v", got)
	}
}

func TestAccuracyExact(t *testing.T) {
	// Exact accuracy approaches the closed-form bound from below as n
	// grows, and both are near 1 for k = 10.
	exact := AccuracyExact(100000, 10)
	bound := AccuracyLowerBound(10)
	if exact <= 0.99 {
		t.Errorf("exact(1e5, 10) = %v, want > 0.99", exact)
	}
	if math.Abs(exact-bound) > 1e-3 {
		t.Errorf("exact %v and bound %v should be close for large n", exact, bound)
	}
	// Degenerate shapes.
	if AccuracyExact(5, 10) != 0 || AccuracyExact(100, 1) != 0 {
		t.Error("degenerate accuracy should be 0")
	}
	// Small k on a small stream is meaningfully inaccurate.
	if got := AccuracyExact(100, 2); got > 0.9 {
		t.Errorf("exact(100, 2) = %v, should show real error mass", got)
	}
}

func TestBinomRatio(t *testing.T) {
	// C(5,2)/C(10,2) = 10/45.
	if got := binomRatio(5, 10, 2); math.Abs(got-10.0/45.0) > 1e-12 {
		t.Errorf("binomRatio = %v", got)
	}
}

func TestPrimesUnder(t *testing.T) {
	got := primesUnder(30)
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("primes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("primes = %v", got)
		}
	}
	if primesUnder(2) != nil {
		t.Error("primesUnder(2) should be empty")
	}
}

// TestSimulateMatchesCorrectedModel validates the corrected analytic
// model against Monte Carlo: they must agree within noise for k ≥ 4.
// (Equation 4 as printed undercounts failures by a factor of p per prime;
// see AccuracyCorrected.)
func TestSimulateMatchesCorrectedModel(t *testing.T) {
	n := 10000
	for _, k := range []int{4, 6, 10} {
		sim := SimulateAccuracy(n, k, 4000, 16, 42)
		model := AccuracyCorrected(k)
		if math.Abs(sim-model) > 0.03 {
			t.Errorf("k=%d: simulated %v vs corrected model %v", k, sim, model)
		}
	}
	s10 := SimulateAccuracy(n, 10, 2000, 16, 42)
	s3 := SimulateAccuracy(n, 3, 2000, 16, 42)
	if s10 <= s3 {
		t.Errorf("accuracy should improve with k: k10=%v k3=%v", s10, s3)
	}
	// The paper's headline claim holds under the corrected model too.
	if s10 < 0.99 {
		t.Errorf("k=10 accuracy = %v, want ≥ 0.99", s10)
	}
	if AccuracyCorrected(10) < 0.99 {
		t.Errorf("corrected model at k=10 = %v, want ≥ 0.99", AccuracyCorrected(10))
	}
	// Two samples almost never pin the stride of a long stream.
	if s2 := SimulateAccuracy(n, 2, 2000, 16, 42); s2 > 0.05 {
		t.Errorf("k=2 accuracy = %v, expected ≈0", s2)
	}
	if AccuracyCorrected(2) != 0 {
		t.Error("corrected model must report 0 at k=2 (divergent sum)")
	}
}

func TestSimulateDegenerate(t *testing.T) {
	if SimulateAccuracy(10, 1, 100, 8, 1) != 0 {
		t.Error("k<2 should give 0")
	}
	if SimulateAccuracy(5, 10, 100, 8, 1) != 0 {
		t.Error("n<k should give 0")
	}
	if SimulateAccuracy(100, 5, 0, 8, 1) != 0 {
		t.Error("no trials should give 0")
	}
}

func TestSimulateNonUnitStride(t *testing.T) {
	// The accuracy analysis generalizes to any real stride (paper: "for
	// real stride of different values, we can get a similar equation and
	// conclusion").
	for _, stride := range []uint64{8, 24, 56, 64} {
		sim := SimulateAccuracy(5000, 12, 1000, stride, 7)
		if sim < 0.99 {
			t.Errorf("stride %d: accuracy %v, want ≥ 0.99", stride, sim)
		}
	}
}
