// Package stride implements StructSlim's GCD stride analysis (Section 4.2
// of the paper): recovering an access stride from sparse address samples
// (Equations 2–3), the structure size from stream strides (Equation 5),
// field offsets (Equation 6), and the accuracy model of Equation 4 with a
// Monte-Carlo checker.
package stride

import (
	"math"
	"sort"
)

// gcd64 is Euclid's algorithm.
func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// OfAddresses computes the stream stride from sampled effective addresses
// in observation order: the GCD of |m_i − m_{i−1}| over adjacent samples
// (Equations 2–3). Duplicate adjacent addresses contribute nothing.
// Returns 0 when fewer than two distinct addresses were seen.
func OfAddresses(addrs []uint64) uint64 {
	var g uint64
	for i := 1; i < len(addrs); i++ {
		var d uint64
		if addrs[i] >= addrs[i-1] {
			d = addrs[i] - addrs[i-1]
		} else {
			d = addrs[i-1] - addrs[i]
		}
		g = gcd64(g, d)
	}
	return g
}

// MinMeaningfulStride is the smallest stride that indicates an aggregate
// access pattern. The paper: "access patterns with stride 1, either
// regular or irregular, are not of interest for StructSlim because there
// is no structure splitting opportunity"; the GCD algorithm also reports
// irregular patterns as stride 1.
const MinMeaningfulStride = 2

// StructSize aggregates stream strides into the structure size by taking
// their GCD (Equation 5). Strides of 0 (streams with one distinct
// address) and 1 (irregular or unit-stride streams, per the paper not of
// interest) are excluded so one irregular stream cannot poison the size.
// Returns 0 when no stream contributes.
func StructSize(strides []uint64) uint64 {
	var g uint64
	for _, s := range strides {
		if s < MinMeaningfulStride {
			continue
		}
		g = gcd64(g, s)
	}
	return g
}

// Offset locates the field a stream accesses: (ea − base) mod size
// (Equation 6). size must be nonzero.
func Offset(ea, base, size uint64) uint64 {
	return (ea - base) % size
}

// --- Equation 4: accuracy of the GCD algorithm -----------------------------

// AccuracyLowerBound evaluates the closed-form lower bound of Equation 4:
//
//	accuracy > 1 − Σ_{p prime} p^−k
//
// the probability that k uniform samples of a unit-stride stream yield a
// GCD of exactly 1. For k ≥ 10 this exceeds 99%, the paper's headline
// claim.
func AccuracyLowerBound(k int) float64 {
	if k <= 1 {
		return 0
	}
	sum := 0.0
	for _, p := range primesUnder(10000) {
		term := math.Pow(float64(p), -float64(k))
		sum += term
		if term < 1e-15 {
			break
		}
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// AccuracyExact evaluates Equation 4 as written: for a stream of n
// addresses with unit real stride, sampled at k unique positions,
//
//	accuracy = 1 − [ C(n/2, k) + C(n/3, k) + C(n/5, k) + … ] / C(n, k)
//
// summing over primes p ≤ n/k' where terms are nonzero. (As the paper
// notes, the union bound over primes double-counts slightly, so this is a
// conservative estimate.)
func AccuracyExact(n, k int) float64 {
	if k <= 1 || n < k {
		return 0
	}
	sum := 0.0
	for _, p := range primesUnder(n + 1) {
		m := n / p
		if m < k {
			break // primes are increasing, so all later terms vanish
		}
		sum += binomRatio(m, n, k)
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// AccuracyCorrected evaluates a corrected analytic model:
//
//	accuracy ≈ 1 − Σ_{p prime} p^(1−k)
//
// Equation 4 as printed counts only sample sets whose positions are all
// ≡ 0 (mod p), i.e. C(n/p, k) of them; but the GCD of the address
// differences is a multiple of p whenever all k positions fall in the
// *same* residue class mod p — any of the p classes — which is ~p times
// as many sets. Monte-Carlo simulation (SimulateAccuracy) matches this
// corrected model closely (e.g. k=4: ≈0.825 here and ≈0.83 simulated,
// versus 0.923 from the printed formula). The paper's headline conclusion
// survives the correction: Σ p^(1−k) < 1% for k ≥ 10. For k = 2 the
// corrected sum diverges, correctly predicting that two samples almost
// never pin down the stride of a long stream.
func AccuracyCorrected(k int) float64 {
	if k <= 2 {
		return 0 // Σ p^(1−k) diverges at k = 2
	}
	sum := 0.0
	for _, p := range primesUnder(100000) {
		term := math.Pow(float64(p), 1-float64(k))
		sum += term
		if term < 1e-15 {
			break
		}
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// binomRatio computes C(m, k) / C(n, k) without overflow:
// Π_{i=0..k−1} (m−i)/(n−i).
func binomRatio(m, n, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(m-i) / float64(n-i)
	}
	return r
}

// primesUnder returns all primes < n (simple sieve; n is small here).
func primesUnder(n int) []int {
	if n <= 2 {
		return nil
	}
	composite := make([]bool, n)
	var primes []int
	for i := 2; i < n; i++ {
		if composite[i] {
			continue
		}
		primes = append(primes, i)
		for j := i * 2; j < n; j += i {
			composite[j] = true
		}
	}
	return primes
}

// SimulateAccuracy estimates the GCD algorithm's accuracy by Monte Carlo:
// it draws k unique sample positions from a stream of n addresses with
// the given real stride, runs the GCD algorithm, and reports the fraction
// of trials that recover the stride exactly. This is the empirical
// validation of Equation 4.
func SimulateAccuracy(n, k, trials int, realStride uint64, seed uint64) float64 {
	if k < 2 || n < k || trials <= 0 {
		return 0
	}
	rng := seed*2862933555777941757 + 3037000493
	next := func(bound int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(bound))
	}
	hits := 0
	positions := make([]int, 0, k)
	used := make(map[int]bool, k)
	addrs := make([]uint64, 0, k)
	for t := 0; t < trials; t++ {
		positions = positions[:0]
		for len(positions) < k {
			pos := next(n)
			if !used[pos] {
				used[pos] = true
				positions = append(positions, pos)
			}
		}
		for pos := range used {
			delete(used, pos)
		}
		// The GCD algorithm sees samples in time order, i.e. position
		// order for a forward scan.
		sort.Ints(positions)
		addrs = addrs[:0]
		for _, pos := range positions {
			addrs = append(addrs, uint64(pos)*realStride)
		}
		if OfAddresses(addrs) == realStride {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}
