package profile

import (
	"bytes"
	"testing"
)

// FuzzReadThreadProfile: arbitrary bytes must never panic the profile
// decoder — it either parses or errors.
func FuzzReadThreadProfile(f *testing.F) {
	// Seed with a valid profile and some mutations.
	tp := NewThreadProfile(1, 5000)
	tp.Add(Sample{TID: 1, IP: 0x400100, EA: 0x1000, Latency: 12}, 7)
	var buf bytes.Buffer
	if err := tp.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x13, 0x37})
	if len(valid) > 10 {
		f.Add(valid[:len(valid)/2])
		trunc := append([]byte(nil), valid...)
		trunc[8] ^= 0xff
		f.Add(trunc)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadThreadProfile(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded profile must be internally usable.
		if got.Streams == nil {
			t.Fatal("decoded profile with nil stream map")
		}
		_, _ = MergeThreadProfiles([]*ThreadProfile{got})
	})
}

// FuzzStreamObserve: any observation sequence keeps StreamStat sane —
// GCD divides every pairwise delta seen.
func FuzzStreamObserve(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		st := &StreamStat{}
		addrs := make([]uint64, 0, len(data))
		base := uint64(0x1000)
		for _, b := range data {
			ea := base + uint64(b)*8
			st.Observe(ea, 1, false, 0)
			addrs = append(addrs, ea)
		}
		if st.Count != uint64(len(data)) {
			t.Fatalf("count %d != %d", st.Count, len(data))
		}
		if st.GCD == 0 {
			return // fewer than two distinct addresses
		}
		for i := 1; i < len(addrs); i++ {
			d := addrs[i] - addrs[i-1]
			if addrs[i-1] > addrs[i] {
				d = addrs[i-1] - addrs[i]
			}
			if d%st.GCD != 0 {
				t.Fatalf("GCD %d does not divide delta %d", st.GCD, d)
			}
		}
	})
}
