package profile

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGCD64(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {48, 32, 16}, {16, 48, 16},
		{7, 13, 1}, {56, 56, 56}, {24, 36, 12},
	}
	for _, c := range cases {
		if got := GCD64(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDProperties(t *testing.T) {
	// gcd divides both operands and is commutative.
	f := func(a, b uint64) bool {
		a %= 1 << 32
		b %= 1 << 32
		g := GCD64(a, b)
		if g == 0 {
			return a == 0 && b == 0
		}
		return a%g == 0 && b%g == 0 && g == GCD64(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamObserveGCD(t *testing.T) {
	// Samples at Arr[2].a, Arr[5].a, Arr[7].a of a 16-byte struct: deltas
	// 48 and 32 → GCD 16 (the paper's worked example).
	st := &StreamStat{}
	base := uint64(0x1000)
	st.Observe(base+2*16, 100, false, 1)
	if st.GCD != 0 {
		t.Errorf("GCD after one sample = %d, want 0", st.GCD)
	}
	st.Observe(base+5*16, 150, false, 1)
	if st.GCD != 48 {
		t.Errorf("GCD after two samples = %d, want 48", st.GCD)
	}
	st.Observe(base+7*16, 200, false, 1)
	if st.GCD != 16 {
		t.Errorf("GCD = %d, want 16", st.GCD)
	}
	if st.Count != 3 || st.LatencySum != 450 {
		t.Errorf("count/latency = %d/%d", st.Count, st.LatencySum)
	}
	if st.FirstEA != base+32 || st.FirstObjID != 1 {
		t.Errorf("first anchor = %#x/%d", st.FirstEA, st.FirstObjID)
	}
}

func TestStreamObserveRepeatedAddress(t *testing.T) {
	// Re-touching the same address contributes no delta (temporal reuse
	// must not zero the GCD).
	st := &StreamStat{}
	st.Observe(100, 1, false, 0)
	st.Observe(100, 1, false, 0)
	st.Observe(116, 1, false, 0)
	st.Observe(116, 1, true, 0)
	if st.GCD != 16 {
		t.Errorf("GCD = %d, want 16", st.GCD)
	}
	if st.Writes != 1 {
		t.Errorf("writes = %d", st.Writes)
	}
}

func TestStreamObserveBackwardScan(t *testing.T) {
	// Descending addresses give the same stride (|m_i − m_{i−1}|).
	st := &StreamStat{}
	for i := 10; i >= 0; i-- {
		st.Observe(uint64(0x1000+i*24), 1, false, 0)
	}
	if st.GCD != 24 {
		t.Errorf("GCD = %d, want 24", st.GCD)
	}
}

func mkThreadProfile(tid int, samples []Sample, identities []uint64) *ThreadProfile {
	tp := NewThreadProfile(tid, 10000)
	for i, s := range samples {
		tp.Add(s, identities[i])
	}
	return tp
}

func TestThreadProfileAdd(t *testing.T) {
	tp := mkThreadProfile(0, []Sample{
		{IP: 0x400000, EA: 0x1000, Latency: 10},
		{IP: 0x400000, EA: 0x1010, Latency: 20},
		{IP: 0x400004, EA: 0x2000, Latency: 30},
	}, []uint64{7, 7, 9})
	if tp.NumSamples != 3 || tp.TotalLatency != 60 {
		t.Errorf("samples/latency = %d/%d", tp.NumSamples, tp.TotalLatency)
	}
	if len(tp.Streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(tp.Streams))
	}
	st := tp.Streams[StreamKey{IP: 0x400000, Identity: 7}]
	if st == nil || st.Count != 2 || st.GCD != 16 {
		t.Errorf("stream = %+v", st)
	}
}

func TestMergeThreadProfiles(t *testing.T) {
	// Two threads sampling the same stream over disjoint halves: counts
	// sum and strides combine by GCD.
	a := mkThreadProfile(0, []Sample{
		{TID: 0, IP: 1000, EA: 0x1000, Latency: 5, Cycle: 10},
		{TID: 0, IP: 1000, EA: 0x1030, Latency: 5, Cycle: 30},
	}, []uint64{7, 7})
	b := mkThreadProfile(1, []Sample{
		{TID: 1, IP: 1000, EA: 0x9000, Latency: 7, Cycle: 20},
		{TID: 1, IP: 1000, EA: 0x9020, Latency: 7, Cycle: 40},
	}, []uint64{7, 7})
	a.Objects = []ObjInfo{{ID: 0, Name: "x"}}
	b.Objects = []ObjInfo{{ID: 0, Name: "x"}}
	a.AppCycles, b.AppCycles = 100, 140
	a.OverheadCycles, b.OverheadCycles = 9, 6
	a.MemOps, b.MemOps = 1000, 1100

	p, err := MergeThreadProfiles([]*ThreadProfile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if p.Threads != 2 || p.NumSamples != 4 || p.TotalLatency != 24 {
		t.Errorf("merged header: %+v", p)
	}
	st := p.Streams[StreamKey{IP: 1000, Identity: 7}]
	if st == nil {
		t.Fatal("merged stream missing")
	}
	if st.Count != 4 {
		t.Errorf("count = %d", st.Count)
	}
	if st.GCD != GCD64(0x30, 0x20) {
		t.Errorf("merged GCD = %d, want %d", st.GCD, GCD64(0x30, 0x20))
	}
	// Samples sorted by cycle.
	for i := 1; i < len(p.Samples); i++ {
		if p.Samples[i].Cycle < p.Samples[i-1].Cycle {
			t.Fatal("merged samples not cycle-sorted")
		}
	}
	// Objects deduplicated.
	if len(p.Objects) != 1 {
		t.Errorf("objects = %d, want 1", len(p.Objects))
	}
	// Cycle accounts: max across threads; memops summed.
	if p.AppCycles != 140 || p.OverheadCycles != 9 || p.MemOps != 2100 {
		t.Errorf("cycles = %d/%d memops = %d", p.AppCycles, p.OverheadCycles, p.MemOps)
	}
}

func TestMergeRejectsMixedPeriods(t *testing.T) {
	a := NewThreadProfile(0, 1000)
	b := NewThreadProfile(1, 2000)
	if _, err := MergeThreadProfiles([]*ThreadProfile{a, b}); err == nil {
		t.Error("mixed periods accepted")
	}
	if _, err := MergeThreadProfiles(nil); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestReduceMatchesSequentialMerge(t *testing.T) {
	// Reduction-tree merge must be equivalent to the sequential merge for
	// any thread count, including odd ones.
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		var tps []*ThreadProfile
		for tid := 0; tid < n; tid++ {
			samples := make([]Sample, 0, 10)
			ids := make([]uint64, 0, 10)
			for k := 0; k < 10; k++ {
				samples = append(samples, Sample{
					TID: int32(tid), IP: uint64(1000 + k%3),
					EA:      uint64(0x1000 + tid*0x100 + k*16),
					Latency: uint32(tid + k), Cycle: uint64(tid*1000 + k*10),
				})
				ids = append(ids, uint64(1+k%2))
			}
			tp := mkThreadProfile(tid, samples, ids)
			tp.Objects = []ObjInfo{{ID: int32(tid), Name: "o"}}
			tp.AppCycles = uint64(100 * (tid + 1))
			tps = append(tps, tp)
		}
		seq, err := MergeThreadProfiles(tps)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ReduceThreadProfiles(tps, 3)
		if err != nil {
			t.Fatal(err)
		}
		if par.NumSamples != seq.NumSamples || par.TotalLatency != seq.TotalLatency ||
			par.Threads != seq.Threads || par.AppCycles != seq.AppCycles ||
			len(par.Objects) != len(seq.Objects) || len(par.Streams) != len(seq.Streams) {
			t.Fatalf("n=%d: tree merge differs from sequential", n)
		}
		for key, sst := range seq.Streams {
			pst := par.Streams[key]
			if pst == nil || pst.Count != sst.Count || pst.GCD != sst.GCD || pst.LatencySum != sst.LatencySum {
				t.Fatalf("n=%d: stream %+v differs: %+v vs %+v", n, key, pst, sst)
			}
		}
		for i := 1; i < len(par.Samples); i++ {
			if par.Samples[i].Cycle < par.Samples[i-1].Cycle {
				t.Fatalf("n=%d: tree-merged samples unsorted", n)
			}
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	if _, err := ReduceThreadProfiles(nil, 2); err == nil {
		t.Error("empty reduce accepted")
	}
}

func TestGobRoundTrip(t *testing.T) {
	tp := mkThreadProfile(3, []Sample{
		{TID: 3, IP: 0x400010, EA: 0x5000, Latency: 42, Level: 2, Write: true, Cycle: 99, ObjID: 4},
	}, []uint64{11})
	tp.Objects = []ObjInfo{{ID: 4, Heap: true, Name: "heap@0x400100", Base: 0x5000, Size: 64, Identity: 11, AllocIP: 0x400100, TypeID: 2}}
	tp.AppCycles = 12345

	var buf bytes.Buffer
	if err := tp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadThreadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != 3 || got.NumSamples != 1 || got.AppCycles != 12345 {
		t.Errorf("round trip header: %+v", got)
	}
	if len(got.Samples) != 1 || got.Samples[0] != tp.Samples[0] {
		t.Errorf("round trip samples: %+v", got.Samples)
	}
	st := got.Streams[StreamKey{IP: 0x400010, Identity: 11}]
	if st == nil || st.Count != 1 || st.Writes != 1 {
		t.Errorf("round trip stream: %+v", st)
	}
	if len(got.Objects) != 1 || got.Objects[0] != tp.Objects[0] {
		t.Errorf("round trip objects: %+v", got.Objects)
	}
}

func TestWriteReadDir(t *testing.T) {
	dir := t.TempDir()
	tps := []*ThreadProfile{
		mkThreadProfile(0, []Sample{{IP: 1, EA: 2, Latency: 3}}, []uint64{1}),
		mkThreadProfile(1, []Sample{{IP: 4, EA: 5, Latency: 6}}, []uint64{2}),
	}
	if err := WriteDir(dir, tps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d profiles, want 2", len(got))
	}
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestObjByID(t *testing.T) {
	p := &Profile{Objects: []ObjInfo{{ID: 1}, {ID: 5}, {ID: 9}}}
	if o := p.ObjByID(5); o == nil || o.ID != 5 {
		t.Error("ObjByID(5) failed")
	}
	if p.ObjByID(4) != nil || p.ObjByID(100) != nil {
		t.Error("ObjByID found a ghost")
	}
}

func TestOverheadPct(t *testing.T) {
	p := &Profile{AppCycles: 1000, OverheadCycles: 70}
	if got := p.OverheadPct(); got != 7.0 {
		t.Errorf("OverheadPct = %v, want 7", got)
	}
	if (&Profile{}).OverheadPct() != 0 {
		t.Error("zero-cycle profile should report 0 overhead")
	}
}
