package profile

import (
	"fmt"
	"sync"
)

// ReduceThreadProfiles merges per-thread profiles with a parallel
// reduction tree (the paper adopts the reduction-tree algorithm of
// Tallent et al. [30] to make merging scale with thread count): profiles
// are paired off and merged concurrently, halving the population each
// round, so the critical path is O(log n) merges instead of O(n).
func ReduceThreadProfiles(tps []*ThreadProfile, workers int) (*Profile, error) {
	if len(tps) == 0 {
		return nil, fmt.Errorf("no profiles to merge")
	}
	if workers <= 0 {
		workers = 4
	}
	// Lift every thread profile to a Profile leaf, in parallel.
	leaves := make([]*Profile, len(tps))
	errs := make([]error, len(tps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, tp := range tps {
		wg.Add(1)
		go func(i int, tp *ThreadProfile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			leaves[i], errs[i] = MergeThreadProfiles([]*ThreadProfile{tp})
		}(i, tp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	return reduceRounds(leaves, sem)
}

// MergeTree combines already-merged profiles with the same parallel
// reduction tree ReduceThreadProfiles uses for thread profiles: profiles
// are paired off and merged concurrently, halving the population each
// round. The inputs must come from threads of one process (shared object
// table, agreeing periods); use MergeProcessProfiles for cross-process
// aggregation. A single input is returned as-is (no copy). The streaming
// service uses this to fold per-session snapshots into one live profile.
func MergeTree(ps []*Profile, workers int) (*Profile, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("no profiles to merge")
	}
	if workers <= 0 {
		workers = 4
	}
	leaves := append([]*Profile(nil), ps...)
	return reduceRounds(leaves, make(chan struct{}, workers))
}

// reduceRounds runs the reduction rounds over leaves, bounding merge
// concurrency with sem. The leaves slice is consumed.
func reduceRounds(leaves []*Profile, sem chan struct{}) (*Profile, error) {
	for len(leaves) > 1 {
		next := make([]*Profile, (len(leaves)+1)/2)
		nerrs := make([]error, len(next))
		var rw sync.WaitGroup
		for i := 0; i < len(leaves); i += 2 {
			if i+1 == len(leaves) {
				next[i/2] = leaves[i]
				continue
			}
			rw.Add(1)
			go func(out int, a, b *Profile) {
				defer rw.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				next[out], nerrs[out] = mergeProfiles(a, b)
			}(i/2, leaves[i], leaves[i+1])
		}
		rw.Wait()
		for _, err := range nerrs {
			if err != nil {
				return nil, err
			}
		}
		leaves = next
	}
	return leaves[0], nil
}

// mergeProfiles combines two already-merged profiles.
func mergeProfiles(a, b *Profile) (*Profile, error) {
	if a.Period != b.Period {
		return nil, fmt.Errorf("profiles with different periods: %d vs %d", a.Period, b.Period)
	}
	out := &Profile{
		Period:  a.Period,
		Threads: a.Threads + b.Threads,
		Streams: make(map[StreamKey]*StreamStat, len(a.Streams)+len(b.Streams)),
	}
	// Samples: both inputs are cycle-sorted; merge-join keeps the output
	// sorted without a re-sort.
	out.Samples = make([]Sample, 0, len(a.Samples)+len(b.Samples))
	i, j := 0, 0
	for i < len(a.Samples) && j < len(b.Samples) {
		sa, sb := a.Samples[i], b.Samples[j]
		if sa.Cycle < sb.Cycle || (sa.Cycle == sb.Cycle && sa.TID <= sb.TID) {
			out.Samples = append(out.Samples, sa)
			i++
		} else {
			out.Samples = append(out.Samples, sb)
			j++
		}
	}
	out.Samples = append(out.Samples, a.Samples[i:]...)
	out.Samples = append(out.Samples, b.Samples[j:]...)

	out.NumSamples = a.NumSamples + b.NumSamples
	out.TotalLatency = a.TotalLatency + b.TotalLatency
	out.MemOps = a.MemOps + b.MemOps
	out.AppCycles = max64(a.AppCycles, b.AppCycles)
	out.OverheadCycles = max64(a.OverheadCycles, b.OverheadCycles)

	for key, st := range a.Streams {
		cp := *st
		out.Streams[key] = &cp
	}
	for key, st := range b.Streams {
		if dst, ok := out.Streams[key]; ok {
			mergeStream(dst, st)
		} else {
			cp := *st
			out.Streams[key] = &cp
		}
	}

	// Objects: identical snapshots across threads; union by ID.
	seen := make(map[int32]bool, len(a.Objects))
	out.Objects = append(out.Objects, a.Objects...)
	for _, oi := range a.Objects {
		seen[oi.ID] = true
	}
	for _, oi := range b.Objects {
		if !seen[oi.ID] {
			out.Objects = append(out.Objects, oi)
		}
	}
	sortObjects(out.Objects)
	return out, nil
}

func sortObjects(objs []ObjInfo) {
	// Insertion sort: inputs are nearly sorted (usually fully sorted).
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objs[j].ID < objs[j-1].ID; j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
