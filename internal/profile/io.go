package profile

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The on-disk format is a gob stream of ThreadProfile, one file per
// thread, mirroring the paper's profiler which "writes the analysis result
// to a profile file per thread".

// Write serializes one thread profile.
func (tp *ThreadProfile) Write(w io.Writer) error {
	return gob.NewEncoder(w).Encode(tp)
}

// ReadThreadProfile deserializes one thread profile.
func ReadThreadProfile(r io.Reader) (*ThreadProfile, error) {
	tp := &ThreadProfile{}
	if err := gob.NewDecoder(r).Decode(tp); err != nil {
		return nil, fmt.Errorf("decoding thread profile: %w", err)
	}
	if tp.Streams == nil {
		tp.Streams = make(map[StreamKey]*StreamStat)
	}
	return tp, nil
}

// WriteProfile serializes a merged whole-program profile. Merged
// profiles are what the offline analyzer consumes, so persisting them
// lets one profiled run feed many analysis sessions.
func WriteProfile(w io.Writer, p *Profile) error {
	return gob.NewEncoder(w).Encode(p)
}

// ReadProfile deserializes a merged whole-program profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	p := &Profile{}
	if err := gob.NewDecoder(r).Decode(p); err != nil {
		return nil, fmt.Errorf("decoding profile: %w", err)
	}
	if p.Streams == nil {
		p.Streams = make(map[StreamKey]*StreamStat)
	}
	return p, nil
}

// profileFileName names the per-thread profile file.
func profileFileName(tid int) string { return fmt.Sprintf("profile.%d.gob", tid) }

// WriteDir writes each thread profile into dir (created if needed).
func WriteDir(dir string, tps []*ThreadProfile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, tp := range tps {
		f, err := os.Create(filepath.Join(dir, profileFileName(tp.TID)))
		if err != nil {
			return err
		}
		if err := tp.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir loads every profile.*.gob in dir.
func ReadDir(dir string) ([]*ThreadProfile, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "profile.*.gob"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no profiles found in %s", dir)
	}
	var tps []*ThreadProfile
	for _, m := range matches {
		f, err := os.Open(m)
		if err != nil {
			return nil, err
		}
		tp, err := ReadThreadProfile(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		tps = append(tps, tp)
	}
	return tps, nil
}
