// Package profile defines the data the online profiler collects and the
// offline analyzer consumes: address samples, per-stream online statistics
// (including the running GCD of address deltas), per-thread profiles, gob
// serialization, and the parallel reduction-tree merge the paper uses to
// combine per-thread profiles.
package profile

import (
	"fmt"
	"sort"
)

// Sample is one address sample: exactly the fields PEBS-LL delivers (IP,
// effective address, latency, data source) plus thread and timestamp, and
// the object resolved by the online data-centric attribution (-1 when the
// address hit no known object, e.g. stack data, which StructSlim does not
// monitor).
type Sample struct {
	TID     int32
	IP      uint64
	EA      uint64
	Latency uint32
	Level   uint8
	Write   bool
	Cycle   uint64
	ObjID   int32
	// Ctx hashes the calling context of the sampled instruction;
	// streams are context-sensitive because the paper's one-field-per-
	// instruction assumption holds per calling context.
	Ctx uint64
}

// ObjInfo is the profiler's snapshot of one data object, taken from the
// simulated allocator/symbol table when the profile is written out.
type ObjInfo struct {
	ID       int32
	Heap     bool
	Name     string
	Base     uint64
	Size     uint64
	Identity uint64
	AllocIP  uint64
	TypeID   int32
}

// StreamKey identifies a stream the way the paper defines it: one memory
// instruction (IP) in one calling context (Ctx) referencing one logical
// data structure (Identity). The loop context is recovered offline from
// the IP via loop analysis.
type StreamKey struct {
	IP       uint64
	Ctx      uint64
	Identity uint64
}

// StreamStat is the online state of one stream. The profiler updates GCD
// incrementally with each new sample's |EA − lastEA| (Equations 2–3 of the
// paper), so no per-sample address list is needed online.
type StreamStat struct {
	IP       uint64
	Identity uint64

	Count      uint64 // samples observed
	Writes     uint64
	LatencySum uint64

	// GCD is the running greatest common divisor of absolute address
	// deltas between successive samples; 0 until two distinct addresses
	// have been seen.
	GCD    uint64
	LastEA uint64
	// FirstEA and FirstObjID anchor the offset computation (Equation 6):
	// offset = (EA − object base) mod size.
	FirstEA    uint64
	FirstObjID int32
}

// Observe folds one sample into the stream state.
func (s *StreamStat) Observe(ea uint64, latency uint32, write bool, objID int32) {
	if s.Count == 0 {
		s.FirstEA = ea
		s.FirstObjID = objID
	} else if ea != s.LastEA {
		var d uint64
		if ea > s.LastEA {
			d = ea - s.LastEA
		} else {
			d = s.LastEA - ea
		}
		s.GCD = gcd64(s.GCD, d)
	}
	s.LastEA = ea
	s.Count++
	s.LatencySum += uint64(latency)
	if write {
		s.Writes++
	}
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCD64 exposes the profiler's gcd for reuse by analyses.
func GCD64(a, b uint64) uint64 { return gcd64(a, b) }

// ThreadProfile is what one thread's profiler writes at program end. Per
// the paper's scalable design, threads fill these without any
// synchronization.
type ThreadProfile struct {
	TID    int
	Period uint64

	Samples []Sample
	Streams map[StreamKey]*StreamStat

	// Objects snapshots the data-object table; on a real system this is
	// the per-process allocation map plus symbol table, identical across
	// threads of a process.
	Objects []ObjInfo

	TotalLatency uint64
	NumSamples   uint64

	AppCycles      uint64
	OverheadCycles uint64
	MemOps         uint64

	// lastKey/lastStat cache the most recently updated stream: samples of
	// a hot loop land on the same stream repeatedly, so the common case
	// skips the StreamKey map lookup. Unexported, so gob round-trips are
	// unaffected.
	lastKey  StreamKey
	lastStat *StreamStat
}

// NewThreadProfile returns an empty profile for one thread.
func NewThreadProfile(tid int, period uint64) *ThreadProfile {
	return &ThreadProfile{
		TID:     tid,
		Period:  period,
		Streams: make(map[StreamKey]*StreamStat),
	}
}

// Add records a sample and updates its stream.
func (tp *ThreadProfile) Add(s Sample, identity uint64) {
	tp.Samples = append(tp.Samples, s)
	tp.NumSamples++
	tp.TotalLatency += uint64(s.Latency)
	key := StreamKey{IP: s.IP, Ctx: s.Ctx, Identity: identity}
	st := tp.lastStat
	if st == nil || key != tp.lastKey {
		st = tp.Streams[key]
		if st == nil {
			st = &StreamStat{IP: s.IP, Identity: identity}
			tp.Streams[key] = st
		}
		tp.lastKey, tp.lastStat = key, st
	}
	st.Observe(s.EA, s.Latency, s.Write, s.ObjID)
}

// Profile is a merged, whole-program profile.
type Profile struct {
	Period  uint64
	Threads int

	Samples []Sample
	Streams map[StreamKey]*StreamStat
	Objects []ObjInfo

	TotalLatency uint64
	NumSamples   uint64

	AppCycles      uint64 // max across threads
	OverheadCycles uint64 // max across threads
	MemOps         uint64 // summed
}

// MergeThreadProfiles combines per-thread profiles into one program
// profile sequentially. Stream stats with the same (IP, identity) merge by
// summing counts and latencies and taking the GCD of their strides —
// the paper's Equation 5 adaptation for parallel programs.
func MergeThreadProfiles(tps []*ThreadProfile) (*Profile, error) {
	if len(tps) == 0 {
		return nil, fmt.Errorf("no profiles to merge")
	}
	p := &Profile{
		Period:  tps[0].Period,
		Streams: make(map[StreamKey]*StreamStat),
	}
	seenObj := make(map[int32]bool)
	for _, tp := range tps {
		if tp.Period != p.Period {
			return nil, fmt.Errorf("profiles with different periods: %d vs %d", tp.Period, p.Period)
		}
		p.Threads++
		p.Samples = append(p.Samples, tp.Samples...)
		p.NumSamples += tp.NumSamples
		p.TotalLatency += tp.TotalLatency
		p.MemOps += tp.MemOps
		if tp.AppCycles > p.AppCycles {
			p.AppCycles = tp.AppCycles
		}
		if tp.OverheadCycles > p.OverheadCycles {
			p.OverheadCycles = tp.OverheadCycles
		}
		for key, st := range tp.Streams {
			dst := p.Streams[key]
			if dst == nil {
				cp := *st
				p.Streams[key] = &cp
				continue
			}
			mergeStream(dst, st)
		}
		for _, oi := range tp.Objects {
			if !seenObj[oi.ID] {
				seenObj[oi.ID] = true
				p.Objects = append(p.Objects, oi)
			}
		}
	}
	sort.Slice(p.Samples, func(i, j int) bool {
		if p.Samples[i].Cycle != p.Samples[j].Cycle {
			return p.Samples[i].Cycle < p.Samples[j].Cycle
		}
		return p.Samples[i].TID < p.Samples[j].TID
	})
	sort.Slice(p.Objects, func(i, j int) bool { return p.Objects[i].ID < p.Objects[j].ID })
	return p, nil
}

func mergeStream(dst, src *StreamStat) {
	dst.Count += src.Count
	dst.Writes += src.Writes
	dst.LatencySum += src.LatencySum
	// Strides from different threads combine by GCD (gcd(0,x)=x covers
	// streams that saw fewer than two distinct addresses in one thread).
	// dst keeps its own FirstEA anchor; any sample of the stream works
	// for the offset computation.
	dst.GCD = gcd64(dst.GCD, src.GCD)
}

// MergeFrom folds src into s with the cross-thread merge semantics of
// MergeThreadProfiles: counts, writes, and latencies sum; strides combine
// by GCD; s keeps its own FirstEA/FirstObjID anchor and LastEA. Exported
// so the streaming analyzer can merge per-session stream state exactly
// the way the reduction tree does.
func (s *StreamStat) MergeFrom(src *StreamStat) { mergeStream(s, src) }

// ObjByID returns the object snapshot with the given id, or nil.
func (p *Profile) ObjByID(id int32) *ObjInfo {
	i := sort.Search(len(p.Objects), func(i int) bool { return p.Objects[i].ID >= id })
	if i < len(p.Objects) && p.Objects[i].ID == id {
		return &p.Objects[i]
	}
	return nil
}

// OverheadPct is the measurement overhead the profile itself records.
func (p *Profile) OverheadPct() float64 {
	if p.AppCycles == 0 {
		return 0
	}
	return 100 * float64(p.OverheadCycles) / float64(p.AppCycles)
}
