package profile

import (
	"fmt"
	"sort"
)

// MergeProcessProfiles combines merged profiles from *separate runs*
// (processes). Unlike threads of one process, processes do not share an
// object table: object IDs collide across runs, and heap objects live at
// different addresses. Following the paper (Section 4.4), aggregation is
// by data-centric identity — the symbol name for statics, the allocation
// call path for heap objects — which is stable across processes of the
// same binary.
//
// Samples keep per-process object references by remapping each process's
// object IDs into a disjoint range; stream statistics merge by
// (IP, context, identity) exactly as in the thread merge, with strides
// combining by GCD. Wall-clock accounts are summed across processes
// (processes run back to back in this model), memory ops are summed, and
// the sampling period must agree.
func MergeProcessProfiles(ps []*Profile) (*Profile, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("no profiles to merge")
	}
	out := &Profile{
		Period:  ps[0].Period,
		Streams: make(map[StreamKey]*StreamStat),
	}
	var idBase int32
	for pi, p := range ps {
		if p.Period != out.Period {
			return nil, fmt.Errorf("process %d: period %d differs from %d", pi, p.Period, out.Period)
		}
		out.Threads += p.Threads
		out.NumSamples += p.NumSamples
		out.TotalLatency += p.TotalLatency
		out.MemOps += p.MemOps
		out.AppCycles += p.AppCycles
		out.OverheadCycles += p.OverheadCycles

		// Remap this process's object IDs into a fresh range starting at
		// base.
		base := idBase
		var maxID int32 = -1
		for _, oi := range p.Objects {
			oi.ID += base
			out.Objects = append(out.Objects, oi)
			if oi.ID > maxID {
				maxID = oi.ID
			}
		}
		for _, s := range p.Samples {
			if s.ObjID >= 0 {
				s.ObjID += base
			}
			out.Samples = append(out.Samples, s)
		}
		for key, st := range p.Streams {
			dst := out.Streams[key]
			if dst == nil {
				cp := *st
				if cp.FirstObjID >= 0 {
					cp.FirstObjID += base
				}
				out.Streams[key] = &cp
				continue
			}
			mergeStream(dst, st)
		}
		if maxID >= idBase {
			idBase = maxID + 1
		}
	}
	sort.Slice(out.Objects, func(i, j int) bool { return out.Objects[i].ID < out.Objects[j].ID })
	sort.Slice(out.Samples, func(i, j int) bool {
		if out.Samples[i].Cycle != out.Samples[j].Cycle {
			return out.Samples[i].Cycle < out.Samples[j].Cycle
		}
		return out.Samples[i].TID < out.Samples[j].TID
	})
	return out, nil
}
