package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// buildThreadProfiles makes two thread profiles whose streams overlap on
// one key (so merging exercises the GCD combine) and whose object tables
// overlap on one object (so the merged table must deduplicate).
func buildThreadProfiles() []*ThreadProfile {
	tp0 := NewThreadProfile(0, 10_000)
	tp0.Objects = []ObjInfo{
		{ID: 1, Heap: true, Name: "f1_layer", Base: 0x10000, Size: 560_000, Identity: 11, AllocIP: 0x400100, TypeID: 3},
		{ID: 2, Name: "bus", Base: 0x900000, Size: 4096, Identity: 22},
	}
	tp0.AppCycles, tp0.OverheadCycles, tp0.MemOps = 1000, 17, 500
	for k := 0; k < 6; k++ {
		tp0.Add(Sample{
			TID: 0, IP: 0x400200, EA: uint64(0x10000 + k*56), Latency: uint32(30 + k),
			Level: 2, Write: k%2 == 0, Cycle: uint64(100 * k), ObjID: 1, Ctx: 7,
		}, 11)
	}

	tp1 := NewThreadProfile(1, 10_000)
	tp1.Objects = []ObjInfo{
		{ID: 1, Heap: true, Name: "f1_layer", Base: 0x10000, Size: 560_000, Identity: 11, AllocIP: 0x400100, TypeID: 3},
		{ID: 3, Heap: true, Name: "arcs", Base: 0x800000, Size: 1 << 20, Identity: 33, AllocIP: 0x400800},
	}
	tp1.AppCycles, tp1.OverheadCycles, tp1.MemOps = 900, 40, 400
	for k := 0; k < 4; k++ {
		// Same stream key as thread 0 (IP/Ctx/Identity) at a coarser
		// stride, plus a second stream on another object.
		tp1.Add(Sample{
			TID: 1, IP: 0x400200, EA: uint64(0x10000 + k*112), Latency: 80,
			Level: 3, Cycle: uint64(50 + 100*k), ObjID: 1, Ctx: 7,
		}, 11)
		tp1.Add(Sample{
			TID: 1, IP: 0x400300, EA: uint64(0x800000 + k*24), Latency: 12,
			Cycle: uint64(60 + 100*k), ObjID: 3, Ctx: 9,
		}, 33)
	}
	return []*ThreadProfile{tp0, tp1}
}

// TestProfileGobRoundTrip: a merged whole-program profile — stream maps,
// merged (deduplicated) object table, counters — survives gob
// serialization exactly.
func TestProfileGobRoundTrip(t *testing.T) {
	p, err := MergeThreadProfiles(buildThreadProfiles())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objects) != 3 {
		t.Fatalf("merged object table has %d entries, want 3 (dedup)", len(p.Objects))
	}

	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, p) {
		t.Errorf("round-tripped profile differs:\n got %+v\nwant %+v", got, p)
	}
	// The parts analyses depend on, spelled out for a readable failure.
	if !reflect.DeepEqual(got.Objects, p.Objects) {
		t.Errorf("objects: got %+v, want %+v", got.Objects, p.Objects)
	}
	if len(got.Streams) != len(p.Streams) {
		t.Fatalf("streams: got %d, want %d", len(got.Streams), len(p.Streams))
	}
	for key, st := range p.Streams {
		if !reflect.DeepEqual(got.Streams[key], st) {
			t.Errorf("stream %+v: got %+v, want %+v", key, got.Streams[key], st)
		}
	}
	if got.ObjByID(3) == nil || got.ObjByID(3).Name != "arcs" {
		t.Error("ObjByID lookup broken after round trip")
	}
	if got.OverheadPct() != p.OverheadPct() {
		t.Errorf("overhead: got %v, want %v", got.OverheadPct(), p.OverheadPct())
	}
}

// TestProfileRoundTripThroughThreadFiles: the per-thread write/read path
// composed with the merge yields the same profile as merging in memory —
// the full offline workflow (threads dump, analyzer loads and merges).
func TestProfileRoundTripThroughThreadFiles(t *testing.T) {
	tps := buildThreadProfiles()
	want, err := MergeThreadProfiles(tps)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := WriteDir(dir, tps); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeThreadProfiles(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge-after-reload differs from in-memory merge:\n got %+v\nwant %+v", got, want)
	}

	// Empty stream map must decode usable, not nil.
	empty := NewThreadProfile(5, 100)
	if err := WriteDir(dir, []*ThreadProfile{empty}); err != nil {
		t.Fatal(err)
	}
	all, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range all {
		if tp.Streams == nil {
			t.Fatal("decoded thread profile has nil stream map")
		}
	}
}

// TestReadDirNoProfiles: a missing directory and an existing-but-empty
// directory both fail with an error naming the directory, not a nil
// slice the caller would merge into an empty profile.
func TestReadDirNoProfiles(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "does-not-exist")
	if _, err := ReadDir(missing); err == nil {
		t.Error("ReadDir on a missing directory succeeded")
	} else if !strings.Contains(err.Error(), missing) {
		t.Errorf("error %q does not name the directory", err)
	}

	empty := t.TempDir()
	if _, err := ReadDir(empty); err == nil || !strings.Contains(err.Error(), "no profiles found") {
		t.Errorf("ReadDir on an empty directory: got %v, want a no-profiles error", err)
	}
}

// TestReadDirTruncatedFile: a profile file cut short mid-gob-stream (a
// crashed profiled run) must fail decoding with an error that names the
// bad file, and must not surface the intact profiles as a partial set.
func TestReadDirTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(dir, buildThreadProfiles()); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, profileFileName(1))
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Error("ReadDir with a truncated profile succeeded")
	} else if !strings.Contains(err.Error(), victim) {
		t.Errorf("error %q does not name the truncated file", err)
	}
}

// TestWriteDirCreateFailure: WriteDir into a path whose parent is a
// regular file must report the MkdirAll failure instead of panicking or
// silently writing nothing.
func TestWriteDirCreateFailure(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteDir(filepath.Join(blocker, "profiles"), buildThreadProfiles()); err == nil {
		t.Error("WriteDir under a regular file succeeded")
	}
}

// TestReadDirMixedPeriods: profiles dumped by runs with different
// sampling periods load fine individually but must be rejected by the
// merge — combining them would mis-scale every extrapolated count.
func TestReadDirMixedPeriods(t *testing.T) {
	tps := buildThreadProfiles()
	odd := NewThreadProfile(2, 20_000) // different period from the others
	odd.Add(Sample{TID: 2, IP: 0x400400, EA: 0x10000, Latency: 9, Cycle: 5, ObjID: 1, Ctx: 7}, 11)
	dir := t.TempDir()
	if err := WriteDir(dir, append(tps, odd)); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 {
		t.Fatalf("loaded %d profiles, want 3", len(loaded))
	}
	if _, err := ReduceThreadProfiles(loaded, 2); err == nil || !strings.Contains(err.Error(), "different periods") {
		t.Errorf("merging mixed-period profiles: got %v, want a different-periods error", err)
	}
}
