package profile

import (
	"reflect"
	"strings"
	"testing"
)

// synthTP builds a thread profile with a deterministic, tid-dependent
// sample mix so merged results are sensitive to which inputs went in.
func synthTP(tid int, n int) *ThreadProfile {
	tp := NewThreadProfile(tid, 10000)
	base := uint64(0x1000 * (tid + 1))
	for i := 0; i < n; i++ {
		s := Sample{
			TID:     int32(tid),
			IP:      uint64(0x400 + (i%3)*8),
			EA:      base + uint64(i)*24,
			Latency: uint32(10 + i + tid),
			Write:   i%4 == 0,
			Cycle:   uint64(tid*7 + i*13),
			ObjID:   int32(tid),
			Ctx:     uint64(i % 2),
		}
		tp.Add(s, uint64(100+i%2))
	}
	tp.Objects = []ObjInfo{{ID: int32(tid), Name: "obj", Base: base, Size: uint64(n) * 24, Identity: 100}}
	tp.AppCycles = uint64(1000 * (tid + 1))
	tp.OverheadCycles = uint64(10 * (tid + 1))
	tp.MemOps = uint64(n)
	return tp
}

func TestReduceSingleLeaf(t *testing.T) {
	tp := synthTP(0, 12)
	got, err := ReduceThreadProfiles([]*ThreadProfile{tp}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MergeThreadProfiles([]*ThreadProfile{tp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("single-leaf reduction differs from sequential merge")
	}
	if got.Threads != 1 || got.NumSamples != 12 {
		t.Errorf("got threads=%d samples=%d, want 1/12", got.Threads, got.NumSamples)
	}
}

func TestReduceOddLeafCounts(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		tps := make([]*ThreadProfile, n)
		for i := range tps {
			tps[i] = synthTP(i, 8+i)
		}
		got, err := ReduceThreadProfiles(tps, 3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := MergeThreadProfiles(tps)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got.Streams, want.Streams) {
			t.Errorf("n=%d: stream stats differ from sequential merge", n)
		}
		if !reflect.DeepEqual(got.Samples, want.Samples) {
			t.Errorf("n=%d: sample order differs from sequential merge", n)
		}
		if got.Threads != n {
			t.Errorf("n=%d: got %d threads", n, got.Threads)
		}
	}
}

func TestReduceErrorPropagation(t *testing.T) {
	// One leaf with a mismatched period must fail the whole reduction, at
	// every position in the input.
	for pos := 0; pos < 4; pos++ {
		tps := make([]*ThreadProfile, 4)
		for i := range tps {
			tps[i] = synthTP(i, 6)
		}
		tps[pos].Period = 5000
		if _, err := ReduceThreadProfiles(tps, 2); err == nil {
			t.Errorf("bad period at leaf %d: want error, got nil", pos)
		} else if !strings.Contains(err.Error(), "period") {
			t.Errorf("bad period at leaf %d: unexpected error %v", pos, err)
		}
	}
}

func TestMergeTreeEmpty(t *testing.T) {
	if _, err := MergeTree(nil, 2); err == nil {
		t.Error("MergeTree(nil) should error")
	}
}

func TestMergeTreeSingle(t *testing.T) {
	p, err := MergeThreadProfiles([]*ThreadProfile{synthTP(0, 10)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeTree([]*Profile{p}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Error("single-input MergeTree should return the input as-is")
	}
}

func TestMergeTreeMatchesReduce(t *testing.T) {
	// Lifting each thread profile to a leaf and MergeTree-ing them must
	// equal the one-shot reduction — including odd leaf counts.
	for _, n := range []int{2, 3, 5} {
		tps := make([]*ThreadProfile, n)
		leaves := make([]*Profile, n)
		for i := range tps {
			tps[i] = synthTP(i, 9)
			var err error
			leaves[i], err = MergeThreadProfiles([]*ThreadProfile{tps[i]})
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := MergeTree(leaves, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReduceThreadProfiles(tps, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: MergeTree over leaves differs from ReduceThreadProfiles", n)
		}
	}
}

func TestMergeTreeErrorPropagation(t *testing.T) {
	a, _ := MergeThreadProfiles([]*ThreadProfile{synthTP(0, 6)})
	b, _ := MergeThreadProfiles([]*ThreadProfile{synthTP(1, 6)})
	c, _ := MergeThreadProfiles([]*ThreadProfile{synthTP(2, 6)})
	b.Period = 123
	if _, err := MergeTree([]*Profile{a, b, c}, 2); err == nil {
		t.Error("mismatched period leaf should fail MergeTree")
	}
}
