package profile

import "testing"

// mkProcessProfile builds a merged single-thread profile as one "process"
// would produce it: its own object table starting at ID 0.
func mkProcessProfile(objIdent uint64, base uint64, eas []uint64) *Profile {
	tp := NewThreadProfile(0, 10000)
	tp.Objects = []ObjInfo{{ID: 0, Name: "arr", Base: base, Size: 1 << 20, Identity: objIdent}}
	for i, ea := range eas {
		tp.Add(Sample{TID: 0, IP: 0x400100, EA: ea, Latency: 10, Cycle: uint64(i * 100), ObjID: 0}, objIdent)
	}
	tp.AppCycles = 1000
	tp.OverheadCycles = 10
	tp.MemOps = uint64(len(eas))
	p, _ := MergeThreadProfiles([]*ThreadProfile{tp})
	return p
}

func TestMergeProcessProfiles(t *testing.T) {
	// Two processes of the same binary: same identity, different heap
	// bases, colliding object IDs.
	p1 := mkProcessProfile(77, 0x40000000, []uint64{0x40000000, 0x40000030, 0x40000060})
	p2 := mkProcessProfile(77, 0x50000000, []uint64{0x50000000, 0x50000020})

	merged, err := MergeProcessProfiles([]*Profile{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumSamples != 5 || merged.Threads != 2 {
		t.Errorf("header: %+v", merged)
	}
	// Object IDs are disjoint after remap and samples point at the right
	// copies.
	if len(merged.Objects) != 2 || merged.Objects[0].ID == merged.Objects[1].ID {
		t.Fatalf("objects: %+v", merged.Objects)
	}
	for _, s := range merged.Samples {
		obj := merged.ObjByID(s.ObjID)
		if obj == nil {
			t.Fatalf("sample's object %d missing", s.ObjID)
		}
		if s.EA < obj.Base || s.EA >= obj.Base+obj.Size {
			t.Fatalf("sample EA %#x outside its object [%#x, +%d)", s.EA, obj.Base, obj.Size)
		}
	}
	// The shared stream merged by identity: counts sum, strides GCD
	// (0x30, 0x30... p1 deltas 0x30; p2 delta 0x20 → gcd 0x10).
	st := merged.Streams[StreamKey{IP: 0x400100, Identity: 77}]
	if st == nil {
		t.Fatal("merged stream missing")
	}
	if st.Count != 5 {
		t.Errorf("stream count = %d", st.Count)
	}
	if st.GCD != 0x10 {
		t.Errorf("merged stride = %#x, want 0x10", st.GCD)
	}
	// Cross-process accounts: cycles sum (sequential processes).
	if merged.AppCycles != 2000 || merged.OverheadCycles != 20 || merged.MemOps != 5 {
		t.Errorf("accounts: %+v", merged)
	}
}

func TestMergeProcessProfilesErrors(t *testing.T) {
	if _, err := MergeProcessProfiles(nil); err == nil {
		t.Error("empty merge accepted")
	}
	p1 := mkProcessProfile(1, 0x1000, []uint64{0x1000})
	p2 := mkProcessProfile(1, 0x1000, []uint64{0x1000})
	p2.Period = 999
	if _, err := MergeProcessProfiles([]*Profile{p1, p2}); err == nil {
		t.Error("mixed periods accepted")
	}
}

func TestMergeProcessProfilesUnattributed(t *testing.T) {
	p1 := mkProcessProfile(5, 0x1000, []uint64{0x1000})
	// An unattributed sample keeps ObjID -1 through the remap.
	p1.Samples = append(p1.Samples, Sample{IP: 0x400100, EA: 0xdead, ObjID: -1, Cycle: 999})
	p1.NumSamples++
	p2 := mkProcessProfile(5, 0x2000, []uint64{0x2000})
	merged, err := MergeProcessProfiles([]*Profile{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range merged.Samples {
		if s.ObjID == -1 {
			found = true
		}
	}
	if !found {
		t.Error("unattributed sample lost or remapped")
	}
}
