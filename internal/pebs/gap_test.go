package pebs

// Protocol tests for the GapSampler contract: a machine that consults
// AccessGap, silently runs the promised number of accesses, books them
// via SkipAccesses (PEBS-LL) or not at all (IBS), and only then delivers
// the next event must leave the sampler with exactly the samples and
// costs an every-event delivery produces. This pins the contract the
// fast engine relies on, against the real sampler rather than a double.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/profile"
	"repro/internal/vm"
)

// synthEvents builds an interleaved two-thread access stream with
// per-thread monotonic cycle and instruction counters, over real objects
// so attribution resolves.
func synthEvents(space *mem.Space, n int) []vm.MemEvent {
	o1 := space.AllocStatic("a", 1<<16, -1, 0)
	o2 := space.AllocStatic("b", 1<<16, -1, 1)
	rng := rand.New(rand.NewSource(42))
	type tstate struct{ cycle, instrs uint64 }
	var ts [2]tstate
	evs := make([]vm.MemEvent, 0, n)
	for i := 0; i < n; i++ {
		tid := rng.Intn(2)
		st := &ts[tid]
		// Each access retires 1-4 instructions after the previous one;
		// some gaps guarantee IBS tags land on non-memory instructions.
		st.instrs += uint64(1 + rng.Intn(4))
		st.cycle += uint64(4 + rng.Intn(40))
		base := o1.Base
		if rng.Intn(3) == 0 {
			base = o2.Base
		}
		evs = append(evs, vm.MemEvent{
			TID:     tid,
			IP:      0x400 + uint64(rng.Intn(16))*4,
			EA:      base + uint64(rng.Intn(1<<12))*8,
			Size:    8,
			Write:   rng.Intn(4) == 0,
			Latency: uint32(4 + rng.Intn(200)),
			Level:   uint8(1 + rng.Intn(3)),
			Cycle:   st.cycle,
			Instrs:  st.instrs,
		})
	}
	return evs
}

// deliverAll replays the stream through OnAccess for every event.
func deliverAll(s *Sampler, evs []vm.MemEvent) (cost uint64) {
	for i := range evs {
		cost += s.OnAccess(&evs[i])
	}
	return cost
}

// deliverGapped replays the stream the way the fast engine does: consult
// AccessGap after every delivery, skip the promised events, and flush
// pending skip counts at random points (the machine flushes at quantum
// boundaries, which land arbitrarily relative to the stream).
func deliverGapped(t *testing.T, s *Sampler, evs []vm.MemEvent) (cost uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	type budget struct {
		gap      uint64
		byInstrs bool
		pend     uint64
	}
	var b [2]budget
	for tid := range b {
		b[tid].gap, b[tid].byInstrs = s.AccessGap(tid)
	}
	flush := func(tid int) {
		if !b[tid].byInstrs && b[tid].pend > 0 {
			s.SkipAccesses(tid, b[tid].pend)
			b[tid].pend = 0
		}
	}
	for i := range evs {
		ev := &evs[i]
		tid := ev.TID
		skip := false
		if b[tid].byInstrs {
			skip = ev.Instrs < b[tid].gap
		} else if b[tid].gap > 0 {
			b[tid].gap--
			b[tid].pend++
			skip = true
		}
		if skip {
			if rng.Intn(16) == 0 { // a quantum boundary lands here
				flush(tid)
			}
			continue
		}
		flush(tid)
		c := s.OnAccess(ev)
		if !b[tid].byInstrs && c == 0 && s.cfg.MinLatency == 0 {
			t.Fatalf("event %d: delivery at gap end produced no sample", i)
		}
		cost += c
		b[tid].gap, b[tid].byInstrs = s.AccessGap(tid)
	}
	flush(0)
	flush(1)
	return cost
}

func profilesOf(s *Sampler) []*profile.ThreadProfile { return s.Profiles() }

func TestGapProtocolMatchesEveryEventDelivery(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"pebs-fixed", Config{Period: 53, InterruptCost: 100, SharedAttribCost: 10}},
		{"pebs-randomized", Config{Period: 97, Randomize: true, Seed: 5, InterruptCost: 100, SharedAttribCost: 10}},
		{"pebs-minlat", Config{Period: 53, MinLatency: 60, InterruptCost: 100}},
		{"ibs-fixed", Config{Mode: ModeIBS, Period: 41, InterruptCost: 100}},
		{"ibs-randomized", Config{Mode: ModeIBS, Period: 89, Randomize: true, Seed: 9, InterruptCost: 100}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spaceA, spaceB := mem.NewSpace(), mem.NewSpace()
			evs := synthEvents(spaceA, 40_000)
			// Rebuild identical objects in the second space so both
			// samplers attribute against equal tables.
			synthEvents(spaceB, 0)
			every := NewSampler(tc.cfg, spaceA, 2)
			gapped := NewSampler(tc.cfg, spaceB, 2)
			costA := deliverAll(every, evs)
			costB := deliverGapped(t, gapped, evs)
			if costA != costB {
				t.Errorf("handler costs differ: every-event %d, gapped %d", costA, costB)
			}
			pa, pb := profilesOf(every), profilesOf(gapped)
			if !reflect.DeepEqual(pa, pb) {
				t.Errorf("profiles differ (every-event %d/%d samples, gapped %d/%d)",
					pa[0].NumSamples, pa[1].NumSamples, pb[0].NumSamples, pb[1].NumSamples)
			}
			if pa[0].NumSamples+pa[1].NumSamples == 0 {
				t.Error("no samples recorded; test has no power")
			}
		})
	}
}

// TestAccessGapInvariant checks the documented bookkeeping identity for
// PEBS-LL: after any prefix of deliveries and skips, countdown always
// equals the remaining gap plus one.
func TestAccessGapInvariant(t *testing.T) {
	space := mem.NewSpace()
	evs := synthEvents(space, 5_000)
	s := NewSampler(Config{Period: 31, Randomize: true, Seed: 3, InterruptCost: 1}, space, 2)
	for i := range evs {
		tid := evs[i].TID
		gap, byInstrs := s.AccessGap(tid)
		if byInstrs {
			t.Fatal("PEBS mode must report access-counted gaps")
		}
		if got := s.threads[tid].countdown; got != gap+1 {
			t.Fatalf("event %d: countdown %d != gap %d + 1", i, got, gap)
		}
		s.OnAccess(&evs[i])
	}
}
