// Package pebs models PEBS-LL-style hardware address sampling.
//
// Real address-sampling facilities (Table 1 of the paper: Intel PEBS-LL,
// Itanium DEAR, AMD IBS, IBM MRK) arm a counter to fire after N events of
// a chosen class; when it fires, the hardware captures the instruction
// pointer, the effective address, and — for PEBS-LL and IBS — the load
// latency and data source of the sampled access, then raises an interrupt
// whose handler records the sample. The handler cost, not the counting,
// is where the profiler's ~7% overhead comes from.
//
// This package reproduces that contract against the simulated machine: it
// observes every memory access (as the PMU does), selects every Nth one
// (with optional period randomization, which hardware effectively provides
// and which avoids aliasing with loop bodies), captures the same fields,
// performs StructSlim's *online* work — data-centric attribution via the
// allocation map and the running per-stream GCD — and charges the thread
// an interrupt-plus-handler cost in cycles, so measurement overhead is an
// output of the model rather than an assumption.
package pebs

import (
	"repro/internal/mem"
	"repro/internal/profile"
	"repro/internal/vm"
)

// Facility describes one hardware address-sampling mechanism — the
// paper's Table 1. StructSlim requires latency capture, which only
// PEBS-LL and IBS provide; this reproduction models both semantics.
type Facility struct {
	Processor string
	Technique string
	// Latency reports whether the facility captures the sampled access's
	// load latency (StructSlim's requirement).
	Latency bool
	// Modeled reports whether this reproduction implements the
	// facility's sampling semantics, and as which Mode.
	Modeled bool
	Mode    Mode
}

// Facilities reproduces Table 1.
var Facilities = []Facility{
	{Processor: "Intel Nehalem", Technique: "Precise event-based sampling with load latency (PEBS-LL)", Latency: true, Modeled: true, Mode: ModePEBSLL},
	{Processor: "Intel Itanium", Technique: "Data event address register (DEAR)"},
	{Processor: "Intel Pentium4", Technique: "Precise event-based sampling (PEBS)"},
	{Processor: "AMD Opteron", Technique: "Instruction-based sampling (IBS)", Latency: true, Modeled: true, Mode: ModeIBS},
	{Processor: "IBM POWER5", Technique: "Marked event sampling (MRK)"},
}

// Mode selects the sampling semantics of the modeled PMU.
type Mode uint8

// Sampling modes, matching the paper's Table 1 facilities.
const (
	// ModePEBSLL periods off *memory accesses* — Intel PEBS with load
	// latency arms a counter of memory-instruction retirements, so
	// compute-heavy phases do not dilute the address-sample rate.
	ModePEBSLL Mode = iota
	// ModeIBS periods off *retired instructions* — AMD IBS tags every
	// Nth op; only tagged ops that are loads/stores yield an address
	// sample, so the effective address-sample rate scales with the
	// program's memory-operation density.
	ModeIBS
)

func (m Mode) String() string {
	if m == ModeIBS {
		return "ibs"
	}
	return "pebs-ll"
}

// Config tunes the sampler.
type Config struct {
	// Mode selects PEBS-LL (per-memory-access periods) or IBS
	// (per-instruction periods).
	Mode Mode
	// Period is the number of events (memory accesses for PEBS-LL,
	// instructions for IBS) between samples; the paper samples every
	// 10,000 memory accesses.
	Period uint64
	// Randomize jitters each inter-sample gap within ±1/8 of the period,
	// preventing lockstep aliasing between the period and loop bodies.
	Randomize bool
	// Seed makes randomized runs reproducible. Each thread derives its
	// own generator from it.
	Seed uint64

	// InterruptCost is the cycles charged per sample for the PMI,
	// register capture, and StructSlim's handler (attribution + online
	// GCD update).
	InterruptCost uint64
	// SharedAttribCost is the extra handler cost per sample, per
	// *additional* running thread: the handler consults the process-wide
	// allocation map, whose synchronization gets slower as more threads
	// use the allocator and profiler concurrently. This is what makes
	// the paper's multithreaded benchmarks (CLOMP 16.1%, Health 18.3%)
	// measurably more expensive to profile than sequential ones.
	SharedAttribCost uint64
	// MinLatency drops samples whose load latency is below the
	// threshold, mirroring the PEBS-LL latency-threshold control (0
	// keeps everything).
	MinLatency uint32
}

// DefaultConfig matches the paper's setup: one sample per 10,000 memory
// accesses.
func DefaultConfig() Config {
	return Config{
		Period:           10_000,
		Randomize:        true,
		Seed:             1,
		InterruptCost:    3500,
		SharedAttribCost: 5500,
		MinLatency:       0,
	}
}

// Sampler implements vm.AccessObserver for every thread of a run.
type Sampler struct {
	cfg      Config
	space    *mem.Space
	nThreads int
	threads  []threadState
}

type threadState struct {
	countdown uint64 // PEBS-LL: accesses until the next sample
	nextAt    uint64 // IBS: instruction count of the next tagged op
	rng       uint64
	prof      *profile.ThreadProfile
	// find is the thread-private address→object resolver; attribution
	// results match Space.FindObject exactly, but the last-hit memo is
	// per thread, so concurrent interpreter goroutines (vm.Config.
	// Parallel) never write shared sampler state.
	find *mem.Finder
}

// NewSampler attaches to a machine's address space for numThreads
// threads.
func NewSampler(cfg Config, space *mem.Space, numThreads int) *Sampler {
	if cfg.Period == 0 {
		cfg.Period = DefaultConfig().Period
	}
	s := &Sampler{cfg: cfg, space: space, nThreads: numThreads}
	s.threads = make([]threadState, numThreads)
	for i := range s.threads {
		ts := &s.threads[i]
		ts.rng = splitmix64(cfg.Seed + uint64(i)*0x9E3779B97F4A7C15 + 1)
		ts.prof = profile.NewThreadProfile(i, cfg.Period)
		ts.find = space.NewFinder()
		gap := s.nextGap(ts)
		ts.countdown = gap
		ts.nextAt = gap
	}
	return s
}

// nextGap draws the accesses-until-next-sample for one thread.
func (s *Sampler) nextGap(ts *threadState) uint64 {
	if !s.cfg.Randomize {
		return s.cfg.Period
	}
	// Jitter within ±period/8.
	span := s.cfg.Period / 4
	if span == 0 {
		return s.cfg.Period
	}
	ts.rng = xorshift64(ts.rng)
	return s.cfg.Period - span/2 + ts.rng%span
}

// OnAccess implements vm.AccessObserver. It counts every access and, when
// the period expires, records a sample and returns the handler cost.
func (s *Sampler) OnAccess(ev *vm.MemEvent) uint64 {
	ts := &s.threads[ev.TID]
	if s.cfg.Mode == ModeIBS {
		// IBS tags instruction number nextAt. Tags that land on
		// non-memory instructions carry no linear address and are
		// dropped, so the effective address-sample rate scales with
		// the program's memory-op density — the semantic difference
		// from PEBS-LL.
		if ev.Instrs < ts.nextAt {
			return 0
		}
		var tagged uint64
		for ts.nextAt <= ev.Instrs {
			tagged = ts.nextAt
			ts.nextAt += s.nextGap(ts)
		}
		if tagged != ev.Instrs {
			return 0 // the tagged op was not this memory access
		}
	} else {
		ts.countdown--
		if ts.countdown > 0 {
			return 0
		}
		ts.countdown = s.nextGap(ts)
	}

	if ev.Latency < s.cfg.MinLatency {
		// The PEBS latency filter discards the record in hardware: no
		// interrupt is raised, so no cost is charged.
		return 0
	}

	// --- Interrupt handler work (charged below) ---
	// Data-centric attribution: effective address → data object.
	objID := int32(-1)
	var identity uint64
	if o := ts.find.Find(ev.EA); o != nil {
		objID = int32(o.ID)
		identity = o.Identity
	}
	ts.prof.Add(profile.Sample{
		TID:     int32(ev.TID),
		IP:      ev.IP,
		EA:      ev.EA,
		Latency: ev.Latency,
		Level:   ev.Level,
		Write:   ev.Write,
		Cycle:   ev.Cycle,
		ObjID:   objID,
		Ctx:     ev.Ctx,
	}, identity)

	cost := s.cfg.InterruptCost
	if s.nThreads > 1 {
		cost += s.cfg.SharedAttribCost * uint64(s.nThreads-1)
	}
	return cost
}

// AccessGap implements vm.GapSampler: it tells the machine how many
// upcoming events this thread's sampler will certainly ignore, so the
// interpreter can run them without materializing MemEvents. PEBS-LL
// counts memory accesses: with countdown accesses until the next sample,
// the next countdown-1 are free (the machine reports them in bulk via
// SkipAccesses). IBS tags an absolute instruction number: every access
// retiring before instruction nextAt is free, and — because sub-
// threshold events change no sampler state at all — needs no report.
func (s *Sampler) AccessGap(tid int) (gap uint64, byInstrs bool) {
	ts := &s.threads[tid]
	if s.cfg.Mode == ModeIBS {
		return ts.nextAt, true
	}
	return ts.countdown - 1, false
}

// SkipAccesses implements vm.GapSampler: the machine ran n accesses of
// the thread through the no-copy-out path; account for them exactly as
// if OnAccess had counted each one down.
func (s *Sampler) SkipAccesses(tid int, n uint64) {
	s.threads[tid].countdown -= n
}

// WindowPlan implements vm.WindowSampler: it schedules the statistical
// engine's sampled windows. Of the thread's current inter-sample gap —
// accesses certain not to be sampled — the leading fastForward accesses
// may skip cache simulation entirely; the remaining (up to window)
// accesses form the warmup suffix that is fully simulated, but not
// sampled, so the cache state the next sample observes has warmed for at
// least window accesses. IBS-mode gaps are instruction-gated, not
// access-counted, so there is no access budget to split and the machine
// stays exact.
func (s *Sampler) WindowPlan(tid int, window uint64) (fastForward uint64) {
	if s.cfg.Mode == ModeIBS {
		return 0
	}
	gap := s.threads[tid].countdown - 1
	if gap <= window {
		return 0
	}
	return gap - window
}

// ParallelSafe implements vm.ParallelSafeObserver: OnAccess touches only
// per-thread state (the thread's profile, RNG, countdown, and private
// object finder), so concurrent delivery from per-core interpreter
// goroutines is safe as long as the object table is not growing — which
// the parallel engine guarantees by rejecting phases that allocate.
func (s *Sampler) ParallelSafe() bool { return true }

// Finish snapshots the object table into each thread profile and attaches
// the run's cycle accounts; call it once after the machine run completes.
func (s *Sampler) Finish(st vm.Stats) []*profile.ThreadProfile {
	objs := make([]profile.ObjInfo, 0, s.space.NumObjects())
	for _, o := range s.space.Objects() {
		objs = append(objs, profile.ObjInfo{
			ID:       int32(o.ID),
			Heap:     o.Kind == mem.HeapObj,
			Name:     o.Name,
			Base:     o.Base,
			Size:     o.Size,
			Identity: o.Identity,
			AllocIP:  o.AllocIP,
			TypeID:   int32(o.TypeID),
		})
	}
	out := make([]*profile.ThreadProfile, 0, len(s.threads))
	for i := range s.threads {
		tp := s.threads[i].prof
		tp.Objects = objs
		if i < len(st.PerThread) {
			tp.AppCycles = st.PerThread[i].Cycles
			tp.OverheadCycles = st.PerThread[i].OverheadCycles
			tp.MemOps = st.PerThread[i].MemOps
		}
		out = append(out, tp)
	}
	return out
}

// Profiles returns the in-progress thread profiles (for tests).
func (s *Sampler) Profiles() []*profile.ThreadProfile {
	out := make([]*profile.ThreadProfile, 0, len(s.threads))
	for i := range s.threads {
		out = append(out, s.threads[i].prof)
	}
	return out
}

// splitmix64 seeds the per-thread xorshift state well even from small
// seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}
