package pebs

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/vm"
)

// driveInstrs feeds accesses whose Instrs counter advances by
// instrsPerAccess each time, modeling a given memory-op density.
func driveInstrs(s *Sampler, n int, instrsPerAccess uint64) {
	var instrs uint64
	for i := 0; i < n; i++ {
		instrs += instrsPerAccess
		ev := vm.MemEvent{
			TID: 0, IP: 0x400100, EA: mem.StaticBase + uint64(i)*8,
			Latency: 10, Level: 1, Cycle: uint64(i * 10), Instrs: instrs,
		}
		s.OnAccess(&ev)
	}
}

func ibsConfig(period uint64) Config {
	c := DefaultConfig()
	c.Mode = ModeIBS
	c.Period = period
	c.Randomize = false
	return c
}

func TestIBSDenseMemoryCode(t *testing.T) {
	// Every instruction is a memory access: every tag converts, so the
	// sample rate matches PEBS-LL's.
	space := mem.NewSpace()
	space.AllocStatic("arr", 1<<20, -1, 0)
	s := NewSampler(ibsConfig(100), space, 1)
	driveInstrs(s, 10_000, 1)
	if got := s.Profiles()[0].NumSamples; got != 100 {
		t.Errorf("samples = %d, want 100", got)
	}
}

func TestIBSSparseMemoryCodeLosesTags(t *testing.T) {
	// One memory access per 10 instructions: ~90% of tags land on
	// non-memory ops and are dropped, unlike PEBS-LL which always
	// periods off memory accesses.
	space := mem.NewSpace()
	space.AllocStatic("arr", 1<<20, -1, 0)

	ibs := NewSampler(ibsConfig(100), space, 1)
	driveInstrs(ibs, 10_000, 10) // 100k instructions total
	ibsSamples := ibs.Profiles()[0].NumSamples

	pebs := NewSampler(fixedConfig(100), space, 1)
	driveInstrs(pebs, 10_000, 10)
	pebsSamples := pebs.Profiles()[0].NumSamples

	if pebsSamples != 100 {
		t.Fatalf("pebs samples = %d, want 100", pebsSamples)
	}
	// IBS fires 1000 tags over 100k instructions; ~10% hit the memory
	// op (every 10th instruction) — expect ≈100 too, BUT only when the
	// access pattern aligns. With instrs advancing by exactly 10 and
	// period 100, tags at multiples of 100 always align. Use a
	// misaligned period to expose tag loss.
	misaligned := NewSampler(ibsConfig(103), space, 1)
	driveInstrs(misaligned, 10_000, 10)
	lost := misaligned.Profiles()[0].NumSamples
	if lost >= ibsSamples {
		t.Errorf("misaligned IBS should lose tags: %d vs %d", lost, ibsSamples)
	}
	if lost == 0 {
		t.Error("misaligned IBS lost every tag; expected ~1 in 10 to hit memory ops")
	}
	_ = ibsSamples
}

func TestIBSModeString(t *testing.T) {
	if ModeIBS.String() != "ibs" || ModePEBSLL.String() != "pebs-ll" {
		t.Error("mode strings wrong")
	}
}

func TestIBSDeterministicWithRandomization(t *testing.T) {
	run := func() uint64 {
		space := mem.NewSpace()
		space.AllocStatic("arr", 1<<20, -1, 0)
		cfg := ibsConfig(64)
		cfg.Randomize = true
		cfg.Seed = 9
		s := NewSampler(cfg, space, 1)
		driveInstrs(s, 50_000, 3)
		return s.Profiles()[0].NumSamples
	}
	if run() != run() {
		t.Error("IBS sampling not deterministic per seed")
	}
}
