package pebs

// Edge-case coverage for the AccessGap/SkipAccesses/WindowPlan protocol:
// gaps that span a thread's termination, gaps that cross a change of the
// sampling period, zero-length gaps, and the WindowPlan budget split the
// statistical engine relies on. These are the corners the differential
// protocol test (gap_test.go) exercises only probabilistically, if at all.

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/vm"
)

// mkEvent returns a minimal deliverable event for thread tid over object o.
func mkEvent(tid int, o *mem.Object) vm.MemEvent {
	return vm.MemEvent{
		TID:     tid,
		IP:      0x400,
		EA:      o.Base,
		Size:    8,
		Latency: 10,
		Level:   1,
		Cycle:   1,
		Instrs:  1,
	}
}

// TestGapSpansThreadTermination models a thread that exits mid-gap: the
// machine consulted AccessGap, the thread retired only part of the
// promised budget before terminating, and the machine books the partial
// count. The sampler must emit nothing for the dead thread, keep its
// bookkeeping consistent (so a later phase reusing the TID resumes the
// same countdown), and leave other threads untouched.
func TestGapSpansThreadTermination(t *testing.T) {
	space := mem.NewSpace()
	o := space.AllocStatic("a", 4096, -1, 0)
	s := NewSampler(Config{Period: 100, InterruptCost: 1}, space, 2)

	gap0, byInstrs := s.AccessGap(0)
	if byInstrs {
		t.Fatal("PEBS mode must report access-counted gaps")
	}
	if gap0 != 99 {
		t.Fatalf("fresh thread gap = %d, want 99", gap0)
	}

	// Thread 0 retires 40 of the promised 99 free accesses, then exits.
	s.SkipAccesses(0, 40)

	if n := s.Profiles()[0].NumSamples; n != 0 {
		t.Fatalf("terminated thread recorded %d samples, want 0", n)
	}
	if gap, _ := s.AccessGap(0); gap != 59 {
		t.Fatalf("post-termination gap = %d, want 59", gap)
	}
	// Thread 1 is unaffected by thread 0's partial gap.
	if gap, _ := s.AccessGap(1); gap != 99 {
		t.Fatalf("sibling thread gap = %d, want 99", gap)
	}

	// A later phase reuses TID 0: delivery resumes the surviving
	// countdown, so the 60th access from here is the sample.
	ev := mkEvent(0, o)
	var cost uint64
	for i := 0; i < 60; i++ {
		cost += s.OnAccess(&ev)
	}
	if n := s.Profiles()[0].NumSamples; n != 1 {
		t.Fatalf("resumed thread samples = %d, want exactly 1", n)
	}
	if cost != 1+s.cfg.SharedAttribCost {
		t.Fatalf("handler cost = %d, want %d", cost, 1+s.cfg.SharedAttribCost)
	}
}

// TestGapCrossesPeriodChange re-arms with a new period mid-gap (the
// profiler lowering its rate online). The in-flight gap was drawn under
// the old period and must complete under it — hardware keeps the armed
// counter — while the next re-arm draws from the new period.
func TestGapCrossesPeriodChange(t *testing.T) {
	space := mem.NewSpace()
	o := space.AllocStatic("a", 4096, -1, 0)
	s := NewSampler(Config{Period: 50, InterruptCost: 1}, space, 1)

	// Burn 20 accesses of the armed 50-access period, then change period.
	s.SkipAccesses(0, 20)
	s.cfg.Period = 10

	// The in-flight gap still has 29 free accesses: skipping them and
	// delivering one more must fire exactly one sample.
	gap, _ := s.AccessGap(0)
	if gap != 29 {
		t.Fatalf("in-flight gap after period change = %d, want 29", gap)
	}
	s.SkipAccesses(0, gap)
	ev := mkEvent(0, o)
	if c := s.OnAccess(&ev); c == 0 {
		t.Fatal("gap-ending delivery produced no sample")
	}

	// The re-armed gap uses the new period.
	if gap, _ := s.AccessGap(0); gap != 9 {
		t.Fatalf("re-armed gap = %d, want 9 (new period)", gap)
	}
	if n := s.Profiles()[0].NumSamples; n != 1 {
		t.Fatalf("samples = %d, want 1", n)
	}
}

// TestZeroLengthGaps pins the degenerate budgets: a Period of 1 yields a
// permanent zero gap (every access sampled), and SkipAccesses(tid, 0) is
// a no-op the machine may issue at any quantum boundary.
func TestZeroLengthGaps(t *testing.T) {
	space := mem.NewSpace()
	o := space.AllocStatic("a", 4096, -1, 0)
	s := NewSampler(Config{Period: 1, InterruptCost: 1}, space, 1)

	ev := mkEvent(0, o)
	for i := 0; i < 5; i++ {
		if gap, byInstrs := s.AccessGap(0); gap != 0 || byInstrs {
			t.Fatalf("access %d: gap = %d byInstrs=%v, want 0/false", i, gap, byInstrs)
		}
		s.SkipAccesses(0, 0) // quantum boundary with nothing pending
		if c := s.OnAccess(&ev); c == 0 {
			t.Fatalf("access %d: period-1 delivery produced no sample", i)
		}
	}
	if n := s.Profiles()[0].NumSamples; n != 5 {
		t.Fatalf("samples = %d, want 5 (every access sampled)", n)
	}
}

// TestWindowPlanBudgetSplit pins the statistical engine's contract: the
// fast-forward prefix plus the warmup window exactly reconstructs the
// inter-sample gap, short gaps yield no fast-forward at all, and IBS mode
// (instruction-gated gaps, no access budget) always declines.
func TestWindowPlanBudgetSplit(t *testing.T) {
	space := mem.NewSpace()
	s := NewSampler(Config{Period: 100}, space, 1)

	// Long gap: 99 free accesses, window 64 → fast-forward 35.
	ff := s.WindowPlan(0, 64)
	if ff != 35 {
		t.Fatalf("fast-forward = %d, want 35", ff)
	}
	// Booking the fast-forward must leave exactly the warmup window.
	s.SkipAccesses(0, ff)
	if gap, _ := s.AccessGap(0); gap != 64 {
		t.Fatalf("post-fast-forward gap = %d, want the 64-access window", gap)
	}

	// Gap equal to or shorter than the window: simulate everything.
	if ff := s.WindowPlan(0, 64); ff != 0 {
		t.Fatalf("gap==window fast-forward = %d, want 0", ff)
	}
	if ff := s.WindowPlan(0, 1000); ff != 0 {
		t.Fatalf("gap<window fast-forward = %d, want 0", ff)
	}

	// IBS gaps are instruction-gated: no access budget to split.
	ibs := NewSampler(Config{Mode: ModeIBS, Period: 100}, space, 1)
	if ff := ibs.WindowPlan(0, 64); ff != 0 {
		t.Fatalf("IBS fast-forward = %d, want 0", ff)
	}
}
