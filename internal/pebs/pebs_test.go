package pebs

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/profile"
	"repro/internal/vm"
)

func fixedConfig(period uint64) Config {
	c := DefaultConfig()
	c.Period = period
	c.Randomize = false
	return c
}

// drive pushes n synthetic accesses with the given stride through the
// sampler for thread 0 and returns total charged overhead.
func drive(s *Sampler, n int, base uint64, stride uint64, ip uint64, latency uint32) uint64 {
	var overhead uint64
	for i := 0; i < n; i++ {
		ev := vm.MemEvent{
			TID: 0, IP: ip, EA: base + uint64(i)*stride,
			Latency: latency, Level: 1, Cycle: uint64(i * 10),
		}
		overhead += s.OnAccess(&ev)
	}
	return overhead
}

func TestSamplingRateFixedPeriod(t *testing.T) {
	space := mem.NewSpace()
	space.AllocStatic("arr", 1<<20, -1, 0)
	s := NewSampler(fixedConfig(100), space, 1)
	drive(s, 10_000, mem.StaticBase, 8, 0x400100, 10)
	tp := s.Profiles()[0]
	if tp.NumSamples != 100 {
		t.Errorf("samples = %d, want exactly 100 at period 100", tp.NumSamples)
	}
}

func TestSamplingRateRandomized(t *testing.T) {
	space := mem.NewSpace()
	space.AllocStatic("arr", 1<<20, -1, 0)
	cfg := DefaultConfig()
	cfg.Period = 100
	cfg.Randomize = true
	s := NewSampler(cfg, space, 1)
	drive(s, 100_000, mem.StaticBase, 8, 0x400100, 10)
	n := s.Profiles()[0].NumSamples
	// Mean gap stays ≈ the period: expect 1000 ± 15%.
	if n < 850 || n > 1150 {
		t.Errorf("samples = %d, want ≈1000", n)
	}
}

func TestRandomizedIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) uint64 {
		space := mem.NewSpace()
		space.AllocStatic("arr", 1<<20, -1, 0)
		cfg := DefaultConfig()
		cfg.Period = 64
		cfg.Seed = seed
		s := NewSampler(cfg, space, 1)
		drive(s, 10_000, mem.StaticBase, 8, 0x400100, 10)
		return s.Profiles()[0].NumSamples
	}
	if run(7) != run(7) {
		t.Error("same seed, different sample count")
	}
}

func TestSampleFieldsAndAttribution(t *testing.T) {
	space := mem.NewSpace()
	obj := space.AllocStatic("arr", 4096, -1, 0)
	s := NewSampler(fixedConfig(10), space, 1)
	drive(s, 100, obj.Base, 16, 0x400abc, 33)
	tp := s.Profiles()[0]
	if tp.NumSamples != 10 {
		t.Fatalf("samples = %d", tp.NumSamples)
	}
	for _, sm := range tp.Samples {
		if sm.IP != 0x400abc || sm.Latency != 33 || sm.ObjID != int32(obj.ID) {
			t.Fatalf("sample fields wrong: %+v", sm)
		}
	}
	// Stream stats: single stream, GCD = 16*period? Samples are 10
	// accesses apart at stride 16 → deltas of 160.
	key := profile.StreamKey{IP: 0x400abc, Identity: obj.Identity}
	st := tp.Streams[key]
	if st == nil {
		t.Fatal("stream missing")
	}
	if st.GCD != 160 {
		t.Errorf("online GCD = %d, want 160", st.GCD)
	}
}

func TestUnattributedAddresses(t *testing.T) {
	space := mem.NewSpace() // no objects at all
	s := NewSampler(fixedConfig(1), space, 1)
	drive(s, 5, 0xdead0000, 8, 0x400100, 10)
	tp := s.Profiles()[0]
	if tp.NumSamples != 5 {
		t.Fatalf("samples = %d", tp.NumSamples)
	}
	for _, sm := range tp.Samples {
		if sm.ObjID != -1 {
			t.Errorf("unattributed sample got object %d", sm.ObjID)
		}
	}
	// They still form a stream under identity 0.
	if tp.Streams[profile.StreamKey{IP: 0x400100, Identity: 0}] == nil {
		t.Error("identity-0 stream missing")
	}
}

func TestOverheadCharging(t *testing.T) {
	space := mem.NewSpace()
	space.AllocStatic("arr", 1<<20, -1, 0)
	cfg := fixedConfig(100)
	cfg.InterruptCost = 2000
	s := NewSampler(cfg, space, 1)
	overhead := drive(s, 1000, mem.StaticBase, 8, 1, 10)
	if overhead != 10*2000 {
		t.Errorf("overhead = %d, want %d", overhead, 10*2000)
	}
}

func TestSharedAttribContention(t *testing.T) {
	space := mem.NewSpace()
	space.AllocStatic("arr", 1<<20, -1, 0)
	cfg := fixedConfig(100)
	cfg.InterruptCost = 2000
	cfg.SharedAttribCost = 500
	// 4 threads: each sample costs 2000 + 3×500.
	s := NewSampler(cfg, space, 4)
	overhead := drive(s, 1000, mem.StaticBase, 8, 1, 10)
	if overhead != 10*(2000+3*500) {
		t.Errorf("overhead = %d, want %d", overhead, 10*(2000+3*500))
	}
}

func TestMinLatencyFilter(t *testing.T) {
	space := mem.NewSpace()
	space.AllocStatic("arr", 1<<20, -1, 0)
	cfg := fixedConfig(10)
	cfg.MinLatency = 50
	s := NewSampler(cfg, space, 1)
	overhead := drive(s, 1000, mem.StaticBase, 8, 1, 10) // latency 10 < 50
	tp := s.Profiles()[0]
	if tp.NumSamples != 0 {
		t.Errorf("filtered samples = %d, want 0", tp.NumSamples)
	}
	if overhead != 0 {
		t.Errorf("filtered samples charged overhead %d", overhead)
	}
	drive(s, 1000, mem.StaticBase, 8, 1, 100) // latency 100 ≥ 50
	if tp.NumSamples == 0 {
		t.Error("above-threshold samples filtered")
	}
}

func TestPerThreadIsolation(t *testing.T) {
	space := mem.NewSpace()
	space.AllocStatic("arr", 1<<20, -1, 0)
	s := NewSampler(fixedConfig(10), space, 2)
	for i := 0; i < 100; i++ {
		ev := vm.MemEvent{TID: 1, IP: 7, EA: mem.StaticBase + uint64(i*8), Latency: 5, Cycle: uint64(i)}
		s.OnAccess(&ev)
	}
	if got := s.Profiles()[0].NumSamples; got != 0 {
		t.Errorf("thread 0 saw %d samples for thread 1's accesses", got)
	}
	if got := s.Profiles()[1].NumSamples; got != 10 {
		t.Errorf("thread 1 samples = %d, want 10", got)
	}
}

func TestFinishSnapshotsObjectsAndCycles(t *testing.T) {
	space := mem.NewSpace()
	space.AllocStatic("arr", 4096, 2, 0)
	space.AllocHeap(64, 0x400100, []uint64{0x400050}, 3)
	s := NewSampler(fixedConfig(10), space, 1)
	drive(s, 50, mem.StaticBase, 8, 1, 10)
	tps := s.Finish(vm.Stats{PerThread: []vm.ThreadStats{{Cycles: 500, OverheadCycles: 50, MemOps: 50}}})
	if len(tps) != 1 {
		t.Fatal("profiles missing")
	}
	tp := tps[0]
	if len(tp.Objects) != 2 {
		t.Fatalf("objects = %d, want 2", len(tp.Objects))
	}
	if !tp.Objects[1].Heap || tp.Objects[1].TypeID != 3 || tp.Objects[1].AllocIP != 0x400100 {
		t.Errorf("heap snapshot wrong: %+v", tp.Objects[1])
	}
	if tp.AppCycles != 500 || tp.OverheadCycles != 50 || tp.MemOps != 50 {
		t.Errorf("cycle accounts wrong: %+v", tp)
	}
}

func TestZeroPeriodDefaults(t *testing.T) {
	s := NewSampler(Config{}, mem.NewSpace(), 1)
	if s.cfg.Period != DefaultConfig().Period {
		t.Errorf("period = %d", s.cfg.Period)
	}
}
