package cfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// LoopInfo is a program-level view of one loop, keyed uniquely across
// functions and annotated with the source-line interval of its members —
// the form in which StructSlim reports loops ("the loop at line 615-616").
type LoopInfo struct {
	Key         uint64 // see LoopKey
	FnID        int
	FnName      string
	File        string
	LoopID      int // id within the function's forest
	Depth       int
	LineLo      int32
	LineHi      int32
	IPLo        uint64
	IPHi        uint64
	NumBlocks   int
	Irreducible bool
}

// Name renders the paper-style identifier, e.g. "art.c:615-616".
func (li *LoopInfo) Name() string {
	if li.LineLo == li.LineHi {
		return fmt.Sprintf("%s:%d", li.File, li.LineLo)
	}
	return fmt.Sprintf("%s:%d-%d", li.File, li.LineLo, li.LineHi)
}

// LoopKey composes the program-unique key of a loop. Function ids are
// offset by one so no valid loop hashes to 0, the "not in a loop"
// sentinel.
func LoopKey(fnID, header int) uint64 {
	return uint64(fnID+1)<<32 | uint64(uint32(header))
}

// ProgramLoops is the loop structure of a whole program, with an IP →
// innermost-loop index for sample attribution.
type ProgramLoops struct {
	p       *prog.Program
	Forests []*Forest // indexed by function id
	infos   map[uint64]*LoopInfo
	// ipKey[i] is the loop key of the instruction with index i (in the
	// program-wide IP numbering), or 0 when the instruction is not inside
	// any loop.
	ipKey []uint64
}

// AnalyzeLoops builds CFGs and loop forests for every function of a
// finalized program and indexes every instruction by its innermost loop.
func AnalyzeLoops(p *prog.Program) (*ProgramLoops, error) {
	if !p.Finalized() {
		return nil, fmt.Errorf("program %s not finalized", p.Name)
	}
	pl := &ProgramLoops{
		p:     p,
		infos: make(map[uint64]*LoopInfo),
		ipKey: make([]uint64, p.NumInstrs()),
	}
	for _, f := range p.Funcs {
		g := Build(f)
		forest := FindLoops(g)
		pl.Forests = append(pl.Forests, forest)

		for _, l := range forest.Loops {
			info := &LoopInfo{
				Key:         LoopKey(f.ID, l.Header),
				FnID:        f.ID,
				FnName:      f.Name,
				File:        f.File,
				LoopID:      l.ID,
				Depth:       l.Depth,
				LineLo:      1 << 30,
				NumBlocks:   len(l.Blocks),
				Irreducible: l.Irreducible,
				IPLo:        ^uint64(0),
			}
			for _, bid := range l.Blocks {
				for i := range f.Blocks[bid].Instrs {
					in := &f.Blocks[bid].Instrs[i]
					if in.Line > 0 && in.Line < info.LineLo {
						info.LineLo = in.Line
					}
					if in.Line > info.LineHi {
						info.LineHi = in.Line
					}
					if in.IP < info.IPLo {
						info.IPLo = in.IP
					}
					if in.IP > info.IPHi {
						info.IPHi = in.IP
					}
				}
			}
			if info.LineLo == 1<<30 {
				info.LineLo = 0
			}
			pl.infos[info.Key] = info
		}

		// Attribute each instruction to its innermost loop.
		for bid, blk := range f.Blocks {
			lid := forest.InnermostOf[bid]
			if lid < 0 {
				continue
			}
			key := LoopKey(f.ID, forest.Loops[lid].Header)
			for i := range blk.Instrs {
				idx := (blk.Instrs[i].IP - isa.TextBase) / isa.InstrBytes
				pl.ipKey[idx] = key
			}
		}
	}
	return pl, nil
}

// LoopOfIP returns the innermost loop containing the instruction at ip,
// or nil when the instruction is loop-free or unknown.
func (pl *ProgramLoops) LoopOfIP(ip uint64) *LoopInfo {
	if ip < isa.TextBase {
		return nil
	}
	idx := (ip - isa.TextBase) / isa.InstrBytes
	if idx >= uint64(len(pl.ipKey)) {
		return nil
	}
	key := pl.ipKey[idx]
	if key == 0 {
		return nil
	}
	return pl.infos[key]
}

// Info returns the LoopInfo for a loop key, or nil.
func (pl *ProgramLoops) Info(key uint64) *LoopInfo { return pl.infos[key] }

// AllLoops returns every loop in the program, ordered by (FnID, LoopID):
// the forest's loop numbering, not header block order. The order is the
// canonical one for rendering, so reports and dot output are
// byte-identical across runs.
func (pl *ProgramLoops) AllLoops() []*LoopInfo {
	out := make([]*LoopInfo, 0, len(pl.infos))
	for _, li := range pl.infos {
		out = append(out, li)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FnID != out[j].FnID {
			return out[i].FnID < out[j].FnID
		}
		return out[i].LoopID < out[j].LoopID
	})
	return out
}

// NumLoops returns the total loop count of the program.
func (pl *ProgramLoops) NumLoops() int { return len(pl.infos) }
