package cfg

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// rawFunc assembles a function from (terminator, target) pairs so tests
// can build arbitrary — including irreducible — CFG shapes. Each block
// gets one Nop plus the terminator; term "fall" means no terminator
// (fallthrough), "br" a conditional branch, "jmp" unconditional, "halt"
// ends.
type rawBlock struct {
	term   string
	target int
}

func rawProgram(t *testing.T, blocks []rawBlock) *prog.Program {
	t.Helper()
	f := &prog.Func{ID: 0, Name: "f", File: "f.c"}
	for i, rb := range blocks {
		blk := &prog.Block{ID: i}
		blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Nop, Line: int32(10 * (i + 1))})
		switch rb.term {
		case "fall":
			// Validity: only legal for non-last blocks; tests ensure that.
			blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Nop, Line: int32(10*(i+1) + 1)})
		case "br":
			blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Br, Cmp: isa.Lt, Rs1: 1, Rs2: 2, Target: rb.target, Line: int32(10*(i+1) + 1)})
		case "jmp":
			blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Jmp, Target: rb.target, Line: int32(10*(i+1) + 1)})
		case "halt":
			blk.Instrs = append(blk.Instrs, isa.Instr{Op: isa.Halt, Line: int32(10*(i+1) + 1)})
		default:
			t.Fatalf("bad term %q", rb.term)
		}
		f.Blocks = append(f.Blocks, blk)
	}
	p := &prog.Program{Name: "raw", Funcs: []*prog.Func{f}}
	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

func TestBuildEdges(t *testing.T) {
	// b0: br→2 | fall→1; b1: jmp→3; b2: fall→3; b3: halt
	p := rawProgram(t, []rawBlock{
		{term: "br", target: 2},
		{term: "jmp", target: 3},
		{term: "fall"},
		{term: "halt"},
	})
	g := Build(p.Funcs[0])
	wantSuccs := [][]int{{2, 1}, {3}, {3}, nil}
	for i, want := range wantSuccs {
		if len(g.Succs[i]) != len(want) {
			t.Fatalf("succs(%d) = %v, want %v", i, g.Succs[i], want)
		}
		for j := range want {
			if g.Succs[i][j] != want[j] {
				t.Fatalf("succs(%d) = %v, want %v", i, g.Succs[i], want)
			}
		}
	}
	if len(g.Preds[3]) != 2 {
		t.Errorf("preds(3) = %v", g.Preds[3])
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// Diamond: 0 → {1,2} → 3.
	p := rawProgram(t, []rawBlock{
		{term: "br", target: 2},
		{term: "jmp", target: 3},
		{term: "fall"},
		{term: "halt"},
	})
	g := Build(p.Funcs[0])
	idom := g.Dominators()
	if idom[0] != 0 || idom[1] != 0 || idom[2] != 0 || idom[3] != 0 {
		t.Errorf("idom = %v, want all 0", idom)
	}
	if !Dominates(idom, 0, 3) || Dominates(idom, 1, 3) {
		t.Error("Dominates wrong on diamond")
	}
}

func TestDominatorsChainAndUnreachable(t *testing.T) {
	// 0→1→3; block 2 unreachable.
	p := rawProgram(t, []rawBlock{
		{term: "jmp", target: 1},
		{term: "jmp", target: 3},
		{term: "fall"},
		{term: "halt"},
	})
	g := Build(p.Funcs[0])
	idom := g.Dominators()
	if idom[2] != -1 {
		t.Errorf("unreachable block has idom %d", idom[2])
	}
	if idom[3] != 1 || idom[1] != 0 {
		t.Errorf("idom = %v", idom)
	}
	if Dominates(idom, 0, 2) {
		t.Error("claims to dominate unreachable block")
	}
}

func TestFindLoopsSimple(t *testing.T) {
	// 0 → 1 (header); 1 → {2 (body), 3 (exit)}; 2 → 1.
	p := rawProgram(t, []rawBlock{
		{term: "jmp", target: 1},
		{term: "br", target: 3}, // exit branch, falls into 2
		{term: "jmp", target: 1},
		{term: "halt"},
	})
	forest := FindLoops(Build(p.Funcs[0]))
	if len(forest.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	if l.Header != 1 || l.Irreducible || l.Depth != 1 {
		t.Errorf("loop = %+v", l)
	}
	wantMembers := map[int]bool{1: true, 2: true}
	if len(l.Blocks) != 2 {
		t.Errorf("blocks = %v", l.Blocks)
	}
	for _, b := range l.Blocks {
		if !wantMembers[b] {
			t.Errorf("unexpected member %d", b)
		}
	}
	if forest.InnermostOf[0] != -1 || forest.InnermostOf[3] != -1 {
		t.Error("non-loop blocks attributed to a loop")
	}
	if forest.InnermostOf[1] != l.ID || forest.InnermostOf[2] != l.ID {
		t.Error("loop blocks not attributed")
	}
}

func TestFindLoopsNested(t *testing.T) {
	// 0→1; 1(outer hdr) → {2, 5}; 2(inner hdr) → {3, 4}; 3 → 2; 4 → 1; 5 halt.
	p := rawProgram(t, []rawBlock{
		{term: "jmp", target: 1},
		{term: "br", target: 5},
		{term: "br", target: 4},
		{term: "jmp", target: 2},
		{term: "jmp", target: 1},
		{term: "halt"},
	})
	forest := FindLoops(Build(p.Funcs[0]))
	if len(forest.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(forest.Loops))
	}
	var inner, outer *Loop
	for _, l := range forest.Loops {
		switch l.Header {
		case 1:
			outer = l
		case 2:
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("headers wrong: %+v", forest.Loops)
	}
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d", outer.Depth, inner.Depth)
	}
	// Inner blocks are attributed to the inner loop, and transitively to
	// the outer one.
	if forest.InnermostOf[3] != inner.ID {
		t.Errorf("block 3 innermost = %d", forest.InnermostOf[3])
	}
	if forest.InnermostOf[4] != outer.ID {
		t.Errorf("block 4 innermost = %d", forest.InnermostOf[4])
	}
	found := false
	for _, b := range outer.Blocks {
		if b == 3 {
			found = true
		}
	}
	if !found {
		t.Error("outer loop does not transitively contain inner body")
	}
}

func TestFindLoopsSelfLoop(t *testing.T) {
	// 0 → 1; 1 → {1, 2}; 2 halt.
	p := rawProgram(t, []rawBlock{
		{term: "jmp", target: 1},
		{term: "br", target: 1},
		{term: "halt"},
	})
	forest := FindLoops(Build(p.Funcs[0]))
	if len(forest.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(forest.Loops))
	}
	if !forest.Loops[0].SelfLoop || forest.Loops[0].Header != 1 {
		t.Errorf("self loop not detected: %+v", forest.Loops[0])
	}
	if forest.InnermostOf[1] != 0 {
		t.Error("self-loop header not attributed to its loop")
	}
}

func TestFindLoopsIrreducible(t *testing.T) {
	// Classic irreducible region: 0 branches to both 1 and 2; 1 → 2; 2 → 1;
	// 1 → 3 exit. Two entries into the {1,2} cycle.
	p := rawProgram(t, []rawBlock{
		{term: "br", target: 2}, // 0 → 2 or fall → 1
		{term: "br", target: 3}, // 1 → 3 or fall → 2
		{term: "jmp", target: 1},
		{term: "halt"},
	})
	forest := FindLoops(Build(p.Funcs[0]))
	if len(forest.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(forest.Loops))
	}
	if !forest.Loops[0].Irreducible {
		t.Errorf("irreducible region not flagged: %+v", forest.Loops[0])
	}
}

func TestFindLoopsSequential(t *testing.T) {
	// Two independent loops in sequence.
	p := rawProgram(t, []rawBlock{
		{term: "jmp", target: 1}, // 0
		{term: "br", target: 3},  // 1: hdr A (exit→3, fall→2)
		{term: "jmp", target: 1}, // 2: latch A
		{term: "br", target: 5},  // 3: hdr B (exit→5, fall→4)
		{term: "jmp", target: 3}, // 4: latch B
		{term: "halt"},           // 5
	})
	forest := FindLoops(Build(p.Funcs[0]))
	if len(forest.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(forest.Loops))
	}
	for _, l := range forest.Loops {
		if l.Parent != -1 || l.Depth != 1 {
			t.Errorf("sequential loop nested: %+v", l)
		}
	}
}

// TestAnalyzeLoopsOnBuilderProgram runs the whole pipeline on a program
// written with the structured builder: nested ForRange loops must be
// rediscovered purely from the binary, with correct line intervals.
func TestAnalyzeLoopsOnBuilderProgram(t *testing.T) {
	b := prog.NewBuilder("nest")
	g := b.Global("arr", 64*64*8, -1)
	b.Func("main", "nest.c")
	base, i, j, v := b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.AtLine(100)
	var loadIP *uint64
	b.ForRange(i, 0, 64, 1, func() {
		b.AtLine(101)
		b.ForRange(j, 0, 64, 1, func() {
			b.AtLine(102)
			idx := b.R()
			b.MulI(idx, i, 64)
			b.Add(idx, idx, j)
			b.Load(v, base, idx, 8, 0, 8)
			b.Release(idx)
		})
		b.AtLine(103)
	})
	b.AtLine(110)
	b.Halt()
	p := b.MustProgram()

	pl, err := AnalyzeLoops(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumLoops() != 2 {
		t.Fatalf("loops = %d, want 2", pl.NumLoops())
	}

	// Find the load instruction's IP.
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for k := range blk.Instrs {
				if blk.Instrs[k].Op == isa.Load {
					ip := blk.Instrs[k].IP
					loadIP = &ip
				}
			}
		}
	}
	if loadIP == nil {
		t.Fatal("no load found")
	}
	li := pl.LoopOfIP(*loadIP)
	if li == nil {
		t.Fatal("load not attributed to a loop")
	}
	if li.Depth != 2 {
		t.Errorf("load loop depth = %d, want 2 (inner)", li.Depth)
	}
	if li.LineLo > 102 || li.LineHi < 102 {
		t.Errorf("inner loop lines = %d-%d, want to cover 102", li.LineLo, li.LineHi)
	}
	if li.Name() == "" || li.File != "nest.c" {
		t.Errorf("loop name = %q file = %q", li.Name(), li.File)
	}

	// The halt is outside all loops.
	var haltIP uint64
	for _, blk := range p.Funcs[0].Blocks {
		for k := range blk.Instrs {
			if blk.Instrs[k].Op == isa.Halt {
				haltIP = blk.Instrs[k].IP
			}
		}
	}
	if pl.LoopOfIP(haltIP) != nil {
		t.Error("halt attributed to a loop")
	}
	if pl.LoopOfIP(0) != nil || pl.LoopOfIP(^uint64(0)) != nil {
		t.Error("bogus IPs attributed")
	}

	// AllLoops is stable and sorted by (FnID, LoopID).
	all := pl.AllLoops()
	if len(all) != 2 {
		t.Fatalf("AllLoops = %d entries, want 2", len(all))
	}
	if all[0].FnID > all[1].FnID ||
		(all[0].FnID == all[1].FnID && all[0].LoopID >= all[1].LoopID) {
		t.Error("AllLoops not sorted by (FnID, LoopID)")
	}
	if pl.Info(all[0].Key) != all[0] {
		t.Error("Info lookup broken")
	}
}

// TestWhileLoopDiscovered: WhileNZ pointer-chase loops are found too.
func TestWhileLoopDiscovered(t *testing.T) {
	b := prog.NewBuilder("chase")
	b.Func("main", "c.c")
	preg := b.R()
	b.MovI(preg, 0)
	b.AtLine(50)
	b.WhileNZ(preg, func() {
		b.Load(preg, preg, isa.RZ, 1, 0, 8)
	})
	b.Halt()
	p := b.MustProgram()
	pl, err := AnalyzeLoops(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumLoops() != 1 {
		t.Fatalf("loops = %d, want 1", pl.NumLoops())
	}
}

func TestAnalyzeLoopsRequiresFinalized(t *testing.T) {
	p := &prog.Program{Name: "x"}
	if _, err := AnalyzeLoops(p); err == nil {
		t.Error("unfinalized program accepted")
	}
}

func TestLoopInfoNameSingleLine(t *testing.T) {
	li := &LoopInfo{File: "a.c", LineLo: 96, LineHi: 96}
	if li.Name() != "a.c:96" {
		t.Errorf("Name = %q", li.Name())
	}
	li.LineHi = 98
	if li.Name() != "a.c:96-98" {
		t.Errorf("Name = %q", li.Name())
	}
}

func TestLoopKeyNeverZero(t *testing.T) {
	if LoopKey(0, 0) == 0 {
		t.Error("LoopKey(0,0) collides with the no-loop sentinel")
	}
}
