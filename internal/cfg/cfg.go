// Package cfg recovers control-flow structure from finalized programs:
// control-flow graphs, dominators, and the loop-nesting forest computed
// with Havlak's interval analysis — the same technique the paper's
// profiler (via hpcstruct) uses to identify loop boundaries on binaries.
//
// The analyzer never consults the builder's structured-loop helpers; it
// sees only blocks and branch targets, exactly as a binary analyzer sees
// machine code. Loops are reported with the synthetic source-line ranges
// of their member instructions, which is how StructSlim presents "the hot
// loop at line 615-616" style findings.
package cfg

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Graph is the control-flow graph of one function. Node i is block i.
type Graph struct {
	Fn    *prog.Func
	Succs [][]int
	Preds [][]int
}

// Build derives the CFG from block terminators: a Jmp goes to its target;
// a Br goes to its target or falls through to the next block; Ret and Halt
// end the function; anything else falls through.
func Build(f *prog.Func) *Graph {
	n := len(f.Blocks)
	g := &Graph{
		Fn:    f,
		Succs: make([][]int, n),
		Preds: make([][]int, n),
	}
	addEdge := func(from, to int) {
		g.Succs[from] = append(g.Succs[from], to)
		g.Preds[to] = append(g.Preds[to], from)
	}
	for i, b := range f.Blocks {
		last := &b.Instrs[len(b.Instrs)-1]
		switch last.Op {
		case isa.Jmp:
			addEdge(i, last.Target)
		case isa.Br:
			addEdge(i, last.Target)
			if i+1 < n {
				addEdge(i, i+1)
			}
		case isa.Ret, isa.Halt:
			// no successors
		default:
			if i+1 < n {
				addEdge(i, i+1)
			}
		}
	}
	return g
}

// Dominators computes the immediate-dominator array with the
// Cooper–Harvey–Kennedy iterative algorithm. idom[entry] == entry;
// unreachable blocks get -1.
func (g *Graph) Dominators() []int {
	n := len(g.Succs)
	rpo, rpoIndex := g.reversePostorder()
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if len(rpo) == 0 {
		return idom
	}
	entry := rpo[0]
	idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom = -1
			for _, p := range g.Preds[b] {
				if idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// ReversePostorder returns the reachable blocks in reverse postorder —
// the canonical deterministic sweep order for forward dataflow fixpoints
// (staticlint's affine pass and legality's provenance pass both iterate
// in it so their results are byte-stable across runs).
func (g *Graph) ReversePostorder() []int {
	order, _ := g.reversePostorder()
	return order
}

// reversePostorder returns reachable blocks in reverse postorder, plus
// each block's index in that order (-1 for unreachable).
func (g *Graph) reversePostorder() (order []int, index []int) {
	n := len(g.Succs)
	index = make([]int, n)
	for i := range index {
		index[i] = -1
	}
	visited := make([]bool, n)
	post := make([]int, 0, n)

	type frame struct {
		node int
		next int
	}
	stack := []frame{{node: 0}}
	visited[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succs[f.node]) {
			s := g.Succs[f.node][f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	order = make([]int, len(post))
	for i := range post {
		order[i] = post[len(post)-1-i]
		index[order[i]] = i
	}
	return order, index
}

// Dominates reports whether a dominates b given an idom array.
func Dominates(idom []int, a, b int) bool {
	if idom[b] < 0 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if idom[b] == b {
			return a == b
		}
		b = idom[b]
	}
}
