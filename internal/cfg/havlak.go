package cfg

// Havlak's loop-nesting algorithm (P. Havlak, "Nesting of Reducible and
// Irreducible Loops", TOPLAS 1997 — reference [11] of the paper). It
// discovers the loop forest of an arbitrary CFG, including irreducible
// regions, using one depth-first search and union-find over DFS numbers.

// Loop is one discovered loop.
type Loop struct {
	ID          int
	Header      int   // header block id
	Blocks      []int // all member blocks, including nested loops' blocks
	Parent      int   // enclosing loop id, or -1
	Children    []int
	Depth       int // 1 = outermost
	Irreducible bool
	SelfLoop    bool
}

// Forest is the loop-nesting forest of one function.
type Forest struct {
	Loops []*Loop
	// InnermostOf[b] is the id of the innermost loop containing block b,
	// or -1.
	InnermostOf []int
}

// unionFind is path-compressing union-find over DFS numbers.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

func (u *unionFind) union(child, root int) { u.parent[u.find(child)] = u.find(root) }

// FindLoops computes the loop forest of the graph with Havlak's algorithm.
func FindLoops(g *Graph) *Forest {
	nBlocks := len(g.Succs)
	forest := &Forest{InnermostOf: make([]int, nBlocks)}
	for i := range forest.InnermostOf {
		forest.InnermostOf[i] = -1
	}
	if nBlocks == 0 {
		return forest
	}

	// 1. DFS numbering from the entry block.
	number := make([]int, nBlocks) // block -> DFS number, -1 unreachable
	for i := range number {
		number[i] = -1
	}
	last := make([]int, nBlocks) // DFS number -> highest descendant number
	toBlock := make([]int, 0, nBlocks)

	type frame struct {
		block int
		next  int
	}
	stack := []frame{{block: 0}}
	number[0] = 0
	toBlock = append(toBlock, 0)
	counter := 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succs[f.block]) {
			s := g.Succs[f.block][f.next]
			f.next++
			if number[s] < 0 {
				number[s] = counter
				toBlock = append(toBlock, s)
				counter++
				stack = append(stack, frame{block: s})
			}
			continue
		}
		last[number[f.block]] = counter - 1
		stack = stack[:len(stack)-1]
	}
	n := counter // reachable node count; work in DFS-number space below

	isAncestor := func(w, v int) bool { return w <= v && v <= last[w] }

	// 2. Classify predecessors of each node into back and non-back edges.
	backPreds := make([][]int, n)
	nonBackPreds := make([][]int, n)
	for w := 0; w < n; w++ {
		wb := toBlock[w]
		for _, pb := range g.Preds[wb] {
			v := number[pb]
			if v < 0 {
				continue // unreachable predecessor
			}
			if isAncestor(w, v) {
				backPreds[w] = append(backPreds[w], v)
			} else {
				nonBackPreds[w] = append(nonBackPreds[w], v)
			}
		}
	}

	// 3. Process headers bottom-up.
	uf := newUnionFind(n)
	headerOf := make([]int, n) // immediate loop header per node, -1 none
	for i := range headerOf {
		headerOf[i] = -1
	}
	type nodeKind uint8
	const (
		nonHeader nodeKind = iota
		reducibleHdr
		irreducibleHdr
		selfHdr
	)
	kind := make([]nodeKind, n)

	for w := n - 1; w >= 0; w-- {
		var nodePool []int
		inPool := make(map[int]bool)
		for _, v := range backPreds[w] {
			if v != w {
				r := uf.find(v)
				if !inPool[r] && r != w {
					inPool[r] = true
					nodePool = append(nodePool, r)
				}
			} else {
				kind[w] = selfHdr
			}
		}
		if len(nodePool) > 0 && kind[w] != selfHdr {
			kind[w] = reducibleHdr
		}
		workList := append([]int(nil), nodePool...)
		for len(workList) > 0 {
			x := workList[len(workList)-1]
			workList = workList[:len(workList)-1]
			for _, y := range nonBackPreds[x] {
				yr := uf.find(y)
				if !isAncestor(w, yr) {
					// An entry into the region from outside the spanning
					// subtree: the loop is irreducible.
					kind[w] = irreducibleHdr
					nonBackPreds[w] = append(nonBackPreds[w], yr)
					continue
				}
				if yr != w && !inPool[yr] {
					inPool[yr] = true
					nodePool = append(nodePool, yr)
					workList = append(workList, yr)
				}
			}
		}
		if len(nodePool) > 0 || kind[w] == selfHdr {
			for _, x := range nodePool {
				headerOf[x] = w
				uf.union(x, w)
			}
			if kind[w] == nonHeader {
				kind[w] = reducibleHdr
			}
		}
	}

	// 4. Materialize Loop structs in header DFS order so parents (outer
	// loops, smaller DFS numbers) come first.
	loopIDOf := make([]int, n)
	for i := range loopIDOf {
		loopIDOf[i] = -1
	}
	for w := 0; w < n; w++ {
		if kind[w] == nonHeader {
			continue
		}
		l := &Loop{
			ID:          len(forest.Loops),
			Header:      toBlock[w],
			Parent:      -1,
			Irreducible: kind[w] == irreducibleHdr,
			SelfLoop:    kind[w] == selfHdr,
		}
		loopIDOf[w] = l.ID
		forest.Loops = append(forest.Loops, l)
	}

	// Parent links: a header's enclosing loop is the loop of its own
	// immediate header (following headerOf).
	for w := 0; w < n; w++ {
		lid := loopIDOf[w]
		if lid < 0 {
			continue
		}
		if h := headerOf[w]; h >= 0 && loopIDOf[h] >= 0 {
			forest.Loops[lid].Parent = loopIDOf[h]
			forest.Loops[loopIDOf[h]].Children = append(forest.Loops[loopIDOf[h]].Children, lid)
		}
	}

	// Depths.
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(forest.Loops[c], d+1)
		}
	}
	for _, l := range forest.Loops {
		if l.Parent < 0 {
			setDepth(l, 1)
		}
	}

	// Membership: each node belongs to the loop of its innermost header;
	// headers belong to their own loop.
	for w := 0; w < n; w++ {
		lid := loopIDOf[w]
		if lid < 0 {
			if h := headerOf[w]; h >= 0 {
				lid = loopIDOf[h]
			}
		}
		if lid >= 0 {
			forest.InnermostOf[toBlock[w]] = lid
		}
	}
	// Full block lists, propagating members to enclosing loops.
	for b := 0; b < nBlocks; b++ {
		for lid := forest.InnermostOf[b]; lid >= 0; lid = forest.Loops[lid].Parent {
			forest.Loops[lid].Blocks = append(forest.Loops[lid].Blocks, b)
		}
	}
	return forest
}
