package cfg

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/prog"
)

func nestedLoopProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("dotprog")
	g := b.Global("a", 64*8, -1)
	b.Func("main", "d.c")
	base, i, j, v := b.R(), b.R(), b.R(), b.R()
	b.GAddr(base, g)
	b.AtLine(10)
	b.ForRange(i, 0, 8, 1, func() {
		b.AtLine(11)
		b.ForRange(j, 0, 8, 1, func() {
			b.AtLine(12)
			b.Load(v, base, j, 8, 0, 8)
		})
	})
	b.Halt()
	return b.MustProgram()
}

func TestWriteDot(t *testing.T) {
	p := nestedLoopProgram(t)
	pl, err := AnalyzeLoops(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteDot(&buf, p.Funcs[0], pl.Forests[0])
	out := buf.String()
	for _, want := range []string{
		"digraph cfg_main", "->", "style=bold", // loop headers highlighted
		"color=red", // back edges
		"[loop d2]", // nesting annotation
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDotNoForest(t *testing.T) {
	p := nestedLoopProgram(t)
	var buf bytes.Buffer
	WriteDot(&buf, p.Funcs[0], nil)
	if !strings.Contains(buf.String(), "digraph") {
		t.Error("dot output without forest broken")
	}
}

func TestWriteLoopReport(t *testing.T) {
	p := nestedLoopProgram(t)
	pl, err := AnalyzeLoops(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteLoopReport(&buf, p, pl)
	out := buf.String()
	if !strings.Contains(out, "func main") {
		t.Errorf("loop report missing function:\n%s", out)
	}
	// The inner loop must be indented under the outer one.
	lines := strings.Split(out, "\n")
	var outerIndent, innerIndent int
	for _, ln := range lines {
		if strings.Contains(ln, "d.c:") {
			indent := len(ln) - len(strings.TrimLeft(ln, " "))
			if outerIndent == 0 {
				outerIndent = indent
			} else if innerIndent == 0 {
				innerIndent = indent
			}
		}
	}
	if innerIndent <= outerIndent {
		t.Errorf("nesting not shown by indentation (outer %d, inner %d):\n%s",
			outerIndent, innerIndent, out)
	}
}
