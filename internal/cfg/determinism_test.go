package cfg

import (
	"bytes"
	"testing"

	"repro/internal/prog"
)

// buildNested builds a two-function program with a triple nest plus a
// sibling loop in main and a double nest in the helper, exercising enough
// forest structure that an ordering bug would show.
func buildNested(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("det")
	helper := b.Func("helper", "det.c")
	{
		i, j := b.R(), b.R()
		b.AtLine(5)
		b.ForRange(i, 0, 4, 1, func() {
			b.ForRange(j, 0, 4, 1, func() {
				b.AddI(j, j, 0)
			})
		})
		b.Ret()
	}
	main := b.Func("main", "det.c")
	{
		i, j, k := b.R(), b.R(), b.R()
		b.AtLine(20)
		b.ForRange(i, 0, 3, 1, func() {
			b.ForRange(j, 0, 3, 1, func() {
				b.ForRange(k, 0, 3, 1, func() {
					b.AddI(k, k, 0)
				})
			})
		})
		b.AtLine(30)
		b.ForRange(i, 0, 3, 1, func() {
			b.Call(helper)
		})
		b.Halt()
	}
	b.SetEntry(main)
	p, err := b.Program()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

// TestLoopOutputDeterministic: two independent analyses of the same
// program must render byte-identical loop reports and dot files, and
// AllLoops must enumerate in (FnID, LoopID) order.
func TestLoopOutputDeterministic(t *testing.T) {
	p := buildNested(t)

	render := func() (string, string) {
		pl, err := AnalyzeLoops(p)
		if err != nil {
			t.Fatalf("AnalyzeLoops: %v", err)
		}
		var report bytes.Buffer
		WriteLoopReport(&report, p, pl)
		var dots bytes.Buffer
		for _, f := range p.Funcs {
			WriteDot(&dots, f, pl.Forests[f.ID])
		}
		return report.String(), dots.String()
	}

	r1, d1 := render()
	for run := 0; run < 5; run++ {
		r2, d2 := render()
		if r1 != r2 {
			t.Fatalf("loop report differs between runs:\n--- run 0:\n%s\n--- run %d:\n%s", r1, run+1, r2)
		}
		if d1 != d2 {
			t.Fatalf("dot output differs between runs")
		}
	}

	pl, err := AnalyzeLoops(p)
	if err != nil {
		t.Fatalf("AnalyzeLoops: %v", err)
	}
	all := pl.AllLoops()
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.FnID > b.FnID || (a.FnID == b.FnID && a.LoopID >= b.LoopID) {
			t.Fatalf("AllLoops out of order at %d: (%d,%d) before (%d,%d)",
				i, a.FnID, a.LoopID, b.FnID, b.LoopID)
		}
	}
	if len(all) != 6 {
		t.Errorf("loops found = %d, want 6", len(all))
	}
}
