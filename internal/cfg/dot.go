package cfg

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/prog"
)

// WriteDot renders one function's CFG in Graphviz dot format, with loop
// headers highlighted and blocks annotated by their innermost loop —
// the visual counterpart of what hpcstruct recovers from a binary.
func WriteDot(w io.Writer, f *prog.Func, forest *Forest) {
	fmt.Fprintf(w, "digraph cfg_%s {\n", sanitize(f.Name))
	fmt.Fprintf(w, "  label=\"%s (%s)\";\n", f.Name, f.File)
	fmt.Fprintf(w, "  node [shape=box, fontname=monospace];\n")

	headers := map[int]*Loop{}
	if forest != nil {
		for _, l := range forest.Loops {
			headers[l.Header] = l
		}
	}
	g := Build(f)
	for _, blk := range f.Blocks {
		var label strings.Builder
		fmt.Fprintf(&label, "b%d", blk.ID)
		if forest != nil && forest.InnermostOf[blk.ID] >= 0 {
			l := forest.Loops[forest.InnermostOf[blk.ID]]
			fmt.Fprintf(&label, " [loop d%d]", l.Depth)
		}
		lo, hi := int32(1<<30), int32(0)
		for i := range blk.Instrs {
			if ln := blk.Instrs[i].Line; ln > 0 {
				if ln < lo {
					lo = ln
				}
				if ln > hi {
					hi = ln
				}
			}
		}
		if hi > 0 {
			fmt.Fprintf(&label, "\\nL%d-%d", lo, hi)
		}
		style := ""
		if l, ok := headers[blk.ID]; ok {
			style = ", style=bold"
			if l.Irreducible {
				style = ", style=dashed"
			}
		}
		fmt.Fprintf(w, "  b%d [label=\"%s\"%s];\n", blk.ID, label.String(), style)
	}
	for from, succs := range g.Succs {
		for _, to := range succs {
			attr := ""
			if to <= from {
				attr = " [color=red]" // back edge (by layout order)
			}
			fmt.Fprintf(w, "  b%d -> b%d%s;\n", from, to, attr)
		}
	}
	fmt.Fprintf(w, "}\n")
}

// WriteLoopReport prints the recovered loop forest of a whole program as
// text: one line per loop with nesting shown by indentation.
func WriteLoopReport(w io.Writer, p *prog.Program, pl *ProgramLoops) {
	fmt.Fprintf(w, "Loop structure of %s (interval analysis):\n", p.Name)
	for fi, f := range p.Funcs {
		forest := pl.Forests[fi]
		if len(forest.Loops) == 0 {
			continue
		}
		fmt.Fprintf(w, "  func %s:\n", f.Name)
		var walk func(l *Loop, depth int)
		walk = func(l *Loop, depth int) {
			info := pl.Info(LoopKey(fi, l.Header))
			name := fmt.Sprintf("header b%d", l.Header)
			if info != nil {
				name = info.Name()
			}
			kind := ""
			if l.Irreducible {
				kind = " (irreducible)"
			}
			if l.SelfLoop {
				kind = " (self loop)"
			}
			fmt.Fprintf(w, "    %s%s, %d blocks%s\n",
				strings.Repeat("  ", depth), name, len(l.Blocks), kind)
			kids := append([]int(nil), l.Children...)
			sort.Ints(kids) // render children in LoopID order
			for _, c := range kids {
				walk(forest.Loops[c], depth+1)
			}
		}
		for _, l := range forest.Loops {
			if l.Parent < 0 {
				walk(l, 0)
			}
		}
	}
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
