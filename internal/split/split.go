// Package split applies StructSlim's advice: it turns an advised field
// partition into a concrete physical layout (prog.PhysLayout) that a
// workload can be rebuilt with. The paper performs this step by hand on
// source code; automating it lets the benchmark harness measure the
// advice's effect end to end.
package split

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/prog"
)

// Key returns a canonical structural identity for a layout: the field
// partition with concrete intra-struct offsets plus each struct's padded
// stride. Two layouts with equal keys lower every workload to the same
// program, so the optimizer's enumerator uses the key for structural
// deduplication (it distinguishes reorderings and stride paddings that
// the group partition alone would conflate).
func Key(l *prog.PhysLayout) string {
	var b strings.Builder
	b.WriteString(l.Record.Name)
	for _, st := range l.Structs {
		b.WriteByte('|')
		for i, f := range st.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s@%d", f.Name, f.Offset)
		}
		fmt.Fprintf(&b, "/%d", st.Size)
	}
	return b.String()
}

// LayoutFromGroups builds the split layout for a record from field-name
// groups. Fields of the record not mentioned in any group are appended as
// singleton groups (cold fields the profiler never sampled still need a
// home — the paper gives ART's untouched field R its own struct). Unknown
// field names are rejected.
func LayoutFromGroups(rec *prog.RecordSpec, groups [][]string) (*prog.PhysLayout, error) {
	covered := make(map[string]bool)
	var cleaned [][]string
	for _, g := range groups {
		var cg []string
		for _, name := range g {
			if rec.FieldIndex(name) < 0 {
				return nil, fmt.Errorf("advice names unknown field %q of %s", name, rec.Name)
			}
			if covered[name] {
				return nil, fmt.Errorf("advice places field %q of %s in two groups", name, rec.Name)
			}
			covered[name] = true
			cg = append(cg, name)
		}
		if len(cg) > 0 {
			cleaned = append(cleaned, cg)
		}
	}
	for _, f := range rec.Fields {
		if !covered[f.Name] {
			cleaned = append(cleaned, []string{f.Name})
		}
	}
	return prog.Split(rec, cleaned)
}

// LayoutFromAdvice builds the split layout directly from an analyzer
// report's advice. Positional field names ("+24") mean the analyzer
// lacked debug info for some offsets; those cannot be mapped onto the
// record and are rejected.
func LayoutFromAdvice(rec *prog.RecordSpec, adv *core.SplitAdvice) (*prog.PhysLayout, error) {
	if adv == nil {
		return nil, fmt.Errorf("no advice for %s", rec.Name)
	}
	for _, g := range adv.Groups {
		for _, name := range g {
			if len(name) > 0 && name[0] == '+' {
				return nil, fmt.Errorf("advice for %s contains unresolved offset %s", rec.Name, name)
			}
		}
	}
	return LayoutFromGroups(rec, adv.FieldGroups())
}

// LayoutFromGroupsChecked is LayoutFromGroups gated on a transform-
// legality verdict. A frozen structure is refused outright; keep-together
// constraints merge the proposed groups that would separate constrained
// fields (union-find over the pair graph), so the layout that comes back
// is the closest legal approximation of the advice. A nil summary means
// no legality analysis ran and behaves exactly like LayoutFromGroups.
func LayoutFromGroupsChecked(rec *prog.RecordSpec, groups [][]string, lg *core.LegalitySummary) (*prog.PhysLayout, error) {
	merged, err := applyLegality(rec, groups, lg)
	if err != nil {
		return nil, err
	}
	return LayoutFromGroups(rec, merged)
}

// LayoutFromAdviceChecked is LayoutFromAdvice gated on a legality
// verdict; see LayoutFromGroupsChecked.
func LayoutFromAdviceChecked(rec *prog.RecordSpec, adv *core.SplitAdvice, lg *core.LegalitySummary) (*prog.PhysLayout, error) {
	if adv == nil {
		return nil, fmt.Errorf("no advice for %s", rec.Name)
	}
	for _, g := range adv.Groups {
		for _, name := range g {
			if len(name) > 0 && name[0] == '+' {
				return nil, fmt.Errorf("advice for %s contains unresolved offset %s", rec.Name, name)
			}
		}
	}
	return LayoutFromGroupsChecked(rec, adv.FieldGroups(), lg)
}

// applyLegality rewrites the proposed groups under the verdict's
// constraints. Fields named by keep-together pairs but absent from every
// group are pulled in, so the merge also captures pairs involving cold
// fields that would otherwise become singletons.
func applyLegality(rec *prog.RecordSpec, groups [][]string, lg *core.LegalitySummary) ([][]string, error) {
	if lg == nil {
		return groups, nil
	}
	if lg.Frozen() {
		why := lg.Reason
		if why == "" {
			why = "no split is provably safe"
		}
		return nil, fmt.Errorf("legality: %s is frozen: %s", rec.Name, why)
	}
	if lg.AllFields {
		all := make([]string, len(rec.Fields))
		for i, f := range rec.Fields {
			all[i] = f.Name
		}
		return [][]string{all}, nil
	}
	if len(lg.Pairs) == 0 {
		return groups, nil
	}

	idx := func(name string) (int, error) {
		i := rec.FieldIndex(name)
		if i < 0 {
			return 0, fmt.Errorf("advice names unknown field %q of %s", name, rec.Name)
		}
		return i, nil
	}
	parent := make([]int, len(rec.Fields))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		if ra, rb := find(a), find(b); ra != rb {
			parent[rb] = ra
		}
	}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		a, err := idx(g[0])
		if err != nil {
			return nil, err
		}
		for _, name := range g[1:] {
			b, err := idx(name)
			if err != nil {
				return nil, err
			}
			union(a, b)
		}
	}
	for _, p := range lg.Pairs {
		a, err := idx(p[0])
		if err != nil {
			return nil, err
		}
		b, err := idx(p[1])
		if err != nil {
			return nil, err
		}
		union(a, b)
	}

	// Rebuild groups in advice order (hot fields first), appending
	// pair-only fields after, so the merge is deterministic and keeps the
	// advice's intra-group ordering.
	buckets := make(map[int]int) // root → output group index
	var out [][]string
	seen := make(map[string]bool)
	add := func(fi int, name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		r := find(fi)
		gi, ok := buckets[r]
		if !ok {
			gi = len(out)
			buckets[r] = gi
			out = append(out, nil)
		}
		out[gi] = append(out[gi], name)
	}
	for _, g := range groups {
		for _, name := range g {
			fi, _ := idx(name)
			add(fi, name)
		}
	}
	for _, p := range lg.Pairs {
		for _, name := range p {
			fi, _ := idx(name)
			add(fi, name)
		}
	}
	return out, nil
}
