// Package split applies StructSlim's advice: it turns an advised field
// partition into a concrete physical layout (prog.PhysLayout) that a
// workload can be rebuilt with. The paper performs this step by hand on
// source code; automating it lets the benchmark harness measure the
// advice's effect end to end.
package split

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prog"
)

// LayoutFromGroups builds the split layout for a record from field-name
// groups. Fields of the record not mentioned in any group are appended as
// singleton groups (cold fields the profiler never sampled still need a
// home — the paper gives ART's untouched field R its own struct). Unknown
// field names are rejected.
func LayoutFromGroups(rec *prog.RecordSpec, groups [][]string) (*prog.PhysLayout, error) {
	covered := make(map[string]bool)
	var cleaned [][]string
	for _, g := range groups {
		var cg []string
		for _, name := range g {
			if rec.FieldIndex(name) < 0 {
				return nil, fmt.Errorf("advice names unknown field %q of %s", name, rec.Name)
			}
			if covered[name] {
				return nil, fmt.Errorf("advice places field %q of %s in two groups", name, rec.Name)
			}
			covered[name] = true
			cg = append(cg, name)
		}
		if len(cg) > 0 {
			cleaned = append(cleaned, cg)
		}
	}
	for _, f := range rec.Fields {
		if !covered[f.Name] {
			cleaned = append(cleaned, []string{f.Name})
		}
	}
	return prog.Split(rec, cleaned)
}

// LayoutFromAdvice builds the split layout directly from an analyzer
// report's advice. Positional field names ("+24") mean the analyzer
// lacked debug info for some offsets; those cannot be mapped onto the
// record and are rejected.
func LayoutFromAdvice(rec *prog.RecordSpec, adv *core.SplitAdvice) (*prog.PhysLayout, error) {
	if adv == nil {
		return nil, fmt.Errorf("no advice for %s", rec.Name)
	}
	for _, g := range adv.Groups {
		for _, name := range g {
			if len(name) > 0 && name[0] == '+' {
				return nil, fmt.Errorf("advice for %s contains unresolved offset %s", rec.Name, name)
			}
		}
	}
	return LayoutFromGroups(rec, adv.FieldGroups())
}
