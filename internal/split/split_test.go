package split

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/prog"
)

func rec(t *testing.T) *prog.RecordSpec {
	t.Helper()
	return prog.MustRecord("r",
		prog.Field{Name: "a", Size: 8},
		prog.Field{Name: "b", Size: 8},
		prog.Field{Name: "c", Size: 8},
		prog.Field{Name: "d", Size: 8},
	)
}

func TestLayoutFromGroupsCompletesColdFields(t *testing.T) {
	l, err := LayoutFromGroups(rec(t), [][]string{{"a", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	// a,c grouped; b and d become singletons.
	if l.NumArrays() != 3 {
		t.Fatalf("arrays = %d, want 3 (%v)", l.NumArrays(), l)
	}
	if l.Place("a").Arr != l.Place("c").Arr {
		t.Error("a and c not together")
	}
	if l.Place("b").Arr == l.Place("a").Arr || l.Place("b").Arr == l.Place("d").Arr {
		t.Error("cold fields not singled out")
	}
}

func TestLayoutFromGroupsValidation(t *testing.T) {
	if _, err := LayoutFromGroups(rec(t), [][]string{{"a", "zz"}}); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LayoutFromGroups(rec(t), [][]string{{"a"}, {"a", "b"}}); err == nil {
		t.Error("duplicate field accepted")
	}
	// Empty groups are dropped silently.
	l, err := LayoutFromGroups(rec(t), [][]string{{}, {"a", "b", "c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if l.IsSplit() {
		t.Error("single full group should be the identity layout")
	}
}

func TestLayoutFromAdvice(t *testing.T) {
	adv := &core.SplitAdvice{
		StructName: "r",
		Groups:     [][]string{{"a", "c"}, {"b"}},
	}
	l, err := LayoutFromAdvice(rec(t), adv)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumArrays() != 3 { // {a,c} {b} {d-completed}
		t.Errorf("arrays = %d (%v)", l.NumArrays(), l)
	}
}

func TestLayoutFromGroupsCheckedNilSummary(t *testing.T) {
	// No legality analysis → identical to the unchecked path.
	l, err := LayoutFromGroupsChecked(rec(t), [][]string{{"a", "c"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumArrays() != 3 || l.Place("a").Arr != l.Place("c").Arr {
		t.Errorf("nil summary changed the layout: %v", l)
	}
	if _, err := LayoutFromGroupsChecked(rec(t), [][]string{{"a", "zz"}}, nil); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestLayoutFromGroupsCheckedFrozen(t *testing.T) {
	lg := &core.LegalitySummary{Verdict: "frozen", Reason: "pointer passes through xor (at x.c:3)"}
	_, err := LayoutFromGroupsChecked(rec(t), [][]string{{"a", "c"}}, lg)
	if err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Fatalf("frozen structure split anyway: %v", err)
	}
	if !strings.Contains(err.Error(), "xor") {
		t.Errorf("error does not carry the reason: %v", err)
	}
	if _, err := LayoutFromAdviceChecked(rec(t),
		&core.SplitAdvice{StructName: "r", Groups: [][]string{{"a"}, {"b"}}}, lg); err == nil {
		t.Error("frozen structure split via advice path")
	}
}

func TestLayoutFromGroupsCheckedMergesPairs(t *testing.T) {
	// The advice separates a|c from b, but legality demands {a,b} and
	// {c,d} stay together: the three groups collapse into one (a,c,b via
	// the pair a-b, then d via c-d).
	lg := &core.LegalitySummary{
		Verdict: "keep-together",
		Pairs:   [][2]string{{"a", "b"}, {"c", "d"}},
	}
	l, err := LayoutFromGroupsChecked(rec(t), [][]string{{"a", "c"}, {"b"}}, lg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Place("a").Arr != l.Place("b").Arr {
		t.Errorf("pair {a,b} separated: %v", l)
	}
	if l.Place("c").Arr != l.Place("d").Arr {
		t.Errorf("pair {c,d} separated (d was a cold singleton): %v", l)
	}
	if l.Place("a").Arr != l.Place("c").Arr {
		t.Errorf("advice group {a,c} broken by the merge: %v", l)
	}

	// A pair between two otherwise-independent groups merges just those.
	lg = &core.LegalitySummary{Verdict: "keep-together", Pairs: [][2]string{{"b", "d"}}}
	l, err = LayoutFromGroupsChecked(rec(t), [][]string{{"a"}, {"b"}, {"c"}}, lg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Place("b").Arr != l.Place("d").Arr {
		t.Errorf("pair {b,d} separated: %v", l)
	}
	if l.Place("a").Arr == l.Place("b").Arr || l.Place("a").Arr == l.Place("c").Arr {
		t.Errorf("unconstrained groups merged needlessly: %v", l)
	}
	if _, err := LayoutFromGroupsChecked(rec(t), [][]string{{"a"}},
		&core.LegalitySummary{Verdict: "keep-together", Pairs: [][2]string{{"a", "zz"}}}); err == nil {
		t.Error("pair naming an unknown field accepted")
	}
}

func TestLayoutFromGroupsCheckedAllFields(t *testing.T) {
	lg := &core.LegalitySummary{Verdict: "keep-together", AllFields: true}
	l, err := LayoutFromGroupsChecked(rec(t), [][]string{{"a"}, {"b"}, {"c"}, {"d"}}, lg)
	if err != nil {
		t.Fatal(err)
	}
	if l.IsSplit() {
		t.Errorf("all-fields constraint still split the record: %v", l)
	}
}

func TestLayoutFromAdviceRejectsUnresolvedOffsets(t *testing.T) {
	adv := &core.SplitAdvice{
		StructName: "r",
		Groups:     [][]string{{"a", "+24"}},
	}
	if _, err := LayoutFromAdvice(rec(t), adv); err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("positional advice accepted: %v", err)
	}
	if _, err := LayoutFromAdvice(rec(t), nil); err == nil {
		t.Error("nil advice accepted")
	}
}
