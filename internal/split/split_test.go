package split

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/prog"
)

func rec(t *testing.T) *prog.RecordSpec {
	t.Helper()
	return prog.MustRecord("r",
		prog.Field{Name: "a", Size: 8},
		prog.Field{Name: "b", Size: 8},
		prog.Field{Name: "c", Size: 8},
		prog.Field{Name: "d", Size: 8},
	)
}

func TestLayoutFromGroupsCompletesColdFields(t *testing.T) {
	l, err := LayoutFromGroups(rec(t), [][]string{{"a", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	// a,c grouped; b and d become singletons.
	if l.NumArrays() != 3 {
		t.Fatalf("arrays = %d, want 3 (%v)", l.NumArrays(), l)
	}
	if l.Place("a").Arr != l.Place("c").Arr {
		t.Error("a and c not together")
	}
	if l.Place("b").Arr == l.Place("a").Arr || l.Place("b").Arr == l.Place("d").Arr {
		t.Error("cold fields not singled out")
	}
}

func TestLayoutFromGroupsValidation(t *testing.T) {
	if _, err := LayoutFromGroups(rec(t), [][]string{{"a", "zz"}}); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LayoutFromGroups(rec(t), [][]string{{"a"}, {"a", "b"}}); err == nil {
		t.Error("duplicate field accepted")
	}
	// Empty groups are dropped silently.
	l, err := LayoutFromGroups(rec(t), [][]string{{}, {"a", "b", "c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if l.IsSplit() {
		t.Error("single full group should be the identity layout")
	}
}

func TestLayoutFromAdvice(t *testing.T) {
	adv := &core.SplitAdvice{
		StructName: "r",
		Groups:     [][]string{{"a", "c"}, {"b"}},
	}
	l, err := LayoutFromAdvice(rec(t), adv)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumArrays() != 3 { // {a,c} {b} {d-completed}
		t.Errorf("arrays = %d (%v)", l.NumArrays(), l)
	}
}

func TestLayoutFromAdviceRejectsUnresolvedOffsets(t *testing.T) {
	adv := &core.SplitAdvice{
		StructName: "r",
		Groups:     [][]string{{"a", "+24"}},
	}
	if _, err := LayoutFromAdvice(rec(t), adv); err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("positional advice accepted: %v", err)
	}
	if _, err := LayoutFromAdvice(rec(t), nil); err == nil {
		t.Error("nil advice accepted")
	}
}
