package tables

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/prog"
	"repro/internal/runner"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

// Engine regenerates the paper's artifacts through a bounded worker pool
// with a keyed result cache (internal/runner). Much of the evaluation is
// repeated work — Figures 7–13 re-run the seven Table 3 pipelines,
// Tables 5/6 and Figure 6 share one profiled ART run, Figures 4/5
// re-profile Table 3 workloads — so one Engine shared across artifacts
// runs each distinct simulation once. Every simulation is
// deterministically seeded and owns its machine, and each method emits
// results in input order, so output is byte-identical to the sequential
// path at any worker count.
type Engine struct {
	opt  Options
	pool *runner.Pool
}

// NewEngine returns an engine running at most opt.Parallel simulations
// concurrently (0 or 1 = sequential).
func NewEngine(opt Options) *Engine {
	return &Engine{opt: opt, pool: runner.New(opt.Parallel)}
}

// Stats reports how many simulations ran and how many submissions were
// answered from the result cache.
func (e *Engine) Stats() (started, deduped uint64) { return e.pool.Stats() }

// key canonically names one simulation: what runs (kind, workload) and
// everything that can change its result (scale, effective sampling
// period, seed). Reference is part of the key even though it cannot
// change the result — differential tests rely on a reference run never
// being answered from a fast-path run's cache entry, or vice versa.
func (o Options) key(kind, name string) string {
	return fmt.Sprintf("%s/%s/scale=%d/period=%d/seed=%d/ref=%t/stat=%t/w=%d",
		kind, name, o.Scale, o.effectivePeriod(), o.Seed, o.Reference, o.Statistical, o.StatWindow)
}

// profiledRun bundles a profiled simulation with the program it ran, so
// downstream analysis jobs resolve IPs against the same build.
type profiledRun struct {
	Prog   *prog.Program
	Phases []workloads.Phase
	Res    *structslim.RunResult
}

// profiledRun is the keyed leaf job behind every profiled simulation:
// build the original layout, run it under the sampler. Consumers share
// the returned value and must treat it as read-only.
func (e *Engine) profiledRun(w workloads.Workload, opt Options) (*profiledRun, error) {
	return runner.Cached(e.pool, opt.key("profile", w.Name()), func() (*profiledRun, error) {
		p, phases, err := w.Build(nil, opt.Scale)
		if err != nil {
			return nil, fmt.Errorf("%s: build: %w", w.Name(), err)
		}
		res, err := structslim.ProfileRun(p, phases, opt.runOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: profile: %w", w.Name(), err)
		}
		return &profiledRun{Prog: p, Phases: phases, Res: res}, nil
	})
}

// analyzedRun is the profiled run plus the offline analysis of its
// profile, each a separate keyed job: Figures 4/5 want only the run,
// the table pipelines want both. The jobs are chained here, in
// orchestration code, never inside a job body (runner's deadlock rule).
func (e *Engine) analyzedRun(w workloads.Workload, opt Options) (*profiledRun, *core.Report, error) {
	pr, err := e.profiledRun(w, opt)
	if err != nil {
		return nil, nil, err
	}
	rep, err := runner.Cached(e.pool, opt.key("analyze", w.Name()), func() (*core.Report, error) {
		rep, err := structslim.Analyze(pr.Res, pr.Prog, opt.runOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", w.Name(), err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return pr, rep, nil
}

// measurement is the outcome of one unprofiled timing run.
type measurement struct {
	Cycles uint64
	Misses map[string]uint64
}

// measure is the keyed leaf job for an unprofiled run of one layout
// variant ("orig" or "split"). The split layout is a deterministic
// function of (workload, options), so the variant name suffices as key.
func (e *Engine) measure(w workloads.Workload, variant string, layout *prog.PhysLayout, opt Options) (measurement, error) {
	return runner.Cached(e.pool, opt.key("measure-"+variant, w.Name()), func() (measurement, error) {
		p, phases, err := w.Build(layout, opt.Scale)
		if err != nil {
			return measurement{}, fmt.Errorf("%s: %s build: %w", w.Name(), variant, err)
		}
		st, err := structslim.Run(p, phases, opt.runOptions())
		if err != nil {
			return measurement{}, fmt.Errorf("%s: %s run: %w", w.Name(), variant, err)
		}
		misses := make(map[string]uint64, len(st.Cache.Levels))
		for _, ls := range st.Cache.Levels {
			misses[ls.Name] = ls.Misses
		}
		return measurement{Cycles: st.AppWallCycles, Misses: misses}, nil
	})
}

// RunBenchmark executes the end-to-end Table 3/4 pipeline for one paper
// workload: profile the original, derive the split from the advice, time
// both layouts. The baseline timing run is independent of the advice, so
// it is submitted up front and overlaps the profiled run.
func (e *Engine) RunBenchmark(w workloads.Workload) (*BenchResult, error) {
	opt := e.opt
	origDone := make(chan struct{})
	var orig measurement
	var origErr error
	go func() {
		defer close(origDone)
		orig, origErr = e.measure(w, "orig", nil, opt)
	}()

	_, rep, err := e.analyzedRun(w, opt)
	if err != nil {
		return nil, err
	}
	sr := structslim.FindStruct(rep, w.Record().Name)
	if sr == nil {
		return nil, fmt.Errorf("%s: hot record %s not identified", w.Name(), w.Record().Name)
	}
	layout, err := structslim.Optimize(w.Record(), sr)
	if err != nil {
		return nil, fmt.Errorf("%s: optimize: %w", w.Name(), err)
	}
	split, err := e.measure(w, "split", layout, opt)
	if err != nil {
		return nil, err
	}
	<-origDone
	if origErr != nil {
		return nil, origErr
	}

	pr, err := e.profiledRun(w, opt) // cache hit: the analyzed run above
	if err != nil {
		return nil, err
	}
	return &BenchResult{
		Workload:    w,
		Report:      rep,
		HotStruct:   sr,
		SplitLayout: layout,
		OrigCycles:  orig.Cycles,
		SplitCycles: split.Cycles,
		Speedup:     float64(orig.Cycles) / float64(split.Cycles),
		OverheadPct: pr.Res.Stats.OverheadPct(),
		OrigMisses:  orig.Misses,
		SplitMisses: split.Misses,
	}, nil
}

// RunPaperBenchmarks runs the full pipeline for all seven benchmarks,
// results in table order.
func (e *Engine) RunPaperBenchmarks() ([]*BenchResult, error) {
	return runner.Collect(e.pool, workloads.Paper(), e.RunBenchmark)
}

// AnalyzeART runs the profiled ART pipeline once; Tables 5 and 6 and
// Figure 6 all read from its report.
func (e *Engine) AnalyzeART() (*core.StructReport, error) {
	w, err := workloads.Get("art")
	if err != nil {
		return nil, err
	}
	_, rep, err := e.analyzedRun(w, e.opt)
	if err != nil {
		return nil, err
	}
	sr := structslim.FindStruct(rep, "f1_neuron")
	if sr == nil {
		return nil, fmt.Errorf("f1_neuron not identified")
	}
	return sr, nil
}

// SuiteOverheads profiles every workload of a suite and reports the
// measurement overhead of each (Figures 4 and 5). Workloads that also
// appear in Table 3 reuse its profiled runs.
func (e *Engine) SuiteOverheads(suite string) ([]OverheadPoint, error) {
	out, err := runner.Collect(e.pool, workloads.BySuite(suite), func(w workloads.Workload) (OverheadPoint, error) {
		pr, err := e.profiledRun(w, e.opt)
		if err != nil {
			return OverheadPoint{}, err
		}
		return OverheadPoint{
			Name:        w.Name(),
			OverheadPct: pr.Res.Stats.OverheadPct(),
			Samples:     pr.Res.Profile.NumSamples,
			MemOps:      pr.Res.Stats.MemOps,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	sortOverheads(out)
	return out, nil
}

// SplitFigure runs the pipeline for one paper benchmark and renders its
// advised struct definitions — Figures 7 through 13.
func (e *Engine) SplitFigure(w io.Writer, name string) error {
	wl, err := workloads.Get(name)
	if err != nil {
		return err
	}
	r, err := e.RunBenchmark(wl)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Structure splitting of %s (%s):\n", r.HotStruct.TypeName, name)
	fmt.Fprint(w, r.HotStruct.RenderAdvice())
	fmt.Fprintf(w, "(speedup %.2fx)\n", r.Speedup)
	return nil
}

// PeriodRobustness profiles one paper workload across sampling periods
// and checks whether the analysis outcome survives (rows in period
// order). Each period is an independent keyed pipeline; the period that
// matches the engine's configured one reuses the Table 3 run.
func (e *Engine) PeriodRobustness(name string, periods []uint64, hotField, wantGroup string) ([]RobustnessRow, error) {
	w, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	return runner.Collect(e.pool, periods, func(period uint64) (RobustnessRow, error) {
		o := e.opt
		o.SamplePeriod = period
		pr, rep, err := e.analyzedRun(w, o)
		if err != nil {
			return RobustnessRow{}, err
		}
		row := RobustnessRow{
			Period:      period,
			Samples:     pr.Res.Profile.NumSamples,
			OverheadPct: pr.Res.Stats.OverheadPct(),
		}
		fillRobustness(&row, rep, w, hotField, wantGroup)
		return row, nil
	})
}

// BaselineComparison reproduces the paper's motivating overhead contrast
// (Sections 1–3): sampling versus access-frequency instrumentation
// versus full reuse-distance collection. The three runs are independent
// keyed jobs and overlap under a parallel engine.
func (e *Engine) BaselineComparison(name string) ([]BaselineRow, error) {
	w, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	opt := e.opt

	type instrumented struct {
		Exact  *groundtruth.Exact
		Factor float64
	}
	instrJob := func(kind groundtruth.Kind, label string) func() (instrumented, error) {
		return func() (instrumented, error) {
			return runner.Cached(e.pool, opt.key("groundtruth-"+label, name), func() (instrumented, error) {
				p, phases, err := w.Build(nil, opt.Scale)
				if err != nil {
					return instrumented{}, err
				}
				m, err := vm.NewMachine(p, cache.DefaultConfig(), maxCore(phases)+1, vm.Config{})
				if err != nil {
					return instrumented{}, err
				}
				rec, err := groundtruth.NewRecorder(groundtruth.Config{Kind: kind}, m.Space, p)
				if err != nil {
					return instrumented{}, err
				}
				m.Observer = rec
				var wall, app uint64
				for _, ph := range phases {
					st, err := m.Run(ph)
					if err != nil {
						return instrumented{}, err
					}
					wall += st.WallCycles
					app += st.AppWallCycles
				}
				factor := 1.0
				if app > 0 {
					factor = float64(wall) / float64(app)
				}
				return instrumented{Exact: rec.Report(), Factor: factor}, nil
			})
		}
	}

	countDone := make(chan struct{})
	var count instrumented
	var countErr error
	go func() {
		defer close(countDone)
		count, countErr = instrJob(groundtruth.KindCounting, "counting")()
	}()
	reuseDone := make(chan struct{})
	var reuse instrumented
	var reuseErr error
	go func() {
		defer close(reuseDone)
		reuse, reuseErr = instrJob(groundtruth.KindReuse, "reuse")()
	}()

	pr, rep, err := e.analyzedRun(w, opt)
	<-countDone
	<-reuseDone
	if err != nil {
		return nil, err
	}
	if countErr != nil {
		return nil, countErr
	}
	if reuseErr != nil {
		return nil, reuseErr
	}

	// Accuracy of the sampled shares against ground truth, over the hot
	// structure.
	var maxErr float64
	if w.Record() != nil {
		if sr := structslim.FindStruct(rep, w.Record().Name); sr != nil {
			if exactShares, ok := count.Exact.FieldShare[sr.Identity]; ok {
				for _, f := range sr.Fields {
					d := f.Share - exactShares[f.Offset]
					if d < 0 {
						d = -d
					}
					if d > maxErr {
						maxErr = d
					}
				}
			}
		}
	}

	return []BaselineRow{
		{Technique: "StructSlim sampling", Slowdown: 1 + pr.Res.Stats.OverheadPct()/100, MaxShareError: maxErr},
		{Technique: "access-frequency instrumentation", Slowdown: count.Factor},
		{Technique: "reuse-distance instrumentation", Slowdown: reuse.Factor},
	}, nil
}

// CaseStudies runs the beyond-paper record workloads through the full
// pipeline; the pipelines overlap, the report is written in order.
func (e *Engine) CaseStudies(w io.Writer) error {
	names := []string{"mcf", "streamcluster"}
	results, err := runner.Collect(e.pool, names, func(name string) (*BenchResult, error) {
		wl, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		return e.RunBenchmark(wl)
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		r := results[i]
		wl := r.Workload
		fmt.Fprintf(w, "Case study %s (%s): %s\n", name, wl.Suite(), wl.Description())
		fmt.Fprintf(w, "  hot structure %s: l_d=%.1f%%, size %d (debug %d)\n",
			r.HotStruct.Name, 100*r.HotStruct.Ld, r.HotStruct.InferredSize, r.HotStruct.TrueSize)
		fmt.Fprint(w, indentLines(r.HotStruct.RenderAdvice(), "  "))
		fmt.Fprintf(w, "  speedup %.2fx, L1/L2 miss reduction %.1f%% / %.1f%%\n\n",
			r.Speedup, r.MissReduction("L1"), r.MissReduction("L2"))
	}
	return nil
}
