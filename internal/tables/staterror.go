package tables

// staterror.go quantifies statistical-mode fidelity: for each paper
// workload and warmup window W, run the pipeline exactly and
// statistically, and report how much the measurements drifted and
// whether the advice survived. This is the experiment behind the
// advice-error-vs-W table in EXPERIMENTS.md; the hard per-commit gate on
// advice identity at the default window lives in
// statistical_differential_test.go.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// StatErrorRow is one (workload, window) fidelity measurement.
type StatErrorRow struct {
	Workload string
	Window   int
	// SimulatedPct is the fraction of accesses that ran the full cache
	// model (the warmup windows plus the sampled accesses).
	SimulatedPct float64
	Samples      uint64
	// AdviceOK reports whether the statistical run's analyzed-structure
	// ranking and SplitAdvice partitions match exact mode.
	AdviceOK bool
	// CycleErr is the relative error of total app cycles (the skipped
	// accesses charge an estimated latency); MissErr is the relative
	// error of the whole-run L1 miss ratio, which statistical mode
	// measures only over simulated accesses.
	CycleErr float64
	MissErr  float64
}

// adviceKey canonicalizes what must not drift: analyzed structures in
// rank order, each with its advice partition (offset groups,
// order-independent within and across groups).
func adviceKey(rep *core.Report) string {
	var sb strings.Builder
	for _, sr := range rep.Structures {
		fmt.Fprintf(&sb, "%s:", sr.Name)
		if sr.Advice != nil {
			groups := make([]string, 0, len(sr.Advice.Offsets))
			for _, offs := range sr.Advice.Offsets {
				o := append([]uint64(nil), offs...)
				sort.Slice(o, func(i, j int) bool { return o[i] < o[j] })
				parts := make([]string, len(o))
				for i, v := range o {
					parts[i] = fmt.Sprint(v)
				}
				groups = append(groups, strings.Join(parts, ","))
			}
			sort.Strings(groups)
			fmt.Fprintf(&sb, "{%s}", strings.Join(groups, "|"))
		}
		sb.WriteString(";")
	}
	return sb.String()
}

func relErrF(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

// StatErrorSweep measures every paper workload at every window size, in
// (workload, window) order. Exact runs are keyed per workload, so the
// sweep pays for one exact pipeline per workload regardless of how many
// windows it probes.
func (e *Engine) StatErrorSweep(windows []int) ([]StatErrorRow, error) {
	type cell struct {
		name   string
		window int
	}
	var cells []cell
	for _, name := range workloads.PaperOrder {
		for _, win := range windows {
			cells = append(cells, cell{name, win})
		}
	}
	return runner.Collect(e.pool, cells, func(c cell) (StatErrorRow, error) {
		w, err := workloads.Get(c.name)
		if err != nil {
			return StatErrorRow{}, err
		}
		exactRun, exactRep, err := e.analyzedRun(w, e.opt)
		if err != nil {
			return StatErrorRow{}, err
		}
		o := e.opt
		o.Statistical, o.StatWindow = true, c.window
		statRun, statRep, err := e.analyzedRun(w, o)
		if err != nil {
			return StatErrorRow{}, err
		}
		row := StatErrorRow{
			Workload: c.name,
			Window:   c.window,
			AdviceOK: adviceKey(statRep) == adviceKey(exactRep),
			CycleErr: relErrF(float64(statRun.Res.Stats.AppWallCycles), float64(exactRun.Res.Stats.AppWallCycles)),
		}
		if r := statRun.Res.Stat; r != nil {
			row.SimulatedPct = r.SimulatedPct
			row.Samples = r.Samples
			exactL1 := l1Ratio(exactRun)
			if exactL1 > 0 {
				row.MissErr = relErrF(r.L1MissRatio, exactL1)
			}
		}
		return row, nil
	})
}

func l1Ratio(pr *profiledRun) float64 {
	lv := pr.Res.Stats.Cache.Levels
	if len(lv) == 0 || lv[0].Accesses == 0 {
		return 0
	}
	return float64(lv[0].Misses) / float64(lv[0].Accesses)
}

// WriteStatError renders the sweep grouped by workload.
func WriteStatError(w io.Writer, rows []StatErrorRow) {
	fmt.Fprintln(w, "Statistical-mode fidelity: advice and measurement error vs window W")
	fmt.Fprintf(w, "  %-12s %-6s %-10s %-9s %-9s %-9s %s\n",
		"workload", "W", "simulated", "samples", "cycleerr", "misserr", "advice")
	for _, r := range rows {
		advice := "MATCH"
		if !r.AdviceOK {
			advice = "DIVERGED"
		}
		fmt.Fprintf(w, "  %-12s %-6d %8.2f%%  %-9d %8.2f%% %8.2f%%  %s\n",
			r.Workload, r.Window, r.SimulatedPct, r.Samples,
			100*r.CycleErr, 100*r.MissErr, advice)
	}
}
