package tables

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stride"
	"repro/internal/workloads"
	"repro/structslim"
)

// AnalyzeART runs the profiled ART pipeline on a one-shot engine;
// Tables 5 and 6 and Figure 6 all read from its report.
func AnalyzeART(opt Options) (*core.StructReport, error) {
	return NewEngine(opt).AnalyzeART()
}

// WriteTable5 prints ART's per-field latency shares, paper vs measured.
func WriteTable5(w io.Writer, sr *core.StructReport) {
	fmt.Fprintf(w, "Table 5: f1_neuron per-field latency share (measured, paper)\n")
	share := make(map[string]float64)
	for _, f := range sr.Fields {
		share[f.Name] += 100 * f.Share
	}
	for _, name := range []string{"I", "W", "X", "V", "U", "P", "Q", "R"} {
		fmt.Fprintf(w, "  %-3s %6.1f%%  (%5.1f%%)\n", name, share[name], PaperTable5[name])
	}
}

// WriteTable6 prints ART's per-loop latency table, paper rows alongside.
func WriteTable6(w io.Writer, sr *core.StructReport) {
	fmt.Fprintf(w, "Table 6: f1_neuron latency per loop (measured)\n")
	fmt.Fprintf(w, "  %-22s %-10s %s\n", "loop", "latency%", "fields")
	for _, lr := range sr.Loops {
		if lr.Loop == nil {
			continue
		}
		fmt.Fprintf(w, "  %-22s %6.2f%%    %s\n", lr.Name, 100*lr.Share, strings.Join(lr.FieldNames, ","))
	}
	fmt.Fprintf(w, "  -- paper --\n")
	for _, row := range PaperTable6 {
		fmt.Fprintf(w, "  %-22s %6.2f%%    %s\n", "scanner.c:"+row.Lines, row.Share, row.Fields)
	}
}

// WriteFigure6 prints ART's affinity graph as dot, with the paper's
// called-out values in a trailing comment.
func WriteFigure6(w io.Writer, sr *core.StructReport) {
	sr.WriteDot(w)
	fmt.Fprintf(w, "// paper: A(I,U)=0.86  A(P,U)=0.05  A(X,Q)=high\n")
}

// OverheadPoint is one bar of Figures 4/5.
type OverheadPoint struct {
	Name        string
	OverheadPct float64
	Samples     uint64
	MemOps      uint64
}

// SuiteOverheads profiles every workload of a suite and reports the
// measurement overhead of each (Figures 4 and 5), on a one-shot engine.
func SuiteOverheads(suite string, opt Options) ([]OverheadPoint, error) {
	return NewEngine(opt).SuiteOverheads(suite)
}

func sortOverheads(out []OverheadPoint) {
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
}

// WriteOverheadFigure prints one overhead figure as a text bar chart.
func WriteOverheadFigure(w io.Writer, title string, points []OverheadPoint, paperAvg float64) {
	fmt.Fprintf(w, "%s (profiling overhead per benchmark)\n", title)
	var sum float64
	for _, pt := range points {
		bar := strings.Repeat("#", int(pt.OverheadPct*2+0.5))
		fmt.Fprintf(w, "  %-14s %6.2f%% %s\n", pt.Name, pt.OverheadPct, bar)
		sum += pt.OverheadPct
	}
	fmt.Fprintf(w, "  %-14s %6.2f%%  (paper average: %.1f%%)\n", "average", sum/float64(len(points)), paperAvg)
}

// SplitFigure runs the pipeline for one paper benchmark and renders its
// advised struct definitions — Figures 7 through 13 — on a one-shot
// engine.
func SplitFigure(w io.Writer, name string, opt Options) error {
	return NewEngine(opt).SplitFigure(w, name)
}

// FigureNumberFor maps the paper's figure numbers 7–13 to benchmarks.
var FigureNumberFor = map[int]string{
	7:  "art",
	8:  "libquantum",
	9:  "tsp",
	10: "mser",
	11: "clomp",
	12: "health",
	13: "nn",
}

// RobustnessRow is one row of the sampling-period robustness experiment:
// does the advice survive sparser sampling, and what does it cost?
type RobustnessRow struct {
	Period      uint64
	Samples     uint64
	OverheadPct float64
	// SizeOK: the inferred structure size matches debug info.
	SizeOK bool
	// AdviceOK: the hot group of the advice matches the expected set.
	AdviceOK bool
}

// PeriodRobustness profiles one paper workload across sampling periods
// and checks whether the analysis outcome survives, on a one-shot
// engine. hotField names a field whose advised group must equal
// wantGroup (sorted, comma-joined).
func PeriodRobustness(name string, periods []uint64, hotField, wantGroup string, opt Options) ([]RobustnessRow, error) {
	return NewEngine(opt).PeriodRobustness(name, periods, hotField, wantGroup)
}

// fillRobustness judges one period's analysis outcome: did the size
// inference and the advised grouping survive the sparser sampling?
func fillRobustness(row *RobustnessRow, rep *core.Report, w workloads.Workload, hotField, wantGroup string) {
	sr := structslim.FindStruct(rep, w.Record().Name)
	if sr == nil {
		return
	}
	row.SizeOK = sr.TrueSize > 0 && sr.InferredSize > 0 &&
		sr.InferredSize%uint64(sr.TrueSize) == 0
	if !row.SizeOK && sr.InferredSize >= uint64(sr.TrueSize) && sr.InferredSize%16 == 0 {
		row.SizeOK = true // heap-padded multiple (e.g. TSP's 64 for 56)
	}
	if sr.Advice != nil {
		for _, g := range sr.Advice.Groups {
			for _, f := range g {
				if f == hotField {
					sorted := append([]string(nil), g...)
					sort.Strings(sorted)
					row.AdviceOK = strings.Join(sorted, ",") == wantGroup
				}
			}
		}
	}
}

// WriteRobustness prints the period sweep.
func WriteRobustness(w io.Writer, name string, rows []RobustnessRow) {
	fmt.Fprintf(w, "Sampling-period robustness (%s): advice quality vs overhead\n", name)
	fmt.Fprintf(w, "  %-10s %-9s %-10s %-7s %s\n", "period", "samples", "overhead", "size", "advice")
	for _, r := range rows {
		ok := func(b bool) string {
			if b {
				return "ok"
			}
			return "WRONG"
		}
		fmt.Fprintf(w, "  %-10d %-9d %7.2f%%   %-7s %s\n",
			r.Period, r.Samples, r.OverheadPct, ok(r.SizeOK), ok(r.AdviceOK))
	}
}

// CaseStudies runs the beyond-paper record workloads (mcf's arc array,
// streamcluster's Point — both known splitting targets in the layout
// literature) through the full pipeline and prints their advice and
// payoff, on a one-shot engine.
func CaseStudies(w io.Writer, opt Options) error {
	return NewEngine(opt).CaseStudies(w)
}

func indentLines(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// AccuracyRow is one row of the Equation 4 validation experiment.
type AccuracyRow struct {
	K          int
	PaperBound float64 // Equation 4 as printed
	Corrected  float64 // residue-class-corrected model
	Simulated  float64 // Monte Carlo
}

// AccuracyExperiment validates Equation 4: for each k it evaluates the
// printed bound, the corrected analytic model, and a Monte-Carlo
// simulation of the GCD algorithm.
func AccuracyExperiment(n, trials int, seed uint64) []AccuracyRow {
	var rows []AccuracyRow
	for _, k := range []int{2, 3, 4, 5, 6, 8, 10, 12, 15, 20} {
		rows = append(rows, AccuracyRow{
			K:          k,
			PaperBound: stride.AccuracyLowerBound(k),
			Corrected:  stride.AccuracyCorrected(k),
			Simulated:  stride.SimulateAccuracy(n, k, trials, 16, seed),
		})
	}
	return rows
}

// WriteAccuracy prints the Equation 4 validation table.
func WriteAccuracy(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "Equation 4: GCD stride-recovery accuracy vs samples per stream\n")
	fmt.Fprintf(w, "  %-4s %-14s %-16s %s\n", "k", "paper bound", "corrected model", "simulated")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-4d %12.4f %16.4f %11.4f\n", r.K, r.PaperBound, r.Corrected, r.Simulated)
	}
	fmt.Fprintf(w, "  (the printed bound undercounts failures by ~p per prime; see internal/stride)\n")
}
