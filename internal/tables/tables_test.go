package tables

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workloads"
)

func testOpt() Options {
	return Options{Scale: workloads.ScaleTest, SamplePeriod: 3000, Seed: 2}
}

// results is computed once; several shape tests read it.
var cachedResults []*BenchResult

func paperResults(t *testing.T) []*BenchResult {
	t.Helper()
	if cachedResults == nil {
		rs, err := RunPaperBenchmarks(testOpt())
		if err != nil {
			t.Fatal(err)
		}
		cachedResults = rs
	}
	return cachedResults
}

func TestTable3Shape(t *testing.T) {
	results := paperResults(t)
	if len(results) != 7 {
		t.Fatalf("rows = %d", len(results))
	}
	byName := map[string]*BenchResult{}
	var avg float64
	for _, r := range results {
		byName[r.Workload.Name()] = r
		avg += r.Speedup
		// Every benchmark must win from the split, as in the paper.
		if r.Speedup <= 1.0 {
			t.Errorf("%s: speedup %.3f ≤ 1", r.Workload.Name(), r.Speedup)
		}
		if r.OverheadPct <= 0 || r.OverheadPct > 45 {
			t.Errorf("%s: overhead %.2f%% implausible", r.Workload.Name(), r.OverheadPct)
		}
	}
	avg /= 7
	if avg < 1.10 {
		t.Errorf("average speedup %.3f, want ≥ 1.10 (paper: 1.18)", avg)
	}
	// Shape: ART and NN are the big winners; MSER is the smallest.
	for _, big := range []string{"art", "nn"} {
		if byName[big].Speedup < byName["mser"].Speedup {
			t.Errorf("%s (%.3f) should beat mser (%.3f)", big, byName[big].Speedup, byName["mser"].Speedup)
		}
	}
	minSeq := byName["mser"].Speedup
	for _, r := range results {
		if r.Speedup < minSeq {
			minSeq = r.Speedup
		}
	}
	if byName["mser"].Speedup > 1.35 {
		t.Errorf("mser speedup %.3f too large for a 21%%-of-latency structure", byName["mser"].Speedup)
	}

	// Parallel benchmarks pay more profiling overhead than sequential
	// ones (paper: CLOMP 16.1%, Health 18.3% vs 2-5%).
	seqAvg := (byName["art"].OverheadPct + byName["libquantum"].OverheadPct +
		byName["tsp"].OverheadPct + byName["mser"].OverheadPct) / 4
	for _, par := range []string{"clomp", "health"} {
		if byName[par].OverheadPct <= seqAvg {
			t.Errorf("%s overhead %.2f%% should exceed sequential average %.2f%%",
				par, byName[par].OverheadPct, seqAvg)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	results := paperResults(t)
	for _, r := range results {
		name := r.Workload.Name()
		if red := r.MissReduction("L1"); red <= 0 {
			t.Errorf("%s: L1 miss reduction %.1f%% not positive", name, red)
		}
		if red := r.MissReduction("L2"); red <= 0 {
			t.Errorf("%s: L2 miss reduction %.1f%% not positive", name, red)
		}
	}
	// NN's L1 reduction is the paper's largest (87.2%); it must be near
	// the top here too.
	var nnRed, maxRed float64
	for _, r := range results {
		red := r.MissReduction("L1")
		if r.Workload.Name() == "nn" {
			nnRed = red
		}
		if red > maxRed {
			maxRed = red
		}
	}
	if nnRed < maxRed*0.7 {
		t.Errorf("nn L1 reduction %.1f%% should be near the top (max %.1f%%)", nnRed, maxRed)
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	WriteTable1(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "PEBS-LL", "IBS", "Itanium", "POWER5", "pebs-ll", "ibs"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	// Exactly the two latency-capable facilities are modeled.
	if strings.Count(out, " yes ") != 2 {
		t.Errorf("latency-capable rows != 2:\n%s", out)
	}
}

func TestRenderTables(t *testing.T) {
	results := paperResults(t)
	var buf bytes.Buffer
	WriteTable2(&buf)
	WriteTable3(&buf, results)
	WriteTable4(&buf, results)
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "art", "average", "CORAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestTable5And6AndFigure6(t *testing.T) {
	sr, err := AnalyzeART(testOpt())
	if err != nil {
		t.Fatal(err)
	}

	// Table 5 shape: P dominates; R is never sampled.
	share := map[string]float64{}
	for _, f := range sr.Fields {
		share[f.Name] = 100 * f.Share
	}
	if share["P"] < 45 || share["P"] > 90 {
		t.Errorf("P share = %.1f%%, want dominant (paper 73.3%%)", share["P"])
	}
	// R is only ever written during initialization; at the paper's sparse
	// period it is never captured at all, and even at the denser test
	// period it must stay negligible.
	if share["R"] > 1.0 {
		t.Errorf("R share = %.1f%%, want ≈0 (paper: not captured)", share["R"])
	}
	for _, f := range []string{"I", "U", "X", "Q"} {
		if share[f] <= 0 {
			t.Errorf("field %s has no latency", f)
		}
		if share[f] > share["P"] {
			t.Errorf("field %s (%.1f%%) outweighs P", f, share[f])
		}
	}

	// Table 6 shape: the hottest loop is 615-616 accessing only P.
	var hottest string
	var hottestFields string
	for _, lr := range sr.Loops {
		if lr.Loop != nil {
			hottest = lr.Name
			hottestFields = strings.Join(lr.FieldNames, ",")
			break // Loops are sorted by latency
		}
	}
	if !strings.Contains(hottest, "615") {
		t.Errorf("hottest loop = %s, want scanner.c:615-616", hottest)
	}
	if hottestFields != "P" {
		t.Errorf("hottest loop fields = %s, want P", hottestFields)
	}

	// Figure 6 shape: the called-out affinities.
	offOf := map[string]uint64{}
	for _, f := range sr.Fields {
		offOf[f.Name] = f.Offset
	}
	if a := sr.Affinity.Affinity(offOf["I"], offOf["U"]); a < 0.6 {
		t.Errorf("A(I,U) = %.2f, want high (paper 0.86)", a)
	}
	if a := sr.Affinity.Affinity(offOf["P"], offOf["U"]); a > 0.2 {
		t.Errorf("A(P,U) = %.2f, want low (paper 0.05)", a)
	}
	if a := sr.Affinity.Affinity(offOf["X"], offOf["Q"]); a < 0.9 {
		t.Errorf("A(X,Q) = %.2f, want ≈1", a)
	}

	var buf bytes.Buffer
	WriteTable5(&buf, sr)
	WriteTable6(&buf, sr)
	WriteFigure6(&buf, sr)
	out := buf.String()
	for _, want := range []string{"Table 5", "Table 6", "615", "graph affinity", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered ART experiments missing %q", want)
		}
	}
}

func TestSplitFigures(t *testing.T) {
	for fig := 7; fig <= 13; fig++ {
		var buf bytes.Buffer
		if err := SplitFigure(&buf, FigureNumberFor[fig], testOpt()); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		out := buf.String()
		if !strings.Contains(out, "struct") || !strings.Contains(out, "speedup") {
			t.Errorf("figure %d output incomplete:\n%s", fig, out)
		}
	}
}

func TestSuiteOverheadFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweeps are slow")
	}
	// The overhead figures use the paper's sampling period; the denser
	// test period would inflate the multithreaded kernels' overheads.
	figOpt := testOpt()
	figOpt.SamplePeriod = 10_000
	for _, suite := range []string{workloads.RodiniaSuite, workloads.SpecSuite} {
		points, err := SuiteOverheads(suite, figOpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != 15 {
			t.Fatalf("%s: %d points, want 15", suite, len(points))
		}
		var sum float64
		for _, pt := range points {
			if pt.OverheadPct <= 0 || pt.OverheadPct > 40 {
				t.Errorf("%s/%s: overhead %.2f%% implausible", suite, pt.Name, pt.OverheadPct)
			}
			if pt.Samples == 0 {
				t.Errorf("%s/%s: no samples", suite, pt.Name)
			}
			sum += pt.OverheadPct
		}
		avg := sum / float64(len(points))
		if avg > 25 {
			t.Errorf("%s: average overhead %.2f%% far above the paper's band", suite, avg)
		}
		var buf bytes.Buffer
		WriteOverheadFigure(&buf, suite, points, 8.2)
		if !strings.Contains(buf.String(), "average") {
			t.Error("figure rendering incomplete")
		}
	}
}

func TestPeriodRobustness(t *testing.T) {
	// ART's advice must survive from dense to the paper's 10k sampling;
	// overhead must fall monotonically with the period.
	rows, err := PeriodRobustness("art",
		[]uint64{1000, 3000, 10_000},
		"P", "P", testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.SizeOK {
			t.Errorf("period %d: size inference failed", r.Period)
		}
		if !r.AdviceOK {
			t.Errorf("period %d: advice degraded", r.Period)
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].OverheadPct >= rows[i-1].OverheadPct {
			t.Errorf("overhead not decreasing: %v then %v",
				rows[i-1].OverheadPct, rows[i].OverheadPct)
		}
		if rows[i].Samples >= rows[i-1].Samples {
			t.Errorf("samples not decreasing with period")
		}
	}
	var buf bytes.Buffer
	WriteRobustness(&buf, "art", rows)
	if !strings.Contains(buf.String(), "robustness") {
		t.Error("robustness rendering incomplete")
	}
}

func TestBaselineComparison(t *testing.T) {
	rows, err := BaselineComparison("art", testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	sampling, counting, reuse := rows[0], rows[1], rows[2]
	if sampling.Slowdown > 1.15 {
		t.Errorf("sampling slowdown = %.3f×, want near 1", sampling.Slowdown)
	}
	if counting.Slowdown < 1.5 {
		t.Errorf("counting slowdown = %.2f×, want multiples", counting.Slowdown)
	}
	if reuse.Slowdown < 20 {
		t.Errorf("reuse slowdown = %.1f×, want dramatic", reuse.Slowdown)
	}
	if reuse.Slowdown <= counting.Slowdown || counting.Slowdown <= sampling.Slowdown {
		t.Error("slowdown ordering wrong")
	}
	// Sampled field shares must track the exact ones closely.
	if sampling.MaxShareError <= 0 || sampling.MaxShareError > 0.1 {
		t.Errorf("sampling max share error = %.3f, want small but nonzero", sampling.MaxShareError)
	}
	var buf bytes.Buffer
	WriteBaselines(&buf, "art", rows)
	if !strings.Contains(buf.String(), "reuse-distance") {
		t.Error("baselines rendering incomplete")
	}
}

func TestAccuracyExperiment(t *testing.T) {
	rows := AccuracyExperiment(10000, 800, 9)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.K >= 10 && (r.Simulated < 0.98 || r.Corrected < 0.98) {
			t.Errorf("k=%d: accuracy sim %.3f corrected %.3f, want ≥ 0.98", r.K, r.Simulated, r.Corrected)
		}
		if r.K >= 4 {
			if d := r.Simulated - r.Corrected; d > 0.06 || d < -0.06 {
				t.Errorf("k=%d: simulation %.3f deviates from corrected model %.3f", r.K, r.Simulated, r.Corrected)
			}
		}
	}
	var buf bytes.Buffer
	WriteAccuracy(&buf, rows)
	if !strings.Contains(buf.String(), "Equation 4") {
		t.Error("accuracy rendering incomplete")
	}
}
