package tables

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/optimize"
	"repro/internal/workloads"
)

// RankedGroupings runs the layout optimizer over the named workloads and
// collects the results for WriteRankedGroupings. Candidates measure on
// the statistical engine; the winners are exact-confirmed inside each
// run.
func RankedGroupings(opt Options, names []string) ([]*optimize.Result, error) {
	results := make([]*optimize.Result, 0, len(names))
	for _, name := range names {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		res, err := optimize.Run(w, optimize.Options{
			Scale:        opt.Scale,
			SamplePeriod: opt.SamplePeriod,
			Seed:         opt.Seed,
			Parallel:     opt.Parallel,
		})
		if err != nil {
			return nil, fmt.Errorf("optimize %s: %w", name, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// WriteRankedGroupings prints the measured candidate-layout ranking per
// workload: every grouping the enumerator produced, ordered by measured
// cycles, with the exact-confirmed selection and how it compares to the
// paper's one-shot advice.
func WriteRankedGroupings(w io.Writer, results []*optimize.Result) {
	fmt.Fprintf(w, "Ranked candidate groupings (measured A/B selection)\n")
	for _, r := range results {
		fmt.Fprintf(w, "\n%s (%s):\n", r.Workload, r.Struct)
		fmt.Fprintf(w, "  %4s  %-18s %8s  %s\n", "rank", "candidate", "speedup", "grouping")
		for _, m := range r.Ranked {
			fmt.Fprintf(w, "  %4d  %-18s %7.3fx  %s\n", m.Rank, m.Label, m.Speedup, groupsString(m.Layout.Groups))
		}
		for _, s := range r.Skipped {
			fmt.Fprintf(w, "  skipped %s — %s\n", s.Label, s.Reason)
		}
		fmt.Fprintf(w, "  selected %s: %.3fx exact-confirmed over baseline", r.Selected.Label, r.ConfirmedSpeedup)
		switch {
		case r.ExactAdvice == 0:
			fmt.Fprintf(w, " (no advice candidate)\n")
		case r.ExactSelected < r.ExactAdvice:
			fmt.Fprintf(w, " (beats the one-shot advice: %d vs %d cycles)\n", r.ExactSelected, r.ExactAdvice)
		default:
			fmt.Fprintf(w, " (matches the one-shot advice)\n")
		}
	}
}

func groupsString(groups [][]string) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = strings.Join(g, ",")
	}
	return "{" + strings.Join(parts, " | ") + "}"
}
