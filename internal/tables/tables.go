// Package tables regenerates every table and figure of the paper's
// evaluation (Section 6) against the simulated machine, reporting each
// alongside the published values. Absolute numbers are not expected to
// match — the substrate is a blocking-load simulator, not the authors'
// Xeon testbed — but the shapes are: who wins, by roughly what factor,
// which fields cluster, and where the overhead lands.
package tables

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/pebs"
	"repro/internal/prog"
	"repro/internal/workloads"
	"repro/structslim"
)

// Options configures the experiment runs.
type Options struct {
	Scale workloads.Scale
	// SamplePeriod for the profiled runs; 0 = the paper's 10,000.
	SamplePeriod uint64
	Seed         uint64
	// Parallel bounds how many simulations the experiment engine runs
	// concurrently; 0 or 1 runs sequentially. Results are byte-identical
	// at any setting: every simulation is deterministically seeded and
	// owns its machine, and tables render in workload order.
	Parallel int
	// Reference forces the reference engines — the switch-dispatch
	// interpreter instead of the block-compiled one, and the full
	// hierarchy walk instead of the L1 hot-line shadow. Output is
	// identical either way (the fast paths change no observable event);
	// differential tests set it to prove that.
	Reference bool
	// Statistical switches profiled runs to sampled-window statistical
	// simulation with warmup window StatWindow (0 = the engine default).
	// Unlike Reference this changes observable results (latencies are
	// estimated between windows), so it is part of the result-cache key.
	Statistical bool
	StatWindow  int
}

// effectivePeriod is the sampling period after defaulting; result-cache
// keys use it so explicit-10,000 and defaulted runs share entries.
func (o Options) effectivePeriod() uint64 {
	if o.SamplePeriod == 0 {
		return 10_000
	}
	return o.SamplePeriod
}

func (o Options) runOptions() structslim.Options {
	period := o.SamplePeriod
	if period == 0 {
		period = 10_000
	}
	opt := structslim.Options{
		SamplePeriod: period,
		Seed:         o.Seed + 1,
		Analysis:     core.Options{TopK: 3},
	}
	if o.Reference {
		cfg := cache.DefaultConfig()
		cfg.DisableHotLine = true
		opt.Cache = &cfg
		opt.VM.Reference = true
	}
	opt.Analysis.Statistical = o.Statistical
	opt.Analysis.StatWindow = o.StatWindow
	return opt
}

// BenchResult is the full outcome of one benchmark's Table 3/4 pipeline:
// profile the original, derive the split from the advice, time both.
type BenchResult struct {
	Workload workloads.Workload

	Report      *core.Report
	HotStruct   *core.StructReport
	SplitLayout *prog.PhysLayout

	OrigCycles  uint64
	SplitCycles uint64
	Speedup     float64
	OverheadPct float64

	// Miss counts per level, original vs split.
	OrigMisses  map[string]uint64
	SplitMisses map[string]uint64
}

// MissReduction returns the percentage reduction of misses at a level
// (negative = misses increased).
func (r *BenchResult) MissReduction(level string) float64 {
	o, s := r.OrigMisses[level], r.SplitMisses[level]
	if o == 0 {
		return 0
	}
	return 100 * (float64(o) - float64(s)) / float64(o)
}

// RunBenchmark executes the end-to-end pipeline for one paper workload
// on a one-shot engine. Callers regenerating several artifacts should
// share one Engine so repeated simulations are deduplicated.
func RunBenchmark(w workloads.Workload, opt Options) (*BenchResult, error) {
	return NewEngine(opt).RunBenchmark(w)
}

// RunPaperBenchmarks runs the full pipeline for all seven benchmarks in
// table order on a one-shot engine.
func RunPaperBenchmarks(opt Options) ([]*BenchResult, error) {
	return NewEngine(opt).RunPaperBenchmarks()
}

// --- Published reference values -------------------------------------------

// PaperTable3 holds the published Table 3 rows.
var PaperTable3 = map[string]struct {
	OrigSec, SplitSec, Speedup, OverheadPct float64
}{
	"art":        {17.1, 12.5, 1.37, 2.05},
	"libquantum": {9.6, 8.8, 1.09, 2.79},
	"tsp":        {38.3, 35.1, 1.09, 2.42},
	"mser":       {28.6, 27.7, 1.03, 2.95},
	"clomp":      {20.8, 16.6, 1.25, 16.1},
	"health":     {49.7, 44.2, 1.12, 18.3},
	"nn":         {11.9, 8.9, 1.33, 5.21},
}

// PaperTable4 holds the published cache-miss reductions (%).
var PaperTable4 = map[string]struct{ L1, L2, L3 float64 }{
	"art":        {46.5, 51.1, 5.5},
	"libquantum": {49, 82.6, -637.9},
	"tsp":        {13.3, 19.9, 30.7},
	"mser":       {8.3, 8.4, 36.7},
	"clomp":      {15.5, 26.4, -2.3},
	"health":     {66.7, 90.8, -35.8},
	"nn":         {87.2, 98.0, 9.3},
}

// PaperTable5 holds ART's published per-field latency shares (%).
var PaperTable5 = map[string]float64{
	"I": 5.5, "W": 2, "X": 3.7, "V": 3.7, "U": 7.1, "P": 73.3, "Q": 4.7, "R": 0,
}

// PaperTable6 holds ART's published per-loop latency shares and fields.
var PaperTable6 = []struct {
	Lines  string
	Share  float64
	Fields string
}{
	{"131-138", 1.59, "U,P"},
	{"559-570", 8.42, "X,Q"},
	{"553-554", 1.98, "W"},
	{"545-548", 10.83, "U,I"},
	{"615-616", 56.57, "P"},
	{"607-608", 14.40, "P"},
	{"589-592", 2.25, "U,P"},
	{"575-576", 3.72, "V"},
	{"1015-1016", 0.24, "I"},
}

// PaperFigure6 holds the affinity values the paper calls out for ART.
var PaperFigure6 = map[[2]string]float64{
	{"I", "U"}: 0.86,
	{"P", "U"}: 0.05,
	{"Q", "X"}: 1.0,
}

// Paper-reported average profiling overheads for the suites (Figures 4
// and 5).
const (
	PaperRodiniaAvgOverheadPct = 8.2
	PaperSpecAvgOverheadPct    = 4.2
)

// --- Table renderers --------------------------------------------------------

// WriteTable1 prints the address-sampling facilities table, annotated
// with which semantics this reproduction models.
func WriteTable1(w io.Writer) {
	fmt.Fprintf(w, "Table 1: Address sampling techniques in processor models\n")
	fmt.Fprintf(w, "%-16s %-60s %-8s %s\n", "Processor", "Technique", "Latency", "Modeled here")
	for _, f := range pebs.Facilities {
		lat, mod := "no", "-"
		if f.Latency {
			lat = "yes"
		}
		if f.Modeled {
			mod = f.Mode.String()
		}
		fmt.Fprintf(w, "%-16s %-60s %-8s %s\n", f.Processor, f.Technique, lat, mod)
	}
}

// WriteTable2 prints the benchmark-description table.
func WriteTable2(w io.Writer) {
	fmt.Fprintf(w, "Table 2: Benchmark descriptions\n")
	fmt.Fprintf(w, "%-12s %-45s %-8s %s\n", "Benchmark", "Suite", "Parallel", "Description")
	for _, wl := range workloads.Paper() {
		par := "No"
		if wl.Parallel() {
			par = "Yes"
		}
		fmt.Fprintf(w, "%-12s %-45s %-8s %s\n", wl.Name(), wl.Suite(), par, wl.Description())
	}
}

// WriteTable3 prints speedups and overheads, paper vs measured.
func WriteTable3(w io.Writer, results []*BenchResult) {
	fmt.Fprintf(w, "Table 3: Speedups from structure splitting and measurement overhead\n")
	fmt.Fprintf(w, "%-12s | %-22s | %-22s | %-21s\n", "", "cycles orig → split", "speedup (paper)", "overhead% (paper)")
	var sumSpeed, sumOver, paperSpeed, paperOver float64
	for _, r := range results {
		ref := PaperTable3[r.Workload.Name()]
		fmt.Fprintf(w, "%-12s | %10d → %-10d | %6.2fx  (%4.2fx)      | %6.2f%%  (%5.2f%%)\n",
			r.Workload.Name(), r.OrigCycles, r.SplitCycles, r.Speedup, ref.Speedup, r.OverheadPct, ref.OverheadPct)
		sumSpeed += r.Speedup
		sumOver += r.OverheadPct
		paperSpeed += ref.Speedup
		paperOver += ref.OverheadPct
	}
	n := float64(len(results))
	fmt.Fprintf(w, "%-12s | %-22s | %6.2fx  (%4.2fx)      | %6.2f%%  (%5.2f%%)\n",
		"average", "", sumSpeed/n, paperSpeed/n, sumOver/n, paperOver/n)
}

// WriteTable4 prints per-level cache-miss reductions, paper vs measured.
func WriteTable4(w io.Writer, results []*BenchResult) {
	fmt.Fprintf(w, "Table 4: Cache miss reduction after structure splitting (measured, paper)\n")
	fmt.Fprintf(w, "%-12s | %-20s | %-20s | %-20s\n", "", "L1", "L2", "L3")
	for _, r := range results {
		ref := PaperTable4[r.Workload.Name()]
		fmt.Fprintf(w, "%-12s | %7.1f%% (%7.1f%%) | %7.1f%% (%7.1f%%) | %7.1f%% (%7.1f%%)\n",
			r.Workload.Name(),
			r.MissReduction("L1"), ref.L1,
			r.MissReduction("L2"), ref.L2,
			r.MissReduction("L3"), ref.L3)
	}
}
