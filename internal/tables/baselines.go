package tables

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/groundtruth"
	"repro/internal/vm"
	"repro/internal/workloads"
	"repro/structslim"
)

// BaselineRow compares one profiling technique on a workload.
type BaselineRow struct {
	Technique string
	// Slowdown is runtime_with_profiler / runtime_without (1.07 = 7%
	// overhead).
	Slowdown float64
	// MaxShareError is the largest absolute error of the technique's
	// per-field latency shares against exact ground truth, over the hot
	// structure's fields (0 for the exact techniques themselves).
	MaxShareError float64
}

// BaselineComparison reproduces the paper's motivating overhead contrast
// (Sections 1–3): StructSlim's sampling versus access-frequency
// instrumentation (Chilimbi/ASLOP-style) versus full reuse-distance
// collection (Zhong-style), all run on the same workload — and, as a
// bonus the paper could not measure, the sampled analysis's accuracy
// against the instrumented ground truth.
func BaselineComparison(name string, opt Options) ([]BaselineRow, error) {
	w, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}

	runInstrumented := func(kind groundtruth.Kind) (*groundtruth.Exact, float64, error) {
		p, phases, err := w.Build(nil, opt.Scale)
		if err != nil {
			return nil, 0, err
		}
		m, err := vm.NewMachine(p, cache.DefaultConfig(), maxCore(phases)+1, vm.Config{})
		if err != nil {
			return nil, 0, err
		}
		rec, err := groundtruth.NewRecorder(groundtruth.Config{Kind: kind}, m.Space, p)
		if err != nil {
			return nil, 0, err
		}
		m.Observer = rec
		var wall, app uint64
		for _, ph := range phases {
			st, err := m.Run(ph)
			if err != nil {
				return nil, 0, err
			}
			wall += st.WallCycles
			app += st.AppWallCycles
		}
		factor := 1.0
		if app > 0 {
			factor = float64(wall) / float64(app)
		}
		return rec.Report(), factor, nil
	}

	// Exact ground truth (and the counting baseline's cost) in one run.
	exact, countFactor, err := runInstrumented(groundtruth.KindCounting)
	if err != nil {
		return nil, err
	}
	_, reuseFactor, err := runInstrumented(groundtruth.KindReuse)
	if err != nil {
		return nil, err
	}

	// Sampling run.
	p, phases, err := w.Build(nil, opt.Scale)
	if err != nil {
		return nil, err
	}
	res, rep, err := structslim.ProfileAndAnalyze(p, phases, opt.runOptions())
	if err != nil {
		return nil, err
	}

	// Accuracy of the sampled shares against ground truth, over the hot
	// structure.
	var maxErr float64
	if w.Record() != nil {
		if sr := structslim.FindStruct(rep, w.Record().Name); sr != nil {
			if exactShares, ok := exact.FieldShare[sr.Identity]; ok {
				for _, f := range sr.Fields {
					d := f.Share - exactShares[f.Offset]
					if d < 0 {
						d = -d
					}
					if d > maxErr {
						maxErr = d
					}
				}
			}
		}
	}

	return []BaselineRow{
		{Technique: "StructSlim sampling", Slowdown: 1 + res.Stats.OverheadPct()/100, MaxShareError: maxErr},
		{Technique: "access-frequency instrumentation", Slowdown: countFactor},
		{Technique: "reuse-distance instrumentation", Slowdown: reuseFactor},
	}, nil
}

func maxCore(phases []workloads.Phase) int {
	m := 0
	for _, ph := range phases {
		for _, t := range ph {
			if t.Core > m {
				m = t.Core
			}
		}
	}
	return m
}

// WriteBaselines prints the comparison.
func WriteBaselines(w io.Writer, name string, rows []BaselineRow) {
	fmt.Fprintf(w, "Profiling technique comparison on %s (paper §1-3 motivation)\n", name)
	fmt.Fprintf(w, "  %-36s %-12s %s\n", "technique", "slowdown", "max field-share error vs exact")
	for _, r := range rows {
		errs := "(is the ground truth)"
		if r.Technique == "StructSlim sampling" {
			errs = fmt.Sprintf("%.3f", r.MaxShareError)
		}
		fmt.Fprintf(w, "  %-36s %8.2fx    %s\n", r.Technique, r.Slowdown, errs)
	}
	fmt.Fprintf(w, "  (paper quotes: sampling ~1.07x, frequency counting >4x, reuse distance up to 153x)\n")
}
