package tables

import (
	"fmt"
	"io"

	"repro/internal/workloads"
)

// BaselineRow compares one profiling technique on a workload.
type BaselineRow struct {
	Technique string
	// Slowdown is runtime_with_profiler / runtime_without (1.07 = 7%
	// overhead).
	Slowdown float64
	// MaxShareError is the largest absolute error of the technique's
	// per-field latency shares against exact ground truth, over the hot
	// structure's fields (0 for the exact techniques themselves).
	MaxShareError float64
}

// BaselineComparison reproduces the paper's motivating overhead contrast
// (Sections 1–3): StructSlim's sampling versus access-frequency
// instrumentation (Chilimbi/ASLOP-style) versus full reuse-distance
// collection (Zhong-style), all run on the same workload — and, as a
// bonus the paper could not measure, the sampled analysis's accuracy
// against the instrumented ground truth.
func BaselineComparison(name string, opt Options) ([]BaselineRow, error) {
	return NewEngine(opt).BaselineComparison(name)
}

func maxCore(phases []workloads.Phase) int {
	m := 0
	for _, ph := range phases {
		for _, t := range ph {
			if t.Core > m {
				m = t.Core
			}
		}
	}
	return m
}

// WriteBaselines prints the comparison.
func WriteBaselines(w io.Writer, name string, rows []BaselineRow) {
	fmt.Fprintf(w, "Profiling technique comparison on %s (paper §1-3 motivation)\n", name)
	fmt.Fprintf(w, "  %-36s %-12s %s\n", "technique", "slowdown", "max field-share error vs exact")
	for _, r := range rows {
		errs := "(is the ground truth)"
		if r.Technique == "StructSlim sampling" {
			errs = fmt.Sprintf("%.3f", r.MaxShareError)
		}
		fmt.Fprintf(w, "  %-36s %8.2fx    %s\n", r.Technique, r.Slowdown, errs)
	}
	fmt.Fprintf(w, "  (paper quotes: sampling ~1.07x, frequency counting >4x, reuse distance up to 153x)\n")
}
