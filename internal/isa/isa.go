// Package isa defines the instruction set of the simulated register
// machine that StructSlim profiles.
//
// The machine is a small 64-bit load/store architecture: 64 virtual
// integer registers (register 0 is hard-wired to zero, like RISC zero
// registers), x86-style memory operands of the form
// base + index*scale + displacement, conditional branches that compare two
// registers, and call/return with a conventional stack of frames. Floating
// point values are carried in the integer registers as IEEE-754 bit
// patterns and operated on by the F* opcodes.
//
// Each instruction carries a synthetic instruction pointer (IP) assigned
// when the enclosing program is finalized, and a source line number from
// the synthetic line table. The IP plays the role of the program counter
// captured by PEBS-style address sampling; the line number plays the role
// of DWARF debug info.
package isa

import "fmt"

// Reg names a virtual register. Register 0 (RZ) always reads as zero;
// writes to it are discarded.
type Reg uint8

// NumRegs is the size of the register file of each thread.
const NumRegs = 64

// RZ is the hard-wired zero register.
const RZ Reg = 0

// Calling convention: r1..r6 pass arguments into a Call and r1 carries the
// return value out of a Ret; the interpreter restores every other register
// from the caller's frame. r8 and up are function-local scratch.
const (
	ArgReg0 Reg = 1
	ArgReg1 Reg = 2
	ArgReg2 Reg = 3
	ArgReg3 Reg = 4
	ArgReg4 Reg = 5
	ArgReg5 Reg = 6
	RetReg  Reg = 1

	// FirstScratchReg is the lowest register handed out by the builder's
	// allocator.
	FirstScratchReg Reg = 8
)

// Op enumerates the machine's opcodes.
type Op uint8

// Opcode values. Loads and stores are the only instructions that touch
// memory; Alloc is the allocator intrinsic (the moral equivalent of an
// interposed malloc) and is what data-centric attribution hooks.
const (
	Nop Op = iota

	// Moves and integer ALU. MovI: Rd = Imm. Mov: Rd = Rs1.
	MovI
	Mov
	Add  // Rd = Rs1 + Rs2
	AddI // Rd = Rs1 + Imm
	Sub  // Rd = Rs1 - Rs2
	Mul  // Rd = Rs1 * Rs2
	MulI // Rd = Rs1 * Imm
	Div  // Rd = Rs1 / Rs2 (0 if Rs2 == 0)
	Rem  // Rd = Rs1 % Rs2 (0 if Rs2 == 0)
	And  // Rd = Rs1 & Rs2
	Or   // Rd = Rs1 | Rs2
	Xor  // Rd = Rs1 ^ Rs2
	Shl  // Rd = Rs1 << (Rs2 & 63)
	Shr  // Rd = int64(Rs1) >> (Rs2 & 63)

	// Floating point on float64 bit patterns.
	FAdd // Rd = bits(float(Rs1) + float(Rs2))
	FSub
	FMul
	FDiv
	FSqrt // Rd = bits(sqrt(float(Rs1)))
	CvtIF // Rd = bits(float64(int64(Rs1)))
	CvtFI // Rd = int64(float(Rs1))

	// Memory. Effective address EA = Rs1 + Rs2*Scale + Disp.
	// Load: Rd = zero/sign-extended mem[EA .. EA+Size).
	// Store: mem[EA .. EA+Size) = low Size bytes of Rd.
	Load
	Store

	// Control flow. Jmp: unconditional to block Target.
	// Br: if cmp(Rs1, Rs2) branch to Target, else fall through to the
	// next block of the function.
	Jmp
	Br

	// Call transfers to function Fn; Ret returns to the instruction after
	// the call. Halt stops the executing thread.
	Call
	Ret
	Halt

	// Alloc: Rd = base address of a fresh heap block of Rs1 bytes. The
	// runtime records the allocation site (this instruction's IP) and the
	// current call path, which data-centric attribution uses as the
	// object's identity.
	Alloc

	// GAddr: Rd = base address of the program's global (static) data
	// object with index Imm. The address is resolved when the program is
	// loaded into a simulated address space, mirroring how a linker
	// resolves symbol references.
	GAddr
)

var opNames = [...]string{
	Nop: "nop", MovI: "movi", Mov: "mov", Add: "add", AddI: "addi",
	Sub: "sub", Mul: "mul", MulI: "muli", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FSqrt: "fsqrt",
	CvtIF: "cvtif", CvtFI: "cvtfi",
	Load: "load", Store: "store", Jmp: "jmp", Br: "br",
	Call: "call", Ret: "ret", Halt: "halt", Alloc: "alloc", GAddr: "gaddr",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMemAccess reports whether the opcode reads or writes data memory.
// These are the instructions PEBS-style address sampling can select.
func (o Op) IsMemAccess() bool { return o == Load || o == Store }

// IsTerminator reports whether the opcode may end a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case Jmp, Br, Ret, Halt:
		return true
	}
	return false
}

// Cond is the comparison predicate of a Br instruction, evaluated as
// cmp(Rs1, Rs2) on signed 64-bit values.
type Cond uint8

// Branch predicates.
const (
	Eq Cond = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

var condNames = [...]string{Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval applies the predicate to two register values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

// Instr is one machine instruction. The fields used depend on Op; unused
// fields are zero. The flat one-struct encoding keeps the interpreter's
// dispatch loop free of type switches.
type Instr struct {
	Op     Op
	Cmp    Cond  // Br predicate
	Rd     Reg   // destination; source value for Store
	Rs1    Reg   // first source; base register for Load/Store
	Rs2    Reg   // second source; index register for Load/Store
	Scale  uint8 // index scale for Load/Store (0 or 1 means byte indexing)
	Size   uint8 // access size in bytes for Load/Store: 1, 2, 4, or 8
	Imm    int64 // immediate operand
	Disp   int64 // address displacement for Load/Store
	Target int   // block id for Jmp/Br
	Fn     int   // callee function id for Call

	// Metadata filled in by program finalization.
	IP   uint64 // synthetic instruction pointer
	Line int32  // source line from the synthetic line table
}

// EffScale returns the scale with 0 normalized to 1.
func (in *Instr) EffScale() int64 {
	if in.Scale == 0 {
		return 1
	}
	return int64(in.Scale)
}

// String renders the instruction in a readable assembly-ish syntax.
func (in *Instr) String() string {
	switch in.Op {
	case Nop, Ret, Halt:
		return in.Op.String()
	case MovI:
		return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm)
	case Mov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	case AddI:
		return fmt.Sprintf("addi r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
	case MulI:
		return fmt.Sprintf("muli r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
	case Load:
		return fmt.Sprintf("load%d r%d, [r%d + r%d*%d + %d]", in.Size, in.Rd, in.Rs1, in.Rs2, in.EffScale(), in.Disp)
	case Store:
		return fmt.Sprintf("store%d [r%d + r%d*%d + %d], r%d", in.Size, in.Rs1, in.Rs2, in.EffScale(), in.Disp, in.Rd)
	case Jmp:
		return fmt.Sprintf("jmp b%d", in.Target)
	case Br:
		return fmt.Sprintf("br.%s r%d, r%d, b%d", in.Cmp, in.Rs1, in.Rs2, in.Target)
	case Call:
		return fmt.Sprintf("call f%d", in.Fn)
	case Alloc:
		return fmt.Sprintf("alloc r%d, r%d", in.Rd, in.Rs1)
	case GAddr:
		return fmt.Sprintf("gaddr r%d, g%d", in.Rd, in.Imm)
	case FSqrt, CvtIF, CvtFI:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Validate checks structural invariants that the interpreter relies on.
func (in *Instr) Validate() error {
	switch in.Op {
	case Load, Store:
		switch in.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("%s: invalid access size %d", in.Op, in.Size)
		}
	case Br, Jmp:
		if in.Target < 0 {
			return fmt.Errorf("%s: negative block target %d", in.Op, in.Target)
		}
	case Call:
		if in.Fn < 0 {
			return fmt.Errorf("call: negative function id %d", in.Fn)
		}
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return fmt.Errorf("%s: register out of range", in.Op)
	}
	return nil
}

// TextBase is the base address of the synthetic text segment. Instruction
// pointers are TextBase + 4*index over the whole program, mimicking a
// fixed-width encoding.
const TextBase uint64 = 0x400000

// InstrBytes is the encoded width used when assigning IPs.
const InstrBytes uint64 = 4
