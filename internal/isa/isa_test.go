package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Nop: "nop", Load: "load", Store: "store", Br: "br", GAddr: "gaddr",
		Alloc: "alloc", FSqrt: "fsqrt", CvtFI: "cvtfi",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(63).String(); !strings.Contains(got, "63") {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestIsMemAccess(t *testing.T) {
	for op := Nop; op <= GAddr; op++ {
		want := op == Load || op == Store
		if got := op.IsMemAccess(); got != want {
			t.Errorf("%s.IsMemAccess() = %v, want %v", op, got, want)
		}
	}
}

func TestIsTerminator(t *testing.T) {
	terms := map[Op]bool{Jmp: true, Br: true, Ret: true, Halt: true}
	for op := Nop; op <= GAddr; op++ {
		if got := op.IsTerminator(); got != terms[op] {
			t.Errorf("%s.IsTerminator() = %v, want %v", op, got, terms[op])
		}
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{Eq, 3, 3, true}, {Eq, 3, 4, false},
		{Ne, 3, 4, true}, {Ne, 3, 3, false},
		{Lt, -1, 0, true}, {Lt, 0, 0, false},
		{Le, 0, 0, true}, {Le, 1, 0, false},
		{Gt, 5, 4, true}, {Gt, 4, 4, false},
		{Ge, 4, 4, true}, {Ge, 3, 4, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%s.Eval(%d, %d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestCondEvalComplement(t *testing.T) {
	// Eq/Ne, Lt/Ge, Le/Gt are complements for all inputs.
	pairs := [][2]Cond{{Eq, Ne}, {Lt, Ge}, {Le, Gt}}
	f := func(a, b int64) bool {
		for _, p := range pairs {
			if p[0].Eval(a, b) == p[1].Eval(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrValidate(t *testing.T) {
	good := []Instr{
		{Op: Load, Rd: 1, Rs1: 2, Size: 8},
		{Op: Store, Rd: 1, Rs1: 2, Size: 1},
		{Op: Br, Cmp: Lt, Rs1: 1, Rs2: 2, Target: 0},
		{Op: Call, Fn: 3},
		{Op: Nop},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", in.String(), err)
		}
	}
	bad := []Instr{
		{Op: Load, Rd: 1, Rs1: 2, Size: 3},
		{Op: Load, Rd: 1, Rs1: 2, Size: 0},
		{Op: Store, Rd: 1, Rs1: 2, Size: 16},
		{Op: Br, Target: -1},
		{Op: Call, Fn: -2},
		{Op: Add, Rd: NumRegs},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", in)
		}
	}
}

func TestEffScale(t *testing.T) {
	if got := (&Instr{Scale: 0}).EffScale(); got != 1 {
		t.Errorf("EffScale(0) = %d, want 1", got)
	}
	if got := (&Instr{Scale: 24}).EffScale(); got != 24 {
		t.Errorf("EffScale(24) = %d, want 24", got)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: MovI, Rd: 3, Imm: 42}, "movi r3, 42"},
		{Instr{Op: Load, Rd: 1, Rs1: 2, Rs2: 3, Scale: 8, Disp: 16, Size: 8}, "load8 r1, [r2 + r3*8 + 16]"},
		{Instr{Op: Store, Rd: 4, Rs1: 5, Size: 4}, "store4 [r5 + r0*1 + 0], r4"},
		{Instr{Op: Br, Cmp: Ge, Rs1: 1, Rs2: 2, Target: 7}, "br.ge r1, r2, b7"},
		{Instr{Op: GAddr, Rd: 2, Imm: 1}, "gaddr r2, g1"},
		{Instr{Op: Halt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
