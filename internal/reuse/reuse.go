// Package reuse implements exact LRU reuse-distance (stack-distance)
// analysis over a full memory trace — the machinery behind the
// instrumentation-based structure-splitting baseline of Zhong et al.
// (reference [38] of the paper), whose cost is the paper's motivating
// contrast: computing reuse distances for every access slows programs by
// up to 153×, versus StructSlim's ~7% sampling.
//
// The analyzer uses the Bennett–Kruskal algorithm: a Fenwick tree over
// access timestamps counts, for each access, how many *distinct* lines
// were touched since the previous access to the same line — exactly the
// LRU stack distance. Each access costs O(log n).
package reuse

// Distance values.
const (
	// Infinite marks a line's first access (no previous use).
	Infinite = ^uint64(0)
)

// Analyzer computes exact reuse distances for a stream of line
// addresses.
type Analyzer struct {
	// lastTime maps a line to the timestamp of its previous access.
	lastTime map[uint64]uint64
	// bit is a Fenwick tree over timestamps: bit[t] == 1 when the access
	// at time t is the *most recent* access to its line.
	bit []uint64
	// time is the next timestamp (1-based for the Fenwick tree).
	time uint64

	// Hist buckets distances by ⌊log2⌋: Hist[k] counts distances in
	// [2^k, 2^(k+1)); Hist[0] counts 0 and 1. Cold (first-touch)
	// accesses are counted separately.
	Hist [64]uint64
	Cold uint64
	N    uint64 // total accesses observed
}

// NewAnalyzer pre-sizes for capacity accesses (the tree grows as
// needed).
func NewAnalyzer(capacity int) *Analyzer {
	if capacity < 16 {
		capacity = 16
	}
	return &Analyzer{
		lastTime: make(map[uint64]uint64),
		bit:      make([]uint64, capacity+1),
	}
}

func (a *Analyzer) add(i uint64, delta uint64) {
	for ; i < uint64(len(a.bit)); i += i & (^i + 1) {
		a.bit[i] += delta
	}
}

func (a *Analyzer) prefix(i uint64) uint64 {
	var s uint64
	for ; i > 0; i -= i & (^i + 1) {
		s += a.bit[i]
	}
	return s
}

func (a *Analyzer) grow() {
	// Rebuild the tree at double size from the set of last-access times:
	// only "most recent access" markers carry weight, so the live state is
	// exactly one +1 per tracked line.
	a.bit = make([]uint64, len(a.bit)*2)
	for _, t := range a.lastTime {
		a.add(t, 1)
	}
}

// Reset clears all observation state — timestamps, the Fenwick tree, and
// the histogram — while keeping the allocated tree capacity, so pooled
// analyzers can be reused across phases without reallocating.
func (a *Analyzer) Reset() {
	if len(a.lastTime) > 0 {
		a.lastTime = make(map[uint64]uint64, len(a.lastTime))
	}
	for i := range a.bit {
		a.bit[i] = 0
	}
	a.time = 0
	a.Hist = [64]uint64{}
	a.Cold = 0
	a.N = 0
}

// Merge folds another analyzer's recorded histogram (Hist, Cold, N) into
// this one. Only the distance accounting merges: the two analyzers'
// traces must have been observed independently (e.g. one phase each);
// merging does not splice their timestamp state.
func (a *Analyzer) Merge(o *Analyzer) {
	if o == nil {
		return
	}
	for i := range a.Hist {
		a.Hist[i] += o.Hist[i]
	}
	a.Cold += o.Cold
	a.N += o.N
}

// FromTrace runs the exact analyzer over a complete line-address trace
// and returns it with the full histogram populated — the differential
// baseline for static reuse predictions.
func FromTrace(lines []uint64) *Analyzer {
	a := NewAnalyzer(len(lines))
	for _, ln := range lines {
		a.Observe(ln)
	}
	return a
}

// Observe processes one access to a line and returns its reuse distance:
// the number of distinct lines accessed since this line's previous use,
// or Infinite on first touch.
func (a *Analyzer) Observe(line uint64) uint64 {
	a.time++
	t := a.time
	if t >= uint64(len(a.bit)) {
		a.grow()
	}
	a.N++

	prev, seen := a.lastTime[line]
	var dist uint64
	if !seen {
		dist = Infinite
		a.Cold++
	} else {
		// Distinct lines touched in (prev, t): each has exactly one
		// "most recent access" marker in that interval.
		dist = a.prefix(t-1) - a.prefix(prev)
		a.Hist[log2Bucket(dist)]++
	}
	if seen {
		a.add(prev, ^uint64(0)) // -1: prev is no longer the line's last access
	}
	a.add(t, 1)
	a.lastTime[line] = t
	return dist
}

func log2Bucket(d uint64) int {
	b := 0
	for d > 1 {
		d >>= 1
		b++
	}
	return b
}

// DistinctLines returns how many distinct lines have been observed.
func (a *Analyzer) DistinctLines() int { return len(a.lastTime) }

// MissRatioAtCapacity estimates the miss ratio of a fully-associative
// LRU cache holding `lines` lines, from the recorded histogram: accesses
// whose reuse distance is ≥ capacity (plus cold misses) miss. Bucketing
// makes this approximate within one power of two.
func (a *Analyzer) MissRatioAtCapacity(lines uint64) float64 {
	if a.N == 0 {
		return 0
	}
	misses := a.Cold
	cut := log2Bucket(lines)
	for b := cut; b < len(a.Hist); b++ {
		misses += a.Hist[b]
	}
	return float64(misses) / float64(a.N)
}
