package reuse

import (
	"math/rand"
	"testing"
)

// TestGrowthAcrossCapacityBoundary drives an analyzer well past its
// pre-sized Fenwick capacity and checks every distance against a naive
// LRU stack, so the grow() rebuild is exercised across the boundary
// (capacity 16 → 32 → 64 → ...).
func TestGrowthAcrossCapacityBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := NewAnalyzer(0) // min capacity 16
	if len(a.bit) != 17 {
		t.Fatalf("pre-sized bit len = %d, want 17", len(a.bit))
	}
	var stack []uint64
	for i := 0; i < 300; i++ {
		line := uint64(rng.Intn(40))
		got := a.Observe(line)
		want := Infinite
		for pos, l := range stack {
			if l == line {
				want = uint64(pos)
				stack = append(stack[:pos], stack[pos+1:]...)
				break
			}
		}
		stack = append([]uint64{line}, stack...)
		if got != want {
			t.Fatalf("access %d (line %d): distance %d, naive %d", i, line, got, want)
		}
		// The boundary crossings of interest: observation 16, 32, 64...
		if i == 16 && len(a.bit) <= 17 {
			t.Fatalf("tree did not grow past the pre-sized capacity")
		}
	}
	if a.N != 300 {
		t.Errorf("N = %d", a.N)
	}
}

// TestInfiniteFirstTouchBucket: first touches must land in Cold, never in
// a histogram bucket — including after Reset, and regardless of growth.
func TestInfiniteFirstTouchBucket(t *testing.T) {
	a := NewAnalyzer(4)
	for i := 0; i < 100; i++ {
		if d := a.Observe(uint64(i)); d != Infinite {
			t.Fatalf("first touch of line %d: distance %d, want Infinite", i, d)
		}
	}
	if a.Cold != 100 || a.N != 100 {
		t.Fatalf("Cold = %d, N = %d, want 100, 100", a.Cold, a.N)
	}
	var bucketed uint64
	for _, h := range a.Hist {
		bucketed += h
	}
	if bucketed != 0 {
		t.Fatalf("first touches leaked into histogram buckets: %d", bucketed)
	}
	// Every access misses at any finite capacity.
	if mr := a.MissRatioAtCapacity(1 << 20); mr != 1.0 {
		t.Fatalf("all-cold miss ratio = %v, want 1", mr)
	}
}

// TestResetReusesState: after Reset the analyzer behaves exactly like a
// fresh one (first touches are cold again), and the tree capacity is
// retained.
func TestResetReusesState(t *testing.T) {
	a := NewAnalyzer(8)
	for i := 0; i < 50; i++ {
		a.Observe(uint64(i % 7))
	}
	capBefore := len(a.bit)
	a.Reset()
	if a.N != 0 || a.Cold != 0 || a.time != 0 || len(a.lastTime) != 0 {
		t.Fatalf("Reset left state: %+v", a)
	}
	for i, h := range a.Hist {
		if h != 0 {
			t.Fatalf("Reset left Hist[%d] = %d", i, h)
		}
	}
	if len(a.bit) != capBefore {
		t.Fatalf("Reset dropped tree capacity: %d -> %d", capBefore, len(a.bit))
	}
	if d := a.Observe(3); d != Infinite {
		t.Fatalf("post-Reset first touch distance = %d, want Infinite", d)
	}
	a.Observe(3)
	if a.Hist[0] != 1 || a.Cold != 1 || a.N != 2 {
		t.Fatalf("post-Reset counters: Hist[0]=%d Cold=%d N=%d", a.Hist[0], a.Cold, a.N)
	}
}

// TestMergeHistograms: pooled per-phase analyzers fold into one total.
func TestMergeHistograms(t *testing.T) {
	a, b := NewAnalyzer(16), NewAnalyzer(16)
	for i := 0; i < 30; i++ {
		a.Observe(uint64(i % 5))
		b.Observe(uint64(i % 3))
	}
	var total Analyzer
	total.Merge(a)
	total.Merge(b)
	total.Merge(nil) // no-op
	if total.N != a.N+b.N || total.Cold != a.Cold+b.Cold {
		t.Fatalf("merged N=%d Cold=%d", total.N, total.Cold)
	}
	for i := range total.Hist {
		if total.Hist[i] != a.Hist[i]+b.Hist[i] {
			t.Fatalf("merged Hist[%d] = %d, want %d", i, total.Hist[i], a.Hist[i]+b.Hist[i])
		}
	}
	// Mass conservation holds on the merge.
	var mass uint64
	for _, h := range total.Hist {
		mass += h
	}
	if mass+total.Cold != total.N {
		t.Fatalf("merge broke mass conservation: %d + %d != %d", mass, total.Cold, total.N)
	}
}

// TestFromTraceMatchesIncremental: FromTrace over a recorded trace equals
// observing the same trace incrementally.
func TestFromTraceMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trace := make([]uint64, 5000)
	for i := range trace {
		trace[i] = uint64(rng.Intn(200))
	}
	inc := NewAnalyzer(16)
	for _, ln := range trace {
		inc.Observe(ln)
	}
	ft := FromTrace(trace)
	if ft.N != inc.N || ft.Cold != inc.Cold || ft.Hist != inc.Hist {
		t.Fatalf("FromTrace diverged from incremental observation")
	}
}

// TestStackModelMatchesAnalyzer: the O(1) segmented-LRU band
// classification must agree with the exact reuse distance at every
// access, for random traces and random capacity ladders.
func TestStackModelMatchesAnalyzer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		// Random strictly ascending capacities.
		nc := 1 + rng.Intn(3)
		caps := make([]uint64, 0, nc)
		c := uint64(1 + rng.Intn(6))
		for i := 0; i < nc; i++ {
			caps = append(caps, c)
			c += uint64(1 + rng.Intn(20))
		}
		sm := NewStackModel(caps)
		if trial%2 == 0 {
			sm.Prime(0, 64)
		}
		an := NewAnalyzer(16)
		for i := 0; i < 3000; i++ {
			line := uint64(rng.Intn(50))
			d := an.Observe(line)
			want := len(caps)
			if d != Infinite {
				for bi, cp := range caps {
					if d < cp {
						want = bi
						break
					}
				}
			}
			if got := sm.Touch(line); got != want {
				t.Fatalf("trial %d caps %v access %d line %d dist %d: band %d, want %d",
					trial, caps, i, line, d, got, want)
			}
		}
	}
}

func BenchmarkStackModelTouch(b *testing.B) {
	sm := NewStackModel([]uint64{512, 4096, 327680})
	sm.Prime(0, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.Touch(uint64(i) % (1 << 14))
	}
}
