package reuse

import (
	"math/rand"
	"testing"
)

func TestFirstTouchIsInfinite(t *testing.T) {
	a := NewAnalyzer(16)
	if d := a.Observe(1); d != Infinite {
		t.Errorf("first touch distance = %d", d)
	}
	if a.Cold != 1 || a.N != 1 {
		t.Errorf("counters: %+v", a)
	}
}

func TestImmediateReuseIsZero(t *testing.T) {
	a := NewAnalyzer(16)
	a.Observe(7)
	if d := a.Observe(7); d != 0 {
		t.Errorf("immediate reuse distance = %d, want 0", d)
	}
}

func TestABAPattern(t *testing.T) {
	a := NewAnalyzer(16)
	a.Observe(1) // A cold
	a.Observe(2) // B cold
	if d := a.Observe(1); d != 1 {
		t.Errorf("A-B-A distance = %d, want 1", d)
	}
}

// TestRepeatedScan: scanning K distinct lines twice gives every
// second-pass access distance K-1.
func TestRepeatedScan(t *testing.T) {
	const k = 100
	a := NewAnalyzer(1024)
	for i := 0; i < k; i++ {
		a.Observe(uint64(i))
	}
	for i := 0; i < k; i++ {
		if d := a.Observe(uint64(i)); d != k-1 {
			t.Fatalf("second-pass distance of line %d = %d, want %d", i, d, k-1)
		}
	}
	if a.DistinctLines() != k {
		t.Errorf("distinct = %d", a.DistinctLines())
	}
}

// TestReferenceImplementation cross-checks the Fenwick-tree algorithm
// against a naive O(n²) stack simulation on random traces.
func TestReferenceImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		a := NewAnalyzer(32) // force growth
		var stack []uint64   // LRU stack, most recent first
		for i := 0; i < 2000; i++ {
			line := uint64(rng.Intn(50))
			got := a.Observe(line)

			// Naive: position in the LRU stack.
			want := Infinite
			for pos, l := range stack {
				if l == line {
					want = uint64(pos)
					stack = append(stack[:pos], stack[pos+1:]...)
					break
				}
			}
			stack = append([]uint64{line}, stack...)

			if got != want {
				t.Fatalf("trial %d access %d (line %d): distance %d, naive %d",
					trial, i, line, got, want)
			}
		}
	}
}

func TestHistogramAndMissRatio(t *testing.T) {
	// Cyclic scan over 64 lines, 4 rounds: after the cold round every
	// access has distance 63 → misses in any LRU cache smaller than 64
	// lines, hits at 64+.
	a := NewAnalyzer(1024)
	for round := 0; round < 4; round++ {
		for i := 0; i < 64; i++ {
			a.Observe(uint64(i))
		}
	}
	if a.Cold != 64 {
		t.Errorf("cold = %d", a.Cold)
	}
	if got := a.MissRatioAtCapacity(16); got != 1.0 {
		t.Errorf("miss ratio at 16 lines = %v, want 1 (thrashing)", got)
	}
	if got := a.MissRatioAtCapacity(128); got != 64.0/256.0 {
		t.Errorf("miss ratio at 128 lines = %v, want cold-only %v", got, 64.0/256.0)
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 63: 5, 64: 6}
	for d, want := range cases {
		if got := log2Bucket(d); got != want {
			t.Errorf("bucket(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestGrowthPreservesState(t *testing.T) {
	a := NewAnalyzer(4) // tiny: grows repeatedly
	for i := 0; i < 300; i++ {
		a.Observe(uint64(i % 10))
	}
	// The trace ends at line 9 (i = 299); since line 5's last access
	// (i = 295) the distinct lines touched are 6, 7, 8, 9.
	if d := a.Observe(5); d != 4 {
		t.Errorf("post-growth distance = %d, want 4", d)
	}
}

func BenchmarkObserve(b *testing.B) {
	a := NewAnalyzer(b.N + 16)
	for i := 0; i < b.N; i++ {
		a.Observe(uint64(i % 4096))
	}
}
