package reuse

// StackModel classifies every access of a line trace by which capacity
// band of a fully-associative LRU stack it hits — the "LRU stack model"
// folding of a reuse-distance histogram, evaluated online in O(1) per
// access instead of O(log n).
//
// It maintains the LRU stack as a doubly-linked list with one boundary
// marker per capacity: when a line moves to the front, only the markers
// above its old position shift, each by exactly one node. With the
// capacities of the simulated hierarchy (in lines), Touch returns the
// index of the level the access would hit, which is how the analytic
// profile synthesis assigns a level and latency to every access without
// simulating the caches.
//
// The classification agrees exactly with Analyzer: an access with reuse
// distance d (distinct lines since the previous use) sits at stack
// position d+1, so it lands in band i iff caps[i-1] <= d < caps[i], and
// in band len(caps) — memory — when d >= caps[len(caps)-1] or the access
// is a first touch.
type StackModel struct {
	caps []uint64 // ascending capacities in lines

	nodes []stackNode
	free  []int32

	// index maps a line to its node. Lines inside the dense window
	// [lo, lo+len(dense)) resolve through a flat slice; the map catches
	// strays.
	dense  []int32
	lo     uint64
	sparse map[uint64]int32

	head, tail int32
	size       uint64

	// marker[i] is the node at stack position caps[i] (1-based from the
	// MRU end), or -1 while the stack is shorter than caps[i].
	marker []int32
}

type stackNode struct {
	line       uint64
	prev, next int32
	band       int32
}

// NewStackModel builds a model for the given line capacities, which must
// be strictly ascending and nonzero (as cache levels are).
func NewStackModel(caps []uint64) *StackModel {
	for i, c := range caps {
		if c == 0 || (i > 0 && c <= caps[i-1]) {
			panic("reuse: stack-model capacities must be strictly ascending and nonzero")
		}
	}
	s := &StackModel{
		caps:   append([]uint64(nil), caps...),
		sparse: make(map[uint64]int32),
		head:   -1,
		tail:   -1,
		marker: make([]int32, len(caps)),
	}
	for i := range s.marker {
		s.marker[i] = -1
	}
	return s
}

// Prime pre-allocates a dense line→node index for the window
// [lo, lo+extent); lines outside it fall back to the map. The analytic
// synthesis primes the model with the program's global-data line range.
func (s *StackModel) Prime(lo, extent uint64) {
	if extent == 0 || extent > 1<<28 {
		return
	}
	s.lo = lo
	s.dense = make([]int32, extent)
	for i := range s.dense {
		s.dense[i] = -1
	}
}

func (s *StackModel) lookup(line uint64) int32 {
	if s.dense != nil {
		if i := line - s.lo; i < uint64(len(s.dense)) {
			return s.dense[i]
		}
	}
	if n, ok := s.sparse[line]; ok {
		return n
	}
	return -1
}

func (s *StackModel) store(line uint64, n int32) {
	if s.dense != nil {
		if i := line - s.lo; i < uint64(len(s.dense)) {
			s.dense[i] = n
			return
		}
	}
	if n < 0 {
		delete(s.sparse, line)
	} else {
		s.sparse[line] = n
	}
}

// NumBands returns the number of Touch classes: len(caps)+1, the last
// being "beyond every capacity" (memory).
func (s *StackModel) NumBands() int { return len(s.caps) + 1 }

// Touch records one access and returns its band: i < len(caps) means the
// line sat within caps[i] (a hit at level i), len(caps) means it sat
// beyond every capacity or was a first touch (memory).
func (s *StackModel) Touch(line uint64) int {
	ni := s.lookup(line)
	if ni < 0 {
		return s.insert(line)
	}
	nd := &s.nodes[ni]
	band := int(nd.band)

	if ni == s.head {
		return band
	}
	// Markers strictly above the node's old position each slide one
	// position down (their node crosses into the next band). Markers at
	// those positions are never the node itself: the node's position is
	// strictly below caps[i] for every i < band.
	for i := 0; i < band && i < len(s.marker); i++ {
		mi := s.marker[i]
		if mi < 0 {
			continue
		}
		s.nodes[mi].band++
		if p := s.nodes[mi].prev; p >= 0 {
			s.marker[i] = p
		} else {
			// The boundary was the head (capacity 1): after the move the
			// node itself occupies position 1.
			s.marker[i] = ni
		}
	}
	// The node may itself be the boundary of its own band (position
	// exactly caps[band]): its removal pulls that marker up one node;
	// positions below it are unchanged.
	if band < len(s.marker) && s.marker[band] == ni {
		s.marker[band] = nd.prev
	}
	s.unlink(ni)
	s.pushFront(ni)
	nd.band = 0
	return band
}

// insert handles a first touch: push the line on top of the stack, shift
// every marker, and return the memory band.
func (s *StackModel) insert(line uint64) int {
	var ni int32
	if n := len(s.free); n > 0 {
		ni = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.nodes = append(s.nodes, stackNode{})
		ni = int32(len(s.nodes) - 1)
	}
	s.nodes[ni] = stackNode{line: line, prev: -1, next: -1}
	s.store(line, ni)
	s.pushFront(ni)
	s.size++
	for i := range s.marker {
		switch {
		case s.marker[i] >= 0:
			// Every existing node shifted one position down.
			s.nodes[s.marker[i]].band++
			s.marker[i] = s.nodes[s.marker[i]].prev
		case s.size == s.caps[i]:
			// The stack just reached this capacity: the boundary is the
			// current tail.
			s.marker[i] = s.tail
		}
	}
	return len(s.caps)
}

func (s *StackModel) pushFront(ni int32) {
	s.nodes[ni].prev = -1
	s.nodes[ni].next = s.head
	if s.head >= 0 {
		s.nodes[s.head].prev = ni
	}
	s.head = ni
	if s.tail < 0 {
		s.tail = ni
	}
}

func (s *StackModel) unlink(ni int32) {
	nd := &s.nodes[ni]
	if nd.prev >= 0 {
		s.nodes[nd.prev].next = nd.next
	} else {
		s.head = nd.next
	}
	if nd.next >= 0 {
		s.nodes[nd.next].prev = nd.prev
	} else {
		s.tail = nd.prev
	}
}
